package rabit

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// Stage selects the deployment stage of the paper's Table I.
type Stage = env.Stage

// The three stages.
const (
	StageSimulator  = env.StageSimulator
	StageTestbed    = env.StageTestbed
	StageProduction = env.StageProduction
)

// Generation selects the RABIT iteration (Section IV's narrative).
type Generation = rules.Generation

// Generations.
const (
	GenInitial  = rules.GenInitial
	GenModified = rules.GenModified
)

// MultiplexPolicy selects the two-arm safety policy.
type MultiplexPolicy = rules.MultiplexPolicy

// Multiplexing policies.
const (
	MultiplexNone  = rules.MultiplexNone
	MultiplexTime  = rules.MultiplexTime
	MultiplexSpace = rules.MultiplexSpace
)

// Alert is a raised safety alert (Fig. 2's three alert kinds).
type Alert = core.Alert

// AsAlert extracts an Alert from an error chain.
func AsAlert(err error) (*Alert, bool) { return core.AsAlert(err) }

// ErrDraining is returned for commands submitted after Drain: the
// engine's admission gate rejected them before any check or execution.
var ErrDraining = core.ErrDraining

// Step is one named line of an experiment script.
type Step = workflow.Step

// Session is the scripting handle: wrappers for arms, devices, and vials.
type Session = workflow.Session

// RunSteps executes a scripted workflow, stopping at the first error.
func RunSteps(s *Session, steps []Step) error { return workflow.RunSteps(s, steps) }

// Fig5Workflow returns the paper's safe testbed workflow (Fig. 5).
func Fig5Workflow() []Step { return workflow.Fig5Workflow() }

// Options configures a System.
type Options struct {
	// Stage selects the deployment stage (default: testbed).
	Stage Stage
	// Generation selects the RABIT iteration (default: modified).
	Generation Generation
	// Multiplex selects the two-arm policy for the modified generation
	// (default: time multiplexing).
	Multiplex MultiplexPolicy
	// Unprotected disables RABIT entirely (commands execute unchecked),
	// for baseline and ground-truth runs.
	Unprotected bool
	// ExtendedSimulator attaches trajectory validation (Fig. 3).
	ExtendedSimulator bool
	// SimulatorGUI renders every collision check to an offscreen
	// framebuffer, reproducing the paper's GUI-dominated overhead.
	SimulatorGUI bool
	// NoMotionCache disables the motion-planning fast path — the
	// simulator's IK plan cache and epoch-keyed verdict cache, and with
	// them the engine's speculative lookahead — which is otherwise
	// enabled whenever the extended simulator is attached. Benchmarks use
	// it as the before/after switch; the caches are verdict-preserving
	// (see internal/sim's equivalence property tests), so correctness
	// never requires it.
	NoMotionCache bool
	// NoSpeculation keeps the caches but disables the engine's
	// speculative lookahead worker.
	NoSpeculation bool
	// IncidentDir is where the flight recorder writes incident bundles
	// (one self-contained directory of JSONL records + manifest per
	// alert). Empty keeps the black-box ring in memory only.
	IncidentDir string
	// IncidentTag is folded into bundle names and manifests — the eval
	// harness tags each bug injection's bundles with the bug slug.
	IncidentTag string
	// RecorderDepth overrides the flight recorder's ring capacity
	// (records; default recorder.DefaultDepth).
	RecorderDepth int
	// NoRecorder disables the flight recorder entirely. The recorder is
	// otherwise always on: its steady-state cost is bounded ring writes
	// (see BenchmarkRecorderOverhead).
	NoRecorder bool
	// FailSafe is invoked on every alert (Section II-B's alternative to
	// preemptively freezing).
	FailSafe func(Alert)
	// SerialPipeline forces every command through the engine's global
	// single-lock pipeline (the seed design), disabling per-device
	// sharding. Parity tests and throughput baselines use it.
	SerialPipeline bool
	// NoTracing disables the causal tracer. Tracing is otherwise always
	// on: span emission rides on clock reads the pipeline already makes
	// (see BenchmarkTraceOverhead) and tail sampling bounds retention.
	NoTracing bool
	// TraceFile, when set, streams every retained trace to this path as
	// OTLP-JSON lines (one ExportTraceServiceRequest per line — the same
	// format /traces serves and `rabiteval -trace` renders). The System
	// owns the file; Close flushes and closes it.
	TraceFile string
	// TraceExporter receives retained traces when TraceFile is empty.
	// The caller owns it: Close never closes an injected exporter.
	TraceExporter otrace.Exporter
	// TraceSampleRate overrides the tail-sampling probability for
	// non-alert traces (default otrace.DefaultSampleRate; negative
	// retains alert traces only; alert traces are always retained).
	TraceSampleRate float64
	// NoRuleMetrics disables per-rule instrumentation (evaluation/fire
	// counts, eval-latency and near-miss-margin histograms). The labeled
	// series are otherwise always on; the overhead benchmark uses this
	// as its before/after switch.
	NoRuleMetrics bool
	// Tenant labels this system's safety SLOs with a lab-tenant name:
	// the gateway sets it per lab so each tenant's burn rates export as
	// rabit_slo_burn_rate{slo="…",tenant="…"} alongside any global
	// series. Empty registers unlabeled (the single-lab CLI behavior).
	Tenant string
	// ObsGroup selects the introspection group (scrape registries,
	// health components, SLOs) the system registers with. Nil uses the
	// process-wide default group served by obs.Serve — the CLI
	// behavior. Services that pool several Systems in one process (the
	// gateway) pass their own group so tenants' telemetry and health
	// never collide with another service's.
	ObsGroup *obs.Group
	// Seed drives all stochastic fidelity noise (default 1).
	Seed int64
}

func (o *Options) fill() {
	if o.Stage == 0 {
		o.Stage = StageTestbed
	}
	if o.Generation == 0 {
		o.Generation = GenModified
	}
	if o.Multiplex == 0 {
		o.Multiplex = MultiplexTime
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// System is one fully wired lab: the environment, the engine, the
// interceptor, and the scripting session.
type System struct {
	Lab         *config.Lab
	Env         *env.Env
	Engine      *core.Engine // nil when Unprotected
	Simulator   *sim.Simulator
	Interceptor *trace.Interceptor
	Session     *Session
	// Recorder is the flight recorder (nil when Unprotected or
	// NoRecorder): the black-box ring the engine and interceptor feed,
	// and the incident-bundle writer behind IncidentDir.
	Recorder *recorder.Recorder
	// Obs is the system-wide telemetry registry, shared by the engine,
	// the interceptor, and the simulator, and registered with the
	// process-wide scrape group served by obs.Serve (-metrics).
	Obs *obs.Registry
	// Tracer is the causal tracer (nil when NoTracing): the interceptor
	// opens the run trace, the engine and simulator hang stage spans
	// beneath each command's root span, and tail sampling decides
	// retention at FinishTrace. Registered with the process-wide tracer
	// group served on /traces.
	Tracer *otrace.Tracer
	// SLOs are the safety objectives (nil when Unprotected): check
	// overhead and detection latency, exported as burn-rate series on
	// /metrics/prom.
	SLOs *obs.SafetySLOs

	// traceFile is the System-owned OTLP exporter behind TraceFile (nil
	// when traces export elsewhere or nowhere).
	traceFile *otrace.FileExporter
	// group is the introspection group every registration above lives
	// in (Options.ObsGroup, defaulting to obs.DefaultGroup).
	group *obs.Group
	// healthRegs are this system's /healthz–/readyz components.
	healthRegs []*obs.HealthReg
	// drainOnce makes Drain idempotent; drained flips only after the
	// engine's admission gate is closed, so a /readyz that reports
	// drained can never be followed by an admitted command.
	drainOnce sync.Once
	drained   atomic.Bool
}

// New builds a System from a parsed lab specification.
func New(spec *config.LabSpec, o Options) (*System, error) {
	o.fill()
	lab, err := config.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("rabit: %w", err)
	}
	e, err := env.Build(lab, o.Stage, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("rabit: %w", err)
	}
	group := o.ObsGroup
	if group == nil {
		group = obs.DefaultGroup
	}
	reg := obs.NewRegistry("rabit/" + spec.Lab)
	group.Register(reg)
	sys := &System{Lab: lab, Env: e, Obs: reg, group: group}

	if !o.NoTracing {
		exporter := o.TraceExporter
		if o.TraceFile != "" {
			f, err := os.Create(o.TraceFile)
			if err != nil {
				group.Unregister(reg)
				return nil, fmt.Errorf("rabit: trace file: %w", err)
			}
			sys.traceFile = otrace.NewFileExporter(f)
			exporter = sys.traceFile
		}
		sys.Tracer = otrace.NewTracer(otrace.Options{
			SampleRate: o.TraceSampleRate,
			Exporter:   exporter,
			Seed:       o.Seed,
			Obs:        reg,
		})
		otrace.Register(sys.Tracer)
	}

	var checker trace.Checker
	if !o.Unprotected {
		custom, err := lab.CustomRules()
		if err != nil {
			return nil, fmt.Errorf("rabit: %w", err)
		}
		rb, err := rules.NewRulebase(lab, rules.Config{
			Generation: o.Generation,
			Multiplex:  o.Multiplex,
		}, custom...)
		if err != nil {
			return nil, fmt.Errorf("rabit: %w", err)
		}
		engOpts := []core.Option{
			core.WithInitialModel(lab.InitialModelState()),
			core.WithObserver(reg),
		}
		sys.SLOs = obs.NewSafetySLOs()
		if o.Tenant != "" {
			sys.SLOs.RegisterTenantIn(group, o.Tenant)
		} else {
			sys.SLOs.RegisterIn(group)
		}
		engOpts = append(engOpts, core.WithSLOs(sys.SLOs))
		if o.NoRuleMetrics {
			engOpts = append(engOpts, core.WithoutRuleMetrics())
		}
		if sys.Tracer != nil {
			engOpts = append(engOpts, core.WithTracer(sys.Tracer))
		}
		if !o.NoRecorder {
			sys.Recorder = recorder.New(recorder.Options{
				Depth: o.RecorderDepth,
				Dir:   o.IncidentDir,
				Tag:   o.IncidentTag,
				Obs:   reg,
			})
			engOpts = append(engOpts, core.WithRecorder(sys.Recorder))
		}
		if o.SerialPipeline {
			engOpts = append(engOpts, core.WithSerialPipeline())
		}
		if o.FailSafe != nil {
			engOpts = append(engOpts, core.WithFailSafe(o.FailSafe))
		}
		if o.ExtendedSimulator {
			simOpts := []sim.Option{
				sim.WithHeldObjectAware(o.Generation >= GenModified),
				sim.WithObserver(reg),
			}
			if sys.Tracer != nil {
				simOpts = append(simOpts, sim.WithTracer(sys.Tracer))
			}
			if !o.NoMotionCache {
				// Sound here because the engine owns the model and bumps
				// the simulator's deck epoch on every deck-relevant commit.
				simOpts = append(simOpts, sim.WithMotionCache(true))
			}
			if o.SimulatorGUI {
				simOpts = append(simOpts, sim.WithGUI(640, 480))
			}
			if o.NoMotionCache || o.NoSpeculation {
				engOpts = append(engOpts, core.WithSpeculation(false))
			}
			sm, err := sim.New(lab, simOpts...)
			if err != nil {
				return nil, fmt.Errorf("rabit: %w", err)
			}
			sys.Simulator = sm
			engOpts = append(engOpts, core.WithSimulator(sm))
		}
		sys.Engine = core.New(rb, e, engOpts...)
		sys.Engine.Start()
		checker = sys.Engine
	}

	sys.Interceptor = trace.NewInterceptor(checker, e)
	sys.Interceptor.SetObserver(reg)
	sys.Interceptor.SetRecorder(sys.Recorder)
	sys.Interceptor.SetTracer(sys.Tracer)
	sys.Session = workflow.NewSession(sys.Interceptor, lab)
	sys.Session.Measure = e.MeasureSolubility
	sys.registerHealth()
	return sys, nil
}

// registerHealth publishes the system's components to its group's
// /healthz–/readyz set: the engine (alive always; ready until an
// alert stops the run or the system drains), the recorder (unhealthy
// once a bundle write has failed), and the trace exporter (unhealthy
// once an export has failed).
func (s *System) registerHealth() {
	if s.Engine != nil {
		s.healthRegs = append(s.healthRegs, s.group.RegisterHealth("engine", func() obs.Health {
			h := obs.Health{OK: true, Ready: true}
			if s.drained.Load() || s.Engine.Draining() {
				h.Ready = false
				h.Detail = "drained"
			}
			if al := s.Engine.Stopped(); al != nil {
				h.Ready = false
				h.Detail = "stopped: " + al.Kind.Slug()
			}
			return h
		}))
	}
	if s.Recorder != nil {
		s.healthRegs = append(s.healthRegs, s.group.RegisterHealth("recorder", func() obs.Health {
			if err := s.Recorder.Err(); err != nil {
				return obs.Health{Detail: err.Error()}
			}
			return obs.Health{OK: true, Ready: true}
		}))
	}
	if s.Tracer != nil {
		s.healthRegs = append(s.healthRegs, s.group.RegisterHealth("trace_exporter", func() obs.Health {
			if err := s.Tracer.ExportErr(); err != nil {
				return obs.Health{Detail: err.Error()}
			}
			return obs.Health{OK: true, Ready: true}
		}))
	}
}

// Drain quiesces the system for shutdown. It is a real gate, not
// advisory: the engine's admission gate closes first — commands
// submitted afterwards are rejected with ErrDraining — then in-flight
// checks and any speculative lookahead are waited out, the current run
// trace closes (making its tail-sampling decision), and the owned
// trace file flushes. The drained latch (what flips /readyz) is set
// only after the gate is closed, so a submit racing a drain can never
// be admitted after readiness reports drained. Idempotent.
func (s *System) Drain() {
	s.drainOnce.Do(func() {
		if s.Engine != nil {
			s.Engine.Drain()
			s.Engine.WaitSpeculation()
		}
		s.drained.Store(true)
		if s.Interceptor != nil {
			s.Interceptor.FinishTrace()
		}
		if s.traceFile != nil {
			s.traceFile.Flush()
		}
	})
}

// Close drains the system and releases every registration in its
// introspection group (scrape, tracer, SLO, health), then closes the
// owned trace file. Component errors are aggregated with errors.Join —
// a failed incident-bundle write, a failed trace export, and a failed
// trace-file close are each real flush losses a service replica must
// not swallow. Injected TraceExporters are the caller's to close.
func (s *System) Close() error {
	s.Drain()
	for _, hr := range s.healthRegs {
		hr.Unregister()
	}
	s.healthRegs = nil
	s.SLOs.Unregister()
	otrace.Unregister(s.Tracer)
	s.group.Unregister(s.Obs)
	var errs []error
	if s.Recorder != nil {
		if err := s.Recorder.Err(); err != nil {
			errs = append(errs, fmt.Errorf("rabit: recorder: %w", err))
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("rabit: trace file: %w", err))
		}
	} else if s.Tracer != nil {
		// With an owned file the exporter error is the file's latched
		// state, already reported by Close above; report it separately
		// only for injected exporters.
		if err := s.Tracer.ExportErr(); err != nil {
			errs = append(errs, fmt.Errorf("rabit: trace exporter: %w", err))
		}
	}
	return errors.Join(errs...)
}

// NewFromFile builds a System from a lab JSON configuration file
// (Section II-C's configuration pathway).
func NewFromFile(path string, o Options) (*System, error) {
	lab, err := config.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return New(lab.Spec, o)
}

// NewTestbed builds the paper's low-fidelity testbed deck (Fig. 4).
func NewTestbed(o Options) (*System, error) { return New(labs.TestbedSpec(), o) }

// NewHeinProduction builds the Hein Lab production deck (Fig. 1a).
func NewHeinProduction(o Options) (*System, error) { return New(labs.HeinProductionSpec(), o) }

// NewBerlinguette builds the Berlinguette Lab deck (Section V-B).
func NewBerlinguette(o Options) (*System, error) { return New(labs.BerlinguetteSpec(), o) }

// Alerts returns the alerts raised so far (empty when unprotected).
func (s *System) Alerts() []Alert {
	if s.Engine == nil {
		return nil
	}
	return s.Engine.Alerts()
}

// Stopped returns the alert that halted the experiment, if any.
func (s *System) Stopped() *Alert {
	if s.Engine == nil {
		return nil
	}
	return s.Engine.Stopped()
}

// DamageCost returns the stage-scaled cost of all physical damage so far
// — ground truth the engine itself never sees.
func (s *System) DamageCost() float64 { return s.Env.DamageCost() }

// Trace returns the RATracer-style command trace so far.
func (s *System) Trace() []trace.Record { return s.Interceptor.Records() }

// ObsSnapshot captures the system's telemetry registry: stage latency
// histograms, outcome/alert/violation counters, gauges.
func (s *System) ObsSnapshot() obs.Snapshot { return s.Obs.Snapshot() }

// ReleaseObserver removes the system's registry from its introspection
// group — for programs that build many short-lived systems (the
// evaluation harness) and do not want dead registries on /metrics.
func (s *System) ReleaseObserver() { s.group.Unregister(s.Obs) }
