// Testbed bugs replays the paper's Section IV naive-programmer study:
// all sixteen mutations of the Fig. 5 workflow, under the three RABIT
// configurations the paper steps through, printing the detection matrix,
// the Table V severity breakdown, and the ground-truth damage each bug
// causes when nothing protects the deck.
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
)

func main() {
	st, err := eval.RunBugStudy(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%3s %-28s %-11s %8s %9s %6s  %s\n",
		"#", "bug", "severity", "initial", "modified", "+sim", "unprotected ground truth")
	for _, o := range st.Outcomes {
		truth := "no mechanical damage"
		if len(o.GroundTruthDamage) > 0 {
			worst := o.GroundTruthDamage[0]
			for _, ev := range o.GroundTruthDamage {
				if ev.Severity > worst.Severity {
					worst = ev
				}
			}
			truth = worst.Description
		}
		fmt.Printf("%3d %-28s %-11s %8v %9v %6v  %s\n",
			o.Bug.ID, o.Bug.Slug, o.Bug.Severity,
			o.Detected[eval.ConfigInitial],
			o.Detected[eval.ConfigModified],
			o.Detected[eval.ConfigModifiedSim],
			truth)
	}

	fmt.Printf("\ndetection: initial %d/16 (%.0f%%) → modified %d/16 (%.0f%%) → +simulator %d/16 (%.0f%%)\n",
		st.DetectedCount(eval.ConfigInitial), st.DetectionRate(eval.ConfigInitial),
		st.DetectedCount(eval.ConfigModified), st.DetectionRate(eval.ConfigModified),
		st.DetectedCount(eval.ConfigModifiedSim), st.DetectionRate(eval.ConfigModifiedSim))

	fmt.Printf("\n%-14s %6s %9s   (Table V, modified RABIT)\n", "Severity", "Total", "Detected")
	for _, r := range st.TableV() {
		fmt.Printf("%-14s %6d %9d\n", r.Severity, r.Total, r.Detected)
	}
}
