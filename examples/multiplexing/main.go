// Multiplexing demonstrates the paper's Section IV category-2 findings
// and workaround: two robot arms sharing a deck collide unless their
// motion is multiplexed in time (only one arm awake at a time) or in
// space (a software wall splits the deck). The example shows all three
// regimes on the testbed.
package main

import (
	"fmt"
	"log"

	rabit "repro"
	"repro/internal/geom"
)

func main() {
	// Regime 1: no multiplexing (the initial RABIT). Both arms are free
	// to move; Ned2 is sent next to the grid while ViperX hovers there —
	// the paper's Bug B — and the arms physically collide.
	fmt.Println("— no multiplexing (initial RABIT) —")
	sys, err := rabit.NewTestbed(rabit.Options{
		Generation: rabit.GenInitial,
		Multiplex:  rabit.MultiplexNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Session.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		log.Fatal(err)
	}
	err = sys.Session.Arm("ned2").MovePose(geom.V(-0.46, 0.22, 0.24)) // deck (0.34, 0.22, 0.24)
	fmt.Printf("  ned2 move: %v\n", err)
	for _, ev := range sys.Env.World().Events() {
		fmt.Println("  ground truth:", ev)
	}

	// Regime 2: time multiplexing (the modified RABIT). The same move is
	// blocked before execution because ViperX is not asleep.
	fmt.Println("\n— time multiplexing (modified RABIT) —")
	sys2, err := rabit.NewTestbed(rabit.Options{
		Generation: rabit.GenModified,
		Multiplex:  rabit.MultiplexTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys2.Session.Arm("ned2").GoSleep(); err != nil {
		log.Fatal(err)
	}
	if err := sys2.Session.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		log.Fatal(err)
	}
	err = sys2.Session.Arm("ned2").MovePose(geom.V(-0.46, 0.22, 0.24))
	fmt.Printf("  ned2 move blocked: %v\n", err != nil)
	fmt.Printf("  damage: $%.2f\n", sys2.DamageCost())

	// Regime 3: space multiplexing. Each arm owns a software-walled half
	// of the deck and both may move concurrently inside their own zones;
	// crossing the wall is blocked.
	fmt.Println("\n— space multiplexing —")
	sys3, err := rabit.NewTestbed(rabit.Options{
		Generation: rabit.GenModified,
		Multiplex:  rabit.MultiplexSpace,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = sys3.Session.MoveConcurrently(map[string]geom.Vec3{
		"viperx": geom.V(0.25, 0.15, 0.25),  // deck x=0.25, own zone
		"ned2":   geom.V(-0.05, 0.15, 0.25), // deck x=0.75, own zone
	})
	fmt.Printf("  concurrent in-zone moves: ok=%v\n", err == nil)
	err = sys3.Session.Arm("viperx").MovePose(geom.V(0.60, 0.10, 0.25)) // crosses the wall
	fmt.Printf("  wall-crossing move blocked: %v\n", err != nil)
	fmt.Printf("  damage: $%.2f\n", sys3.DamageCost())
}
