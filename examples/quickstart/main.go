// Quickstart: build the paper's testbed deck, run the safe Fig. 5
// workflow under RABIT, then re-run it with Bug A injected (the omitted
// door-open of the paper's Fig. 5 annotation) and watch RABIT block the
// unsafe command before the arm smashes the glass door.
package main

import (
	"fmt"
	"log"

	rabit "repro"
)

func main() {
	// 1. A safe run: the modified RABIT generation with time
	// multiplexing, on the low-fidelity testbed stage.
	sys, err := rabit.NewTestbed(rabit.Options{
		Stage:      rabit.StageTestbed,
		Generation: rabit.GenModified,
		Multiplex:  rabit.MultiplexTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
		log.Fatalf("safe workflow should pass: %v", err)
	}
	fmt.Printf("safe run: %d commands, %d alerts, $%.2f damage\n",
		len(sys.Trace()), len(sys.Alerts()), sys.DamageCost())

	// 2. The same workflow with the paper's Bug A: the script forgets to
	// reopen the dosing-device door before the arm returns for the vial.
	buggy, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	steps := rabit.Fig5Workflow()
	var mutated []rabit.Step
	for _, st := range steps {
		if st.Name == "reopen-door" {
			continue // ← the bug: this line is deleted
		}
		mutated = append(mutated, st)
	}
	err = rabit.RunSteps(buggy.Session, mutated)
	if err == nil {
		log.Fatal("RABIT should have stopped the buggy run")
	}
	alert, ok := rabit.AsAlert(err)
	if !ok {
		log.Fatalf("expected a RABIT alert, got: %v", err)
	}
	fmt.Println("\nbuggy run stopped by RABIT:")
	fmt.Println(" ", alert.Error())
	fmt.Printf("physical damage prevented: $%.2f incurred (the unprotected run smashes the glass door)\n",
		buggy.DamageCost())

	// 3. The counterfactual: the same bug with RABIT disabled.
	unprotected, err := rabit.NewTestbed(rabit.Options{Unprotected: true})
	if err != nil {
		log.Fatal(err)
	}
	var mutated2 []rabit.Step
	for _, st := range rabit.Fig5Workflow() {
		if st.Name != "reopen-door" {
			mutated2 = append(mutated2, st)
		}
	}
	_ = rabit.RunSteps(unprotected.Session, mutated2)
	fmt.Println("\nunprotected counterfactual:")
	for _, ev := range unprotected.Env.World().Events() {
		fmt.Println(" ", ev)
	}
}
