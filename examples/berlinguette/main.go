// Berlinguette reproduces the paper's generalization study (Section V-B):
// RABIT configured for a different self-driving lab — the Berlinguette
// Lab's thin-film platform with a UR5e, an N9, a spin coater, a spray
// station, and ultrasonic nozzles — including a lab-specific rule defined
// declaratively in the JSON configuration rather than in code.
package main

import (
	"fmt"
	"log"

	rabit "repro"
	"repro/internal/workflow"
)

func main() {
	sys, err := rabit.NewBerlinguette(rabit.Options{
		Stage:      rabit.StageProduction,
		Generation: rabit.GenModified,
		Multiplex:  rabit.MultiplexTime,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's four device types cover the whole deck.
	fmt.Println("device categorization (the paper's four types):")
	for _, id := range []string{"ur5e", "n9", "dosing_device", "solvent_pump",
		"decapper", "spin_coater", "spray_hotplate", "nozzle_a", "film_substrate"} {
		t, _ := sys.Lab.DeviceType(id)
		fmt.Printf("  %-16s → %s\n", id, t)
	}

	// The lab's own custom rule, from the JSON config: never spin the
	// coater without a film on the chuck.
	fmt.Println("\nspinning the empty coater (should be blocked):")
	if err := sys.Session.Device("spin_coater").Start(0); err != nil {
		fmt.Println("  blocked:", err)
	} else {
		log.Fatal("the empty spin should have been blocked")
	}

	// A fresh system runs the full spray-coating workflow cleanly.
	sys2, err := rabit.NewBerlinguette(rabit.Options{
		Stage:     rabit.StageProduction,
		Multiplex: rabit.MultiplexTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rabit.RunSteps(sys2.Session, workflow.SpraySteps()); err != nil {
		log.Fatalf("spray workflow failed: %v", err)
	}
	fmt.Printf("\nspray-coating workflow completed: %d commands, %d alerts, $%.2f damage\n",
		len(sys2.Trace()), len(sys2.Alerts()), sys2.DamageCost())
}
