// Solubility runs the paper's motivating experiment (Fig. 1b): the
// automated solubility measurement on the Hein Lab production deck — dose
// solid into a vial, add solvent stepwise, stir on the hotplate, and
// image until the solid dissolves — under full RABIT supervision.
package main

import (
	"fmt"
	"log"

	rabit "repro"
	"repro/internal/workflow"
)

func main() {
	sys, err := rabit.NewHeinProduction(rabit.Options{
		Stage:     rabit.StageProduction,
		Multiplex: rabit.MultiplexNone, // single-arm deck
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := workflow.DefaultSolubilityParams()
	fmt.Printf("dosing %.1f mg into %s, stirring at %.0f °C…\n",
		params.AmountMg, params.Vial, params.Temperature)

	res, err := workflow.RunSolubility(sys.Session, params)
	if err != nil {
		log.Fatalf("experiment stopped: %v", err)
	}

	fmt.Printf("dissolved: %v\n", res.Dissolved)
	fmt.Printf("solvent used: %.1f mL over %d dissolution cycles\n", res.SolventML, res.Iterations)
	fmt.Printf("final dissolved fraction: %.2f\n", res.FinalFraction)
	fmt.Printf("commands issued: %d, RABIT alerts: %d, lab time: %s\n",
		len(sys.Trace()), len(sys.Alerts()), sys.Env.Now().Truncate(1e9))

	// The experiment's own guard (Fig. 1b lines 10–11) still applies on
	// top of RABIT: an over-capacity dose is rejected by the script.
	params.AmountMg = 15
	if _, err := workflow.RunSolubility(sys.Session, params); err != nil {
		fmt.Printf("over-capacity dose rejected by the script's own check: %v\n", err)
	}
}
