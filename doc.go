// Package rabit is a from-scratch Go reproduction of "RABIT, a Robot Arm
// Bug Intervention Tool for Self-Driving Labs" (Wattoo et al., DSN 2024).
//
// RABIT is a rule-based safety middleware for self-driving laboratories:
// it intercepts every device command an experiment script issues,
// validates the command's preconditions against a tracked model of the
// lab (eleven general rules plus lab-specific custom rules), optionally
// validates robot-arm trajectories against a 3D cuboid model of the deck
// (the Extended Simulator), executes the command, and compares the
// observed post-state against the expected post-state to detect device
// malfunctions.
//
// Because the paper's system runs on real lab hardware, this reproduction
// ships its own substrates: six-axis arm kinematics (internal/kin), a
// ground-truth physical deck with collision and damage modelling
// (internal/world), per-vendor device drivers with the firmware quirks the
// paper's evaluation hinges on (internal/device), the three deployment
// stages of the paper's Table I (internal/env), the RATracer-style
// command interceptor (internal/trace), RAD-style trace mining
// (internal/radmine), and the 16-bug naive-programmer study
// (internal/bugs). See DESIGN.md for the full inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package is the public facade: build a lab System from a JSON
// configuration (or one of the bundled deck presets), run workflows
// through it, and inspect alerts.
//
//	sys, err := rabit.NewTestbed(rabit.Options{
//		Stage:      rabit.StageTestbed,
//		Generation: rabit.GenModified,
//		Multiplex:  rabit.MultiplexTime,
//	})
//	...
//	err = rabit.RunSteps(sys.Session, rabit.Fig5Workflow())
//	for _, alert := range sys.Alerts() { ... }
package rabit
