package rabit_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	rabit "repro"
	"repro/internal/obs"
)

// TestSystemHealthAndTraceLifecycle covers the gateway-readiness
// acceptance loop at the component level: health components report
// correctly during a run and after Drain, the safety-SLO burn-rate
// series show up on /metrics/prom, and the run's tail-retained trace is
// served by /traces.
func TestSystemHealthAndTraceLifecycle(t *testing.T) {
	sys, err := rabit.NewTestbed(rabit.Options{
		ExtendedSimulator: true,
		TraceSampleRate:   1.0, // retain the run trace even without an alert
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
		t.Fatalf("fig5 workflow: %v", err)
	}

	// Mid-run: every component this system registered is live and ready.
	// Other tests leave components behind in the process-wide group, so
	// assertions work on the before→after delta around Drain.
	_, _, before := obs.CheckHealth()
	tid := sys.Interceptor.TraceID()
	if tid.IsZero() {
		t.Fatal("run opened no trace")
	}

	sys.Drain()
	_, ready, after := obs.CheckHealth()
	if ready {
		t.Error("readiness still true after Drain")
	}
	drainedEngines := 0
	for alias, h := range after {
		if !strings.HasPrefix(alias, "engine") {
			continue
		}
		was, ok := before[alias]
		if !ok {
			t.Errorf("engine component %q appeared after Drain", alias)
			continue
		}
		if was.Ready && !h.Ready {
			drainedEngines++
			if !h.OK {
				t.Errorf("drained engine %q reports not-OK: draining is readiness, not liveness", alias)
			}
			if h.Detail != "drained" {
				t.Errorf("drained engine %q detail %q", alias, h.Detail)
			}
		}
	}
	if drainedEngines != 1 {
		t.Errorf("%d engine components flipped to drained, want exactly 1", drainedEngines)
	}
	sawRecorder, sawExporter := false, false
	for alias, h := range after {
		if strings.HasPrefix(alias, "recorder") && h.OK && h.Ready {
			sawRecorder = true
		}
		if strings.HasPrefix(alias, "trace_exporter") && h.OK && h.Ready {
			sawExporter = true
		}
	}
	if !sawRecorder || !sawExporter {
		t.Errorf("recorder/trace_exporter components healthy = %v/%v, want both", sawRecorder, sawExporter)
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	// The safety-SLO burn-rate series are on the Prometheus exposition.
	prom := httpGet(t, srv.URL+"/metrics/prom")
	for _, want := range []string{
		`rabit_slo_burn_rate{slo="check_overhead`,
		`rabit_slo_burn_rate{slo="detection_latency`,
		`window="5m0s"`,
		`window="1h0m0s"`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics/prom missing %q", want)
		}
	}
	if !strings.Contains(prom, "# TYPE rabit_slo_burn_rate gauge") {
		t.Error("/metrics/prom missing the burn-rate TYPE header")
	}

	// Drain finished the run trace; tail sampling at rate 1.0 retained
	// it, so /traces serves it as an OTLP-JSON line.
	body := httpGet(t, srv.URL+"/traces?id="+tid.String())
	if !strings.Contains(body, tid.String()) {
		t.Errorf("/traces?id=%s does not carry the run trace", tid)
	}
	if !strings.Contains(body, `"name":"intercept"`) {
		t.Error("/traces line has no interception root span")
	}
}
