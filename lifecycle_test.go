package rabit_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	rabit "repro"
	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

// hotplateSpec is a minimal deck of n independent hotplates.
func hotplateSpec(lab string, n int) *config.LabSpec {
	spec := &config.LabSpec{Lab: lab, FloorZ: 0}
	for i := 0; i < n; i++ {
		x := float64(i) * 0.3
		spec.Devices = append(spec.Devices, config.DeviceSpec{
			ID:   fmt.Sprintf("hp%02d", i),
			Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
			Cuboid: config.BoxSpec{
				Min: config.Vec{X: x, Y: 0, Z: 0},
				Max: config.Vec{X: x + 0.2, Y: 0.2, Z: 0.15},
			},
			ActionThreshold: 150,
			MaxSafeValue:    340,
		})
	}
	return spec
}

// failingExporter always refuses retained traces.
type failingExporter struct{}

func (failingExporter) ExportTrace(*otrace.TraceData) error {
	return errors.New("export sink unavailable")
}

// Close must aggregate every component's flush error with errors.Join
// instead of reporting only the trace file: a failed incident-bundle
// write and a failed trace export are each real losses.
func TestCloseAggregatesComponentErrors(t *testing.T) {
	dir := t.TempDir()
	// A regular file where the incident directory's parent should be:
	// bundle writes fail and latch on the recorder.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := rabit.New(hotplateSpec("close-errors", 1), rabit.Options{
		IncidentDir:   filepath.Join(blocker, "bundles"),
		TraceExporter: failingExporter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trip an alert: over-max setpoint. The alert writes an incident
	// bundle (fails: parent is a file) and retains the trace, whose
	// export fails at drain time.
	err = sys.Interceptor.Do(action.Command{Device: "hp00", Action: action.SetActionValue, Value: 400})
	if _, ok := rabit.AsAlert(err); !ok {
		t.Fatalf("over-max setpoint did not alert: %v", err)
	}

	cerr := sys.Close()
	if cerr == nil {
		t.Fatal("Close swallowed the recorder and exporter failures")
	}
	msg := cerr.Error()
	if !strings.Contains(msg, "recorder") {
		t.Errorf("Close error %q does not report the recorder failure", msg)
	}
	if !strings.Contains(msg, "trace exporter") {
		t.Errorf("Close error %q does not report the trace-export failure", msg)
	}
}

// A healthy Close stays nil.
func TestCloseNilOnHealthySystem(t *testing.T) {
	sys, err := rabit.New(hotplateSpec("close-clean", 1), rabit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Interceptor.Do(action.Command{Device: "hp00", Action: action.ReadStatus}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("healthy Close returned %v", err)
	}
}

// Drain is a gate, not advisory quiescence: concurrent submits racing
// the drain either finish before the gate closes or get ErrDraining —
// and once Drain has returned (readiness reports drained), no command
// is ever admitted again.
func TestDrainGatesConcurrentSubmits(t *testing.T) {
	const scripts = 8
	sys, err := rabit.New(hotplateSpec("drain-race", scripts), rabit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Env.SetPacing(1000)

	// One interceptor per script, sharing the sharded engine — the
	// gateway's session model.
	var wg sync.WaitGroup
	unexpected := make([]error, scripts)
	for g := 0; g < scripts; g++ {
		ic := trace.NewInterceptor(sys.Engine, sys.Env)
		wg.Add(1)
		go func(g int, ic *trace.Interceptor) {
			defer wg.Done()
			dev := fmt.Sprintf("hp%02d", g)
			for i := 0; i < 500; i++ {
				err := ic.Do(action.Command{Device: dev, Action: action.ReadStatus})
				if err == nil {
					continue
				}
				if !errors.Is(err, rabit.ErrDraining) {
					unexpected[g] = err
				}
				return // gate closed (or a real failure recorded)
			}
		}(g, ic)
	}
	time.Sleep(2 * time.Millisecond) // let the scripts get going
	sys.Drain()

	// The gate has closed and Drain has waited out every in-flight
	// check: any submit from this point on must be rejected.
	for g := 0; g < scripts; g++ {
		ic := trace.NewInterceptor(sys.Engine, sys.Env)
		err := ic.Do(action.Command{Device: fmt.Sprintf("hp%02d", g), Action: action.ReadStatus})
		if !errors.Is(err, rabit.ErrDraining) {
			t.Fatalf("post-drain submit on hp%02d admitted: %v", g, err)
		}
	}
	wg.Wait()
	for g, err := range unexpected {
		if err != nil {
			t.Errorf("script %d saw a non-draining failure: %v", g, err)
		}
	}
}

// Two Systems in one process with their own obs groups: telemetry,
// health, and lifecycle stay fully separated — draining or closing one
// never degrades the other's endpoints.
func TestTwoSystemsOneProcessSeparateGroups(t *testing.T) {
	g1, g2 := obs.NewGroup(), obs.NewGroup()
	sys1, err := rabit.New(hotplateSpec("proc-lab-a", 1), rabit.Options{ObsGroup: g1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys1.Close()
	sys2, err := rabit.New(hotplateSpec("proc-lab-b", 1), rabit.Options{ObsGroup: g2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	for _, sys := range []*rabit.System{sys1, sys2} {
		if err := sys.Interceptor.Do(action.Command{Device: "hp00", Action: action.ReadStatus}); err != nil {
			t.Fatal(err)
		}
	}

	srv1 := httptest.NewServer(g1.Handler())
	defer srv1.Close()
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()

	get := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	// Each group's /metrics shows its own lab only.
	_, m1 := get(srv1.URL + "/metrics")
	if !strings.Contains(m1, "proc-lab-a") || strings.Contains(m1, "proc-lab-b") {
		t.Fatal("group 1 metrics leak across systems")
	}
	_, m2 := get(srv2.URL + "/metrics")
	if !strings.Contains(m2, "proc-lab-b") || strings.Contains(m2, "proc-lab-a") {
		t.Fatal("group 2 metrics leak across systems")
	}

	// Draining system 1 flips only group 1's readiness.
	sys1.Drain()
	if status, body := get(srv1.URL + "/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "drained") {
		t.Fatalf("group 1 /readyz = %d after drain, want 503 drained", status)
	}
	if status, _ := get(srv2.URL + "/readyz"); status != http.StatusOK {
		t.Fatalf("group 2 /readyz = %d, drained neighbour leaked", status)
	}

	// Closing system 1 leaves group 2's scrape set intact.
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(g2.Snapshots()); n != 1 {
		t.Fatalf("group 2 lost registries to group 1's close: %d", n)
	}
	if n := len(g1.Snapshots()); n != 0 {
		t.Fatalf("group 1 still scraping %d registries after close", n)
	}
}
