package rabit_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	rabit "repro"
	"repro/internal/labs"
)

func TestFacadeDefaults(t *testing.T) {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Engine == nil {
		t.Fatal("default system should be protected")
	}
	if sys.Simulator != nil {
		t.Fatal("simulator should be opt-in")
	}
	if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
		t.Fatalf("safe workflow failed: %v", err)
	}
	if len(sys.Alerts()) != 0 || sys.Stopped() != nil {
		t.Errorf("false positives: %v", sys.Alerts())
	}
	if sys.DamageCost() != 0 {
		t.Error("safe workflow cost money")
	}
	if len(sys.Trace()) == 0 {
		t.Error("no trace recorded")
	}
}

func TestFacadeUnprotected(t *testing.T) {
	sys, err := rabit.NewTestbed(rabit.Options{Unprotected: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Engine != nil {
		t.Fatal("unprotected system should have no engine")
	}
	if sys.Alerts() != nil || sys.Stopped() != nil {
		t.Error("unprotected accessors should be empty")
	}
}

func TestFacadeAlertFlow(t *testing.T) {
	var failSafe []rabit.Alert
	sys, err := rabit.NewTestbed(rabit.Options{
		FailSafe: func(a rabit.Alert) { failSafe = append(failSafe, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive into the closed dosing device.
	err = sys.Session.Arm("viperx").GoToLocation("dd_safe_height")
	if err == nil {
		t.Fatal("unsafe move accepted")
	}
	alert, ok := rabit.AsAlert(err)
	if !ok {
		t.Fatalf("want alert, got %v", err)
	}
	if !strings.Contains(alert.Error(), "general-1") {
		t.Errorf("alert should cite rule 1: %v", alert.Error())
	}
	if len(failSafe) != 1 {
		t.Errorf("fail-safe hook calls = %d", len(failSafe))
	}
	if sys.Stopped() == nil {
		t.Error("experiment should be stopped")
	}
}

func TestFacadeFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path, err := labs.WriteJSON(labs.TestbedSpec(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rabit.NewFromFile(path, rabit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Lab.ArmIDs()); got != 2 {
		t.Errorf("arms = %d", got)
	}
	// A corrupted file is rejected with a diagnostic.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"z": 0.16`, `"z": -0.16`, 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rabit.NewFromFile(badPath, rabit.Options{}); err == nil {
		t.Fatal("sign-flipped config accepted")
	}
}

func TestFacadeAllDecks(t *testing.T) {
	decks := []func(rabit.Options) (*rabit.System, error){
		rabit.NewTestbed, rabit.NewHeinProduction, rabit.NewBerlinguette,
	}
	for i, build := range decks {
		sys, err := build(rabit.Options{ExtendedSimulator: true})
		if err != nil {
			t.Fatalf("deck %d: %v", i, err)
		}
		if sys.Simulator == nil {
			t.Errorf("deck %d: simulator missing", i)
		}
	}
}
