package rabit_test

import (
	"fmt"

	rabit "repro"
)

// ExampleNewTestbed runs the paper's safe Fig. 5 workflow on the
// low-fidelity testbed under the modified RABIT.
func ExampleNewTestbed() {
	sys, err := rabit.NewTestbed(rabit.Options{
		Stage:      rabit.StageTestbed,
		Generation: rabit.GenModified,
		Multiplex:  rabit.MultiplexTime,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("commands=%d alerts=%d damage=$%.0f\n",
		len(sys.Trace()), len(sys.Alerts()), sys.DamageCost())
	// Output: commands=40 alerts=0 damage=$0
}

// ExampleAsAlert shows RABIT stopping the paper's Bug A (the forgotten
// door-open) before the arm reaches the glass.
func ExampleAsAlert() {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	var buggy []rabit.Step
	for _, st := range rabit.Fig5Workflow() {
		if st.Name == "reopen-door" {
			continue // the deleted line of Fig. 5's Bug A
		}
		buggy = append(buggy, st)
	}
	err = rabit.RunSteps(sys.Session, buggy)
	if alert, ok := rabit.AsAlert(err); ok {
		fmt.Println(alert.Kind)
		fmt.Printf("damage=$%.0f\n", sys.DamageCost())
	}
	// Output:
	// Invalid Command!
	// damage=$0
}
