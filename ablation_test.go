package rabit_test

import (
	"testing"

	rabit "repro"
	"repro/internal/action"
	"repro/internal/bugs"
	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/workflow"
)

// Ablation benchmarks quantify the cost and value of RABIT's individual
// design choices: target-only checking vs. full trajectory sweeping,
// held-object geometry extension, multiplexing policies, and the
// generation gap itself.

// BenchmarkAblation_TargetCheckVsSweep compares the paper's two
// collision-checking regimes on the same move: the target-only geometric
// check (deployments without a simulator) against the Extended
// Simulator's full sweep.
func BenchmarkAblation_TargetCheckVsSweep(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true})
	if err != nil {
		b.Fatal(err)
	}
	custom, err := sys.Lab.CustomRules()
	if err != nil {
		b.Fatal(err)
	}
	rb := rules.MustNewRulebase(sys.Lab, rules.Config{
		Generation: rules.GenModified, Multiplex: rules.MultiplexNone,
	}, custom...)
	model := sys.Engine.Model()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}

	b.Run("target-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := rb.Validate(model, cmd); len(v) != 0 {
				b.Fatal(v)
			}
		}
	})
	b.Run("full-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sys.Simulator.ValidTrajectory(cmd, model); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_HeldObjectExtension measures what the modified
// generation's held-object geometry costs per validation — the price of
// closing the Bug-D-with-vial gap.
func BenchmarkAblation_HeldObjectExtension(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	model := sys.Engine.Model()
	model.Set(state.Holding("viperx"), state.Bool(true))
	model.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.30)}

	for _, gen := range []rules.Generation{rules.GenInitial, rules.GenModified} {
		rb := rules.MustNewRulebase(sys.Lab, rules.Config{Generation: gen, Multiplex: rules.MultiplexNone})
		b.Run(gen.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := rb.Validate(model, cmd); len(v) != 0 {
					b.Fatal(v)
				}
			}
		})
	}
}

// BenchmarkAblation_MultiplexPolicies compares deck throughput under the
// two safe policies: time multiplexing serialises arm motion; space
// multiplexing lets both arms move concurrently inside their zones.
func BenchmarkAblation_MultiplexPolicies(b *testing.B) {
	b.Run("time", func(b *testing.B) {
		sys, err := rabit.NewTestbed(rabit.Options{Multiplex: rabit.MultiplexTime, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		// Quiesce: time multiplexing demands the other arm sleeps.
		if err := sys.Session.Arm("ned2").GoSleep(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var simTime int64
		for i := 0; i < b.N; i++ {
			before := sys.Env.Now()
			if err := sys.Session.Arm("viperx").MovePose(geom.V(0.25, 0.10, 0.25+0.02*float64(i%2))); err != nil {
				b.Fatal(err)
			}
			simTime += int64(sys.Env.Now() - before)
		}
		b.ReportMetric(float64(simTime)/float64(b.N)/1e6, "labMs/move")
	})
	b.Run("space-concurrent", func(b *testing.B) {
		sys, err := rabit.NewTestbed(rabit.Options{Multiplex: rabit.MultiplexSpace, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var simTime int64
		for i := 0; i < b.N; i++ {
			before := sys.Env.Now()
			if err := sys.Session.MoveConcurrently(map[string]geom.Vec3{
				"viperx": geom.V(0.25, 0.10, 0.25+0.02*float64(i%2)),
				"ned2":   geom.V(-0.05, 0.10, 0.25+0.02*float64(i%2)),
			}); err != nil {
				b.Fatal(err)
			}
			simTime += int64(sys.Env.Now() - before)
		}
		// Two moves complete per iteration; report lab time per move.
		b.ReportMetric(float64(simTime)/float64(b.N)/2/1e6, "labMs/move")
	})
}

// BenchmarkAblation_DetectionValue re-runs the two-arm bug under each
// configuration, reporting whether the design choice pays for itself in
// detections (the qualitative ablation: policy off → collision, policy
// on → blocked).
func BenchmarkAblation_DetectionValue(b *testing.B) {
	bug, _ := bugs.ByID(7)
	configs := []struct {
		name string
		opt  eval.Options
	}{
		{"initial-no-mux", eval.Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
			WithRABIT: true, Seed: 1,
		}},
		{"modified-time-mux", eval.Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, Seed: 1,
		}},
		{"modified-space-mux", eval.Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexSpace},
			WithRABIT: true, Seed: 1,
		}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			detections := 0
			for i := 0; i < b.N; i++ {
				s, err := eval.NewSetup(testbedSpec(), cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				steps := bug.Mutate(s.Session)
				_ = workflow.RunSteps(s.Session, steps)
				if len(s.Engine.Alerts()) > 0 {
					detections++
				}
			}
			b.ReportMetric(float64(detections)/float64(b.N), "detected")
		})
	}
}

// testbedSpec is a terse alias for the bundled testbed deck.
func testbedSpec() *config.LabSpec { return labs.TestbedSpec() }
