// Package rabit_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation. Each benchmark both times
// the underlying machinery and (under -v) logs the paper-style rows it
// reproduces; EXPERIMENTS.md records the paper-vs-measured comparison.
package rabit_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	rabit "repro"
	"repro/internal/action"
	"repro/internal/env"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/radmine"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/workflow"
)

var logOnce sync.Map

// logOncePerBench logs a rendered table exactly once per benchmark name.
func logOncePerBench(b *testing.B, text string) {
	b.Helper()
	if _, dup := logOnce.LoadOrStore(b.Name(), true); !dup {
		b.Log("\n" + text)
	}
}

// BenchmarkTableI_StageCapabilities regenerates Table I: the capability
// profile of the Simulator, Testbed, and Production stages (speed of
// exploration, device precision/quality, accuracy of results, risk of
// damage).
func BenchmarkTableI_StageCapabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableI(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, eval.RenderTableI(rows))
	}
}

// BenchmarkTableII_TransitionTable regenerates Table II: evaluating the
// state transition table's preconditions and applying its postconditions
// for the robot-arm action rows the paper shows.
func BenchmarkTableII_TransitionTable(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var rendered string
	for _, e := range rules.TransitionTable() {
		rendered += fmt.Sprintf("%-60s | pre: %v | action: %s | post: %v\n",
			e.Example, e.Preconditions, e.ActionLabel, e.Postconditions)
	}
	logOncePerBench(b, rendered)
	model := sys.Lab.InitialModelState()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_pickup"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rules.Apply(model, cmd, sys.Lab)
	}
}

// BenchmarkTableIII_GeneralRules regenerates Table III's controlled
// experiments: one deliberately unsafe scenario per general rule, all
// detected.
func BenchmarkTableIII_GeneralRules(b *testing.B) {
	benchControlled(b, "III")
}

// BenchmarkTableIV_CustomRules regenerates Table IV's controlled
// experiments for the Hein custom rules.
func BenchmarkTableIV_CustomRules(b *testing.B) {
	benchControlled(b, "IV")
}

func benchControlled(b *testing.B, table string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		results, err := eval.RunControlled("testbed", env.StageTestbed, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		rendered := ""
		detected := 0
		total := 0
		for _, r := range results {
			if r.Scenario.Table != table {
				continue
			}
			total++
			mark := "MISSED"
			if r.Detected && r.RuleHit {
				mark = "DETECTED"
				detected++
			}
			rendered += fmt.Sprintf("%2d  %-70s %s\n", r.Scenario.Number, r.Scenario.Name, mark)
		}
		rendered += fmt.Sprintf("Table %s: %d/%d rules detected\n", table, detected, total)
		logOncePerBench(b, rendered)
		if detected != total {
			b.Fatalf("table %s: %d/%d detected; the paper reports all", table, detected, total)
		}
	}
}

// BenchmarkTableV_BugStudy regenerates Table V and the Section IV
// detection progression: the 16-bug naive-programmer study under the
// initial, modified, and modified+simulator configurations.
func BenchmarkTableV_BugStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := eval.RunBugStudy(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rendered := fmt.Sprintf("%-14s %6s %9s\n", "Severity", "Total", "Detected")
		for _, r := range st.TableV() {
			rendered += fmt.Sprintf("%-14s %6d %9d\n", r.Severity, r.Total, r.Detected)
		}
		rendered += fmt.Sprintf("detection: initial %d/16 (%.0f%%), modified %d/16 (%.0f%%), +simulator %d/16 (%.0f%%)\n",
			st.DetectedCount(eval.ConfigInitial), st.DetectionRate(eval.ConfigInitial),
			st.DetectedCount(eval.ConfigModified), st.DetectionRate(eval.ConfigModified),
			st.DetectedCount(eval.ConfigModifiedSim), st.DetectionRate(eval.ConfigModifiedSim))
		logOncePerBench(b, rendered)
	}
}

// BenchmarkFig2_EngineCheck micro-benchmarks the Fig. 2 algorithm's
// per-command cost: Valid + UpdateState + the post-state comparison.
func BenchmarkFig2_EngineCheck(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cmd := action.Command{Device: "dosing_device", Action: action.OpenDoor}
	closeCmd := action.Command{Device: "dosing_device", Action: action.CloseDoor}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cmd
		if i%2 == 1 {
			c = closeCmd
		}
		if err := sys.Engine.Before(c); err != nil {
			b.Fatal(err)
		}
		if err := sys.Env.Execute(c); err != nil {
			b.Fatal(err)
		}
		if err := sys.Engine.After(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_ExtendedSimulator benchmarks one trajectory validation in
// the Extended Simulator (headless), the Fig. 3 collision check.
func BenchmarkFig3_ExtendedSimulator(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true})
	if err != nil {
		b.Fatal(err)
	}
	model := sys.Engine.Model()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Simulator.ValidTrajectory(cmd, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_ExtendedSimulatorGUI is the same check with the GUI
// rendering every sweep sample — the deployment whose overhead the paper
// measured at 112%.
func BenchmarkFig3_ExtendedSimulatorGUI(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true, SimulatorGUI: true})
	if err != nil {
		b.Fatal(err)
	}
	model := sys.Engine.Model()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Simulator.ValidTrajectory(cmd, model); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimBroadphase measures the trajectory check with the swept-
// volume broadphase pruning on (the default) and off — the win comes from
// skipping narrow-phase capsule sweeps against solids the trajectory's
// AABB can never reach.
func BenchmarkSimBroadphase(b *testing.B) {
	for _, bp := range []struct {
		name    string
		enabled bool
	}{{"on", true}, {"off", false}} {
		b.Run(bp.name, func(b *testing.B) {
			sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true})
			if err != nil {
				b.Fatal(err)
			}
			sys.Simulator.SetBroadphase(bp.enabled)
			model := sys.Engine.Model()
			cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Simulator.ValidTrajectory(cmd, model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimParallel measures trajectory checks for the testbed's two
// arms issued from one goroutine (serial) versus one goroutine per arm
// (parallel) — the per-arm lock sharding lets the checks overlap, so the
// parallel leg's ns/op should approach half the serial leg's.
func BenchmarkSimParallel(b *testing.B) {
	cmds := []action.Command{
		{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)},
		{Device: "ned2", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.15)},
	}
	newSim := func(b *testing.B) (*rabit.System, state.Snapshot) {
		b.Helper()
		sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true})
		if err != nil {
			b.Fatal(err)
		}
		return sys, sys.Engine.Model()
	}
	b.Run("serial", func(b *testing.B) {
		sys, model := newSim(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.Simulator.ValidTrajectory(cmds[i%2], model); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("twoArms", func(b *testing.B) {
		sys, model := newSim(b)
		b.ResetTimer()
		var wg sync.WaitGroup
		for _, cmd := range cmds {
			wg.Add(1)
			go func(cmd action.Command) {
				defer wg.Done()
				for i := 0; i < b.N/2; i++ {
					if err := sys.Simulator.ValidTrajectory(cmd, model); err != nil {
						b.Error(err)
						return
					}
				}
			}(cmd)
		}
		wg.Wait()
	})
}

// BenchmarkFig5_SafeWorkflow runs the complete Fig. 5 testbed workflow
// under the modified RABIT — the paper's baseline safe execution.
func BenchmarkFig5_SafeWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := rabit.NewTestbed(rabit.Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
			b.Fatal(err)
		}
		if len(sys.Alerts()) != 0 {
			b.Fatal("false positive in the safe workflow")
		}
	}
}

// BenchmarkFig5_BugsABC replays the paper's annotated Fig. 5 bugs (A, B,
// C) under the modified configuration and logs their outcomes.
func BenchmarkFig5_BugsABC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := eval.RunBugStudy(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rendered := ""
		for _, spec := range []struct {
			id    int
			label string
		}{{1, "Bug A (door-open omitted)"}, {7, "Bug B (ned2 random move)"}, {14, "Bug C (pick-up omitted)"}} {
			o, _ := st.Outcome(spec.id)
			rendered += fmt.Sprintf("%-28s initial=%v modified=%v +sim=%v\n", spec.label,
				o.Detected[eval.ConfigInitial], o.Detected[eval.ConfigModified], o.Detected[eval.ConfigModifiedSim])
		}
		logOncePerBench(b, rendered)
	}
}

// BenchmarkFig6_BugD replays the Fig. 6 coordinate-edit bug (the held
// vial crashing into the tray) across the three configurations.
func BenchmarkFig6_BugD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := eval.RunBugStudy(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		withVial, _ := st.Outcome(13)
		bare, _ := st.Outcome(9)
		rendered := fmt.Sprintf(
			"Bug D bare gripper:  initial=%v modified=%v\nBug D holding vial:  initial=%v modified=%v (ground truth: %v)\n",
			bare.Detected[eval.ConfigInitial], bare.Detected[eval.ConfigModified],
			withVial.Detected[eval.ConfigInitial], withVial.Detected[eval.ConfigModified],
			withVial.GroundTruthDamage)
		logOncePerBench(b, rendered)
	}
}

// BenchmarkLatencyOverhead regenerates the Section II-C latency numbers:
// RABIT's checking overhead relative to paced command execution, without
// the simulator (paper: 1.5%) and with its GUI (paper: 112%).
func BenchmarkLatencyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Latency(int64(i+1), 2000)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, eval.RenderLatency(rows))
		b.ReportMetric(rows[0].OverheadPct, "noSim-%")
		b.ReportMetric(rows[len(rows)-1].OverheadPct, "guiSim-%")
	}
}

// BenchmarkRADMining regenerates the Section II-A rule-gathering step:
// synthesising a RAD-style corpus and mining it for implied rules.
func BenchmarkRADMining(b *testing.B) {
	corpus, lab, err := radmine.GenerateCorpus([]int64{1, 2, 3})
	if err != nil {
		b.Fatal(err)
	}
	miner := radmine.NewMiner(lab)
	rendered := ""
	for _, m := range miner.Mine(corpus) {
		rendered += m.String() + "\n"
	}
	logOncePerBench(b, rendered)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := miner.Mine(corpus); len(got) == 0 {
			b.Fatal("mining found nothing")
		}
	}
}

// BenchmarkRuleValidation micro-benchmarks one full rulebase validation
// pass (the hot path of Fig. 2 line 6).
func BenchmarkRuleValidation(b *testing.B) {
	sys, err := rabit.NewTestbed(rabit.Options{})
	if err != nil {
		b.Fatal(err)
	}
	model := sys.Engine.Model()
	custom, err := sys.Lab.CustomRules()
	if err != nil {
		b.Fatal(err)
	}
	rb := rules.MustNewRulebase(sys.Lab, rules.Config{
		Generation: rules.GenModified, Multiplex: rules.MultiplexTime,
	}, custom...)
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}
	model.Set(state.ArmAsleep("ned2"), state.Bool(true))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := rb.Validate(model, cmd); len(v) != 0 {
			b.Fatalf("unexpected violation: %v", v)
		}
	}
}

// BenchmarkEngineThroughput is the replay-throughput benchmark: G
// concurrent experiment scripts replay paced command streams against one
// engine, comparing the seed's single-lock deployment (all scripts
// behind one shared interceptor — the only safe concurrent use of the
// serial pipeline) against the sharded per-device pipeline. The headline
// metric is commands fully processed per second of wall clock.
func BenchmarkEngineThroughput(b *testing.B) {
	var mu sync.Mutex
	var rows []eval.ThroughputResult
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"sharded", false}} {
		for _, scripts := range []int{1, 4, 16} {
			mode, scripts := mode, scripts
			b.Run(fmt.Sprintf("%s/scripts=%d", mode.name, scripts), func(b *testing.B) {
				var commands int
				var wall time.Duration
				var last eval.ThroughputResult
				for i := 0; i < b.N; i++ {
					res, err := eval.Throughput(eval.ThroughputOptions{
						Scripts:           scripts,
						CommandsPerScript: 40,
						Speedup:           200,
						Serial:            mode.serial,
						Seed:              int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					commands += res.Commands
					wall += res.Wall
					last = *res
				}
				if wall > 0 {
					b.ReportMetric(float64(commands)/wall.Seconds(), "cmds/s")
				}
				mu.Lock()
				rows = append(rows, last)
				mu.Unlock()
			})
		}
	}
	logOncePerBench(b, eval.RenderThroughput(rows))
}

// BenchmarkLabeledObsOverhead measures what the labeled observability
// plane (per-rule eval/fire counters, eval-latency histograms, near-miss
// margin histograms) adds to a paced command stream, in the same
// relative-to-paced-wall terms as the paper's Section II-C overhead
// numbers. The CI gate holds the reported labeled-% at ≤2.
func BenchmarkLabeledObsOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(noMetrics bool) *eval.ThroughputResult {
			res, err := eval.Throughput(eval.ThroughputOptions{
				Scripts:           4,
				CommandsPerScript: 40,
				Speedup:           200,
				NoRuleMetrics:     noMetrics,
				Seed:              int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		off := run(true)
		on := run(false)
		// The labeled plane's cost is the growth in RABIT's mean checking
		// time per command; pacing dominates the denominator exactly as it
		// does in a real lab, so the percentage is the production-facing
		// number.
		wallPerCmd := off.Wall.Seconds() / float64(off.Commands)
		delta := (on.CheckPerCommand - off.CheckPerCommand).Seconds()
		pct := 100 * delta / wallPerCmd
		if pct < 0 {
			pct = 0 // timing jitter: the labeled run checked faster
		}
		logOncePerBench(b, fmt.Sprintf(
			"labeled observability: check/cmd %v (off) → %v (on), paced wall/cmd %.3fms, overhead %.3f%%\n",
			off.CheckPerCommand, on.CheckPerCommand, 1000*wallPerCmd, pct))
		b.ReportMetric(pct, "labeled-%")
	}
}

// BenchmarkSolubilityWorkflow runs the Fig. 1(b) production experiment
// end-to-end under RABIT.
func BenchmarkSolubilityWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := rabit.NewHeinProduction(rabit.Options{
			Stage: rabit.StageProduction, Multiplex: rabit.MultiplexNone, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workflow.RunSolubility(sys.Session, workflow.DefaultSolubilityParams())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Dissolved {
			b.Fatal("solid did not dissolve")
		}
	}
}
