// Command labsim drives the Extended Simulator standalone (Fig. 3 of the
// paper): it validates a robot-arm move against the deck's cuboid model
// and, with -gui, renders an ASCII view of the scene.
//
// Usage:
//
//	labsim -deck testbed -arm viperx -x 0.32 -y 0.22 -z 0.25 [-gui]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labsim:", err)
		os.Exit(1)
	}
}

func run() error {
	deck := flag.String("deck", "testbed", "testbed | hein | berlinguette")
	armID := flag.String("arm", "", "arm to move (default: the deck's first arm)")
	x := flag.Float64("x", 0.32, "target x (arm frame)")
	y := flag.Float64("y", 0.22, "target y (arm frame)")
	z := flag.Float64("z", 0.25, "target z (arm frame)")
	gui := flag.Bool("gui", false, "render the scene as ASCII art")
	flag.Parse()

	var spec *config.LabSpec
	switch *deck {
	case "testbed":
		spec = labs.TestbedSpec()
	case "hein":
		spec = labs.HeinProductionSpec()
	case "berlinguette":
		spec = labs.BerlinguetteSpec()
	default:
		return fmt.Errorf("unknown deck %q", *deck)
	}
	lab, err := config.Compile(spec)
	if err != nil {
		return err
	}
	if *armID == "" {
		*armID = lab.ArmIDs()[0]
	}

	opts := []sim.Option{}
	if *gui {
		opts = append(opts, sim.WithGUI(640, 480))
	}
	s, err := sim.New(lab, opts...)
	if err != nil {
		return err
	}

	cmd := action.Command{
		Device: *armID,
		Action: action.MoveRobot,
		Target: geom.V(*x, *y, *z),
	}
	model := lab.InitialModelState()
	if err := s.ValidTrajectory(cmd, model); err != nil {
		fmt.Println("INVALID TRAJECTORY:", err)
	} else {
		fmt.Printf("trajectory of %s to (%.3f, %.3f, %.3f) is valid\n", *armID, *x, *y, *z)
		s.Observe(cmd, model)
	}
	if *gui {
		fmt.Println(s.RenderASCII(100, 30))
		fmt.Printf("(%d GUI frames rendered for this check)\n", s.GUIFrames())
	}
	return nil
}
