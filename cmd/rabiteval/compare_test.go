package main

import "testing"

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"pooled_scen_per_sec":          +1,
		"p50_speedup_no_cache_vs_spec": +1,
		"pooled_speedup_x":             +1,
		"scaling_8v1_x":                +1,
		"detected":                     +1,
		"check_per_command_ns":         -1,
		"p95":                          -1,
		"missed":                       -1,
		"false_alarms":                 -1,
		"damage_micros":                -1,
		"oracle_errors":                -1,
		"scenarios":                    0,
		"incidents_filed":              0,
	}
	for key, want := range cases {
		if got := metricDirection(key); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", key, got, want)
		}
	}
}

func regressionCount(t *testing.T, oldM, newM map[string]any, threshold float64) (int, map[string]string) {
	t.Helper()
	rows, n := compareMetrics(oldM, newM, threshold)
	verdicts := map[string]string{}
	for _, r := range rows {
		verdicts[r.Key] = r.Verdict
	}
	return n, verdicts
}

func TestCompareMetricsThreshold(t *testing.T) {
	oldM := map[string]any{
		"pooled_scen_per_sec": 100.0,
		"missed":              float64(2),
		"scenarios":           float64(4096),
	}
	// Within the 50% band in both directions: no regression.
	n, v := regressionCount(t, oldM, map[string]any{
		"pooled_scen_per_sec": 60.0,
		"missed":              float64(2),
		"scenarios":           float64(4096),
	}, 0.5)
	if n != 0 || v["pooled_scen_per_sec"] != "ok" {
		t.Fatalf("40%% throughput drop at ±50%%: regressions=%d verdicts=%v", n, v)
	}

	// A higher-is-better metric falling past the threshold regresses.
	n, v = regressionCount(t, oldM, map[string]any{
		"pooled_scen_per_sec": 40.0,
		"missed":              float64(2),
		"scenarios":           float64(4096),
	}, 0.5)
	if n != 1 || v["pooled_scen_per_sec"] != "REGRESSION" {
		t.Fatalf("60%% throughput drop at ±50%%: regressions=%d verdicts=%v", n, v)
	}

	// A lower-is-better metric rising past the threshold regresses, and
	// an ungated metric moving wildly stays informational.
	n, v = regressionCount(t, oldM, map[string]any{
		"pooled_scen_per_sec": 100.0,
		"missed":              float64(9),
		"scenarios":           float64(1),
	}, 0.5)
	if n != 1 || v["missed"] != "REGRESSION" || v["scenarios"] != "info" {
		t.Fatalf("miss-count spike: regressions=%d verdicts=%v", n, v)
	}

	// Large moves in the good direction report "improved", never gate.
	n, v = regressionCount(t, oldM, map[string]any{
		"pooled_scen_per_sec": 400.0,
		"missed":              float64(0),
		"scenarios":           float64(4096),
	}, 0.5)
	if n != 0 || v["pooled_scen_per_sec"] != "improved" || v["missed"] != "improved" {
		t.Fatalf("improvements misclassified: regressions=%d verdicts=%v", n, v)
	}
}

func TestCompareMetricsBoolInvariant(t *testing.T) {
	// Invariant bits gate on any true→false flip regardless of threshold.
	n, v := regressionCount(t,
		map[string]any{"worker_invariant": true, "pooled_naive_equal": true},
		map[string]any{"worker_invariant": false, "pooled_naive_equal": true},
		1000)
	if n != 1 || v["worker_invariant"] != "REGRESSION" || v["pooled_naive_equal"] != "ok" {
		t.Fatalf("bool flip: regressions=%d verdicts=%v", n, v)
	}
	n, v = regressionCount(t,
		map[string]any{"worker_invariant": false},
		map[string]any{"worker_invariant": true}, 0.5)
	if n != 0 || v["worker_invariant"] != "improved" {
		t.Fatalf("false→true: regressions=%d verdicts=%v", n, v)
	}
}

func TestCompareMetricsZeroBaselineAndMissingKeys(t *testing.T) {
	// Zero baseline: a lower-is-better metric appearing from nowhere is a
	// regression (relative change is undefined, absolute change is not).
	n, v := regressionCount(t,
		map[string]any{"oracle_errors": float64(0), "detected": float64(0)},
		map[string]any{"oracle_errors": float64(3), "detected": float64(5)}, 0.5)
	if n != 1 || v["oracle_errors"] != "REGRESSION" || v["detected"] != "ok" {
		t.Fatalf("zero baseline: regressions=%d verdicts=%v", n, v)
	}

	// Keys present on only one side are skipped, not crashed on — schema
	// growth between PRs must not break old baselines.
	n, v = regressionCount(t,
		map[string]any{"old_only_ns": float64(1)},
		map[string]any{"new_only_ns": float64(9)}, 0.5)
	if n != 0 || len(v) != 0 {
		t.Fatalf("disjoint keys: regressions=%d verdicts=%v", n, v)
	}

	// Non-numeric, non-bool values stay informational.
	n, v = regressionCount(t,
		map[string]any{"mode_ns": "pooled"},
		map[string]any{"mode_ns": "naive"}, 0.5)
	if n != 0 || v["mode_ns"] != "info" {
		t.Fatalf("string metric: regressions=%d verdicts=%v", n, v)
	}
}
