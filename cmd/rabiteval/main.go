// Command rabiteval regenerates the paper's evaluation artifacts: every
// table (I–V), the Fig. 5/6 bug replays, the Section II-C latency
// measurement, and the Section IV detection-rate progression.
//
// Usage:
//
//	rabiteval               run everything
//	rabiteval -table 5      run one table (1, 2, 3, 4, 5)
//	rabiteval -fig 5        run one figure experiment (5, 6)
//	rabiteval -latency      run the latency experiment
//	rabiteval -throughput   run the replay-throughput benchmark
//	rabiteval -motion       run the motion-planning fast-path benchmark
//	                        (-json FILE additionally writes the rows as JSON)
//	rabiteval -motion -cold run the cold-path adversarial benchmark: every
//	                        command targets a fresh point, so every check
//	                        runs the full sweep (legacy vs brute vs
//	                        indexed, serial and sharded)
//	rabiteval -campaign -n 10000 -seed 1 -workers 8
//	                        run a seeded safety campaign: n generated
//	                        fault-injection scenarios through pooled
//	                        engine stacks, with naive-construction and
//	                        worker-scaling calibration runs (-json FILE
//	                        writes the bench artifact; -incident-dir DIR
//	                        files a bundle per alert and per missed
//	                        unsafe injection; with -metrics addr the
//	                        server also streams live NDJSON progress on
//	                        /campaign and rabit_campaign_* gauges on
//	                        /metrics/prom)
//	rabiteval -incident-dir DIR
//	                        with the bug study (all, -table 5, -fig 5/6):
//	                        run the fully equipped configuration with the
//	                        flight recorder, writing one incident bundle
//	                        per detected bug under DIR
//	rabiteval -incidents DIR
//	                        forensics mode: reconstruct a human-readable
//	                        causal timeline for every incident bundle
//	                        under DIR and aggregate detection-latency
//	                        stats (no experiments run)
//	rabiteval -trace-out FILE
//	                        with the bug study: export every retained
//	                        causal trace (alert traces always retained)
//	                        as OTLP-JSON lines to FILE
//	rabiteval -trace FILE
//	                        render mode: print every trace in an
//	                        OTLP-JSON file as a cause-first span tree,
//	                        alert traces first (no experiments run)
//	rabiteval -rules        run the per-rule safety report: every rule
//	                        ranked by fire rate, eval latency, and
//	                        near-miss margin over the bug study
//	rabiteval -compare old.json new.json
//	                        diff two bench artifacts metric by metric;
//	                        non-zero exit when a gated metric regressed
//	                        beyond -threshold (default 50%)
//	rabiteval -validate-om SRC
//	                        validate one OpenMetrics exposition (file
//	                        path or http URL) against the grammar
//	rabiteval -version      print build provenance and exit
//
// With -metrics addr the process serves live telemetry while the
// experiments run: /debug/vars (expvar), /metrics (text exposition), and
// /debug/pprof (profiling). Every lab system the harness builds registers
// its registry there, so a long evaluation can be watched mid-flight.
// Off by default; existing behaviour is unchanged without the flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/env"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	"repro/internal/rules"
)

// benchSchema versions the JSON envelope every benchmark mode writes.
// All four artifacts (-throughput, -motion, -motion -cold, -campaign)
// share it: config holds the knobs that produced the run, metrics the
// headline scalars CI gates read, rows the per-configuration detail.
const benchSchema = "rabit-bench/v1"

// writeBenchJSON persists one benchmark artifact in the shared envelope.
func writeBenchJSON(path, name string, config, metrics map[string]any, rows any) error {
	doc := struct {
		Schema    string         `json:"schema"`
		Name      string         `json:"name"`
		Timestamp string         `json:"timestamp"`
		Build     obs.BuildInfo  `json:"build"`
		Config    map[string]any `json:"config"`
		Metrics   map[string]any `json:"metrics"`
		Rows      any            `json:"rows,omitempty"`
	}{
		Schema:    benchSchema,
		Name:      name,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Build:     obs.ReadBuild(),
		Config:    config,
		Metrics:   metrics,
		Rows:      rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rabiteval:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "regenerate one table (1-5)")
	fig := flag.Int("fig", 0, "regenerate one figure experiment (5 or 6)")
	latency := flag.Bool("latency", false, "run the latency experiment")
	throughput := flag.Bool("throughput", false, "run the replay-throughput benchmark (serial vs sharded)")
	gatewayMode := flag.Bool("gateway", false, "with -throughput, also measure the HTTP gateway deployment")
	labsN := flag.Int("labs", 4, "with -gateway, the number of lab tenants in the gateway pool")
	motion := flag.Bool("motion", false, "run the motion-planning fast-path benchmark (caches + speculation)")
	cold := flag.Bool("cold", false, "with -motion, run the cold-path adversarial benchmark instead (every command a fresh target)")
	campaignMode := flag.Bool("campaign", false, "run a seeded safety campaign (pooled engines, parallel workers)")
	campaignN := flag.Int("n", 10000, "with -campaign, the number of scenarios")
	workers := flag.Int("workers", 0, "with -campaign, parallel worker count (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "with -throughput, -motion, or -campaign, also write the results to this JSON file")
	pilot := flag.Bool("pilot", false, "run the pilot-study configuration-error experiment")
	rulesMode := flag.Bool("rules", false, "run the per-rule safety report: rank every rule by fire rate, eval latency, and near-miss margin")
	compareMode := flag.Bool("compare", false, "compare two bench JSON artifacts: rabiteval -compare old.json new.json (non-zero exit on regression)")
	compareThreshold := flag.Float64("threshold", 0.5, "with -compare, tolerated relative change in the bad direction (0.5 = 50%)")
	validateOM := flag.String("validate-om", "", "validate one OpenMetrics exposition (file path or http URL) and exit")
	version := flag.Bool("version", false, "print build provenance and exit")
	metricsAddr := flag.String("metrics", "", "serve /debug/vars, /metrics, and pprof on this address while experiments run")
	incidentDir := flag.String("incident-dir", "", "write flight-recorder incident bundles from the bug study here")
	incidents := flag.String("incidents", "", "analyze the incident bundles under this directory and exit")
	traceOut := flag.String("trace-out", "", "with the bug study, export retained causal traces (OTLP-JSON lines) here")
	traceIn := flag.String("trace", "", "render the span trees in this OTLP-JSON trace file and exit")
	seed := flag.Int64("seed", 1, "noise seed")
	flag.Parse()

	if *version {
		fmt.Println("rabiteval", obs.ReadBuild())
		return nil
	}
	if *compareMode {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare wants two artifacts: rabiteval -compare old.json new.json")
		}
		return compareRun(flag.Arg(0), flag.Arg(1), *compareThreshold)
	}
	if *validateOM != "" {
		return validateOMRun(*validateOM)
	}
	if *incidents != "" {
		return incidentsRun(*incidents)
	}
	if *traceIn != "" {
		out, err := eval.RenderTraceFile(*traceIn)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr)
	}

	if *rulesMode {
		return rulesRun(*seed)
	}
	if *campaignMode {
		return campaignRun(*campaignN, uint64(*seed), *workers, *jsonPath, *incidentDir)
	}

	all := *table == 0 && *fig == 0 && !*latency && !*throughput && !*motion && !*pilot && !*cold

	if all || *table == 1 {
		if err := tableI(*seed); err != nil {
			return err
		}
	}
	if all || *table == 2 {
		tableII()
	}
	if all || *table == 3 || *table == 4 {
		if err := tablesIIIandIV(*seed, *table); err != nil {
			return err
		}
	}
	var study *eval.BugStudy
	needStudy := all || *table == 5 || *fig == 5 || *fig == 6
	if needStudy {
		var err error
		study, err = eval.RunBugStudyForensics(*seed, *incidentDir, *traceOut)
		if err != nil {
			return err
		}
		if *incidentDir != "" {
			fmt.Printf("incident bundles written to %s\n\n", *incidentDir)
		}
		if *traceOut != "" {
			fmt.Printf("causal traces written to %s (render with rabiteval -trace %s)\n\n",
				*traceOut, *traceOut)
		}
	}
	if all || *table == 5 {
		tableV(study)
	}
	if all || *fig == 5 {
		fig5(study)
	}
	if all || *fig == 6 {
		fig6(study)
	}
	if all || *latency {
		if err := latencyRun(*seed); err != nil {
			return err
		}
	}
	if all || *throughput {
		gwLabs := 0
		if *throughput && *gatewayMode {
			gwLabs = *labsN
		}
		if err := throughputRun(*seed, *jsonPath, gwLabs); err != nil {
			return err
		}
	}
	if *motion && *cold {
		if err := coldRun(*seed, *jsonPath); err != nil {
			return err
		}
	} else if all || *motion {
		var motionJSON string
		if *motion {
			motionJSON = *jsonPath
		}
		if err := motionRun(*seed, motionJSON); err != nil {
			return err
		}
	}
	if all || *pilot {
		if err := pilotRun(); err != nil {
			return err
		}
	}
	return nil
}

// incidentsRun is the forensics mode: it loads every incident bundle
// under dir, prints one causal timeline per incident, and closes with
// the aggregate detection-latency report.
func incidentsRun(dir string) error {
	incs, err := recorder.LoadIncidents(dir)
	if err != nil {
		return err
	}
	fmt.Printf("=== Incident forensics: %d bundles under %s ===\n\n", len(incs), dir)
	for _, in := range incs {
		fmt.Println(eval.RenderIncidentTimeline(in))
	}
	fmt.Print(eval.RenderIncidentReport(eval.BuildIncidentReport(incs)))
	return nil
}

// rulesRun is the per-rule safety report: the sixteen-bug study plus a
// clean run, every rule's labeled metric series merged and ranked by
// fire rate.
func rulesRun(seed int64) error {
	fmt.Println("=== Per-rule safety report: fire rate, eval latency, near-miss margin ===")
	rows, err := eval.RulesReport(seed)
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderRuleReport(rows))
	fmt.Println()
	return nil
}

// throughputRun measures replay throughput for the serial single-lock
// pipeline (all scripts behind one shared interceptor — the seed
// architecture's only safe concurrent deployment) and the sharded
// per-device pipeline, at 1, 4, and 16 concurrent scripts. With
// gwLabs > 0 it extends the trajectory with the gateway deployment:
// the same scripts issued over the HTTP API against gwLabs pooled lab
// tenants.
func throughputRun(seed int64, jsonPath string, gwLabs int) error {
	fmt.Println("=== Replay throughput: serial single-lock vs sharded pipeline ===")
	var rows []eval.ThroughputResult
	for _, serial := range []bool{true, false} {
		for _, scripts := range []int{1, 4, 16} {
			res, err := eval.Throughput(eval.ThroughputOptions{
				Scripts:           scripts,
				CommandsPerScript: 40,
				Speedup:           200,
				Serial:            serial,
				Seed:              seed,
			})
			if err != nil {
				return err
			}
			rows = append(rows, *res)
		}
	}
	if gwLabs > 0 {
		counts := []int{gwLabs}
		if gwLabs < 16 {
			counts = append(counts, 16)
		}
		for _, scripts := range counts {
			res, err := eval.GatewayThroughput(eval.GatewayThroughputOptions{
				Labs:              gwLabs,
				Scripts:           scripts,
				CommandsPerScript: 40,
				Speedup:           200,
				Seed:              seed,
			})
			if err != nil {
				return err
			}
			rows = append(rows, *res)
		}
	}
	fmt.Print(eval.RenderThroughput(rows))
	if s := throughputSpeedup(rows, 16); s > 0 {
		fmt.Printf("→ sharded/serial speedup at 16 scripts: %.1f×\n", s)
	}
	fmt.Println()
	if jsonPath != "" {
		if err := writeThroughputJSON(jsonPath, rows); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
	return nil
}

// throughputSpeedup returns sharded-over-serial commands/sec at the
// given script count, or 0 if either row is missing.
func throughputSpeedup(rows []eval.ThroughputResult, scripts int) float64 {
	var serial, sharded float64
	for _, r := range rows {
		if r.Scripts != scripts {
			continue
		}
		if r.Mode == "serial" {
			serial = r.CommandsPerSec
		} else {
			sharded = r.CommandsPerSec
		}
	}
	if serial <= 0 {
		return 0
	}
	return sharded / serial
}

// writeThroughputJSON persists the measured rows in the shared bench
// envelope.
func writeThroughputJSON(path string, rows []eval.ThroughputResult) error {
	type row struct {
		Mode           string  `json:"mode"`
		Labs           int     `json:"labs,omitempty"`
		Scripts        int     `json:"scripts"`
		Commands       int     `json:"commands"`
		WallNS         int64   `json:"wall_ns"`
		CommandsPerSec float64 `json:"commands_per_sec"`
		CheckPerCmdNS  int64   `json:"check_per_command_ns"`
		ValidateP50NS  int64   `json:"validate_p50_ns"`
		FetchP50NS     int64   `json:"fetch_p50_ns"`
		CompareP50NS   int64   `json:"compare_p50_ns"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{
			Mode:           r.Mode,
			Labs:           r.Labs,
			Scripts:        r.Scripts,
			Commands:       r.Commands,
			WallNS:         r.Wall.Nanoseconds(),
			CommandsPerSec: r.CommandsPerSec,
			CheckPerCmdNS:  r.CheckPerCommand.Nanoseconds(),
			ValidateP50NS:  r.Validate.P50.Nanoseconds(),
			FetchP50NS:     r.Fetch.P50.Nanoseconds(),
			CompareP50NS:   r.Compare.P50.Nanoseconds(),
		})
	}
	return writeBenchJSON(path, "engine_throughput",
		map[string]any{"commands_per_script": 40, "speedup_factor": 200},
		map[string]any{"sharded_speedup_16_scripts": throughputSpeedup(rows, 16)},
		out)
}

// motionRun measures the motion-planning fast path: the identical
// motion-heavy station-visit replay under three configurations — caches
// off, caches on, caches plus speculative lookahead.
func motionRun(seed int64, jsonPath string) error {
	fmt.Println("=== Motion-planning fast path: plan/verdict caches + speculative lookahead ===")
	rows, err := eval.Motion(eval.MotionOptions{Visits: 12, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderMotion(rows))
	if s := eval.MotionSpeedup(rows); s > 0 {
		fmt.Printf("→ validate+trajectory p50 speedup, no-cache vs cache+spec: %.1f×\n", s)
	}
	fmt.Println()
	if jsonPath != "" {
		if err := writeMotionJSON(jsonPath, rows); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
	return nil
}

// writeMotionJSON persists the motion rows in the shared bench envelope.
func writeMotionJSON(path string, rows []eval.MotionResult) error {
	type row struct {
		Mode                string `json:"mode"`
		Commands            int    `json:"commands"`
		MotionCommands      int    `json:"motion_commands"`
		WallNS              int64  `json:"wall_ns"`
		ValidateP50NS       int64  `json:"validate_p50_ns"`
		ValidateP95NS       int64  `json:"validate_p95_ns"`
		TrajectoryP50NS     int64  `json:"trajectory_p50_ns"`
		TrajectoryP95NS     int64  `json:"trajectory_p95_ns"`
		PlanHits            int64  `json:"plan_cache_hits"`
		PlanMisses          int64  `json:"plan_cache_misses"`
		PlanWarmStarts      int64  `json:"plan_cache_warm_starts"`
		VerdictHits         int64  `json:"verdict_cache_hits"`
		VerdictMisses       int64  `json:"verdict_cache_misses"`
		EpochBumps          int64  `json:"deck_epoch_bumps"`
		Speculations        int64  `json:"speculations"`
		SpeculationHits     int64  `json:"speculation_hits"`
		SpeculationsDropped int64  `json:"speculations_dropped"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{
			Mode:                r.Mode,
			Commands:            r.Commands,
			MotionCommands:      r.MotionCommands,
			WallNS:              r.Wall.Nanoseconds(),
			ValidateP50NS:       r.Validate.P50.Nanoseconds(),
			ValidateP95NS:       r.Validate.P95.Nanoseconds(),
			TrajectoryP50NS:     r.Trajectory.P50.Nanoseconds(),
			TrajectoryP95NS:     r.Trajectory.P95.Nanoseconds(),
			PlanHits:            r.PlanHits,
			PlanMisses:          r.PlanMisses,
			PlanWarmStarts:      r.PlanWarmStarts,
			VerdictHits:         r.VerdictHits,
			VerdictMisses:       r.VerdictMisses,
			EpochBumps:          r.EpochBumps,
			Speculations:        r.Speculations,
			SpeculationHits:     r.SpeculationHits,
			SpeculationsDropped: r.SpeculationsDropped,
		})
	}
	return writeBenchJSON(path, "motion_fast_path",
		map[string]any{"visits": 12},
		map[string]any{"p50_speedup_no_cache_vs_spec": eval.MotionSpeedup(rows)},
		out)
}

// coldRun measures the cold-path geometry engine: the identical seeded
// fresh-target streams replayed under the legacy, brute-force, and
// indexed sweep pipelines, serially and sharded across arms.
func coldRun(seed int64, jsonPath string) error {
	fmt.Println("=== Cold-path geometry: adversarial fresh-target sweep (legacy vs brute vs indexed) ===")
	rows, err := eval.MotionCold(eval.ColdOptions{Checks: 150, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderCold(rows))
	fmt.Println()
	if jsonPath != "" {
		if err := writeColdJSON(jsonPath, rows); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
	return nil
}

// writeColdJSON persists the cold rows in the shared bench envelope.
func writeColdJSON(path string, rows []eval.ColdResult) error {
	type row struct {
		Mode          string `json:"mode"`
		Context       string `json:"context"`
		Checks        int    `json:"checks"`
		Accepts       int    `json:"accepts"`
		WallNS        int64  `json:"wall_ns"`
		P50NS         int64  `json:"p50_ns"`
		P95NS         int64  `json:"p95_ns"`
		PlanHits      int64  `json:"plan_cache_hits"`
		PlanMisses    int64  `json:"plan_cache_misses"`
		Candidates    int64  `json:"index_candidates"`
		Kept          int64  `json:"broadphase_kept"`
		Pruned        int64  `json:"broadphase_pruned"`
		IndexRebuilds int64  `json:"index_rebuilds"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{
			Mode:          r.Mode,
			Context:       r.Context,
			Checks:        r.Checks,
			Accepts:       r.Accepts,
			WallNS:        r.Wall.Nanoseconds(),
			P50NS:         r.P50.Nanoseconds(),
			P95NS:         r.P95.Nanoseconds(),
			PlanHits:      r.PlanHits,
			PlanMisses:    r.PlanMisses,
			Candidates:    r.Candidates,
			Kept:          r.Kept,
			Pruned:        r.Pruned,
			IndexRebuilds: r.Rebuilds,
		})
	}
	return writeBenchJSON(path, "cold_geometry",
		map[string]any{"checks": 150},
		map[string]any{"cold_p95_speedup": eval.ColdSpeedup(rows)},
		out)
}

// campaignRun executes a seeded safety campaign and reports the pooled
// runner's throughput against three calibration runs at min(n, 1000)
// scenarios: the naive per-scenario-construction baseline (the speedup
// denominator) and pooled runs at 1 and 8 workers (the scaling and
// determinism checks). The calibration size is capped because the naive
// baseline is, by design, several times slower than the thing being
// measured.
func campaignRun(n int, seed uint64, workers int, jsonPath, incidentDir string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cores := runtime.NumCPU()
	fmt.Printf("=== Campaign: %d seeded scenarios, %d workers, %d core(s) ===\n", n, workers, cores)

	// Live telemetry: the campaign registry's rabit_campaign_* gauges
	// land on /metrics and /metrics/prom, and /campaign streams NDJSON
	// progress snapshots — both served by -metrics while the run is hot.
	reg := obs.NewRegistry("campaign")
	obs.Register(reg)
	defer obs.Unregister(reg)
	prog := campaign.NewProgress(reg)
	obs.RegisterHTTPHandler("/campaign", prog)

	pooled, err := campaign.Run(campaign.Options{N: n, Seed: seed, Workers: workers, IncidentDir: incidentDir, Progress: prog})
	if err != nil {
		return err
	}
	fmt.Printf("pooled   n=%-7d workers=%d: %8.1f scen/s\n", n, workers, pooled.ScenariosPerSec)

	nCal := min(n, 1000)
	naive, err := campaign.Run(campaign.Options{N: nCal, Seed: seed, Workers: workers, Naive: true})
	if err != nil {
		return err
	}
	fmt.Printf("naive    n=%-7d workers=%d: %8.1f scen/s\n", nCal, workers, naive.ScenariosPerSec)
	speedup := 0.0
	if naive.ScenariosPerSec > 0 {
		speedup = pooled.ScenariosPerSec / naive.ScenariosPerSec
	}
	fmt.Printf("→ pooled speedup over per-scenario construction: %.1f×\n", speedup)

	w1, err := campaign.Run(campaign.Options{N: nCal, Seed: seed, Workers: 1})
	if err != nil {
		return err
	}
	w8, err := campaign.Run(campaign.Options{N: nCal, Seed: seed, Workers: 8})
	if err != nil {
		return err
	}
	scaling := 0.0
	if w1.ScenariosPerSec > 0 {
		scaling = w8.ScenariosPerSec / w1.ScenariosPerSec
	}
	fmt.Printf("scaling  n=%-7d w1 %.1f scen/s, w8 %.1f scen/s → %.1f× on %d core(s)\n",
		nCal, w1.ScenariosPerSec, w8.ScenariosPerSec, scaling, cores)

	// The determinism contract, checked end to end: worker count must not
	// change the summary, and the pooled fast path must compute exactly
	// what the naive baseline computes.
	invariant := w1.Counts() == w8.Counts()
	norm := func(c string) string {
		c = strings.Replace(c, "naive=true", "naive=?", 1)
		return strings.Replace(c, "naive=false", "naive=?", 1)
	}
	equivalent := norm(w1.Counts()) == norm(naive.Counts())
	fmt.Printf("worker-invariant summary: %v; pooled ≡ naive: %v\n\n", invariant, equivalent)
	fmt.Print(pooled.Counts())
	if incidentDir != "" {
		fmt.Printf("\nincident bundles (alerts + missed unsafe injections) under %s\n", incidentDir)
	}
	fmt.Println()
	if !invariant {
		return fmt.Errorf("campaign: summary varies with worker count")
	}
	if !equivalent {
		return fmt.Errorf("campaign: pooled and naive runs disagree at n=%d", nCal)
	}

	if jsonPath != "" {
		totals := pooled.Totals()
		type faultRow struct {
			Fault string `json:"fault"`
			campaign.KindStats
		}
		var rows []faultRow
		for k, ks := range pooled.ByFault {
			rows = append(rows, faultRow{Fault: campaign.FaultKind(k).String(), KindStats: ks})
		}
		err := writeBenchJSON(jsonPath, "campaign_throughput",
			map[string]any{
				"n":             n,
				"n_calibration": nCal,
				"seed":          seed,
				"workers":       workers,
				"cores":         cores,
				"incident_dir":  incidentDir,
			},
			map[string]any{
				"pooled_scen_per_sec": pooled.ScenariosPerSec,
				"naive_scen_per_sec":  naive.ScenariosPerSec,
				"pooled_speedup_x":    speedup,
				"w1_scen_per_sec":     w1.ScenariosPerSec,
				"w8_scen_per_sec":     w8.ScenariosPerSec,
				"scaling_8v1_x":       scaling,
				"worker_invariant":    invariant,
				"pooled_naive_equal":  equivalent,
				"scenarios":           totals.Scenarios,
				"unsafe":              totals.Unsafe,
				"detected":            totals.Detected,
				"missed":              totals.Missed,
				"benign_alerts":       totals.BenignAlerts,
				"false_alarms":        pooled.FalseAlarms,
				"incidents_filed":     pooled.IncidentsFiled,
				"damage_micros":       pooled.DamageMicros,
				"oracle_errors":       pooled.OracleErrors,
				"run_errors":          pooled.RunErrors,
				"setup_errors":        pooled.SetupErrors,
			},
			rows)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
	return nil
}

func pilotRun() error {
	fmt.Println("=== Section V-A: pilot-study configuration mistakes vs. the linter ===")
	results, err := eval.RunPilotStudy()
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderPilot(results))
	fmt.Println()
	return nil
}

func tableI(seed int64) error {
	fmt.Println("=== Table I: capabilities of RABIT's three stages ===")
	rows, err := eval.TableI(seed)
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderTableI(rows))
	fmt.Println()
	return nil
}

func tableII() {
	fmt.Println("=== Table II: state transition table (robot-arm rows) ===")
	for _, e := range rules.TransitionTable() {
		fmt.Printf("%-62s pre=%v action=%s post=%v\n",
			e.Example, e.Preconditions, e.ActionLabel, e.Postconditions)
	}
	fmt.Println()
}

func tablesIIIandIV(seed int64, only int) error {
	results, err := eval.RunControlled("testbed", env.StageTestbed, seed)
	if err != nil {
		return err
	}
	render := func(table string) {
		fmt.Printf("=== Table %s: controlled rule-violation experiments ===\n", table)
		detected, total := 0, 0
		for _, r := range results {
			if r.Scenario.Table != table {
				continue
			}
			total++
			mark := "MISSED"
			if r.Detected && r.RuleHit {
				mark = "DETECTED"
				detected++
			}
			fmt.Printf("%2d  %-70s %s\n", r.Scenario.Number, r.Scenario.Name, mark)
		}
		fmt.Printf("→ %d/%d rules detected\n\n", detected, total)
	}
	if only == 0 || only == 3 {
		render("III")
	}
	if only == 0 || only == 4 {
		render("IV")
	}
	return nil
}

func tableV(st *eval.BugStudy) {
	fmt.Println("=== Table V: severity of the 16 injected bugs (modified RABIT) ===")
	fmt.Printf("%-14s %6s %9s\n", "Severity", "Total", "Detected")
	for _, r := range st.TableV() {
		fmt.Printf("%-14s %6d %9d\n", r.Severity, r.Total, r.Detected)
	}
	fmt.Printf("\nSection IV progression: initial %d/16 (%.0f%%) → modified %d/16 (%.0f%%) → +simulator %d/16 (%.0f%%)\n\n",
		st.DetectedCount(eval.ConfigInitial), st.DetectionRate(eval.ConfigInitial),
		st.DetectedCount(eval.ConfigModified), st.DetectionRate(eval.ConfigModified),
		st.DetectedCount(eval.ConfigModifiedSim), st.DetectionRate(eval.ConfigModifiedSim))

	fmt.Println("per-bug outcomes:")
	fmt.Printf("%3s %-28s %-30s %-11s %8s %9s %6s\n",
		"#", "bug", "category", "severity", "initial", "modified", "+sim")
	for _, o := range st.Outcomes {
		fmt.Printf("%3d %-28s %-30s %-11s %8v %9v %6v\n",
			o.Bug.ID, o.Bug.Slug, o.Bug.Category, o.Bug.Severity,
			o.Detected[eval.ConfigInitial], o.Detected[eval.ConfigModified],
			o.Detected[eval.ConfigModifiedSim])
	}
	fmt.Println()
}

func fig5(st *eval.BugStudy) {
	fmt.Println("=== Fig. 5: annotated bugs A, B, C ===")
	for _, spec := range []struct {
		id    int
		label string
	}{
		{1, "Bug A: open_door omitted before re-entry"},
		{7, "Bug B: ned2 moved next to the occupied grid"},
		{14, "Bug C: pick-up call deleted"},
	} {
		o, _ := st.Outcome(spec.id)
		fmt.Printf("%-48s initial=%v modified=%v +sim=%v\n", spec.label,
			o.Detected[eval.ConfigInitial], o.Detected[eval.ConfigModified],
			o.Detected[eval.ConfigModifiedSim])
		for _, ev := range o.GroundTruthDamage {
			fmt.Println("    unprotected ground truth:", ev)
		}
	}
	fmt.Println()
}

func fig6(st *eval.BugStudy) {
	fmt.Println("=== Fig. 6: Bug D (script location-table z edit) ===")
	bare, _ := st.Outcome(9)
	held, _ := st.Outcome(13)
	fmt.Printf("bare gripper:  initial=%v modified=%v\n",
		bare.Detected[eval.ConfigInitial], bare.Detected[eval.ConfigModified])
	fmt.Printf("holding vial:  initial=%v modified=%v\n",
		held.Detected[eval.ConfigInitial], held.Detected[eval.ConfigModified])
	for _, ev := range held.GroundTruthDamage {
		fmt.Println("    unprotected ground truth:", ev)
	}
	fmt.Println()
}

func latencyRun(seed int64) error {
	fmt.Println("=== Section II-C: RABIT latency overhead (paced 2000×) ===")
	rows, err := eval.Latency(seed, 2000)
	if err != nil {
		return err
	}
	fmt.Print(eval.RenderLatency(rows))
	fmt.Println()
	return nil
}
