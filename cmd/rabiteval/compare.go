package main

// Bench-regression comparison (ISSUE 10). `rabiteval -compare old.json
// new.json` diffs two rabit-bench/v1 envelopes metric by metric and
// exits non-zero when any gated metric regressed past the threshold.
// CI runs it against the committed baseline artifacts (`git show
// HEAD:BENCH_pr9.json`) so a perf regression fails the build with a
// readable diff instead of a silent drift.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// benchDoc is the subset of the shared bench envelope -compare reads.
type benchDoc struct {
	Schema  string         `json:"schema"`
	Name    string         `json:"name"`
	Build   obs.BuildInfo  `json:"build"`
	Metrics map[string]any `json:"metrics"`
}

func readBenchDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, benchSchema)
	}
	return &doc, nil
}

// metricDirection classifies a metric key: +1 higher-is-better, -1
// lower-is-better, 0 ungated (informational only). The heuristics
// follow the envelope's naming conventions: rates, speedups, and
// detection counts should not fall; latencies, misses, false alarms,
// and error counts should not rise.
func metricDirection(key string) int {
	k := strings.ToLower(key)
	// Higher-is-better wins ties: "p50_speedup_…" is a speedup that
	// happens to mention the percentile it was computed from.
	higher := []string{"per_sec", "speedup", "scaling", "detected", "_x"}
	for _, s := range higher {
		if strings.Contains(k, s) {
			return +1
		}
	}
	lower := []string{"_ns", "latency", "missed", "false_alarms", "damage",
		"errors", "p50", "p95", "p99"}
	for _, s := range lower {
		if strings.Contains(k, s) {
			return -1
		}
	}
	return 0
}

// compareVerdict is one metric's comparison outcome.
type compareVerdict struct {
	Key      string
	Old, New string
	Delta    string // signed relative change, "" when not applicable
	Verdict  string // "ok" | "REGRESSION" | "info" | "improved"
}

// compareMetrics diffs the metric maps. threshold is the tolerated
// relative change in the bad direction (0.5 = 50%) — generous because
// throughput numbers on shared CI runners are noisy; a real regression
// (a lost fast path, a broken shard) moves integer factors, not
// percents.
func compareMetrics(oldM, newM map[string]any, threshold float64) ([]compareVerdict, int) {
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var rows []compareVerdict
	regressions := 0
	for _, k := range keys {
		row := compareVerdict{Key: k, Old: fmt.Sprint(oldM[k]), New: fmt.Sprint(newM[k]), Verdict: "info"}
		ob, oIsBool := oldM[k].(bool)
		nb, nIsBool := newM[k].(bool)
		switch {
		case oIsBool && nIsBool:
			// Invariant bits (worker_invariant, pooled_naive_equal): any
			// true→false flip is a regression regardless of threshold.
			switch {
			case ob && !nb:
				row.Verdict = "REGRESSION"
				regressions++
			case !ob && nb:
				row.Verdict = "improved"
			default:
				row.Verdict = "ok"
			}
		default:
			ov, oOK := asFloat(oldM[k])
			nv, nOK := asFloat(newM[k])
			if !oOK || !nOK {
				break
			}
			dir := metricDirection(k)
			if ov != 0 {
				rel := (nv - ov) / math.Abs(ov)
				row.Delta = fmt.Sprintf("%+.1f%%", 100*rel)
				if dir != 0 {
					switch {
					case float64(dir)*rel < -threshold:
						row.Verdict = "REGRESSION"
						regressions++
					case float64(dir)*rel > threshold:
						row.Verdict = "improved"
					default:
						row.Verdict = "ok"
					}
				}
			} else if dir != 0 {
				// Zero baseline: only a move in the bad direction matters.
				if float64(dir)*nv < 0 || (dir < 0 && nv > 0) {
					row.Verdict = "REGRESSION"
					regressions++
				} else {
					row.Verdict = "ok"
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, regressions
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

// compareRun is the -compare mode entry point.
func compareRun(oldPath, newPath string, threshold float64) error {
	oldDoc, err := readBenchDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readBenchDoc(newPath)
	if err != nil {
		return err
	}
	if oldDoc.Name != newDoc.Name {
		return fmt.Errorf("comparing different benchmarks: %q vs %q", oldDoc.Name, newDoc.Name)
	}
	fmt.Printf("=== Bench comparison: %s (threshold ±%.0f%%) ===\n", oldDoc.Name, 100*threshold)
	fmt.Printf("old: %s  (%s)\nnew: %s  (%s)\n\n", oldPath, oldDoc.Build, newPath, newDoc.Build)
	rows, regressions := compareMetrics(oldDoc.Metrics, newDoc.Metrics, threshold)
	fmt.Printf("%-32s %16s %16s %10s %12s\n", "metric", "old", "new", "delta", "verdict")
	for _, r := range rows {
		fmt.Printf("%-32s %16s %16s %10s %12s\n", r.Key, r.Old, r.New, r.Delta, r.Verdict)
	}
	fmt.Println()
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressions, 100*threshold)
	}
	fmt.Println("no regressions")
	return nil
}

// validateOMRun fetches (http/https URL) or reads (file path) one
// exposition and runs it through the OpenMetrics grammar validator —
// the CI hook that keeps /metrics/prom honest against real scrapers.
func validateOMRun(src string) error {
	var data []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		req, err := http.NewRequest(http.MethodGet, src, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "application/openmetrics-text")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %s", src, resp.Status)
		}
		if data, err = io.ReadAll(resp.Body); err != nil {
			return err
		}
	} else {
		var err error
		if data, err = os.ReadFile(src); err != nil {
			return err
		}
	}
	if err := obs.ValidateOpenMetrics(data); err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	lines := strings.Count(string(data), "\n")
	fmt.Printf("%s: valid OpenMetrics (%d lines)\n", src, lines)
	return nil
}
