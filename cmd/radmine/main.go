// Command radmine reproduces the paper's rule-gathering step (Section
// II-A): it synthesises a RAD-style command-trace corpus by replaying
// safe workflow variants on the traced testbed, optionally persists the
// traces as JSONL, and mines them for the safety rules they imply.
//
// Usage:
//
//	radmine [-seeds n] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/radmine"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radmine:", err)
		os.Exit(1)
	}
}

func run() error {
	seeds := flag.Int("seeds", 3, "number of seeds per workflow variant")
	out := flag.String("out", "", "directory to write the JSONL trace corpus into")
	flag.Parse()

	var seedList []int64
	for i := 1; i <= *seeds; i++ {
		seedList = append(seedList, int64(i))
	}
	corpus, lab, err := radmine.GenerateCorpus(seedList)
	if err != nil {
		return err
	}
	total := 0
	for _, r := range corpus {
		total += len(r.Records)
	}
	fmt.Printf("corpus: %d runs, %d commands\n", len(corpus), total)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for _, r := range corpus {
			path := filepath.Join(*out, r.Name+".jsonl")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = trace.WriteJSONL(f, r.Records)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		}
		fmt.Printf("traces written to %s\n", *out)
	}

	fmt.Println("\n=== mined rules ===")
	miner := radmine.NewMiner(lab)
	for _, m := range miner.Mine(corpus) {
		fmt.Println(" ", m)
	}
	return nil
}
