// Command rabitlint validates RABIT lab JSON configurations, reporting
// the error classes the paper's pilot study surfaced (Section V-A): JSON
// syntax errors with line/column positions, sign errors in coordinates,
// mistyped driver class names, and dangling references. Participant P
// lost roughly four hours to exactly these mistakes; the paper concludes
// "a JSON-aware editor could have helped avoid syntax errors, and more
// precise JSON schema specifications could have helped avoid sign
// errors" — this tool is that conclusion, implemented.
//
// Usage:
//
//	rabitlint file.json...
//	rabitlint -emit dir    write the bundled deck configs as JSON files
//
// Exit status 1 when any file has errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/labs"
)

func main() {
	emit := flag.String("emit", "", "write the bundled deck configurations into this directory")
	flag.Parse()

	if *emit != "" {
		for _, spec := range []*config.LabSpec{
			labs.TestbedSpec(), labs.HeinProductionSpec(), labs.BerlinguetteSpec(),
		} {
			path, err := labs.WriteJSON(spec, *emit)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rabitlint:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rabitlint [-emit dir] file.json...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		spec, diags, err := config.ParseFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		if spec != nil {
			diags = append(diags, config.Lint(spec)...)
		}
		if len(diags) == 0 {
			fmt.Printf("%s: OK\n", path)
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
		}
		if config.HasErrors(diags) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
