// Command rabit runs an experiment workflow (or replays a recorded
// trace) on a chosen deck and stage under RABIT supervision, printing the
// command trace, any alert, and the ground-truth damage report.
//
// Usage:
//
//	rabit [flags]
//
//	-config path    lab JSON configuration (overrides -deck)
//	-deck name      bundled deck: testbed | hein | berlinguette (default testbed)
//	-stage name     simulator | testbed | production (default testbed)
//	-workflow name  fig5 | solubility | screening | spray (default fig5)
//	-replay path    replay a recorded JSONL trace instead of a workflow
//	-generation g   initial | modified (default modified)
//	-multiplex m    none | time | space (default time)
//	-sim            attach the Extended Simulator
//	-gui            render the simulator GUI on every check
//	-unprotected    run without RABIT (baseline)
//	-bug n          inject bug #n (1–16) into the fig5 workflow
//	-trace path     write the RATracer-style JSONL trace
//	-trace-otlp p   write retained causal traces as OTLP-JSON lines to p
//	                (render with rabiteval -trace p); alert traces are
//	                always retained, -trace-sample tunes the rest
//	-trace-sample r tail-sampling probability for non-alert traces
//	                (0 uses the built-in default; negative = alerts only)
//	-metrics addr   serve live telemetry on addr: /debug/vars (expvar),
//	                /metrics (text), /metrics/prom (Prometheus), /healthz,
//	                /readyz, /traces, /debug/pprof; off by default
//	-incident-dir d write a self-contained flight-recorder incident bundle
//	                (manifest.json + records.jsonl) under d for every alert;
//	                inspect with rabiteval -incidents d
//	-events path    write the structured telemetry event JSONL (one event
//	                per command outcome and alert); off by default
//	-seed n         noise seed
//	-version        print build provenance and exit
package main

import (
	"flag"
	"fmt"
	"os"

	rabit "repro"
	"repro/internal/bugs"
	"repro/internal/config"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rabit:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath  = flag.String("config", "", "lab JSON configuration (overrides -deck)")
		deck        = flag.String("deck", "testbed", "bundled deck: testbed | hein | berlinguette")
		stageName   = flag.String("stage", "testbed", "simulator | testbed | production")
		wfName      = flag.String("workflow", "fig5", "fig5 | solubility | screening | spray")
		genName     = flag.String("generation", "modified", "initial | modified")
		muxName     = flag.String("multiplex", "time", "none | time | space")
		withSim     = flag.Bool("sim", false, "attach the Extended Simulator")
		withGUI     = flag.Bool("gui", false, "render the simulator GUI on every check")
		unprotected = flag.Bool("unprotected", false, "run without RABIT")
		bugID       = flag.Int("bug", 0, "inject bug #n (1-16) into the fig5 workflow")
		replayPath  = flag.String("replay", "", "replay a recorded JSONL trace instead of a workflow")
		tracePath   = flag.String("trace", "", "write the JSONL command trace here")
		traceOTLP   = flag.String("trace-otlp", "", "write retained causal traces (OTLP-JSON lines) here")
		traceSample = flag.Float64("trace-sample", 0, "tail-sampling probability for non-alert traces (negative = alerts only)")
		metricsAddr = flag.String("metrics", "", "serve /debug/vars, /metrics, and pprof on this address (e.g. localhost:6060)")
		eventsPath  = flag.String("events", "", "write the structured telemetry event JSONL here")
		incidentDir = flag.String("incident-dir", "", "write a flight-recorder incident bundle here for every alert")
		seed        = flag.Int64("seed", 1, "noise seed")
		version     = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("rabit", obs.ReadBuild())
		return nil
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr)
	}

	opt := rabit.Options{
		Unprotected:       *unprotected,
		ExtendedSimulator: *withSim || *withGUI,
		SimulatorGUI:      *withGUI,
		IncidentDir:       *incidentDir,
		TraceFile:         *traceOTLP,
		TraceSampleRate:   *traceSample,
		Seed:              *seed,
	}
	switch *stageName {
	case "simulator":
		opt.Stage = rabit.StageSimulator
	case "testbed":
		opt.Stage = rabit.StageTestbed
	case "production":
		opt.Stage = rabit.StageProduction
	default:
		return fmt.Errorf("unknown stage %q", *stageName)
	}
	switch *genName {
	case "initial":
		opt.Generation = rabit.GenInitial
	case "modified":
		opt.Generation = rabit.GenModified
	default:
		return fmt.Errorf("unknown generation %q", *genName)
	}
	switch *muxName {
	case "none":
		opt.Multiplex = rabit.MultiplexNone
	case "time":
		opt.Multiplex = rabit.MultiplexTime
	case "space":
		opt.Multiplex = rabit.MultiplexSpace
	default:
		return fmt.Errorf("unknown multiplex policy %q", *muxName)
	}

	var spec *config.LabSpec
	switch {
	case *configPath != "":
		lab, err := config.LoadFile(*configPath)
		if err != nil {
			return err
		}
		spec = lab.Spec
	case *deck == "testbed":
		spec = labs.TestbedSpec()
	case *deck == "hein":
		spec = labs.HeinProductionSpec()
	case *deck == "berlinguette":
		spec = labs.BerlinguetteSpec()
	default:
		return fmt.Errorf("unknown deck %q", *deck)
	}

	sys, err := rabit.New(spec, opt)
	if err != nil {
		return err
	}
	// Close drains the pipeline, makes the run trace's tail-sampling
	// decision, and flushes the OTLP file; the deferred call covers early
	// error returns (Close is idempotent).
	defer sys.Close()

	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			return err
		}
		sink := obs.NewJSONLSink(f)
		sys.Obs.SetSink(sink)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rabit:", err)
			}
			f.Close()
			fmt.Println("telemetry events written to", *eventsPath)
		}()
	}

	var wfErr error
	switch {
	case *replayPath != "":
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		records, rerr := trace.ReadJSONL(f)
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		if rerr != nil {
			return rerr
		}
		fmt.Printf("replaying %d recorded commands from %s\n", len(records), *replayPath)
		wfErr = trace.Replay(sys.Interceptor, records)
	default:
		wfErr = runWorkflow(sys, *wfName, *bugID)
	}

	fmt.Printf("\n=== command trace (%d commands) ===\n", len(sys.Trace()))
	for _, r := range sys.Trace() {
		line := fmt.Sprintf("%-50s %s", r.Cmd, r.Outcome)
		if r.Detail != "" {
			line += "  " + r.Detail
		}
		fmt.Println(line)
	}

	if wfErr != nil {
		fmt.Printf("\nworkflow stopped: %v\n", wfErr)
	} else {
		fmt.Println("\nworkflow completed")
	}
	if alerts := sys.Alerts(); len(alerts) > 0 {
		fmt.Println("\n=== RABIT alerts ===")
		for _, a := range alerts {
			fmt.Println(" ", a.Error())
		}
	}
	if evs := sys.Env.World().Events(); len(evs) > 0 {
		fmt.Println("\n=== ground-truth damage ===")
		for _, ev := range evs {
			fmt.Println(" ", ev)
		}
		fmt.Printf("stage-scaled damage cost: $%.2f\n", sys.DamageCost())
	} else {
		fmt.Println("\nno physical damage")
	}

	if *incidentDir != "" && sys.Recorder != nil {
		if err := sys.Recorder.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rabit: incident bundle:", err)
		} else if len(sys.Alerts()) > 0 {
			fmt.Printf("incident bundles written to %s (inspect with rabiteval -incidents %s)\n",
				*incidentDir, *incidentDir)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSONL(f, sys.Trace()); err != nil {
			return err
		}
		fmt.Println("trace written to", *tracePath)
	}
	if err := sys.Close(); err != nil {
		return fmt.Errorf("otlp trace: %w", err)
	}
	if *traceOTLP != "" {
		fmt.Printf("OTLP traces written to %s (render with rabiteval -trace %s)\n",
			*traceOTLP, *traceOTLP)
	}
	return nil
}

// runWorkflow executes the named workflow, optionally with an injected
// bug.
func runWorkflow(sys *rabit.System, wfName string, bugID int) error {
	switch wfName {
	case "fig5":
		steps := rabit.Fig5Workflow()
		if bugID != 0 {
			b, ok := bugs.ByID(bugID)
			if !ok {
				return fmt.Errorf("no bug #%d", bugID)
			}
			fmt.Printf("injecting bug %d (%s): %s\n", b.ID, b.Slug, b.Description)
			steps = b.Mutate(sys.Session)
		}
		return rabit.RunSteps(sys.Session, steps)
	case "solubility":
		res, err := workflow.RunSolubility(sys.Session, workflow.DefaultSolubilityParams())
		if res != nil {
			fmt.Printf("solubility: dissolved=%v solvent=%.1f mL iterations=%d\n",
				res.Dissolved, res.SolventML, res.Iterations)
		}
		return err
	case "screening":
		return rabit.RunSteps(sys.Session, workflow.ScreeningSteps())
	case "spray":
		return rabit.RunSteps(sys.Session, workflow.SpraySteps())
	default:
		return fmt.Errorf("unknown workflow %q", wfName)
	}
}
