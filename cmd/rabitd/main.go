// Command rabitd is the long-running multi-lab safety gateway: an
// HTTP+JSON service fronting a pool of per-lab RABIT engines.
// Experiment scripts open sessions against a lab tenant (a bundled deck
// name or an inline lab spec) and stream command batches through the
// tenant's engine; verdicts and alerts stream back as NDJSON lines.
// The listener also serves the gateway's own observability — /metrics,
// /metrics/prom, /healthz, /readyz, /traces, /debug/pprof — for every
// pooled tenant.
//
// Usage:
//
//	rabitd [flags]
//
//	-addr addr      listen address (default localhost:8080)
//	-stage name     simulator | testbed | production (default testbed)
//	-sim            attach the Extended Simulator to every tenant
//	-queue n        per-tenant admission queue depth: concurrently
//	                admitted command batches before 429 (default 4)
//	-max-tenants n  engine-pool cap (default 16)
//	-idle d         evict tenants idle this long, e.g. 10m (0 = never)
//	-incident-dir d write flight-recorder incident bundles under d
//	-seed n         noise seed
//	-version        print build provenance and exit
//
// API:
//
//	POST   /v1/sessions                {"lab":"testbed"} or {"spec":{…}}
//	GET    /v1/sessions/{id}           attach: session info
//	POST   /v1/sessions/{id}/commands  {"commands":[…]} → NDJSON verdicts
//	DELETE /v1/sessions/{id}           close the session
//	GET    /v1/labs                    the tenant pool
//
// On SIGINT/SIGTERM rabitd drains: new sessions and command batches are
// rejected, /readyz flips unready, in-flight checks finish, every
// tenant's recorder and traces flush, and only then does the listener
// close.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	rabit "repro"
	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rabitd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		stageName   = flag.String("stage", "testbed", "simulator | testbed | production")
		withSim     = flag.Bool("sim", false, "attach the Extended Simulator to every tenant")
		queueDepth  = flag.Int("queue", gateway.DefaultQueueDepth, "per-tenant admission queue depth")
		maxTenants  = flag.Int("max-tenants", gateway.DefaultMaxTenants, "engine-pool cap")
		idleTimeout = flag.Duration("idle", 0, "evict tenants idle this long (0 = never)")
		incidentDir = flag.String("incident-dir", "", "write flight-recorder incident bundles here")
		seed        = flag.Int64("seed", 1, "noise seed")
		version     = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("rabitd", obs.ReadBuild())
		return nil
	}

	sysOpts := rabit.Options{
		ExtendedSimulator: *withSim,
		IncidentDir:       *incidentDir,
		Seed:              *seed,
	}
	switch *stageName {
	case "simulator":
		sysOpts.Stage = rabit.StageSimulator
	case "testbed":
		sysOpts.Stage = rabit.StageTestbed
	case "production":
		sysOpts.Stage = rabit.StageProduction
	default:
		return fmt.Errorf("unknown stage %q", *stageName)
	}

	gw := gateway.New(gateway.Options{
		System:      sysOpts,
		QueueDepth:  *queueDepth,
		MaxTenants:  *maxTenants,
		IdleTimeout: *idleTimeout,
	})
	srv, err := gw.Group().ServeHandler(*addr, gw.Handler())
	if err != nil {
		return err
	}
	fmt.Printf("rabitd: serving on http://%s (stage %s, queue %d)\n",
		srv.Addr, *stageName, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("rabitd: %s — draining\n", sig)

	// Drain before the listener closes: the gate flips (/readyz goes
	// unready, new command batches get 503) while the listener still
	// answers, in-flight checks finish, recorders and traces flush —
	// and only then does Shutdown stop accepting connections.
	gw.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rabitd: shutdown:", err)
	}
	if err := gw.Close(); err != nil {
		return err
	}
	fmt.Println("rabitd: drained")
	return nil
}
