package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Severity grades lint diagnostics.
type Severity int

// Diagnostic severities.
const (
	SevError Severity = iota + 1
	SevWarning
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "unknown"
	}
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	Severity Severity
	// Line/Col locate syntax errors (0 when not applicable).
	Line, Col int
	// Path names the config element, e.g. "locations[3].deck_pos.z".
	Path    string
	Message string
}

// String renders the diagnostic in compiler style.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Severity.String())
	if d.Line > 0 {
		fmt.Fprintf(&b, " at line %d, col %d", d.Line, d.Col)
	}
	if d.Path != "" {
		fmt.Fprintf(&b, " [%s]", d.Path)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// offsetToLineCol converts a byte offset into 1-based line/column.
func offsetToLineCol(data []byte, off int64) (int, int) {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line := 1 + bytes.Count(data[:off], []byte("\n"))
	last := bytes.LastIndexByte(data[:off], '\n')
	return line, int(off) - last
}

// Parse decodes a LabSpec, reporting syntax errors with positions.
func Parse(data []byte) (*LabSpec, []Diagnostic) {
	var spec LabSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		d := Diagnostic{Severity: SevError, Message: err.Error()}
		switch e := err.(type) {
		case *json.SyntaxError:
			d.Line, d.Col = offsetToLineCol(data, e.Offset)
			d.Message = "JSON syntax error: " + e.Error()
		case *json.UnmarshalTypeError:
			d.Line, d.Col = offsetToLineCol(data, e.Offset)
			d.Path = e.Field
			d.Message = fmt.Sprintf("wrong type: got %s, want %s", e.Value, e.Type)
		}
		return nil, []Diagnostic{d}
	}
	return &spec, nil
}

// ParseFile loads and parses a config file.
func ParseFile(path string) (*LabSpec, []Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("config: read %s: %w", path, err)
	}
	spec, diags := Parse(data)
	return spec, diags, nil
}

// Lint validates a parsed spec and returns all diagnostics, errors first.
// It encodes the failure modes observed in the paper's pilot study:
// mistyped class names, sign errors in coordinates (a location below the
// deck or behind a wall), locations beyond an arm's plausible reach, and
// dangling references.
func Lint(spec *LabSpec) []Diagnostic {
	var ds []Diagnostic
	errf := func(path, format string, args ...any) {
		ds = append(ds, Diagnostic{Severity: SevError, Path: path, Message: fmt.Sprintf(format, args...)})
	}
	warnf := func(path, format string, args ...any) {
		ds = append(ds, Diagnostic{Severity: SevWarning, Path: path, Message: fmt.Sprintf(format, args...)})
	}

	if spec.Lab == "" {
		errf("lab", "lab name is required")
	}
	for i, w := range spec.Walls {
		if w.Normal.V3().Norm() == 0 {
			errf(fmt.Sprintf("walls[%d].normal", i), "wall %q has a zero normal", w.Name)
		}
	}
	ids := map[string]string{}
	registerID := func(id, path string) {
		if id == "" {
			errf(path, "id is required")
			return
		}
		if prev, dup := ids[id]; dup {
			errf(path, "duplicate id %q (also declared at %s)", id, prev)
			return
		}
		ids[id] = path
	}

	// Arms.
	armReach := map[string]float64{}
	for i, a := range spec.Arms {
		path := fmt.Sprintf("arms[%d]", i)
		registerID(a.ID, path)
		if a.Type != "robot_arm" {
			errf(path+".type", "arm %q must have type robot_arm, got %q", a.ID, a.Type)
		}
		reach, ok := modelReach(a.Model)
		if !ok {
			errf(path+".model", "unknown arm model %q", a.Model)
		} else {
			armReach[a.ID] = reach
		}
		if a.ClassName != "" && !KnownClassNames[a.ClassName] {
			errf(path+".class_name", "unknown driver class %q", a.ClassName)
		}
		if a.Gripper.FingerDrop <= 0 || a.Gripper.FingerRadius <= 0 {
			warnf(path+".gripper", "gripper geometry unset for %q; target collision checks will be blind to the gripper", a.ID)
		}
		if a.Base.Z < spec.FloorZ-1e-9 {
			errf(path+".base.z", "arm %q is mounted below the deck platform (z=%.3f < floor %.3f) — check for a sign error", a.ID, a.Base.Z, spec.FloorZ)
		}
	}

	// Devices.
	deviceByID := map[string]DeviceSpec{}
	for i, d := range spec.Devices {
		path := fmt.Sprintf("devices[%d]", i)
		registerID(d.ID, path)
		deviceByID[d.ID] = d
		switch d.Type {
		case "dosing_system", "action_device", "container_rack", "sensor":
		default:
			errf(path+".type", "device %q has unknown type %q (want dosing_system, action_device, container_rack, or sensor)", d.ID, d.Type)
		}
		if d.ClassName != "" && !KnownClassNames[d.ClassName] {
			errf(path+".class_name", "unknown driver class %q", d.ClassName)
		}
		box := d.Cuboid.AABB()
		if !box.IsValid() || box.Volume() <= 0 {
			errf(path+".cuboid", "device %q has a degenerate cuboid — check min/max corners for sign errors", d.ID)
		}
		if d.Cuboid.Min.X > d.Cuboid.Max.X || d.Cuboid.Min.Y > d.Cuboid.Max.Y || d.Cuboid.Min.Z > d.Cuboid.Max.Z {
			errf(path+".cuboid", "device %q has min/max corners swapped — the loader would silently normalise them, but this usually signals a data-entry mistake", d.ID)
		}
		if box.Min.Z < spec.FloorZ-1e-9 {
			errf(path+".cuboid.min.z", "device %q extends below the deck platform — check for a sign error", d.ID)
		}
		validSide := func(side, at string) {
			switch side {
			case "x-", "x+", "y-", "y+", "z+":
			default:
				errf(at, "device %q door side %q invalid (want x-, x+, y-, y+, or z+)", d.ID, side)
			}
		}
		if d.Door.Present {
			validSide(d.Door.Side, path+".door.side")
			if d.Interior == nil {
				errf(path+".interior", "device %q has a door but no interior region", d.ID)
			}
			if len(d.Doors) > 0 {
				errf(path+".doors", "device %q declares both a single door and named doors", d.ID)
			}
		}
		if len(d.Doors) > 0 {
			if d.Interior == nil {
				errf(path+".interior", "device %q has doors but no interior region", d.ID)
			}
			seen := map[string]bool{}
			for di, nd := range d.Doors {
				at := fmt.Sprintf("%s.doors[%d]", path, di)
				if nd.Name == "" {
					errf(at+".name", "device %q: named doors need names", d.ID)
				}
				if seen[nd.Name] {
					errf(at+".name", "device %q: duplicate door %q", d.ID, nd.Name)
				}
				seen[nd.Name] = true
				validSide(nd.Side, at+".side")
			}
		}
		if d.Interior != nil {
			in := d.Interior.AABB()
			if !in.IsValid() || in.Volume() <= 0 {
				errf(path+".interior", "device %q has a degenerate interior", d.ID)
			} else if box.IsValid() && !(box.ContainsPoint(in.Min) && box.ContainsPoint(in.Max)) {
				errf(path+".interior", "device %q interior is not contained in its cuboid", d.ID)
			}
		}
		switch d.Shape {
		case "", "cylinder", "dome":
		default:
			errf(path+".shape", "device %q has unknown shape %q (want cylinder or dome; omit for cuboid)", d.ID, d.Shape)
		}
		if d.Shape != "" && d.Interior != nil {
			errf(path+".shape", "device %q: rounded shapes cannot carry an interior region", d.ID)
		}
		if d.MaxSafeValue > 0 && d.ActionThreshold > d.MaxSafeValue {
			errf(path+".action_threshold", "device %q threshold %.1f exceeds its physical limit %.1f", d.ID, d.ActionThreshold, d.MaxSafeValue)
		}
	}

	// Locations.
	locByName := map[string]LocationSpec{}
	for i, l := range spec.Locations {
		path := fmt.Sprintf("locations[%d]", i)
		if l.Name == "" {
			errf(path+".name", "location name is required")
			continue
		}
		if _, dup := locByName[l.Name]; dup {
			errf(path+".name", "duplicate location %q", l.Name)
			continue
		}
		locByName[l.Name] = l
		if l.Owner != "" {
			owner, ok := deviceByID[l.Owner]
			if !ok {
				errf(path+".owner", "location %q references unknown device %q", l.Name, l.Owner)
			} else if l.Door != "" {
				found := false
				for _, nd := range owner.Doors {
					if nd.Name == l.Door {
						found = true
					}
				}
				if !found {
					errf(path+".door", "location %q names unknown door %q of device %q", l.Name, l.Door, l.Owner)
				}
			}
		}
		if l.DeckPos.Z < spec.FloorZ-1e-9 {
			errf(path+".deck_pos.z", "location %q lies below the deck platform (z=%.3f) — check for a sign error", l.Name, l.DeckPos.Z)
		}
		// Plausibility: every arm that has explicit coordinates must be
		// able to reach them; derived coordinates are checked against
		// the deck position.
		for j, a := range spec.Arms {
			reach, ok := armReach[a.ID]
			if !ok {
				continue
			}
			p := l.DeckPos.V3().Sub(a.Base.V3())
			if explicit, hasExplicit := l.PerArm[a.ID]; hasExplicit {
				p = explicit.V3()
				if p.Z+a.Base.Z < spec.FloorZ-1e-9 {
					errf(fmt.Sprintf("%s.per_arm.%s.z", path, a.ID),
						"location %q for arm %q lies below the platform — check for a sign error", l.Name, a.ID)
				}
			}
			if p.Norm() > reach {
				warnf(path, "location %q is %.3f m from arm %q's base, beyond its %.3f m reach", l.Name, p.Norm(), a.ID, reach)
			}
			_ = j
		}
	}

	// Containers.
	for i, c := range spec.Containers {
		path := fmt.Sprintf("containers[%d]", i)
		registerID(c.ID, path)
		if c.Type != "container" {
			errf(path+".type", "container %q must have type container, got %q", c.ID, c.Type)
		}
		if c.Height <= 0 || c.Radius <= 0 {
			errf(path, "container %q needs positive height and radius", c.ID)
		}
		if c.Location != "" {
			if _, ok := locByName[c.Location]; !ok {
				errf(path+".location", "container %q starts at unknown location %q", c.ID, c.Location)
			}
		}
	}

	// Custom rules.
	for i, r := range spec.Rules {
		path := fmt.Sprintf("custom_rules[%d]", i)
		switch {
		case r.Builtin == "hein":
			if r.Centrifuge == "" {
				errf(path+".centrifuge", "the built-in Hein rules need the centrifuge device id")
			} else if _, ok := deviceByID[r.Centrifuge]; !ok {
				errf(path+".centrifuge", "unknown centrifuge device %q", r.Centrifuge)
			}
		case r.Builtin != "":
			errf(path+".builtin", "unknown builtin rule set %q", r.Builtin)
		default:
			if r.ID == "" {
				errf(path+".id", "custom rule needs an id")
			}
			if len(r.AppliesTo) == 0 {
				errf(path+".applies_to", "custom rule %q applies to no actions", r.ID)
			}
			if len(r.Requires) == 0 {
				errf(path+".requires", "custom rule %q has no requirements", r.ID)
			}
		}
	}

	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Severity < ds[j].Severity })
	return ds
}

// modelReach maps arm model names to their approximate reach (m), for the
// plausibility lint.
func modelReach(model string) (float64, bool) {
	switch strings.ToLower(model) {
	case "ur3e":
		return 0.92, true
	case "ur5e":
		return 1.31, true
	case "viperx", "viperx300":
		return 0.91, true
	case "ned2":
		return 0.75, true
	case "n9":
		return 0.76, true
	default:
		return 0, false
	}
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}
