// Package config implements RABIT's JSON lab-configuration pathway
// (Section II-C of the paper): researchers describe their deck — devices
// categorised into the four device types, doors, cuboids, locations with
// per-arm coordinates (Fig. 6), thresholds, connection parameters, and
// custom rules — in JSON files that RABIT loads into its lab model.
//
// The package also implements the linter motivated by the pilot study
// (Section V-A): participant P lost hours to JSON syntax errors and a
// sign flip in a coordinate; Lint reports syntax errors with line/column
// positions and plausibility diagnostics (locations below the deck or
// beyond an arm's reach).
package config

import (
	"repro/internal/geom"
)

// Vec is a JSON-friendly 3D coordinate.
type Vec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// V3 converts to the geometry type.
func (v Vec) V3() geom.Vec3 { return geom.V(v.X, v.Y, v.Z) }

// BoxSpec is a JSON cuboid.
type BoxSpec struct {
	Min Vec `json:"min"`
	Max Vec `json:"max"`
}

// AABB converts to the geometry type.
func (b BoxSpec) AABB() geom.AABB { return geom.Box(b.Min.V3(), b.Max.V3()) }

// Connection carries the device connection parameters RABIT extracts from
// the programming scripts (Section II-C) and uses for FetchState.
type Connection struct {
	Transport string `json:"transport,omitempty"` // "tcp", "serial", …
	Host      string `json:"host,omitempty"`
	Port      int    `json:"port,omitempty"`
	SerialDev string `json:"serial_dev,omitempty"`
}

// DoorSpec describes a device door.
type DoorSpec struct {
	Present bool `json:"present"`
	// Side is the face of the cuboid the door occupies: one of
	// "x-", "x+", "y-", "y+", "z+".
	Side string `json:"side,omitempty"`
}

// NamedDoorSpec is one panel of a multi-door device (Section V-C:
// "devices might have multiple doors, for instance, for two robot arms
// to approach the device simultaneously").
type NamedDoorSpec struct {
	Name string `json:"name"`
	Side string `json:"side"`
}

// GripperSpec is the arm geometry RABIT's target checks use.
type GripperSpec struct {
	FingerDrop   float64 `json:"finger_drop"`
	FingerRadius float64 `json:"finger_radius"`
}

// WallSpec is an arm's space-multiplexing software wall: the arm must stay
// on the side its base is on. Expressed in the arm's own frame.
type WallSpec struct {
	Normal Vec     `json:"normal"`
	Offset float64 `json:"offset"`
}

// ArmSpec declares a robot arm.
type ArmSpec struct {
	ID        string     `json:"id"`
	Type      string     `json:"type"` // must be "robot_arm"
	Model     string     `json:"model"`
	ClassName string     `json:"class_name"`
	Conn      Connection `json:"connection"`
	// Base is the arm's mounting position in the deck frame; every
	// arm-frame coordinate equals deck coordinate minus Base.
	Base    Vec         `json:"base"`
	Gripper GripperSpec `json:"gripper"`
	// SleepBox is the cuboid the arm occupies in its sleep pose, in the
	// arm's own frame (the time-multiplexing model of Section IV).
	SleepBox *BoxSpec `json:"sleep_box,omitempty"`
	// ZoneWall is the optional space-multiplexing wall.
	ZoneWall *WallSpec `json:"zone_wall,omitempty"`
}

// DeviceSpec declares a stationary automation device.
type DeviceSpec struct {
	ID        string     `json:"id"`
	Type      string     `json:"type"` // "dosing_system" | "action_device"
	Kind      string     `json:"kind"` // "dosing", "hotplate", "centrifuge", …
	ClassName string     `json:"class_name"`
	Conn      Connection `json:"connection"`
	Expensive bool       `json:"expensive,omitempty"`
	Door      DoorSpec   `json:"door"`
	// Doors declares multiple named door panels; mutually exclusive with
	// the single Door.
	Doors []NamedDoorSpec `json:"doors,omitempty"`
	// Cuboid is the device body in the deck frame (Fig. 3's 3D objects).
	Cuboid BoxSpec `json:"cuboid"`
	// Shape refines the body for collision purposes: "" (cuboid,
	// default), "cylinder", or "dome" — the Section V-C shape extension
	// for devices that do not comply with the cuboid specification. The
	// rounded shapes use the largest vertical capsule inscribed in the
	// cuboid.
	Shape string `json:"shape,omitempty"`
	// Interior is the hollow region for devices arms reach into.
	Interior *BoxSpec `json:"interior,omitempty"`
	// ActionThreshold is the rule-11 limit for action devices (0 = none).
	ActionThreshold float64 `json:"action_threshold,omitempty"`
	// MaxSafeValue is the physical limit past which the device is
	// damaged; defaults to ActionThreshold when omitted.
	MaxSafeValue float64 `json:"max_safe_value,omitempty"`
	// ActionCommands and StatusCommands name the driver methods RABIT
	// intercepts and uses for FetchState (Section II-C).
	ActionCommands []string `json:"action_commands,omitempty"`
	StatusCommands []string `json:"status_commands,omitempty"`
}

// ContainerSpec declares a movable container.
type ContainerSpec struct {
	ID         string  `json:"id"`
	Type       string  `json:"type"` // "container"
	Height     float64 `json:"height"`
	Radius     float64 `json:"radius"`
	CapacityMg float64 `json:"capacity_mg,omitempty"`
	CapacityML float64 `json:"capacity_ml,omitempty"`
	Stopper    bool    `json:"stopper,omitempty"`
	// InitialSolidMg / InitialLiquidML pre-load the container.
	InitialSolidMg  float64 `json:"initial_solid_mg,omitempty"`
	InitialLiquidML float64 `json:"initial_liquid_ml,omitempty"`
	// Location is the container's initial resting place.
	Location string `json:"location"`
}

// LocationSpec declares a named deck location, with per-arm coordinates as
// in the paper's Fig. 6 utilities file. DeckPos is the position in the
// deck frame; PerArm overrides the derived arm-frame coordinates for arms
// whose calibration differs.
type LocationSpec struct {
	Name    string         `json:"name"`
	Owner   string         `json:"owner,omitempty"`
	Inside  bool           `json:"inside,omitempty"`
	DeckPos Vec            `json:"deck_pos"`
	PerArm  map[string]Vec `json:"per_arm,omitempty"`
	Meta    string         `json:"meta,omitempty"`
	// Door names which panel of a multi-door owner serves this inside
	// location ("" for the sole door).
	Door string `json:"door,omitempty"`
}

// RequirementSpec is a declarative custom-rule requirement.
type RequirementSpec struct {
	Var    string `json:"var"`
	Arg    string `json:"arg,omitempty"`
	Arg2   string `json:"arg2,omitempty"`
	Equals any    `json:"equals"`
}

// CustomRuleSpec declares a lab-specific rule: either a reference to the
// built-in Hein rule set, or a declarative requirement rule.
type CustomRuleSpec struct {
	ID          string            `json:"id"`
	Builtin     string            `json:"builtin,omitempty"` // "hein" pulls in Table IV
	Centrifuge  string            `json:"centrifuge,omitempty"`
	Description string            `json:"description,omitempty"`
	Number      int               `json:"number,omitempty"`
	AppliesTo   []string          `json:"applies_to,omitempty"`
	Devices     []string          `json:"devices,omitempty"`
	Requires    []RequirementSpec `json:"requires,omitempty"`
}

// WallPlaneSpec is a lab wall: an infinite plane in the deck frame whose
// positive side is the lab interior. The paper's Table V cites "robot arm
// making holes in a wall" as a Medium-High hazard.
type WallPlaneSpec struct {
	Name   string  `json:"name"`
	Normal Vec     `json:"normal"`
	Offset float64 `json:"offset"`
}

// LabSpec is the root configuration document.
type LabSpec struct {
	Lab        string           `json:"lab"`
	FloorZ     float64          `json:"floor_z"`
	Walls      []WallPlaneSpec  `json:"walls,omitempty"`
	Arms       []ArmSpec        `json:"arms"`
	Devices    []DeviceSpec     `json:"devices"`
	Containers []ContainerSpec  `json:"containers"`
	Locations  []LocationSpec   `json:"locations"`
	Rules      []CustomRuleSpec `json:"custom_rules,omitempty"`
}

// KnownClassNames lists the driver classes this RABIT build ships; the
// linter flags unknown class names (a frequent pilot-study mistake was
// mistyping them).
var KnownClassNames = map[string]bool{
	"UR3eDriver":       true,
	"UR5eDriver":       true,
	"ViperXDriver":     true,
	"Ned2Driver":       true,
	"N9Driver":         true,
	"MTQuantos":        true,
	"TecanPump":        true,
	"IKAHotplate":      true,
	"IKAThermoshaker":  true,
	"FisherCentrifuge": true,
	"CardboardMockup":  true,
	"DecapperDriver":   true,
	"SpinCoater":       true,
	"SprayNozzle":      true,
}
