package config

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rules"
)

// validSpec returns a minimal correct testbed spec.
func validSpec() *LabSpec {
	return &LabSpec{
		Lab:    "testbed",
		FloorZ: 0,
		Arms: []ArmSpec{
			{
				ID: "viperx", Type: "robot_arm", Model: "viperx300", ClassName: "ViperXDriver",
				Base:     Vec{0, 0, 0},
				Gripper:  GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &BoxSpec{Min: Vec{-0.15, -0.15, 0}, Max: Vec{0.15, 0.15, 0.3}},
			},
			{
				ID: "ned2", Type: "robot_arm", Model: "ned2", ClassName: "Ned2Driver",
				Base:     Vec{0.8, 0, 0},
				Gripper:  GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &BoxSpec{Min: Vec{-0.15, -0.15, 0}, Max: Vec{0.15, 0.15, 0.3}},
				ZoneWall: &WallSpec{Normal: Vec{1, 0, 0}, Offset: -0.35},
			},
		},
		Devices: []DeviceSpec{
			{
				ID: "dosing_device", Type: "dosing_system", Kind: "dosing", ClassName: "MTQuantos",
				Expensive: true,
				Door:      DoorSpec{Present: true, Side: "y-"},
				Cuboid:    BoxSpec{Min: Vec{0.05, 0.35, 0}, Max: Vec{0.25, 0.55, 0.30}},
				Interior:  &BoxSpec{Min: Vec{0.08, 0.38, 0.03}, Max: Vec{0.22, 0.52, 0.27}},
			},
			{
				ID: "hotplate", Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
				Cuboid:          BoxSpec{Min: Vec{0.48, 0.38, 0}, Max: Vec{0.62, 0.52, 0.12}},
				ActionThreshold: 150, MaxSafeValue: 340,
			},
			{
				ID: "centrifuge", Type: "action_device", Kind: "centrifuge", ClassName: "FisherCentrifuge",
				Expensive: true,
				Door:      DoorSpec{Present: true, Side: "z+"},
				Cuboid:    BoxSpec{Min: Vec{0.60, 0.15, 0}, Max: Vec{0.80, 0.35, 0.20}},
				Interior:  &BoxSpec{Min: Vec{0.63, 0.18, 0.03}, Max: Vec{0.77, 0.32, 0.17}},
			},
			{
				ID: "grid", Type: "container_rack", Kind: "grid", ClassName: "CardboardMockup",
				Cuboid: BoxSpec{Min: Vec{0.29, 0.19, 0}, Max: Vec{0.41, 0.31, 0.08}},
			},
		},
		Containers: []ContainerSpec{
			{ID: "vial_1", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Location: "grid_NW"},
		},
		Locations: []LocationSpec{
			{Name: "grid_NW", Owner: "grid", DeckPos: Vec{0.32, 0.22, 0.16}},
			{Name: "dd_pickup", Owner: "dosing_device", Inside: true, DeckPos: Vec{0.15, 0.45, 0.10},
				PerArm: map[string]Vec{"viperx": {0.15, 0.45, 0.10}}},
			{Name: "hp_place", Owner: "hotplate", DeckPos: Vec{0.55, 0.45, 0.20}},
		},
		Rules: []CustomRuleSpec{
			{ID: "hein", Builtin: "hein", Centrifuge: "centrifuge"},
		},
	}
}

func TestLintAcceptsValidSpec(t *testing.T) {
	ds := Lint(validSpec())
	for _, d := range ds {
		if d.Severity == SevError {
			t.Errorf("unexpected error: %s", d)
		}
	}
}

func TestLintCatchesPilotStudyErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*LabSpec)
		wantSub string
	}{
		{
			"sign-flip-in-location",
			func(s *LabSpec) { s.Locations[0].DeckPos.Z = -0.16 },
			"sign error",
		},
		{
			"sign-flip-per-arm",
			func(s *LabSpec) { s.Locations[1].PerArm["viperx"] = Vec{0.15, 0.45, -0.10} },
			"sign error",
		},
		{
			"mistyped-class-name",
			func(s *LabSpec) { s.Devices[0].ClassName = "MTQuantoss" },
			"unknown driver class",
		},
		{
			"unknown-arm-model",
			func(s *LabSpec) { s.Arms[0].Model = "kuka" },
			"unknown arm model",
		},
		{
			"duplicate-id",
			func(s *LabSpec) { s.Devices[1].ID = "dosing_device" },
			"duplicate id",
		},
		{
			"dangling-location-owner",
			func(s *LabSpec) { s.Locations[0].Owner = "ghost" },
			"unknown device",
		},
		{
			"container-at-unknown-location",
			func(s *LabSpec) { s.Containers[0].Location = "nowhere" },
			"unknown location",
		},
		{
			"degenerate-cuboid",
			func(s *LabSpec) { s.Devices[0].Cuboid.Max = s.Devices[0].Cuboid.Min },
			"degenerate cuboid",
		},
		{
			"interior-outside-body",
			func(s *LabSpec) { s.Devices[0].Interior.Max = Vec{9, 9, 9} },
			"not contained",
		},
		{
			"door-without-interior",
			func(s *LabSpec) { s.Devices[0].Interior = nil },
			"no interior",
		},
		{
			"bad-door-side",
			func(s *LabSpec) { s.Devices[0].Door.Side = "q" },
			"door side",
		},
		{
			"threshold-above-physical-limit",
			func(s *LabSpec) { s.Devices[1].ActionThreshold = 500 },
			"exceeds its physical limit",
		},
		{
			"hein-rules-missing-centrifuge",
			func(s *LabSpec) { s.Rules[0].Centrifuge = "" },
			"centrifuge",
		},
		{
			"empty-declarative-rule",
			func(s *LabSpec) {
				s.Rules = append(s.Rules, CustomRuleSpec{ID: "r2"})
			},
			"applies to no actions",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := validSpec()
			tt.mutate(spec)
			ds := Lint(spec)
			if !HasErrors(ds) {
				t.Fatalf("lint accepted a broken spec")
			}
			found := false
			for _, d := range ds {
				if strings.Contains(d.Message, tt.wantSub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no diagnostic mentions %q; got %v", tt.wantSub, ds)
			}
		})
	}
}

func TestLintWarnsOnUnreachableLocation(t *testing.T) {
	spec := validSpec()
	spec.Locations = append(spec.Locations, LocationSpec{
		Name: "far_away", DeckPos: Vec{5, 5, 0.2},
	})
	ds := Lint(spec)
	found := false
	for _, d := range ds {
		if d.Severity == SevWarning && strings.Contains(d.Message, "beyond") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected reachability warning, got %v", ds)
	}
}

func TestParseReportsSyntaxErrorPosition(t *testing.T) {
	// A trailing comma — the classic JSON-editing mistake from the pilot
	// study.
	data := []byte("{\n  \"lab\": \"x\",\n  \"floor_z\": 0,\n}")
	_, ds := Parse(data)
	if len(ds) != 1 || ds[0].Severity != SevError {
		t.Fatalf("want one syntax error, got %v", ds)
	}
	if ds[0].Line != 4 {
		t.Errorf("error line = %d, want 4", ds[0].Line)
	}
	if !strings.Contains(ds[0].Message, "syntax") {
		t.Errorf("message %q should mention syntax", ds[0].Message)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	data := []byte(`{"lab": "x", "floor_zz": 0}`)
	_, ds := Parse(data)
	if len(ds) == 0 {
		t.Fatal("unknown field accepted")
	}
}

func TestCompileRejectsBrokenSpec(t *testing.T) {
	spec := validSpec()
	spec.Arms[0].Model = "kuka"
	if _, err := Compile(spec); err == nil {
		t.Fatal("Compile accepted a broken spec")
	}
}

func TestLabModelInterface(t *testing.T) {
	lab, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}

	if ty, ok := lab.DeviceType("dosing_device"); !ok || ty != rules.TypeDosingSystem {
		t.Errorf("dosing_device type = %v, %v", ty, ok)
	}
	if ty, ok := lab.DeviceType("hotplate"); !ok || ty != rules.TypeActionDevice {
		t.Errorf("hotplate type = %v, %v", ty, ok)
	}
	if ty, ok := lab.DeviceType("viperx"); !ok || ty != rules.TypeRobotArm {
		t.Errorf("viperx type = %v, %v", ty, ok)
	}
	if ty, ok := lab.DeviceType("vial_1"); !ok || ty != rules.TypeContainer {
		t.Errorf("vial_1 type = %v, %v", ty, ok)
	}
	if _, ok := lab.DeviceType("ghost"); ok {
		t.Error("ghost device has a type")
	}

	if !lab.DeviceHasDoor("dosing_device") || lab.DeviceHasDoor("hotplate") {
		t.Error("door flags wrong")
	}

	arms := lab.ArmIDs()
	if len(arms) != 2 || arms[0] != "viperx" || arms[1] != "ned2" {
		t.Errorf("ArmIDs = %v", arms)
	}

	if owner, ok := lab.LocationOwner("grid_NW"); !ok || owner != "grid" {
		t.Errorf("grid_NW owner = %q, %v", owner, ok)
	}
	if !lab.LocationIsInside("dd_pickup") || lab.LocationIsInside("grid_NW") {
		t.Error("inside flags wrong")
	}

	// Derived arm-frame coordinates subtract the base.
	p, ok := lab.LocationPos("ned2", "grid_NW")
	if !ok || !p.ApproxEqual(geom.V(-0.48, 0.22, 0.16), 1e-9) {
		t.Errorf("ned2 grid_NW = %v, %v", p, ok)
	}
	// Explicit per-arm coordinates win.
	p, ok = lab.LocationPos("viperx", "dd_pickup")
	if !ok || !p.ApproxEqual(geom.V(0.15, 0.45, 0.10), 1e-9) {
		t.Errorf("viperx dd_pickup = %v, %v", p, ok)
	}

	boxes := lab.DeviceBoxes("ned2")
	if len(boxes) != 4 {
		t.Fatalf("ned2 sees %d boxes, want 4", len(boxes))
	}
	for _, b := range boxes {
		if b.Name == "grid" {
			want := geom.Box(geom.V(-0.51, 0.19, 0), geom.V(-0.39, 0.31, 0.08))
			if !b.Box.Min.ApproxEqual(want.Min, 1e-9) || !b.Box.Max.ApproxEqual(want.Max, 1e-9) {
				t.Errorf("grid box in ned2 frame = %v", b.Box)
			}
		}
	}

	// Sleep box of ned2 in viperx's frame: ned2 base (0.8,0,0) plus its
	// own-frame box.
	sb, ok := lab.SleepBox("viperx", "ned2")
	if !ok {
		t.Fatal("SleepBox missing")
	}
	if !sb.Min.ApproxEqual(geom.V(0.65, -0.15, 0), 1e-9) {
		t.Errorf("sleep box min = %v", sb.Min)
	}

	g := lab.ArmGeometry("viperx")
	if g.FingerReach != 0.062 || g.FingerRadius != 0.012 {
		t.Errorf("arm geometry = %+v", g)
	}

	og, ok := lab.ObjectGeometry("vial_1")
	if !ok || og.CarriedHang != 0.075 || og.CapacityMg != 10 {
		t.Errorf("object geometry = %+v, %v", og, ok)
	}

	if th, ok := lab.ActionThreshold("hotplate"); !ok || th != 150 {
		t.Errorf("threshold = %v, %v", th, ok)
	}
	if _, ok := lab.ActionThreshold("dosing_device"); ok {
		t.Error("dosing device should have no threshold")
	}

	if z := lab.FloorZ("ned2"); z != 0 {
		t.Errorf("floor in ned2 frame = %v", z)
	}

	if _, ok := lab.Zone("viperx"); ok {
		t.Error("viperx has no zone wall configured")
	}
	if zone, ok := lab.Zone("ned2"); !ok || zone.N.X != 1 {
		t.Errorf("ned2 zone = %+v, %v", zone, ok)
	}
}

func TestCustomRulesFromConfig(t *testing.T) {
	lab, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := lab.CustomRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("want the 4 Hein rules, got %d", len(rs))
	}

	// Add a declarative rule.
	spec := validSpec()
	spec.Rules = append(spec.Rules, CustomRuleSpec{
		ID: "film-loaded", Description: "spin coater needs a film",
		Number:    5,
		AppliesTo: []string{"start_action"},
		Requires:  []RequirementSpec{{Var: "filmLoaded", Arg: "$device", Equals: true}},
	})
	lab2, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := lab2.CustomRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != 5 {
		t.Fatalf("want 5 rules, got %d", len(rs2))
	}
}

func TestInitialModelState(t *testing.T) {
	lab, err := Compile(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := lab.InitialModelState()
	if s.GetString("objectAtLocation[grid_NW]") != "vial_1" {
		t.Error("initial vial position missing")
	}
	if s.GetBool("robotArmHolding[viperx]") {
		t.Error("arms should start empty-handed")
	}
	if s.GetBool("containerStopper[vial_1]") {
		t.Error("vial starts uncapped")
	}
	if s.GetString("containerInside[grid]") != "vial_1" {
		t.Error("containerInside[grid] should reflect the initial placement")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	spec := validSpec()
	lab, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	data := mustMarshal(t, spec)
	parsed, ds := Parse(data)
	if len(ds) != 0 {
		t.Fatalf("round trip diagnostics: %v", ds)
	}
	lab2, err := Compile(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.ArmIDs()) != len(lab2.ArmIDs()) {
		t.Error("round trip lost arms")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: SevError, Line: 3, Col: 7, Path: "arms[0].base", Message: "boom"}
	s := d.String()
	for _, want := range []string{"error", "line 3", "col 7", "arms[0].base", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
}

func mustMarshal(t *testing.T, spec *LabSpec) []byte {
	t.Helper()
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data := mustMarshal(t, validSpec())
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lab, err := LoadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.ArmIDs()) != 2 {
		t.Error("LoadFile lost arms")
	}
	// Syntax errors surface with their diagnostic.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("broken JSON accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCustomRuleValueTypes(t *testing.T) {
	spec := validSpec()
	spec.Rules = append(spec.Rules, CustomRuleSpec{
		ID: "typed", Description: "typed requirements", Number: 7,
		AppliesTo: []string{"start_action"},
		Devices:   []string{"hotplate"},
		Requires: []RequirementSpec{
			{Var: "a", Arg: "$device", Equals: true},
			{Var: "b", Arg: "$device", Equals: 42.0},
			{Var: "c", Arg: "$device", Equals: "ready"},
		},
	})
	lab, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.CustomRules(); err != nil {
		t.Fatal(err)
	}
	// Unsupported value types are rejected.
	spec2 := validSpec()
	spec2.Rules = append(spec2.Rules, CustomRuleSpec{
		ID: "bad", Description: "bad requirement", Number: 8,
		AppliesTo: []string{"start_action"},
		Requires:  []RequirementSpec{{Var: "x", Arg: "$device", Equals: []any{1, 2}}},
	})
	lab2, err := Compile(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab2.CustomRules(); err == nil {
		t.Fatal("unsupported requirement value accepted")
	}
}

func TestWallsInArmFrames(t *testing.T) {
	spec := validSpec()
	spec.Walls = []WallPlaneSpec{{Name: "north", Normal: Vec{Y: -1}, Offset: -0.7}}
	lab, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// In the viperx frame (base at origin) the wall is unchanged.
	w1 := lab.Walls("viperx")
	if len(w1) != 1 || w1[0].SignedDist(geom.V(0, 0.7, 0)) > 1e-9 {
		t.Errorf("viperx wall wrong: %+v", w1)
	}
	// In the ned2 frame (base at x=0.8), the y-wall's offset is the same
	// (the normal has no x component).
	w2 := lab.Walls("ned2")
	if len(w2) != 1 || w2[0].SignedDist(geom.V(-0.8, 0.7, 0)) > 1e-9 {
		t.Errorf("ned2 wall wrong: %+v", w2)
	}
	// Zero normal is a lint error.
	spec2 := validSpec()
	spec2.Walls = []WallPlaneSpec{{Name: "bad"}}
	if ds := Lint(spec2); !HasErrors(ds) {
		t.Error("zero-normal wall accepted")
	}
}

// TestWallsNonUnitNormal is the regression test for the wall-plane
// normalisation bug: a spec supplying a scaled normal and offset describes
// the same plane, so Walls and Zone must produce planes with identical
// signed distances. (Previously the normal was normalised without
// rescaling the offset, shifting the plane by the normal's length.)
func TestWallsNonUnitNormal(t *testing.T) {
	unit := validSpec()
	unit.Walls = []WallPlaneSpec{{Name: "north", Normal: Vec{Y: -1}, Offset: -0.7}}
	scaled := validSpec()
	scaled.Walls = []WallPlaneSpec{{Name: "north", Normal: Vec{Y: -4}, Offset: -2.8}}
	labU, err := Compile(unit)
	if err != nil {
		t.Fatal(err)
	}
	labS, err := Compile(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []string{"viperx", "ned2"} {
		wu, ws := labU.Walls(arm), labS.Walls(arm)
		if len(wu) != 1 || len(ws) != 1 {
			t.Fatalf("%s: wall counts %d/%d, want 1/1", arm, len(wu), len(ws))
		}
		for _, p := range []geom.Vec3{geom.V(0, 0.7, 0), geom.V(0.3, 0.1, 0.2), geom.V(-0.8, 0.9, 0)} {
			du, ds := wu[0].SignedDist(p), ws[0].SignedDist(p)
			if math.Abs(du-ds) > 1e-9 {
				t.Errorf("%s: signed dist at %v differs: unit %.6f, scaled %.6f", arm, p, du, ds)
			}
		}
	}
}

// TestParseNeverPanicsOnMutatedJSON flips random bytes in a valid config
// and feeds the result to the parser: whatever the pilot-study
// participant types, the loader must degrade to diagnostics, never
// panic.
func TestParseNeverPanicsOnMutatedJSON(t *testing.T) {
	base := mustMarshal(t, validSpec())
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(data))
			data[pos] = byte(rng.Intn(256))
		}
		spec, _ := Parse(data) // must not panic
		if spec != nil {
			Lint(spec) // nor here
		}
	}
	// Truncations too.
	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(base))
		spec, _ := Parse(base[:cut])
		if spec != nil {
			Lint(spec)
		}
	}
}
