package config

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/state"
)

// Lab is a compiled lab configuration: it implements rules.LabModel (the
// rulebase's view of the lab) and exposes the deck description the
// environment builders consume.
type Lab struct {
	Spec *LabSpec

	arms       map[string]ArmSpec
	devices    map[string]DeviceSpec
	containers map[string]ContainerSpec
	locations  map[string]LocationSpec
	armOrder   []string
}

var _ rules.LabModel = (*Lab)(nil)

// Compile validates and indexes a parsed spec. It refuses specs with lint
// errors (warnings pass).
func Compile(spec *LabSpec) (*Lab, error) {
	if spec == nil {
		return nil, fmt.Errorf("config: nil spec")
	}
	ds := Lint(spec)
	if HasErrors(ds) {
		return nil, fmt.Errorf("config: spec has %d lint error(s); first: %s", countErrors(ds), firstError(ds))
	}
	l := &Lab{
		Spec:       spec,
		arms:       make(map[string]ArmSpec, len(spec.Arms)),
		devices:    make(map[string]DeviceSpec, len(spec.Devices)),
		containers: make(map[string]ContainerSpec, len(spec.Containers)),
		locations:  make(map[string]LocationSpec, len(spec.Locations)),
	}
	for _, a := range spec.Arms {
		l.arms[a.ID] = a
		l.armOrder = append(l.armOrder, a.ID)
	}
	for _, d := range spec.Devices {
		l.devices[d.ID] = d
	}
	for _, c := range spec.Containers {
		l.containers[c.ID] = c
	}
	for _, loc := range spec.Locations {
		l.locations[loc.Name] = loc
	}
	return l, nil
}

func countErrors(ds []Diagnostic) int {
	n := 0
	for _, d := range ds {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

func firstError(ds []Diagnostic) string {
	for _, d := range ds {
		if d.Severity == SevError {
			return d.String()
		}
	}
	return ""
}

// LoadFile parses, lints, and compiles a config file.
func LoadFile(path string) (*Lab, error) {
	spec, diags, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	if len(diags) > 0 {
		return nil, fmt.Errorf("config: %s: %s", path, diags[0])
	}
	return Compile(spec)
}

// DeviceType implements rules.LabModel.
func (l *Lab) DeviceType(id string) (rules.DeviceType, bool) {
	if _, ok := l.arms[id]; ok {
		return rules.TypeRobotArm, true
	}
	if d, ok := l.devices[id]; ok {
		switch d.Type {
		case "dosing_system":
			return rules.TypeDosingSystem, true
		case "action_device":
			return rules.TypeActionDevice, true
		case "sensor":
			return rules.TypeSensor, true
		default:
			return 0, false
		}
	}
	if _, ok := l.containers[id]; ok {
		return rules.TypeContainer, true
	}
	return 0, false
}

// DeviceHasDoor implements rules.LabModel.
func (l *Lab) DeviceHasDoor(id string) bool {
	d, ok := l.devices[id]
	return ok && (d.Door.Present || len(d.Doors) > 0)
}

// DeviceDoors implements rules.LabModel.
func (l *Lab) DeviceDoors(id string) []string {
	d, ok := l.devices[id]
	if !ok {
		return nil
	}
	if len(d.Doors) > 0 {
		names := make([]string, len(d.Doors))
		for i, nd := range d.Doors {
			names[i] = nd.Name
		}
		return names
	}
	if d.Door.Present {
		return []string{""}
	}
	return nil
}

// LocationDoor implements rules.LabModel.
func (l *Lab) LocationDoor(name string) string {
	loc, ok := l.locations[name]
	if !ok {
		return ""
	}
	return loc.Door
}

// ArmIDs implements rules.LabModel.
func (l *Lab) ArmIDs() []string {
	out := make([]string, len(l.armOrder))
	copy(out, l.armOrder)
	return out
}

// LocationOwner implements rules.LabModel.
func (l *Lab) LocationOwner(name string) (string, bool) {
	loc, ok := l.locations[name]
	if !ok || loc.Owner == "" {
		return "", false
	}
	return loc.Owner, true
}

// LocationIsInside implements rules.LabModel.
func (l *Lab) LocationIsInside(name string) bool {
	loc, ok := l.locations[name]
	return ok && loc.Inside
}

// LocationPos implements rules.LabModel: explicit per-arm coordinates win
// (the Fig. 6 convention); otherwise the deck position is translated into
// the arm's frame.
func (l *Lab) LocationPos(armID, name string) (geom.Vec3, bool) {
	loc, ok := l.locations[name]
	if !ok {
		return geom.Vec3{}, false
	}
	if p, ok := loc.PerArm[armID]; ok {
		return p.V3(), true
	}
	arm, ok := l.arms[armID]
	if !ok {
		return geom.Vec3{}, false
	}
	return loc.DeckPos.V3().Sub(arm.Base.V3()), true
}

// MatchLocation implements rules.LabModel: the configured location whose
// arm-frame coordinates coincide with p (within the 5 mm matching
// tolerance), if any.
func (l *Lab) MatchLocation(armID string, p geom.Vec3) (string, bool) {
	const tol = 0.005
	bestName, bestDist := "", tol
	for name := range l.locations {
		lp, ok := l.LocationPos(armID, name)
		if !ok {
			continue
		}
		if d := lp.Dist(p); d <= bestDist {
			bestName, bestDist = name, d
		}
	}
	return bestName, bestName != ""
}

// DeckLocationPos returns a location's deck-frame position.
func (l *Lab) DeckLocationPos(name string) (geom.Vec3, bool) {
	loc, ok := l.locations[name]
	if !ok {
		return geom.Vec3{}, false
	}
	return loc.DeckPos.V3(), true
}

// DeviceBoxes implements rules.LabModel: every device cuboid translated
// into the arm's frame.
func (l *Lab) DeviceBoxes(armID string) []rules.NamedBox {
	arm, ok := l.arms[armID]
	if !ok {
		return nil
	}
	offset := arm.Base.V3().Neg()
	out := make([]rules.NamedBox, 0, len(l.Spec.Devices))
	for _, d := range l.Spec.Devices {
		if d.Type == "sensor" {
			// A sensor's cuboid is a monitored zone, not a solid body.
			continue
		}
		nb := rules.NamedBox{
			Name: d.ID,
			Box:  d.Cuboid.AABB().Translate(offset),
		}
		if d.Shape == "cylinder" || d.Shape == "dome" {
			cap := geom.InscribedVerticalCapsule(nb.Box)
			nb.Rounded = &cap
		}
		out = append(out, nb)
	}
	return out
}

// SleepBox implements rules.LabModel: the other arm's sleep cuboid mapped
// into armID's frame via the deck frame.
func (l *Lab) SleepBox(armID, otherID string) (geom.AABB, bool) {
	arm, ok := l.arms[armID]
	if !ok {
		return geom.AABB{}, false
	}
	other, ok := l.arms[otherID]
	if !ok || other.SleepBox == nil {
		return geom.AABB{}, false
	}
	deckBox := other.SleepBox.AABB().Translate(other.Base.V3())
	return deckBox.Translate(arm.Base.V3().Neg()), true
}

// ArmGeometry implements rules.LabModel.
func (l *Lab) ArmGeometry(armID string) rules.ArmGeom {
	arm, ok := l.arms[armID]
	if !ok {
		return rules.ArmGeom{}
	}
	return rules.ArmGeom{
		FingerReach:  arm.Gripper.FingerDrop + arm.Gripper.FingerRadius,
		FingerRadius: arm.Gripper.FingerRadius,
	}
}

// ObjectGeometry implements rules.LabModel.
func (l *Lab) ObjectGeometry(objectID string) (rules.ObjectGeom, bool) {
	c, ok := l.containers[objectID]
	if !ok {
		return rules.ObjectGeom{}, false
	}
	return rules.ObjectGeom{
		// Mirror the world's carried-hang model: height + grip clearance
		// (0.01) − lift epsilon (0.005).
		CarriedHang: c.Height + 0.01 - 0.005,
		Radius:      c.Radius,
		CapacityMg:  c.CapacityMg,
		CapacityML:  c.CapacityML,
	}, true
}

// HostsContainers implements rules.LabModel.
func (l *Lab) HostsContainers(deviceID string) bool {
	for _, loc := range l.Spec.Locations {
		if loc.Owner == deviceID {
			return true
		}
	}
	return false
}

// ActionThreshold implements rules.LabModel.
func (l *Lab) ActionThreshold(deviceID string) (float64, bool) {
	d, ok := l.devices[deviceID]
	if !ok || d.ActionThreshold <= 0 {
		return 0, false
	}
	return d.ActionThreshold, true
}

// FloorZ implements rules.LabModel: the platform height in the arm's
// frame.
func (l *Lab) FloorZ(armID string) float64 {
	arm, ok := l.arms[armID]
	if !ok {
		return l.Spec.FloorZ
	}
	return l.Spec.FloorZ - arm.Base.Z
}

// Walls implements rules.LabModel: the configured wall planes translated
// into the arm's frame.
func (l *Lab) Walls(armID string) []geom.Plane {
	arm, ok := l.arms[armID]
	if !ok {
		return nil
	}
	out := make([]geom.Plane, 0, len(l.Spec.Walls))
	for _, w := range l.Spec.Walls {
		// Normalise the configured normal and offset together (a non-unit
		// normal would otherwise shift the plane), then translate the
		// offset into the arm's frame.
		p := geom.PlaneFromNormalOffset(w.Normal.V3(), w.Offset)
		out = append(out, geom.Plane{N: p.N, D: p.D - p.N.Dot(arm.Base.V3())})
	}
	return out
}

// Zone implements rules.LabModel.
func (l *Lab) Zone(armID string) (geom.Plane, bool) {
	arm, ok := l.arms[armID]
	if !ok || arm.ZoneWall == nil {
		return geom.Plane{}, false
	}
	return geom.PlaneFromNormalOffset(arm.ZoneWall.Normal.V3(), arm.ZoneWall.Offset), true
}

// CustomRules builds the configured custom rules.
func (l *Lab) CustomRules() ([]*rules.Rule, error) {
	var out []*rules.Rule
	for i, spec := range l.Spec.Rules {
		switch {
		case spec.Builtin == "hein":
			out = append(out, rules.HeinCustomRules(spec.Centrifuge)...)
		case spec.Builtin != "":
			return nil, fmt.Errorf("config: custom_rules[%d]: unknown builtin %q", i, spec.Builtin)
		default:
			labels := make([]action.Label, 0, len(spec.AppliesTo))
			for _, s := range spec.AppliesTo {
				labels = append(labels, action.Label(s))
			}
			reqs := make([]rules.VarRequirement, 0, len(spec.Requires))
			for _, r := range spec.Requires {
				v, err := toValue(r.Equals)
				if err != nil {
					return nil, fmt.Errorf("config: custom rule %q: %w", spec.ID, err)
				}
				reqs = append(reqs, rules.VarRequirement{
					Var: r.Var, Arg: r.Arg, Arg2: r.Arg2, Equals: v,
				})
			}
			out = append(out, rules.NewDeclarativeRule(spec.ID, spec.Description, spec.Number, labels, spec.Devices, reqs))
		}
	}
	return out, nil
}

// toValue maps a JSON scalar to a typed state value.
func toValue(v any) (state.Value, error) {
	switch x := v.(type) {
	case bool:
		return state.Bool(x), nil
	case float64:
		return state.Float(x), nil
	case string:
		return state.Str(x), nil
	default:
		return state.Value{}, fmt.Errorf("unsupported requirement value %v (%T)", v, v)
	}
}

// InitialModelState builds the model's initial beliefs from the
// configuration: container positions, stoppers, and per-device defaults.
// The engine merges this with the first observed snapshot (Fig. 2,
// line 3).
func (l *Lab) InitialModelState() state.Snapshot {
	s := state.Snapshot{}
	for _, d := range l.Spec.Devices {
		for _, door := range l.DeviceDoors(d.ID) {
			s.Set(state.DoorStatusOf(d.ID, door), state.Bool(false))
		}
	}
	for _, a := range l.Spec.Arms {
		s.Set(state.Holding(a.ID), state.Bool(false))
		s.Set(state.HeldObject(a.ID), state.Str(""))
		s.Set(state.ArmAsleep(a.ID), state.Bool(false))
		s.Set(state.ArmAt(a.ID), state.Str(""))
	}
	for _, c := range l.Spec.Containers {
		s.Set(state.Stopper(c.ID), state.Bool(c.Stopper))
		s.Set(state.HasSolid(c.ID), state.Bool(c.InitialSolidMg > 0))
		s.Set(state.HasLiquid(c.ID), state.Bool(c.InitialLiquidML > 0))
		s.Set(state.SolidAmount(c.ID), state.Float(c.InitialSolidMg))
		s.Set(state.LiquidAmount(c.ID), state.Float(c.InitialLiquidML))
		if c.Location != "" {
			s.Set(state.ObjectAt(c.Location), state.Str(c.ID))
			if loc, ok := l.locations[c.Location]; ok && loc.Owner != "" {
				s.Set(state.ContainerInside(loc.Owner), state.Str(c.ID))
			}
		}
	}
	return s
}
