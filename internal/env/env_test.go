package env

import (
	"math"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/state"
)

func buildTestbed(t *testing.T, stage Stage) *Env {
	t.Helper()
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(lab, stage, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildWiresEverything(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	w := e.World()
	if got := len(w.ArmIDs()); got != 2 {
		t.Errorf("arms = %d, want 2", got)
	}
	for _, id := range []string{"grid", "dosing_device", "hotplate", "centrifuge", "pump"} {
		if _, ok := w.Fixture(id); !ok {
			t.Errorf("fixture %s missing", id)
		}
	}
	for _, id := range []string{"vial_1", "vial_2", "vial_3", "beaker"} {
		if _, ok := w.Object(id); !ok {
			t.Errorf("object %s missing", id)
		}
		if _, ok := e.Driver(id); !ok {
			t.Errorf("driver for %s missing", id)
		}
	}
	// The pre-loaded vial carries its configured contents.
	v3, _ := w.Object("vial_3")
	if v3.SolidMg != 5 || v3.LiquidML != 1 || !v3.Capped {
		t.Errorf("vial_3 initial contents wrong: %+v", v3)
	}
	// Centrifuge rotor mark starts aligned.
	cf, _ := w.Fixture("centrifuge")
	if !cf.RedDotNorth {
		t.Error("centrifuge red dot should start North")
	}
}

func TestStageParams(t *testing.T) {
	sim := DefaultParams(StageSimulator)
	tb := DefaultParams(StageTestbed)
	prod := DefaultParams(StageProduction)
	if !(sim.MeasurementNoise > tb.MeasurementNoise && tb.MeasurementNoise > prod.MeasurementNoise) {
		t.Error("measurement noise ordering wrong")
	}
	if !(sim.DamageCostScale < tb.DamageCostScale && tb.DamageCostScale < prod.DamageCostScale) {
		t.Error("damage cost ordering wrong")
	}
	if sim.ProcessTimeScale != 0 || prod.ProcessTimeScale != 1 {
		t.Error("process time scales wrong")
	}
	for _, s := range []Stage{StageSimulator, StageTestbed, StageProduction} {
		if s.String() == "" {
			t.Error("unnamed stage")
		}
	}
}

func TestExecuteDispatchAndClock(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	before := e.Now()
	if err := e.Execute(action.Command{Device: "dosing_device", Action: action.OpenDoor}); err != nil {
		t.Fatal(err)
	}
	if e.Now() <= before {
		t.Error("clock did not advance")
	}
	if err := e.Execute(action.Command{Device: "ghost", Action: action.OpenDoor}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestProcessTimeScale(t *testing.T) {
	tb := buildTestbed(t, StageTestbed)
	prod := buildTestbed(t, StageProduction)
	cmd := action.Command{Device: "hotplate", Action: action.StartAction, Duration: 100 * time.Second}
	t0 := tb.Now()
	if err := tb.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	tbElapsed := tb.Now() - t0
	p0 := prod.Now()
	if err := prod.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	prodElapsed := prod.Now() - p0
	if prodElapsed <= tbElapsed {
		t.Errorf("production process time %v should exceed testbed %v", prodElapsed, tbElapsed)
	}
}

func TestFetchStateObservables(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	s := e.FetchState()
	// Doors, run state, setpoints, rotor mark, arm flags: observable.
	mustHave := []state.Key{
		state.DoorStatus("dosing_device"),
		state.DoorStatus("centrifuge"),
		state.Running("hotplate"),
		state.ActionValue("hotplate"),
		state.RedDotNorth("centrifuge"),
		state.ArmAsleep("viperx"),
		state.ArmAt("viperx"),
	}
	for _, k := range mustHave {
		if _, ok := s.Get(k); !ok {
			t.Errorf("observable %s missing from FetchState", k)
		}
	}
	// Gripper contents and container contents: never observable.
	mustNotHave := []state.Key{
		state.Holding("viperx"),
		state.HeldObject("ned2"),
		state.HasSolid("vial_1"),
		state.Stopper("vial_1"),
		state.ObjectAt("grid_NW"),
	}
	for _, k := range mustNotHave {
		if _, ok := s.Get(k); ok {
			t.Errorf("unobservable %s leaked into FetchState", k)
		}
	}
}

func TestInjectFault(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	if err := e.InjectFault("dosing_device", device.FaultDoorStuck); err != nil {
		t.Fatal(err)
	}
	if err := e.Execute(action.Command{Device: "dosing_device", Action: action.OpenDoor}); err != nil {
		t.Fatal(err)
	}
	if e.FetchState().GetBool(state.DoorStatus("dosing_device")) {
		t.Error("stuck door moved")
	}
	if err := e.InjectFault("ghost", device.FaultDoorStuck); err == nil {
		t.Fatal("fault injected into a ghost device")
	}
}

func TestMeasurementNoiseScalesWithStage(t *testing.T) {
	stages := []Stage{StageSimulator, StageTestbed, StageProduction}
	var errs []float64
	for _, st := range stages {
		e := buildTestbed(t, st)
		truth, err := e.World().MeasureSolubility("vial_3")
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 50
		for i := 0; i < n; i++ {
			m, err := e.MeasureSolubility("vial_3")
			if err != nil {
				t.Fatal(err)
			}
			if m < 0 || m > 1 {
				t.Fatalf("measurement %v outside [0,1]", m)
			}
			sum += math.Abs(m - truth)
		}
		errs = append(errs, sum/n)
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("noise ordering wrong: %v", errs)
	}
}

func TestDamageCostScaling(t *testing.T) {
	for _, tt := range []struct {
		stage Stage
		zero  bool
	}{{StageSimulator, true}, {StageTestbed, false}, {StageProduction, false}} {
		e := buildTestbed(t, tt.stage)
		// Crash the arm into the closed dosing device door.
		_ = e.Execute(action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.15, 0.30, 0.19)})
		_ = e.Execute(action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.15, 0.45, 0.19)})
		if len(e.World().Events()) == 0 {
			t.Fatalf("%v: crash did not register", tt.stage)
		}
		cost := e.DamageCost()
		if tt.zero && cost != 0 {
			t.Errorf("%v: virtual crash cost %v", tt.stage, cost)
		}
		if !tt.zero && cost <= 0 {
			t.Errorf("%v: physical crash cost nothing", tt.stage)
		}
	}
}

func TestExecuteConcurrentValidation(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	err := e.ExecuteConcurrent([]action.Command{
		{Device: "dosing_device", Action: action.OpenDoor},
	})
	if err == nil {
		t.Fatal("non-motion command accepted for concurrent execution")
	}
	err = e.ExecuteConcurrent([]action.Command{
		{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.25, 0.15, 0.25)},
		{Device: "ned2", Action: action.MoveRobot, Target: geom.V(-0.05, 0.15, 0.25)},
	})
	if err != nil {
		t.Fatalf("zone-separated concurrent move failed: %v", err)
	}
}

func TestPacingConsumesWallTime(t *testing.T) {
	e := buildTestbed(t, StageTestbed)
	e.SetPacing(100) // 100× faster than real time
	start := time.Now()
	if err := e.Execute(action.Command{Device: "dosing_device", Action: action.OpenDoor}); err != nil {
		t.Fatal(err)
	}
	// The door takes 1.5 simulated seconds → ≥15 ms paced.
	if wall := time.Since(start); wall < 10*time.Millisecond {
		t.Errorf("paced execution took only %v", wall)
	}
}
