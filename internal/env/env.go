// Package env assembles RABIT's three deployment stages (Table I of the
// paper): the Simulator (fast, low fidelity, zero damage exposure), the
// low-fidelity Testbed (educational arms, cardboard mockups, cheap
// damage), and the Production deck (precise devices, slow real chemistry,
// expensive damage). Each stage is a world built from a lab configuration
// plus stage-specific fidelity parameters, exposed through a single
// Environment type that the engine executes commands against.
package env

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/state"
	"repro/internal/world"
)

// Stage identifies one of the paper's three deployment stages.
type Stage int

// The three stages of Table I.
const (
	StageSimulator Stage = iota + 1
	StageTestbed
	StageProduction
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageSimulator:
		return "Simulator"
	case StageTestbed:
		return "Testbed"
	case StageProduction:
		return "Production"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Params are the fidelity knobs that make the Table I rows measurable.
type Params struct {
	// ProcessTimeScale multiplies script-specified process durations
	// (stirring, heating): the simulator skips them, the testbed mocks
	// them briefly, production waits them out.
	ProcessTimeScale float64
	// MeasurementNoise is the relative 1σ error of measurements
	// (solubility readings) — "accuracy of results".
	MeasurementNoise float64
	// ModelError is the stage's modelling-fidelity floor: how far its
	// idea of a pose may sit from reality — "device precision and
	// quality". The simulator executes its virtual arm exactly, but its
	// correspondence to the physical deck is no better than this.
	ModelError float64
	// DamageCostScale scales damage costs: a virtual crash costs
	// nothing, a cardboard mockup almost nothing, production everything
	// — "risk of damage".
	DamageCostScale float64
}

// DefaultParams returns the canonical per-stage fidelity parameters.
func DefaultParams(s Stage) Params {
	switch s {
	case StageSimulator:
		return Params{ProcessTimeScale: 0, MeasurementNoise: 0.20, ModelError: 0.004, DamageCostScale: 0}
	case StageTestbed:
		return Params{ProcessTimeScale: 0.1, MeasurementNoise: 0.08, ModelError: 0.001, DamageCostScale: 0.02}
	case StageProduction:
		return Params{ProcessTimeScale: 1, MeasurementNoise: 0.01, ModelError: 0, DamageCostScale: 1}
	default:
		return Params{}
	}
}

// Env is one instantiated stage.
type Env struct {
	mu      sync.Mutex
	stage   Stage
	params  Params
	lab     *config.Lab
	w       *world.World
	drivers map[string]device.Driver
	// sensorIDs lists the presence sensors; scoped fetches always include
	// them because their readings are exogenous inputs to rule checks.
	sensorIDs []string
	rng       *rand.Rand
	// paceSpeedup > 0 makes Execute consume real wall-clock time:
	// simulated device time divided by the speedup factor. Used by the
	// latency experiment, where overhead percentages only mean something
	// against real execution time.
	paceSpeedup float64
}

// profileCache memoizes arm kinematic profiles by (model, base pose).
// Profiles are immutable after construction and already shared between
// the world's arm and its driver within one environment, so sharing them
// across environments is equally sound — and a campaign building tens of
// thousands of environments would otherwise re-pay NewProfile's IK
// anchor solves on every Build.
var profileCache sync.Map // profileKey -> *kin.Profile

type profileKey struct {
	model kin.Model
	base  geom.Vec3
}

func profileFor(model kin.Model, base geom.Vec3) (*kin.Profile, error) {
	key := profileKey{model: model, base: base}
	if p, ok := profileCache.Load(key); ok {
		return p.(*kin.Profile), nil
	}
	p, err := kin.NewProfile(model, geom.PoseAt(base))
	if err != nil {
		return nil, err
	}
	actual, _ := profileCache.LoadOrStore(key, p)
	return actual.(*kin.Profile), nil
}

// Build constructs a stage from a compiled lab configuration.
func Build(lab *config.Lab, stage Stage, seed int64) (*Env, error) {
	w := world.New(seed)
	w.SetFloor(lab.Spec.FloorZ)
	for _, ws := range lab.Spec.Walls {
		w.AddWall(geom.Plane{N: ws.Normal.V3().Unit(), D: ws.Offset})
	}
	e := &Env{
		stage:   stage,
		params:  DefaultParams(stage),
		lab:     lab,
		w:       w,
		drivers: make(map[string]device.Driver),
		rng:     rand.New(rand.NewSource(seed + 1)),
	}

	for _, as := range lab.Spec.Arms {
		model, err := kin.ParseModel(as.Model)
		if err != nil {
			return nil, fmt.Errorf("env: arm %s: %w", as.ID, err)
		}
		profile, err := profileFor(model, as.Base.V3())
		if err != nil {
			return nil, fmt.Errorf("env: arm %s: %w", as.ID, err)
		}
		arm, err := w.AddArm(as.ID, profile)
		if err != nil {
			return nil, fmt.Errorf("env: %w", err)
		}
		if as.Gripper.FingerDrop > 0 {
			arm.FingerDrop = as.Gripper.FingerDrop
		}
		if as.Gripper.FingerRadius > 0 {
			arm.FingerRadius = as.Gripper.FingerRadius
		}
		e.drivers[as.ID] = device.NewArmDriver(
			as.ID, as.Base.V3(), profile, device.BehaviorForModel(model), lab)
	}

	for _, ds := range lab.Spec.Devices {
		f := &world.Fixture{
			ID:           ds.ID,
			Kind:         fixtureKind(ds.Kind),
			Body:         ds.Cuboid.AABB(),
			Expensive:    ds.Expensive,
			MaxSafeValue: ds.MaxSafeValue,
			Rounded:      ds.Shape == "cylinder" || ds.Shape == "dome",
		}
		if ds.Interior != nil {
			f.Interior = ds.Interior.AABB()
		}
		if ds.Door.Present {
			f.Door = doorSide(ds.Door.Side)
		}
		for _, nd := range ds.Doors {
			f.Panels = append(f.Panels, world.DoorPanel{Name: nd.Name, Side: doorSide(nd.Side)})
		}
		if f.Kind == world.KindCentrifuge {
			f.RedDotNorth = true
		}
		if err := w.AddFixture(f); err != nil {
			return nil, fmt.Errorf("env: %w", err)
		}
		if ds.Type == "sensor" {
			e.drivers[ds.ID] = device.NewSensorDriver(ds.ID)
			e.sensorIDs = append(e.sensorIDs, ds.ID)
			continue
		}
		firmware := ds.MaxSafeValue * 1.2 // firmware limits sit above the physical rating
		hasDoor := ds.Door.Present || len(ds.Doors) > 0
		e.drivers[ds.ID] = device.NewFixtureDriver(ds.ID, hasDoor, firmware)
	}

	for _, ls := range lab.Spec.Locations {
		if err := w.AddLocation(world.Location{
			Name:   ls.Name,
			Pos:    ls.DeckPos.V3(),
			Owner:  ls.Owner,
			Inside: ls.Inside,
		}); err != nil {
			return nil, fmt.Errorf("env: %w", err)
		}
	}

	for _, cs := range lab.Spec.Containers {
		o := &world.Object{
			ID:         cs.ID,
			HeightM:    cs.Height,
			RadiusM:    cs.Radius,
			CapacityMg: cs.CapacityMg,
			CapacityML: cs.CapacityML,
			SolidMg:    cs.InitialSolidMg,
			LiquidML:   cs.InitialLiquidML,
			Capped:     cs.Stopper,
			At:         cs.Location,
		}
		if err := w.AddObject(o); err != nil {
			return nil, fmt.Errorf("env: %w", err)
		}
		e.drivers[cs.ID] = device.NewContainerDriver(cs.ID)
	}

	return e, nil
}

// fixtureKind maps the config kind strings to world kinds.
func fixtureKind(s string) world.FixtureKind {
	switch s {
	case "dosing":
		return world.KindDosing
	case "pump":
		return world.KindPump
	case "hotplate":
		return world.KindHotplate
	case "thermoshaker":
		return world.KindThermoshaker
	case "centrifuge":
		return world.KindCentrifuge
	case "grid":
		return world.KindGrid
	case "decapper":
		return world.KindDecapper
	case "spin_coater":
		return world.KindSpinCoater
	case "nozzle":
		return world.KindNozzle
	case "presence":
		return world.KindSensor
	default:
		return world.KindGeneric
	}
}

// doorSide maps config door sides to world door sides.
func doorSide(s string) world.DoorSide {
	switch s {
	case "x-":
		return world.DoorXNeg
	case "x+":
		return world.DoorXPos
	case "y-":
		return world.DoorYNeg
	case "y+":
		return world.DoorYPos
	case "z+":
		return world.DoorZPos
	default:
		return world.DoorNone
	}
}

// Stage returns the environment's stage.
func (e *Env) Stage() Stage { return e.stage }

// Params returns the stage parameters.
func (e *Env) Params() Params { return e.params }

// Lab returns the compiled configuration.
func (e *Env) Lab() *config.Lab { return e.lab }

// World exposes ground truth — for the evaluation harness only; RABIT
// itself must go through Execute/FetchState.
func (e *Env) World() *world.World { return e.w }

// Driver returns the driver for a device.
func (e *Env) Driver(id string) (device.Driver, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.drivers[id]
	return d, ok
}

// InjectFault arms a malfunction on one device.
func (e *Env) InjectFault(deviceID string, f device.Fault) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.drivers[deviceID]
	if !ok {
		return fmt.Errorf("env: no device %q", deviceID)
	}
	d.InjectFault(f)
	return nil
}

// SetPacing makes Execute consume wall-clock time: each command sleeps
// its simulated duration divided by speedup. Zero disables pacing.
func (e *Env) SetPacing(speedup float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.paceSpeedup = speedup
}

// Execute dispatches one command to its device driver, applying the
// stage's process-time scale to timed actions.
func (e *Env) Execute(cmd action.Command) error {
	e.mu.Lock()
	d, ok := e.drivers[cmd.Device]
	pace := e.paceSpeedup
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("env: no device %q", cmd.Device)
	}
	before := e.w.Now()
	err := d.Execute(e.w, cmd)
	if cmd.Duration > 0 {
		e.w.Advance(time.Duration(float64(cmd.Duration) * e.params.ProcessTimeScale))
	}
	if pace > 0 {
		if elapsed := e.w.Now() - before; elapsed > 0 {
			time.Sleep(time.Duration(float64(elapsed) / pace))
		}
	}
	return err
}

// ExecuteConcurrent runs several robot moves simultaneously — the
// capability space multiplexing exists to make safe. All commands must be
// arm motion commands.
func (e *Env) ExecuteConcurrent(cmds []action.Command) error {
	moves := make([]world.ConcurrentMove, 0, len(cmds))
	for _, cmd := range cmds {
		if cmd.Action != action.MoveRobot && cmd.Action != action.MoveRobotInside {
			return fmt.Errorf("env: concurrent execution supports only moves, got %q", cmd.Action)
		}
		e.mu.Lock()
		d, ok := e.drivers[cmd.Device].(*device.ArmDriver)
		e.mu.Unlock()
		if !ok {
			return fmt.Errorf("env: %q is not an arm", cmd.Device)
		}
		target, err := d.DeckTarget(cmd)
		if err != nil {
			return err
		}
		opts := world.MoveOptions{Roll: cmd.Roll}
		if cmd.Object != "" {
			opts.IgnoreObjects = []string{cmd.Object}
		}
		moves = append(moves, world.ConcurrentMove{ArmID: cmd.Device, Target: target, Opts: opts})
	}
	return e.w.MoveArmsConcurrently(moves)
}

// FetchState gathers every device's observable state — the paper's
// FetchState() built from per-device status commands over the recorded
// connection parameters.
func (e *Env) FetchState() state.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := state.Snapshot{}
	for _, d := range e.drivers {
		d.ReadState(e.w, s)
	}
	return s
}

// FetchStateScoped gathers the observable state of just the listed
// devices — the per-command status poll of the engine's sharded pipeline
// — plus every presence sensor (exogenous readings feed rule checks on
// all paths). Unknown IDs (containers without drivers never registered,
// locations) are skipped silently, mirroring FetchState's behaviour of
// only reporting what a driver answers for.
func (e *Env) FetchStateScoped(ids []string) state.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := state.Snapshot{}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if d, ok := e.drivers[id]; ok {
			d.ReadState(e.w, s)
		}
	}
	for _, id := range e.sensorIDs {
		if !seen[id] {
			e.drivers[id].ReadState(e.w, s)
		}
	}
	return s
}

// Now returns the stage's current simulated time.
func (e *Env) Now() time.Duration { return e.w.Now() }

// MeasureSolubility reads the solubility of a container's contents with
// the stage's measurement noise.
func (e *Env) MeasureSolubility(objectID string) (float64, error) {
	v, err := e.w.MeasureSolubility(objectID)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	noise := e.rng.NormFloat64() * e.params.MeasurementNoise
	e.mu.Unlock()
	v *= 1 + noise
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// DamageCost returns the stage-scaled damage cost incurred so far.
func (e *Env) DamageCost() float64 {
	return e.w.DamageCost() * e.params.DamageCostScale
}
