// Package bugs implements the naive-programmer bug study of Section IV:
// sixteen mutations of the safe Fig. 5 testbed workflow, produced — as in
// the paper — by changing command arguments, deleting commands, or
// changing command order, plus the Fig. 6-style edits to the script's own
// location table. Each bug carries the paper's category and Table V
// severity classification and the expected detection outcome per RABIT
// configuration; the outcomes themselves are *emergent* — the evaluation
// harness replays each mutated workflow through the real engine and
// records what actually happened.
package bugs

import (
	"time"

	"repro/internal/geom"
	"repro/internal/workflow"
	"repro/internal/world"
)

// Category is the paper's four-way classification of the unsafe behaviors
// the injected bugs produced (Section IV).
type Category int

// Bug categories from Section IV.
const (
	// CatDoor is "interactions with the dosing device door".
	CatDoor Category = iota + 1
	// CatTwoArm is "collisions between two robot arms".
	CatTwoArm
	// CatNoVial is "experiments without a vial".
	CatNoVial
	// CatCoordinates is "changing position coordinates" (and other
	// argument changes).
	CatCoordinates
)

// String names the category as the paper does.
func (c Category) String() string {
	switch c {
	case CatDoor:
		return "door interactions"
	case CatTwoArm:
		return "two-arm collisions"
	case CatNoVial:
		return "experiments without a vial"
	case CatCoordinates:
		return "changing position coordinates"
	default:
		return "unknown"
	}
}

// Expectation is the paper-derived expected detection outcome per engine
// configuration; tests assert the emergent behaviour matches.
type Expectation struct {
	Initial  bool // initial RABIT (8/16 in the paper)
	Modified bool // after held-object + multiplexing fixes (12/16)
	WithSim  bool // modified + Extended Simulator (13/16)
}

// Bug is one injected fault.
type Bug struct {
	// ID is the stable 1–16 index used by DESIGN.md's table.
	ID int
	// Slug is a short name.
	Slug string
	// Category classifies the unsafe behaviour.
	Category Category
	// Severity is the Table V potential-damage class.
	Severity world.Severity
	// Description explains the mutation and its physical consequence.
	Description string
	// Expect is the paper-aligned expected detection.
	Expect Expectation
	// Mutate edits the session (location-table edits) and returns the
	// mutated step list.
	Mutate func(s *workflow.Session) []workflow.Step
}

// base returns the pristine Fig. 5 workflow.
func base() []workflow.Step { return workflow.Fig5Workflow() }

// Suite returns the sixteen bugs.
func Suite() []Bug {
	return []Bug{
		bugA(),                // 1
		bugCloseDoorOnArm(),   // 2
		bugDoseDoorOpen(),     // 3
		bugOpenDoorRunning(),  // 4
		bugHotplateOverTemp(), // 5
		bugCentrifugeNoCap(),  // 6
		bugB(),                // 7
		bugConcurrentArms(),   // 8
		bugDNoVial(),          // 9
		bugSilentSkip(),       // 10
		bugHeldVialClips(),    // 11
		bugGripperRoll(),      // 12
		bugDWithVial(),        // 13
		bugC(),                // 14
		bugGripperReorder(),   // 15
		bugLiquidFirst(),      // 16
	}
}

// ByID finds a bug.
func ByID(id int) (Bug, bool) {
	for _, b := range Suite() {
		if b.ID == id {
			return b, true
		}
	}
	return Bug{}, false
}

// ---- Category 1: door interactions (High severity) ----

// bugA is the paper's Bug A: the door-reopen line (Fig. 5 line 23) is
// omitted, so ViperX drives into the closed dosing-device door when it
// returns for the vial.
func bugA() Bug {
	return Bug{
		ID: 1, Slug: "door-open-omitted", Category: CatDoor, Severity: world.SeverityHigh,
		Description: "Bug A: open_door omitted before the arm re-enters the dosing device; the arm smashes the closed glass door",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.DeleteStep(base(), "reopen-door")
		},
	}
}

// bugCloseDoorOnArm closes the door while the arm is still inside the
// device (the reordering class).
func bugCloseDoorOnArm() Bug {
	return Bug{
		ID: 2, Slug: "door-closed-on-arm", Category: CatDoor, Severity: world.SeverityHigh,
		Description: "close_door reordered before the arm leaves the dosing device; the door closes onto the arm",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			steps := workflow.DeleteStep(base(), "close-door")
			return workflow.InsertAfter(steps, "viperx-place-dd", workflow.Step{
				Name: "close-door-early",
				Run: func(s *workflow.Session) error {
					return s.Device("dosing_device").SetDoor(false)
				},
			})
		},
	}
}

// bugDoseDoorOpen starts the dosing run with the door still open.
func bugDoseDoorOpen() Bug {
	return Bug{
		ID: 3, Slug: "dose-with-door-open", Category: CatDoor, Severity: world.SeverityHigh,
		Description: "close_door omitted; dosing starts with the enclosure open",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.DeleteStep(base(), "close-door")
		},
	}
}

// bugOpenDoorRunning opens the door while the dosing mechanism runs.
func bugOpenDoorRunning() Bug {
	return Bug{
		ID: 4, Slug: "door-opened-while-running", Category: CatDoor, Severity: world.SeverityHigh,
		Description: "open_door reordered before stop_action; the door opens mid-run",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			steps := workflow.DeleteStep(base(), "reopen-door")
			return workflow.InsertAfter(steps, "run-dosing", workflow.Step{
				Name: "reopen-door-early",
				Run: func(s *workflow.Session) error {
					return s.Device("dosing_device").SetDoor(true)
				},
			})
		},
	}
}

// ---- Argument-change bugs of High severity ----

// bugHotplateOverTemp sets the hotplate far above its configured
// threshold (the firmware's own limit is laxer and accepts it).
func bugHotplateOverTemp() Bug {
	return Bug{
		ID: 5, Slug: "hotplate-over-threshold", Category: CatCoordinates, Severity: world.SeverityHigh,
		Description: "hotplate setpoint changed to 360 °C, beyond the 150 °C threshold; the plate would cook itself",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-place-grid",
				workflow.Step{Name: "hotplate-hot", Run: func(s *workflow.Session) error {
					return s.Device("hotplate").SetValue(360)
				}},
				workflow.Step{Name: "hotplate-start", Run: func(s *workflow.Session) error {
					return s.Device("hotplate").Start(60 * time.Second)
				}},
			)
		},
	}
}

// bugCentrifugeNoCap spins an uncapped, unprepared vial in the
// centrifuge.
func bugCentrifugeNoCap() Bug {
	spin := []workflow.Step{
		{Name: "cf-open", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(true)
		}},
		{Name: "cf-pick-vial2", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PickUpObject("grid_SW_safe", "grid_SW", "vial_2")
		}},
		{Name: "cf-load", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PlaceObject("cf_safe", "cf_slot", "vial_2")
		}},
		{Name: "cf-clear", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "cf-close", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(false)
		}},
		{Name: "cf-spin", Run: func(s *workflow.Session) error {
			c := s.Device("centrifuge")
			if err := c.SetValue(3000); err != nil {
				return err
			}
			return c.Start(30 * time.Second)
		}},
	}
	return Bug{
		ID: 6, Slug: "centrifuge-without-stopper", Category: CatCoordinates, Severity: world.SeverityHigh,
		Description: "an uncapped, unprepared vial is loaded and spun in the centrifuge; the unbalanced rotor destroys it",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-place-grid", spin...)
		},
	}
}

// ---- Category 2: two-arm collisions (Medium-High) ----

// bugB is the paper's Bug B: Ned2 is sent to a "random" point next to the
// grid while ViperX hovers there.
func bugB() Bug {
	return Bug{
		ID: 7, Slug: "two-arm-target", Category: CatTwoArm, Severity: world.SeverityMediumHigh,
		Description: "Bug B: ned2.move_pose to a point near the grid while ViperX is stationed above it; the arms collide",
		Expect:      Expectation{Initial: false, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-place-grid",
				workflow.Step{Name: "ned2-random-move", Run: func(s *workflow.Session) error {
					// Deck point (0.34, 0.22, 0.24) in Ned2's frame.
					return s.Arm("ned2").MovePose(geom.V(-0.46, 0.22, 0.24))
				}},
			)
		},
	}
}

// bugConcurrentArms moves both arms simultaneously on crossing paths.
func bugConcurrentArms() Bug {
	return Bug{
		ID: 8, Slug: "two-arm-concurrent", Category: CatTwoArm, Severity: world.SeverityMediumHigh,
		Description: "both arms are commanded to move at once on crossing paths and collide mid-flight",
		Expect:      Expectation{Initial: false, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-place-grid",
				workflow.Step{Name: "concurrent-cross", Run: func(s *workflow.Session) error {
					return s.MoveConcurrently(map[string]geom.Vec3{
						"viperx": {X: 0.55, Y: 0.10, Z: 0.25},
						"ned2":   {X: -0.45, Y: 0.10, Z: 0.25}, // deck (0.35, 0.10, 0.25)
					})
				}},
			)
		},
	}
}

// ---- Category 4: changing position coordinates ----

// bugDNoVial is Bug D's bare-gripper variant: a very low raw target rams
// the gripper into the platform.
func bugDNoVial() Bug {
	return Bug{
		ID: 9, Slug: "platform-strike-bare", Category: CatCoordinates, Severity: world.SeverityMediumHigh,
		Description: "a move target's z is changed to 0.03; the bare gripper would punch into the platform",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-home-3",
				workflow.Step{Name: "low-move", Run: func(s *workflow.Session) error {
					return s.Arm("viperx").MovePose(geom.V(0.45, 0.10, 0.03))
				}},
			)
		},
	}
}

// bugSilentSkip reproduces the footnote-2 scenario: a waypoint is edited
// to an infeasibly high point; the ViperX silently skips it, and the next
// leg — planned from the waypoint that was never reached — sweeps through
// the hotplate.
func bugSilentSkip() Bug {
	return Bug{
		ID: 10, Slug: "silent-skip-waypoint", Category: CatCoordinates, Severity: world.SeverityMediumHigh,
		Description: "a via waypoint is edited to an unreachable height; the ViperX silently skips it and the next leg collides",
		Expect:      Expectation{Initial: false, Modified: false, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-home-3",
				workflow.Step{Name: "hover-a", Run: func(s *workflow.Session) error {
					return s.Arm("viperx").MovePose(geom.V(0.63, -0.38, 0.30))
				}},
				workflow.Step{Name: "move-to-a", Run: func(s *workflow.Session) error {
					// A: a low free spot south of the centrifuge.
					return s.Arm("viperx").MovePose(geom.V(0.63, -0.38, 0.12))
				}},
				workflow.Step{Name: "via-b-prime", Run: func(s *workflow.Session) error {
					// The intended via point B lifts the tool over the
					// centrifuge before descending at C; the edit sends B'
					// sky-high instead and the ViperX silently skips it.
					return s.Arm("viperx").MovePose(geom.V(0.10, 0.10, 1.50))
				}},
				workflow.Step{Name: "leg-to-c", Run: func(s *workflow.Session) error {
					// C itself is a free spot north of the centrifuge;
					// only the direct low path from A — where the arm
					// still is — sweeps across the device.
					return s.Arm("viperx").MovePose(geom.V(0.63, -0.02, 0.12))
				}},
			)
		},
	}
}

// bugHeldVialClips adds a "shortcut" waypoint low over the hotplate while
// the arm carries the vial: the bare gripper clears the cuboid, the
// hanging vial does not.
func bugHeldVialClips() Bug {
	return Bug{
		ID: 11, Slug: "held-vial-clips-device", Category: CatCoordinates, Severity: world.SeverityMediumHigh,
		Description: "a carry waypoint passes low over the hotplate; the held vial strikes the device cuboid",
		Expect:      Expectation{Initial: false, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-exit-dd-2",
				workflow.Step{Name: "shortcut-over-hotplate", Run: func(s *workflow.Session) error {
					// Hotplate top is 0.20: the bare gripper (reach 0.062)
					// clears at z=0.27, the hanging vial (0.075) does not.
					return s.Arm("viperx").MovePose(geom.V(0.55, 0.45, 0.27))
				}},
			)
		},
	}
}

// bugGripperRoll commands a wrong wrist roll near the grid: the sideways
// finger blade strikes the grid body. Neither RABIT's gripper model nor
// the Extended Simulator models finger orientation, so no configuration
// detects it.
func bugGripperRoll() Bug {
	return Bug{
		ID: 12, Slug: "wrong-gripper-roll", Category: CatCoordinates, Severity: world.SeverityMediumHigh,
		Description: "a move's orientation argument rolls the wrist 90°; the finger blade sweeps into the centrifuge body",
		Expect:      Expectation{Initial: false, Modified: false, WithSim: false},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "viperx-home-3",
				workflow.Step{Name: "hover-beside-cf", Run: func(s *workflow.Session) error {
					// Just west of the centrifuge body.
					return s.Arm("viperx").MovePose(geom.V(0.51, -0.18, 0.30))
				}},
				workflow.Step{Name: "rolled-descent", Run: func(s *workflow.Session) error {
					// Roll +90°: the finger blade points east, into the
					// centrifuge body — invisible to RABIT's vertical
					// gripper model and to the Extended Simulator alike.
					return s.Arm("viperx").MovePoseRolled(geom.V(0.51, -0.18, 0.10), 1.5707963)
				}},
			)
		},
	}
}

// bugDWithVial is Bug D proper (Fig. 6): the dd_pickup z in the script's
// location table is lowered; with the vial in the gripper, the vial
// crashes into the tray and breaks before the bare-gripper geometry ever
// becomes unsafe.
func bugDWithVial() Bug {
	return Bug{
		ID: 13, Slug: "platform-crash-held-vial", Category: CatCoordinates, Severity: world.SeverityMediumLow,
		Description: "Bug D: the script's dd_pickup z is edited from 0.10 to 0.068; the held vial crashes into the tray and shatters",
		Expect:      Expectation{Initial: false, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			p, _ := s.Locs.Coord("viperx", "dd_pickup")
			p.Z = 0.068
			s.Locs.Set("viperx", "dd_pickup", p)
			return base()
		},
	}
}

// ---- Category 3: experiments without a vial (Low) ----

// bugC is the paper's Bug C: the grid pick-up call is deleted; the
// experiment continues without a vial and the dosing device doses into an
// empty chamber.
func bugC() Bug {
	return Bug{
		ID: 14, Slug: "pick-up-omitted", Category: CatNoVial, Severity: world.SeverityLow,
		Description: "Bug C: viperx_pick_up_object deleted; the experiment runs without a vial and solid is dosed into thin air",
		Expect:      Expectation{Initial: false, Modified: false, WithSim: false},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.DeleteStep(base(), "viperx-pick-grid")
		},
	}
}

// bugGripperReorder reorders open/close inside the pick helper: the
// gripper closes on air before descending and opens at the vial, so
// nothing is ever grasped.
func bugGripperReorder() Bug {
	return Bug{
		ID: 15, Slug: "gripper-commands-reordered", Category: CatNoVial, Severity: world.SeverityLow,
		Description: "open_gripper and close_gripper are swapped inside the pick helper; the vial is never grasped",
		Expect:      Expectation{Initial: false, Modified: false, WithSim: false},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.ReplaceStep(base(), "viperx-pick-grid", workflow.Step{
				Name: "viperx-pick-grid-reordered",
				Run: func(s *workflow.Session) error {
					a := s.Arm("viperx")
					if err := a.CloseGripper(); err != nil { // was open_gripper
						return err
					}
					if err := a.GoToLocation("grid_NW_safe"); err != nil {
						return err
					}
					if err := a.GoToLocationForPick("grid_NW", "vial_1"); err != nil {
						return err
					}
					if err := a.OpenGripper(); err != nil { // was close_gripper
						return err
					}
					return a.GoToLocationForPick("grid_NW_safe", "vial_1")
				},
			})
		},
	}
}

// bugLiquidFirst doses solvent into a vial that has received no solid —
// the Hein Lab's order-of-addition custom rule.
func bugLiquidFirst() Bug {
	return Bug{
		ID: 16, Slug: "liquid-before-solid", Category: CatCoordinates, Severity: world.SeverityLow,
		Description: "the pump doses solvent into vial_2, which holds no solid yet; the batch would be ruined",
		Expect:      Expectation{Initial: true, Modified: true, WithSim: true},
		Mutate: func(s *workflow.Session) []workflow.Step {
			return workflow.InsertAfter(base(), "stop-dosing",
				workflow.Step{Name: "premature-solvent", Run: func(s *workflow.Session) error {
					return s.Device("pump").DoseLiquid("vial_2", 2)
				}},
			)
		},
	}
}
