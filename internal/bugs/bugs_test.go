package bugs

import (
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/labs"
	"repro/internal/trace"
	"repro/internal/workflow"
	"repro/internal/world"
)

func testSession(t *testing.T) *workflow.Session {
	t.Helper()
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.Build(lab, env.StageTestbed, 1)
	if err != nil {
		t.Fatal(err)
	}
	return workflow.NewSession(trace.NewInterceptor(nil, e), lab)
}

func TestSuiteComposition(t *testing.T) {
	suite := Suite()
	if len(suite) != 16 {
		t.Fatalf("suite size %d, want 16", len(suite))
	}
	// Table V totals by severity.
	bySev := map[world.Severity]int{}
	expectModified := 0
	expectInitial := 0
	expectSim := 0
	for i, b := range suite {
		if b.ID != i+1 {
			t.Errorf("bug at index %d has ID %d", i, b.ID)
		}
		bySev[b.Severity]++
		if b.Expect.Initial {
			expectInitial++
		}
		if b.Expect.Modified {
			expectModified++
		}
		if b.Expect.WithSim {
			expectSim++
		}
		if b.Expect.Initial && !b.Expect.Modified {
			t.Errorf("bug %d: the modified RABIT never regresses", b.ID)
		}
		if b.Expect.Modified && !b.Expect.WithSim {
			t.Errorf("bug %d: attaching the simulator never regresses", b.ID)
		}
	}
	if bySev[world.SeverityLow] != 3 || bySev[world.SeverityMediumLow] != 1 ||
		bySev[world.SeverityMediumHigh] != 6 || bySev[world.SeverityHigh] != 6 {
		t.Errorf("severity totals %v do not match Table V", bySev)
	}
	if expectInitial != 8 || expectModified != 12 || expectSim != 13 {
		t.Errorf("expected detection %d/%d/%d, want 8/12/13", expectInitial, expectModified, expectSim)
	}
}

func TestCategories(t *testing.T) {
	for _, c := range []Category{CatDoor, CatTwoArm, CatNoVial, CatCoordinates} {
		if s := c.String(); s == "" || s == "unknown" {
			t.Errorf("category %d unnamed", c)
		}
	}
	counts := map[Category]int{}
	for _, b := range Suite() {
		counts[b.Category]++
	}
	if counts[CatDoor] != 4 || counts[CatTwoArm] != 2 || counts[CatNoVial] != 2 {
		t.Errorf("category counts %v", counts)
	}
}

func TestMutationsActuallyMutate(t *testing.T) {
	baseNames := strings.Join(workflow.StepNames(workflow.Fig5Workflow()), ",")
	for _, b := range Suite() {
		s := testSession(t)
		steps := b.Mutate(s)
		mutatedNames := strings.Join(workflow.StepNames(steps), ",")
		locEdited := false
		if p, ok := s.Locs.Coord("viperx", "dd_pickup"); ok && p.Z != 0.10 {
			locEdited = true
		}
		if mutatedNames == baseNames && !locEdited {
			t.Errorf("bug %d (%s) left the workflow untouched", b.ID, b.Slug)
		}
	}
}

func TestByID(t *testing.T) {
	for id := 1; id <= 16; id++ {
		b, ok := ByID(id)
		if !ok || b.ID != id {
			t.Errorf("ByID(%d) failed", id)
		}
	}
	if _, ok := ByID(0); ok {
		t.Error("ByID(0) found something")
	}
	if _, ok := ByID(17); ok {
		t.Error("ByID(17) found something")
	}
}
