package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/recorder"
)

// IncidentSummary reduces one loaded bundle to the facts the forensic
// aggregation works over.
type IncidentSummary struct {
	Bundle    string
	Tag       string
	AlertKind string
	Device    string
	RuleIDs   []string
	// Provenance is the trigger's trajectory-verdict source ("" when the
	// alert fired before or without a trajectory check).
	Provenance string
	// DetectionLatency is lab-clock time from the triggering command's
	// issue to the alert (zero when either stamp is missing).
	DetectionLatency time.Duration
	// ChainLen is the resolved causal-chain length (1 = no speculation
	// involved; 3 = trigger → speculation → hinting command).
	ChainLen int
	Records  int
}

// IncidentReport aggregates a directory of incident bundles — the
// cross-bug view of the Table V injections' forensics.
type IncidentReport struct {
	Incidents []IncidentSummary
	// ByKind counts bundles per alert kind; ByTag per run tag (the bug
	// study tags bundles with bug slugs, so ByTag is bundles per bug).
	ByKind map[string]int
	ByTag  map[string]int
	// Detection-latency stats over the bundles that carry both stamps.
	LatencyCount                          int
	MinLatency, MedianLatency, MaxLatency time.Duration
	// SpeculationServed counts triggers whose verdict was served from a
	// speculative pre-validation.
	SpeculationServed int
}

// AnalyzeIncidents loads every bundle under root and aggregates it.
func AnalyzeIncidents(root string) (*IncidentReport, error) {
	incs, err := recorder.LoadIncidents(root)
	if err != nil {
		return nil, fmt.Errorf("eval: incidents: %w", err)
	}
	return BuildIncidentReport(incs), nil
}

// BuildIncidentReport aggregates already-loaded bundles.
func BuildIncidentReport(incs []*recorder.Incident) *IncidentReport {
	rep := &IncidentReport{
		ByKind: make(map[string]int),
		ByTag:  make(map[string]int),
	}
	var lats []time.Duration
	for _, in := range incs {
		sum := IncidentSummary{
			Bundle:    in.Manifest.Bundle,
			Tag:       in.Manifest.Tag,
			AlertKind: in.Manifest.AlertKind,
			Device:    in.Manifest.Device,
			RuleIDs:   in.Manifest.RuleIDs,
			ChainLen:  len(in.Manifest.Chain),
			Records:   in.Manifest.Records,
		}
		if trig, ok := in.Trigger(); ok {
			sum.Provenance = trig.Verdict.Source
			if trig.AlertTNS > 0 && trig.TNS > 0 && trig.AlertTNS >= trig.TNS {
				sum.DetectionLatency = time.Duration(trig.AlertTNS - trig.TNS)
				lats = append(lats, sum.DetectionLatency)
			}
			if trig.Verdict.Source == recorder.SourceSpeculative {
				rep.SpeculationServed++
			}
		}
		rep.ByKind[sum.AlertKind]++
		if sum.Tag != "" {
			rep.ByTag[sum.Tag]++
		}
		rep.Incidents = append(rep.Incidents, sum)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.LatencyCount = len(lats)
		rep.MinLatency = lats[0]
		rep.MedianLatency = lats[len(lats)/2]
		rep.MaxLatency = lats[len(lats)-1]
	}
	return rep
}

// RenderIncidentTimeline reconstructs one bundle's human-readable causal
// timeline: the manifest's headline facts, the causal chain rendered
// oldest-first, and the trigger's captured state views.
func RenderIncidentTimeline(in *recorder.Incident) string {
	var b strings.Builder
	m := in.Manifest
	fmt.Fprintf(&b, "incident %s\n", m.Bundle)
	if m.Tag != "" {
		fmt.Fprintf(&b, "  tag:    %s\n", m.Tag)
	}
	fmt.Fprintf(&b, "  alert:  %s — %s\n", m.AlertKind, m.Alert)
	fmt.Fprintf(&b, "  device: %s (seq %d)  t=%s\n", m.Device, m.Seq, time.Duration(m.TNS))
	if len(m.RuleIDs) > 0 {
		fmt.Fprintf(&b, "  rules:  %s\n", strings.Join(m.RuleIDs, ", "))
	}

	// The chain is stored trigger-first; a timeline reads cause-first.
	chain := make([]recorder.Record, 0, len(m.Chain))
	for i := len(m.Chain) - 1; i >= 0; i-- {
		if rec, ok := in.Record(m.Chain[i]); ok {
			chain = append(chain, rec)
		}
	}
	fmt.Fprintf(&b, "  causal chain (%d records of %d in window):\n", len(chain), m.Records)
	for i, rec := range chain {
		fmt.Fprintf(&b, "    [%d] %s\n", i+1, renderChainRecord(rec))
	}

	if trig, ok := in.Trigger(); ok {
		renderViews(&b, trig)
	}
	return b.String()
}

// renderChainRecord renders one chain entry as a single timeline line.
func renderChainRecord(rec recorder.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", rec.Corr, rec.Kind)
	if rec.Cmd != "" {
		fmt.Fprintf(&b, " %s", rec.Cmd)
	}
	fmt.Fprintf(&b, " path=%s", rec.Path)
	if rec.Parent != "" {
		fmt.Fprintf(&b, " parent=%s", rec.Parent)
	}
	if rec.Verdict.Source != "" {
		fmt.Fprintf(&b, " verdict=%s", rec.Verdict.Source)
		if rec.Verdict.SpecCorr != "" {
			fmt.Fprintf(&b, " via=%s", rec.Verdict.SpecCorr)
		}
		fmt.Fprintf(&b, " epoch=%d", rec.Verdict.EpochAtValidation)
		if rec.Verdict.EpochAtCommit != 0 {
			fmt.Fprintf(&b, "→%d", rec.Verdict.EpochAtCommit)
		}
	}
	if s := renderSpans(rec.Spans); s != "" {
		fmt.Fprintf(&b, " [%s]", s)
	}
	if rec.Outcome != "" {
		fmt.Fprintf(&b, " outcome=%s", rec.Outcome)
	}
	if rec.AlertKind != "" {
		fmt.Fprintf(&b, " ⇒ ALERT %s", rec.AlertKind)
	}
	return b.String()
}

// renderSpans renders the non-zero stage timings.
func renderSpans(s recorder.Spans) string {
	var parts []string
	add := func(name string, ns int64) {
		if ns > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", name, time.Duration(ns).Round(time.Microsecond)))
		}
	}
	add("validate", s.ValidateNS)
	add("trajectory", s.TrajectoryNS)
	add("exec", s.ExecNS)
	add("fetch", s.FetchNS)
	add("compare", s.CompareNS)
	return strings.Join(parts, " ")
}

// renderViews renders the trigger's captured state views.
func renderViews(b *strings.Builder, trig recorder.Record) {
	view := func(label string, m map[string]string) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(b, "  %s:\n", label)
		for _, k := range keys {
			fmt.Fprintf(b, "    %s = %s\n", k, m[k])
		}
	}
	view("pre-state", trig.Pre)
	view("expected", trig.Expected)
	view("observed", trig.Observed)
	if len(trig.Mismatches) > 0 {
		fmt.Fprintf(b, "  mismatched keys: %s\n", strings.Join(trig.Mismatches, ", "))
	}
}

// RenderIncidentReport renders the aggregate view.
func RenderIncidentReport(rep *IncidentReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "incidents: %d\n", len(rep.Incidents))
	if len(rep.Incidents) == 0 {
		return b.String()
	}
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-20s %d\n", k, rep.ByKind[k])
	}
	if rep.LatencyCount > 0 {
		fmt.Fprintf(&b, "detection latency (%d stamped): min=%s median=%s max=%s\n",
			rep.LatencyCount, rep.MinLatency, rep.MedianLatency, rep.MaxLatency)
	}
	if rep.SpeculationServed > 0 {
		fmt.Fprintf(&b, "triggers served by speculative pre-validation: %d\n", rep.SpeculationServed)
	}
	if len(rep.ByTag) > 0 {
		tags := make([]string, 0, len(rep.ByTag))
		for t := range rep.ByTag {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		fmt.Fprintf(&b, "bundles per tag:\n")
		for _, t := range tags {
			fmt.Fprintf(&b, "  %-28s %d\n", t, rep.ByTag[t])
		}
	}
	return b.String()
}
