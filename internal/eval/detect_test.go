package eval

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/env"
	"repro/internal/rules"
	"repro/internal/world"
)

// study caches the bug study across tests (it replays 16 bugs × 4 runs).
var cachedStudy *BugStudy

func bugStudy(t *testing.T) *BugStudy {
	t.Helper()
	if cachedStudy == nil {
		st, err := RunBugStudy(1)
		if err != nil {
			t.Fatal(err)
		}
		cachedStudy = st
	}
	return cachedStudy
}

// TestBugExpectationsEmerge asserts that every bug's emergent detection
// outcome matches the paper-aligned expectation declared in the suite.
func TestBugExpectationsEmerge(t *testing.T) {
	st := bugStudy(t)
	for _, o := range st.Outcomes {
		want := map[ConfigName]bool{
			ConfigInitial:     o.Bug.Expect.Initial,
			ConfigModified:    o.Bug.Expect.Modified,
			ConfigModifiedSim: o.Bug.Expect.WithSim,
		}
		for cfg, expect := range want {
			if got := o.Detected[cfg]; got != expect {
				t.Errorf("bug %d (%s) under %s: detected=%v, want %v (alert: %s)",
					o.Bug.ID, o.Bug.Slug, cfg, got, expect, o.AlertKinds[cfg])
			}
		}
	}
}

// TestDetectionProgression asserts the paper's Section IV summary:
// 8/16 initially (50%), 12/16 modified (75%), 13/16 with the Extended
// Simulator (81%).
func TestDetectionProgression(t *testing.T) {
	st := bugStudy(t)
	tests := []struct {
		cfg  ConfigName
		want int
	}{
		{ConfigInitial, 8},
		{ConfigModified, 12},
		{ConfigModifiedSim, 13},
	}
	for _, tt := range tests {
		if got := st.DetectedCount(tt.cfg); got != tt.want {
			var detail string
			for _, o := range st.Outcomes {
				if o.Detected[tt.cfg] != (o.Bug.Expect.Initial && tt.cfg == ConfigInitial ||
					o.Bug.Expect.Modified && tt.cfg == ConfigModified ||
					o.Bug.Expect.WithSim && tt.cfg == ConfigModifiedSim) {
					detail += " " + o.Bug.Slug
				}
			}
			t.Errorf("%s: detected %d/16, want %d/16 (divergent:%s)", tt.cfg, got, tt.want, detail)
		}
	}
	if r := st.DetectionRate(ConfigModifiedSim); r < 81 || r > 82 {
		t.Errorf("final detection rate %.1f%%, want ≈81%%", r)
	}
}

// TestTableV asserts the severity breakdown of Table V: Low 3/1,
// Medium-Low 1/1, Medium-High 6/4, High 6/6 under the modified
// configuration.
func TestTableV(t *testing.T) {
	st := bugStudy(t)
	want := map[world.Severity][2]int{
		world.SeverityLow:        {3, 1},
		world.SeverityMediumLow:  {1, 1},
		world.SeverityMediumHigh: {6, 4},
		world.SeverityHigh:       {6, 6},
	}
	rows := st.TableV()
	if len(rows) != 4 {
		t.Fatalf("Table V has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Severity]
		if !ok {
			t.Errorf("unexpected severity %v", r.Severity)
			continue
		}
		if r.Total != w[0] || r.Detected != w[1] {
			t.Errorf("%v: %d/%d, want %d/%d", r.Severity, r.Detected, r.Total, w[1], w[0])
		}
	}
}

// TestGroundTruthDamage asserts that the unprotected runs actually cause
// the physical consequences the bugs were classified by — the injected
// bugs are real hazards, not strawmen.
func TestGroundTruthDamage(t *testing.T) {
	st := bugStudy(t)
	// Bugs whose unprotected run must record at least one damage event of
	// the declared (or worse) severity.
	damaging := map[int]world.Severity{
		1:  world.SeverityHigh,       // door smash
		2:  world.SeverityHigh,       // door closed on arm
		3:  world.SeverityLow,        // dust escape
		4:  world.SeverityLow,        // opened mid-run
		5:  world.SeverityHigh,       // overheat
		6:  world.SeverityHigh,       // rotor destroyed
		7:  world.SeverityMediumHigh, // arm-arm collision
		8:  world.SeverityMediumHigh, // concurrent collision
		9:  world.SeverityMediumHigh, // platform strike
		10: world.SeverityMediumHigh, // skipped waypoint → device strike
		11: world.SeverityMediumHigh, // held vial clips hotplate
		12: world.SeverityMediumHigh, // finger blade into grid
		13: world.SeverityMediumLow,  // vial shatters
		14: world.SeverityLow,        // solid dosed into thin air
		15: world.SeverityLow,        // solid dosed into thin air
	}
	for id, minSev := range damaging {
		o, ok := st.Outcome(id)
		if !ok {
			t.Fatalf("bug %d missing from study", id)
		}
		var worst world.Severity
		for _, ev := range o.GroundTruthDamage {
			if ev.Severity > worst {
				worst = ev.Severity
			}
		}
		if worst < minSev {
			t.Errorf("bug %d (%s): unprotected run recorded max severity %v, want ≥ %v (events: %v)",
				id, o.Bug.Slug, worst, minSev, o.GroundTruthDamage)
		}
	}
	// Bug 16's hazard is chemical (a ruined batch), not mechanical: the
	// solvent reaches the solid-less vial.
	o16, _ := st.Outcome(16)
	if len(o16.GroundTruthDamage) != 0 {
		t.Errorf("bug 16 should cause no mechanical damage, got %v", o16.GroundTruthDamage)
	}
}

// TestSuiteShape sanity-checks the suite composition against DESIGN.md.
func TestSuiteShape(t *testing.T) {
	suite := bugs.Suite()
	if len(suite) != 16 {
		t.Fatalf("suite has %d bugs, want 16", len(suite))
	}
	seen := map[int]bool{}
	for _, b := range suite {
		if b.ID < 1 || b.ID > 16 || seen[b.ID] {
			t.Errorf("bad or duplicate bug ID %d", b.ID)
		}
		seen[b.ID] = true
		if b.Slug == "" || b.Description == "" {
			t.Errorf("bug %d lacks metadata", b.ID)
		}
		if b.Severity < world.SeverityLow || b.Severity > world.SeverityHigh {
			t.Errorf("bug %d has invalid severity", b.ID)
		}
	}
	if _, ok := bugs.ByID(7); !ok {
		t.Error("ByID failed")
	}
	if _, ok := bugs.ByID(99); ok {
		t.Error("ByID found a ghost")
	}
}

// TestSpaceMultiplexingAlsoCatchesTwoArmBugs replays the two-arm bugs
// under the modified RABIT with the *space* policy (the paper's second
// workaround: a software-defined wall between the arms): both are caught
// before any motion, while arms may still move concurrently inside their
// own zones.
func TestSpaceMultiplexingAlsoCatchesTwoArmBugs(t *testing.T) {
	opts := Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexSpace},
		WithRABIT: true,
		Seed:      1,
	}
	for _, id := range []int{7, 8} {
		b, _ := bugs.ByID(id)
		detected, kind, err := runBugOnce(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !detected {
			t.Errorf("bug %d (%s) undetected under space multiplexing", id, b.Slug)
		}
		if kind != "Invalid Command!" {
			t.Errorf("bug %d: alert kind %q", id, kind)
		}
	}
}

// TestDetectionStableAcrossSeeds re-runs the full bug study under five
// different noise seeds: the detection matrix must be identical every
// time — the reproduced results do not hinge on lucky noise draws.
func TestDetectionStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("5 full bug-study runs")
	}
	for seed := int64(2); seed <= 6; seed++ {
		st, err := RunBugStudy(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := st.DetectedCount(ConfigInitial); got != 8 {
			t.Errorf("seed %d: initial %d/16", seed, got)
		}
		if got := st.DetectedCount(ConfigModified); got != 12 {
			t.Errorf("seed %d: modified %d/16", seed, got)
		}
		if got := st.DetectedCount(ConfigModifiedSim); got != 13 {
			t.Errorf("seed %d: +sim %d/16", seed, got)
		}
		for _, o := range st.Outcomes {
			if o.Detected[ConfigInitial] != o.Bug.Expect.Initial ||
				o.Detected[ConfigModified] != o.Bug.Expect.Modified ||
				o.Detected[ConfigModifiedSim] != o.Bug.Expect.WithSim {
				t.Errorf("seed %d: bug %d (%s) detection drifted", seed, o.Bug.ID, o.Bug.Slug)
			}
		}
	}
}
