package eval

import (
	"testing"

	"repro/internal/env"
	"repro/internal/rules"
)

// TestControlledScenariosOnTestbed reproduces the controlled experiments
// of Section IV on the testbed: every rule in Tables III and IV is
// deliberately violated once, and RABIT detects all of them with the
// targeted rule among the violations.
func TestControlledScenariosOnTestbed(t *testing.T) {
	results, err := RunControlled("testbed", env.StageTestbed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d scenarios, want 15 (11 general + 4 custom)", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("scenario %s (%s) not detected", r.Scenario.RuleID, r.Scenario.Name)
			continue
		}
		if !r.RuleHit {
			t.Errorf("scenario %s: alert raised but rule not among violations: %v",
				r.Scenario.RuleID, r.Alert.Error())
		}
	}
}

// TestControlledScenariosOnProduction runs the same battery on the Hein
// production deck under the simulator stage (the paper exercised both
// platforms).
func TestControlledScenariosOnProduction(t *testing.T) {
	results, err := RunControlled("production", env.StageSimulator, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Detected || !r.RuleHit {
			detail := "no alert"
			if r.Alert != nil {
				detail = r.Alert.Error()
			}
			t.Errorf("scenario %s (%s): detected=%v ruleHit=%v (%s)",
				r.Scenario.RuleID, r.Scenario.Name, r.Detected, r.RuleHit, detail)
		}
	}
}

// runControlledWithSim replays the controlled battery on the testbed with
// the Extended Simulator attached, optionally with its broadphase pruning
// disabled, and returns a per-scenario summary of what was alerted.
func runControlledWithSim(t *testing.T, broadphase bool) []string {
	t.Helper()
	var out []string
	for _, sc := range ControlledScenarios() {
		s, err := NewTestbedSetup(Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
			WithRABIT: true, WithSim: true, Seed: 1,
		})
		if err != nil {
			t.Fatalf("controlled %s: %v", sc.RuleID, err)
		}
		s.Simulator.SetBroadphase(broadphase)
		if sc.Prepare != nil {
			if err := sc.Prepare(s); err != nil {
				t.Fatalf("controlled %s prepare: %v", sc.RuleID, err)
			}
			s.Engine.Start()
		}
		arm := s.Lab.ArmIDs()[0]
		for _, other := range s.Lab.ArmIDs()[1:] {
			if err := s.Session.Arm(other).GoSleep(); err != nil {
				t.Fatalf("controlled %s quiesce: %v", sc.RuleID, err)
			}
		}
		_ = sc.Run(s.Session, arm)
		summary := sc.RuleID + ": no alert"
		if alerts := s.Engine.Alerts(); len(alerts) > 0 {
			summary = sc.RuleID + ": " + alerts[0].Error()
		}
		out = append(out, summary)
	}
	return out
}

// TestControlledBroadphaseEquivalence asserts the broadphase-pruned
// simulator changes no outcome of the Table III/IV controlled battery:
// every scenario raises exactly the same alert text with pruning on and
// off.
func TestControlledBroadphaseEquivalence(t *testing.T) {
	pruned := runControlledWithSim(t, true)
	full := runControlledWithSim(t, false)
	if len(pruned) != len(full) {
		t.Fatalf("scenario counts differ: %d vs %d", len(pruned), len(full))
	}
	for i := range pruned {
		if pruned[i] != full[i] {
			t.Errorf("scenario %d diverged:\n  broadphase on:  %s\n  broadphase off: %s",
				i, pruned[i], full[i])
		}
	}
}
