package eval

import (
	"testing"

	"repro/internal/env"
)

// TestControlledScenariosOnTestbed reproduces the controlled experiments
// of Section IV on the testbed: every rule in Tables III and IV is
// deliberately violated once, and RABIT detects all of them with the
// targeted rule among the violations.
func TestControlledScenariosOnTestbed(t *testing.T) {
	results, err := RunControlled("testbed", env.StageTestbed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d scenarios, want 15 (11 general + 4 custom)", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("scenario %s (%s) not detected", r.Scenario.RuleID, r.Scenario.Name)
			continue
		}
		if !r.RuleHit {
			t.Errorf("scenario %s: alert raised but rule not among violations: %v",
				r.Scenario.RuleID, r.Alert.Error())
		}
	}
}

// TestControlledScenariosOnProduction runs the same battery on the Hein
// production deck under the simulator stage (the paper exercised both
// platforms).
func TestControlledScenariosOnProduction(t *testing.T) {
	results, err := RunControlled("production", env.StageSimulator, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Detected || !r.RuleHit {
			detail := "no alert"
			if r.Alert != nil {
				detail = r.Alert.Error()
			}
			t.Errorf("scenario %s (%s): detected=%v ruleHit=%v (%s)",
				r.Scenario.RuleID, r.Scenario.Name, r.Detected, r.RuleHit, detail)
		}
	}
}
