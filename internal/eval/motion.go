package eval

import (
	"fmt"
	"time"

	"repro/internal/action"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rules"
)

// The motion benchmark measures the PR's motion-planning fast path on a
// motion-heavy replay: repeated station-visit cycles on the testbed's
// viperx arm, with periodic door toggles churning the deck epoch the way
// a real screen's open/close/dispense cadence does. Three configurations
// replay the identical command stream:
//
//	no-cache    every check solves IK and sweeps the trajectory from
//	            scratch (the pre-PR behaviour)
//	cache       plan + verdict caches on, no speculative lookahead
//	cache+spec  caches on, and each command hints its successor so the
//	            lookahead worker pre-validates it off the critical path
//
// The headline is the before-check latency (validate + trajectory p50):
// on repeat visits the cached modes serve verdicts without touching IK
// or the sweep, and speculation removes even the first-visit miss from
// the critical path.

// Motion mode names.
const (
	MotionModeCold   = "no-cache"
	MotionModeCached = "cache"
	MotionModeSpec   = "cache+spec"
)

// MotionOptions configures the motion-heavy replay benchmark.
type MotionOptions struct {
	// Visits is how many station-visit cycles the script performs; each
	// cycle is four stations plus a homing move, and every fourth cycle
	// opens and closes the dosing-device door (a deck-epoch bump).
	Visits int
	// Seed drives stochastic fidelity noise.
	Seed int64
}

// MotionResult is one mode's measurement.
type MotionResult struct {
	Mode string
	// Commands is the total replayed command count; MotionCommands is
	// the robot-motion subset (the commands the fast path serves).
	Commands       int
	MotionCommands int
	Wall           time.Duration
	// Validate and Trajectory are the before-check stage histograms —
	// the latency the fast path exists to cut.
	Validate   StageLatency
	Trajectory StageLatency
	// Plan-cache counters (IK layer).
	PlanHits       int64
	PlanMisses     int64
	PlanWarmStarts int64
	// Verdict-cache counters (simulator layer).
	VerdictHits   int64
	VerdictMisses int64
	EpochBumps    int64
	// Speculation counters (engine layer). SpeculationHits is how many
	// on-path checks were answered by a verdict the lookahead worker had
	// already computed.
	Speculations        int64
	SpeculationHits     int64
	SpeculationsDropped int64
}

// CheckP50 is the mode's median before-check latency: validate p50 plus
// trajectory p50, the two stages a command pays before it may execute.
func (r MotionResult) CheckP50() time.Duration {
	return r.Validate.P50 + r.Trajectory.P50
}

// motionStations are free-space viperx waypoints whose verdicts do not
// depend on the dosing-device door, so repeat visits produce identical
// plans and verdicts across epochs.
var motionStations = []geom.Vec3{
	geom.V(0.32, 0.22, 0.25),
	geom.V(0.15, 0.30, 0.25),
	geom.V(0.63, -0.38, 0.30),
	geom.V(0.45, 0.10, 0.30),
}

// motionScript builds the replayed command stream: visits cycles over
// the stations plus a homing move, with a door open/close pair every
// fourth cycle so the deck epoch churns mid-run (the invalidation cost
// is part of what the benchmark measures, not an artifact it avoids).
func motionScript(visits int) []action.Command {
	out := make([]action.Command, 0, visits*(len(motionStations)+1)+visits/2+1)
	// Time multiplexing lets viperx move only while ned2 is in its sleep
	// pose, so the replay parks it first.
	out = append(out, action.Command{Device: "ned2", Action: action.MoveSleep})
	for v := 0; v < visits; v++ {
		if v%4 == 1 {
			out = append(out,
				action.Command{Device: "dosing_device", Action: action.OpenDoor},
				action.Command{Device: "dosing_device", Action: action.CloseDoor},
			)
		}
		for _, t := range motionStations {
			out = append(out, action.Command{Device: "viperx", Action: action.MoveRobot, Target: t})
		}
		out = append(out, action.Command{Device: "viperx", Action: action.MoveHome})
	}
	return out
}

// Motion runs the benchmark's three configurations over the identical
// command stream and returns one row per mode.
func Motion(o MotionOptions) ([]MotionResult, error) {
	if o.Visits <= 0 {
		o.Visits = 12
	}
	var out []MotionResult
	for _, mode := range []string{MotionModeCold, MotionModeCached, MotionModeSpec} {
		r, err := runMotion(mode, o)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

func runMotion(mode string, o MotionOptions) (*MotionResult, error) {
	opt := Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		WithSim:   true,
		Seed:      o.Seed,
	}
	switch mode {
	case MotionModeCold:
		opt.NoMotionCache = true
	case MotionModeCached:
		opt.NoSpeculation = true
	}
	s, err := NewTestbedSetup(opt)
	if err != nil {
		return nil, fmt.Errorf("eval: motion %s: %w", mode, err)
	}
	defer obs.Unregister(s.Obs)

	cmds := motionScript(o.Visits)
	spec := mode == MotionModeSpec
	start := time.Now()
	for i, cmd := range cmds {
		var err error
		if spec && i+1 < len(cmds) {
			err = s.Interceptor.DoLookahead(cmd, cmds[i+1])
		} else {
			err = s.Interceptor.Do(cmd)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: motion %s: %s: %w", mode, cmd, err)
		}
		if spec {
			// On hardware the arm's travel time dwarfs the lookahead; the
			// unpaced replay grants the worker that window explicitly, so
			// the measured on-path checks see exactly what a paced run
			// would: the verdict already computed.
			s.Engine.WaitSpeculation()
		}
	}
	wall := time.Since(start)
	if a := s.Engine.Stopped(); a != nil {
		return nil, fmt.Errorf("eval: motion %s: unexpected alert: %s", mode, a.Error())
	}

	motion := 0
	for _, cmd := range cmds {
		if cmd.Action.IsRobotMotion() {
			motion++
		}
	}
	return &MotionResult{
		Mode:                mode,
		Commands:            len(cmds),
		MotionCommands:      motion,
		Wall:                wall,
		Validate:            stageLatency(s.Obs, obs.StageValidate),
		Trajectory:          stageLatency(s.Obs, obs.StageTrajectory),
		PlanHits:            s.Obs.Counter(obs.CounterPlanCacheHits).Value(),
		PlanMisses:          s.Obs.Counter(obs.CounterPlanCacheMisses).Value(),
		PlanWarmStarts:      s.Obs.Counter(obs.CounterPlanCacheWarmStarts).Value(),
		VerdictHits:         s.Obs.Counter(obs.CounterVerdictCacheHits).Value(),
		VerdictMisses:       s.Obs.Counter(obs.CounterVerdictCacheMisses).Value(),
		EpochBumps:          s.Obs.Counter(obs.CounterDeckEpochBumps).Value(),
		Speculations:        s.Obs.Counter(obs.CounterSpeculations).Value(),
		SpeculationHits:     s.Obs.Gauge(obs.GaugeSpeculationHits).Value(),
		SpeculationsDropped: s.Obs.Counter(obs.CounterSpeculationsDropped).Value(),
	}, nil
}

// MotionSpeedup returns the no-cache over cache+spec ratio of median
// before-check latency (validate + trajectory p50), or 0 if either row
// is missing.
func MotionSpeedup(rows []MotionResult) float64 {
	var cold, spec time.Duration
	for _, r := range rows {
		switch r.Mode {
		case MotionModeCold:
			cold = r.CheckP50()
		case MotionModeSpec:
			spec = r.CheckP50()
		}
	}
	if cold <= 0 {
		return 0
	}
	if spec < time.Nanosecond {
		spec = time.Nanosecond
	}
	return float64(cold) / float64(spec)
}

// RenderMotion prints the benchmark rows with cache and speculation
// counters alongside the stage latencies.
func RenderMotion(rows []MotionResult) string {
	out := fmt.Sprintf("%-12s %9s %10s %13s %12s %12s %11s %13s %11s\n",
		"Mode", "commands", "wall", "validate p50", "traj p50", "traj p95",
		"plan h/m", "verdict h/m", "spec hits")
	stage := func(d time.Duration, count int64) string {
		if count == 0 {
			return "—"
		}
		return d.String()
	}
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %9d %10s %13s %12s %12s %11s %13s %11d\n",
			r.Mode, r.Commands, r.Wall.Round(time.Millisecond),
			stage(r.Validate.P50, r.Validate.Count),
			stage(r.Trajectory.P50, r.Trajectory.Count),
			stage(r.Trajectory.P95, r.Trajectory.Count),
			fmt.Sprintf("%d/%d", r.PlanHits, r.PlanMisses),
			fmt.Sprintf("%d/%d", r.VerdictHits, r.VerdictMisses),
			r.SpeculationHits)
	}
	return out
}
