package eval

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/workflow"
)

// runBugWithBroadphase replays one injected bug under the fully equipped
// configuration (modified rules + Extended Simulator) with the
// simulator's broadphase — and therefore the deck spatial index — either
// on (the default indexed cold path) or off (the brute-force scan), and
// returns every alert text the run raised.
func runBugWithBroadphase(t *testing.T, b bugs.Bug, broadphase bool) []string {
	t.Helper()
	s, err := NewTestbedSetup(ConfigModifiedSim.options(1))
	if err != nil {
		t.Fatalf("bug %d (%s): %v", b.ID, b.Slug, err)
	}
	defer s.Close()
	s.Simulator.SetBroadphase(broadphase)
	steps := b.Mutate(s.Session)
	_ = workflow.RunSteps(s.Session, steps) // the error is the alert/crash itself
	var out []string
	for _, a := range s.Engine.Alerts() {
		out = append(out, a.Error())
	}
	return out
}

// TestBugStudyIndexEquivalence replays all sixteen injected bugs of the
// Section IV study through the full stack twice — once on the indexed
// cold path, once on the brute-force sweep — and asserts every run
// raises exactly the same alerts, text for text. Together with the
// controlled-scenario equivalence test this pins the acceptance claim:
// the spatial index changes latency, never verdicts.
func TestBugStudyIndexEquivalence(t *testing.T) {
	for _, b := range bugs.Suite() {
		indexed := runBugWithBroadphase(t, b, true)
		brute := runBugWithBroadphase(t, b, false)
		if len(indexed) != len(brute) {
			t.Errorf("bug %d (%s): %d alerts indexed, %d brute", b.ID, b.Slug, len(indexed), len(brute))
			continue
		}
		for i := range indexed {
			if indexed[i] != brute[i] {
				t.Errorf("bug %d (%s) alert %d diverged:\n  indexed: %s\n  brute:   %s",
					b.ID, b.Slug, i, indexed[i], brute[i])
			}
		}
	}
}
