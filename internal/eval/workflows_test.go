package eval

import (
	"strings"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// TestSolubilityWorkflowOnProduction runs the Fig. 1(b) automated
// solubility experiment end-to-end on the Hein production deck under
// RABIT: no alerts, no damage, and a chemically sensible result.
func TestSolubilityWorkflowOnProduction(t *testing.T) {
	for _, withRABIT := range []bool{true, false} {
		o := Options{
			Stage:     env.StageProduction,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexNone},
			WithRABIT: withRABIT,
			Seed:      7,
		}
		s, err := NewProductionSetup(o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workflow.RunSolubility(s.Session, workflow.DefaultSolubilityParams())
		if err != nil {
			t.Fatalf("withRABIT=%v: solubility failed: %v", withRABIT, err)
		}
		if !res.Dissolved {
			t.Errorf("withRABIT=%v: solid did not dissolve (final %.2f after %d iterations)",
				withRABIT, res.FinalFraction, res.Iterations)
		}
		// 8 mg at 2 mg/mL needs 4 mL of solvent.
		if res.SolventML < 3 || res.SolventML > 8 {
			t.Errorf("withRABIT=%v: solvent use %.1f mL implausible (expect ≈4)", withRABIT, res.SolventML)
		}
		if withRABIT {
			if alerts := s.Engine.Alerts(); len(alerts) != 0 {
				t.Errorf("false positives: %v", alerts)
			}
		}
		if evs := s.Env.World().Events(); len(evs) != 0 {
			t.Errorf("withRABIT=%v: damage during solubility run: %v", withRABIT, evs)
		}
	}
}

// TestSolubilityRejectsOverCapacityDose checks that the script's own
// ad-hoc guard (Fig. 1b lines 10–11) still works alongside RABIT.
func TestSolubilityRejectsOverCapacityDose(t *testing.T) {
	s, err := NewProductionSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := workflow.DefaultSolubilityParams()
	p.AmountMg = 15
	if _, err := workflow.RunSolubility(s.Session, p); err == nil {
		t.Fatal("over-capacity dose accepted")
	}
}

// TestBerlinguetteSprayWorkflow runs the Section V-B generalization
// study's workflow on the Berlinguette deck: the four device types cover
// all its equipment, the declaratively-configured custom rule loads, and
// the full spray-coating workflow runs cleanly.
func TestBerlinguetteSprayWorkflow(t *testing.T) {
	o := Options{
		Stage:     env.StageProduction,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      3,
	}
	s, err := NewBerlinguetteSetup(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := workflow.RunSteps(s.Session, workflow.SpraySteps()); err != nil {
		t.Fatalf("spray workflow failed: %v", err)
	}
	if alerts := s.Engine.Alerts(); len(alerts) != 0 {
		t.Errorf("false positives: %v", alerts)
	}
	if evs := s.Env.World().Events(); len(evs) != 0 {
		t.Errorf("damage: %v", evs)
	}
	f, _ := s.Env.World().Fixture("spin_coater")
	if f.Broken {
		t.Error("spin coater damaged")
	}
}

// TestBerlinguetteCustomRuleBlocksEmptySpin checks the lab's declarative
// custom rule: spinning the coater with no film loaded is blocked.
func TestBerlinguetteCustomRuleBlocksEmptySpin(t *testing.T) {
	s, err := NewBerlinguetteSetup(Options{
		Stage:     env.StageProduction,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Session.Device("spin_coater").Start(0)
	if err == nil {
		t.Fatal("empty spin accepted")
	}
	alert, ok := core.AsAlert(err)
	if !ok {
		t.Fatalf("want alert, got %v", err)
	}
	found := false
	for _, v := range alert.Violations {
		if v.Rule.ID == "film-loaded" {
			found = true
		}
	}
	if !found {
		t.Errorf("film-loaded rule not among violations: %v", alert.Error())
	}
}

// TestBerlinguetteDeviceCategorization asserts the Section V-B
// categorization: every Berlinguette device maps into the four types.
func TestBerlinguetteDeviceCategorization(t *testing.T) {
	s, err := NewBerlinguetteSetup(Options{Stage: env.StageProduction, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]rules.DeviceType{
		"ur5e":           rules.TypeRobotArm,
		"n9":             rules.TypeRobotArm,
		"dosing_device":  rules.TypeDosingSystem,
		"solvent_pump":   rules.TypeDosingSystem,
		"decapper":       rules.TypeActionDevice,
		"spin_coater":    rules.TypeActionDevice,
		"spray_hotplate": rules.TypeActionDevice,
		"nozzle_a":       rules.TypeActionDevice,
		"nozzle_b":       rules.TypeActionDevice,
		"precursor_vial": rules.TypeContainer,
		"film_substrate": rules.TypeContainer,
	}
	for id, wantType := range want {
		got, ok := s.Lab.DeviceType(id)
		if !ok || got != wantType {
			t.Errorf("%s: type %v (ok=%v), want %v", id, got, ok, wantType)
		}
	}
}

// TestMalfunctionDetection exercises Fig. 2 lines 13–15: a door whose
// motor is dead acknowledges the open command but never moves; the
// expected-vs-actual comparison raises "Device malfunction!".
func TestMalfunctionDetection(t *testing.T) {
	s, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Env.InjectFault("dosing_device", device.FaultDoorStuck); err != nil {
		t.Fatal(err)
	}
	err = s.Session.Device("dosing_device").SetDoor(true)
	if err == nil {
		t.Fatal("stuck door went unnoticed")
	}
	alert, ok := core.AsAlert(err)
	if !ok {
		t.Fatalf("want alert, got %v", err)
	}
	if alert.Kind != core.AlertMalfunction {
		t.Errorf("alert kind = %v, want malfunction", alert.Kind)
	}
	if len(alert.Mismatches) == 0 ||
		!strings.Contains(alert.Mismatches[0].Key.Variable(), "deviceDoorStatus") {
		t.Errorf("mismatch should name the door status: %v", alert.Mismatches)
	}
	// The experiment is latched stopped.
	if err := s.Session.Arm("viperx").GoHome(); err == nil {
		t.Error("engine should refuse commands after the stop")
	}
}

// TestActionStuckMalfunction covers the second fault class: a device that
// acknowledges start_action but never runs. The dosing device needs no
// container for a (pointless but valid) empty run, so a single command
// exposes the fault.
func TestActionStuckMalfunction(t *testing.T) {
	s, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Env.InjectFault("dosing_device", device.FaultActionStuck); err != nil {
		t.Fatal(err)
	}
	err = s.Session.Device("dosing_device").Start(0)
	if err == nil {
		t.Fatal("stuck action went unnoticed")
	}
	alert, ok := core.AsAlert(err)
	if !ok || alert.Kind != core.AlertMalfunction {
		t.Fatalf("want malfunction alert, got %v", err)
	}
	if len(alert.Mismatches) == 0 ||
		!strings.Contains(alert.Mismatches[0].Key.Variable(), "deviceRunning") {
		t.Errorf("mismatch should name the run state: %v", alert.Mismatches)
	}
}

// TestScreeningWorkflowOnProduction runs the crystallization-screening
// workflow end-to-end on the Hein production deck: the full device roster
// including a *safe* centrifugation (capped vial with solid and liquid,
// rotor aligned) under the Table IV custom rules, with no alerts and no
// damage.
func TestScreeningWorkflowOnProduction(t *testing.T) {
	s, err := NewProductionSetup(Options{
		Stage:     env.StageProduction,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexNone},
		WithRABIT: true,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workflow.RunSteps(s.Session, workflow.ScreeningSteps()); err != nil {
		t.Fatalf("screening workflow failed: %v", err)
	}
	if alerts := s.Engine.Alerts(); len(alerts) != 0 {
		t.Errorf("false positives: %v", alerts)
	}
	if evs := s.Env.World().Events(); len(evs) != 0 {
		t.Errorf("damage: %v", evs)
	}
	w := s.Env.World()
	o, _ := w.Object("vial_1")
	if o.At != "grid_NW" || !o.Capped || o.SolidMg != 6 || o.LiquidML != 3 {
		t.Errorf("vial end state wrong: %+v", o)
	}
	cf, _ := w.Fixture("centrifuge")
	if cf.Broken {
		t.Error("centrifuge damaged by a safe spin")
	}
}

// TestScreeningBlockedWithoutCap: deleting the capping step makes the
// centrifuge load violate custom rule 4 — the screening workflow is a
// live consumer of the Table IV discipline.
func TestScreeningBlockedWithoutCap(t *testing.T) {
	s, err := NewProductionSetup(Options{
		Stage:     env.StageProduction,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexNone},
		WithRABIT: true,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := workflow.DeleteStep(workflow.ScreeningSteps(), "cap")
	err = workflow.RunSteps(s.Session, steps)
	if err == nil {
		t.Fatal("uncapped centrifugation accepted")
	}
	if !strings.Contains(err.Error(), "hein-4") {
		t.Errorf("alert should cite custom rule 4: %v", err)
	}
}

// TestTraceReplayOfflineChecking captures the offline-checking use case:
// a trace recorded on an unprotected deck is replayed under RABIT. The
// safe Fig. 5 trace replays cleanly; a buggy trace is stopped at the
// recorded unsafe command before it can re-execute.
func TestTraceReplayOfflineChecking(t *testing.T) {
	// Record the safe workflow without RABIT.
	rec, err := NewTestbedSetup(Options{Stage: env.StageTestbed, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := workflow.RunSteps(rec.Session, workflow.Fig5Workflow()); err != nil {
		t.Fatal(err)
	}
	safeTrace := rec.Interceptor.Records()

	// Replay under the modified RABIT on a fresh deck: clean.
	chk, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Replay(chk.Interceptor, safeTrace); err != nil {
		t.Fatalf("safe trace replay flagged: %v", err)
	}
	if len(chk.Engine.Alerts()) != 0 {
		t.Errorf("false positives on replay: %v", chk.Engine.Alerts())
	}

	// Record Bug A's trace (the crash truncates it), replay protected:
	// RABIT stops at the recorded door-entry command.
	buggyRec, err := NewTestbedSetup(Options{Stage: env.StageTestbed, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := bugs.ByID(1)
	_ = workflow.RunSteps(buggyRec.Session, b.Mutate(buggyRec.Session))
	buggyTrace := buggyRec.Interceptor.Records()

	chk2, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = trace.Replay(chk2.Interceptor, buggyTrace)
	if err == nil {
		t.Fatal("buggy trace replay should be stopped")
	}
	if !strings.Contains(err.Error(), "general-1") {
		t.Errorf("replay alert should cite rule 1: %v", err)
	}
	if evs := chk2.Env.World().Events(); len(evs) != 0 {
		t.Errorf("replay under RABIT caused damage: %v", evs)
	}
}

// TestFootnoteOneScenario reproduces the paper's footnote 1 on the
// production deck: "there have been instances of the door breaking
// because the programmer forgot to call open_door()" inside
// doseSolid(amount). Deleting the door-open step of the screening
// workflow trips rule 1 before the UR3e touches the glass; unprotected,
// the door breaks exactly as the footnote recounts.
func TestFootnoteOneScenario(t *testing.T) {
	steps := workflow.DeleteStep(workflow.ScreeningSteps(), "open-dd")

	s, err := NewProductionSetup(Options{
		Stage:     env.StageProduction,
		Rules:     rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
		WithRABIT: true,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = workflow.RunSteps(s.Session, steps)
	if err == nil {
		t.Fatal("forgotten open_door accepted")
	}
	if !strings.Contains(err.Error(), "general-1") {
		t.Errorf("alert should cite rule 1: %v", err)
	}
	if evs := s.Env.World().Events(); len(evs) != 0 {
		t.Errorf("protected run still damaged the deck: %v", evs)
	}

	// The unprotected counterfactual: the glass door breaks.
	u, err := NewProductionSetup(Options{Stage: env.StageProduction, WithRABIT: false, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_ = workflow.RunSteps(u.Session, workflow.DeleteStep(workflow.ScreeningSteps(), "open-dd"))
	f, _ := u.Env.World().Fixture("dosing_device")
	if !f.Broken {
		t.Error("the footnote's broken door did not reproduce")
	}
}
