package eval

import (
	"testing"

	"repro/internal/env"
	"repro/internal/rules"
	"repro/internal/workflow"
)

// configsUnderTest enumerates the three engine configurations the paper's
// narrative steps through.
func configsUnderTest() []Options {
	return []Options{
		{Rules: rules.Config{Generation: rules.GenInitial}, WithRABIT: true, Seed: 1},
		{Rules: rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime}, WithRABIT: true, Seed: 1},
		{Rules: rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime}, WithRABIT: true, WithSim: true, Seed: 1},
	}
}

func TestSafeFig5WorkflowProducesNoAlertsAndNoDamage(t *testing.T) {
	for i, o := range configsUnderTest() {
		o.Stage = env.StageTestbed
		s, err := NewTestbedSetup(o)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if err := workflow.RunSteps(s.Session, workflow.Fig5Workflow()); err != nil {
			t.Fatalf("config %d (%s, sim=%v): safe workflow failed: %v",
				i, o.Rules.Generation, o.WithSim, err)
		}
		if alerts := s.Engine.Alerts(); len(alerts) != 0 {
			t.Errorf("config %d: false positives: %v", i, alerts)
		}
		if evs := s.Env.World().Events(); len(evs) != 0 {
			t.Errorf("config %d: physical damage in safe workflow: %v", i, evs)
		}
	}
}

func TestSafeFig5WorkflowWithoutRABIT(t *testing.T) {
	s, err := NewTestbedSetup(Options{Stage: env.StageTestbed, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := workflow.RunSteps(s.Session, workflow.Fig5Workflow()); err != nil {
		t.Fatalf("safe workflow without RABIT failed: %v", err)
	}
	if evs := s.Env.World().Events(); len(evs) != 0 {
		t.Errorf("physical damage: %v", evs)
	}
	// The vial ended up dosed and back in Ned2's gripper.
	o, ok := s.Env.World().Object("vial_1")
	if !ok || o.SolidMg != 5 {
		t.Errorf("vial solid = %v, want 5 mg", o.SolidMg)
	}
	if o.HeldBy != "ned2" {
		t.Errorf("vial held by %q, want ned2", o.HeldBy)
	}
}
