package eval

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
)

// TestAlertTraceEndToEnd is the tracing acceptance criterion: a detected
// bug yields (a) an incident bundle whose manifest names the causal
// trace, (b) a tail-retained OTLP-JSON trace whose spans run from the
// interception root through the simulator verdict with the speculative
// lookahead parented into the hinting command, and (c) a cause-first
// tree rendering of that trace.
func TestAlertTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "traces.otlp.jsonl")
	o := forensicsOptions(dir, "trace-e2e")
	o.TraceFile = traceFile
	s, err := NewTestbedSetup(o)
	if err != nil {
		t.Fatal(err)
	}

	// The footnote-2 speculative-chain replay (see
	// TestSpeculativeChainForensics): the hinted lookahead pre-validates
	// the mid-path centrifuge crossing, and the on-path check later
	// consumes that speculative verdict and raises the alert.
	if err := s.Interceptor.Do(action.Command{Device: "ned2", Action: action.MoveSleep}); err != nil {
		t.Fatal(err)
	}
	via := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.38, 0.30)}
	down := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.38, 0.12)}
	leg := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.02, 0.12)}
	if err := s.Interceptor.Do(via); err != nil {
		t.Fatalf("via move: %v", err)
	}
	if err := s.Interceptor.DoLookahead(down, leg); err != nil {
		t.Fatalf("down move: %v", err)
	}
	s.Engine.WaitSpeculation()
	if err := s.Interceptor.Do(leg); err == nil {
		t.Fatal("mid-path centrifuge crossing accepted")
	}
	if err := s.Close(); err != nil { // drains, finishes the trace, closes the file
		t.Fatalf("close: %v", err)
	}

	incs, err := recorder.LoadIncidents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("%d bundles, want 1", len(incs))
	}
	wantTrace := incs[0].Manifest.TraceID
	if len(wantTrace) != 32 {
		t.Fatalf("manifest trace ID %q", wantTrace)
	}

	tds, err := otrace.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var td *otrace.TraceData
	for _, cand := range tds {
		if cand.ID.String() == wantTrace {
			td = cand
		}
	}
	if td == nil {
		t.Fatalf("manifest trace %s not in exported file (%d traces)", wantTrace, len(tds))
	}
	if !td.Alert {
		t.Fatal("alert trace not flagged as alert")
	}

	find := func(name string) []otrace.SpanData {
		var out []otrace.SpanData
		for _, sd := range td.Spans {
			if sd.Name == name {
				out = append(out, sd)
			}
		}
		return out
	}
	// One interception root per command: park, via, down, leg.
	roots := find(obs.StageIntercept)
	if len(roots) != 4 {
		t.Fatalf("%d intercept roots, want 4", len(roots))
	}
	for _, name := range []string{obs.StageValidate, obs.StageTrajectory, obs.StageExecute,
		obs.StageFetch, obs.StageCompare, "speculate", "kin.plan", "sim.sweep", "sim.verdict"} {
		if len(find(name)) == 0 {
			t.Errorf("trace has no %q span", name)
		}
	}

	// The speculate span is parented into the hinting command's
	// interception root, and the simulator's spans are its children.
	spec := find("speculate")
	if len(spec) != 1 {
		t.Fatalf("%d speculate spans, want 1", len(spec))
	}
	parentIsRoot := false
	for _, r := range roots {
		if r.Span == spec[0].Parent {
			parentIsRoot = true
		}
	}
	if !parentIsRoot {
		t.Error("speculate span not parented to an interception root")
	}
	under := func(sd otrace.SpanData, parent otrace.SpanID) bool { return sd.Parent == parent }
	for _, name := range []string{"kin.plan", "sim.sweep"} {
		found := false
		for _, sd := range find(name) {
			if under(sd, spec[0].Span) {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q span under the speculate span", name)
		}
	}

	// The on-path trajectory check that raised the alert consumed the
	// speculative verdict: its sim.verdict child says so, and the
	// trajectory span carries the alert mark that pinned retention.
	alertSeen := false
	for _, sd := range find(obs.StageTrajectory) {
		if sd.Alert {
			alertSeen = true
			specServed := false
			for _, v := range find("sim.verdict") {
				if under(v, sd.Span) {
					for _, a := range v.Attrs {
						if a.Key == "source" && a.Val == recorder.SourceSpeculative {
							specServed = true
						}
					}
				}
			}
			if !specServed {
				t.Error("alerting trajectory span has no speculative sim.verdict child")
			}
		}
	}
	if !alertSeen {
		t.Error("no trajectory span carries the alert mark")
	}

	out := RenderTraceTree(td)
	if !strings.Contains(out, "ALERT") || !strings.Contains(out, "speculate") {
		t.Errorf("rendered tree missing ALERT/speculate:\n%s", out)
	}
	if rendered, err := RenderTraceFile(traceFile); err != nil || !strings.Contains(rendered, wantTrace) {
		t.Errorf("RenderTraceFile: err=%v, trace ID present=%v", err, strings.Contains(rendered, wantTrace))
	}
}

// TestThroughputWithTracing runs the sharded replay with tracing on —
// under -race this is the tracer's concurrency test across per-script
// interceptors — and checks the run stays alert-free and the tracer's
// telemetry accounts for every script's run trace.
func TestThroughputWithTracing(t *testing.T) {
	res, err := Throughput(ThroughputOptions{Scripts: 8, CommandsPerScript: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 8*24 {
		t.Fatalf("processed %d commands, want %d", res.Commands, 8*24)
	}
}

// BenchmarkTraceOverhead measures the causal tracing layer's cost on the
// paced sharded replay — the deployment configuration CI tracks, with
// the recorder on in both arms so the delta isolates tracing. The
// acceptance bar is ≤ 2% throughput overhead.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(noTracing bool, speedup float64, perScript int) *ThroughputResult {
		res, err := Throughput(ThroughputOptions{
			Scripts:           8,
			CommandsPerScript: perScript,
			Speedup:           speedup,
			NoTracing:         noTracing,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	run(true, 200, 40) // warm up
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off += run(true, 200, 40).CommandsPerSec
		on += run(false, 200, 40).CommandsPerSec
	}
	b.StopTimer()
	if off > 0 {
		b.ReportMetric(100*(off-on)/off, "overhead-%")
	}
	var onCheck, offCheck time.Duration
	const checkPairs = 3
	for i := 0; i < checkPairs; i++ {
		offCheck += run(true, 0, 200).CheckPerCommand
		onCheck += run(false, 0, 200).CheckPerCommand
	}
	b.ReportMetric(float64(onCheck-offCheck)/checkPairs, "check-delta-ns/cmd")
}
