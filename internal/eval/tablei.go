package eval

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bugs"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/workflow"
)

// TableIRow is the measured version of one column of the paper's Table I:
// the stage's capability profile, quantified.
type TableIRow struct {
	Stage env.Stage
	// CommandsPerSecond is the exploration speed: workload commands per
	// second of stage time (wall-clock compute for the simulator,
	// simulated physical time for the physical stages).
	CommandsPerSecond float64
	// PrecisionErrorM is the mean positioning error of the stage's arms
	// across the workload (modelling error + repeatability).
	PrecisionErrorM float64
	// MeasurementErrorAbs is the mean absolute error of solubility
	// readings against ground truth.
	MeasurementErrorAbs float64
	// DamageExposure is the stage-scaled cost of running the unsafe bug
	// suite unprotected — "risk of damage".
	DamageExposure float64
}

// Grade buckets a measured value into the paper's High/Medium/Low scale
// given the three stages' values (rank order defines the grade).
func gradeOf(v float64, all [3]float64, higherIsMore bool) string {
	rank := 0
	for _, o := range all {
		if (higherIsMore && v > o) || (!higherIsMore && v < o) {
			rank++
		}
	}
	switch rank {
	case 2:
		return "High"
	case 1:
		return "Medium"
	default:
		return "Low"
	}
}

// TableI runs the Table I measurement: a fixed safe workload on each
// stage (speed, precision, accuracy) plus the unprotected bug suite
// (damage exposure).
func TableI(seed int64) ([]TableIRow, error) {
	stages := []env.Stage{env.StageSimulator, env.StageTestbed, env.StageProduction}
	rows := make([]TableIRow, 0, 3)
	for _, stage := range stages {
		row, err := measureStage(stage, seed)
		if err != nil {
			return nil, fmt.Errorf("eval: table I, %v: %w", stage, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// stageSetup builds the deck each stage actually consists of: the
// simulator mirrors the production deck virtually; the testbed is the
// low-fidelity two-arm deck; production is the real UR3e deck.
func stageSetup(stage env.Stage, seed int64) (*Setup, error) {
	o := Options{Stage: stage, WithRABIT: false, Seed: seed}
	if stage == env.StageTestbed {
		return NewTestbedSetup(o)
	}
	return NewProductionSetup(o)
}

// stageWorkload runs the stage's representative experiment: the automated
// solubility run on the (virtual or real) production deck, the Fig. 5
// workflow on the testbed.
func stageWorkload(stage env.Stage, s *Setup) error {
	if stage == env.StageTestbed {
		return workflow.RunSteps(s.Session, workflow.Fig5Workflow())
	}
	_, err := workflow.RunSolubility(s.Session, workflow.DefaultSolubilityParams())
	return err
}

// measureStage gathers one stage's Table I numbers.
func measureStage(stage env.Stage, seed int64) (TableIRow, error) {
	row := TableIRow{Stage: stage}

	s, err := stageSetup(stage, seed)
	if err != nil {
		return row, err
	}
	wallStart := time.Now()
	if err := stageWorkload(stage, s); err != nil {
		return row, fmt.Errorf("safe workload failed: %w", err)
	}
	wall := time.Since(wallStart)
	commands := len(s.Interceptor.Records())

	var stageSeconds float64
	if stage == env.StageSimulator {
		// The simulator has no physical time: exploration runs at
		// compute speed.
		stageSeconds = wall.Seconds()
	} else {
		stageSeconds = s.Env.Now().Seconds()
	}
	if stageSeconds > 0 {
		row.CommandsPerSecond = float64(commands) / stageSeconds
	}

	// Precision: on a fresh deck, command probe points over open deck
	// space and measure the achieved TCP error (stage model error + arm
	// repeatability + planner tolerance).
	probe, err := stageSetup(stage, seed+11)
	if err != nil {
		return row, err
	}
	probePoints := []geom.Vec3{
		{X: 0.25, Y: 0.05, Z: 0.30}, {X: 0.30, Y: -0.05, Z: 0.25},
		{X: 0.35, Y: 0.05, Z: 0.28}, {X: 0.28, Y: 0.10, Z: 0.32},
	}
	var errSum float64
	var errN int
	armID := probe.Lab.ArmIDs()[0]
	arm, _ := probe.Env.World().Arm(armID)
	for _, p := range probePoints {
		if err := probe.Session.Arm(armID).MovePose(p); err != nil {
			return row, fmt.Errorf("precision probe %v: %w", p, err)
		}
		errSum += arm.Precision()
		errN++
	}
	if errN > 0 {
		row.PrecisionErrorM = errSum / float64(errN)
	}
	// The simulator's low modelling fidelity floors its error at the
	// configured model error even though its virtual arm is noiseless.
	if stage == env.StageSimulator && row.PrecisionErrorM < probe.Env.Params().ModelError {
		row.PrecisionErrorM = probe.Env.Params().ModelError
	}

	// Accuracy: repeated solubility measurements of the pre-loaded vial
	// (partially dissolved: truth is fractional) vs ground truth.
	truth, err := probe.Env.World().MeasureSolubility("vial_3")
	if err != nil {
		return row, err
	}
	var devSum float64
	const n = 40
	for i := 0; i < n; i++ {
		m, err := probe.Env.MeasureSolubility("vial_3")
		if err != nil {
			return row, err
		}
		devSum += math.Abs(m - truth)
	}
	row.MeasurementErrorAbs = devSum / n

	// Damage exposure: the unprotected bug suite's scaled damage cost.
	row.DamageExposure = unprotectedExposure(stage, seed)
	return row, nil
}

// unprotectedExposure replays a damaging subset of the bug suite with no
// RABIT attached and totals the stage-scaled damage.
func unprotectedExposure(stage env.Stage, seed int64) float64 {
	var total float64
	for _, id := range []int{1, 5, 7, 13} { // door smash, overheat, arm-arm, glassware
		s, err := NewTestbedSetup(Options{Stage: stage, WithRABIT: false, Seed: seed})
		if err != nil {
			continue
		}
		b, ok := bugs.ByID(id)
		if !ok {
			continue
		}
		steps := b.Mutate(s.Session)
		_ = workflow.RunSteps(s.Session, steps)
		total += s.Env.DamageCost()
	}
	return total
}

// RenderTableI prints the measured Table I in the paper's shape, with the
// measured values alongside the High/Medium/Low grades.
func RenderTableI(rows []TableIRow) string {
	var speed, prec, acc, risk [3]float64
	for i, r := range rows {
		speed[i] = r.CommandsPerSecond
		prec[i] = r.PrecisionErrorM
		acc[i] = r.MeasurementErrorAbs
		risk[i] = r.DamageExposure
	}
	out := fmt.Sprintf("%-34s %-22s %-22s %-22s\n", "Capabilities",
		rows[0].Stage, rows[1].Stage, rows[2].Stage)
	line := func(label string, vals [3]float64, higherIsMore bool, unit string, mul float64) string {
		s := fmt.Sprintf("%-34s", label)
		for _, v := range vals {
			s += fmt.Sprintf(" %-22s", fmt.Sprintf("%s (%.3g%s)", gradeOf(v, vals, higherIsMore), v*mul, unit))
		}
		return s + "\n"
	}
	out += line("Speed of exploration / testing", speed, true, " cmd/s", 1)
	// Precision/quality and accuracy: lower error = higher grade.
	out += line("Device precision and quality", prec, false, " mm err", 1000)
	out += line("Accuracy of results", acc, false, " abs err", 1)
	out += line("Risk of damage", risk, true, " $", 1)
	return out
}
