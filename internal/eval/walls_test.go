package eval

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

// TestWallStrikeBlockedAndGroundTruth covers Table V's "robot arm making
// holes in a wall" hazard class: a raw move whose target sits beyond the
// lab wall is blocked by the target check; unprotected, the arm punches
// the wall (a Medium-High event).
func TestWallStrikeBlockedAndGroundTruth(t *testing.T) {
	// Protected: blocked before execution.
	s, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	// Hover near the wall, then push through: the target sits just past
	// the back wall at y=0.62, still inside the ViperX's reach.
	hover := geom.V(0.35, 0.52, 0.35)
	target := geom.V(0.35, 0.64, 0.30)
	if err := s.Session.Arm("viperx").MovePose(hover); err != nil {
		t.Fatal(err)
	}
	err = s.Session.Arm("viperx").MovePose(target)
	if err == nil {
		t.Fatal("wall-piercing move accepted")
	}
	if !strings.Contains(err.Error(), "wall") {
		t.Errorf("alert should mention the wall: %v", err)
	}

	// Unprotected ground truth.
	u, err := NewTestbedSetup(Options{Stage: s.Opt.Stage, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Session.Arm("viperx").MovePose(hover); err != nil {
		t.Fatal(err)
	}
	_ = u.Session.Arm("viperx").MovePose(target)
	evs := u.Env.World().Events()
	if len(evs) == 0 {
		t.Fatal("unprotected wall strike left no trace")
	}
	found := false
	for _, ev := range evs {
		if ev.Severity == world.SeverityMediumHigh && strings.Contains(ev.Description, "wall") {
			found = true
		}
	}
	if !found {
		t.Errorf("want a Medium-High wall event, got %v", evs)
	}
}

// TestWallHeldObjectCheck verifies the wall check has no false positives
// for legitimate near-wall work.
func TestWallHeldObjectCheck(t *testing.T) {
	s, err := NewTestbedSetup(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	// Verify a safe near-wall move passes (no false positive at ~5 cm
	// clearance), away from the dosing device's footprint.
	if err := s.Session.Arm("viperx").MovePose(geom.V(0.45, 0.57, 0.30)); err != nil {
		t.Fatalf("near-wall move should pass: %v", err)
	}
}
