package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	rabit "repro"
	"repro/internal/gateway"
)

// GatewayThroughputOptions configures the gateway deployment of the
// replay-throughput benchmark: the same synthetic hotplate fleets and
// command cycles as Throughput, but issued over the gateway's HTTP API
// against a pool of lab tenants — measuring the full service path
// (session admission, JSON decode, engine checks, NDJSON verdict
// streaming) instead of in-process interceptor calls.
type GatewayThroughputOptions struct {
	// Labs is the number of lab tenants in the gateway's engine pool.
	Labs int
	// Scripts is the total number of concurrent experiment scripts,
	// spread round-robin across the lab tenants (one session each).
	Scripts int
	// CommandsPerScript, Speedup, NoRecorder, NoTracing, Seed are as in
	// ThroughputOptions.
	CommandsPerScript int
	Speedup           float64
	NoRecorder        bool
	NoTracing         bool
	Seed              int64
}

// GatewayThroughput boots an in-process gateway, attaches one session
// per script across Labs tenants, replays every script's command cycle
// as one streamed batch, and measures aggregate commands/sec end to
// end over HTTP.
func GatewayThroughput(o GatewayThroughputOptions) (*ThroughputResult, error) {
	if o.Labs <= 0 {
		o.Labs = 4
	}
	if o.Scripts < o.Labs {
		o.Scripts = o.Labs
	}
	if o.CommandsPerScript <= 0 {
		o.CommandsPerScript = 40
	}
	perLab := (o.Scripts + o.Labs - 1) / o.Labs

	var mu sync.Mutex
	systems := map[string]*rabit.System{}
	gw := gateway.New(gateway.Options{
		System: rabit.Options{
			NoRecorder: o.NoRecorder,
			NoTracing:  o.NoTracing,
			Seed:       o.Seed,
		},
		// The benchmark measures checking throughput, not backpressure:
		// size the admission queue so every script on a lab can be in
		// flight at once.
		QueueDepth: perLab,
		MaxTenants: o.Labs,
		ConfigureSystem: func(lab string, sys *rabit.System) {
			if o.Speedup > 0 {
				sys.Env.SetPacing(o.Speedup)
			}
			mu.Lock()
			systems[lab] = sys
			mu.Unlock()
		},
	})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	// One session per script: script g lives on lab g%Labs and owns
	// device hp(g/Labs) of that lab's fleet.
	type scriptRun struct {
		session string
		device  string
	}
	runs := make([]scriptRun, o.Scripts)
	for g := 0; g < o.Scripts; g++ {
		lab := g % o.Labs
		spec := throughputSpec(perLab)
		spec.Lab = fmt.Sprintf("throughput-%02d", lab)
		rawSpec, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("eval: gateway throughput: %w", err)
		}
		info, err := postJSON[gateway.SessionInfo](srv.URL+"/v1/sessions",
			gateway.CreateSessionRequest{Spec: rawSpec}, http.StatusCreated)
		if err != nil {
			return nil, fmt.Errorf("eval: gateway throughput: create session: %w", err)
		}
		runs[g] = scriptRun{
			session: info.SessionID,
			device:  fmt.Sprintf("hp%02d", g/o.Labs),
		}
	}

	errs := make([]error, o.Scripts)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Scripts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			script := throughputScript(runs[g].device, o.CommandsPerScript)
			n, err := streamCommands(srv.URL, runs[g].session, gateway.CommandBatch{Commands: script})
			if err != nil {
				errs[g] = fmt.Errorf("script %d: %w", g, err)
				return
			}
			if n != len(script) {
				errs[g] = fmt.Errorf("script %d: %d of %d verdicts streamed", g, n, len(script))
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: gateway throughput: %w", err)
		}
	}

	var check time.Duration
	var commands int
	for _, sys := range systems {
		if sys.Engine == nil {
			continue
		}
		c, n := sys.Engine.CheckOverhead()
		check += c
		commands += n
		if a := sys.Engine.Stopped(); a != nil {
			return nil, fmt.Errorf("eval: gateway throughput: unexpected alert: %s", a.Error())
		}
	}
	res := &ThroughputResult{
		Mode:     "gateway",
		Labs:     o.Labs,
		Scripts:  o.Scripts,
		Commands: commands,
		Wall:     wall,
	}
	if wall > 0 {
		res.CommandsPerSec = float64(commands) / wall.Seconds()
	}
	if commands > 0 {
		res.CheckPerCommand = check / time.Duration(commands)
	}
	return res, nil
}

// postJSON posts a JSON body and decodes a JSON response of type T,
// insisting on the given status.
func postJSON[T any](url string, body any, wantStatus int) (*T, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var eb gateway.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// streamCommands posts one command batch and consumes the NDJSON
// verdict stream, returning how many ok verdicts arrived. Any non-ok
// verdict is an error.
func streamCommands(baseURL, session string, batch gateway.CommandBatch) (int, error) {
	raw, err := json.Marshal(batch)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(baseURL+"/v1/sessions/"+session+"/commands",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb gateway.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var res gateway.CommandResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			return n, fmt.Errorf("verdict line %d: %w", n+1, err)
		}
		if res.Outcome != gateway.OutcomeOK {
			return n, fmt.Errorf("command %s: %s: %s", res.Cmd, res.Outcome, res.Detail)
		}
		n++
	}
	return n, sc.Err()
}
