package eval

import (
	"strings"
	"testing"

	"repro/internal/env"
)

// TestTableIShape reproduces the qualitative shape of the paper's
// Table I: the simulator explores fastest with the lowest fidelity and
// zero damage exposure; production is slowest, most precise, most
// accurate, and most expensive to damage; the testbed sits in between.
func TestTableIShape(t *testing.T) {
	rows, err := TableI(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 stages, got %d", len(rows))
	}
	sim, tb, prod := rows[0], rows[1], rows[2]
	if sim.Stage != env.StageSimulator || prod.Stage != env.StageProduction {
		t.Fatal("stage order wrong")
	}

	// Speed: Simulator > Testbed > Production.
	if !(sim.CommandsPerSecond > tb.CommandsPerSecond && tb.CommandsPerSecond > prod.CommandsPerSecond) {
		t.Errorf("speed ordering wrong: sim=%.2f tb=%.2f prod=%.2f",
			sim.CommandsPerSecond, tb.CommandsPerSecond, prod.CommandsPerSecond)
	}
	// Precision error: Simulator > Testbed > Production (production UR3e
	// repeatability is tens of micrometres).
	if !(sim.PrecisionErrorM > tb.PrecisionErrorM && tb.PrecisionErrorM > prod.PrecisionErrorM) {
		t.Errorf("precision ordering wrong: sim=%.4f tb=%.4f prod=%.4f",
			sim.PrecisionErrorM, tb.PrecisionErrorM, prod.PrecisionErrorM)
	}
	// Accuracy error: Simulator > Testbed > Production.
	if !(sim.MeasurementErrorAbs > tb.MeasurementErrorAbs && tb.MeasurementErrorAbs > prod.MeasurementErrorAbs) {
		t.Errorf("accuracy ordering wrong: sim=%.4f tb=%.4f prod=%.4f",
			sim.MeasurementErrorAbs, tb.MeasurementErrorAbs, prod.MeasurementErrorAbs)
	}
	// Damage exposure: Simulator (0) < Testbed < Production.
	if !(sim.DamageExposure < tb.DamageExposure && tb.DamageExposure < prod.DamageExposure) {
		t.Errorf("risk ordering wrong: sim=%.2f tb=%.2f prod=%.2f",
			sim.DamageExposure, tb.DamageExposure, prod.DamageExposure)
	}
	if sim.DamageExposure != 0 {
		t.Errorf("simulated crashes must cost nothing, got %v", sim.DamageExposure)
	}

	// The rendered table grades match the paper's qualitative rows.
	rendered := RenderTableI(rows)
	for _, want := range []string{"Speed of exploration", "Risk of damage", "High", "Medium", "Low"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered table missing %q:\n%s", want, rendered)
		}
	}
}
