package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/obs/recorder"
	"repro/internal/rules"
	"repro/internal/trace"
)

// forensicsOptions is the fully equipped testbed configuration with the
// flight recorder writing bundles to dir.
func forensicsOptions(dir, tag string) Options {
	return Options{
		Stage:       env.StageTestbed,
		Rules:       rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT:   true,
		WithSim:     true,
		IncidentDir: dir,
		IncidentTag: tag,
		Seed:        1,
	}
}

// TestSpeculativeChainForensics drives the exact scenario the causal
// chain exists for: a command is hinted, the lookahead worker
// pre-validates it, and the on-path check later consumes the cached
// verdict and raises an alert. The bundle must link alert → speculation
// → hinting command.
func TestSpeculativeChainForensics(t *testing.T) {
	dir := t.TempDir()
	s, err := NewTestbedSetup(forensicsOptions(dir, "spec-chain"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Time multiplexing: park ned2 so viperx may move.
	if err := s.Interceptor.Do(action.Command{Device: "ned2", Action: action.MoveSleep}); err != nil {
		t.Fatal(err)
	}
	// The footnote-2 replay: park low south of the centrifuge, then ask
	// for the leg across it. Every endpoint satisfies the rules; only the
	// trajectory sweep — here pre-run by the hinted lookahead — can see
	// the mid-path collision.
	via := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.38, 0.30)}
	down := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.38, 0.12)}
	leg := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.63, -0.02, 0.12)}
	if err := s.Interceptor.Do(via); err != nil {
		t.Fatalf("via move: %v", err)
	}
	if err := s.Interceptor.DoLookahead(down, leg); err != nil {
		t.Fatalf("down move: %v", err)
	}
	s.Engine.WaitSpeculation()
	if err := s.Interceptor.Do(leg); err == nil {
		t.Fatal("mid-path centrifuge crossing accepted")
	}

	incs, err := recorder.LoadIncidents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("%d bundles, want exactly 1", len(incs))
	}
	in := incs[0]
	if in.Manifest.AlertKind != "invalid_trajectory" {
		t.Fatalf("alert kind %q", in.Manifest.AlertKind)
	}
	if len(in.Manifest.Chain) != 3 {
		t.Fatalf("chain %v, want trigger → speculation → hinting command", in.Manifest.Chain)
	}
	trig, ok := in.Trigger()
	if !ok {
		t.Fatal("trigger not in bundle")
	}
	if trig.Verdict.Source != recorder.SourceSpeculative {
		t.Fatalf("trigger verdict source %q, want %q (cache served the pre-validated verdict)",
			trig.Verdict.Source, recorder.SourceSpeculative)
	}
	if trig.Verdict.SpecCorr != in.Manifest.Chain[1] {
		t.Fatalf("trigger SpecCorr %q != chain speculation %q", trig.Verdict.SpecCorr, in.Manifest.Chain[1])
	}
	spec, ok := in.Record(in.Manifest.Chain[1])
	if !ok || spec.Kind != recorder.KindSpeculation {
		t.Fatalf("chain[1] not a resolvable speculation record: %+v", spec)
	}
	if spec.Parent != in.Manifest.Chain[2] {
		t.Fatalf("speculation parent %q != chain[2] %q", spec.Parent, in.Manifest.Chain[2])
	}
	parent, ok := in.Record(in.Manifest.Chain[2])
	if !ok || parent.Kind != recorder.KindCommand {
		t.Fatal("chain[2] not a resolvable command record")
	}
	if parent.Device != "viperx" || parent.Action != string(action.MoveRobot) {
		t.Fatalf("chain[2] is not the hinting move: %+v", parent)
	}
	if len(trig.Rules) == 0 {
		t.Error("trigger carries no evaluated rule IDs")
	}
	// Satellite: the bundle's manifest names the alert's causal trace and
	// every record captured in the bundle — the speculation and the hinting
	// command included — belongs to that same trace.
	if len(in.Manifest.TraceID) != 32 {
		t.Errorf("manifest trace ID %q, want 32 hex chars", in.Manifest.TraceID)
	}
	for _, rec := range in.Records {
		if rec.Trace != in.Manifest.TraceID {
			t.Errorf("record %s trace %q != manifest trace %q", rec.Corr, rec.Trace, in.Manifest.TraceID)
		}
	}
	if len(trig.Pre) == 0 {
		t.Error("trigger carries no pre-state view")
	}
	if trig.AlertTNS == 0 {
		t.Error("trigger carries no alert timestamp")
	}
	rep := BuildIncidentReport(incs)
	if rep.SpeculationServed != 1 {
		t.Errorf("report speculation-served = %d, want 1", rep.SpeculationServed)
	}
	// The rendering paths must hold together on a real bundle.
	if out := RenderIncidentTimeline(in); out == "" {
		t.Error("empty timeline")
	}
	if out := RenderIncidentReport(rep); out == "" {
		t.Error("empty report")
	}
}

// TestBugStudyIncidentForensics replays the full Table V bug suite with
// the recorder writing bundles and demands the acceptance property: one
// bundle per bug the fully equipped configuration detects, each carrying
// the triggering rule IDs, captured state views, verdict provenance, and
// a resolvable correlation chain.
func TestBugStudyIncidentForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("full bug study")
	}
	dir := t.TempDir()
	study, err := RunBugStudyWithIncidents(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	incs, err := recorder.LoadIncidents(dir)
	if err != nil {
		t.Fatal(err)
	}
	byTag := map[string][]*recorder.Incident{}
	for _, in := range incs {
		byTag[in.Manifest.Tag] = append(byTag[in.Manifest.Tag], in)
	}
	for _, o := range study.Outcomes {
		got := byTag[o.Bug.Slug]
		if !o.Detected[ConfigModifiedSim] {
			if len(got) != 0 {
				t.Errorf("bug %s: undetected but %d bundles written", o.Bug.Slug, len(got))
			}
			continue
		}
		if len(got) != 1 {
			t.Errorf("bug %s: detected but %d bundles, want exactly 1", o.Bug.Slug, len(got))
			continue
		}
		in := got[0]
		if in.Manifest.AlertKind == "" {
			t.Errorf("bug %s: bundle has no alert kind", o.Bug.Slug)
		}
		if len(in.Manifest.RuleIDs) == 0 {
			t.Errorf("bug %s: bundle names no rule IDs", o.Bug.Slug)
		}
		trig, ok := in.Trigger()
		if !ok {
			t.Errorf("bug %s: trigger unresolvable", o.Bug.Slug)
			continue
		}
		if len(trig.Pre) == 0 && len(trig.Observed) == 0 {
			t.Errorf("bug %s: trigger carries no state views", o.Bug.Slug)
		}
		for _, corr := range in.Manifest.Chain {
			if _, ok := in.Record(corr); !ok {
				t.Errorf("bug %s: chain entry %s not in records.jsonl", o.Bug.Slug, corr)
			}
		}
		if in.Manifest.TraceID == "" {
			t.Errorf("bug %s: manifest carries no trace ID", o.Bug.Slug)
		}
		for _, rec := range in.Records {
			if rec.Trace != in.Manifest.TraceID {
				t.Errorf("bug %s: record %s trace %q != manifest trace %q",
					o.Bug.Slug, rec.Corr, rec.Trace, in.Manifest.TraceID)
			}
		}
	}
	// Bundle count == detections: no spurious extra incidents anywhere.
	if want := study.DetectedCount(ConfigModifiedSim); len(incs) != want {
		t.Errorf("%d bundles for %d detections", len(incs), want)
	}
}

// TestShardedRecorderRace floods the sharded pipeline from concurrent
// scripts with the recorder enabled, one of which issues an unsafe
// setpoint mid-stream; the alert must yield exactly one bundle with a
// resolvable chain. Run under -race (CI does) this is also the recorder's
// data-race test.
func TestShardedRecorderRace(t *testing.T) {
	const scripts = 8
	dir := t.TempDir()
	s, err := NewSetup(throughputSpec(scripts), Options{
		Stage:       env.StageTestbed,
		Rules:       rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT:   true,
		IncidentDir: dir,
		IncidentTag: "race",
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < scripts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ic := trace.NewInterceptor(s.Engine, s.Env)
			ic.SetRecorder(s.Recorder)
			ic.SetTracer(s.Tracer)
			device := fmt.Sprintf("hp%02d", g)
			for _, cmd := range throughputScript(device, 40) {
				if g == 3 && cmd.Seq == 0 && cmd.Action == action.SetActionValue && cmd.Value > 100 {
					cmd.Value = 1000 // beyond MaxSafeValue: invalid command
				}
				if err := ic.Do(cmd); err != nil {
					return // the alert (or the stopped engine) ends the script
				}
			}
		}(g)
	}
	wg.Wait()

	alerts := s.Engine.Alerts()
	if len(alerts) == 0 {
		t.Fatal("unsafe setpoint raised no alert")
	}
	if err := s.Recorder.Err(); err != nil {
		t.Fatalf("bundle write: %v", err)
	}
	incs, err := recorder.LoadIncidents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != len(alerts) {
		t.Fatalf("%d bundles for %d alerts, want exactly one each", len(incs), len(alerts))
	}
	for _, in := range incs {
		if len(in.Manifest.Chain) == 0 {
			t.Fatal("bundle has no chain")
		}
		for _, corr := range in.Manifest.Chain {
			if _, ok := in.Record(corr); !ok {
				t.Fatalf("chain entry %s not in records.jsonl", corr)
			}
		}
		trig, ok := in.Trigger()
		if !ok {
			t.Fatal("trigger unresolvable")
		}
		if trig.Path != recorder.PathSharded {
			t.Errorf("trigger path %q, want sharded", trig.Path)
		}
		if len(trig.Violations) == 0 {
			t.Error("trigger names no violated rules")
		}
	}
}

// randomInterleaving merges per-device command streams into one randomized
// sequential order, preserving each device's internal order — the shape of
// interleavings the sharded pipeline admits.
func randomInterleaving(rng *rand.Rand, scripts, perScript int) []action.Command {
	streams := make([][]action.Command, scripts)
	for g := range streams {
		streams[g] = throughputScript(fmt.Sprintf("hp%02d", g), perScript)
	}
	var out []action.Command
	for {
		live := 0
		for _, st := range streams {
			if len(st) > 0 {
				live++
			}
		}
		if live == 0 {
			return out
		}
		k := rng.Intn(live)
		for g, st := range streams {
			if len(st) == 0 {
				continue
			}
			if k == 0 {
				out = append(out, st[0])
				streams[g] = st[1:]
				break
			}
			k--
		}
	}
}

// replayVerdict replays one command sequence and reduces the run to a
// comparable verdict: per-command outcomes plus the alert signature.
func replayVerdict(t *testing.T, cmds []action.Command, unsafeAt int, noRecorder bool) []string {
	t.Helper()
	s, err := NewSetup(throughputSpec(8), Options{
		Stage:      env.StageTestbed,
		Rules:      rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT:  true,
		NoRecorder: noRecorder,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var verdict []string
	for i, cmd := range cmds {
		if i == unsafeAt && cmd.Action == action.SetActionValue {
			cmd.Value = 999
		}
		err := s.Interceptor.Do(cmd)
		verdict = append(verdict, fmt.Sprintf("%s err=%v", cmd, err != nil))
	}
	return append(verdict, alertSignature(s.Engine.Alerts())...)
}

// TestRecorderObserverEffect is the recorder-on/off property test: over
// randomized replay interleavings (including one that trips an alert),
// the recorder must never change an outcome, a verdict, or an alert —
// it is an observer, not an actor.
func TestRecorderObserverEffect(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cmds := randomInterleaving(rng, 8, 12)
			unsafeAt := -1
			if seed%2 == 1 { // odd seeds inject one unsafe setpoint
				unsafeAt = rng.Intn(len(cmds))
			}
			on := replayVerdict(t, cmds, unsafeAt, false)
			off := replayVerdict(t, cmds, unsafeAt, true)
			if !reflect.DeepEqual(on, off) {
				t.Errorf("recorder changed the run:\non:  %v\noff: %v", on, off)
			}
		})
	}
}

// BenchmarkRecorderOverhead measures the flight recorder's cost on the
// sharded replay-throughput benchmark in the deployment configuration
// CI tracks (paced replay, Speedup 200): paired runs with the recorder
// on and off. The acceptance bar is < 2% throughput overhead there. The
// unpaced per-command check-cost delta — the recorder's raw cost with
// no device time to hide in — is reported alongside as a stress metric.
func BenchmarkRecorderOverhead(b *testing.B) {
	run := func(noRecorder bool, speedup float64, perScript int) *ThroughputResult {
		res, err := Throughput(ThroughputOptions{
			Scripts:           8,
			CommandsPerScript: perScript,
			Speedup:           speedup,
			NoRecorder:        noRecorder,
			Seed:              1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	run(true, 200, 40) // warm up
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off += run(true, 200, 40).CommandsPerSec
		on += run(false, 200, 40).CommandsPerSec
	}
	b.StopTimer()
	if off > 0 {
		b.ReportMetric(100*(off-on)/off, "overhead-%")
	}
	var onCheck, offCheck time.Duration
	const checkPairs = 3
	for i := 0; i < checkPairs; i++ {
		offCheck += run(true, 0, 200).CheckPerCommand
		onCheck += run(false, 0, 200).CheckPerCommand
	}
	b.ReportMetric(float64(onCheck-offCheck)/checkPairs, "check-delta-ns/cmd")
}
