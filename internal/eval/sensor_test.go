package eval

import (
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/labs"
	"repro/internal/rules"
)

// sensorSpec extends the testbed with a presence sensor watching the
// shared deck zone and a declarative rule forbidding arm motion while a
// person stands in it — the Section V-B extension ("by incorporating
// sensors, which could be treated as a new device class, one could
// imagine enhancing RABIT to respond to sensor inputs").
func sensorSpec() *config.LabSpec { return testbedSpecWithSensor() }

func testbedSpecWithSensor() *config.LabSpec {
	spec := labs.TestbedSpec()
	spec.Devices = append(spec.Devices, config.DeviceSpec{
		ID: "deck_sensor", Type: "sensor", Kind: "presence", ClassName: "CardboardMockup",
		Cuboid: config.BoxSpec{
			Min: config.Vec{X: 0.0, Y: -0.6, Z: 0},
			Max: config.Vec{X: 0.9, Y: 0.6, Z: 0.6},
		},
	})
	spec.Rules = append(spec.Rules, config.CustomRuleSpec{
		ID:          "human-clear",
		Description: "Robot arms may only move while the monitored zone is clear of people",
		Number:      9,
		AppliesTo:   []string{"move_robot", "move_robot_inside"},
		Devices:     []string{"viperx", "ned2"},
		Requires: []config.RequirementSpec{
			{Var: "zoneOccupied", Arg: "deck_sensor", Equals: false},
		},
	})
	return spec
}

// TestSensorDeviceClassBlocksMotion exercises the full loop: the sensor's
// reading enters RABIT's model through FetchState, and the JSON-declared
// rule halts arm motion the moment a person is seen in the zone.
func TestSensorDeviceClassBlocksMotion(t *testing.T) {
	s, err := NewSetup(sensorSpec(), Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sensor is categorized as the new device class.
	if ty, ok := s.Lab.DeviceType("deck_sensor"); !ok || ty != rules.TypeSensor {
		t.Fatalf("deck_sensor type = %v, %v", ty, ok)
	}

	// Zone clear: the arm moves freely.
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		t.Fatalf("clear-zone move blocked: %v", err)
	}

	// A person walks into the zone; the next status refresh makes RABIT
	// see it, and motion is blocked before execution.
	f, _ := s.Env.World().Fixture("deck_sensor")
	f.Occupied = true
	if err := s.Interceptor.Do(action.Command{Device: "deck_sensor", Action: action.ReadStatus}); err != nil {
		t.Fatal(err)
	}
	err = s.Session.Arm("viperx").GoToLocation("grid_NE_safe")
	if err == nil {
		t.Fatal("motion allowed with a person in the zone")
	}
	if !strings.Contains(err.Error(), "human-clear") {
		t.Errorf("alert should cite the sensor rule: %v", err)
	}

	// The person leaves; restarting the stopped experiment re-acquires
	// the state and motion resumes.
	f.Occupied = false
	s.Engine.Start()
	if err := s.Session.Arm("viperx").GoToLocation("grid_NE_safe"); err != nil {
		t.Fatalf("clear-zone move still blocked: %v", err)
	}
}

// TestFrozenSensorIsWhyLabsDistrustThem reproduces the Berlinguette
// Lab's complaint (Section V-B): a malfunctioning sensor silently reports
// "clear", so the rule passes while a person stands in the zone — the
// false-negative failure mode that made them remove their sensors.
func TestFrozenSensorIsWhyLabsDistrustThem(t *testing.T) {
	s, err := NewSetup(sensorSpec(), Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Env.InjectFault("deck_sensor", device.FaultActionStuck); err != nil {
		t.Fatal(err)
	}
	f, _ := s.Env.World().Fixture("deck_sensor")
	f.Occupied = true
	s.Engine.Start() // fresh acquisition reads the frozen sensor
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		t.Fatalf("the frozen sensor should let the move through (that is the hazard): %v", err)
	}
}
