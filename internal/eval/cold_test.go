package eval

import (
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/labs"
	"repro/internal/state"
)

// TestMotionCold smoke-runs the cold benchmark at reduced scale and pins
// its equivalence obligations: every mode must produce the identical
// accept count on the identical streams (the verdicts are pinned
// string-for-string by the sim property tests; the benchmark re-checks
// the aggregate so a wiring bug here cannot silently compare different
// workloads), the indexed mode must actually exercise the index, and the
// plan cache must be warm.
func TestMotionCold(t *testing.T) {
	rows, err := MotionCold(ColdOptions{Checks: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	accepts := map[string]int{}
	for _, r := range rows {
		if r.Checks != 80 {
			t.Errorf("%s/%s: want 80 checks, got %d", r.Mode, r.Context, r.Checks)
		}
		if prev, ok := accepts[r.Context]; ok && prev != r.Accepts {
			t.Errorf("%s/%s: accepts %d diverges from %d on the same stream",
				r.Mode, r.Context, r.Accepts, prev)
		}
		accepts[r.Context] = r.Accepts
		if r.PlanHits == 0 {
			t.Errorf("%s/%s: plan cache never hit — warmup broken", r.Mode, r.Context)
		}
		switch r.Mode {
		case ColdModeIndexed:
			if r.Candidates == 0 {
				t.Errorf("%s/%s: index returned no candidates", r.Mode, r.Context)
			}
			if r.Rebuilds < 1 {
				t.Errorf("%s/%s: index never built", r.Mode, r.Context)
			}
		case ColdModeBrute:
			if r.Pruned != 0 || r.Kept != 0 {
				t.Errorf("%s/%s: brute mode should not prune (got %d/%d)",
					r.Mode, r.Context, r.Pruned, r.Kept)
			}
		}
	}
	if accepts[ColdContextSerial] != accepts[ColdContextSharded] {
		t.Errorf("serial accepts %d != sharded accepts %d",
			accepts[ColdContextSerial], accepts[ColdContextSharded])
	}
	if accepts[ColdContextSerial] == 0 {
		t.Error("no check accepted — target streams are degenerate")
	}
}

// BenchmarkColdIndexWarmOverhead is the warm-path regression gate: the
// verdict-cache-hit path must not slow down because the cold path behind
// it was reworked. It measures the same repeated check (a guaranteed
// cache hit after the first) under the legacy sweep and under the
// indexed default and reports the relative overhead; CI fails the build
// when it exceeds 2%, mirroring the trace-overhead gate.
func BenchmarkColdIndexWarmOverhead(b *testing.B) {
	lab, err := config.Compile(labs.TestbedSpec())
	if err != nil {
		b.Fatal(err)
	}
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.32, 0.22, 0.25)}
	warmNs := func(mode string, n int) float64 {
		s, err := newColdSim(lab, mode, kin.NewPlanCache(0), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.ValidTrajectory(cmd, state.Snapshot(nil)); err != nil {
			b.Fatalf("%s: unexpected verdict: %v", mode, err)
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := s.ValidTrajectory(cmd, state.Snapshot(nil)); err != nil {
				b.Fatalf("%s: unexpected verdict: %v", mode, err)
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(n)
	}
	n := b.N * 20000
	b.ResetTimer()
	legacy := warmNs(ColdModeLegacy, n)
	indexed := warmNs(ColdModeIndexed, n)
	b.ReportMetric(100*(indexed-legacy)/legacy, "warm-overhead-%")
	b.ReportMetric(indexed, "warm-ns/check")
}
