package eval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/trace"
)

// ThroughputOptions configures a replay-throughput run: G concurrent
// experiment scripts, each owning one action device, replaying a fixed
// command cycle under real-time pacing.
type ThroughputOptions struct {
	// Scripts is the number of concurrent experiment scripts (each gets
	// its own device, so it is also the fleet size).
	Scripts int
	// CommandsPerScript is how many commands each script issues (rounded
	// up to whole set/start/read/stop cycles).
	CommandsPerScript int
	// Speedup paces execution: each command consumes its simulated device
	// time divided by this factor of real wall-clock time. Zero disables
	// pacing (pure checking throughput).
	Speedup float64
	// Serial selects the baseline deployment: the engine's global
	// single-lock pipeline behind ONE shared interceptor. That pairing is
	// not arbitrary — the seed engine chains every Before onto a single
	// pending expectation that the next After settles, so interleaved
	// Before/After from independent interceptors corrupts it; its only
	// safe concurrent deployment serializes whole command cycles. The
	// sharded engine lifts exactly that restriction, which is what this
	// harness measures.
	Serial bool
	// NoRecorder disables the flight recorder — the recorder-overhead
	// benchmark's before/after switch.
	NoRecorder bool
	// NoTracing disables the causal tracing layer — the trace-overhead
	// benchmark's before/after switch.
	NoTracing bool
	// NoRuleMetrics disables the per-rule labeled metric families — the
	// labeled-observability overhead benchmark's before/after switch.
	NoRuleMetrics bool
	// Seed drives stochastic fidelity noise.
	Seed int64
}

// ThroughputResult is one measured configuration.
type ThroughputResult struct {
	Mode string
	// Labs is the gateway deployment's tenant count (0 for the
	// in-process serial and sharded modes).
	Labs     int
	Scripts  int
	Commands int
	Wall     time.Duration
	// CommandsPerSec is the headline number: commands fully processed
	// (checked, executed, post-checked) per second of wall clock.
	CommandsPerSec float64
	// CheckPerCommand is RABIT's mean checking time per command.
	CheckPerCommand time.Duration
	// Validate, Fetch, and Compare are the engine's per-stage latency
	// histograms over the run.
	Validate StageLatency
	Fetch    StageLatency
	Compare  StageLatency
}

// throughputSpec builds a synthetic deck of n independent hotplates — no
// arms, no shared doors — so every command's rule bucket reads only its
// own device and the sharded pipeline can run all n scripts concurrently.
func throughputSpec(n int) *config.LabSpec {
	spec := &config.LabSpec{Lab: "throughput-fleet", FloorZ: 0}
	for i := 0; i < n; i++ {
		x := float64(i) * 0.3
		spec.Devices = append(spec.Devices, config.DeviceSpec{
			ID:   fmt.Sprintf("hp%02d", i),
			Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
			Cuboid: config.BoxSpec{
				Min: config.Vec{X: x, Y: 0, Z: 0},
				Max: config.Vec{X: x + 0.2, Y: 0.2, Z: 0.15},
			},
			ActionThreshold: 150,
			MaxSafeValue:    340,
		})
	}
	return spec
}

// throughputScript is one script's command stream: set a safe setpoint,
// run a timed action, poll, stop — the cadence of a solubility screen's
// per-sample loop.
func throughputScript(device string, commands int) []action.Command {
	cycles := (commands + 3) / 4
	out := make([]action.Command, 0, cycles*4)
	for c := 0; c < cycles; c++ {
		out = append(out,
			action.Command{Device: device, Action: action.SetActionValue, Value: 40 + float64(c%10)*10},
			action.Command{Device: device, Action: action.StartAction, Duration: time.Second},
			action.Command{Device: device, Action: action.ReadStatus},
			action.Command{Device: device, Action: action.StopAction},
		)
	}
	return out
}

// Throughput replays Scripts concurrent command streams and measures
// commands/sec. In serial mode all scripts funnel through one shared
// interceptor (the seed architecture's only safe concurrent deployment;
// see ThroughputOptions.Serial); in sharded mode each script gets its
// own interceptor and the engine's per-device shards let disjoint
// command cycles — paced execution included — overlap.
func Throughput(o ThroughputOptions) (*ThroughputResult, error) {
	if o.Scripts <= 0 {
		o.Scripts = 1
	}
	if o.CommandsPerScript <= 0 {
		o.CommandsPerScript = 40
	}
	s, err := NewSetup(throughputSpec(o.Scripts), Options{
		Stage:          env.StageTestbed,
		Rules:          rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT:      true,
		SerialPipeline: o.Serial,
		NoRecorder:     o.NoRecorder,
		NoTracing:      o.NoTracing,
		NoRuleMetrics:  o.NoRuleMetrics,
		Seed:           o.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: throughput: %w", err)
	}
	defer s.Close()
	if o.Speedup > 0 {
		s.Env.SetPacing(o.Speedup)
	}

	scripts := make([][]action.Command, o.Scripts)
	interceptors := make([]*trace.Interceptor, o.Scripts)
	for g := 0; g < o.Scripts; g++ {
		scripts[g] = throughputScript(fmt.Sprintf("hp%02d", g), o.CommandsPerScript)
		if o.Serial {
			interceptors[g] = s.Interceptor
		} else {
			interceptors[g] = trace.NewInterceptor(s.Engine, s.Env)
			interceptors[g].SetRecorder(s.Recorder)
			interceptors[g].SetTracer(s.Tracer)
		}
	}

	errs := make([]error, o.Scripts)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < o.Scripts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, cmd := range scripts[g] {
				if err := interceptors[g].Do(cmd); err != nil {
					errs[g] = fmt.Errorf("script %d: %s: %w", g, cmd, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	// Each script's interceptor opened its own run trace; settle their
	// tail-sampling decisions before the setup drains.
	for g := 0; g < o.Scripts; g++ {
		if !o.Serial {
			interceptors[g].FinishTrace()
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: throughput: %w", err)
		}
	}
	if a := s.Engine.Stopped(); a != nil {
		return nil, fmt.Errorf("eval: throughput: unexpected alert: %s", a.Error())
	}

	check, commands := s.Engine.CheckOverhead()
	mode := "sharded"
	if o.Serial {
		mode = "serial"
	}
	res := &ThroughputResult{
		Mode:     mode,
		Scripts:  o.Scripts,
		Commands: commands,
		Wall:     wall,
		Validate: stageLatency(s.Obs, obs.StageValidate),
		Fetch:    stageLatency(s.Obs, obs.StageFetch),
		Compare:  stageLatency(s.Obs, obs.StageCompare),
	}
	if wall > 0 {
		res.CommandsPerSec = float64(commands) / wall.Seconds()
	}
	if commands > 0 {
		res.CheckPerCommand = check / time.Duration(commands)
	}
	return res, nil
}

// RenderThroughput prints throughput rows with the per-stage latency
// columns.
func RenderThroughput(rows []ThroughputResult) string {
	out := fmt.Sprintf("%-10s %8s %10s %12s %12s %12s %14s %14s %14s\n",
		"Pipeline", "scripts", "commands", "wall", "cmds/sec", "check/cmd",
		"validate p50", "fetch p50", "compare p50")
	stage := func(sl StageLatency) string {
		if sl.Count == 0 {
			return "—"
		}
		return sl.P50.String()
	}
	for _, r := range rows {
		mode := r.Mode
		if r.Labs > 0 {
			mode = fmt.Sprintf("%s/%d", r.Mode, r.Labs)
		}
		out += fmt.Sprintf("%-10s %8d %10d %12s %12.0f %12s %14s %14s %14s\n",
			mode, r.Scripts, r.Commands, r.Wall.Round(time.Millisecond),
			r.CommandsPerSec, r.CheckPerCommand,
			stage(r.Validate), stage(r.Fetch), stage(r.Compare))
	}
	return out
}
