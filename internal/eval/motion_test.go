package eval

import "testing"

// TestMotionBenchmarkFastPathSpeedup runs the full three-mode motion
// benchmark at a reduced visit count and checks the PR's acceptance
// criterion: on repeat station visits, the cache+speculation fast path
// cuts the median before-check latency by at least 2x over the cold
// configuration, with the caches and the lookahead demonstrably doing
// the work (non-zero hit counters).
func TestMotionBenchmarkFastPathSpeedup(t *testing.T) {
	rows, err := Motion(MotionOptions{Visits: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMode := make(map[string]MotionResult, len(rows))
	for _, r := range rows {
		byMode[r.Mode] = r
	}

	cold := byMode[MotionModeCold]
	if cold.PlanHits != 0 || cold.VerdictHits != 0 || cold.Speculations != 0 {
		t.Errorf("no-cache mode used the fast path: plan hits %d, verdict hits %d, speculations %d",
			cold.PlanHits, cold.VerdictHits, cold.Speculations)
	}
	if cold.Trajectory.Count == 0 {
		t.Error("no-cache mode recorded no trajectory checks")
	}

	cached := byMode[MotionModeCached]
	if cached.VerdictHits == 0 {
		t.Error("cache mode: repeat visits produced no verdict-cache hits")
	}
	if cached.PlanHits == 0 {
		t.Error("cache mode: repeat visits produced no plan-cache hits")
	}
	if cached.EpochBumps == 0 {
		t.Error("cache mode: door toggles bumped no deck epochs")
	}
	if cached.Speculations != 0 {
		t.Errorf("cache mode speculated (%d) with speculation disabled", cached.Speculations)
	}

	spec := byMode[MotionModeSpec]
	if spec.Speculations == 0 {
		t.Error("cache+spec mode dispatched no speculative lookaheads")
	}
	if spec.SpeculationHits == 0 {
		t.Error("cache+spec mode: no on-path check was answered by a speculated verdict")
	}
	// Speculation converts first-visit misses into hits, so the spec mode
	// must see no more on-path misses than the cache-only mode.
	if spec.VerdictMisses > cached.VerdictMisses {
		t.Errorf("cache+spec on-path misses (%d) exceed cache-only misses (%d)",
			spec.VerdictMisses, cached.VerdictMisses)
	}

	// The acceptance bar: ≥2x median before-check latency improvement.
	// In practice the gap is orders of magnitude (cached verdicts skip IK
	// and the sweep entirely), so 2x has headroom against CI noise.
	if s := MotionSpeedup(rows); s < 2 {
		t.Errorf("validate+trajectory p50 speedup = %.2fx, want >= 2x (cold %v, spec %v)",
			s, cold.CheckP50(), spec.CheckP50())
	}
}
