package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/workflow"
)

// ControlledScenario is one deliberately unsafe scenario designed to
// trigger exactly one rule of Tables III/IV — the controlled experiments
// of Section IV ("we deliberately executed unsafe scenarios designed to
// trigger each rule in the rulebase").
type ControlledScenario struct {
	// RuleID is the rule the scenario targets (e.g. "general-3").
	RuleID string
	// Table is "III" or "IV"; Number is the row.
	Table  string
	Number int
	// Name summarises the scenario.
	Name string
	// Prepare pokes physical pre-conditions into the world before the
	// engine starts (e.g. the centrifuge's red dot turned away).
	Prepare func(s *Setup) error
	// Run executes the unsafe script; it is expected to be stopped by an
	// alert.
	Run func(s *workflow.Session, armID string) error
}

// ControlledScenarios returns one scenario per rule in Tables III and IV.
// The scripts are written against the shared location vocabulary of the
// Hein decks (grid_NW, dd_*, hp_*, cf_*), so they run on the production
// deck and the testbed alike.
func ControlledScenarios() []ControlledScenario {
	return []ControlledScenario{
		{
			RuleID: "general-1", Table: "III", Number: 1,
			Name: "move into the dosing device while its door is closed",
			Run: func(s *workflow.Session, arm string) error {
				return s.Arm(arm).GoToLocation("dd_safe_height")
			},
		},
		{
			RuleID: "general-2", Table: "III", Number: 2,
			Name: "close the door while the arm is inside the device",
			Run: func(s *workflow.Session, arm string) error {
				dd := s.Device("dosing_device")
				if err := dd.SetDoor(true); err != nil {
					return err
				}
				a := s.Arm(arm)
				if err := a.GoToLocation("dd_approach"); err != nil {
					return err
				}
				if err := a.GoToLocation("dd_safe_height"); err != nil {
					return err
				}
				return dd.SetDoor(false)
			},
		},
		{
			RuleID: "general-3", Table: "III", Number: 3,
			Name: "move the arm straight into the grid (the paper's simulator scenario)",
			Run: func(s *workflow.Session, arm string) error {
				return s.Arm(arm).MovePose(vec(0.35, 0.25, 0.05))
			},
		},
		{
			RuleID: "general-4", Table: "III", Number: 4,
			Name: "pick a second object while already holding one",
			Run: func(s *workflow.Session, arm string) error {
				a := s.Arm(arm)
				if err := a.PickUpObject("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
					return err
				}
				return a.CloseGripper()
			},
		},
		{
			RuleID: "general-5", Table: "III", Number: 5,
			Name: "start the hotplate with no container on it",
			Run: func(s *workflow.Session, arm string) error {
				return s.Device("hotplate").Start(10 * time.Second)
			},
		},
		{
			RuleID: "general-6", Table: "III", Number: 6,
			Name: "start the hotplate with an empty container on it",
			Run: func(s *workflow.Session, arm string) error {
				a := s.Arm(arm)
				if err := a.PickUpObject("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
					return err
				}
				if err := a.GoToLocation("hp_safe"); err != nil {
					return err
				}
				if err := a.PlaceObject("hp_safe", "hp_place", "vial_1"); err != nil {
					return err
				}
				return s.Device("hotplate").Start(10 * time.Second)
			},
		},
		{
			RuleID: "general-7", Table: "III", Number: 7,
			Name: "transfer solvent into a container whose stopper is on",
			Run: func(s *workflow.Session, arm string) error {
				if err := s.Vial("vial_1").Cap(); err != nil {
					return err
				}
				return s.Device("pump").Transfer("beaker", "vial_1", 5)
			},
		},
		{
			RuleID: "general-8", Table: "III", Number: 8,
			Name: "transfer from an empty delivering container",
			Run: func(s *workflow.Session, arm string) error {
				return s.Device("pump").Transfer("vial_2", "vial_1", 2)
			},
		},
		{
			RuleID: "general-9", Table: "III", Number: 9,
			Name: "start dosing while the device door is open",
			Run: func(s *workflow.Session, arm string) error {
				dd := s.Device("dosing_device")
				if err := dd.SetDoor(true); err != nil {
					return err
				}
				return dd.RunAction(3*time.Second, 5)
			},
		},
		{
			RuleID: "general-10", Table: "III", Number: 10,
			Name: "open the door while the device is running",
			Run: func(s *workflow.Session, arm string) error {
				dd := s.Device("dosing_device")
				if err := dd.Start(3 * time.Second); err != nil {
					return err
				}
				return dd.SetDoor(true)
			},
		},
		{
			RuleID: "general-11", Table: "III", Number: 11,
			Name: "set the hotplate above its temperature threshold",
			Run: func(s *workflow.Session, arm string) error {
				return s.Device("hotplate").SetValue(400)
			},
		},
		{
			RuleID: "hein-1", Table: "IV", Number: 1,
			Name: "add liquid to a container that holds no solid",
			Run: func(s *workflow.Session, arm string) error {
				return s.Device("pump").DoseLiquid("vial_1", 2)
			},
		},
		{
			RuleID: "hein-2", Table: "IV", Number: 2,
			Name: "place a container without both solid and liquid into the centrifuge",
			Run: func(s *workflow.Session, arm string) error {
				if err := s.Vial("vial_1").Cap(); err != nil {
					return err
				}
				if err := s.Device("centrifuge").SetDoor(true); err != nil {
					return err
				}
				a := s.Arm(arm)
				if err := a.PickUpObject("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
					return err
				}
				return a.PlaceObject("cf_safe", "cf_slot", "vial_1")
			},
		},
		{
			RuleID: "hein-3", Table: "IV", Number: 3,
			Name: "place a container into the centrifuge while the red dot faces away",
			Prepare: func(s *Setup) error {
				f, ok := s.Env.World().Fixture("centrifuge")
				if !ok {
					return fmt.Errorf("no centrifuge on this deck")
				}
				f.RedDotNorth = false
				return nil
			},
			Run: func(s *workflow.Session, arm string) error {
				if err := s.Device("centrifuge").SetDoor(true); err != nil {
					return err
				}
				a := s.Arm(arm)
				if err := a.PickUpObject("grid_NE_safe", "grid_NE", "vial_3"); err != nil {
					return err
				}
				return a.PlaceObject("cf_safe", "cf_slot", "vial_3")
			},
		},
		{
			RuleID: "hein-4", Table: "IV", Number: 4,
			Name: "place an uncapped container into the centrifuge",
			Run: func(s *workflow.Session, arm string) error {
				if err := s.Vial("vial_3").Decap(); err != nil {
					return err
				}
				if err := s.Device("centrifuge").SetDoor(true); err != nil {
					return err
				}
				a := s.Arm(arm)
				if err := a.PickUpObject("grid_NE_safe", "grid_NE", "vial_3"); err != nil {
					return err
				}
				return a.PlaceObject("cf_safe", "cf_slot", "vial_3")
			},
		},
	}
}

// ControlledResult is the outcome of one controlled scenario.
type ControlledResult struct {
	Scenario ControlledScenario
	// Detected reports whether an alert was raised at all.
	Detected bool
	// RuleHit reports whether the targeted rule is among the violations.
	RuleHit bool
	// Alert is the first alert.
	Alert *core.Alert
}

// RunControlled executes every controlled scenario on the given deck and
// stage, each in a fresh environment.
func RunControlled(deck string, stage env.Stage, seed int64) ([]ControlledResult, error) {
	var out []ControlledResult
	for _, sc := range ControlledScenarios() {
		o := Options{
			Stage:     stage,
			Rules:     rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
			WithRABIT: true,
			Seed:      seed,
		}
		var s *Setup
		var err error
		switch deck {
		case "production":
			s, err = NewProductionSetup(o)
		default:
			s, err = NewTestbedSetup(o)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: controlled %s: %w", sc.RuleID, err)
		}
		if sc.Prepare != nil {
			if err := sc.Prepare(s); err != nil {
				return nil, fmt.Errorf("eval: controlled %s prepare: %w", sc.RuleID, err)
			}
			// Re-acquire S_initial so the engine observes the prepared
			// state (Fig. 2 lines 1–3).
			s.Engine.Start()
		}
		// For multi-arm decks, quiesce the second arm first so the
		// scenario isn't polluted by unrelated concerns.
		arm := s.Lab.ArmIDs()[0]
		for _, other := range s.Lab.ArmIDs()[1:] {
			if err := s.Session.Arm(other).GoSleep(); err != nil {
				return nil, fmt.Errorf("eval: controlled %s quiesce: %w", sc.RuleID, err)
			}
		}
		_ = sc.Run(s.Session, arm) // the error is the alert
		res := ControlledResult{Scenario: sc}
		alerts := s.Engine.Alerts()
		if len(alerts) > 0 {
			res.Detected = true
			res.Alert = &alerts[0]
			for _, v := range alerts[0].Violations {
				if v.Rule.ID == sc.RuleID {
					res.RuleHit = true
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// vec is a terse constructor for scenario scripts.
func vec(x, y, z float64) geom.Vec3 { return geom.V(x, y, z) }
