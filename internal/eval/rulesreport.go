package eval

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bugs"
	"repro/internal/obs"
	"repro/internal/workflow"
)

// The per-rule safety report (ISSUE 10): every engine run records
// labeled rule metrics (evals, fires, eval latency, near-miss margin);
// this file drives a representative workload — the sixteen-bug study
// plus one clean fig5 run under the modified configuration — and merges
// the per-run registry snapshots into one ranked table. Rules are
// ranked by fire rate: the rules that actually catch bugs float to the
// top, dead rules (evaluated but never firing, wide margins) sink to
// the bottom, and a rule that is both hot and slow stands out in the
// latency column.

// RuleStats is one rule's merged metric series across every run of the
// report workload.
type RuleStats struct {
	RuleID string `json:"rule_id"`
	// Evals counts every time the engine consulted the rule (including
	// AppliesTo rejections); Fires counts violations.
	Evals int64 `json:"evals"`
	Fires int64 `json:"fires"`
	// FireRate is Fires/Evals.
	FireRate float64 `json:"fire_rate"`
	// LatMeanNS and LatMaxNS summarize the rule's eval latency. Means
	// merge exactly across runs (sum/count); percentiles do not, so the
	// report sticks to moments.
	LatMeanNS int64 `json:"lat_mean_ns"`
	LatMaxNS  int64 `json:"lat_max_ns"`
	// MarginN and MarginMean summarize the rule's near-miss margin on
	// non-firing evals (0 = at the threshold, 1 = maximally clear).
	// Only rules with a Margin estimator report them.
	MarginN    int64   `json:"margin_n"`
	MarginMean float64 `json:"margin_mean"`

	latSum    int64
	marginSum float64
}

// mergeRuleFamilies folds one registry snapshot's rule families into
// the accumulator keyed by rule ID.
func mergeRuleFamilies(acc map[string]*RuleStats, snap obs.Snapshot) {
	get := func(id string) *RuleStats {
		rs, ok := acc[id]
		if !ok {
			rs = &RuleStats{RuleID: id}
			acc[id] = rs
		}
		return rs
	}
	for _, fam := range snap.Families {
		switch fam.Name {
		case obs.FamilyRuleEvals:
			for _, c := range fam.Counters {
				get(c.Name).Evals += c.Value
			}
		case obs.FamilyRuleFires:
			for _, c := range fam.Counters {
				get(c.Name).Fires += c.Value
			}
		case obs.FamilyRuleEval:
			for _, h := range fam.Histograms {
				rs := get(h.Name)
				rs.latSum += h.SumNS
				rs.LatMaxNS = max(rs.LatMaxNS, h.MaxNS)
			}
		case obs.FamilyRuleMargin:
			for _, h := range fam.Histograms {
				rs := get(h.Name)
				rs.MarginN += h.Count
				// Margins are recorded on the ratio convention: value×1e9
				// nanoseconds per unit of margin.
				rs.marginSum += float64(h.SumNS) / 1e9
			}
		}
	}
}

// RulesReport runs the report workload and returns the merged per-rule
// stats ranked by fire rate (ties: eval count, then rule ID).
func RulesReport(seed int64) ([]RuleStats, error) {
	acc := make(map[string]*RuleStats)
	collect := func(run func(s *Setup)) error {
		s, err := NewTestbedSetup(ConfigModified.options(seed))
		if err != nil {
			return err
		}
		defer s.Close()
		run(s)
		mergeRuleFamilies(acc, s.Obs.Snapshot())
		return nil
	}
	// One clean run: every rule evaluated, nothing firing — the margin
	// and latency baseline.
	if err := collect(func(s *Setup) {
		_ = workflow.RunSteps(s.Session, workflow.Fig5Workflow())
	}); err != nil {
		return nil, fmt.Errorf("eval: rules report: clean run: %w", err)
	}
	// The sixteen injected bugs: the fire-rate signal.
	for _, b := range bugs.Suite() {
		if err := collect(func(s *Setup) {
			_ = workflow.RunSteps(s.Session, b.Mutate(s.Session)) // the error is the alert itself
		}); err != nil {
			return nil, fmt.Errorf("eval: rules report: bug %d: %w", b.ID, err)
		}
	}

	rows := make([]RuleStats, 0, len(acc))
	for _, rs := range acc {
		if rs.Evals > 0 {
			rs.FireRate = float64(rs.Fires) / float64(rs.Evals)
			rs.LatMeanNS = rs.latSum / rs.Evals
		}
		if rs.MarginN > 0 {
			rs.MarginMean = rs.marginSum / float64(rs.MarginN)
		}
		rows = append(rows, *rs)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.FireRate != b.FireRate {
			return a.FireRate > b.FireRate
		}
		if a.Evals != b.Evals {
			return a.Evals > b.Evals
		}
		return a.RuleID < b.RuleID
	})
	return rows, nil
}

// RenderRuleReport prints the ranked table.
func RenderRuleReport(rows []RuleStats) string {
	out := fmt.Sprintf("%-24s %8s %6s %9s %12s %12s %9s %11s\n",
		"rule", "evals", "fires", "fire rate", "lat mean", "lat max", "margins", "mean margin")
	for _, r := range rows {
		margin := "—"
		if r.MarginN > 0 {
			margin = fmt.Sprintf("%.3f", r.MarginMean)
		}
		out += fmt.Sprintf("%-24s %8d %6d %8.2f%% %12s %12s %9d %11s\n",
			r.RuleID, r.Evals, r.Fires, 100*r.FireRate,
			time.Duration(r.LatMeanNS), time.Duration(r.LatMaxNS), r.MarginN, margin)
	}
	return out
}
