package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	otrace "repro/internal/obs/trace"
)

// Causal-trace rendering for `rabiteval -trace <file>`: the OTLP-JSON
// lines the tracer's tail sampler retained, rendered the way the
// incident timeline is — cause first. Alert traces lead (they are why
// the file exists), and within a trace the span tree reads root-down:
// the intercepted command, then each pipeline stage in start order,
// speculation and simulator work indented under the span that caused
// them.

// RenderTraceFile loads an OTLP-JSON trace file and renders every trace
// in it.
func RenderTraceFile(path string) (string, error) {
	tds, err := otrace.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("eval: traces: %w", err)
	}
	return RenderTraces(tds), nil
}

// RenderTraces renders a set of traces, alert traces first.
func RenderTraces(tds []*otrace.TraceData) string {
	var b strings.Builder
	alerts := 0
	for _, td := range tds {
		if td.Alert {
			alerts++
		}
	}
	fmt.Fprintf(&b, "traces: %d (%d alert, %d sampled)\n", len(tds), alerts, len(tds)-alerts)
	ordered := make([]*otrace.TraceData, len(tds))
	copy(ordered, tds)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Alert && !ordered[j].Alert
	})
	for _, td := range ordered {
		b.WriteString("\n")
		b.WriteString(RenderTraceTree(td))
	}
	return b.String()
}

// RenderTraceTree renders one trace as an indented span tree.
func RenderTraceTree(td *otrace.TraceData) string {
	var b strings.Builder
	head := "sampled"
	if td.Alert {
		head = "ALERT"
	}
	fmt.Fprintf(&b, "trace %s  %s  %d spans", td.ID, head, len(td.Spans))
	if td.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped)", td.Dropped)
	}
	b.WriteString("\n")

	// Spans arrive in start order; index them and bucket children under
	// their parents, preserving that order.
	byID := make(map[otrace.SpanID]int, len(td.Spans))
	for i := range td.Spans {
		byID[td.Spans[i].Span] = i
	}
	children := make(map[otrace.SpanID][]int, len(td.Spans))
	var roots []int
	var start time.Time
	for i := range td.Spans {
		sd := &td.Spans[i]
		if start.IsZero() || sd.Start.Before(start) {
			start = sd.Start
		}
		if _, ok := byID[sd.Parent]; ok && sd.Parent != sd.Span {
			children[sd.Parent] = append(children[sd.Parent], i)
		} else {
			// Root, or an orphan whose parent fell to the ring bound —
			// either way it anchors its own subtree.
			roots = append(roots, i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(renderSpanLine(&td.Spans[i], start))
		b.WriteString("\n")
		for _, c := range children[td.Spans[i].Span] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// renderSpanLine renders one span: offset from trace start, name,
// duration, attributes, and its error/alert status.
func renderSpanLine(sd *otrace.SpanData, traceStart time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-9s %s", sd.Start.Sub(traceStart).Round(time.Microsecond), sd.Name)
	if d := sd.End.Sub(sd.Start); d > 0 {
		fmt.Fprintf(&b, " %s", d.Round(time.Microsecond))
	}
	for _, a := range sd.Attrs {
		if a.Key == "alert" {
			continue // rendered via the status mark below
		}
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	if sd.Err != "" {
		fmt.Fprintf(&b, " ✗ %s", sd.Err)
	}
	if sd.Alert {
		b.WriteString(" ⇒ ALERT")
		for _, a := range sd.Attrs {
			if a.Key == "alert" && a.Val != "" && a.Val != "true" {
				fmt.Fprintf(&b, " %s", a.Val)
			}
		}
	}
	return b.String()
}
