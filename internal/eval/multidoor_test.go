package eval

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/world"
)

// multiDoorSpec adds a pass-through capping station with two named doors
// ("west" toward ViperX, "east" toward Ned2) — the Section V-C extension:
// "devices might have multiple doors, for instance, for two robot arms to
// approach the device simultaneously".
func multiDoorSpec() *config.LabSpec {
	spec := labs.TestbedSpec()
	spec.Devices = append(spec.Devices, config.DeviceSpec{
		ID: "pass_through", Type: "action_device", Kind: "decapper", ClassName: "DecapperDriver",
		Doors: []config.NamedDoorSpec{
			{Name: "west", Side: "x-"},
			{Name: "east", Side: "x+"},
		},
		Cuboid:   config.BoxSpec{Min: config.Vec{X: 0.33, Y: -0.22, Z: 0}, Max: config.Vec{X: 0.51, Y: -0.02, Z: 0.30}},
		Interior: &config.BoxSpec{Min: config.Vec{X: 0.36, Y: -0.19, Z: 0.03}, Max: config.Vec{X: 0.48, Y: -0.05, Z: 0.27}},
	})
	spec.Locations = append(spec.Locations,
		config.LocationSpec{Name: "pt_west_approach", Owner: "pass_through",
			DeckPos: config.Vec{X: 0.26, Y: -0.12, Z: 0.19}},
		config.LocationSpec{Name: "pt_slot_w", Owner: "pass_through", Inside: true, Door: "west",
			DeckPos: config.Vec{X: 0.40, Y: -0.12, Z: 0.12}},
		config.LocationSpec{Name: "pt_slot_w_safe", Owner: "pass_through", Inside: true, Door: "west",
			DeckPos: config.Vec{X: 0.40, Y: -0.12, Z: 0.20}},
		config.LocationSpec{Name: "pt_slot_e", Owner: "pass_through", Inside: true, Door: "east",
			DeckPos: config.Vec{X: 0.44, Y: -0.12, Z: 0.12}},
	)
	return spec
}

func multiDoorSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := NewSetup(multiDoorSpec(), Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiDoorConfigAndModel(t *testing.T) {
	s := multiDoorSetup(t)
	doors := s.Lab.DeviceDoors("pass_through")
	if len(doors) != 2 || doors[0] != "west" || doors[1] != "east" {
		t.Fatalf("doors = %v", doors)
	}
	if !s.Lab.DeviceHasDoor("pass_through") {
		t.Fatal("multi-door device should report having doors")
	}
	if got := s.Lab.LocationDoor("pt_slot_w"); got != "west" {
		t.Errorf("pt_slot_w door = %q", got)
	}
	// Both panel states are observable, independently.
	st := s.Env.FetchState()
	for _, door := range doors {
		if _, ok := st.Get(state.DoorStatusOf("pass_through", door)); !ok {
			t.Errorf("door %q not observable", door)
		}
	}
}

func TestMultiDoorRuleOneIsPerPanel(t *testing.T) {
	s := multiDoorSetup(t)
	// Open the EAST door only; approach through the WEST side. Rule 1
	// must look at the panel serving the target location, not "any door
	// open".
	if err := s.Session.Device("pass_through").SetNamedDoor("east", true); err != nil {
		t.Fatal(err)
	}
	err := s.Session.Arm("viperx").GoToLocation("pt_slot_w")
	if err == nil {
		t.Fatal("entry through the closed west door accepted")
	}
	if !strings.Contains(err.Error(), `door "west"`) {
		t.Errorf("alert should name the west panel: %v", err)
	}

	// Opening the west panel admits the arm.
	s.Engine.Start()
	if err := s.Session.Device("pass_through").SetNamedDoor("west", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_west_approach"); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_slot_w"); err != nil {
		t.Fatalf("entry through the open west door blocked: %v", err)
	}
	if evs := s.Env.World().Events(); len(evs) != 0 {
		t.Fatalf("physical damage during legal entry: %v", evs)
	}
}

func TestMultiDoorRuleTwoBlocksAnyPanel(t *testing.T) {
	s := multiDoorSetup(t)
	dev := s.Session.Device("pass_through")
	if err := dev.SetNamedDoor("west", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_west_approach"); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_slot_w"); err != nil {
		t.Fatal(err)
	}
	// With the arm inside, closing either panel is refused.
	err := dev.SetNamedDoor("west", false)
	if err == nil || !strings.Contains(err.Error(), "general-2") {
		t.Errorf("closing the west door on the arm should violate rule 2: %v", err)
	}
}

func TestMultiDoorRuleNineRequiresAllClosed(t *testing.T) {
	s := multiDoorSetup(t)
	dev := s.Session.Device("pass_through")
	if err := dev.SetNamedDoor("east", true); err != nil {
		t.Fatal(err)
	}
	err := dev.Start(0)
	if err == nil {
		t.Fatal("action started with the east door open")
	}
	alert, ok := core.AsAlert(err)
	if !ok {
		t.Fatalf("want alert, got %v", err)
	}
	foundNine := false
	for _, v := range alert.Violations {
		if v.Rule.ID == "general-9" && strings.Contains(v.Reason, `door "east"`) {
			foundNine = true
		}
	}
	if !foundNine {
		t.Errorf("rule 9 should cite the open east panel: %v", alert.Violations)
	}
	// All closed: allowed (the decapper hosts containers? pt slots are
	// owned locations, so rules 5/6 apply — park a prepared vial first).
	s2 := multiDoorSetup(t)
	dev2 := s2.Session.Device("pass_through")
	if err := dev2.SetNamedDoor("west", true); err != nil {
		t.Fatal(err)
	}
	a := s2.Session.Arm("viperx")
	if err := a.PickUpObject("grid_NE_safe", "grid_NE", "vial_3"); err != nil {
		t.Fatal(err)
	}
	if err := a.GoToLocation("pt_west_approach"); err != nil {
		t.Fatal(err)
	}
	if err := a.PlaceObject("pt_slot_w_safe", "pt_slot_w", "vial_3"); err != nil {
		t.Fatal(err)
	}
	if err := a.GoToLocation("pt_west_approach"); err != nil {
		t.Fatal(err)
	}
	if err := a.GoHome(); err != nil {
		t.Fatal(err)
	}
	if err := dev2.SetNamedDoor("west", false); err != nil {
		t.Fatal(err)
	}
	if err := dev2.Start(0); err != nil {
		t.Fatalf("all-closed start blocked: %v", err)
	}
}

func TestMultiDoorPhysicalPassThrough(t *testing.T) {
	// Unprotected ground truth: entering through the open west door is
	// safe; continuing east into the *closed* east panel breaks it.
	s, err := NewSetup(multiDoorSpec(), Options{Stage: env.StageTestbed, WithRABIT: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Device("pass_through").SetNamedDoor("west", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_west_approach"); err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("viperx").GoToLocation("pt_slot_w"); err != nil {
		t.Fatalf("entry failed: %v", err)
	}
	// Push on toward a point past the east wall.
	err = s.Session.Arm("viperx").MovePose(geom.V(0.56, -0.12, 0.12))
	if err == nil {
		t.Fatal("pushing through the closed east door should collide")
	}
	evs := s.Env.World().Events()
	if len(evs) == 0 || evs[0].Kind != world.EventDoorBreak {
		t.Fatalf("want a door-break event, got %v", evs)
	}
}

func TestMultiDoorLint(t *testing.T) {
	spec := multiDoorSpec()
	// Unknown door reference from a location.
	spec.Locations[len(spec.Locations)-1].Door = "north"
	if ds := config.Lint(spec); !config.HasErrors(ds) {
		t.Error("unknown door reference accepted")
	}
	// Duplicate door names.
	spec2 := multiDoorSpec()
	for i := range spec2.Devices {
		if spec2.Devices[i].ID == "pass_through" {
			spec2.Devices[i].Doors[1].Name = "west"
		}
	}
	if ds := config.Lint(spec2); !config.HasErrors(ds) {
		t.Error("duplicate door names accepted")
	}
}
