package eval

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/workflow"
)

// alertSignature reduces an engine's alert history to a comparable
// verdict: kind, violated rule IDs, and mismatched state keys per alert.
func alertSignature(alerts []core.Alert) []string {
	var sig []string
	for _, a := range alerts {
		line := a.Kind.String()
		for _, v := range a.Violations {
			line += " " + v.Rule.ID
		}
		for _, m := range a.Mismatches {
			line += " " + string(m.Key)
		}
		sig = append(sig, line)
	}
	return sig
}

// runControlledParity replays one controlled scenario under one pipeline,
// mirroring RunControlled's body, and returns the verdict.
func runControlledParity(sc ControlledScenario, serial bool) ([]string, state.Snapshot, error) {
	s, err := NewTestbedSetup(Options{
		Stage:          env.StageTestbed,
		Rules:          rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
		WithRABIT:      true,
		SerialPipeline: serial,
		Seed:           7,
	})
	if err != nil {
		return nil, nil, err
	}
	if sc.Prepare != nil {
		if err := sc.Prepare(s); err != nil {
			return nil, nil, err
		}
		s.Engine.Start()
	}
	arm := s.Lab.ArmIDs()[0]
	for _, other := range s.Lab.ArmIDs()[1:] {
		if err := s.Session.Arm(other).GoSleep(); err != nil {
			return nil, nil, err
		}
	}
	_ = sc.Run(s.Session, arm) // the error is the alert
	return alertSignature(s.Engine.Alerts()), s.Engine.Model(), nil
}

// TestControlledScenariosParity is the sequential-vs-sharded property
// test over the Tables III/IV scenarios: with sharding enabled the
// engine must raise the same alerts, cite the same rules, and converge
// to the same model state as the seed's single-lock pipeline.
func TestControlledScenariosParity(t *testing.T) {
	for _, sc := range ControlledScenarios() {
		sc := sc
		t.Run(sc.RuleID, func(t *testing.T) {
			serialSig, serialModel, err := runControlledParity(sc, true)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			shardSig, shardModel, err := runControlledParity(sc, false)
			if err != nil {
				t.Fatalf("sharded run: %v", err)
			}
			if !reflect.DeepEqual(serialSig, shardSig) {
				t.Errorf("alert divergence:\nserial:  %v\nsharded: %v", serialSig, shardSig)
			}
			if !reflect.DeepEqual(serialModel, shardModel) {
				t.Errorf("final model diverges:\nserial:  %v\nsharded: %v", serialModel, shardModel)
			}
			if len(serialSig) == 0 {
				t.Error("scenario raised no alert at all — parity is vacuous")
			}
		})
	}
}

// runBugParity replays one injected bug under one pipeline and returns
// the verdict (alert signature plus final model).
func runBugParity(b bugs.Bug, o Options) ([]string, state.Snapshot, error) {
	s, err := NewTestbedSetup(o)
	if err != nil {
		return nil, nil, err
	}
	steps := b.Mutate(s.Session)
	_ = workflow.RunSteps(s.Session, steps) // the error is the alert/crash itself
	return alertSignature(s.Engine.Alerts()), s.Engine.Model(), nil
}

// TestBugSuiteParity replays all sixteen injected bugs under the
// modified configuration (with and without the Extended Simulator, so
// the trajectory-validation stage is covered too) and demands identical
// verdicts from the serial and sharded pipelines.
func TestBugSuiteParity(t *testing.T) {
	configs := []struct {
		name    string
		withSim bool
	}{
		{"modified", false},
		{"modified+sim", true},
	}
	for _, cfg := range configs {
		for _, b := range bugs.Suite() {
			b := b
			cfg := cfg
			t.Run(fmt.Sprintf("%s/bug%02d-%s", cfg.name, b.ID, b.Slug), func(t *testing.T) {
				base := Options{
					Stage:     env.StageTestbed,
					Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
					WithRABIT: true,
					WithSim:   cfg.withSim,
					Seed:      1,
				}
				serial := base
				serial.SerialPipeline = true
				serialSig, serialModel, err := runBugParity(b, serial)
				if err != nil {
					t.Fatalf("serial run: %v", err)
				}
				shardSig, shardModel, err := runBugParity(b, base)
				if err != nil {
					t.Fatalf("sharded run: %v", err)
				}
				if !reflect.DeepEqual(serialSig, shardSig) {
					t.Errorf("alert divergence:\nserial:  %v\nsharded: %v", serialSig, shardSig)
				}
				if !reflect.DeepEqual(serialModel, shardModel) {
					t.Errorf("final model diverges:\nserial:  %v\nsharded: %v", serialModel, shardModel)
				}
			})
		}
	}
}
