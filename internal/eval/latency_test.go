package eval

import "testing"

// TestLatencyShape reproduces the Section II-C finding: without the
// Extended Simulator, RABIT's interception overhead is a small fraction
// of command execution time (the paper measured 1.5%); with the
// simulator's GUI rendering on every collision check, the overhead
// exceeds the execution time itself (the paper measured 112%).
func TestLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paced latency run")
	}
	rows, err := Latency(2, 2000) // 2000× faster than real time
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 modes, got %d", len(rows))
	}
	noSim, headless, gui := rows[0], rows[1], rows[2]
	if noSim.OverheadPct > 25 {
		t.Errorf("no-simulator overhead %.1f%% should be small", noSim.OverheadPct)
	}
	if gui.OverheadPct < 100 {
		t.Errorf("GUI-simulator overhead %.1f%% should exceed 100%% (the paper's 112%%)", gui.OverheadPct)
	}
	if !(noSim.CheckPerCommand < headless.CheckPerCommand &&
		headless.CheckPerCommand < gui.CheckPerCommand) {
		t.Errorf("check-time ordering wrong: %v < %v < %v",
			noSim.CheckPerCommand, headless.CheckPerCommand, gui.CheckPerCommand)
	}

	// Per-stage breakdown: validate and compare run on every checked
	// command; trajectory checks only run once a simulator is attached —
	// and they are what make the simulated modes slower.
	if noSim.Validate.Count == 0 || noSim.Compare.Count == 0 {
		t.Errorf("no-sim stage histograms empty: %+v", noSim)
	}
	if noSim.Trajectory.Count != 0 {
		t.Errorf("no-sim mode ran %d trajectory checks", noSim.Trajectory.Count)
	}
	if headless.Trajectory.Count == 0 {
		t.Errorf("headless simulator ran no trajectory checks")
	}
	if headless.Trajectory.P50 <= noSim.Validate.P50 {
		t.Errorf("trajectory checks (%v) should dominate validation (%v)",
			headless.Trajectory.P50, noSim.Validate.P50)
	}
}
