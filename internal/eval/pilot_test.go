package eval

import (
	"strings"
	"testing"
)

// TestPilotStudyLintCoverage reproduces the Section V-A conclusion in
// code: every configuration mistake of the pilot study's classes is
// caught by the linter before RABIT ever runs.
func TestPilotStudyLintCoverage(t *testing.T) {
	results, err := RunPilotStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("mistake corpus too small: %d", len(results))
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("mistake %s (%s) slipped past the linter", r.Mistake.Name, r.Mistake.Class)
		}
	}
	rendered := RenderPilot(results)
	if !strings.Contains(rendered, "negative-sign-in-location") {
		t.Errorf("render missing rows:\n%s", rendered)
	}
	if strings.Contains(rendered, "MISSED") {
		t.Errorf("render shows misses:\n%s", rendered)
	}
}
