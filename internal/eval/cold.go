package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/state"
)

// The cold benchmark is the adversarial counterpart of the motion
// benchmark: every command targets a point no previous command visited,
// so the verdict cache never hits and every check runs the full
// swept-volume pipeline. That isolates the cold-path geometry work the
// deck spatial index exists to cut. Three sweep implementations replay
// the identical seeded target streams:
//
//	legacy   the pre-index pipeline: whole-trajectory broadphase prune
//	         plus the iterative golden-section narrow phase — the honest
//	         before-measurement
//	brute    broadphase off: every solid tested at every sample with the
//	         exact narrow phase (the property tests' oracle)
//	indexed  the batched SoA sweep over the deck spatial index
//
// each in two contexts: serial (one arm checked at a time) and sharded
// (one goroutine per arm, exercising the index's lock-free sharing).
// All modes share one pre-warmed plan cache, so the measured check is
// the sweep, not the IK solve in front of it.

// Cold sweep modes.
const (
	ColdModeLegacy  = "legacy"
	ColdModeBrute   = "brute"
	ColdModeIndexed = "indexed"
)

// Cold check contexts.
const (
	ColdContextSerial  = "serial"
	ColdContextSharded = "sharded"
)

// ColdOptions configures the cold-path benchmark.
type ColdOptions struct {
	// Checks is how many fresh-target checks each arm performs per run.
	Checks int
	// Seed drives the target streams; every mode and context replays the
	// same streams.
	Seed int64
}

// ColdResult is one (mode, context) measurement.
type ColdResult struct {
	Mode    string
	Context string
	// Checks is the total check count across arms; Accepts is how many
	// verdicts came back clean. Accepts must agree across modes — the
	// equivalence tests pin it.
	Checks  int
	Accepts int
	Wall    time.Duration
	// P50/P95 are exact per-check latency percentiles over the raw
	// durations (the obs histogram buckets are too coarse for the ≥10x
	// claim this benchmark exists to measure).
	P50 time.Duration
	P95 time.Duration
	// Plan-cache counters prove the IK layer was warm (hits) and stayed
	// warm (no misses beyond IK-infeasible targets).
	PlanHits   int64
	PlanMisses int64
	// Broadphase and index telemetry for the measured run.
	Candidates int64
	Kept       int64
	Pruned     int64
	Rebuilds   int64
}

// coldArms orders the testbed arms the streams are generated for.
var coldArms = []string{"viperx", "ned2"}

// coldTargets builds each arm's seeded fresh-target stream: points in an
// annular shell around the arm base, comfortably inside its reach so the
// IK layer almost always solves and the sweep dominates. Targets may
// still be rejected by the sweep (a low pass over the deck, a wall
// graze) — rejects are part of the workload, and every mode must agree
// on them.
func coldTargets(arm string, checks int, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed + int64(len(arm))*7919))
	rMin, rMax, zMin, zMax := 0.25, 0.50, 0.15, 0.40
	if arm == "ned2" {
		rMin, rMax, zMin, zMax = 0.18, 0.36, 0.12, 0.32
	}
	out := make([]geom.Vec3, 0, checks)
	for i := 0; i < checks; i++ {
		r := rMin + rng.Float64()*(rMax-rMin)
		th := rng.Float64() * 2 * math.Pi
		out = append(out, geom.V(r*math.Cos(th), r*math.Sin(th), zMin+rng.Float64()*(zMax-zMin)))
	}
	return out
}

// newColdSim wires a bare simulator for one mode: no engine, no rules —
// the benchmark measures ValidTrajectory alone, with the deck static so
// the deck-epoch contract is trivially honored.
func newColdSim(lab *config.Lab, mode string, pc *kin.PlanCache, reg *obs.Registry) (*sim.Simulator, error) {
	opts := []sim.Option{
		sim.WithMotionCache(true),
		sim.WithSharedPlanCache(pc),
	}
	if reg != nil {
		opts = append(opts, sim.WithObserver(reg))
	}
	switch mode {
	case ColdModeLegacy:
		opts = append(opts, sim.WithLegacySweep(true))
	case ColdModeBrute:
		opts = append(opts, sim.WithBroadphase(false))
	case ColdModeIndexed:
		// The default pipeline.
	default:
		return nil, fmt.Errorf("eval: unknown cold mode %q", mode)
	}
	return sim.New(lab, opts...)
}

// coldPercentile returns the exact p-th percentile of sorted durations.
func coldPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runCold measures one (mode, context) cell: a fresh simulator (cold
// verdict cache) sharing the pre-warmed plan cache, replaying every
// arm's stream either serially or with one goroutine per arm.
func runCold(lab *config.Lab, mode, context string, streams map[string][]geom.Vec3,
	pc *kin.PlanCache) (*ColdResult, error) {
	reg := obs.NewRegistry("cold-" + mode + "-" + context)
	s, err := newColdSim(lab, mode, pc, reg)
	if err != nil {
		return nil, fmt.Errorf("eval: cold %s/%s: %w", mode, context, err)
	}

	total := 0
	for _, ts := range streams {
		total += len(ts)
	}
	durs := make([]time.Duration, 0, total)
	accepts := 0

	run := func(arm string, out *[]time.Duration) int {
		ok := 0
		for _, tgt := range streams[arm] {
			cmd := action.Command{Device: arm, Action: action.MoveRobot, Target: tgt}
			t0 := time.Now()
			err := s.ValidTrajectory(cmd, state.Snapshot(nil))
			*out = append(*out, time.Since(t0))
			if err == nil {
				ok++
			}
		}
		return ok
	}

	start := time.Now()
	switch context {
	case ColdContextSerial:
		for _, arm := range coldArms {
			accepts += run(arm, &durs)
		}
	case ColdContextSharded:
		perArm := make([][]time.Duration, len(coldArms))
		oks := make([]int, len(coldArms))
		var wg sync.WaitGroup
		for i, arm := range coldArms {
			i, arm := i, arm
			perArm[i] = make([]time.Duration, 0, len(streams[arm]))
			wg.Add(1)
			go func() {
				defer wg.Done()
				oks[i] = run(arm, &perArm[i])
			}()
		}
		wg.Wait()
		for i := range coldArms {
			durs = append(durs, perArm[i]...)
			accepts += oks[i]
		}
	default:
		return nil, fmt.Errorf("eval: unknown cold context %q", context)
	}
	wall := time.Since(start)

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return &ColdResult{
		Mode:       mode,
		Context:    context,
		Checks:     len(durs),
		Accepts:    accepts,
		Wall:       wall,
		P50:        coldPercentile(durs, 0.50),
		P95:        coldPercentile(durs, 0.95),
		PlanHits:   reg.Counter(obs.CounterPlanCacheHits).Value(),
		PlanMisses: reg.Counter(obs.CounterPlanCacheMisses).Value(),
		Candidates: reg.Counter(obs.CounterSimIndexCandidates).Value(),
		Kept:       reg.Counter(obs.CounterSimBroadphaseKept).Value(),
		Pruned:     reg.Counter(obs.CounterSimBroadphasePruned).Value(),
		Rebuilds:   reg.Counter(obs.CounterSimIndexRebuilds).Value(),
	}, nil
}

// MotionCold runs the cold-path benchmark: every mode × context over the
// identical seeded target streams, all sharing one plan cache pre-warmed
// by a throwaway replay so the measured latencies are sweep cost, not IK.
func MotionCold(o ColdOptions) ([]ColdResult, error) {
	if o.Checks <= 0 {
		o.Checks = 150
	}
	lab, err := config.Compile(labs.TestbedSpec())
	if err != nil {
		return nil, fmt.Errorf("eval: cold: %w", err)
	}
	streams := make(map[string][]geom.Vec3, len(coldArms))
	for _, arm := range coldArms {
		streams[arm] = coldTargets(arm, o.Checks, o.Seed)
	}

	// Warm the shared plan cache: plan keys are value-based (chain, from,
	// target), so solutions computed here are hits in every measurement
	// run. The mirrors stay at home (the benchmark never Observes), so
	// the measured runs replay the exact same keys.
	pc := kin.NewPlanCache(0)
	warm, err := newColdSim(lab, ColdModeIndexed, pc, nil)
	if err != nil {
		return nil, fmt.Errorf("eval: cold: %w", err)
	}
	for _, arm := range coldArms {
		for _, tgt := range streams[arm] {
			_ = warm.ValidTrajectory(action.Command{Device: arm, Action: action.MoveRobot, Target: tgt}, state.Snapshot(nil))
		}
	}

	var out []ColdResult
	for _, mode := range []string{ColdModeLegacy, ColdModeBrute, ColdModeIndexed} {
		for _, context := range []string{ColdContextSerial, ColdContextSharded} {
			r, err := runCold(lab, mode, context, streams, pc)
			if err != nil {
				return nil, err
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

// ColdSpeedup returns the legacy over indexed ratio of serial-context
// p95 check latency — the tentpole's ≥10x claim — or 0 if either row is
// missing.
func ColdSpeedup(rows []ColdResult) float64 {
	var legacy, indexed time.Duration
	for _, r := range rows {
		if r.Context != ColdContextSerial {
			continue
		}
		switch r.Mode {
		case ColdModeLegacy:
			legacy = r.P95
		case ColdModeIndexed:
			indexed = r.P95
		}
	}
	if legacy <= 0 {
		return 0
	}
	if indexed < time.Nanosecond {
		indexed = time.Nanosecond
	}
	return float64(legacy) / float64(indexed)
}

// RenderCold prints the benchmark rows.
func RenderCold(rows []ColdResult) string {
	out := fmt.Sprintf("%-8s %-8s %7s %8s %10s %10s %10s %9s %12s %9s\n",
		"Mode", "Context", "checks", "accepts", "wall", "p50", "p95",
		"plan h/m", "pruned/kept", "rebuilds")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s %-8s %7d %8d %10s %10s %10s %9s %12s %9d\n",
			r.Mode, r.Context, r.Checks, r.Accepts, r.Wall.Round(time.Millisecond),
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
			fmt.Sprintf("%d/%d", r.PlanHits, r.PlanMisses),
			fmt.Sprintf("%d/%d", r.Pruned, r.Kept), r.Rebuilds)
	}
	if sp := ColdSpeedup(rows); sp > 0 {
		out += fmt.Sprintf("\ncold p95 speedup (legacy/indexed, serial): %.1fx\n", sp)
	}
	return out
}
