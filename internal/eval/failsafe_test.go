package eval

import (
	"testing"

	rabit "repro"
	"repro/internal/action"
	"repro/internal/state"
)

// TestFailSafeParksTheArm implements Section II-B's caveat: preemptively
// freezing can itself be dangerous ("if a robot arm is left holding a
// volatile substance, a person can bump into it"), so a fail-safe handler
// can be installed that — as a hardwired reflex outside the stopped
// engine — parks the arm in its sleep pose when an alert fires.
func TestFailSafeParksTheArm(t *testing.T) {
	var sys *rabit.System
	failSafe := func(a rabit.Alert) {
		// The reflex bypasses the (now stopped) engine and commands the
		// environment directly: fold the arm out of everyone's way.
		_ = sys.Env.Execute(action.Command{Device: "viperx", Action: action.MoveSleep})
	}
	var err error
	sys, err = rabit.NewTestbed(rabit.Options{FailSafe: failSafe})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	// Provoke an alert: drive toward the closed dosing device.
	if err := sys.Session.Arm("viperx").GoToLocation("dd_approach"); err != nil {
		t.Fatal(err)
	}
	err = sys.Session.Arm("viperx").GoToLocation("dd_safe_height")
	if err == nil {
		t.Fatal("unsafe move accepted")
	}
	// The engine is stopped…
	if sys.Stopped() == nil {
		t.Fatal("engine should be stopped")
	}
	// …but the fail-safe reflex already parked the arm.
	a, _ := sys.Env.World().Arm("viperx")
	if !a.Asleep {
		t.Fatal("fail-safe reflex did not park the arm")
	}
	// Ground truth: parking from the approach point caused no damage.
	if evs := sys.Env.World().Events(); len(evs) != 0 {
		t.Fatalf("fail-safe parking caused damage: %v", evs)
	}
}

// TestFailSafeObservedByRestart shows the recovery path: after the
// fail-safe reflex, restarting the engine re-acquires S_initial and the
// observed state matches reality (the arm reports asleep).
func TestFailSafeObservedByRestart(t *testing.T) {
	var sys *rabit.System
	var err error
	sys, err = rabit.NewTestbed(rabit.Options{
		FailSafe: func(rabit.Alert) {
			_ = sys.Env.Execute(action.Command{Device: "viperx", Action: action.MoveSleep})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	_ = sys.Session.Arm("viperx").GoToLocation("dd_safe_height") // alert + reflex
	sys.Engine.Start()
	if !sys.Engine.Model().GetBool(state.ArmAsleep("viperx")) {
		t.Fatal("restarted engine should observe the parked arm")
	}
	// The deck is quiesced; normal work resumes.
	if err := sys.Session.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		t.Fatalf("post-recovery move failed: %v", err)
	}
}
