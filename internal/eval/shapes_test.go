package eval

import (
	"testing"

	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/rules"
)

// shapeSpec adds a mockup to the testbed, either as a plain cuboid or as
// a dome (the Section V-C shape extension: a centrifuge "resembles a
// hemisphere more than a cuboid").
func shapeSpec(shape string) *config.LabSpec {
	spec := labs.TestbedSpec()
	spec.Devices = append(spec.Devices, config.DeviceSpec{
		ID: "dome_mockup", Type: "action_device", Kind: "thermoshaker", ClassName: "CardboardMockup",
		Shape: shape,
		Cuboid: config.BoxSpec{
			Min: config.Vec{X: 0.40, Y: -0.30, Z: 0},
			Max: config.Vec{X: 0.54, Y: -0.16, Z: 0.14},
		},
	})
	return spec
}

// TestRoundedShapesRelaxCornerClearance: a gripper working just above the
// cuboid's top corner is flagged under the cuboid model but passes under
// the dome model — and the physical world agrees, so the refinement
// removes a false positive rather than hiding a real collision.
func TestRoundedShapesRelaxCornerClearance(t *testing.T) {
	// The probe descends over the box corner: inside the cuboid's
	// collision margin, outside the inscribed dome.
	probe := geom.V(0.52, -0.18, 0.19)

	for _, tc := range []struct {
		shape     string
		wantAlert bool
	}{
		{"", true},      // cuboid: corner counts as solid
		{"dome", false}, // dome: the corner is air
	} {
		s, err := NewSetup(shapeSpec(tc.shape), Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Session.Arm("ned2").GoSleep(); err != nil {
			t.Fatal(err)
		}
		err = s.Session.Arm("viperx").MovePose(probe)
		if tc.wantAlert && err == nil {
			t.Errorf("shape %q: corner move should be flagged", tc.shape)
		}
		if !tc.wantAlert {
			if err != nil {
				t.Errorf("shape %q: corner move should pass: %v", tc.shape, err)
			}
			// Ground truth agrees: no damage happened.
			if evs := s.Env.World().Events(); len(evs) != 0 {
				t.Errorf("shape %q: physical damage: %v", tc.shape, evs)
			}
		}
	}
}

// TestRoundedShapeStillBlocksRealCollisions: driving straight into the
// dome's centre is caught under both models, by the target check and by
// the Extended Simulator.
func TestRoundedShapeStillBlocksRealCollisions(t *testing.T) {
	s, err := NewSetup(shapeSpec("dome"), Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true, WithSim: true,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Session.Arm("ned2").GoSleep(); err != nil {
		t.Fatal(err)
	}
	err = s.Session.Arm("viperx").MovePose(geom.V(0.47, -0.23, 0.12))
	if err == nil {
		t.Fatal("move into the dome's core accepted")
	}
}

// TestShapeLint verifies the configuration guard rails for shapes.
func TestShapeLint(t *testing.T) {
	spec := shapeSpec("pyramid")
	if ds := config.Lint(spec); !config.HasErrors(ds) {
		t.Error("unknown shape accepted")
	}
	spec2 := shapeSpec("dome")
	for i := range spec2.Devices {
		if spec2.Devices[i].ID == "dome_mockup" {
			spec2.Devices[i].Interior = &config.BoxSpec{
				Min: config.Vec{X: 0.42, Y: -0.28, Z: 0.02},
				Max: config.Vec{X: 0.52, Y: -0.18, Z: 0.12},
			}
		}
	}
	if ds := config.Lint(spec2); !config.HasErrors(ds) {
		t.Error("rounded shape with an interior accepted")
	}
}
