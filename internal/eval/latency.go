package eval

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/workflow"
)

// StageLatency summarises one pipeline stage's histogram for the
// breakdown columns.
type StageLatency struct {
	// Count is how many spans the stage recorded.
	Count int64
	// P50 and P95 are the stage's median and tail latency estimates.
	P50 time.Duration
	P95 time.Duration
}

// LatencyResult is one row of the Section II-C latency experiment.
type LatencyResult struct {
	// Mode names the configuration.
	Mode string
	// Commands is how many commands the workload issued.
	Commands int
	// CheckPerCommand is RABIT's mean checking time per command.
	CheckPerCommand time.Duration
	// ExecPerCommand is the mean (paced) execution time per command.
	ExecPerCommand time.Duration
	// OverheadPct is check time relative to execution time — the
	// paper's 1.5% (no simulator) and 112% (simulator with GUI).
	OverheadPct float64
	// Validate, Trajectory, and Compare decompose the check time per
	// stage, sourced from the engine's telemetry histograms. Trajectory
	// is zero-count without the Extended Simulator.
	Validate   StageLatency
	Trajectory StageLatency
	Compare    StageLatency
	// SimKept and SimPruned count solids/planes the Extended Simulator's
	// broadphase kept for (resp. pruned from) the narrow phase, summed
	// over the workload's trajectory checks. Both zero without the
	// simulator (or with its GUI, which disables pruning).
	SimKept   int64
	SimPruned int64
}

// stageLatency reads one stage histogram out of a registry.
func stageLatency(reg *obs.Registry, stage string) StageLatency {
	h := reg.Histogram(stage)
	return StageLatency{Count: h.Count(), P50: h.P50(), P95: h.P95()}
}

// Latency measures RABIT's interception overhead over the safe Fig. 5
// workload, under real-time pacing (device time divided by speedup):
// once without the Extended Simulator, once with it headless, and once
// with its GUI rendering every collision check — the deployment the
// paper measured at 112% overhead.
func Latency(seed int64, speedup float64) ([]LatencyResult, error) {
	modes := []struct {
		name string
		opt  Options
	}{
		{"RABIT (no simulator)", Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, Seed: seed,
		}},
		{"RABIT + Extended Simulator (headless)", Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, WithSim: true, Seed: seed,
		}},
		{"RABIT + Extended Simulator (GUI)", Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, WithSim: true, SimGUI: true, Seed: seed,
		}},
	}
	var out []LatencyResult
	for _, m := range modes {
		s, err := NewTestbedSetup(m.opt)
		if err != nil {
			return nil, fmt.Errorf("eval: latency %s: %w", m.name, err)
		}
		s.Env.SetPacing(speedup)
		start := time.Now()
		if err := workflow.RunSteps(s.Session, workflow.Fig5Workflow()); err != nil {
			return nil, fmt.Errorf("eval: latency %s: workload failed: %w", m.name, err)
		}
		total := time.Since(start)
		check, commands := s.Engine.CheckOverhead()
		exec := total - check
		if commands == 0 {
			commands = 1
		}
		res := LatencyResult{
			Mode:            m.name,
			Commands:        commands,
			CheckPerCommand: check / time.Duration(commands),
			ExecPerCommand:  exec / time.Duration(commands),
			Validate:        stageLatency(s.Obs, obs.StageValidate),
			Trajectory:      stageLatency(s.Obs, obs.StageTrajectory),
			Compare:         stageLatency(s.Obs, obs.StageCompare),
			SimKept:         s.Obs.Counter(obs.CounterSimBroadphaseKept).Value(),
			SimPruned:       s.Obs.Counter(obs.CounterSimBroadphasePruned).Value(),
		}
		if exec > 0 {
			res.OverheadPct = 100 * float64(check) / float64(exec)
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderLatency prints the latency rows with the per-stage breakdown
// (median latency per stage; "—" marks a stage that never ran) and the
// simulator's broadphase pruning ratio.
func RenderLatency(rows []LatencyResult) string {
	out := fmt.Sprintf("%-42s %10s %14s %14s %10s %12s %12s %12s %20s\n",
		"Configuration", "commands", "check/cmd", "exec/cmd", "overhead",
		"validate p50", "traj p50", "compare p50", "pruned/kept (ratio)")
	stage := func(sl StageLatency) string {
		if sl.Count == 0 {
			return "—"
		}
		return sl.P50.String()
	}
	for _, r := range rows {
		pruneCol := "—"
		if r.SimKept+r.SimPruned > 0 {
			pruneCol = fmt.Sprintf("%d/%d (%.0f%%)", r.SimPruned, r.SimKept,
				100*float64(r.SimPruned)/float64(r.SimPruned+r.SimKept))
		}
		out += fmt.Sprintf("%-42s %10d %14s %14s %9.1f%% %12s %12s %12s %20s\n",
			r.Mode, r.Commands, r.CheckPerCommand, r.ExecPerCommand, r.OverheadPct,
			stage(r.Validate), stage(r.Trajectory), stage(r.Compare), pruneCol)
	}
	return out
}
