package eval

import (
	"math"
	"testing"

	"repro/internal/env"
	"repro/internal/rules"
	"repro/internal/workflow"
)

// TestSolubilityDoseSweep runs the Fig. 1(b) experiment across a sweep of
// solid doses on the production deck and checks that the robot-measured
// solvent requirement tracks the substrate's dissolution chemistry
// (2 mg/mL): the science survives the full interception stack.
func TestSolubilityDoseSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	for _, doseMg := range []float64{2, 4, 6, 8} {
		s, err := NewProductionSetup(Options{
			Stage:     env.StageProduction,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexNone},
			WithRABIT: true,
			Seed:      int64(10 + doseMg),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := workflow.DefaultSolubilityParams()
		p.AmountMg = doseMg
		res, err := workflow.RunSolubility(s.Session, p)
		if err != nil {
			t.Fatalf("dose %.0f mg: %v", doseMg, err)
		}
		if !res.Dissolved {
			t.Errorf("dose %.0f mg did not dissolve (%.2f)", doseMg, res.FinalFraction)
		}
		// Solubility is 2 mg/mL and solvent is added in 1 mL steps, so
		// the workflow needs ⌈dose/2⌉ mL (within one step of noise).
		need := math.Ceil(doseMg / 2)
		if math.Abs(res.SolventML-need) > 1.01 {
			t.Errorf("dose %.0f mg used %.1f mL, want ≈%.0f", doseMg, res.SolventML, need)
		}
		if alerts := s.Engine.Alerts(); len(alerts) != 0 {
			t.Errorf("dose %.0f mg: false positives %v", doseMg, alerts)
		}
	}
}
