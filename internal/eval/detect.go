package eval

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/bugs"
	"repro/internal/env"
	otrace "repro/internal/obs/trace"
	"repro/internal/rules"
	"repro/internal/workflow"
	"repro/internal/world"
)

// ConfigName identifies one of the three engine configurations the
// paper's narrative steps through.
type ConfigName string

// The three configurations of Section IV's summary.
const (
	ConfigInitial     ConfigName = "initial"
	ConfigModified    ConfigName = "modified"
	ConfigModifiedSim ConfigName = "modified+sim"
)

// StudyConfigs returns the three configurations in narrative order.
func StudyConfigs() []ConfigName {
	return []ConfigName{ConfigInitial, ConfigModified, ConfigModifiedSim}
}

// options maps a configuration name to harness options.
func (c ConfigName) options(seed int64) Options {
	switch c {
	case ConfigInitial:
		return Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenInitial, Multiplex: rules.MultiplexNone},
			WithRABIT: true, Seed: seed,
		}
	case ConfigModified:
		return Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, Seed: seed,
		}
	case ConfigModifiedSim:
		return Options{
			Stage:     env.StageTestbed,
			Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
			WithRABIT: true, WithSim: true, Seed: seed,
		}
	default:
		return Options{}
	}
}

// BugOutcome records what actually happened when one bug ran under every
// configuration, plus the unprotected ground truth.
type BugOutcome struct {
	Bug bugs.Bug
	// Detected reports whether RABIT raised any alert, per configuration.
	Detected map[ConfigName]bool
	// AlertKinds records the first alert's kind per configuration ("" if
	// none).
	AlertKinds map[ConfigName]string
	// GroundTruthDamage is the damage log of the unprotected run.
	GroundTruthDamage []world.Event
	// GroundTruthCost is the unscaled damage cost of the unprotected run.
	GroundTruthCost float64
}

// BugStudy is the full Section IV study.
type BugStudy struct {
	Outcomes []BugOutcome
}

// RunBugStudy replays all sixteen bugs under the three configurations and
// once unprotected.
func RunBugStudy(seed int64) (*BugStudy, error) {
	return RunBugStudyWithIncidents(seed, "")
}

// RunBugStudyWithIncidents is RunBugStudy with forensics: when
// incidentDir is non-empty, the fully equipped configuration
// (modified+sim) runs with the flight recorder writing incident bundles
// there, one per detected bug, tagged with the bug's slug. The other
// configurations run untagged so each detection maps to exactly one
// bundle.
func RunBugStudyWithIncidents(seed int64, incidentDir string) (*BugStudy, error) {
	return RunBugStudyForensics(seed, incidentDir, "")
}

// RunBugStudyForensics is the fully instrumented study: incident bundles
// as in RunBugStudyWithIncidents, plus — when traceFile is non-empty —
// every causal trace the fully equipped configuration's tail sampler
// retains appended to traceFile as OTLP-JSON lines. Detected bugs always
// retain their trace (the alert pins it), so each incident bundle's
// manifest trace ID resolves in the file; `rabiteval -trace` renders it.
func RunBugStudyForensics(seed int64, incidentDir, traceFile string) (*BugStudy, error) {
	var exporter *otrace.FileExporter
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, fmt.Errorf("eval: trace file: %w", err)
		}
		exporter = otrace.NewFileExporter(f)
		defer exporter.Close()
	}
	study := &BugStudy{}
	for _, b := range bugs.Suite() {
		out := BugOutcome{
			Bug:        b,
			Detected:   make(map[ConfigName]bool, 3),
			AlertKinds: make(map[ConfigName]string, 3),
		}
		for _, cfg := range StudyConfigs() {
			o := cfg.options(seed)
			if cfg == ConfigModifiedSim {
				if incidentDir != "" {
					o.IncidentDir = incidentDir
					o.IncidentTag = b.Slug
				}
				if exporter != nil {
					o.TraceExporter = exporter
				}
			}
			detected, kind, err := runBugOnce(b, o)
			if err != nil {
				return nil, fmt.Errorf("eval: bug %d (%s) under %s: %w", b.ID, b.Slug, cfg, err)
			}
			out.Detected[cfg] = detected
			out.AlertKinds[cfg] = kind
		}
		// Unprotected ground truth.
		s, err := NewTestbedSetup(Options{Stage: env.StageTestbed, WithRABIT: false, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("eval: bug %d baseline: %w", b.ID, err)
		}
		steps := b.Mutate(s.Session)
		_ = workflow.RunSteps(s.Session, steps) // failures ARE the ground truth
		out.GroundTruthDamage = s.Env.World().Events()
		out.GroundTruthCost = s.Env.World().DamageCost()
		s.Close()
		study.Outcomes = append(study.Outcomes, out)
	}
	if exporter != nil {
		if err := exporter.Close(); err != nil {
			return nil, fmt.Errorf("eval: trace file: %w", err)
		}
	}
	return study, nil
}

// runBugOnce replays one bug under one configuration; detected is whether
// the engine raised any alert.
func runBugOnce(b bugs.Bug, o Options) (bool, string, error) {
	s, err := NewTestbedSetup(o)
	if err != nil {
		return false, "", err
	}
	// Close drains the run, which settles the trace's tail-sampling
	// decision and exports it to any injected exporter.
	defer s.Close()
	steps := b.Mutate(s.Session)
	_ = workflow.RunSteps(s.Session, steps) // the error is the alert/crash itself
	alerts := s.Engine.Alerts()
	if len(alerts) == 0 {
		return false, "", nil
	}
	return true, alerts[0].Kind.String(), nil
}

// DetectedCount returns how many bugs a configuration detected.
func (st *BugStudy) DetectedCount(cfg ConfigName) int {
	n := 0
	for _, o := range st.Outcomes {
		if o.Detected[cfg] {
			n++
		}
	}
	return n
}

// DetectionRate returns the detection percentage for a configuration.
func (st *BugStudy) DetectionRate(cfg ConfigName) float64 {
	if len(st.Outcomes) == 0 {
		return 0
	}
	return 100 * float64(st.DetectedCount(cfg)) / float64(len(st.Outcomes))
}

// TableVRow is one row of Table V.
type TableVRow struct {
	Severity world.Severity
	Total    int
	Detected int // under the modified configuration, as in the paper
}

// TableV aggregates the study into the paper's Table V.
func (st *BugStudy) TableV() []TableVRow {
	bySev := map[world.Severity]*TableVRow{}
	for _, o := range st.Outcomes {
		r, ok := bySev[o.Bug.Severity]
		if !ok {
			r = &TableVRow{Severity: o.Bug.Severity}
			bySev[o.Bug.Severity] = r
		}
		r.Total++
		if o.Detected[ConfigModified] {
			r.Detected++
		}
	}
	rows := make([]TableVRow, 0, len(bySev))
	for _, r := range bySev {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Severity < rows[j].Severity })
	return rows
}

// Outcome finds a bug's outcome by ID.
func (st *BugStudy) Outcome(id int) (BugOutcome, bool) {
	for _, o := range st.Outcomes {
		if o.Bug.ID == id {
			return o, true
		}
	}
	return BugOutcome{}, false
}
