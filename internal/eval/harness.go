// Package eval is the evaluation harness: it reproduces every table and
// figure of the paper's evaluation (Tables I, III, IV, V; the Fig. 5/6
// bug study; the Section II-C latency measurements; the Section IV
// detection-rate progression) by running the full RABIT stack over the
// simulated stages.
package eval

import (
	"fmt"

	rabit "repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// Options selects one experimental configuration.
type Options struct {
	// Stage is the deployment stage to build.
	Stage env.Stage
	// Rules selects the RABIT generation and multiplexing policy.
	Rules rules.Config
	// WithRABIT attaches the engine; false runs the bare lab (the
	// no-protection baseline used for ground-truth damage measurements).
	WithRABIT bool
	// WithSim attaches the Extended Simulator.
	WithSim bool
	// SimGUI enables the simulator's offscreen GUI rendering (the
	// overhead experiment).
	SimGUI bool
	// SerialPipeline forces the engine's global single-lock pipeline —
	// the seed design — instead of per-device sharding. The
	// sequential-vs-sharded parity tests and the throughput baseline
	// run with it.
	SerialPipeline bool
	// NoMotionCache disables the motion-planning fast path (plan cache,
	// verdict cache, speculative lookahead) — the motion benchmark's
	// before/after switch.
	NoMotionCache bool
	// NoSpeculation keeps the caches but turns off the engine's
	// speculative lookahead worker.
	NoSpeculation bool
	// IncidentDir is where the flight recorder writes incident bundles
	// (empty: ring only).
	IncidentDir string
	// IncidentTag labels this run's bundles (the bug study tags each
	// injection's bundles with the bug slug).
	IncidentTag string
	// NoRecorder disables the flight recorder — the recorder-overhead
	// benchmark's before/after switch and the observer-effect property
	// test's control arm.
	NoRecorder bool
	// NoTracing disables the causal tracing layer — the trace-overhead
	// benchmark's before/after switch.
	NoTracing bool
	// NoRuleMetrics disables the per-rule labeled metric families — the
	// labeled-observability overhead benchmark's before/after switch.
	NoRuleMetrics bool
	// TraceFile is where retained traces are exported as OTLP-JSON lines
	// (empty: in-memory retention only).
	TraceFile string
	// TraceExporter injects a trace exporter directly (tests share one
	// FileExporter across several runs). TraceFile wins when both are set.
	TraceExporter otrace.Exporter
	// Seed drives all stochastic fidelity noise.
	Seed int64
}

// DefaultOptions is the modified-RABIT testbed configuration most
// experiments start from.
func DefaultOptions() Options {
	return Options{
		Stage:     env.StageTestbed,
		Rules:     rules.Config{Generation: rules.GenModified, Multiplex: rules.MultiplexTime},
		WithRABIT: true,
		Seed:      1,
	}
}

// Setup is one fully wired experimental stack.
type Setup struct {
	Lab         *config.Lab
	Env         *env.Env
	Engine      *core.Engine
	Simulator   *sim.Simulator
	Interceptor *trace.Interceptor
	Session     *workflow.Session
	Obs         *obs.Registry
	Recorder    *recorder.Recorder
	Tracer      *otrace.Tracer
	System      *rabit.System
	Opt         Options
}

// Close drains the stack (finishing any open trace) and releases its
// process-global registrations. Idempotent; safe on a nil Setup.
func (s *Setup) Close() error {
	if s == nil || s.System == nil {
		return nil
	}
	return s.System.Close()
}

// NewSetup wires a stack for an arbitrary lab spec via the public facade.
func NewSetup(spec *config.LabSpec, o Options) (*Setup, error) {
	sys, err := rabit.New(spec, rabit.Options{
		Stage:             o.Stage,
		Generation:        o.Rules.Generation,
		Multiplex:         o.Rules.Multiplex,
		Unprotected:       !o.WithRABIT,
		ExtendedSimulator: o.WithSim,
		SimulatorGUI:      o.SimGUI,
		SerialPipeline:    o.SerialPipeline,
		NoMotionCache:     o.NoMotionCache,
		NoSpeculation:     o.NoSpeculation,
		IncidentDir:       o.IncidentDir,
		IncidentTag:       o.IncidentTag,
		NoRecorder:        o.NoRecorder,
		NoTracing:         o.NoTracing,
		NoRuleMetrics:     o.NoRuleMetrics,
		TraceFile:         o.TraceFile,
		TraceExporter:     o.TraceExporter,
		Seed:              o.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	return &Setup{
		Lab:         sys.Lab,
		Env:         sys.Env,
		Engine:      sys.Engine,
		Simulator:   sys.Simulator,
		Interceptor: sys.Interceptor,
		Session:     sys.Session,
		Obs:         sys.Obs,
		Recorder:    sys.Recorder,
		Tracer:      sys.Tracer,
		System:      sys,
		Opt:         o,
	}, nil
}

// NewTestbedSetup wires the testbed deck.
func NewTestbedSetup(o Options) (*Setup, error) {
	return NewSetup(labs.TestbedSpec(), o)
}

// NewProductionSetup wires the Hein production deck.
func NewProductionSetup(o Options) (*Setup, error) {
	return NewSetup(labs.HeinProductionSpec(), o)
}

// NewBerlinguetteSetup wires the Berlinguette deck.
func NewBerlinguetteSetup(o Options) (*Setup, error) {
	return NewSetup(labs.BerlinguetteSpec(), o)
}
