package eval

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/labs"
)

// PilotMistake is one configuration error of the classes participant P
// made during the paper's pilot study (Section V-A).
type PilotMistake struct {
	// Name identifies the mistake.
	Name string
	// Class is "syntax" or "semantic".
	Class string
	// Corrupt applies the mistake to a pristine config. Syntax mistakes
	// edit the serialized JSON; semantic ones edit the spec.
	CorruptJSON func(data []byte) []byte
	CorruptSpec func(spec *config.LabSpec)
}

// PilotMistakes returns the mistake corpus: the concrete errors the paper
// reports (a negative sign instead of a positive one, JSON syntax errors)
// plus the adjacent classes a JSON-naive researcher makes.
func PilotMistakes() []PilotMistake {
	return []PilotMistake{
		{
			Name: "trailing-comma", Class: "syntax",
			CorruptJSON: func(data []byte) []byte {
				// Turn the last "}\n}" into "},\n}" — the classic.
				s := string(data)
				i := strings.LastIndex(s, "}")
				j := strings.LastIndex(s[:i], "}")
				return []byte(s[:j+1] + "," + s[j+1:])
			},
		},
		{
			Name: "unquoted-key", Class: "syntax",
			CorruptJSON: func(data []byte) []byte {
				return []byte(strings.Replace(string(data), `"floor_z"`, `floor_z`, 1))
			},
		},
		{
			Name: "misspelled-field", Class: "syntax",
			CorruptJSON: func(data []byte) []byte {
				return []byte(strings.Replace(string(data), `"floor_z"`, `"floor_zz"`, 1))
			},
		},
		{
			Name: "negative-sign-in-location", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				// The paper: "participant P accidentally entered a
				// negative sign instead of a positive sign in a location".
				spec.Locations[0].DeckPos.Z = -spec.Locations[0].DeckPos.Z
			},
		},
		{
			Name: "mistyped-class-name", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				spec.Devices[0].ClassName += "s"
			},
		},
		{
			Name: "swapped-cuboid-corners", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				d := &spec.Devices[0]
				d.Cuboid.Min, d.Cuboid.Max = d.Cuboid.Max, d.Cuboid.Min
			},
		},
		{
			Name: "dangling-owner", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				spec.Locations[0].Owner = "dosing_devce" // typo
			},
		},
		{
			Name: "duplicate-device-id", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				spec.Devices[1].ID = spec.Devices[0].ID
			},
		},
		{
			Name: "threshold-above-rating", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				for i := range spec.Devices {
					if spec.Devices[i].MaxSafeValue > 0 {
						spec.Devices[i].ActionThreshold = spec.Devices[i].MaxSafeValue * 2
						return
					}
				}
			},
		},
		{
			Name: "container-on-missing-location", Class: "semantic",
			CorruptSpec: func(spec *config.LabSpec) {
				spec.Containers[0].Location = "grid_NWW"
			},
		},
	}
}

// PilotResult is the linter's verdict on one mistake.
type PilotResult struct {
	Mistake  PilotMistake
	Caught   bool
	Severity config.Severity
	Message  string
}

// RunPilotStudy corrupts the testbed configuration once per mistake and
// runs the linter — the tooling the paper concludes the pilot study
// called for.
func RunPilotStudy() ([]PilotResult, error) {
	var out []PilotResult
	for _, m := range PilotMistakes() {
		pristine := labs.TestbedSpec()
		var diags []config.Diagnostic
		if m.CorruptJSON != nil {
			data, err := json.MarshalIndent(pristine, "", "  ")
			if err != nil {
				return nil, fmt.Errorf("eval: pilot %s: %w", m.Name, err)
			}
			spec, ds := config.Parse(m.CorruptJSON(data))
			diags = ds
			if spec != nil {
				diags = append(diags, config.Lint(spec)...)
			}
		} else {
			m.CorruptSpec(pristine)
			diags = config.Lint(pristine)
		}
		res := PilotResult{Mistake: m}
		for _, d := range diags {
			if d.Severity == config.SevError {
				res.Caught = true
				res.Severity = d.Severity
				res.Message = d.String()
				break
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderPilot prints the pilot-study results.
func RenderPilot(results []PilotResult) string {
	out := fmt.Sprintf("%-34s %-9s %s\n", "Mistake", "class", "linter verdict")
	for _, r := range results {
		verdict := "MISSED"
		if r.Caught {
			verdict = "caught: " + r.Message
		}
		out += fmt.Sprintf("%-34s %-9s %s\n", r.Mistake.Name, r.Mistake.Class, verdict)
	}
	return out
}
