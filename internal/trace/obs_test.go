package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/obs"
)

// TestJSONLRoundTripLargeRecord exercises lines far beyond bufio's
// default 64 KiB scanner buffer — real traces carry long alert details
// (a blocked command's full violation list).
func TestJSONLRoundTripLargeRecord(t *testing.T) {
	big := strings.Repeat("v", 100*1024)
	recs := []Record{
		{Seq: 1, Outcome: "blocked", Detail: big, Cmd: cmdOpen()},
		{Seq: 2, Outcome: "ok", Cmd: cmdOpen()},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100*1024 {
		t.Fatalf("suspiciously small encoding: %d bytes", buf.Len())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost records: %d", len(got))
	}
	if got[0].Detail != big {
		t.Fatalf("large detail corrupted: %d bytes back", len(got[0].Detail))
	}
	if got[1].Outcome != "ok" {
		t.Fatalf("record after the large line corrupted: %+v", got[1])
	}
}

// seqChecker blocks exactly one sequence number.
type seqChecker struct {
	blockSeq int
	err      error
}

func (c *seqChecker) Before(cmd action.Command) error {
	if cmd.Seq == c.blockSeq {
		return c.err
	}
	return nil
}

func (c *seqChecker) After(action.Command) error { return nil }

// TestReplayStopsAtFirstBlocked replays a recorded stream into an
// interceptor whose checker blocks the second command: the replay must
// stop right there, wrap the checker's error (errors.Is-visible), cite
// the offending record, and never reach the remaining commands.
func TestReplayStopsAtFirstBlocked(t *testing.T) {
	rec := NewInterceptor(nil, &fakeExecutor{})
	for i := 0; i < 4; i++ {
		if err := rec.Do(cmdOpen()); err != nil {
			t.Fatal(err)
		}
	}

	sentinel := errors.New("mux conflict")
	ex := &fakeExecutor{}
	i := NewInterceptor(&seqChecker{blockSeq: 2, err: sentinel}, ex)
	err := Replay(i, rec.Records())
	if err == nil {
		t.Fatal("replay did not stop at the blocked command")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("checker error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "replaying #2") {
		t.Errorf("error should cite record #2: %v", err)
	}
	recs := i.Records()
	if len(recs) != 2 || recs[0].Outcome != "ok" || recs[1].Outcome != "blocked" {
		t.Fatalf("replay records wrong: %+v", recs)
	}
	if len(ex.cmds) != 1 {
		t.Fatalf("commands after the block still executed: %d", len(ex.cmds))
	}
}

func TestInterceptorTelemetry(t *testing.T) {
	reg := obs.NewRegistry("interceptor")
	mem := &obs.MemorySink{}
	reg.SetSink(mem)
	ch := &fakeChecker{}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)
	i.SetObserver(reg)

	if err := i.Do(cmdOpen()); err != nil {
		t.Fatal(err)
	}
	ch.beforeErr = errors.New("unsafe")
	if err := i.Do(cmdOpen()); err == nil {
		t.Fatal("blocked command returned nil")
	}

	snap := reg.Snapshot()
	if got := snap.Counter(obs.PrefixOutcome + "ok"); got != 1 {
		t.Errorf("outcome.ok = %d, want 1", got)
	}
	if got := snap.Counter(obs.PrefixOutcome + "blocked"); got != 1 {
		t.Errorf("outcome.blocked = %d, want 1", got)
	}
	if got := snap.Counter(obs.PrefixDevice + "dd.ok"); got != 1 {
		t.Errorf("device.dd.ok = %d, want 1", got)
	}
	if got := snap.Counter(obs.PrefixDevice + "dd.blocked"); got != 1 {
		t.Errorf("device.dd.blocked = %d, want 1", got)
	}
	if hs, ok := snap.Histogram(obs.StageIntercept); !ok || hs.Count != 2 {
		t.Errorf("intercept histogram = %+v (ok=%v), want 2 spans", hs, ok)
	}
	// Execute ran only for the ok command.
	if hs, ok := snap.Histogram(obs.StageExecute); !ok || hs.Count != 1 {
		t.Errorf("execute histogram = %+v (ok=%v), want 1 span", hs, ok)
	}

	evs := mem.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 command events, got %+v", evs)
	}
	if evs[0].Kind != "command" || evs[0].Outcome != "ok" || evs[0].Device != "dd" || evs[0].Seq != 1 {
		t.Errorf("event 0 wrong: %+v", evs[0])
	}
	if evs[1].Outcome != "blocked" || evs[1].Detail == "" {
		t.Errorf("event 1 wrong: %+v", evs[1])
	}
}

func TestDoConcurrentTelemetry(t *testing.T) {
	reg := obs.NewRegistry("interceptor")
	i := NewInterceptor(&fakeChecker{}, &fakeExecutor{})
	i.SetObserver(reg)
	cmds := []action.Command{
		{Device: "a1", Action: action.MoveRobot, Target: geom.V(0.1, 0, 0.2)},
		{Device: "a2", Action: action.MoveRobot, Target: geom.V(0.3, 0, 0.2)},
	}
	if err := i.DoConcurrent(cmds); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.PrefixOutcome + "ok"); got != 2 {
		t.Errorf("outcome.ok = %d, want 2 (one per batched command)", got)
	}
	if hs, _ := snap.Histogram(obs.StageIntercept); hs.Count != 1 {
		t.Errorf("intercept spans = %d, want 1 (one per batch)", hs.Count)
	}
}
