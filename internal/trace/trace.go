// Package trace is the reproduction of RATracer, the instrumentation
// framework the paper reconfigures (Section II-C): every device command an
// experiment script issues flows through an Interceptor, which first asks
// a checker (RABIT) whether the command is safe, then forwards it for
// execution, then lets the checker inspect the post-state. The interceptor
// also records RAD-style command traces, which the radmine package mines
// for rules (Section II-A).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
)

// Record is one traced command, in the style of the Robot Arm Dataset
// (RAD): what was issued, when, and how it ended.
type Record struct {
	Seq     int            `json:"seq"`
	Time    time.Duration  `json:"t"`
	Cmd     action.Command `json:"cmd"`
	Outcome string         `json:"outcome"` // "ok", "blocked", "error"
	Detail  string         `json:"detail,omitempty"`
}

// Checker is the RABIT side of the interception: Before runs the Fig. 2
// validation (lines 5–10) and returns an error to block the command;
// After runs the post-state comparison (lines 13–15).
type Checker interface {
	Before(cmd action.Command) error
	After(cmd action.Command) error
}

// Hinter is an optional Checker extension: Hint(cur, next) tells the
// checker that next is queued behind the currently executing cur, so it
// may pre-solve and pre-validate next's trajectory off the critical path
// (the engine's speculative lookahead). Hint must not block and must be
// safe to call with commands the checker will never actually see.
type Hinter interface {
	Hint(cur, next action.Command)
}

// Executor forwards a command to the lab for actual execution.
type Executor interface {
	Execute(cmd action.Command) error
	// Now returns the lab's current (simulated) time for trace stamps.
	Now() time.Duration
}

// Interceptor wires scripts, checker, and executor together. It is safe
// for concurrent use, though experiment scripts are sequential.
type Interceptor struct {
	mu       sync.Mutex
	checker  Checker
	executor Executor
	seq      int
	records  []Record

	// obs publishes per-command telemetry: the intercept and execute
	// stage spans, outcome counters (total and per device), and one
	// structured event per record. All nil-safe when no observer is set.
	obs        *obs.Registry
	hIntercept *obs.Histogram
	hExecute   *obs.Histogram

	// rec is the flight recorder (nil-safe): the interceptor back-fills
	// each command's black-box record with its final outcome and the
	// execution span, which the engine never sees. lastExecNS carries the
	// current call's execute span to the record() annotation.
	rec        *recorder.Recorder
	lastExecNS int64

	// tracer is the causal tracer (nil = tracing off). The interceptor
	// owns the run trace: the first command lazily opens it, every
	// command gets an "intercept" root span bound under (device, seq) so
	// the engine's stages can parent beneath it, and FinishTrace closes
	// the run and makes the tail-sampling decision.
	tracer  *otrace.Tracer
	traceID otrace.TraceID
}

// NewInterceptor builds an interceptor. checker may be nil (tracing
// without RABIT — how RATracer originally ran, and how the no-RABIT
// baselines of the evaluation run).
func NewInterceptor(checker Checker, executor Executor) *Interceptor {
	return &Interceptor{checker: checker, executor: executor}
}

// SetObserver attaches a telemetry registry (nil detaches it).
func (i *Interceptor) SetObserver(reg *obs.Registry) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.obs = reg
	i.hIntercept = reg.Histogram(obs.StageIntercept)
	i.hExecute = reg.Histogram(obs.StageExecute)
}

// SetRecorder attaches a flight recorder (nil detaches it); the
// interceptor annotates each command's record with its outcome and
// execution span.
func (i *Interceptor) SetRecorder(r *recorder.Recorder) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rec = r
}

// SetTracer attaches a causal tracer (nil detaches it). It must be the
// same tracer the checker's engine carries, or the engine's stage spans
// will not find the interceptor's bindings.
func (i *Interceptor) SetTracer(t *otrace.Tracer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.tracer = t
}

// TraceID returns the current run trace's ID (zero when tracing is off
// or no command has run since the last FinishTrace).
func (i *Interceptor) TraceID() otrace.TraceID {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.traceID
}

// FinishTrace closes the current run trace and makes the tail-sampling
// retention decision, returning the trace's ID and whether it was
// retained. The next command opens a fresh trace.
func (i *Interceptor) FinishTrace() (otrace.TraceID, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.finishTraceLocked()
}

func (i *Interceptor) finishTraceLocked() (otrace.TraceID, bool) {
	id := i.traceID
	i.traceID = otrace.TraceID{}
	if i.tracer == nil || id.IsZero() {
		return id, false
	}
	return id, i.tracer.FinishTrace(id)
}

// rootSpan lazily opens the run trace and starts one command's
// "intercept" root span, binding it under (device, seq) for the
// engine's pipeline stages. Returns nil when tracing is off (callers
// hold i.mu).
func (i *Interceptor) rootSpan(cmd action.Command) *otrace.Span {
	if i.tracer == nil {
		return nil
	}
	if i.traceID.IsZero() {
		i.traceID = i.tracer.StartTrace()
	}
	s := i.tracer.StartRoot(i.traceID, obs.StageIntercept)
	s.SetAttr("device", cmd.Device)
	s.SetAttr("action", string(cmd.Action))
	s.SetIntAttr("seq", cmd.Seq)
	i.tracer.Bind(cmd.Device, cmd.Seq, s.Context())
	return s
}

// finish closes the intercept span and publishes outcome counters and
// events for every record appended during the call (callers hold i.mu).
func (i *Interceptor) finish(span obs.Span, mark int) {
	d := span.End()
	if i.obs == nil {
		return
	}
	for _, r := range i.records[mark:] {
		i.obs.Counter(obs.PrefixOutcome + r.Outcome).Inc()
		if r.Cmd.Device != "" {
			i.obs.Counter(obs.PrefixDevice + r.Cmd.Device + "." + r.Outcome).Inc()
		}
		i.obs.Emit(obs.Event{
			T:       r.Time,
			Kind:    "command",
			Name:    string(r.Cmd.Action),
			Device:  r.Cmd.Device,
			Outcome: r.Outcome,
			Detail:  r.Detail,
			Seq:     r.Seq,
			DurNS:   d.Nanoseconds(),
		})
	}
}

// Do traces and executes one command: check → execute → post-check. A
// blocked command returns the checker's error without reaching the
// device, mirroring RATracer raising a Python exception to halt the
// experiment.
func (i *Interceptor) Do(cmd action.Command) error {
	return i.do(cmd, action.Command{}, false)
}

// DoLookahead is Do with knowledge of the next queued command: once cmd
// passes its Before check, the checker (if it is a Hinter) is hinted with
// the pair before execution starts, so a speculative lookahead can
// overlap cmd's execution time. Verdicts are identical to Do — the hint
// only warms caches.
func (i *Interceptor) DoLookahead(cmd, next action.Command) error {
	return i.do(cmd, next, true)
}

func (i *Interceptor) do(cmd, next action.Command, lookahead bool) (err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	span := i.hIntercept.Start()
	defer i.finish(span, len(i.records))
	i.seq++
	cmd.Seq = i.seq
	i.lastExecNS = 0
	root := i.rootSpan(cmd)
	if root != nil {
		defer func() {
			if err != nil {
				root.SetError(err.Error())
			}
			i.tracer.Unbind(cmd.Device, cmd.Seq)
			root.End()
		}()
	}
	if err := cmd.Validate(); err != nil {
		i.record(cmd, "error", err.Error())
		return err
	}
	if i.checker != nil {
		if err := i.checker.Before(cmd); err != nil {
			i.record(cmd, "blocked", err.Error())
			return err
		}
		if lookahead {
			if h, ok := i.checker.(Hinter); ok {
				h.Hint(cmd, next)
			}
		}
	}
	spanExec := i.hExecute.Start()
	execSpan := i.tracer.StartSpan(root.Context(), obs.StageExecute)
	execErr := i.executor.Execute(cmd)
	if execErr != nil {
		execSpan.SetError(execErr.Error())
	}
	execSpan.End()
	i.lastExecNS = spanExec.End().Nanoseconds()
	if err := execErr; err != nil {
		i.record(cmd, "error", err.Error())
		// The checker still observes the aftermath: a physical crash is
		// an execution error *and* leaves state worth comparing.
		if i.checker != nil {
			if aerr := i.checker.After(cmd); aerr != nil {
				return fmt.Errorf("%w (post-state: %v)", err, aerr)
			}
		}
		return err
	}
	if i.checker != nil {
		if err := i.checker.After(cmd); err != nil {
			i.record(cmd, "error", err.Error())
			return err
		}
	}
	i.record(cmd, "ok", "")
	return nil
}

// record appends a trace record and back-fills the command's black-box
// record, if a flight recorder is attached (callers hold i.mu).
func (i *Interceptor) record(cmd action.Command, outcome, detail string) {
	var now time.Duration
	if i.executor != nil {
		now = i.executor.Now()
	}
	i.records = append(i.records, Record{
		Seq: cmd.Seq, Time: now, Cmd: cmd, Outcome: outcome, Detail: detail,
	})
	i.rec.Annotate(cmd.Device, cmd.Seq, outcome, i.lastExecNS)
}

// ConcurrentExecutor is implemented by environments that can run several
// robot moves simultaneously (the space-multiplexing capability).
type ConcurrentExecutor interface {
	ExecuteConcurrent(cmds []action.Command) error
}

// DoConcurrent traces and executes several commands as one simultaneous
// motion: every command is checked individually before any executes, the
// environment runs them in lockstep, and post-state checks run once the
// motion settles.
func (i *Interceptor) DoConcurrent(cmds []action.Command) (err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	span := i.hIntercept.Start()
	defer i.finish(span, len(i.records))
	i.lastExecNS = 0
	ce, ok := i.executor.(ConcurrentExecutor)
	if !ok {
		return fmt.Errorf("trace: executor cannot run concurrent commands")
	}
	stamped := make([]action.Command, len(cmds))
	for k, cmd := range cmds {
		i.seq++
		cmd.Seq = i.seq
		if err := cmd.Validate(); err != nil {
			i.record(cmd, "error", err.Error())
			return err
		}
		stamped[k] = cmd
	}
	// The batch shares one root span — the commands execute as one
	// simultaneous motion — with every (device, seq) bound to it so each
	// command's pipeline stages parent under the same node.
	var root *otrace.Span
	if len(stamped) > 0 {
		root = i.rootSpan(stamped[0])
		if root != nil {
			root.SetIntAttr("batch", len(stamped))
			for _, cmd := range stamped[1:] {
				i.tracer.Bind(cmd.Device, cmd.Seq, root.Context())
			}
			defer func() {
				if err != nil {
					root.SetError(err.Error())
				}
				for _, cmd := range stamped {
					i.tracer.Unbind(cmd.Device, cmd.Seq)
				}
				root.End()
			}()
		}
	}
	if i.checker != nil {
		for _, cmd := range stamped {
			if err := i.checker.Before(cmd); err != nil {
				i.record(cmd, "blocked", err.Error())
				return err
			}
		}
	}
	last := stamped[len(stamped)-1]
	spanExec := i.hExecute.Start()
	execSpan := i.tracer.StartSpan(root.Context(), obs.StageExecute)
	execErr := ce.ExecuteConcurrent(stamped)
	if execErr != nil {
		execSpan.SetError(execErr.Error())
	}
	execSpan.End()
	i.lastExecNS = spanExec.End().Nanoseconds()
	if err := execErr; err != nil {
		for _, cmd := range stamped {
			i.record(cmd, "error", err.Error())
		}
		// The batch settles with a single post-state check: its commands
		// executed as one simultaneous motion.
		if i.checker != nil {
			if aerr := i.checker.After(last); aerr != nil {
				return fmt.Errorf("%w (post-state: %v)", err, aerr)
			}
		}
		return err
	}
	if i.checker != nil {
		if err := i.checker.After(last); err != nil {
			i.record(last, "error", err.Error())
			return err
		}
	}
	for _, cmd := range stamped {
		i.record(cmd, "ok", "")
	}
	return nil
}

// Records returns a copy of the trace so far.
func (i *Interceptor) Records() []Record {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Record, len(i.records))
	copy(out, i.records)
	return out
}

// Reset clears the trace and sequence counter (between evaluation
// runs), closing any open run trace so the next run starts a fresh one.
func (i *Interceptor) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.records = nil
	i.seq = 0
	i.finishTraceLocked()
}

// Replay feeds a recorded command stream back through an interceptor:
// offline checking of a captured experiment against a fresh lab — the
// "testing experiment scripts" use the paper's three-stage framework
// exists for, applied to traces instead of live scripts. Replay stops at
// the first error (alert or execution failure). The recorded stream is
// the lookahead's ideal input — the next command is always known — so
// each command is replayed with a hint for its successor.
func Replay(i *Interceptor, records []Record) error {
	for idx, r := range records {
		var err error
		if idx+1 < len(records) {
			err = i.DoLookahead(r.Cmd, records[idx+1].Cmd)
		} else {
			err = i.Do(r.Cmd)
		}
		if err != nil {
			return fmt.Errorf("trace: replaying #%d %s: %w", r.Seq, r.Cmd, err)
		}
	}
	return nil
}

// WriteJSONL streams records as JSON lines — the on-disk trace format.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a JSONL trace.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}
