package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/geom"
)

// fakeChecker scripts Before/After outcomes.
type fakeChecker struct {
	beforeErr error
	afterErr  error
	befores   []action.Command
	afters    []action.Command
}

func (f *fakeChecker) Before(cmd action.Command) error {
	f.befores = append(f.befores, cmd)
	return f.beforeErr
}

func (f *fakeChecker) After(cmd action.Command) error {
	f.afters = append(f.afters, cmd)
	return f.afterErr
}

// fakeExecutor records executions.
type fakeExecutor struct {
	err  error
	cmds []action.Command
	now  time.Duration
}

func (f *fakeExecutor) Execute(cmd action.Command) error {
	f.cmds = append(f.cmds, cmd)
	f.now += time.Second
	return f.err
}

func (f *fakeExecutor) Now() time.Duration { return f.now }

func (f *fakeExecutor) ExecuteConcurrent(cmds []action.Command) error {
	f.cmds = append(f.cmds, cmds...)
	f.now += time.Second
	return f.err
}

func cmdOpen() action.Command {
	return action.Command{Device: "dd", Action: action.OpenDoor}
}

func TestDoHappyPath(t *testing.T) {
	ch := &fakeChecker{}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)

	if err := i.Do(cmdOpen()); err != nil {
		t.Fatal(err)
	}
	if len(ch.befores) != 1 || len(ch.afters) != 1 || len(ex.cmds) != 1 {
		t.Fatalf("hook counts wrong: %d/%d/%d", len(ch.befores), len(ex.cmds), len(ch.afters))
	}
	recs := i.Records()
	if len(recs) != 1 || recs[0].Outcome != "ok" || recs[0].Seq != 1 {
		t.Fatalf("records wrong: %+v", recs)
	}
}

func TestDoBlockedCommandNeverExecutes(t *testing.T) {
	ch := &fakeChecker{beforeErr: errors.New("unsafe")}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)

	if err := i.Do(cmdOpen()); err == nil {
		t.Fatal("blocked command returned nil")
	}
	if len(ex.cmds) != 0 {
		t.Fatal("blocked command reached the executor")
	}
	recs := i.Records()
	if len(recs) != 1 || recs[0].Outcome != "blocked" {
		t.Fatalf("records wrong: %+v", recs)
	}
}

func TestDoExecutionErrorStillRunsAfter(t *testing.T) {
	ch := &fakeChecker{}
	ex := &fakeExecutor{err: errors.New("collision")}
	i := NewInterceptor(ch, ex)

	err := i.Do(cmdOpen())
	if err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision error, got %v", err)
	}
	if len(ch.afters) != 1 {
		t.Fatal("After must observe the aftermath of a failed execution")
	}
}

func TestDoInvalidCommandRejectedStructurally(t *testing.T) {
	i := NewInterceptor(nil, &fakeExecutor{})
	err := i.Do(action.Command{Action: action.MoveRobot}) // no device
	if err == nil {
		t.Fatal("structurally invalid command accepted")
	}
}

func TestDoWithoutChecker(t *testing.T) {
	ex := &fakeExecutor{}
	i := NewInterceptor(nil, ex)
	if err := i.Do(cmdOpen()); err != nil {
		t.Fatal(err)
	}
	if len(ex.cmds) != 1 {
		t.Fatal("command not executed")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	i := NewInterceptor(nil, &fakeExecutor{})
	for k := 0; k < 5; k++ {
		if err := i.Do(cmdOpen()); err != nil {
			t.Fatal(err)
		}
	}
	recs := i.Records()
	for k, r := range recs {
		if r.Seq != k+1 {
			t.Errorf("record %d has seq %d", k, r.Seq)
		}
	}
	i.Reset()
	if len(i.Records()) != 0 {
		t.Fatal("Reset left records")
	}
	if err := i.Do(cmdOpen()); err != nil {
		t.Fatal(err)
	}
	if i.Records()[0].Seq != 1 {
		t.Fatal("Reset did not restart the sequence")
	}
}

func TestDoConcurrentChecksAllBeforeExecuting(t *testing.T) {
	ch := &fakeChecker{}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)
	cmds := []action.Command{
		{Device: "a1", Action: action.MoveRobot, Target: geom.V(0.1, 0, 0.2)},
		{Device: "a2", Action: action.MoveRobot, Target: geom.V(0.3, 0, 0.2)},
	}
	if err := i.DoConcurrent(cmds); err != nil {
		t.Fatal(err)
	}
	if len(ch.befores) != 2 {
		t.Fatalf("want 2 Befores, got %d", len(ch.befores))
	}
	// The batch settles with one After (the last command).
	if len(ch.afters) != 1 || ch.afters[0].Device != "a2" {
		t.Fatalf("want one After for the last command, got %v", ch.afters)
	}
	if len(i.Records()) != 2 {
		t.Fatalf("want 2 records, got %d", len(i.Records()))
	}
}

func TestDoConcurrentBlockedBeforeStopsBatch(t *testing.T) {
	ch := &fakeChecker{beforeErr: errors.New("mux violation")}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)
	cmds := []action.Command{
		{Device: "a1", Action: action.MoveRobot, Target: geom.V(0.1, 0, 0.2)},
		{Device: "a2", Action: action.MoveRobot, Target: geom.V(0.3, 0, 0.2)},
	}
	if err := i.DoConcurrent(cmds); err == nil {
		t.Fatal("blocked batch returned nil")
	}
	if len(ex.cmds) != 0 {
		t.Fatal("blocked batch reached the executor")
	}
}

func TestDoConcurrentRequiresCapableExecutor(t *testing.T) {
	// An executor without ExecuteConcurrent cannot run batches.
	i := NewInterceptor(nil, execOnly{})
	err := i.DoConcurrent([]action.Command{{Device: "a", Action: action.MoveRobot, Target: geom.V(0.1, 0, 0.2)}})
	if err == nil {
		t.Fatal("incapable executor accepted a concurrent batch")
	}
}

type execOnly struct{}

func (execOnly) Execute(cmd action.Command) error { return nil }
func (execOnly) Now() time.Duration               { return 0 }

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Time: time.Second, Outcome: "ok",
			Cmd: action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.1, 0.2, 0.3)}},
		{Seq: 2, Time: 2 * time.Second, Outcome: "blocked", Detail: "rule general-1",
			Cmd: action.Command{Device: "dd", Action: action.OpenDoor}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost records: %d", len(got))
	}
	if got[0].Cmd.Target != geom.V(0.1, 0.2, 0.3) {
		t.Errorf("target lost: %v", got[0].Cmd.Target)
	}
	if got[1].Detail != "rule general-1" {
		t.Errorf("detail lost: %q", got[1].Detail)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReplay(t *testing.T) {
	// Record a short command stream, then replay it through a fresh
	// interceptor with a blocking checker: replay stops at the first
	// alert and reports which command tripped it.
	rec := NewInterceptor(nil, &fakeExecutor{})
	for i := 0; i < 3; i++ {
		if err := rec.Do(cmdOpen()); err != nil {
			t.Fatal(err)
		}
	}
	records := rec.Records()

	clean := NewInterceptor(&fakeChecker{}, &fakeExecutor{})
	if err := Replay(clean, records); err != nil {
		t.Fatalf("clean replay failed: %v", err)
	}
	if len(clean.Records()) != 3 {
		t.Errorf("replay recorded %d commands", len(clean.Records()))
	}

	blocking := NewInterceptor(&fakeChecker{beforeErr: errors.New("unsafe")}, &fakeExecutor{})
	err := Replay(blocking, records)
	if err == nil {
		t.Fatal("blocking replay should stop")
	}
	if !strings.Contains(err.Error(), "replaying #1") {
		t.Errorf("error should cite the record: %v", err)
	}
}

// hintChecker is a fakeChecker that also records lookahead hints.
type hintChecker struct {
	fakeChecker
	hints [][2]action.Command
}

func (h *hintChecker) Hint(cur, next action.Command) {
	h.hints = append(h.hints, [2]action.Command{cur, next})
}

func TestDoLookaheadHintsChecker(t *testing.T) {
	ch := &hintChecker{}
	ex := &fakeExecutor{}
	i := NewInterceptor(ch, ex)
	cur := cmdOpen()
	next := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.2)}
	if err := i.DoLookahead(cur, next); err != nil {
		t.Fatal(err)
	}
	if len(ch.hints) != 1 {
		t.Fatalf("hints = %d, want 1", len(ch.hints))
	}
	if ch.hints[0][1].Target != next.Target {
		t.Errorf("hint carried wrong successor: %v", ch.hints[0][1])
	}
	// Plain Do never hints, and a blocked command is not followed by a
	// hint (there is nothing to overlap with).
	if err := i.Do(cur); err != nil {
		t.Fatal(err)
	}
	blocked := &hintChecker{fakeChecker: fakeChecker{beforeErr: errors.New("unsafe")}}
	ib := NewInterceptor(blocked, &fakeExecutor{})
	if err := ib.DoLookahead(cur, next); err == nil {
		t.Fatal("blocked command accepted")
	}
	if len(blocked.hints) != 0 {
		t.Error("blocked command still hinted the checker")
	}
	if len(ch.hints) != 1 {
		t.Errorf("plain Do hinted the checker (%d)", len(ch.hints))
	}
}

func TestReplayHintsSuccessors(t *testing.T) {
	rec := NewInterceptor(nil, &fakeExecutor{})
	targets := []geom.Vec3{geom.V(0.1, 0, 0.2), geom.V(0.2, 0, 0.2), geom.V(0.3, 0, 0.2)}
	for _, tgt := range targets {
		cmd := action.Command{Device: "arm", Action: action.MoveRobot, Target: tgt}
		if err := rec.Do(cmd); err != nil {
			t.Fatal(err)
		}
	}
	ch := &hintChecker{}
	if err := Replay(NewInterceptor(ch, &fakeExecutor{}), rec.Records()); err != nil {
		t.Fatal(err)
	}
	// N records produce N-1 hints, each pairing a command with its successor.
	if len(ch.hints) != len(targets)-1 {
		t.Fatalf("hints = %d, want %d", len(ch.hints), len(targets)-1)
	}
	for k, h := range ch.hints {
		if h[0].Target != targets[k] || h[1].Target != targets[k+1] {
			t.Errorf("hint %d pairs %v -> %v, want %v -> %v",
				k, h[0].Target, h[1].Target, targets[k], targets[k+1])
		}
	}
}
