package world

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/kin"
)

// CollisionError reports that a motion physically collided; the damage
// event has already been recorded in the world's event log.
type CollisionError struct {
	Ev Event
}

// Error implements error.
func (e *CollisionError) Error() string {
	return fmt.Sprintf("world: collision: %s", e.Ev.Description)
}

// AsCollision extracts a CollisionError from an error chain.
func AsCollision(err error) (*CollisionError, bool) {
	var ce *CollisionError
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}

// MoveOptions tunes a single arm move.
type MoveOptions struct {
	// Roll is the wrist roll at the end of the move (0 = fingers down).
	Roll float64
	// IgnoreObjects are object IDs excluded from collision checking —
	// the vial the gripper is deliberately descending onto.
	IgnoreObjects []string
}

// obstacle is a static collision volume present during a sweep.
type obstacle struct {
	box     geom.AABB
	rounded *geom.Capsule // non-nil for cylinder/dome bodies
	bounds  geom.AABB     // conservative bound of the solid, for the sweep prepass
	id      string
	isDoor  bool
	fixture *Fixture
	object  *Object
}

// hitBy tests an arm capsule against the obstacle's solid.
func (ob *obstacle) hitBy(c geom.Capsule) bool {
	if ob.rounded != nil {
		return geom.CapsuleCapsuleIntersect(c, *ob.rounded)
	}
	return geom.CapsuleAABBIntersect(c, ob.box)
}

// sweepStep is the collision check granularity along trajectories (m).
const sweepStep = 0.015

// MoveArmTo moves the arm's tool centre point to a global-frame target.
// It plans with the arm's kinematics (an infeasible target returns
// kin.ErrUnreachable — how the arm's *driver* reacts to that is a
// per-vendor behaviour layered above), sweeps the arm's full collision
// volume, and physically collides with whatever is in the way.
func (w *World) MoveArmTo(armID string, target geom.Vec3, opts MoveOptions) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return fmt.Errorf("world: no arm %q", armID)
	}
	noisy := w.noisyTargetLocked(a, target)
	tr, err := w.planLocked(a, noisy)
	if err != nil {
		return fmt.Errorf("world: arm %s cannot reach %v: %w", armID, target, err)
	}
	if err := w.sweepLocked(a, tr, opts, nil); err != nil {
		return err
	}
	w.finishMoveLocked(a, tr, opts, target, noisy)
	return nil
}

// MoveArmJoints moves the arm to an explicit joint configuration (home or
// sleep poses), sweeping for collisions like any other move.
func (w *World) MoveArmJoints(armID string, targetJoints []float64, asleep bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return fmt.Errorf("world: no arm %q", armID)
	}
	if err := a.Profile.Chain.CheckJoints(targetJoints); err != nil {
		return fmt.Errorf("world: arm %s: %w", armID, err)
	}
	tr := &kin.Trajectory{Chain: a.Profile.Chain, From: a.Joints, To: append([]float64(nil), targetJoints...)}
	opts := MoveOptions{Roll: 0}
	if err := w.sweepLocked(a, tr, opts, nil); err != nil {
		return err
	}
	a.Joints = append([]float64(nil), tr.To...)
	a.Roll = 0
	a.Asleep = asleep
	w.now += tr.Duration()
	if tcp, err := a.Profile.Chain.EndEffector(a.Joints); err == nil {
		a.commandedTCP, a.actualTCP = tcp, tcp
	}
	return nil
}

// ConcurrentMove is one leg of a simultaneous multi-arm motion.
type ConcurrentMove struct {
	ArmID  string
	Target geom.Vec3
	Opts   MoveOptions
}

// MoveArmsConcurrently executes several arm moves simultaneously,
// sweeping them in lockstep so that arm-arm collisions *during* motion are
// detected — the scenario the paper's time/space multiplexing exists to
// prevent.
func (w *World) MoveArmsConcurrently(moves []ConcurrentMove) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	legs := make([]concLeg, 0, len(moves))
	noisyTargets := make([]geom.Vec3, 0, len(moves))
	for _, m := range moves {
		a, ok := w.arms[m.ArmID]
		if !ok {
			return fmt.Errorf("world: no arm %q", m.ArmID)
		}
		noisy := w.noisyTargetLocked(a, m.Target)
		tr, err := w.planLocked(a, noisy)
		if err != nil {
			return fmt.Errorf("world: arm %s cannot reach %v: %w", m.ArmID, m.Target, err)
		}
		legs = append(legs, concLeg{arm: a, tr: tr, mv: m})
		noisyTargets = append(noisyTargets, noisy)
	}
	moving := make(map[string]bool, len(legs))
	for _, l := range legs {
		moving[l.arm.ID] = true
	}
	// Lockstep sweep: sample count from the longest leg.
	n := 2
	for _, l := range legs {
		if c := l.tr.SampleCount(sweepStep); c > n {
			n = c
		}
	}
	// Obstacles are static for the whole sweep; assemble them per leg once.
	legObstacles := make([][]obstacle, len(legs))
	for li, l := range legs {
		legObstacles[li] = w.obstaclesLocked(l.arm, l.mv.Opts, moving)
	}
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		// Position every leg at t, then check each against statics and
		// against the other moving arms.
		allCaps := make([][]labeledCapsule, len(legs))
		allBounds := make([][]geom.AABB, len(legs))
		for li, l := range legs {
			caps, err := w.labeledCapsulesAt(l.arm, l.tr.At(t), l.mv.Opts.Roll)
			if err != nil {
				return fmt.Errorf("world: concurrent sweep: %w", err)
			}
			allCaps[li] = caps
			allBounds[li], _ = capsuleBounds(caps, nil)
		}
		for li, l := range legs {
			if ev, hit := w.checkCapsulesLocked(l.arm, allCaps[li], allBounds[li], legObstacles[li]); hit {
				w.stopLegsAt(legs, t)
				w.now += scaleDuration(maxLegDuration(legs), t)
				return &CollisionError{Ev: ev}
			}
			for lj := range legs {
				if lj == li {
					continue
				}
				if ev, hit := w.checkArmArmLocked(l.arm, allCaps[li], legs[lj].arm, allCaps[lj]); hit {
					w.stopLegsAt(legs, t)
					w.now += scaleDuration(maxLegDuration(legs), t)
					return &CollisionError{Ev: ev}
				}
			}
		}
	}
	for li, l := range legs {
		w.finishMoveLocked(l.arm, l.tr, l.mv.Opts, moves[li].Target, noisyTargets[li])
	}
	// Concurrent legs overlap in time; only the longest counts, minus the
	// durations finishMoveLocked already added per leg.
	var sum time.Duration
	for _, l := range legs {
		sum += l.tr.Duration()
	}
	w.now += maxLegDuration(legs) - sum
	return nil
}

// concLeg is one in-flight leg of a concurrent multi-arm move.
type concLeg struct {
	arm *Arm
	tr  *kin.Trajectory
	mv  ConcurrentMove
}

func maxLegDuration(legs []concLeg) time.Duration {
	var d time.Duration
	for _, l := range legs {
		if l.tr.Duration() > d {
			d = l.tr.Duration()
		}
	}
	return d
}

func (w *World) stopLegsAt(legs []concLeg, t float64) {
	for _, l := range legs {
		l.arm.Joints = l.tr.At(t)
		l.arm.Asleep = false
	}
}

func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// planLocked plans an arm's joint move to a world-frame target, through
// the plan cache when one is installed.
func (w *World) planLocked(a *Arm, target geom.Vec3) (*kin.Trajectory, error) {
	if w.planCache != nil {
		return w.planCache.Plan(a.Profile.Chain, a.Joints, target, kin.DefaultIKOptions())
	}
	return a.Profile.Chain.PlanJointMove(a.Joints, target, kin.DefaultIKOptions())
}

// noisyTargetLocked perturbs a commanded target by the arm's
// repeatability, modelling device precision.
func (w *World) noisyTargetLocked(a *Arm, target geom.Vec3) geom.Vec3 {
	r := a.Profile.Chain.Repeatability
	if r <= 0 || w.exactMotion {
		return target
	}
	return target.Add(geom.V(
		w.rng.NormFloat64()*r,
		w.rng.NormFloat64()*r,
		w.rng.NormFloat64()*r,
	))
}

// finishMoveLocked commits a completed move. The precision bookkeeping
// compares the commanded target against the point the controller
// physically converged to (the repeatability-perturbed target), so the
// numeric IK solver's tolerance — a substrate artifact, not a property of
// the modelled hardware — does not pollute the Table I precision row.
func (w *World) finishMoveLocked(a *Arm, tr *kin.Trajectory, opts MoveOptions, commanded, converged geom.Vec3) {
	a.Joints = append([]float64(nil), tr.To...)
	a.Roll = opts.Roll
	a.Asleep = false
	a.commandedTCP = commanded
	a.actualTCP = converged
	w.now += tr.Duration()
}

// sweepLocked sweeps one arm's trajectory against all static obstacles and
// the *stationary* other arms. On collision it stops the arm at the
// contact sample, records the damage event, and returns a CollisionError.
//
// The other arms don't move during the sweep, so their collision volumes
// are solved once; per sample, a union bound over the moving arm's
// capsules rejects far-away obstacles and arms before any narrow-phase
// test. Bounds include the capsule radius, so the prepass can only skip
// pairs the narrow phase would reject — verdicts are unchanged.
func (w *World) sweepLocked(a *Arm, tr *kin.Trajectory, opts MoveOptions, extraIgnore map[string]bool) error {
	obstacles := w.obstaclesLocked(a, opts, extraIgnore)
	others := w.parkedArmsLocked(a, extraIgnore)
	var scratch [24]geom.AABB
	n := tr.SampleCount(sweepStep)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, err := w.labeledCapsulesAt(a, tr.At(t), opts.Roll)
		if err != nil {
			return fmt.Errorf("world: sweep: %w", err)
		}
		capBounds, bound := capsuleBounds(caps, scratch[:0])
		if ev, hit := w.checkCapsulesLocked(a, caps, capBounds, obstacles); hit {
			a.Joints = tr.At(t)
			a.Asleep = false
			w.now += scaleDuration(tr.Duration(), t)
			return &CollisionError{Ev: ev}
		}
		for _, o := range others {
			if !bound.Intersects(o.bounds) {
				continue
			}
			if ev, hit := w.checkArmArmLocked(a, caps, o.arm, o.caps); hit {
				a.Joints = tr.At(t)
				a.Asleep = false
				w.now += scaleDuration(tr.Duration(), t)
				return &CollisionError{Ev: ev}
			}
		}
	}
	return nil
}

// parkedArm is a stationary arm's collision volume, solved once per sweep.
type parkedArm struct {
	arm    *Arm
	caps   []labeledCapsule
	bounds geom.AABB
}

// parkedArmsLocked solves the stationary arms' capsules for a sweep by
// the moving arm. Sorted by ID so collision attribution doesn't depend
// on map iteration order.
func (w *World) parkedArmsLocked(moving *Arm, skip map[string]bool) []parkedArm {
	ids := make([]string, 0, len(w.arms))
	for id := range w.arms {
		if id == moving.ID || (skip != nil && skip[id]) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]parkedArm, 0, len(ids))
	for _, id := range ids {
		other := w.arms[id]
		caps, err := w.labeledCapsulesAt(other, other.Joints, other.Roll)
		if err != nil {
			continue
		}
		_, b := capsuleBounds(caps, nil)
		out = append(out, parkedArm{arm: other, caps: caps, bounds: b})
	}
	return out
}

// capsuleBounds appends each capsule's bound to dst and returns the
// slice plus the union over all of them.
func capsuleBounds(caps []labeledCapsule, dst []geom.AABB) ([]geom.AABB, geom.AABB) {
	var u geom.AABB
	for i, lc := range caps {
		b := lc.cap.Bounds()
		dst = append(dst, b)
		if i == 0 {
			u = b
		} else {
			u = u.Union(b)
		}
	}
	return dst, u
}

// obstaclesLocked assembles the static collision volumes relevant to a
// move by the given arm: fixture bodies (door-aware), and resting objects
// not explicitly ignored. Arms in the skip set are excluded (they are
// handled as moving bodies by the concurrent sweep).
func (w *World) obstaclesLocked(a *Arm, opts MoveOptions, skipArms map[string]bool) []obstacle {
	_ = skipArms // arm bodies are checked capsule-to-capsule, not as boxes
	var obs []obstacle
	ignore := make(map[string]bool, len(opts.IgnoreObjects))
	for _, id := range opts.IgnoreObjects {
		ignore[id] = true
	}
	for _, f := range w.fixtures {
		if f.Kind == KindSensor {
			// A sensor's cuboid is a monitored zone, not a solid body.
			continue
		}
		if f.hollow() && f.anyDoorOpen() {
			// The device may be reached into through an open doorway;
			// its thin shells are not modelled as obstacles, but every
			// *closed* panel still is — driving into the shut door of a
			// pass-through device breaks it.
			for _, p := range f.panelViews() {
				if p.Open {
					continue
				}
				if slab, ok := f.slabForSide(p.Side); ok {
					obs = append(obs, obstacle{box: slab, bounds: slab, id: f.ID, isDoor: true, fixture: f})
				}
			}
			continue
		}
		if f.hollow() {
			// All doors closed: the whole body is solid; flag the door
			// slabs so damage events name the glass door.
			for _, p := range f.panelViews() {
				if slab, ok := f.slabForSide(p.Side); ok {
					obs = append(obs, obstacle{box: slab, bounds: slab, id: f.ID, isDoor: true, fixture: f})
				}
			}
			obs = append(obs, obstacle{box: f.Body, bounds: f.Body, id: f.ID, fixture: f})
			continue
		}
		ob := obstacle{box: f.Body, bounds: f.Body, id: f.ID, fixture: f}
		if f.Rounded {
			cap := f.roundedCapsule()
			ob.rounded = &cap
			ob.bounds = cap.Bounds()
		}
		obs = append(obs, ob)
	}
	for _, o := range w.objects {
		if o.Broken || o.At == "" || ignore[o.ID] || o.HeldBy != "" {
			continue
		}
		if box, ok := w.objectBoxAtLocked(o); ok {
			obs = append(obs, obstacle{box: box, bounds: box, id: o.ID, object: o})
		}
	}
	return obs
}

// checkCapsulesLocked tests an arm's labelled capsules against static
// obstacles, the floor, and the walls; it records and returns the first
// damage event. capBounds holds each capsule's precomputed bound,
// index-aligned with caps: a capsule whose bound misses an obstacle's
// bound can't hit its solid, so the narrow phase is skipped without
// changing any verdict.
func (w *World) checkCapsulesLocked(a *Arm, caps []labeledCapsule, capBounds []geom.AABB, obstacles []obstacle) (Event, bool) {
	floor := geom.PlaneFromPointNormal(geom.V(0, 0, w.floorZ), geom.V(0, 0, 1))
	for ci, lc := range caps {
		// Floor: only the parts that can realistically dive (fingers and
		// held glassware); the arm's base column legitimately meets the
		// platform.
		if lc.part == "fingers" || isHeldPart(lc.part) {
			if geom.CapsulePlanePenetrates(lc.cap, floor) {
				return w.recordImpactLocked(a, lc, obstacle{id: "platform"}), true
			}
		}
		for _, wall := range w.walls {
			if geom.CapsulePlanePenetrates(lc.cap, wall) {
				return w.recordImpactLocked(a, lc, obstacle{id: "wall"}), true
			}
		}
		for i := range obstacles {
			ob := &obstacles[i]
			if !capBounds[ci].Intersects(ob.bounds) {
				continue
			}
			if ob.hitBy(lc.cap) {
				return w.recordImpactLocked(a, lc, *ob), true
			}
		}
	}
	return Event{}, false
}

// checkArmArmLocked tests two arms' capsule sets against each other.
func (w *World) checkArmArmLocked(a *Arm, aCaps []labeledCapsule, b *Arm, bCaps []labeledCapsule) (Event, bool) {
	for _, ca := range aCaps {
		for _, cb := range bCaps {
			if geom.CapsuleCapsuleIntersect(ca.cap, cb.cap) {
				w.breakHeldLocked(ca.part)
				w.breakHeldLocked(cb.part)
				ev := Event{
					Time: w.now, Kind: EventCollision, Severity: SeverityMediumHigh,
					Description: fmt.Sprintf("robot arms %s and %s collided", a.ID, b.ID),
					Involved:    []string{a.ID, b.ID},
				}
				w.events = append(w.events, ev)
				return ev, true
			}
		}
	}
	return Event{}, false
}

func isHeldPart(part string) bool {
	return len(part) > 5 && part[:5] == "held:"
}

func heldObjectID(part string) string {
	if isHeldPart(part) {
		return part[5:]
	}
	return ""
}

// breakHeldLocked shatters the object named by a held:<id> part label.
func (w *World) breakHeldLocked(part string) {
	if id := heldObjectID(part); id != "" {
		if o, ok := w.objects[id]; ok && !o.Broken {
			o.Broken = true
			w.recordEvent(EventGlassBreak, SeverityMediumLow,
				fmt.Sprintf("held container %s shattered in the collision", id), id)
		}
	}
}

// recordImpactLocked records the damage event for one capsule-obstacle
// impact, with severity attributed per the Table V taxonomy.
func (w *World) recordImpactLocked(a *Arm, lc labeledCapsule, ob obstacle) Event {
	var ev Event
	switch {
	case ob.id == "platform" || ob.id == "wall":
		if isHeldPart(lc.part) {
			// A held vial struck the platform/wall: the glass breaks
			// (Medium-Low, Table V) — the Bug D-with-vial outcome.
			w.breakHeldLocked(lc.part)
			ev = Event{
				Time: w.now, Kind: EventGlassBreak, Severity: SeverityMediumLow,
				Description: fmt.Sprintf("vial held by %s crashed into the %s and broke", a.ID, ob.id),
				Involved:    []string{a.ID, heldObjectID(lc.part), ob.id},
			}
		} else {
			ev = Event{
				Time: w.now, Kind: EventCollision, Severity: SeverityMediumHigh,
				Description: fmt.Sprintf("arm %s (%s) struck the %s", a.ID, lc.part, ob.id),
				Involved:    []string{a.ID, ob.id},
			}
		}
	case ob.object != nil:
		ob.object.Broken = true
		w.breakHeldLocked(lc.part)
		ev = Event{
			Time: w.now, Kind: EventGlassBreak, Severity: SeverityMediumLow,
			Description: fmt.Sprintf("arm %s knocked over container %s", a.ID, ob.object.ID),
			Involved:    []string{a.ID, ob.object.ID},
		}
	case ob.isDoor:
		ob.fixture.Broken = true
		ev = Event{
			Time: w.now, Kind: EventDoorBreak, Severity: ob.fixture.severity(),
			Description: fmt.Sprintf("arm %s smashed the closed door of %s", a.ID, ob.fixture.ID),
			Involved:    []string{a.ID, ob.fixture.ID},
		}
	case ob.fixture != nil:
		ob.fixture.Broken = true
		w.breakHeldLocked(lc.part)
		sev := ob.fixture.severity()
		desc := fmt.Sprintf("arm %s (%s) collided with %s", a.ID, lc.part, ob.fixture.ID)
		if isHeldPart(lc.part) {
			desc = fmt.Sprintf("vial held by %s struck %s", a.ID, ob.fixture.ID)
		}
		ev = Event{
			Time: w.now, Kind: EventCollision, Severity: sev,
			Description: desc,
			Involved:    []string{a.ID, ob.fixture.ID},
		}
	default:
		ev = Event{
			Time: w.now, Kind: EventCollision, Severity: SeverityMediumHigh,
			Description: fmt.Sprintf("arm %s struck %s", a.ID, ob.id),
			Involved:    []string{a.ID, ob.id},
		}
	}
	w.events = append(w.events, ev)
	return ev
}

// NamedLocationOfArm returns the deck location whose grip point coincides
// with the arm's current TCP, or "" — this is the only positional fact an
// arm driver can report back as state (raw poses are frame-local and
// noisy, which is why RABIT tracks position as a named tag).
func (w *World) NamedLocationOfArm(armID string) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return "", fmt.Errorf("world: no arm %q", armID)
	}
	tcp, err := a.Profile.Chain.EndEffector(a.Joints)
	if err != nil {
		return "", err
	}
	bestName, bestDist := "", math.Inf(1)
	for name, l := range w.locations {
		if d := l.Pos.Dist(tcp); d <= graspTolerance && d < bestDist {
			bestName, bestDist = name, d
		}
	}
	return bestName, nil
}

// ArmReachesInto reports whether the arm's collision volume currently
// intersects the fixture's interior-or-doorway zone (the ground truth of
// "robot arm inside device").
func (w *World) ArmReachesInto(armID, fixtureID string) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return false, fmt.Errorf("world: no arm %q", armID)
	}
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return false, fmt.Errorf("world: no fixture %q", fixtureID)
	}
	if !f.hollow() {
		return false, nil
	}
	zone := f.Interior
	if slab, ok := f.doorSlab(); ok {
		zone = zone.Union(slab)
	}
	caps, err := w.labeledCapsulesAt(a, a.Joints, a.Roll)
	if err != nil {
		return false, err
	}
	for _, lc := range caps {
		if geom.CapsuleAABBIntersect(lc.cap, zone) {
			return true, nil
		}
	}
	return false, nil
}
