package world

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/kin"
)

// testDeck builds a miniature testbed deck mirroring Fig. 4/5 of the
// paper: a ViperX and a Ned2, a solid vial grid, a hollow dosing device
// with a front door, a solid hotplate mockup, and one vial on the grid.
//
// Geometry (global frame, floor at z=0):
//
//	viperx base (0,0,0), ned2 base (0.8,0,0)
//	grid        solid box (0.29,0.19,0)–(0.41,0.31,0.08)
//	dosing dev  body (0.05,0.35,0)–(0.25,0.55,0.30), interior inset 0.03,
//	            door on the Y- face
//	hotplate    solid box (0.48,0.38,0)–(0.62,0.52,0.12)
func testDeck(t *testing.T) *World {
	t.Helper()
	w := New(1)

	vp, err := kin.NewProfile(kin.ModelViperX300, geom.PoseAt(geom.V(0, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddArm("viperx", vp); err != nil {
		t.Fatal(err)
	}
	nd, err := kin.NewProfile(kin.ModelNed2, geom.PoseAt(geom.V(0.8, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddArm("ned2", nd); err != nil {
		t.Fatal(err)
	}

	fixtures := []*Fixture{
		{
			ID: "grid", Kind: KindGrid,
			Body: geom.Box(geom.V(0.29, 0.19, 0), geom.V(0.41, 0.31, 0.08)),
		},
		{
			ID: "dosing_device", Kind: KindDosing, Expensive: true,
			Body:     geom.Box(geom.V(0.05, 0.35, 0), geom.V(0.25, 0.55, 0.30)),
			Interior: geom.Box(geom.V(0.08, 0.38, 0.03), geom.V(0.22, 0.52, 0.27)),
			Door:     DoorYNeg,
		},
		{
			ID: "hotplate", Kind: KindHotplate,
			Body:         geom.Box(geom.V(0.48, 0.38, 0), geom.V(0.62, 0.52, 0.12)),
			MaxSafeValue: 340,
		},
	}
	for _, f := range fixtures {
		if err := w.AddFixture(f); err != nil {
			t.Fatal(err)
		}
	}

	locs := []Location{
		{Name: "grid_NW", Pos: geom.V(0.32, 0.22, 0.16), Owner: "grid"},
		{Name: "grid_NW_safe", Pos: geom.V(0.32, 0.22, 0.23), Owner: "grid"},
		{Name: "grid_NE", Pos: geom.V(0.38, 0.22, 0.16), Owner: "grid"},
		{Name: "dd_approach", Pos: geom.V(0.15, 0.30, 0.19), Owner: "dosing_device"},
		{Name: "dd_pickup", Pos: geom.V(0.15, 0.45, 0.10), Owner: "dosing_device", Inside: true},
		{Name: "dd_safe", Pos: geom.V(0.15, 0.45, 0.19), Owner: "dosing_device", Inside: true},
		{Name: "hp_place", Pos: geom.V(0.55, 0.45, 0.20), Owner: "hotplate"},
	}
	for _, l := range locs {
		if err := w.AddLocation(l); err != nil {
			t.Fatal(err)
		}
	}

	vial := &Object{
		ID: "vial_1", HeightM: 0.07, RadiusM: 0.012,
		CapacityMg: 10, CapacityML: 12,
		At: "grid_NW",
	}
	if err := w.AddObject(vial); err != nil {
		t.Fatal(err)
	}
	return w
}

// clearVial removes the grid vial from play for scenarios where an
// incidental brush with it would obscure the behaviour under test.
func clearVial(t *testing.T, w *World) {
	t.Helper()
	o, ok := w.Object("vial_1")
	if !ok {
		t.Fatal("test deck has no vial_1")
	}
	o.At = ""
}

func mustMove(t *testing.T, w *World, arm string, target geom.Vec3) {
	t.Helper()
	if err := w.MoveArmTo(arm, target, MoveOptions{}); err != nil {
		t.Fatalf("MoveArmTo(%s, %v): %v", arm, target, err)
	}
}

func TestDeckConstructionValidation(t *testing.T) {
	w := New(1)
	if err := w.AddFixture(&Fixture{}); err == nil {
		t.Error("fixture without ID accepted")
	}
	if err := w.AddFixture(&Fixture{ID: "x", Body: geom.AABB{Min: geom.V(1, 0, 0), Max: geom.V(0, 1, 1)}}); err == nil {
		t.Error("invalid body accepted")
	}
	f := &Fixture{ID: "x", Body: geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))}
	if err := w.AddFixture(f); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFixture(f); err == nil {
		t.Error("duplicate fixture accepted")
	}
	if err := w.AddLocation(Location{Name: "a", Pos: geom.V(0, 0, 0.2)}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddLocation(Location{Name: "a"}); err == nil {
		t.Error("duplicate location accepted")
	}
	if err := w.AddObject(&Object{ID: "o", At: "nowhere"}); err == nil {
		t.Error("object at unknown location accepted")
	}
}

func TestSafeMoveProducesNoDamage(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23)) // hover over grid
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("safe move produced damage: %v", evs)
	}
	if w.DamageCost() != 0 {
		t.Error("damage cost non-zero after safe move")
	}
}

func TestMoveAdvancesClockAndPrecision(t *testing.T) {
	w := testDeck(t)
	before := w.Now()
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if w.Now() <= before {
		t.Error("clock did not advance")
	}
	a, _ := w.Arm("viperx")
	// Precision should be on the order of the arm's repeatability plus IK
	// tolerance, i.e. a few millimetres at most for the testbed arm.
	if p := a.Precision(); p > 0.01 {
		t.Errorf("precision error %v too large", p)
	}
}

func TestPickAndPlaceVial(t *testing.T) {
	w := testDeck(t)
	// Approach above, descend onto the vial, grasp.
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatalf("descend: %v", err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	a, _ := w.Arm("viperx")
	if a.Holding != "vial_1" {
		t.Fatalf("grasp failed: holding %q", a.Holding)
	}
	o, _ := w.Object("vial_1")
	if o.At != "" || o.HeldBy != "viperx" {
		t.Errorf("object state wrong after grasp: at=%q heldBy=%q", o.At, o.HeldBy)
	}

	// Carry to the free grid slot and place.
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	mustMove(t, w, "viperx", geom.V(0.38, 0.22, 0.23))
	mustMove(t, w, "viperx", geom.V(0.38, 0.22, 0.16))
	if err := w.OpenGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	if a.Holding != "" {
		t.Error("still holding after place")
	}
	if o.At != "grid_NE" {
		t.Errorf("vial at %q, want grid_NE", o.At)
	}
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("pick-and-place produced damage: %v", evs)
	}
}

func TestCloseGripperOnAirGrabsNothing(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.38, 0.22, 0.16)) // empty slot
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	a, _ := w.Arm("viperx")
	if a.Holding != "" {
		t.Errorf("grabbed %q out of thin air", a.Holding)
	}
	if !a.GripperClosed {
		t.Error("gripper should be closed")
	}
}

func TestOpenGripperMidAirDropsAndBreaks(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	// Move high above the deck, then open the gripper.
	mustMove(t, w, "viperx", geom.V(0.45, 0.10, 0.35))
	if err := w.OpenGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	if !o.Broken {
		t.Error("vial dropped from 0.35 m should have broken")
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Kind != EventDrop || evs[0].Severity != SeverityMediumLow {
		t.Errorf("expected one Medium-Low drop event, got %v", evs)
	}
}

func TestMoveIntoClosedDoorBreaksIt(t *testing.T) {
	w := testDeck(t)
	// Door never opened; drive toward the in-device pickup point.
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19)) // approach, outside
	err := w.MoveArmTo("viperx", geom.V(0.15, 0.45, 0.19), MoveOptions{})
	if err == nil {
		t.Fatal("expected collision with closed door")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Kind != EventDoorBreak {
		t.Errorf("event kind = %v, want door-break", ce.Ev.Kind)
	}
	if ce.Ev.Severity != SeverityHigh {
		t.Errorf("severity = %v, want High (expensive dosing device)", ce.Ev.Severity)
	}
	f, _ := w.Fixture("dosing_device")
	if !f.Broken {
		t.Error("fixture not marked broken")
	}
}

func TestMoveThroughOpenDoorIsSafe(t *testing.T) {
	w := testDeck(t)
	if err := w.SetDoor("dosing_device", true); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	mustMove(t, w, "viperx", geom.V(0.15, 0.45, 0.19))
	inside, err := w.ArmReachesInto("viperx", "dosing_device")
	if err != nil {
		t.Fatal(err)
	}
	if !inside {
		t.Error("arm should be inside the dosing device")
	}
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("open-door entry produced damage: %v", evs)
	}
}

func TestCloseDoorOnArmBreaksDoor(t *testing.T) {
	w := testDeck(t)
	if err := w.SetDoor("dosing_device", true); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	mustMove(t, w, "viperx", geom.V(0.15, 0.45, 0.19))
	if err := w.SetDoor("dosing_device", false); err != nil {
		t.Fatal(err)
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Kind != EventDoorBreak {
		t.Fatalf("expected door-break event, got %v", evs)
	}
	if evs[0].Severity != SeverityHigh {
		t.Errorf("severity = %v, want High", evs[0].Severity)
	}
}

func TestFingersDiveIntoPlatform(t *testing.T) {
	// Bug 9 mechanics: a very low target makes the gripper fingers
	// penetrate the platform.
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	err := w.MoveArmTo("viperx", geom.V(0.15, 0.30, 0.03), MoveOptions{})
	if err == nil {
		t.Fatal("expected platform collision")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Severity != SeverityMediumHigh {
		t.Errorf("severity = %v, want Medium-High (platform strike)", ce.Ev.Severity)
	}
	if !strings.Contains(ce.Ev.Description, "platform") {
		t.Errorf("description %q should mention the platform", ce.Ev.Description)
	}
}

func TestHeldVialCrashesIntoPlatform(t *testing.T) {
	// Bug 13 mechanics (Fig. 6): the pickup z lowered toward the deck —
	// safe for the bare gripper, fatal for the hanging vial.
	w := testDeck(t)
	if err := w.SetDoor("dosing_device", true); err != nil {
		t.Fatal(err)
	}
	// Grab the vial from the grid.
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.28))
	// The buggy placement: a lowered z out on the open deck — safe for
	// the bare gripper, fatal for the hanging vial.
	err := w.MoveArmTo("viperx", geom.V(0.45, 0.10, 0.07), MoveOptions{})
	if err == nil {
		t.Fatal("expected held-vial platform crash")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Kind != EventGlassBreak || ce.Ev.Severity != SeverityMediumLow {
		t.Errorf("want Medium-Low glass break, got %v %v", ce.Ev.Kind, ce.Ev.Severity)
	}
	o, _ := w.Object("vial_1")
	if !o.Broken {
		t.Error("vial should be broken")
	}
	// The same move with no vial is safe.
	w2 := testDeck(t)
	mustMove(t, w2, "viperx", geom.V(0.45, 0.10, 0.20))
	if err := w2.MoveArmTo("viperx", geom.V(0.45, 0.10, 0.07), MoveOptions{}); err != nil {
		t.Errorf("bare-gripper move to z=0.07 should be safe: %v", err)
	}
}

func TestHeldVialClipsDeviceCuboid(t *testing.T) {
	// Bug 11 mechanics: an approach waypoint above the hotplate that
	// clears the bare gripper but not the hanging vial.
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.30))
	err := w.MoveArmTo("viperx", geom.V(0.55, 0.45, 0.19), MoveOptions{})
	if err == nil {
		t.Fatal("expected held vial to clip the hotplate")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Severity != SeverityMediumHigh {
		t.Errorf("severity = %v, want Medium-High", ce.Ev.Severity)
	}
	// Without a vial the same move is safe.
	w2 := testDeck(t)
	clearVial(t, w2)
	mustMove(t, w2, "viperx", geom.V(0.32, 0.22, 0.30))
	if err := w2.MoveArmTo("viperx", geom.V(0.55, 0.45, 0.19), MoveOptions{}); err != nil {
		t.Errorf("bare-gripper approach should clear the hotplate: %v", err)
	}
}

func TestTwoArmCollision(t *testing.T) {
	// Bug B mechanics: ViperX hovers above the grid; Ned2 is sent to a
	// nearby point and strikes it.
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	err := w.MoveArmTo("ned2", geom.V(0.34, 0.22, 0.24), MoveOptions{})
	if err == nil {
		t.Fatal("expected arm-arm collision")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Severity != SeverityMediumHigh {
		t.Errorf("severity = %v, want Medium-High", ce.Ev.Severity)
	}
	if !strings.Contains(ce.Ev.Description, "viperx") || !strings.Contains(ce.Ev.Description, "ned2") {
		t.Errorf("description %q should name both arms", ce.Ev.Description)
	}
}

func TestConcurrentMovesCanCollideMidFlight(t *testing.T) {
	w := testDeck(t)
	// Both arms sweep across the middle of the deck simultaneously.
	err := w.MoveArmsConcurrently([]ConcurrentMove{
		{ArmID: "viperx", Target: geom.V(0.55, 0.10, 0.25)},
		{ArmID: "ned2", Target: geom.V(0.35, 0.10, 0.25)},
	})
	if err == nil {
		t.Fatal("expected mid-flight collision between crossing arms")
	}
	if _, ok := AsCollision(err); !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
}

func TestConcurrentMovesInSeparateZonesAreSafe(t *testing.T) {
	w := testDeck(t)
	err := w.MoveArmsConcurrently([]ConcurrentMove{
		{ArmID: "viperx", Target: geom.V(0.25, 0.15, 0.25)},
		{ArmID: "ned2", Target: geom.V(0.75, 0.15, 0.25)},
	})
	if err != nil {
		t.Fatalf("zone-separated concurrent moves should be safe: %v", err)
	}
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("unexpected damage: %v", evs)
	}
}

func TestUnreachableTargetReturnsKinError(t *testing.T) {
	w := testDeck(t)
	err := w.MoveArmTo("viperx", geom.V(0.1, 0.1, 3.0), MoveOptions{})
	if err == nil {
		t.Fatal("expected unreachable error")
	}
	if _, isCollision := AsCollision(err); isCollision {
		t.Error("unreachable target must not be a collision")
	}
	a, _ := w.Arm("viperx")
	home, _ := a.Profile.Chain.EndEffector(a.Profile.Home)
	cur, _ := a.TCP()
	if cur.Dist(home) > 1e-9 {
		t.Error("arm moved despite unreachable target")
	}
}

func TestWrongRollSwingsFingersSideways(t *testing.T) {
	// Bug 12 mechanics: at the grid-adjacent waypoint, rolling the wrist
	// 90° swings the finger blade into the grid body.
	w := testDeck(t)
	// A point just left of the grid, low enough that a sideways finger
	// blade (+X swing) reaches into the grid body while vertical fingers
	// hang clear of everything. Both runs hover above the point first —
	// the wrappers' standard approach discipline.
	hover := geom.V(0.25, 0.28, 0.25)
	target := geom.V(0.25, 0.28, 0.07)
	clearVial(t, w)
	w2 := testDeck(t)
	clearVial(t, w2)
	mustMove(t, w2, "viperx", hover)
	if err := w2.MoveArmTo("viperx", target, MoveOptions{Roll: 0}); err != nil {
		t.Fatalf("vertical-finger move should be safe: %v", err)
	}
	mustMove(t, w, "viperx", hover)
	err := w.MoveArmTo("viperx", target, MoveOptions{Roll: math.Pi / 2})
	if err == nil {
		t.Fatal("expected finger blade to strike the grid")
	}
	ce, ok := AsCollision(err)
	if !ok {
		t.Fatalf("want CollisionError, got %v", err)
	}
	if ce.Ev.Severity != SeverityMediumHigh {
		t.Errorf("severity = %v, want Medium-High (grid strike)", ce.Ev.Severity)
	}
}

func TestDoseSolidSpillsWithoutContainer(t *testing.T) {
	w := testDeck(t)
	if err := w.DoseSolidInto("dosing_device", 5); err != nil {
		t.Fatal(err)
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Kind != EventSpill || evs[0].Severity != SeverityLow {
		t.Fatalf("expected Low spill, got %v", evs)
	}
}

func TestDoseSolidIntoPresentContainer(t *testing.T) {
	w := testDeck(t)
	if err := w.SetDoor("dosing_device", true); err != nil {
		t.Fatal(err)
	}
	// Carry the vial into the dosing device.
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.28))
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	mustMove(t, w, "viperx", geom.V(0.15, 0.45, 0.19))
	mustMove(t, w, "viperx", geom.V(0.15, 0.45, 0.10))
	if err := w.OpenGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	if o.At != "dd_pickup" {
		t.Fatalf("vial at %q, want dd_pickup", o.At)
	}
	// Withdraw (straight up past the released vial) and close the door
	// before dosing, as the real workflow does.
	if err := w.MoveArmTo("viperx", geom.V(0.15, 0.45, 0.19),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	if err := w.SetDoor("dosing_device", false); err != nil {
		t.Fatal(err)
	}
	if err := w.DoseSolidInto("dosing_device", 5); err != nil {
		t.Fatal(err)
	}
	if o.SolidMg != 5 {
		t.Errorf("solid = %v mg, want 5", o.SolidMg)
	}
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("unexpected damage: %v", evs)
	}
}

func TestDoseSolidOverflow(t *testing.T) {
	w := testDeck(t)
	if err := w.SetDoor("dosing_device", true); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	o.At = "dd_pickup" // teleport for test setup
	if err := w.SetDoor("dosing_device", false); err != nil {
		t.Fatal(err)
	}
	if err := w.DoseSolidInto("dosing_device", 25); err != nil {
		t.Fatal(err)
	}
	if o.SolidMg != o.CapacityMg {
		t.Errorf("solid = %v, want clamped to capacity %v", o.SolidMg, o.CapacityMg)
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Kind != EventSpill {
		t.Fatalf("expected overflow spill, got %v", evs)
	}
}

func TestDoseLiquidAndTransfer(t *testing.T) {
	w := testDeck(t)
	if err := w.AddFixture(&Fixture{ID: "pump", Kind: KindPump,
		Body: geom.Box(geom.V(0.7, 0.4, 0), geom.V(0.8, 0.5, 0.15))}); err != nil {
		t.Fatal(err)
	}
	if err := w.DoseLiquidInto("pump", "vial_1", 4); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	if o.LiquidML != 4 {
		t.Errorf("liquid = %v, want 4", o.LiquidML)
	}
	// Capped container: wasted.
	if err := w.SetCap("vial_1", true); err != nil {
		t.Fatal(err)
	}
	if err := w.DoseLiquidInto("pump", "vial_1", 4); err != nil {
		t.Fatal(err)
	}
	if o.LiquidML != 4 {
		t.Error("liquid changed despite stopper")
	}
	if evs := w.Events(); len(evs) != 1 || evs[0].Kind != EventSpill {
		t.Fatalf("expected spill event, got %v", evs)
	}
}

func TestTransferSubstanceBetweenContainers(t *testing.T) {
	w := testDeck(t)
	if err := w.AddLocation(Location{Name: "bench", Pos: geom.V(0.6, 0.1, 0.16)}); err != nil {
		t.Fatal(err)
	}
	b := &Object{ID: "beaker", HeightM: 0.1, RadiusM: 0.03, CapacityML: 100, LiquidML: 50, At: "bench"}
	if err := w.AddObject(b); err != nil {
		t.Fatal(err)
	}
	if err := w.TransferSubstance("beaker", "vial_1", 5); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	if o.LiquidML != 5 || b.LiquidML != 45 {
		t.Errorf("transfer wrong: vial %v, beaker %v", o.LiquidML, b.LiquidML)
	}
	// Transfer with stopper on wastes the material.
	if err := w.SetCap("vial_1", true); err != nil {
		t.Fatal(err)
	}
	if err := w.TransferSubstance("beaker", "vial_1", 5); err != nil {
		t.Fatal(err)
	}
	if o.LiquidML != 5 {
		t.Error("liquid passed a stopper")
	}
}

func TestHotplateOverheatDestroysDevice(t *testing.T) {
	w := testDeck(t)
	if err := w.SetFixtureValue("hotplate", 400); err != nil {
		t.Fatal(err)
	}
	if err := w.StartFixtureAction("hotplate"); err != nil {
		t.Fatal(err)
	}
	f, _ := w.Fixture("hotplate")
	if !f.Broken {
		t.Error("hotplate should be destroyed above its physical limit")
	}
	evs := w.Events()
	if len(evs) != 1 || evs[0].Kind != EventOverheat || evs[0].Severity != SeverityHigh {
		t.Fatalf("expected High overheat, got %v", evs)
	}
}

func TestHotplateSafeOperation(t *testing.T) {
	w := testDeck(t)
	if err := w.SetFixtureValue("hotplate", 120); err != nil {
		t.Fatal(err)
	}
	if err := w.StartFixtureAction("hotplate"); err != nil {
		t.Fatal(err)
	}
	f, _ := w.Fixture("hotplate")
	if f.Broken || f.Temperature != 120 || !f.Running {
		t.Errorf("hotplate state wrong: broken=%v temp=%v running=%v", f.Broken, f.Temperature, f.Running)
	}
	if err := w.StopFixtureAction("hotplate"); err != nil {
		t.Fatal(err)
	}
	if f.Running {
		t.Error("still running after stop")
	}
}

func TestCentrifugeUncappedSpraysContents(t *testing.T) {
	w := testDeck(t)
	cf := &Fixture{
		ID: "centrifuge", Kind: KindCentrifuge, Expensive: true,
		Body:        geom.Box(geom.V(0.65, 0.3, 0), geom.V(0.85, 0.5, 0.2)),
		Interior:    geom.Box(geom.V(0.68, 0.33, 0.03), geom.V(0.82, 0.47, 0.17)),
		Door:        DoorZPos,
		RedDotNorth: true,
	}
	if err := w.AddFixture(cf); err != nil {
		t.Fatal(err)
	}
	if err := w.AddLocation(Location{Name: "cf_slot", Pos: geom.V(0.75, 0.4, 0.12), Owner: "centrifuge", Inside: true}); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial_1")
	o.SolidMg, o.LiquidML = 5, 5
	o.At = "cf_slot"
	if err := w.StartFixtureAction("centrifuge"); err != nil {
		t.Fatal(err)
	}
	if o.SolidMg != 0 || o.LiquidML != 0 {
		t.Error("uncapped spin should spray contents")
	}
	evs := w.Events()
	if len(evs) != 2 || evs[0].Kind != EventSpill || evs[1].Severity != SeverityHigh {
		t.Fatalf("expected spill + High rotor damage, got %v", evs)
	}
	if !cf.Broken {
		t.Error("uncapped spin should unbalance and damage the rotor")
	}

	// Mis-aligned rotor damages a fresh centrifuge even with a capped vial.
	w2 := testDeck(t)
	cf2 := &Fixture{
		ID: "centrifuge", Kind: KindCentrifuge, Expensive: true,
		Body:     geom.Box(geom.V(0.65, 0.3, 0), geom.V(0.85, 0.5, 0.2)),
		Interior: geom.Box(geom.V(0.68, 0.33, 0.03), geom.V(0.82, 0.47, 0.17)),
		Door:     DoorZPos,
	}
	if err := w2.AddFixture(cf2); err != nil {
		t.Fatal(err)
	}
	if err := w2.AddLocation(Location{Name: "cf_slot", Pos: geom.V(0.75, 0.4, 0.12), Owner: "centrifuge", Inside: true}); err != nil {
		t.Fatal(err)
	}
	o2, _ := w2.Object("vial_1")
	o2.SolidMg, o2.LiquidML = 5, 5
	o2.Capped = true
	o2.At = "cf_slot"
	if err := w2.StartFixtureAction("centrifuge"); err != nil {
		t.Fatal(err)
	}
	if !cf2.Broken {
		t.Error("mis-aligned spin should damage the rotor")
	}
	if w2.MaxSeverity() != SeverityHigh {
		t.Errorf("max severity = %v, want High", w2.MaxSeverity())
	}
}

func TestMeasureSolubility(t *testing.T) {
	w := testDeck(t)
	o, _ := w.Object("vial_1")
	o.SolidMg = 10
	got, err := w.MeasureSolubility("vial_1")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("no solvent: solubility %v, want 0", got)
	}
	o.LiquidML = 2.5 // dissolves 5 mg of the 10
	got, err = w.MeasureSolubility("vial_1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("solubility = %v, want 0.5", got)
	}
	o.LiquidML = 50
	if got, _ = w.MeasureSolubility("vial_1"); got != 1 {
		t.Errorf("excess solvent: solubility %v, want 1", got)
	}
}

func TestMoveHomeAndSleep(t *testing.T) {
	w := testDeck(t)
	a, _ := w.Arm("viperx")
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.25))
	if err := w.MoveArmJoints("viperx", a.Profile.Sleep, true); err != nil {
		t.Fatalf("sleep move: %v", err)
	}
	if !a.Asleep {
		t.Error("arm should be asleep")
	}
	if err := w.MoveArmJoints("viperx", a.Profile.Home, false); err != nil {
		t.Fatalf("home move: %v", err)
	}
	if a.Asleep {
		t.Error("arm should be awake after homing")
	}
	if evs := w.Events(); len(evs) != 0 {
		t.Fatalf("home/sleep produced damage: %v", evs)
	}
}

func TestNamedLocationOfArm(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.38, 0.22, 0.16))
	name, err := w.NamedLocationOfArm("viperx")
	if err != nil {
		t.Fatal(err)
	}
	if name != "grid_NE" {
		t.Errorf("location = %q, want grid_NE", name)
	}
	mustMove(t, w, "viperx", geom.V(0.45, 0.10, 0.30))
	if name, _ = w.NamedLocationOfArm("viperx"); name != "" {
		t.Errorf("raw-coordinate position reported as %q", name)
	}
}

func TestEventLogAccounting(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.15, 0.30, 0.19))
	_ = w.MoveArmTo("viperx", geom.V(0.15, 0.45, 0.19), MoveOptions{}) // closed door
	if w.DamageCost() != SeverityHigh.Cost() {
		t.Errorf("damage cost = %v, want %v", w.DamageCost(), SeverityHigh.Cost())
	}
	w.ResetEvents()
	if len(w.Events()) != 0 || w.DamageCost() != 0 {
		t.Error("ResetEvents did not clear the log")
	}
}

func TestSeverityAndKindStrings(t *testing.T) {
	if SeverityLow.String() != "Low" || SeverityHigh.String() != "High" ||
		SeverityMediumLow.String() != "Medium-Low" || SeverityMediumHigh.String() != "Medium-High" {
		t.Error("severity names wrong")
	}
	if SeverityHigh.Cost() <= SeverityMediumHigh.Cost() {
		t.Error("High must cost more than Medium-High")
	}
	for k := EventCollision; k <= EventDrop; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Errorf("event kind %d has no name", k)
		}
	}
	for _, f := range []FixtureKind{KindGeneric, KindDosing, KindPump, KindHotplate,
		KindThermoshaker, KindCentrifuge, KindGrid, KindDecapper, KindSpinCoater, KindNozzle} {
		if s := f.String(); s == "" || strings.HasPrefix(s, "FixtureKind(") {
			t.Errorf("fixture kind %d has no name", f)
		}
	}
}

func TestMiscAccessors(t *testing.T) {
	w := testDeck(t)
	names := w.LocationNames()
	if len(names) == 0 {
		t.Fatal("no locations")
	}
	for i := 0; i+1 < len(names); i++ {
		if names[i] > names[i+1] {
			t.Fatal("location names unsorted")
		}
	}
	if _, ok := w.LocationAt("grid_NW"); !ok {
		t.Error("LocationAt failed")
	}
	if _, ok := w.LocationAt("ghost"); ok {
		t.Error("ghost location found")
	}
	ids := w.FixtureIDs()
	if len(ids) != 3 {
		t.Errorf("fixtures = %v", ids)
	}
	open, err := w.DoorIsOpen("dosing_device")
	if err != nil || open {
		t.Errorf("door starts closed: %v %v", open, err)
	}
	if _, err := w.DoorIsOpen("ghost"); err == nil {
		t.Error("ghost door answered")
	}
	if w.MaxSeverity() != 0 {
		t.Error("pristine deck has a severity")
	}
	if _, ok := w.ObjectAtLocation("grid_NW"); !ok {
		t.Error("vial not found at grid_NW")
	}
	if _, ok := w.ObjectInsideFixture("dosing_device"); ok {
		t.Error("phantom object inside the dosing device")
	}
	w.Advance(time.Second)
	if w.Now() < time.Second {
		t.Error("Advance did not move the clock")
	}
}

func TestMultiDoorPanelsInWorld(t *testing.T) {
	w := New(1)
	f := &Fixture{
		ID: "station", Kind: KindDecapper,
		Body:     geom.Box(geom.V(0, 0, 0), geom.V(0.2, 0.2, 0.3)),
		Interior: geom.Box(geom.V(0.03, 0.03, 0.03), geom.V(0.17, 0.17, 0.27)),
		Panels: []DoorPanel{
			{Name: "west", Side: DoorXNeg},
			{Name: "east", Side: DoorXPos},
		},
	}
	if err := w.AddFixture(f); err != nil {
		t.Fatal(err)
	}
	if err := w.SetDoorNamed("station", "west", true); err != nil {
		t.Fatal(err)
	}
	if !f.Panels[0].Open || f.Panels[1].Open {
		t.Fatalf("panel states wrong: %+v", f.Panels)
	}
	if err := w.SetDoorNamed("station", "north", true); err == nil {
		t.Fatal("unknown panel accepted")
	}
	if err := w.SetDoorNamed("station", "west", false); err != nil {
		t.Fatal(err)
	}
	if f.anyDoorOpen() {
		t.Error("all panels should be closed")
	}
}
