package world

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Object is a movable container on the deck — a vial, beaker, or test
// tube. Its position is one of: resting at a named location, held by an
// arm's gripper, or destroyed.
type Object struct {
	ID string
	// HeightM is the container height; when gripped at the cap, the
	// container hangs HeightM + gripClearance below the arm's tool
	// centre point — the dimension the paper's modified RABIT learned to
	// account for.
	HeightM float64
	// RadiusM is the container radius.
	RadiusM float64
	// CapacityMg / CapacityML bound the contents.
	CapacityMg float64
	CapacityML float64
	// SolidMg / LiquidML are the current contents.
	SolidMg  float64
	LiquidML float64
	// Capped reports whether the stopper is on.
	Capped bool
	// Broken is latched when the glassware shatters.
	Broken bool

	// At is the named location the object rests at ("" while held or
	// after breaking).
	At string
	// HeldBy is the arm holding the object ("" when resting).
	HeldBy string
}

// gripClearance is the extra hang between the tool centre point and the
// container top when gripped at the cap.
const gripClearance = 0.01

// liftEpsilon is how far the gripper raises a grasped container relative
// to its resting pose (grip compression): lifting a vial off a rack does
// not instantly scrape the rack it rested on.
const liftEpsilon = 0.005

// HangBelowTCP returns how far the object's bottom sits below the arm's
// tool centre point when the object *rests* at a location addressed by
// that TCP.
func (o *Object) HangBelowTCP() float64 { return o.HeightM + gripClearance }

// CarriedHang returns how far the object's bottom hangs below the TCP
// while gripped — the dimension the paper's modified RABIT learned to add
// to the arm's own geometry.
func (o *Object) CarriedHang() float64 { return o.HeightM + gripClearance - liftEpsilon }

// HasSolid reports whether the container holds any solid.
func (o *Object) HasSolid() bool { return o.SolidMg > 0 }

// HasLiquid reports whether the container holds any liquid.
func (o *Object) HasLiquid() bool { return o.LiquidML > 0 }

// IsEmpty reports whether the container is completely empty.
func (o *Object) IsEmpty() bool { return !o.HasSolid() && !o.HasLiquid() }

// AddObject registers a container resting at the named location.
func (w *World) AddObject(o *Object) error {
	if o == nil || o.ID == "" {
		return fmt.Errorf("world: object must have an ID")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.objects[o.ID]; dup {
		return fmt.Errorf("world: duplicate object %q", o.ID)
	}
	if o.At != "" {
		if _, ok := w.locations[o.At]; !ok {
			return fmt.Errorf("world: object %q placed at unknown location %q", o.ID, o.At)
		}
		for _, other := range w.objects {
			if other.At == o.At {
				return fmt.Errorf("world: location %q already occupied by %q", o.At, other.ID)
			}
		}
	}
	w.objects[o.ID] = o
	return nil
}

// Object returns the object by ID.
func (w *World) Object(id string) (*Object, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objects[id]
	return o, ok
}

// ObjectIDs returns all object IDs, sorted.
func (w *World) ObjectIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.objects))
	for id := range w.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ObjectAtLocation returns the object resting at the named location, if
// any.
func (w *World) ObjectAtLocation(loc string) (*Object, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.objectAtLocked(loc)
}

func (w *World) objectAtLocked(loc string) (*Object, bool) {
	for _, o := range w.objects {
		if o.At == loc && !o.Broken {
			return o, true
		}
	}
	return nil, false
}

// ObjectInsideFixture returns the (first) intact object resting at a
// location inside the given fixture.
func (w *World) ObjectInsideFixture(fixtureID string) (*Object, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.objectInsideLocked(fixtureID)
}

func (w *World) objectInsideLocked(fixtureID string) (*Object, bool) {
	for _, o := range w.objects {
		if o.Broken || o.At == "" {
			continue
		}
		if l, ok := w.locations[o.At]; ok && l.Owner == fixtureID && l.Inside {
			return o, true
		}
	}
	return nil, false
}

// objectBoxAtLocked returns the global AABB of an object resting at its
// location (callers hold w.mu).
func (w *World) objectBoxAtLocked(o *Object) (geom.AABB, bool) {
	if o.At == "" {
		return geom.AABB{}, false
	}
	l, ok := w.locations[o.At]
	if !ok {
		return geom.AABB{}, false
	}
	// The location's Pos is the TCP grip point: the object top sits just
	// below it.
	top := l.Pos.Z - gripClearance
	c := geom.V(l.Pos.X, l.Pos.Y, top-o.HeightM/2)
	return geom.BoxAt(c, geom.V(2*o.RadiusM, 2*o.RadiusM, o.HeightM)), true
}

// SetCap physically caps or uncaps a container (performed by a decapper
// device or by hand in the workflows).
func (w *World) SetCap(objectID string, capped bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objects[objectID]
	if !ok {
		return fmt.Errorf("world: no object %q", objectID)
	}
	if o.Broken {
		return fmt.Errorf("world: object %q is broken", objectID)
	}
	o.Capped = capped
	return nil
}
