package world

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/kin"
)

// Arm is the ground-truth state of a robot arm on the deck. Its kinematic
// chain is mounted at a global base pose; all world-level geometry is
// global, even though scripts command arms in per-arm frames (the drivers
// translate).
type Arm struct {
	ID      string
	Profile *kin.Profile
	// Joints is the current joint configuration.
	Joints []float64
	// Holding is the ID of the gripped object ("" when the gripper is
	// empty or closed on air).
	Holding string
	// GripperClosed tracks the physical gripper state; closing on air
	// still closes the gripper (relevant to the reordered-gripper bug).
	GripperClosed bool
	// Asleep reports whether the arm rests in its sleep pose.
	Asleep bool
	// Roll is the current wrist roll; 0 points the gripper fingers
	// straight down. The paper's "wrong gripper orientation" bug swings
	// the finger blade sideways, which RABIT's link-level model misses.
	Roll float64
	// FingerDrop is how far the fingers extend below the tool centre
	// point; FingerRadius is their collision radius.
	FingerDrop   float64
	FingerRadius float64

	// commandedTCP/actualTCP record the last move for precision
	// accounting (Table I "device precision" row).
	commandedTCP geom.Vec3
	actualTCP    geom.Vec3
}

// DefaultFingerDrop is the standard gripper finger extension below the TCP.
const DefaultFingerDrop = 0.05

// DefaultFingerRadius is the standard finger collision radius.
const DefaultFingerRadius = 0.012

// graspTolerance is how close the TCP must be to a location's grip point
// for a grasp or placement to succeed.
const graspTolerance = 0.02

// labeledCapsule tags a collision capsule with the arm part it models so
// collision consequences can be attributed (a held vial shattering is a
// different event than a link strike).
type labeledCapsule struct {
	cap  geom.Capsule
	part string // "link", "fingers", or "held:<objectID>"
}

// AddArm mounts an arm on the deck in its profile's home configuration.
func (w *World) AddArm(id string, p *kin.Profile) (*Arm, error) {
	if id == "" || p == nil {
		return nil, fmt.Errorf("world: arm needs an ID and a profile")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.arms[id]; dup {
		return nil, fmt.Errorf("world: duplicate arm %q", id)
	}
	a := &Arm{
		ID:           id,
		Profile:      p,
		Joints:       append([]float64(nil), p.Home...),
		FingerDrop:   DefaultFingerDrop,
		FingerRadius: DefaultFingerRadius,
	}
	w.arms[id] = a
	return a, nil
}

// Arm returns the arm by ID.
func (w *World) Arm(id string) (*Arm, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[id]
	return a, ok
}

// ArmAsleep reports whether the arm is folded in its sleep pose, read
// under the world lock (drivers must not retain *Arm across the lock —
// state fetches run concurrently with command execution).
func (w *World) ArmAsleep(id string) (bool, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[id]
	if !ok {
		return false, false
	}
	return a.Asleep, true
}

// ArmIDs returns all arm IDs, sorted.
func (w *World) ArmIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.arms))
	for id := range w.arms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TCP returns the arm's current tool-centre-point position (global frame).
func (a *Arm) TCP() (geom.Vec3, error) {
	return a.Profile.Chain.EndEffector(a.Joints)
}

// fingerDirection returns the unit direction the finger blade points in
// for a given wrist roll: straight down at roll 0, swinging toward +X as
// roll grows.
func fingerDirection(roll float64) geom.Vec3 {
	return geom.V(math.Sin(roll), 0, -math.Cos(roll))
}

// capsules returns the arm's own collision volume: chain links plus the
// finger blade (oriented by the current roll). It does not include a held
// object; see capsulesWithHeld.
func (a *Arm) capsules() ([]geom.Capsule, error) {
	caps, err := a.Profile.Chain.LinkCapsules(a.Joints)
	if err != nil {
		return nil, err
	}
	tcp, err := a.TCP()
	if err != nil {
		return nil, err
	}
	tip := tcp.Add(fingerDirection(a.Roll).Scale(a.FingerDrop))
	caps = append(caps, geom.NewCapsule(tcp, tip, a.FingerRadius))
	return caps, nil
}

// labeledCapsulesAt returns the labelled collision volume for an arbitrary
// joint configuration and roll, including the held object (if any) hanging
// below the TCP. Held objects hang straight down regardless of roll — the
// gripper holds vials by the cap, so gravity keeps them vertical.
func (w *World) labeledCapsulesAt(a *Arm, joints []float64, roll float64) ([]labeledCapsule, error) {
	linkCaps, err := a.Profile.Chain.LinkCapsules(joints)
	if err != nil {
		return nil, err
	}
	out := make([]labeledCapsule, 0, len(linkCaps)+2)
	for _, c := range linkCaps {
		out = append(out, labeledCapsule{cap: c, part: "link"})
	}
	tcp, err := a.Profile.Chain.EndEffector(joints)
	if err != nil {
		return nil, err
	}
	tip := tcp.Add(fingerDirection(roll).Scale(a.FingerDrop))
	out = append(out, labeledCapsule{
		cap:  geom.NewCapsule(tcp, tip, a.FingerRadius),
		part: "fingers",
	})
	if a.Holding != "" {
		if o, ok := w.objects[a.Holding]; ok && !o.Broken {
			// The capsule's *surface* must end exactly at the object's
			// bottom, so the segment stops one radius short of it.
			hang := o.CarriedHang() - o.RadiusM
			if hang < 0 {
				hang = 0
			}
			bottom := tcp.Add(geom.V(0, 0, -hang))
			out = append(out, labeledCapsule{
				cap:  geom.NewCapsule(tcp, bottom, o.RadiusM),
				part: "held:" + o.ID,
			})
		}
	}
	return out, nil
}

// CloseGripper closes the arm's gripper. If an intact object rests at a
// location whose grip point coincides with the current TCP, the object is
// grasped; otherwise the gripper simply closes on air (which is exactly
// what happens in the paper's Bug C family — no sensor reports the
// difference).
func (w *World) CloseGripper(armID string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return fmt.Errorf("world: no arm %q", armID)
	}
	w.now += 500 * time.Millisecond
	if a.GripperClosed {
		return nil
	}
	a.GripperClosed = true
	if a.Holding != "" {
		return nil
	}
	tcp, err := a.Profile.Chain.EndEffector(a.Joints)
	if err != nil {
		return fmt.Errorf("world: close gripper on %q: %w", armID, err)
	}
	for _, o := range w.objects {
		if o.Broken || o.At == "" {
			continue
		}
		l, ok := w.locations[o.At]
		if !ok {
			continue
		}
		if l.Pos.Dist(tcp) <= graspTolerance {
			o.HeldBy = armID
			o.At = ""
			a.Holding = o.ID
			return nil
		}
	}
	return nil
}

// OpenGripper opens the arm's gripper. A held object is placed at a free
// location whose grip point coincides with the TCP; with no such location
// beneath it, the object is dropped — glass dropped from height shatters.
func (w *World) OpenGripper(armID string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	a, ok := w.arms[armID]
	if !ok {
		return fmt.Errorf("world: no arm %q", armID)
	}
	w.now += 500 * time.Millisecond
	a.GripperClosed = false
	if a.Holding == "" {
		return nil
	}
	o := w.objects[a.Holding]
	a.Holding = ""
	if o == nil {
		return nil
	}
	o.HeldBy = ""
	tcp, err := a.Profile.Chain.EndEffector(a.Joints)
	if err != nil {
		return fmt.Errorf("world: open gripper on %q: %w", armID, err)
	}
	for name, l := range w.locations {
		if l.Pos.Dist(tcp) > graspTolerance {
			continue
		}
		if _, occupied := w.objectAtLocked(name); occupied {
			continue
		}
		o.At = name
		return nil
	}
	// No location underneath: the object falls.
	dropHeight := tcp.Z - o.CarriedHang() - w.floorZ
	if dropHeight > 0.02 {
		o.Broken = true
		w.recordEvent(EventDrop, SeverityMediumLow,
			fmt.Sprintf("arm %s released %s mid-air; it fell %.2f m and shattered", armID, o.ID, dropHeight),
			armID, o.ID)
		return nil
	}
	// Released at deck level outside any slot: contents may spill but the
	// glass survives; treat as a spill of any contents.
	if !o.IsEmpty() && !o.Capped {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s tipped over on the deck and spilled", o.ID), armID, o.ID)
		o.SolidMg, o.LiquidML = 0, 0
	}
	o.At = ""
	return nil
}

// Precision returns the Cartesian error of the arm's last completed move
// (commanded vs achieved TCP), the paper's "device precision" notion.
func (a *Arm) Precision() float64 {
	if a.commandedTCP == (geom.Vec3{}) && a.actualTCP == (geom.Vec3{}) {
		return 0
	}
	return a.commandedTCP.Dist(a.actualTCP)
}
