package world

import (
	"fmt"
	"time"
)

// DoseSolidInto dispenses amountMg of solid from a dosing fixture into
// whatever container sits at the fixture's dosing position. With no
// container present the solid spills (a Low-severity waste event — the
// ground truth of the paper's "experiments without a vial" category);
// exceeding the container's capacity overflows.
func (w *World) DoseSolidInto(fixtureID string, amountMg float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	if amountMg < 0 {
		return fmt.Errorf("world: negative dose %v mg", amountMg)
	}
	w.now += 3 * time.Second
	if f.hollow() && f.DoorOpen {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s dosed with its door open; dust escaped the enclosure", f.ID), f.ID)
	}
	o, present := w.objectInsideLocked(fixtureID)
	if !present {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s dosed %.1f mg of solid with no container present; material wasted", f.ID, amountMg),
			f.ID)
		return nil
	}
	if o.Capped {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s dosed onto the stopper of capped container %s; material wasted", f.ID, o.ID),
			f.ID, o.ID)
		return nil
	}
	if o.SolidMg+amountMg > o.CapacityMg {
		over := o.SolidMg + amountMg - o.CapacityMg
		o.SolidMg = o.CapacityMg
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("container %s overflowed by %.1f mg while dosing", o.ID, over),
			f.ID, o.ID)
		return nil
	}
	o.SolidMg += amountMg
	return nil
}

// DoseLiquidInto dispenses volumeML of liquid from a pump fixture into the
// named container, wherever it rests. The syringe pump reaches containers
// through tubing, so no arm motion is involved.
func (w *World) DoseLiquidInto(fixtureID, objectID string, volumeML float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	o, ok := w.objects[objectID]
	if !ok {
		return fmt.Errorf("world: no object %q", objectID)
	}
	if volumeML < 0 {
		return fmt.Errorf("world: negative volume %v mL", volumeML)
	}
	w.now += 2 * time.Second
	if o.Broken {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s pumped %.1f mL into broken container %s", f.ID, volumeML, o.ID),
			f.ID, o.ID)
		return nil
	}
	if o.Capped {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("%s pumped against the stopper of %s; liquid wasted", f.ID, o.ID),
			f.ID, o.ID)
		return nil
	}
	if o.LiquidML+volumeML > o.CapacityML {
		over := o.LiquidML + volumeML - o.CapacityML
		o.LiquidML = o.CapacityML
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("container %s overflowed by %.1f mL", o.ID, over),
			f.ID, o.ID)
		return nil
	}
	o.LiquidML += volumeML
	return nil
}

// TransferSubstance moves volumeML of liquid between containers. Pouring
// from or into a capped container wastes the material (the stopper rules,
// general rules 7–8).
func (w *World) TransferSubstance(fromID, toID string, volumeML float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	from, ok := w.objects[fromID]
	if !ok {
		return fmt.Errorf("world: no object %q", fromID)
	}
	to, ok := w.objects[toID]
	if !ok {
		return fmt.Errorf("world: no object %q", toID)
	}
	w.now += 2 * time.Second
	if from.Capped || to.Capped {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("transfer %s→%s attempted with a stopper on; liquid wasted", fromID, toID),
			fromID, toID)
		return nil
	}
	vol := volumeML
	if vol > from.LiquidML {
		vol = from.LiquidML
	}
	from.LiquidML -= vol
	room := to.CapacityML - to.LiquidML
	if vol > room {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("container %s overflowed by %.1f mL during transfer", toID, vol-room),
			fromID, toID)
		vol = room
	}
	to.LiquidML += vol
	return nil
}

// SetFixtureValue sets an action device's physical setpoint (temperature,
// stirring speed, spin rate). The value takes effect immediately; damage
// only occurs once the device runs.
func (w *World) SetFixtureValue(fixtureID string, value float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	f.ActionValue = value
	w.now += 100 * time.Millisecond
	return nil
}

// StartFixtureAction starts an action device or a dosing run. Physical
// consequences of unsafe starts:
//   - running above the device's physical limit overheats/overdrives it
//     (High severity — the hotplate threshold rule exists for this);
//   - spinning a centrifuge with an uncapped container sprays its
//     contents; with a mis-aligned rotor the centrifuge is damaged;
//   - heating/shaking an empty or container-less device wears it without
//     producing results (no damage event, but pointless).
func (w *World) StartFixtureAction(fixtureID string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	f.Running = true
	w.now += 500 * time.Millisecond
	if f.MaxSafeValue > 0 && f.ActionValue > f.MaxSafeValue {
		f.Broken = true
		w.recordEvent(EventOverheat, SeverityHigh,
			fmt.Sprintf("%s ran at %.0f, beyond its physical limit %.0f, and was destroyed",
				f.ID, f.ActionValue, f.MaxSafeValue), f.ID)
		return nil
	}
	if f.Kind == KindHotplate {
		f.Temperature = f.ActionValue
	}
	if f.Kind == KindCentrifuge {
		if o, present := w.objectInsideLocked(f.ID); present {
			if !o.Capped {
				if !o.IsEmpty() {
					w.recordEvent(EventSpill, SeverityLow,
						fmt.Sprintf("centrifuge %s spun uncapped container %s; contents sprayed", f.ID, o.ID),
						f.ID, o.ID)
					o.SolidMg, o.LiquidML = 0, 0
				}
				// An uncapped vial leaves the rotor unbalanced — the
				// expensive-equipment damage Table IV's rule 4 prevents.
				f.Broken = true
				w.recordEvent(EventCollision, SeverityHigh,
					fmt.Sprintf("centrifuge %s rotor destroyed spinning uncapped container %s", f.ID, o.ID),
					f.ID, o.ID)
			}
			if !f.RedDotNorth && !f.Broken {
				f.Broken = true
				w.recordEvent(EventCollision, SeverityHigh,
					fmt.Sprintf("centrifuge %s spun with rotor mis-aligned; rotor damaged", f.ID), f.ID)
			}
		}
	}
	return nil
}

// StopFixtureAction stops a running device.
func (w *World) StopFixtureAction(fixtureID string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	f.Running = false
	if f.Kind == KindHotplate {
		f.Temperature = 20
	}
	w.now += 500 * time.Millisecond
	return nil
}

// MeasureSolubility models the vision-based solubility measurement of the
// Fig. 1(b) workflow: the fraction of the solid dissolved in the liquid,
// read with stage-dependent noise added by the caller's environment.
func (w *World) MeasureSolubility(objectID string) (float64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objects[objectID]
	if !ok {
		return 0, fmt.Errorf("world: no object %q", objectID)
	}
	if o.Broken {
		return 0, fmt.Errorf("world: container %q is broken", objectID)
	}
	w.now += 1 * time.Second
	if o.SolidMg <= 0 {
		return 1, nil
	}
	// Dissolution model: each mL of solvent dissolves up to 2 mg.
	dissolved := o.LiquidML * 2
	if dissolved > o.SolidMg {
		dissolved = o.SolidMg
	}
	return dissolved / o.SolidMg, nil
}
