package world

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestWorldInvariantsUnderRandomOperations drives the deck with hundreds
// of random operations (moves, grips, doors, doses) and checks the
// physical invariants after every step:
//
//  1. an intact object is never both resting and held;
//  2. no two intact objects occupy the same location;
//  3. the event log only grows and the clock never runs backwards;
//  4. a held object's holder actually reports holding it.
func TestWorldInvariantsUnderRandomOperations(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		w := testDeck(t)
		rng := rand.New(rand.NewSource(seed))
		lastEvents := 0
		lastNow := w.Now()

		targets := []geom.Vec3{
			{X: 0.32, Y: 0.22, Z: 0.23}, {X: 0.38, Y: 0.22, Z: 0.23},
			{X: 0.32, Y: 0.22, Z: 0.16}, {X: 0.38, Y: 0.22, Z: 0.16},
			{X: 0.25, Y: 0.05, Z: 0.30}, {X: 0.45, Y: 0.10, Z: 0.25},
			{X: 0.15, Y: 0.30, Z: 0.19}, {X: 0.15, Y: 0.45, Z: 0.19},
			{X: 0.15, Y: 0.45, Z: 0.10}, {X: 0.30, Y: -0.05, Z: 0.28},
		}
		arms := []string{"viperx", "ned2"}

		for step := 0; step < 200; step++ {
			switch rng.Intn(7) {
			case 0, 1, 2:
				arm := arms[rng.Intn(len(arms))]
				tgt := targets[rng.Intn(len(targets))]
				// Errors (collisions, unreachable) are allowed — the
				// invariants must hold regardless.
				_ = w.MoveArmTo(arm, tgt, MoveOptions{IgnoreObjects: []string{"vial_1"}})
			case 3:
				_ = w.CloseGripper(arms[rng.Intn(len(arms))])
			case 4:
				_ = w.OpenGripper(arms[rng.Intn(len(arms))])
			case 5:
				_ = w.SetDoor("dosing_device", rng.Intn(2) == 0)
			case 6:
				_ = w.DoseSolidInto("dosing_device", float64(rng.Intn(5)))
			}

			// Invariant 1 & 4.
			for _, id := range w.ObjectIDs() {
				o, _ := w.Object(id)
				if o.At != "" && o.HeldBy != "" {
					t.Fatalf("seed %d step %d: object %s both at %q and held by %q",
						seed, step, id, o.At, o.HeldBy)
				}
				if o.HeldBy != "" {
					a, ok := w.Arm(o.HeldBy)
					if !ok || a.Holding != id {
						t.Fatalf("seed %d step %d: holder mismatch for %s", seed, step, id)
					}
				}
			}
			// Invariant 2.
			occupied := map[string]string{}
			for _, id := range w.ObjectIDs() {
				o, _ := w.Object(id)
				if o.Broken || o.At == "" {
					continue
				}
				if prev, dup := occupied[o.At]; dup {
					t.Fatalf("seed %d step %d: %s and %s share location %s", seed, step, prev, id, o.At)
				}
				occupied[o.At] = id
			}
			// Invariant 3.
			if n := len(w.Events()); n < lastEvents {
				t.Fatalf("seed %d step %d: event log shrank", seed, step)
			} else {
				lastEvents = n
			}
			if now := w.Now(); now < lastNow {
				t.Fatalf("seed %d step %d: clock ran backwards", seed, step)
			} else {
				lastNow = now
			}
		}
	}
}

// TestArmHoldingSymmetry: every arm that claims to hold an object is
// corroborated by the object, across a scripted grip sequence.
func TestArmHoldingSymmetry(t *testing.T) {
	w := testDeck(t)
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	if err := w.MoveArmTo("viperx", geom.V(0.32, 0.22, 0.16),
		MoveOptions{IgnoreObjects: []string{"vial_1"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.CloseGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		for _, armID := range w.ArmIDs() {
			a, _ := w.Arm(armID)
			if a.Holding == "" {
				continue
			}
			o, ok := w.Object(a.Holding)
			if !ok || o.HeldBy != armID {
				t.Fatalf("arm %s claims %q but the object disagrees", armID, a.Holding)
			}
		}
	}
	check()
	mustMove(t, w, "viperx", geom.V(0.32, 0.22, 0.23))
	check()
	if err := w.OpenGripper("viperx"); err != nil {
		t.Fatal(err)
	}
	check()
}
