package world

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
)

// DoorSide identifies which face of a fixture's body cuboid carries its
// door.
type DoorSide int

// Door sides (axis-aligned faces of the body box).
const (
	DoorNone DoorSide = iota
	DoorXNeg
	DoorXPos
	DoorYNeg
	DoorYPos
	DoorZPos // top-loading devices such as the centrifuge
)

// FixtureKind selects physical behaviour for a fixture's action.
type FixtureKind int

// Fixture kinds on the decks we model.
const (
	KindGeneric FixtureKind = iota + 1
	KindDosing              // solid dosing device (glass door)
	KindPump                // automated syringe pump
	KindHotplate
	KindThermoshaker
	KindCentrifuge
	KindGrid // vial rack
	KindDecapper
	KindSpinCoater
	KindNozzle
	KindSensor // presence sensor watching a zone
)

// String names the fixture kind.
func (k FixtureKind) String() string {
	switch k {
	case KindGeneric:
		return "generic"
	case KindDosing:
		return "dosing"
	case KindPump:
		return "pump"
	case KindHotplate:
		return "hotplate"
	case KindThermoshaker:
		return "thermoshaker"
	case KindCentrifuge:
		return "centrifuge"
	case KindGrid:
		return "grid"
	case KindDecapper:
		return "decapper"
	case KindSpinCoater:
		return "spin-coater"
	case KindNozzle:
		return "nozzle"
	case KindSensor:
		return "sensor"
	default:
		return fmt.Sprintf("FixtureKind(%d)", int(k))
	}
}

// Fixture is a stationary device body on the deck: a cuboid, optionally
// hollow with an interior reachable through a door on one face. The
// paper's Extended Simulator models every automation device exactly this
// way (Fig. 3).
type Fixture struct {
	ID   string
	Kind FixtureKind
	// Body is the outer cuboid in the global frame.
	Body geom.AABB
	// Interior is the hollow region reachable through the door; the zero
	// box means the fixture is solid (e.g. the vial grid, a mockup).
	Interior geom.AABB
	// Door is the face carrying the (glass) door; DoorNone for solid or
	// always-open fixtures.
	Door DoorSide
	// DoorOpen is the physical door state.
	DoorOpen bool
	// Panels declares multiple named door panels (the multi-door
	// extension); when non-empty, Door/DoorOpen are ignored.
	Panels []DoorPanel
	// Expensive marks equipment whose breakage is SeverityHigh
	// (dosing device, centrifuge…); cheap mockups and grids are
	// SeverityMediumHigh.
	Expensive bool
	// Broken is latched once the fixture is damaged.
	Broken bool
	// Hot tracks the actual temperature of heating devices (°C).
	Temperature float64
	// Running and ActionValue mirror the device's physical action state.
	Running     bool
	ActionValue float64
	// MaxSafeValue is the physical limit beyond which running the action
	// damages the device (general rule 11's threshold refers to the
	// *configured* limit, which should be at or below this).
	MaxSafeValue float64
	// RedDotNorth models the Hein Lab centrifuge's rotor alignment mark
	// (custom rule 3); meaningful only for centrifuges.
	RedDotNorth bool
	// Occupied is a presence sensor's reading: something (a person, an
	// unexpected object) is inside its monitored zone. The zone itself
	// is the fixture's Body cuboid, which is not solid for sensors.
	Occupied bool
	// Rounded marks the body as a rounded solid (cylinder/dome): the
	// collision volume is the largest vertical capsule inscribed in
	// Body rather than the cuboid itself.
	Rounded bool
}

// roundedCapsule returns the body's rounded collision volume.
func (f *Fixture) roundedCapsule() geom.Capsule {
	return geom.InscribedVerticalCapsule(f.Body)
}

// DoorPanel is one named door of a multi-door fixture.
type DoorPanel struct {
	Name string
	Side DoorSide
	Open bool
}

// panelViews normalises the fixture's doors: named panels when declared,
// else the legacy single unnamed panel.
func (f *Fixture) panelViews() []DoorPanel {
	if len(f.Panels) > 0 {
		return f.Panels
	}
	if f.Door != DoorNone {
		return []DoorPanel{{Name: "", Side: f.Door, Open: f.DoorOpen}}
	}
	return nil
}

// anyDoorOpen reports whether any panel is open.
func (f *Fixture) anyDoorOpen() bool {
	for _, p := range f.panelViews() {
		if p.Open {
			return true
		}
	}
	return false
}

// hollow reports whether the fixture has a usable interior.
func (f *Fixture) hollow() bool { return f.Interior.IsValid() && f.Interior.Volume() > 0 }

// severity returns the damage severity for breaking this fixture.
func (f *Fixture) severity() Severity {
	if f.Expensive {
		return SeverityHigh
	}
	return SeverityMediumHigh
}

// doorSlab returns the cuboid occupied by the legacy single door panel.
func (f *Fixture) doorSlab() (geom.AABB, bool) {
	if f.Door == DoorNone || !f.hollow() {
		return geom.AABB{}, false
	}
	return f.slabForSide(f.Door)
}

// slabForSide returns the door-panel cuboid on the given body face: the
// slab between the interior and that face.
func (f *Fixture) slabForSide(side DoorSide) (geom.AABB, bool) {
	if !f.hollow() {
		return geom.AABB{}, false
	}
	b, in := f.Body, f.Interior
	switch side {
	case DoorXNeg:
		return geom.AABB{Min: geom.V(b.Min.X, in.Min.Y, in.Min.Z), Max: geom.V(in.Min.X, in.Max.Y, in.Max.Z)}, true
	case DoorXPos:
		return geom.AABB{Min: geom.V(in.Max.X, in.Min.Y, in.Min.Z), Max: geom.V(b.Max.X, in.Max.Y, in.Max.Z)}, true
	case DoorYNeg:
		return geom.AABB{Min: geom.V(in.Min.X, b.Min.Y, in.Min.Z), Max: geom.V(in.Max.X, in.Min.Y, in.Max.Z)}, true
	case DoorYPos:
		return geom.AABB{Min: geom.V(in.Min.X, in.Max.Y, in.Min.Z), Max: geom.V(in.Max.X, b.Max.Y, in.Max.Z)}, true
	case DoorZPos:
		return geom.AABB{Min: geom.V(in.Min.X, in.Min.Y, in.Max.Z), Max: geom.V(in.Max.X, in.Max.Y, b.Max.Z)}, true
	default:
		return geom.AABB{}, false
	}
}

// AddFixture registers a fixture body on the deck.
func (w *World) AddFixture(f *Fixture) error {
	if f == nil || f.ID == "" {
		return fmt.Errorf("world: fixture must have an ID")
	}
	if !f.Body.IsValid() {
		return fmt.Errorf("world: fixture %q has invalid body box", f.ID)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.fixtures[f.ID]; dup {
		return fmt.Errorf("world: duplicate fixture %q", f.ID)
	}
	w.fixtures[f.ID] = f
	return nil
}

// Fixture returns the fixture by ID.
func (w *World) Fixture(id string) (*Fixture, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[id]
	return f, ok
}

// FixtureIDs returns all fixture IDs, sorted.
func (w *World) FixtureIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.fixtures))
	for id := range w.fixtures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetDoor physically opens or closes a fixture's sole door. Closing the
// door while a robot arm (or its held object) occupies the doorway or
// interior breaks the door — the incident in footnote 1 of the paper.
func (w *World) SetDoor(fixtureID string, open bool) error {
	return w.SetDoorNamed(fixtureID, "", open)
}

// SetDoorNamed operates one named panel of a multi-door fixture (the
// empty name selects the legacy sole door).
func (w *World) SetDoorNamed(fixtureID, door string, open bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return fmt.Errorf("world: no fixture %q", fixtureID)
	}
	var side DoorSide
	var panel *DoorPanel
	switch {
	case len(f.Panels) > 0:
		for i := range f.Panels {
			if f.Panels[i].Name == door {
				panel = &f.Panels[i]
				side = f.Panels[i].Side
			}
		}
		if panel == nil {
			return fmt.Errorf("world: fixture %q has no door %q", fixtureID, door)
		}
	case f.Door != DoorNone && door == "":
		side = f.Door
	default:
		return fmt.Errorf("world: fixture %q has no door %q", fixtureID, door)
	}

	wasOpen := f.DoorOpen
	if panel != nil {
		wasOpen = panel.Open
	}
	if !open && wasOpen {
		// Closing: check every arm's capsules against the doorway+interior.
		slab, _ := f.slabForSide(side)
		zone := slab.Union(f.Interior)
		for _, a := range w.arms {
			caps, err := a.capsules()
			if err != nil {
				continue
			}
			for _, c := range caps {
				if geom.CapsuleAABBIntersect(c, zone) {
					f.Broken = true
					w.recordEvent(EventDoorBreak, f.severity(),
						fmt.Sprintf("door of %s closed onto arm %s", f.ID, a.ID), f.ID, a.ID)
					setPanelOpen(f, panel, false)
					return nil
				}
			}
		}
	}
	if open && f.Running {
		w.recordEvent(EventSpill, SeverityLow,
			fmt.Sprintf("door of %s opened while the device was running; material escaped", f.ID), f.ID)
	}
	setPanelOpen(f, panel, open)
	w.now += 1500 * time.Millisecond // door actuation time
	return nil
}

func setPanelOpen(f *Fixture, panel *DoorPanel, open bool) {
	if panel != nil {
		panel.Open = open
		return
	}
	f.DoorOpen = open
}

// FixtureStatus is a point-in-time value copy of a fixture's observable
// state. Drivers read it instead of holding a *Fixture across the lock
// boundary: state fetches now run concurrently with command execution
// (the engine's sharded pipeline), so any retained pointer would race
// with the mutating world methods.
type FixtureStatus struct {
	Kind        FixtureKind
	DoorOpen    bool
	Panels      []DoorPanel
	Running     bool
	ActionValue float64
	RedDotNorth bool
	Occupied    bool
}

// FixtureStatus returns the fixture's observable state under the world
// lock. The Panels slice is a copy.
func (w *World) FixtureStatus(id string) (FixtureStatus, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[id]
	if !ok {
		return FixtureStatus{}, false
	}
	st := FixtureStatus{
		Kind:        f.Kind,
		DoorOpen:    f.DoorOpen,
		Running:     f.Running,
		ActionValue: f.ActionValue,
		RedDotNorth: f.RedDotNorth,
		Occupied:    f.Occupied,
	}
	if len(f.Panels) > 0 {
		st.Panels = append([]DoorPanel(nil), f.Panels...)
	}
	return st, true
}

// DoorIsOpen reports the physical state of the sole door.
func (w *World) DoorIsOpen(fixtureID string) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	f, ok := w.fixtures[fixtureID]
	if !ok {
		return false, fmt.Errorf("world: no fixture %q", fixtureID)
	}
	return f.DoorOpen, nil
}
