// Package world is the ground-truth physical model of a self-driving lab
// deck. It is the substrate everything else observes through noisy,
// partial interfaces: device drivers command it, RABIT never sees it
// directly, and the evaluation harness queries it to decide whether an
// injected bug *actually* caused damage (the paper's Table V severity
// ground truth).
//
// The world is deliberately kinematic, not dynamic: arms sweep capsule
// chains along trajectories, collisions are detected geometrically, and
// consequences (broken glassware, cracked doors, spilled solids) are
// recorded as damage events with severities matching the paper's Table V
// taxonomy.
package world

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/kin"
)

// Severity grades damage, matching Table V of the paper.
type Severity int

// Severity levels from Table V.
const (
	// SeverityLow is wasted chemical material (e.g. solid spilled out of
	// a vial).
	SeverityLow Severity = iota + 1
	// SeverityMediumLow is breakage of glassware (e.g. a dropped vial).
	SeverityMediumLow
	// SeverityMediumHigh is harm to the environment or inexpensive
	// nearby objects: the mounting platform, walls, or vial grids.
	SeverityMediumHigh
	// SeverityHigh is breakage of expensive lab equipment (e.g. the
	// dosing device).
	SeverityHigh
)

// String renders the Table V severity name.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "Low"
	case SeverityMediumLow:
		return "Medium-Low"
	case SeverityMediumHigh:
		return "Medium-High"
	case SeverityHigh:
		return "High"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Cost returns a representative replacement cost (USD) for one event of
// this severity, used by the Table I "risk of damage" measurement.
func (s Severity) Cost() float64 {
	switch s {
	case SeverityLow:
		return 5
	case SeverityMediumLow:
		return 40
	case SeverityMediumHigh:
		return 400
	case SeverityHigh:
		return 20000
	default:
		return 0
	}
}

// EventKind classifies damage events.
type EventKind int

// Damage event kinds.
const (
	EventCollision EventKind = iota + 1
	EventGlassBreak
	EventDoorBreak
	EventSpill
	EventOverheat
	EventDrop
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCollision:
		return "collision"
	case EventGlassBreak:
		return "glass-break"
	case EventDoorBreak:
		return "door-break"
	case EventSpill:
		return "spill"
	case EventOverheat:
		return "overheat"
	case EventDrop:
		return "drop"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one damage occurrence in the ground-truth world.
type Event struct {
	Time        time.Duration
	Kind        EventKind
	Severity    Severity
	Description string
	// Involved lists the IDs of arms/fixtures/objects involved.
	Involved []string
}

// String renders the event for reports.
func (e Event) String() string {
	return fmt.Sprintf("[%8s] %-12s %-11s %s", e.Time.Truncate(time.Millisecond),
		e.Kind, e.Severity, e.Description)
}

// World is the ground-truth deck. All methods are safe for concurrent use;
// the concurrent two-arm moves of the multiplexing experiments are driven
// through MoveArmsConcurrently, which itself synchronises the sweep.
type World struct {
	mu sync.Mutex

	now      time.Duration
	rng      *rand.Rand
	objects  map[string]*Object
	fixtures map[string]*Fixture
	arms     map[string]*Arm
	// locations maps a global location name to its deck definition.
	locations map[string]Location
	// floorZ is the deck platform height; anything sweeping below it
	// collides with the platform (Bug D).
	floorZ float64
	walls  []geom.Plane
	events []Event
	// exactMotion disables repeatability noise so arms converge on the
	// commanded target exactly. Campaign worlds run exact so motion plans
	// become pure functions of (deck, script) and can be memoized across
	// scenarios; scenario diversity comes from placement jitter and task
	// parameters instead.
	exactMotion bool
	// planCache, when set, memoizes MoveArmTo's IK plans. Sound only with
	// warm-start disabled (a hit must be byte-identical to a cold solve)
	// and with exactMotion on (noisy targets never repeat, so keys would
	// only churn the LRU).
	planCache *kin.PlanCache
}

// SetExactMotion toggles repeatability noise off (true) or on (false).
func (w *World) SetExactMotion(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.exactMotion = on
}

// SetMotionPlanCache routes MoveArmTo IK planning through pc (nil
// restores direct solving). Callers sharing one cache across worlds must
// disable its warm start: exact-key hits replay the cold solver's own
// answer, which keeps cached and uncached runs byte-identical.
func (w *World) SetMotionPlanCache(pc *kin.PlanCache) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.planCache = pc
}

// Location is a named deck position in the global frame, optionally owned
// by a fixture (a slot inside or on a device).
type Location struct {
	Name string
	// Pos is the tool-center-point position an arm should command to
	// interact with this location, in the global frame.
	Pos geom.Vec3
	// Owner is the fixture that hosts this location ("" for free deck
	// positions such as grid-independent waypoints).
	Owner string
	// Inside reports whether the location lies inside the owner fixture
	// (so reaching it requires the door to be open and counts as the arm
	// being "inside the device").
	Inside bool
}

// New creates an empty world with the platform at z=0 and a deterministic
// noise source.
func New(seed int64) *World {
	return &World{
		rng:       rand.New(rand.NewSource(seed)),
		objects:   make(map[string]*Object),
		fixtures:  make(map[string]*Fixture),
		arms:      make(map[string]*Arm),
		locations: make(map[string]Location),
	}
}

// Now returns the current simulated time.
func (w *World) Now() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// Advance moves simulated time forward by d.
func (w *World) Advance(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.now += d
}

// AddWall registers a wall plane; the lab interior is on the positive side.
func (w *World) AddWall(p geom.Plane) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.walls = append(w.walls, p)
}

// SetFloor sets the platform height.
func (w *World) SetFloor(z float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.floorZ = z
}

// AddLocation registers a named deck location.
func (w *World) AddLocation(l Location) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.locations[l.Name]; dup {
		return fmt.Errorf("world: duplicate location %q", l.Name)
	}
	w.locations[l.Name] = l
	return nil
}

// LocationNames returns all registered location names, sorted.
func (w *World) LocationNames() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.locations))
	for n := range w.locations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LocationAt returns the location definition.
func (w *World) LocationAt(name string) (Location, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	l, ok := w.locations[name]
	return l, ok
}

// recordEvent appends a damage event (callers hold w.mu).
func (w *World) recordEvent(k EventKind, s Severity, desc string, involved ...string) {
	w.events = append(w.events, Event{
		Time: w.now, Kind: k, Severity: s, Description: desc, Involved: involved,
	})
}

// Events returns a copy of all damage events so far.
func (w *World) Events() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Event, len(w.events))
	copy(out, w.events)
	return out
}

// DamageCost returns the total replacement cost of all damage so far.
func (w *World) DamageCost() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var c float64
	for _, e := range w.events {
		c += e.Severity.Cost()
	}
	return c
}

// MaxSeverity returns the worst severity recorded (0 when undamaged).
func (w *World) MaxSeverity() Severity {
	w.mu.Lock()
	defer w.mu.Unlock()
	var worst Severity
	for _, e := range w.events {
		if e.Severity > worst {
			worst = e.Severity
		}
	}
	return worst
}

// ResetEvents clears the damage log (between evaluation runs).
func (w *World) ResetEvents() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events = nil
}
