package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABBConstruction(t *testing.T) {
	b := Box(V(1, 2, 3), V(-1, 5, 0))
	if b.Min != V(-1, 2, 0) || b.Max != V(1, 5, 3) {
		t.Errorf("Box normalised wrong: %v", b)
	}
	c := BoxAt(V(0, 0, 1), V(2, 4, 2))
	if c.Min != V(-1, -2, 0) || c.Max != V(1, 2, 2) {
		t.Errorf("BoxAt wrong: %v", c)
	}
	if got := c.Center(); !got.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Errorf("Center = %v", got)
	}
	if got := c.Dims(); !got.ApproxEqual(V(2, 4, 2), 1e-12) {
		t.Errorf("Dims = %v", got)
	}
	if got := c.Volume(); math.Abs(got-16) > 1e-12 {
		t.Errorf("Volume = %v, want 16", got)
	}
}

func TestAABBValidity(t *testing.T) {
	if !Box(V(0, 0, 0), V(1, 1, 1)).IsValid() {
		t.Error("valid box reported invalid")
	}
	bad := AABB{Min: V(1, 0, 0), Max: V(0, 1, 1)}
	if bad.IsValid() {
		t.Error("inverted box reported valid")
	}
	nan := AABB{Min: Vec3{X: math.NaN()}, Max: V(1, 1, 1)}
	if nan.IsValid() {
		t.Error("NaN box reported valid")
	}
}

func TestAABBContainsAndIntersects(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	tests := []struct {
		name string
		p    Vec3
		want bool
	}{
		{"inside", V(0.5, 0.5, 0.5), true},
		{"face", V(1, 0.5, 0.5), true},
		{"corner", V(1, 1, 1), true},
		{"outside-x", V(1.01, 0.5, 0.5), false},
		{"outside-z", V(0.5, 0.5, -0.01), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.ContainsPoint(tt.p); got != tt.want {
				t.Errorf("ContainsPoint(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}

	o := Box(V(0.5, 0.5, 0.5), V(2, 2, 2))
	if !b.Intersects(o) {
		t.Error("overlapping boxes reported disjoint")
	}
	far := Box(V(5, 5, 5), V(6, 6, 6))
	if b.Intersects(far) {
		t.Error("disjoint boxes reported overlapping")
	}
	touch := Box(V(1, 0, 0), V(2, 1, 1))
	if !b.Intersects(touch) {
		t.Error("touching boxes should count as intersecting")
	}
}

func TestAABBExpandTranslateUnion(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	e := b.Expand(0.5)
	if e.Min != V(-0.5, -0.5, -0.5) || e.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %v", e)
	}
	tr := b.Translate(V(1, 0, -1))
	if tr.Min != V(1, 0, -1) || tr.Max != V(2, 1, 0) {
		t.Errorf("Translate = %v", tr)
	}
	u := b.Union(Box(V(2, 2, 2), V(3, 3, 3)))
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %v", u)
	}
}

func TestAABBClosestPointProperty(t *testing.T) {
	b := Box(V(-1, -1, -1), V(1, 1, 1))
	if err := quick.Check(func(p Vec3) bool {
		if !p.IsFinite() {
			return true
		}
		cp := b.ClosestPoint(p)
		if !b.ContainsPoint(cp) {
			return false
		}
		// Distance via closest point must match DistToPoint, and be zero
		// iff the point is inside.
		d := b.DistToPoint(p)
		if b.ContainsPoint(p) {
			return d == 0
		}
		return d > 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: V(0, 0, 0), B: V(10, 0, 0)}
	tests := []struct {
		name  string
		p     Vec3
		wantT float64
		wantD float64
	}{
		{"mid", V(5, 3, 0), 0.5, 3},
		{"before-A", V(-5, 0, 0), 0, 5},
		{"past-B", V(15, 0, 4), 1, math.Sqrt(25 + 16)},
		{"on-segment", V(7, 0, 0), 0.7, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ClosestParam(tt.p); math.Abs(got-tt.wantT) > 1e-12 {
				t.Errorf("ClosestParam = %v, want %v", got, tt.wantT)
			}
			if got := s.DistToPoint(tt.p); math.Abs(got-tt.wantD) > 1e-9 {
				t.Errorf("DistToPoint = %v, want %v", got, tt.wantD)
			}
		})
	}

	deg := Segment{A: V(1, 1, 1), B: V(1, 1, 1)}
	if got := deg.DistToPoint(V(1, 1, 3)); math.Abs(got-2) > 1e-12 {
		t.Errorf("degenerate segment dist = %v, want 2", got)
	}
}

func TestCapsule(t *testing.T) {
	c := NewCapsule(V(0, 0, 0), V(0, 0, 1), 0.1)
	if !c.ContainsPoint(V(0.05, 0, 0.5)) {
		t.Error("point inside capsule reported outside")
	}
	if c.ContainsPoint(V(0.2, 0, 0.5)) {
		t.Error("point outside capsule reported inside")
	}
	// The spherical cap extends past the endpoints.
	if !c.ContainsPoint(V(0, 0, 1.05)) {
		t.Error("point in end cap reported outside")
	}
	b := c.Bounds()
	if !b.ContainsPoint(V(0.1, 0.1, 1.1)) || b.ContainsPoint(V(0.2, 0, 0)) {
		t.Errorf("Bounds wrong: %v", b)
	}
}

func TestPlane(t *testing.T) {
	floor := PlaneFromPointNormal(V(0, 0, 0), V(0, 0, 1))
	if got := floor.SignedDist(V(3, 4, 2)); math.Abs(got-2) > 1e-12 {
		t.Errorf("SignedDist above = %v, want 2", got)
	}
	if got := floor.SignedDist(V(0, 0, -1)); math.Abs(got+1) > 1e-12 {
		t.Errorf("SignedDist below = %v, want -1", got)
	}
	cross := Segment{A: V(0, 0, 1), B: V(0, 0, -1)}
	if !floor.SegmentCrosses(cross) {
		t.Error("crossing segment not detected")
	}
	above := Segment{A: V(0, 0, 1), B: V(1, 0, 2)}
	if floor.SegmentCrosses(above) {
		t.Error("non-crossing segment reported crossing")
	}
	// Normal is normalised even if given unnormalised.
	pl := PlaneFromPointNormal(V(0, 0, 5), V(0, 0, 10))
	if math.Abs(pl.N.Norm()-1) > 1e-12 {
		t.Errorf("plane normal not unit: %v", pl.N)
	}
	if math.Abs(pl.SignedDist(V(0, 0, 7))-2) > 1e-12 {
		t.Error("offset wrong for unnormalised input")
	}
}

func TestInscribedVerticalCapsule(t *testing.T) {
	// Tall box: the capsule uses the footprint radius.
	tall := Box(V(0, 0, 0), V(0.2, 0.2, 0.6))
	c := InscribedVerticalCapsule(tall)
	if math.Abs(c.Radius-0.1) > 1e-12 {
		t.Errorf("radius = %v, want 0.1", c.Radius)
	}
	if c.Seg.A.Z != 0.1 || c.Seg.B.Z != 0.5 {
		t.Errorf("segment z = %v..%v", c.Seg.A.Z, c.Seg.B.Z)
	}
	// The capsule stays inside the box.
	b := c.Bounds()
	if !tall.ContainsPoint(b.Min) || !tall.ContainsPoint(b.Max) {
		t.Errorf("capsule bounds %v escape the box", b)
	}
	// Flat box: degenerates toward a sphere of half the height.
	flat := Box(V(0, 0, 0), V(0.4, 0.4, 0.1))
	c2 := InscribedVerticalCapsule(flat)
	if math.Abs(c2.Radius-0.05) > 1e-12 {
		t.Errorf("flat radius = %v, want 0.05", c2.Radius)
	}
	if c2.Bounds().Max.Z > 0.1+1e-12 {
		t.Error("flat capsule pokes above the box")
	}
	// A corner point inside the box is outside the rounded solid.
	corner := V(0.02, 0.02, 0.58)
	if c.ContainsPoint(corner) {
		t.Error("corner should be outside the capsule")
	}
	if !tall.ContainsPoint(corner) {
		t.Error("corner should be inside the box")
	}
}

func TestPlaneFromNormalOffset(t *testing.T) {
	// {p : n·p = d} must survive normalisation: scaling n and d together
	// describes the same plane, so signed distances must agree.
	unit := PlaneFromNormalOffset(V(0, -1, 0), -0.62)
	scaled := PlaneFromNormalOffset(V(0, -4, 0), -2.48)
	for _, p := range []Vec3{V(0, 0, 0), V(0.3, 0.62, 0.1), V(0, 0.7, 0), V(0, -1, 2)} {
		du, ds := unit.SignedDist(p), scaled.SignedDist(p)
		if math.Abs(du-ds) > 1e-12 {
			t.Errorf("SignedDist(%v): unit %v, scaled %v", p, du, ds)
		}
	}
	if math.Abs(scaled.N.Norm()-1) > 1e-12 {
		t.Errorf("normal not normalised: %v", scaled.N)
	}
	// Interior point (y < 0.62) is positive, exterior negative.
	if scaled.SignedDist(V(0, 0, 0)) <= 0 {
		t.Error("lab interior should be on the positive side")
	}
	if scaled.SignedDist(V(0, 0.7, 0)) >= 0 {
		t.Error("beyond the wall should be negative")
	}
	// Degenerate zero normal passes through untouched rather than NaN.
	z := PlaneFromNormalOffset(V(0, 0, 0), 1)
	if z.N != (Vec3{}) || z.D != 1 {
		t.Errorf("zero normal mangled: %+v", z)
	}
}

func TestPlaneMinSignedDistAABB(t *testing.T) {
	floor := PlaneFromPointNormal(V(0, 0, 0), V(0, 0, 1))
	above := Box(V(-1, -1, 0.5), V(1, 1, 2))
	if got := floor.MinSignedDistAABB(above); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("box above: min dist = %v, want 0.5", got)
	}
	crossing := Box(V(-1, -1, -0.25), V(1, 1, 2))
	if got := floor.MinSignedDistAABB(crossing); math.Abs(got+0.25) > 1e-12 {
		t.Errorf("crossing box: min dist = %v, want -0.25", got)
	}
	// Negative-component normal picks the opposite corner.
	back := PlaneFromNormalOffset(V(0, -1, 0), -0.62)
	inside := Box(V(0, 0, 0), V(0.5, 0.5, 0.5))
	if got := back.MinSignedDistAABB(inside); math.Abs(got-0.12) > 1e-9 {
		t.Errorf("interior box: min dist = %v, want 0.12", got)
	}
	// Property: the reported minimum is attained by one of the corners
	// and no corner is deeper.
	b := Box(V(-0.3, 0.1, -0.7), V(0.4, 0.9, 0.2))
	pl := PlaneFromPointNormal(V(0.1, 0.2, 0.3), V(1, -2, 0.5))
	min := math.Inf(1)
	for _, x := range []float64{b.Min.X, b.Max.X} {
		for _, y := range []float64{b.Min.Y, b.Max.Y} {
			for _, z := range []float64{b.Min.Z, b.Max.Z} {
				min = math.Min(min, pl.SignedDist(V(x, y, z)))
			}
		}
	}
	if got := pl.MinSignedDistAABB(b); math.Abs(got-min) > 1e-12 {
		t.Errorf("MinSignedDistAABB = %v, corner scan = %v", got, min)
	}
}
