package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	tests := []struct {
		name string
		got  Vec3
		want Vec3
	}{
		{"add", V(1, 2, 3).Add(V(4, 5, 6)), V(5, 7, 9)},
		{"sub", V(4, 5, 6).Sub(V(1, 2, 3)), V(3, 3, 3)},
		{"scale", V(1, -2, 3).Scale(2), V(2, -4, 6)},
		{"neg", V(1, -2, 3).Neg(), V(-1, 2, -3)},
		{"cross-xy", V(1, 0, 0).Cross(V(0, 1, 0)), V(0, 0, 1)},
		{"cross-yz", V(0, 1, 0).Cross(V(0, 0, 1)), V(1, 0, 0)},
		{"min", V(1, 5, 3).Min(V(2, 4, 3)), V(1, 4, 3)},
		{"max", V(1, 5, 3).Max(V(2, 4, 3)), V(2, 5, 3)},
		{"abs", V(-1, 2, -3).Abs(), V(1, 2, 3)},
		{"lerp-mid", V(0, 0, 0).Lerp(V(2, 4, 6), 0.5), V(1, 2, 3)},
		{"lerp-end", V(0, 0, 0).Lerp(V(2, 4, 6), 1), V(2, 4, 6)},
		{"clamp", V(5, -5, 0.5).Clamp(V(0, 0, 0), V(1, 1, 1)), V(1, 0, 0.5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.ApproxEqual(tt.want, 1e-12) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecNorms(t *testing.T) {
	v := V(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm() = %v, want 5", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq() = %v, want 25", got)
	}
	if got := v.Unit().Norm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Unit().Norm() = %v, want 1", got)
	}
	if got := Zero3.Unit(); got != Zero3 {
		t.Errorf("Zero3.Unit() = %v, want zero", got)
	}
	if got := V(1, 1, 1).Dist(V(1, 1, 3)); got != 2 {
		t.Errorf("Dist = %v, want 2", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range []Vec3{
		{X: math.NaN()}, {Y: math.Inf(1)}, {Z: math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

// boundedVec maps an arbitrary generated vector into a lab-scale range so
// that floating-point overflow does not drown the properties under test.
func boundedVec(v Vec3) Vec3 {
	f := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 100)
	}
	return V(f(v.X), f(v.Y), f(v.Z))
}

func TestVecProperties(t *testing.T) {
	// Dot product is commutative.
	if err := quick.Check(func(a, b Vec3) bool {
		a, b = boundedVec(a), boundedVec(b)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9*(1+math.Abs(a.Dot(b)))
	}, nil); err != nil {
		t.Error(err)
	}
	// Cross product is anti-commutative and orthogonal to operands.
	if err := quick.Check(func(a, b Vec3) bool {
		a, b = boundedVec(a), boundedVec(b)
		c := a.Cross(b)
		anti := c.Add(b.Cross(a)).Norm() < 1e-6*(1+c.Norm())
		scale := 1 + a.Norm()*b.Norm()
		ortho := math.Abs(c.Dot(a)) < 1e-6*scale*scale && math.Abs(c.Dot(b)) < 1e-6*scale*scale
		return anti && ortho
	}, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	if err := quick.Check(func(a, b Vec3) bool {
		a, b = boundedVec(a), boundedVec(b)
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationBasics(t *testing.T) {
	// 90° about Z maps X to Y.
	got := RotZ(math.Pi / 2).Apply(V(1, 0, 0))
	if !got.ApproxEqual(V(0, 1, 0), 1e-12) {
		t.Errorf("RotZ(90°)·x = %v, want y", got)
	}
	// 90° about X maps Y to Z.
	got = RotX(math.Pi / 2).Apply(V(0, 1, 0))
	if !got.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Errorf("RotX(90°)·y = %v, want z", got)
	}
	// 90° about Y maps Z to X.
	got = RotY(math.Pi / 2).Apply(V(0, 0, 1))
	if !got.ApproxEqual(V(1, 0, 0), 1e-12) {
		t.Errorf("RotY(90°)·z = %v, want x", got)
	}
}

func TestRotationInverseIsTranspose(t *testing.T) {
	r := RPY(0.3, -0.7, 1.2)
	id := r.Mul(r.Transpose())
	if !id.ApproxEqual(Identity3(), 1e-12) {
		t.Errorf("R·Rᵀ = %v, want identity", id)
	}
}

func TestRotationPreservesNorm(t *testing.T) {
	if err := quick.Check(func(roll, pitch, yaw float64, v Vec3) bool {
		v = boundedVec(v)
		if math.IsNaN(roll) || math.IsInf(roll, 0) ||
			math.IsNaN(pitch) || math.IsInf(pitch, 0) ||
			math.IsNaN(yaw) || math.IsInf(yaw, 0) {
			return true
		}
		r := RPY(math.Mod(roll, math.Pi), math.Mod(pitch, math.Pi), math.Mod(yaw, math.Pi))
		return math.Abs(r.Apply(v).Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPoseComposeInverse(t *testing.T) {
	p := Pose{R: RPY(0.1, 0.2, 0.3), T: V(1, 2, 3)}
	q := Pose{R: RPY(-0.4, 0.5, -0.6), T: V(-1, 0, 2)}
	v := V(0.7, -0.3, 1.1)

	// (p∘q)(v) == p(q(v))
	got := p.Compose(q).Apply(v)
	want := p.Apply(q.Apply(v))
	if !got.ApproxEqual(want, 1e-12) {
		t.Errorf("compose mismatch: got %v want %v", got, want)
	}

	// p⁻¹(p(v)) == v
	back := p.Inverse().Apply(p.Apply(v))
	if !back.ApproxEqual(v, 1e-12) {
		t.Errorf("inverse round trip: got %v want %v", back, v)
	}
}

func TestFrameTransformError(t *testing.T) {
	f := FrameTransform{
		Pose:  PoseAt(V(1, 0, 0)),
		Noise: V(0.03, 0, 0), // the paper's ~3 cm calibration error
	}
	got := f.Map(V(0, 0, 0))
	if !got.ApproxEqual(V(1.03, 0, 0), 1e-12) {
		t.Errorf("Map = %v, want (1.03,0,0)", got)
	}
	if e := f.Error(); math.Abs(e-0.03) > 1e-12 {
		t.Errorf("Error() = %v, want 0.03", e)
	}
}
