package geom

import (
	"fmt"
	"math/rand"
	"testing"
)

// randBoxes builds n deck-like boxes: footprints from a few centimetres
// up to half a metre scattered over a 2 m deck, mimicking the size
// spread of real device cuboids.
func randBoxes(rng *rand.Rand, n int) []AABB {
	out := make([]AABB, n)
	for i := range out {
		c := V(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*0.4)
		d := V(0.03+rng.Float64()*0.5, 0.03+rng.Float64()*0.5, 0.03+rng.Float64()*0.3)
		out[i] = BoxAt(c, d)
	}
	return out
}

// TestBVHQueryMatchesLinearScan is the index's correctness property:
// over randomized decks and query volumes, Query returns exactly the
// boxes a brute-force Intersects scan keeps — same set, since the leaf
// filter applies the identical predicate.
func TestBVHQueryMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		boxes := randBoxes(rng, rng.Intn(40)) // includes the empty deck
		bv := NewBVH(boxes)
		if bv.Len() != len(boxes) {
			t.Fatalf("trial %d: Len=%d want %d", trial, bv.Len(), len(boxes))
		}
		for q := 0; q < 20; q++ {
			query := BoxAt(
				V(rng.Float64()*2.4-1.2, rng.Float64()*2.4-1.2, rng.Float64()*0.5),
				V(rng.Float64()*0.8, rng.Float64()*0.8, rng.Float64()*0.5))
			got := map[int32]bool{}
			for _, it := range bv.Query(query, nil) {
				if got[it] {
					t.Fatalf("trial %d: duplicate item %d", trial, it)
				}
				got[it] = true
			}
			for i, b := range boxes {
				if want := b.Intersects(query); want != got[int32(i)] {
					t.Fatalf("trial %d: box %d (%v vs %v): bvh=%v scan=%v",
						trial, i, b, query, got[int32(i)], want)
				}
			}
		}
	}
}

// TestBVHQueryTouchingCounts pins the predicate boundary: a query box
// sharing exactly one face plane with an indexed box is a hit, matching
// AABB.Intersects' closed comparison.
func TestBVHQueryTouchingCounts(t *testing.T) {
	boxes := []AABB{Box(V(0, 0, 0), V(1, 1, 1))}
	bv := NewBVH(boxes)
	if got := bv.Query(Box(V(1, 0, 0), V(2, 1, 1)), nil); len(got) != 1 {
		t.Fatalf("touching query returned %v, want the box", got)
	}
	if got := bv.Query(Box(V(1.001, 0, 0), V(2, 1, 1)), nil); len(got) != 0 {
		t.Fatalf("disjoint query returned %v, want nothing", got)
	}
}

// TestBVHDegenerateBoxes covers zero-volume inputs (flat walls modelled
// as boxes, point-like markers): they index and query like any other.
func TestBVHDegenerateBoxes(t *testing.T) {
	boxes := []AABB{
		Box(V(0, 0, 0), V(1, 0, 1)),     // flat y=0 panel
		Box(V(2, 2, 2), V(2, 2, 2)),     // point
		Box(V(-1, -1, 0), V(1, 1, 0.1)), // normal slab
	}
	bv := NewBVH(boxes)
	for i, b := range boxes {
		hits := bv.Query(b, nil)
		found := false
		for _, it := range hits {
			if it == int32(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("box %d does not find itself: %v", i, hits)
		}
	}
	if got := bv.Query(Box(V(5, 5, 5), V(6, 6, 6)), nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}

// The pick-by-measurement benchmarks: BVH query vs the plain linear scan
// it replaces, at deck sizes from the testbed's 5 solids up to a
// campaign-scale 512. The index wins from ~16 solids and is within noise
// below that, which is why the simulator routes every deck through it.
func benchQueries(rng *rand.Rand) []AABB {
	qs := make([]AABB, 64)
	for i := range qs {
		qs[i] = BoxAt(V(rng.Float64()*2-1, rng.Float64()*2-1, 0.2), V(0.3, 0.3, 0.4))
	}
	return qs
}

func BenchmarkBVHQuery(b *testing.B) {
	for _, n := range []int{5, 16, 64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			bv := NewBVH(randBoxes(rng, n))
			qs := benchQueries(rng)
			out := make([]int32, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = bv.Query(qs[i%len(qs)], out[:0])
			}
		})
	}
}

func BenchmarkLinearScan(b *testing.B) {
	for _, n := range []int{5, 16, 64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			boxes := randBoxes(rng, n)
			qs := benchQueries(rng)
			out := make([]int32, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = out[:0]
				q := qs[i%len(qs)]
				for j, bx := range boxes {
					if bx.Intersects(q) {
						out = append(out, int32(j))
					}
				}
			}
		})
	}
}

func BenchmarkNewBVH(b *testing.B) {
	for _, n := range []int{5, 64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			boxes := randBoxes(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewBVH(boxes)
			}
		})
	}
}
