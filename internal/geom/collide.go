package geom

import "math"

// SegmentAABBDist returns the minimum distance between a segment and an
// axis-aligned box (zero if they intersect).
func SegmentAABBDist(s Segment, b AABB) float64 {
	return math.Sqrt(SegmentAABBDistSq(s, b))
}

// SegmentAABBDistSq returns the squared minimum distance between a
// segment and an axis-aligned box (zero if they intersect), in closed
// form.
//
// Writing the point at parameter t as P(t) = A + t·D, the squared
// distance to the box is the sum over the three axes of the squared
// distance to that axis' slab [Min_i, Max_i]. Each axis term is
// piecewise quadratic in t, changing shape only where P(t) crosses one
// of the slab's two faces, so the total has at most six interior
// breakpoints. On each interval between consecutive breakpoints the
// total is a single convex quadratic whose minimum is at an endpoint or
// at its stationary point — all evaluated exactly, with no iteration
// and no allocation. Degenerate inputs need no special casing: a
// zero-length segment has no breakpoints and both endpoints evaluate to
// the same point distance, and a zero-volume box is just a slab whose
// faces coincide.
func SegmentAABBDistSq(s Segment, b AABB) float64 {
	a := [3]float64{s.A.X, s.A.Y, s.A.Z}
	d := [3]float64{s.B.X - s.A.X, s.B.Y - s.A.Y, s.B.Z - s.A.Z}
	lo := [3]float64{b.Min.X, b.Min.Y, b.Min.Z}
	hi := [3]float64{b.Max.X, b.Max.Y, b.Max.Z}

	// Collect the parameters in (0,1) where an axis crosses a slab face,
	// plus the segment endpoints.
	var ts [8]float64
	ts[0], ts[1] = 0, 1
	n := 2
	for i := 0; i < 3; i++ {
		if d[i] == 0 {
			continue // axis constant in t: no crossings
		}
		if t := (lo[i] - a[i]) / d[i]; t > 0 && t < 1 {
			ts[n] = t
			n++
		}
		if t := (hi[i] - a[i]) / d[i]; t > 0 && t < 1 {
			ts[n] = t
			n++
		}
	}
	for i := 1; i < n; i++ { // insertion sort: n ≤ 8
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}

	eval := func(t float64) float64 {
		var sum float64
		for i := 0; i < 3; i++ {
			p := a[i] + t*d[i]
			if p < lo[i] {
				q := lo[i] - p
				sum += q * q
			} else if p > hi[i] {
				q := p - hi[i]
				sum += q * q
			}
		}
		return sum
	}

	best := eval(ts[0])
	for k := 0; k+1 < n && best > 0; k++ {
		t0, t1 := ts[k], ts[k+1]
		if v := eval(t1); v < best {
			best = v
		}
		// Accumulate the interval's quadratic qa·t² + qb·t + const from
		// each axis' side at the interval midpoint — no face crossing lies
		// strictly inside the interval, so the side is constant on it.
		mid := 0.5 * (t0 + t1)
		var qa, qb float64
		for i := 0; i < 3; i++ {
			p := a[i] + mid*d[i]
			if p < lo[i] {
				// (lo_i − a_i − t·d_i)²
				qa += d[i] * d[i]
				qb -= 2 * (lo[i] - a[i]) * d[i]
			} else if p > hi[i] {
				// (a_i + t·d_i − hi_i)²
				qa += d[i] * d[i]
				qb += 2 * (a[i] - hi[i]) * d[i]
			}
		}
		if qa > 0 {
			if t := -qb / (2 * qa); t > t0 && t < t1 {
				if v := eval(t); v < best {
					best = v
				}
			}
		}
	}
	return best
}

// SegmentAABBDistRef is the previous iterative implementation — a
// bounded golden-section refinement over the segment parameter of the
// point-to-box distance, seeded by uniform sampling. Retained as the
// measured pre-index baseline for the cold-path benchmark (the legacy
// sweep mode) and as an independent cross-check for the exact form.
func SegmentAABBDistRef(s Segment, b AABB) float64 {
	// Fast paths: either endpoint inside, or the segment clearly crosses.
	if b.ContainsPoint(s.A) || b.ContainsPoint(s.B) {
		return 0
	}
	if hit, _ := SegmentAABBIntersect(s, b); hit {
		return 0
	}
	f := func(t float64) float64 { return b.DistToPoint(s.Point(t)) }
	// Seed: coarse sampling to bracket the global minimum of a piecewise
	// smooth convex-ish function.
	const n = 16
	bestT, bestD := 0.0, f(0)
	for i := 1; i <= n; i++ {
		t := float64(i) / n
		if d := f(t); d < bestD {
			bestD, bestT = d, t
		}
	}
	lo := math.Max(0, bestT-1.0/n)
	hi := math.Min(1, bestT+1.0/n)
	// Golden-section refine.
	const phi = 0.6180339887498949
	for i := 0; i < 40; i++ {
		m1 := hi - phi*(hi-lo)
		m2 := lo + phi*(hi-lo)
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return f((lo + hi) / 2)
}

// SegmentAABBIntersect reports whether the segment intersects the box,
// using the slab method. When it does, it also returns the smallest
// parameter t ∈ [0,1] at which the segment is inside the box.
func SegmentAABBIntersect(s Segment, b AABB) (bool, float64) {
	d := s.B.Sub(s.A)
	tmin, tmax := 0.0, 1.0
	axes := [3][3]float64{
		{s.A.X, d.X, 0}, {s.A.Y, d.Y, 0}, {s.A.Z, d.Z, 0},
	}
	mins := [3]float64{b.Min.X, b.Min.Y, b.Min.Z}
	maxs := [3]float64{b.Max.X, b.Max.Y, b.Max.Z}
	for i := 0; i < 3; i++ {
		o, dir := axes[i][0], axes[i][1]
		if math.Abs(dir) < 1e-12 {
			if o < mins[i] || o > maxs[i] {
				return false, 0
			}
			continue
		}
		t1 := (mins[i] - o) / dir
		t2 := (maxs[i] - o) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		if tmin > tmax {
			return false, 0
		}
	}
	return true, tmin
}

// CapsuleAABBIntersect reports whether a capsule overlaps a box: the
// segment-to-box distance is at most the capsule radius. Compared in
// squared form, sparing the square root on the narrow phase's hottest
// predicate.
func CapsuleAABBIntersect(c Capsule, b AABB) bool {
	// Cheap reject on bounds first.
	if !c.Bounds().Intersects(b) {
		return false
	}
	return SegmentAABBDistSq(c.Seg, b) <= c.Radius*c.Radius
}

// SegmentSegmentDist returns the minimum distance between two segments,
// using the standard closest-point parametrisation with clamping.
func SegmentSegmentDist(s1, s2 Segment) float64 {
	d1 := s1.B.Sub(s1.A)
	d2 := s2.B.Sub(s2.A)
	r := s1.A.Sub(s2.A)
	a := d1.NormSq()
	e := d2.NormSq()
	f := d2.Dot(r)

	var s, t float64
	const eps = 1e-12
	switch {
	case a <= eps && e <= eps:
		return s1.A.Dist(s2.A)
	case a <= eps:
		s = 0
		t = clamp01(f / e)
	default:
		c := d1.Dot(r)
		if e <= eps {
			t = 0
			s = clamp01(-c / a)
		} else {
			b := d1.Dot(d2)
			den := a*e - b*b
			if den > eps {
				s = clamp01((b*f - c*e) / den)
			} else {
				s = 0
			}
			t = (b*s + f) / e
			if t < 0 {
				t = 0
				s = clamp01(-c / a)
			} else if t > 1 {
				t = 1
				s = clamp01((b - c) / a)
			}
		}
	}
	return s1.Point(s).Dist(s2.Point(t))
}

// CapsuleCapsuleIntersect reports whether two capsules overlap.
func CapsuleCapsuleIntersect(c1, c2 Capsule) bool {
	return SegmentSegmentDist(c1.Seg, c2.Seg) <= c1.Radius+c2.Radius
}

// CapsulePlanePenetrates reports whether a capsule penetrates the negative
// half-space of the plane (i.e. extends below the deck platform or past a
// wall). The capsule's lowest extent is min(dist(A), dist(B)) − Radius;
// it penetrates when that extent is negative. A capsule resting exactly on
// the plane does not penetrate.
func CapsulePlanePenetrates(c Capsule, pl Plane) bool {
	da := pl.SignedDist(c.Seg.A)
	db := pl.SignedDist(c.Seg.B)
	return math.Min(da, db)-c.Radius < 0
}

func clamp01(t float64) float64 { return math.Max(0, math.Min(1, t)) }
