package geom

import "math"

// SegmentAABBDist returns the minimum distance between a segment and an
// axis-aligned box (zero if they intersect). It is computed by a bounded
// golden-section refinement over the segment parameter of the (convex)
// point-to-box distance function, seeded by uniform sampling so that flat
// regions (segment parallel to a face) do not trap the search.
func SegmentAABBDist(s Segment, b AABB) float64 {
	// Fast paths: either endpoint inside, or the segment clearly crosses.
	if b.ContainsPoint(s.A) || b.ContainsPoint(s.B) {
		return 0
	}
	if hit, _ := SegmentAABBIntersect(s, b); hit {
		return 0
	}
	f := func(t float64) float64 { return b.DistToPoint(s.Point(t)) }
	// Seed: coarse sampling to bracket the global minimum of a piecewise
	// smooth convex-ish function.
	const n = 16
	bestT, bestD := 0.0, f(0)
	for i := 1; i <= n; i++ {
		t := float64(i) / n
		if d := f(t); d < bestD {
			bestD, bestT = d, t
		}
	}
	lo := math.Max(0, bestT-1.0/n)
	hi := math.Min(1, bestT+1.0/n)
	// Golden-section refine.
	const phi = 0.6180339887498949
	for i := 0; i < 40; i++ {
		m1 := hi - phi*(hi-lo)
		m2 := lo + phi*(hi-lo)
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return f((lo + hi) / 2)
}

// SegmentAABBIntersect reports whether the segment intersects the box,
// using the slab method. When it does, it also returns the smallest
// parameter t ∈ [0,1] at which the segment is inside the box.
func SegmentAABBIntersect(s Segment, b AABB) (bool, float64) {
	d := s.B.Sub(s.A)
	tmin, tmax := 0.0, 1.0
	axes := [3][3]float64{
		{s.A.X, d.X, 0}, {s.A.Y, d.Y, 0}, {s.A.Z, d.Z, 0},
	}
	mins := [3]float64{b.Min.X, b.Min.Y, b.Min.Z}
	maxs := [3]float64{b.Max.X, b.Max.Y, b.Max.Z}
	for i := 0; i < 3; i++ {
		o, dir := axes[i][0], axes[i][1]
		if math.Abs(dir) < 1e-12 {
			if o < mins[i] || o > maxs[i] {
				return false, 0
			}
			continue
		}
		t1 := (mins[i] - o) / dir
		t2 := (maxs[i] - o) / dir
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		if tmin > tmax {
			return false, 0
		}
	}
	return true, tmin
}

// CapsuleAABBIntersect reports whether a capsule overlaps a box: the
// segment-to-box distance is at most the capsule radius.
func CapsuleAABBIntersect(c Capsule, b AABB) bool {
	// Cheap reject on bounds first.
	if !c.Bounds().Intersects(b) {
		return false
	}
	return SegmentAABBDist(c.Seg, b) <= c.Radius
}

// SegmentSegmentDist returns the minimum distance between two segments,
// using the standard closest-point parametrisation with clamping.
func SegmentSegmentDist(s1, s2 Segment) float64 {
	d1 := s1.B.Sub(s1.A)
	d2 := s2.B.Sub(s2.A)
	r := s1.A.Sub(s2.A)
	a := d1.NormSq()
	e := d2.NormSq()
	f := d2.Dot(r)

	var s, t float64
	const eps = 1e-12
	switch {
	case a <= eps && e <= eps:
		return s1.A.Dist(s2.A)
	case a <= eps:
		s = 0
		t = clamp01(f / e)
	default:
		c := d1.Dot(r)
		if e <= eps {
			t = 0
			s = clamp01(-c / a)
		} else {
			b := d1.Dot(d2)
			den := a*e - b*b
			if den > eps {
				s = clamp01((b*f - c*e) / den)
			} else {
				s = 0
			}
			t = (b*s + f) / e
			if t < 0 {
				t = 0
				s = clamp01(-c / a)
			} else if t > 1 {
				t = 1
				s = clamp01((b - c) / a)
			}
		}
	}
	return s1.Point(s).Dist(s2.Point(t))
}

// CapsuleCapsuleIntersect reports whether two capsules overlap.
func CapsuleCapsuleIntersect(c1, c2 Capsule) bool {
	return SegmentSegmentDist(c1.Seg, c2.Seg) <= c1.Radius+c2.Radius
}

// CapsulePlanePenetrates reports whether a capsule penetrates the negative
// half-space of the plane (i.e. extends below the deck platform or past a
// wall). The capsule's lowest extent is min(dist(A), dist(B)) − Radius;
// it penetrates when that extent is negative. A capsule resting exactly on
// the plane does not penetrate.
func CapsulePlanePenetrates(c Capsule, pl Plane) bool {
	da := pl.SignedDist(c.Seg.A)
	db := pl.SignedDist(c.Seg.B)
	return math.Min(da, db)-c.Radius < 0
}

func clamp01(t float64) float64 { return math.Max(0, math.Min(1, t)) }
