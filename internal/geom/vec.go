// Package geom provides the 3D geometric primitives used throughout the
// RABIT reproduction: vectors, rotations, poses, axis-aligned boxes
// (the paper models every deck device as a cuboid), capsules (robot-arm
// links), segments, and the intersection/distance tests the Extended
// Simulator and the target-location checks are built on.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3D vector or point, in metres when it denotes a position.
type Vec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// V constructs a Vec3. It exists to keep literal-heavy code (device decks,
// waypoint tables) readable.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Zero3 is the zero vector.
var Zero3 = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged (callers that care must check Norm first).
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// ApproxEqual reports whether v and w differ by at most eps in every
// component.
func (v Vec3) ApproxEqual(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps && math.Abs(v.Z-w.Z) <= eps
}

// IsFinite reports whether every component of v is a finite number.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String renders v with millimetre precision, which is the resolution that
// matters on a lab deck.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// Clamp returns v with every component clamped to [lo, hi] of the
// corresponding component.
func (v Vec3) Clamp(lo, hi Vec3) Vec3 {
	return v.Max(lo).Min(hi)
}
