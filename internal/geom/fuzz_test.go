package geom

import (
	"math"
	"math/rand"
	"testing"
)

// The satellite-2 audit: SegmentSegmentDist and SegmentAABBDist over
// degenerate inputs — zero-length segments (a stationary sample, or a
// link collapsed by a straight-through joint) and zero-volume boxes
// (flat wall panels) — pinned against dense sampling, plus native fuzz
// targets doing the same over arbitrary inputs.

// sampledSegmentAABBDist brute-forces the segment-to-box distance by
// dense parameter sampling — the oracle both real implementations are
// pinned against.
func sampledSegmentAABBDist(s Segment, b AABB, n int) float64 {
	best := math.Inf(1)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		if d := b.DistToPoint(s.Point(t)); d < best {
			best = d
		}
	}
	return best
}

// sampledSegmentSegmentDist densely samples both parameters.
func sampledSegmentSegmentDist(s1, s2 Segment, n int) float64 {
	best := math.Inf(1)
	for i := 0; i <= n; i++ {
		p := s1.Point(float64(i) / float64(n))
		for j := 0; j <= n; j++ {
			if d := p.Dist(s2.Point(float64(j) / float64(n))); d < best {
				best = d
			}
		}
	}
	return best
}

func TestSegmentAABBDistDegenerate(t *testing.T) {
	flat := Box(V(0, 0.62, -1), V(2, 0.62, 2)) // zero-volume wall panel
	cases := []struct {
		name string
		seg  Segment
		box  AABB
		want float64
	}{
		{"zero-length segment outside", Segment{A: V(2, 0, 0), B: V(2, 0, 0)}, Box(V(0, 0, 0), V(1, 1, 1)), 1},
		{"zero-length segment inside", Segment{A: V(0.5, 0.5, 0.5), B: V(0.5, 0.5, 0.5)}, Box(V(0, 0, 0), V(1, 1, 1)), 0},
		{"zero-length segment on face", Segment{A: V(1, 0.5, 0.5), B: V(1, 0.5, 0.5)}, Box(V(0, 0, 0), V(1, 1, 1)), 0},
		{"segment to flat box", Segment{A: V(1, 0, 0), B: V(1, 0.5, 0)}, flat, 0.12},
		{"segment crossing flat box", Segment{A: V(1, 0, 0), B: V(1, 1, 0)}, flat, 0},
		{"segment in flat box plane", Segment{A: V(0.5, 0.62, 0), B: V(1.5, 0.62, 0)}, flat, 0},
		{"point box", Segment{A: V(0, 0, 0), B: V(1, 0, 0)}, Box(V(0.5, 0.3, 0.4), V(0.5, 0.3, 0.4)), 0.5},
		{"zero segment to point box", Segment{A: V(0, 0, 0), B: V(0, 0, 0)}, Box(V(3, 4, 0), V(3, 4, 0)), 5},
	}
	for _, tc := range cases {
		if got := SegmentAABBDist(tc.seg, tc.box); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: got %.12f want %.12f", tc.name, got, tc.want)
		}
		// The retained iterative baseline must agree on the same inputs
		// (to sampling accuracy) or the legacy sweep mode would not be a
		// fair before-measurement.
		if ref := SegmentAABBDistRef(tc.seg, tc.box); math.Abs(ref-tc.want) > 1e-6 {
			t.Errorf("%s: ref impl got %.12f want %.12f", tc.name, ref, tc.want)
		}
	}
}

func TestSegmentSegmentDistDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		s1, s2 Segment
		want   float64
	}{
		{"both zero length", Segment{A: V(0, 0, 0), B: V(0, 0, 0)}, Segment{A: V(3, 4, 0), B: V(3, 4, 0)}, 5},
		{"first zero length", Segment{A: V(0, 0, 1), B: V(0, 0, 1)}, Segment{A: V(-1, 0, 0), B: V(1, 0, 0)}, 1},
		{"second zero length", Segment{A: V(-1, 0, 0), B: V(1, 0, 0)}, Segment{A: V(0, 2, 0), B: V(0, 2, 0)}, 2},
		{"parallel overlapping", Segment{A: V(0, 0, 0), B: V(1, 0, 0)}, Segment{A: V(0.5, 1, 0), B: V(1.5, 1, 0)}, 1},
		{"collinear disjoint", Segment{A: V(0, 0, 0), B: V(1, 0, 0)}, Segment{A: V(3, 0, 0), B: V(4, 0, 0)}, 2},
		{"crossing", Segment{A: V(-1, 0, 0), B: V(1, 0, 0)}, Segment{A: V(0, -1, 0), B: V(0, 1, 0)}, 0},
	}
	for _, tc := range cases {
		if got := SegmentSegmentDist(tc.s1, tc.s2); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: got %.12f want %.12f", tc.name, got, tc.want)
		}
		// Symmetry under argument swap.
		if got, rev := SegmentSegmentDist(tc.s1, tc.s2), SegmentSegmentDist(tc.s2, tc.s1); math.Abs(got-rev) > 1e-9 {
			t.Errorf("%s: asymmetric: %v vs %v", tc.name, got, rev)
		}
	}
}

// TestSegmentAABBDistRandomDegenerate pins the exact form against dense
// sampling over randomized inputs biased toward degeneracy: with
// probability ~1/2 the segment is collapsed to a point and each box axis
// independently flattened.
func TestSegmentAABBDistRandomDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rv := func() float64 { return rng.Float64()*4 - 2 }
	for trial := 0; trial < 500; trial++ {
		seg := Segment{A: V(rv(), rv(), rv()), B: V(rv(), rv(), rv())}
		if rng.Intn(2) == 0 {
			seg.B = seg.A
		}
		b := Box(V(rv(), rv(), rv()), V(rv(), rv(), rv()))
		if rng.Intn(2) == 0 {
			switch rng.Intn(3) {
			case 0:
				b.Max.X = b.Min.X
			case 1:
				b.Max.Y = b.Min.Y
			default:
				b.Max.Z = b.Min.Z
			}
		}
		want := sampledSegmentAABBDist(seg, b, 4000)
		got := SegmentAABBDist(seg, b)
		// The exact form can only be ≤ the sampled oracle, and never by
		// more than one sampling step's travel.
		step := seg.Length() / 4000
		if got > want+1e-9 || got < want-step {
			t.Fatalf("trial %d: seg %+v box %v: exact %.12f sampled %.12f", trial, seg, b, got, want)
		}
	}
}

// TestSegmentSegmentDistRandom pins the clamped closed form against
// dense sampling, again biased toward degenerate shapes.
func TestSegmentSegmentDistRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rv := func() float64 { return rng.Float64()*4 - 2 }
	for trial := 0; trial < 300; trial++ {
		s1 := Segment{A: V(rv(), rv(), rv()), B: V(rv(), rv(), rv())}
		s2 := Segment{A: V(rv(), rv(), rv()), B: V(rv(), rv(), rv())}
		switch rng.Intn(4) {
		case 0:
			s1.B = s1.A
		case 1:
			s2.B = s2.A
		case 2: // parallel
			d := s1.B.Sub(s1.A)
			s2.B = s2.A.Add(d.Scale(rng.Float64()*2 - 1))
		}
		want := sampledSegmentSegmentDist(s1, s2, 400)
		got := SegmentSegmentDist(s1, s2)
		step := (s1.Length() + s2.Length()) / 400
		if got > want+1e-9 || got < want-step {
			t.Fatalf("trial %d: %+v vs %+v: closed %.12f sampled %.12f", trial, s1, s2, got, want)
		}
	}
}

// FuzzSegmentAABBDist cross-checks the exact closed form against the
// dense-sampling oracle on arbitrary (finite) inputs.
func FuzzSegmentAABBDist(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, -0.5, -0.5, -0.5, 0.5, 0.5, 0.5)
	f.Add(2.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0) // point seg, flat box
	f.Add(1.0, 0.62, -1.0, 1.0, 0.62, 2.0, 0.0, 0.62, 0.0, 2.0, 0.62, 1.0)
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, m0, m1, m2, m3, m4, m5 float64) {
		for _, v := range []float64{ax, ay, az, bx, by, bz, m0, m1, m2, m3, m4, m5} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return
			}
		}
		seg := Segment{A: V(ax, ay, az), B: V(bx, by, bz)}
		box := Box(V(m0, m1, m2), V(m3, m4, m5))
		got := SegmentAABBDist(seg, box)
		want := sampledSegmentAABBDist(seg, box, 2000)
		step := seg.Length() / 2000
		if got > want+1e-6*(1+want) || got < want-step {
			t.Fatalf("seg %+v box %v: exact %.12f sampled %.12f", seg, box, got, want)
		}
		if got < 0 || math.IsNaN(got) {
			t.Fatalf("seg %+v box %v: invalid distance %v", seg, box, got)
		}
	})
}

// FuzzSegmentSegmentDist cross-checks the clamped closed form the same
// way.
func FuzzSegmentSegmentDist(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0, 3.0, 4.0, 0.0) // both points
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) {
		for _, v := range []float64{ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return
			}
		}
		s1 := Segment{A: V(ax, ay, az), B: V(bx, by, bz)}
		s2 := Segment{A: V(cx, cy, cz), B: V(dx, dy, dz)}
		got := SegmentSegmentDist(s1, s2)
		want := sampledSegmentSegmentDist(s1, s2, 200)
		step := (s1.Length() + s2.Length()) / 200
		if got > want+1e-6*(1+want) || got < want-step {
			t.Fatalf("%+v vs %+v: closed %.12f sampled %.12f", s1, s2, got, want)
		}
		if got < 0 || math.IsNaN(got) {
			t.Fatalf("%+v vs %+v: invalid distance %v", s1, s2, got)
		}
	})
}
