package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned box. The paper's Extended Simulator models every
// deck device as a 3D cuboid (Fig. 3); axis-aligned boxes are exactly that
// representation, since deck devices sit squarely on the deck.
type AABB struct {
	Min Vec3 `json:"min"`
	Max Vec3 `json:"max"`
}

// Box builds an AABB from any two opposite corners.
func Box(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// BoxAt builds an AABB centred at c with full dimensions dims.
func BoxAt(c, dims Vec3) AABB {
	h := dims.Scale(0.5)
	return AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Center returns the centre of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Dims returns the full edge lengths of the box.
func (b AABB) Dims() Vec3 { return b.Max.Sub(b.Min) }

// Volume returns the box volume.
func (b AABB) Volume() float64 {
	d := b.Dims()
	return d.X * d.Y * d.Z
}

// IsValid reports whether Min ≤ Max component-wise and all components are
// finite.
func (b AABB) IsValid() bool {
	return b.Min.IsFinite() && b.Max.IsFinite() &&
		b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// ContainsPoint reports whether p lies inside or on the box.
func (b AABB) ContainsPoint(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Intersects reports whether the two boxes overlap (touching counts).
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// Expand returns the box grown by r on every side. Negative r shrinks it;
// the result may become invalid if shrunk past its centre.
func (b AABB) Expand(r float64) AABB {
	d := Vec3{r, r, r}
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Translate returns the box shifted by d.
func (b AABB) Translate(d Vec3) AABB {
	return AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
}

// ClosestPoint returns the point on or in the box closest to p.
func (b AABB) ClosestPoint(p Vec3) Vec3 {
	return p.Clamp(b.Min, b.Max)
}

// DistToPoint returns the distance from p to the box (zero if inside).
func (b AABB) DistToPoint(p Vec3) float64 {
	return b.ClosestPoint(p).Dist(p)
}

// String renders the box corners.
func (b AABB) String() string { return fmt.Sprintf("box[%v..%v]", b.Min, b.Max) }

// Segment is a straight line segment between two points, used for swept
// trajectory samples and arm links.
type Segment struct {
	A, B Vec3
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Point returns the point at parameter t ∈ [0,1] along the segment.
func (s Segment) Point(t float64) Vec3 { return s.A.Lerp(s.B, t) }

// ClosestParam returns the parameter t ∈ [0,1] of the point on the segment
// closest to p.
func (s Segment) ClosestParam(p Vec3) float64 {
	d := s.B.Sub(s.A)
	den := d.NormSq()
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec3) Vec3 { return s.Point(s.ClosestParam(p)) }

// DistToPoint returns the distance from the segment to point p.
func (s Segment) DistToPoint(p Vec3) float64 { return s.ClosestPoint(p).Dist(p) }

// Capsule is a segment with a radius: the swept volume of a sphere along
// the segment. Robot-arm links are modelled as capsules, which is the
// standard fast approximation for cylindrical links with rounded joints.
type Capsule struct {
	Seg    Segment
	Radius float64
}

// NewCapsule builds a capsule between two points with the given radius.
func NewCapsule(a, b Vec3, r float64) Capsule {
	return Capsule{Seg: Segment{A: a, B: b}, Radius: r}
}

// ContainsPoint reports whether p lies within the capsule.
func (c Capsule) ContainsPoint(p Vec3) bool {
	return c.Seg.DistToPoint(p) <= c.Radius
}

// Bounds returns the AABB enclosing the capsule.
func (c Capsule) Bounds() AABB {
	r := Vec3{c.Radius, c.Radius, c.Radius}
	return AABB{
		Min: c.Seg.A.Min(c.Seg.B).Sub(r),
		Max: c.Seg.A.Max(c.Seg.B).Add(r),
	}
}

// InscribedVerticalCapsule returns the largest vertical capsule that fits
// inside the box: the rounded-solid approximation for dome- or
// cylinder-shaped devices (the paper's pilot participant noted a
// centrifuge "resembles a hemisphere more than a cuboid"). For boxes too
// flat to fit a capsule of the footprint's radius, the radius shrinks to
// half the height (a sphere), under-approximating the footprint.
func InscribedVerticalCapsule(b AABB) Capsule {
	c := b.Center()
	d := b.Dims()
	r := math.Min(d.X, d.Y) / 2
	if d.Z < 2*r {
		r = d.Z / 2
	}
	lo := V(c.X, c.Y, b.Min.Z+r)
	hi := V(c.X, c.Y, b.Max.Z-r)
	return NewCapsule(lo, hi, r)
}

// Plane is an infinite plane given by a unit normal N and offset D such
// that points p on the plane satisfy N·p = D. Walls, the deck platform, and
// the space-multiplexing "software wall" are planes.
type Plane struct {
	N Vec3    `json:"normal"`
	D float64 `json:"offset"`
}

// PlaneFromPointNormal builds a plane through p with normal n (normalised).
func PlaneFromPointNormal(p, n Vec3) Plane {
	u := n.Unit()
	return Plane{N: u, D: u.Dot(p)}
}

// PlaneFromNormalOffset builds the plane {p : n·p = d} for a possibly
// non-unit n. Normalising the normal rescales the offset by the same
// factor — {p : n·p = d} and {p : n̂·p = d/|n|} are the same plane — so
// configurations may supply normals of any length.
func PlaneFromNormalOffset(n Vec3, d float64) Plane {
	l := n.Norm()
	if l == 0 {
		return Plane{N: n, D: d}
	}
	return Plane{N: n.Scale(1 / l), D: d / l}
}

// MinSignedDistAABB returns the minimum signed distance from any point of
// the box to the plane: the signed distance of the corner deepest on the
// negative side. When it is ≥ 0 the whole box lies on or above the plane.
func (pl Plane) MinSignedDistAABB(b AABB) float64 {
	p := b.Max
	if pl.N.X >= 0 {
		p.X = b.Min.X
	}
	if pl.N.Y >= 0 {
		p.Y = b.Min.Y
	}
	if pl.N.Z >= 0 {
		p.Z = b.Min.Z
	}
	return pl.SignedDist(p)
}

// SignedDist returns the signed distance from p to the plane (positive on
// the normal side).
func (pl Plane) SignedDist(p Vec3) float64 { return pl.N.Dot(p) - pl.D }

// SegmentCrosses reports whether the segment crosses (or touches) the
// plane, i.e. its endpoints are on opposite sides or on the plane.
func (pl Plane) SegmentCrosses(s Segment) bool {
	da, db := pl.SignedDist(s.A), pl.SignedDist(s.B)
	return da*db <= 0
}
