package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentAABBIntersect(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"through-center", Segment{V(-1, 0.5, 0.5), V(2, 0.5, 0.5)}, true},
		{"diagonal", Segment{V(-0.5, -0.5, -0.5), V(1.5, 1.5, 1.5)}, true},
		{"inside", Segment{V(0.2, 0.2, 0.2), V(0.8, 0.8, 0.8)}, true},
		{"starts-inside", Segment{V(0.5, 0.5, 0.5), V(5, 5, 5)}, true},
		{"miss-parallel", Segment{V(-1, 2, 0.5), V(2, 2, 0.5)}, false},
		{"stops-short", Segment{V(-2, 0.5, 0.5), V(-0.5, 0.5, 0.5)}, false},
		{"graze-face", Segment{V(-1, 1, 0.5), V(2, 1, 0.5)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := SegmentAABBIntersect(tt.s, b)
			if got != tt.want {
				t.Errorf("intersect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentAABBIntersectEntryParam(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	s := Segment{V(-1, 0.5, 0.5), V(1, 0.5, 0.5)}
	hit, tEntry := SegmentAABBIntersect(s, b)
	if !hit {
		t.Fatal("expected hit")
	}
	if math.Abs(tEntry-0.5) > 1e-12 {
		t.Errorf("entry param = %v, want 0.5", tEntry)
	}
}

func TestSegmentAABBDist(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	tests := []struct {
		name string
		s    Segment
		want float64
	}{
		{"intersecting", Segment{V(-1, 0.5, 0.5), V(2, 0.5, 0.5)}, 0},
		{"parallel-above", Segment{V(-1, 0.5, 2), V(2, 0.5, 2)}, 1},
		{"point-like-near-face", Segment{V(1.5, 0.5, 0.5), V(1.5, 0.5, 0.5)}, 0.5},
		{"near-corner", Segment{V(2, 2, 1), V(3, 3, 1)}, math.Sqrt2},
		{"endpoint-inside", Segment{V(0.5, 0.5, 0.5), V(9, 9, 9)}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SegmentAABBDist(tt.s, b)
			if math.Abs(got-tt.want) > 1e-6 {
				t.Errorf("dist = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestSegmentAABBDistMatchesSampling cross-validates the refined distance
// against brute-force dense sampling on random segments and boxes.
func TestSegmentAABBDistMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rv := func(scale float64) Vec3 {
		return V(rng.Float64()*scale-scale/2, rng.Float64()*scale-scale/2, rng.Float64()*scale-scale/2)
	}
	for i := 0; i < 200; i++ {
		b := Box(rv(2), rv(2))
		s := Segment{A: rv(4), B: rv(4)}
		got := SegmentAABBDist(s, b)
		brute := math.Inf(1)
		const n = 2000
		for k := 0; k <= n; k++ {
			d := b.DistToPoint(s.Point(float64(k) / n))
			if d < brute {
				brute = d
			}
		}
		if math.Abs(got-brute) > 1e-3 {
			t.Fatalf("case %d: refined %v vs brute %v (seg %v box %v)", i, got, brute, s, b)
		}
		if got > brute+1e-9 && brute > 0 {
			t.Fatalf("case %d: refined dist above brute-force bound", i)
		}
	}
}

func TestCapsuleAABBIntersect(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	tests := []struct {
		name string
		c    Capsule
		want bool
	}{
		{"far", NewCapsule(V(5, 5, 5), V(6, 6, 6), 0.2), false},
		{"touching-radius", NewCapsule(V(-0.5, 0.5, 0.5), V(-0.3, 0.5, 0.5), 0.35), true},
		{"just-outside", NewCapsule(V(-0.5, 0.5, 0.5), V(-0.3, 0.5, 0.5), 0.25), false},
		{"piercing", NewCapsule(V(-1, 0.5, 0.5), V(2, 0.5, 0.5), 0.05), true},
		{"inside", NewCapsule(V(0.4, 0.4, 0.4), V(0.6, 0.6, 0.6), 0.05), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CapsuleAABBIntersect(tt.c, b); got != tt.want {
				t.Errorf("intersect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentSegmentDist(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 Segment
		want   float64
	}{
		{
			"crossing-skew",
			Segment{V(0, 0, 0), V(1, 0, 0)},
			Segment{V(0.5, -1, 1), V(0.5, 1, 1)},
			1,
		},
		{
			"parallel",
			Segment{V(0, 0, 0), V(1, 0, 0)},
			Segment{V(0, 2, 0), V(1, 2, 0)},
			2,
		},
		{
			"intersecting",
			Segment{V(-1, 0, 0), V(1, 0, 0)},
			Segment{V(0, -1, 0), V(0, 1, 0)},
			0,
		},
		{
			"endpoint-to-endpoint",
			Segment{V(0, 0, 0), V(1, 0, 0)},
			Segment{V(2, 0, 0), V(3, 0, 0)},
			1,
		},
		{
			"degenerate-both",
			Segment{V(0, 0, 0), V(0, 0, 0)},
			Segment{V(0, 3, 4), V(0, 3, 4)},
			5,
		},
		{
			"degenerate-one",
			Segment{V(0, 0, 0), V(10, 0, 0)},
			Segment{V(5, 2, 0), V(5, 2, 0)},
			2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SegmentSegmentDist(tt.s1, tt.s2)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("dist = %v, want %v", got, tt.want)
			}
			// Symmetry.
			if rev := SegmentSegmentDist(tt.s2, tt.s1); math.Abs(rev-got) > 1e-9 {
				t.Errorf("asymmetric: %v vs %v", got, rev)
			}
		})
	}
}

func TestSegmentSegmentDistProperty(t *testing.T) {
	// Distance is bounded above by all endpoint pair distances.
	if err := quick.Check(func(a, b, c, d Vec3) bool {
		a, b, c, d = boundedVec(a), boundedVec(b), boundedVec(c), boundedVec(d)
		s1, s2 := Segment{a, b}, Segment{c, d}
		dist := SegmentSegmentDist(s1, s2)
		ub := math.Min(math.Min(a.Dist(c), a.Dist(d)), math.Min(b.Dist(c), b.Dist(d)))
		return dist <= ub+1e-6*(1+ub)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCapsuleCapsuleIntersect(t *testing.T) {
	c1 := NewCapsule(V(0, 0, 0), V(1, 0, 0), 0.3)
	c2 := NewCapsule(V(0, 0.5, 0), V(1, 0.5, 0), 0.3)
	if !CapsuleCapsuleIntersect(c1, c2) {
		t.Error("overlapping capsules (gap 0.5 < 0.6) reported disjoint")
	}
	c3 := NewCapsule(V(0, 0.7, 0), V(1, 0.7, 0), 0.3)
	if CapsuleCapsuleIntersect(c1, c3) {
		t.Error("disjoint capsules (gap 0.7 > 0.6) reported overlapping")
	}
}

func TestCapsulePlanePenetrates(t *testing.T) {
	floor := PlaneFromPointNormal(V(0, 0, 0), V(0, 0, 1))
	resting := NewCapsule(V(0, 0, 0.1), V(1, 0, 0.1), 0.1)
	if CapsulePlanePenetrates(resting, floor) {
		t.Error("capsule resting exactly on floor reported penetrating")
	}
	dipping := NewCapsule(V(0, 0, 0.05), V(1, 0, 0.3), 0.1)
	if !CapsulePlanePenetrates(dipping, floor) {
		t.Error("capsule dipping below floor not detected")
	}
	high := NewCapsule(V(0, 0, 1), V(1, 0, 1), 0.1)
	if CapsulePlanePenetrates(high, floor) {
		t.Error("capsule well above floor reported penetrating")
	}
}
