package geom

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 rotation (or general linear) matrix in row-major order.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the identity rotation.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// RotX returns the rotation about the X axis by angle rad.
func RotX(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{M: [3][3]float64{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}}
}

// RotY returns the rotation about the Y axis by angle rad.
func RotY(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{M: [3][3]float64{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}}
}

// RotZ returns the rotation about the Z axis by angle rad.
func RotZ(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{M: [3][3]float64{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m.M[i][k] * n.M[k][j]
			}
			r.M[i][j] = s
		}
	}
	return r
}

// Apply returns m·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		X: m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		Y: m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		Z: m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// Transpose returns mᵀ, which for a rotation matrix is its inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[j][i]
		}
	}
	return r
}

// Col returns the j-th column of m as a vector.
func (m Mat3) Col(j int) Vec3 {
	return Vec3{X: m.M[0][j], Y: m.M[1][j], Z: m.M[2][j]}
}

// ApproxEqual reports whether every entry of m and n differs by at most eps.
func (m Mat3) ApproxEqual(n Mat3, eps float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m.M[i][j]-n.M[i][j]) > eps {
				return false
			}
		}
	}
	return true
}

// RPY builds a rotation from roll (about X), pitch (about Y), and yaw
// (about Z), applied in Z·Y·X order, the convention used by the arm drivers.
func RPY(roll, pitch, yaw float64) Mat3 {
	return RotZ(yaw).Mul(RotY(pitch)).Mul(RotX(roll))
}

// Pose is a rigid transform: a rotation followed by a translation.
type Pose struct {
	R Mat3
	T Vec3
}

// IdentityPose returns the identity transform.
func IdentityPose() Pose { return Pose{R: Identity3()} }

// PoseAt returns a pure translation to p.
func PoseAt(p Vec3) Pose { return Pose{R: Identity3(), T: p} }

// Apply transforms point v by the pose.
func (p Pose) Apply(v Vec3) Vec3 { return p.R.Apply(v).Add(p.T) }

// Compose returns the transform equivalent to applying q first, then p.
func (p Pose) Compose(q Pose) Pose {
	return Pose{R: p.R.Mul(q.R), T: p.R.Apply(q.T).Add(p.T)}
}

// Inverse returns the inverse rigid transform.
func (p Pose) Inverse() Pose {
	rt := p.R.Transpose()
	return Pose{R: rt, T: rt.Apply(p.T).Neg()}
}

// String renders the pose's translation; rotations rarely matter in logs.
func (p Pose) String() string { return fmt.Sprintf("pose@%v", p.T) }

// FrameTransform maps a point expressed in one robot arm's base frame into
// another frame. The paper (Section IV, category 2) reports that
// transforming the testbed arms into a global frame incurred ~3 cm of
// error; Noise models that calibration error as a fixed per-axis offset.
type FrameTransform struct {
	Pose  Pose
	Noise Vec3 // systematic calibration error added on every mapping
}

// Map transforms p and applies the calibration error.
func (f FrameTransform) Map(p Vec3) Vec3 { return f.Pose.Apply(p).Add(f.Noise) }

// Error returns the magnitude of the systematic mapping error.
func (f FrameTransform) Error() float64 { return f.Noise.Norm() }
