package geom

import "sort"

// BVH is a flat, pointer-free bounding-volume hierarchy over a fixed set
// of axis-aligned boxes — the Extended Simulator's deck spatial index.
// Nodes live in one slice and address children by index; leaves address
// a contiguous run of a separate item-index slice. Built by recursive
// median split on the widest centroid axis, the tree is balanced by
// construction, so queries walk a small fixed-size explicit stack and
// perform no allocation.
//
// A uniform grid was the measured alternative; the BVH won because deck
// solids are few (5–20) but wildly non-uniform in size, which forces a
// grid either coarse enough to degenerate into a linear scan or fine
// enough that large devices occupy hundreds of cells. See
// BenchmarkBVHQuery/BenchmarkLinearScan for the crossover data.
type BVH struct {
	nodes []bvhNode
	items []int32
	boxes []AABB // copy of the input, indexed by items
}

// bvhNode is one tree node. count > 0 marks a leaf owning
// items[start : start+count]; otherwise left and right index the
// children.
type bvhNode struct {
	bounds       AABB
	left, right  int32
	start, count int32
}

// bvhLeafSize is the largest item run a leaf holds. Two keeps leaf scans
// trivial while halving node count versus one-item leaves.
const bvhLeafSize = 2

// bvhMaxDepth bounds the explicit query stack. The median split halves
// every range, so depth ≤ ⌈log₂ n⌉ + 1; 64 entries cover any input that
// fits in memory.
const bvhMaxDepth = 64

// NewBVH builds the hierarchy over the given boxes. The input is copied;
// query results index into it. An empty input yields an empty index
// whose queries return nothing.
func NewBVH(boxes []AABB) *BVH {
	bv := &BVH{}
	n := len(boxes)
	if n == 0 {
		return bv
	}
	bv.boxes = append(bv.boxes, boxes...)
	bv.items = make([]int32, n)
	cent := make([]Vec3, n)
	for i, b := range boxes {
		bv.items[i] = int32(i)
		cent[i] = b.Center()
	}
	bv.nodes = make([]bvhNode, 0, 2*n-1)
	bv.build(cent, 0, n)
	return bv
}

// Len reports how many boxes the index holds.
func (bv *BVH) Len() int { return len(bv.boxes) }

// Box returns the indexed copy of box i.
func (bv *BVH) Box(i int32) AABB { return bv.boxes[i] }

// build constructs the subtree over items[lo:hi] and returns its node
// index.
func (bv *BVH) build(cent []Vec3, lo, hi int) int32 {
	idx := int32(len(bv.nodes))
	bv.nodes = append(bv.nodes, bvhNode{})

	nb := bv.boxes[bv.items[lo]]
	cmin, cmax := cent[bv.items[lo]], cent[bv.items[lo]]
	for _, it := range bv.items[lo+1 : hi] {
		nb = nb.Union(bv.boxes[it])
		cmin = cmin.Min(cent[it])
		cmax = cmax.Max(cent[it])
	}
	if hi-lo <= bvhLeafSize {
		bv.nodes[idx] = bvhNode{bounds: nb, start: int32(lo), count: int32(hi - lo)}
		return idx
	}

	// Median split on the widest centroid axis. Equal centroids still
	// split (the median is positional), so recursion always terminates.
	span := cmax.Sub(cmin)
	axis := 0
	if span.Y > span.X {
		axis = 1
	}
	if span.Z > span.X && span.Z > span.Y {
		axis = 2
	}
	sub := bv.items[lo:hi]
	sort.Slice(sub, func(i, j int) bool {
		return axisCoord(cent[sub[i]], axis) < axisCoord(cent[sub[j]], axis)
	})
	mid := lo + (hi-lo)/2
	left := bv.build(cent, lo, mid)
	right := bv.build(cent, mid, hi)
	bv.nodes[idx] = bvhNode{bounds: nb, left: left, right: right}
	return idx
}

func axisCoord(v Vec3, axis int) float64 {
	switch axis {
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	return v.X
}

// Query appends to out the index of every box that intersects q
// (touching counts, exactly AABB.Intersects' predicate) and returns it.
// Order is unspecified. Allocation-free when out has capacity.
func (bv *BVH) Query(q AABB, out []int32) []int32 {
	if len(bv.nodes) == 0 {
		return out
	}
	var stack [bvhMaxDepth]int32
	stack[0] = 0
	sp := 1
	for sp > 0 {
		sp--
		nd := &bv.nodes[stack[sp]]
		if !nd.bounds.Intersects(q) {
			continue
		}
		if nd.count > 0 {
			for _, it := range bv.items[nd.start : nd.start+nd.count] {
				if bv.boxes[it].Intersects(q) {
					out = append(out, it)
				}
			}
			continue
		}
		stack[sp] = nd.left
		sp++
		stack[sp] = nd.right
		sp++
	}
	return out
}
