package obs

import (
	"sync"
	"time"
)

// Safety SLOs (ISSUE 6): the two objectives that matter for a safety
// checker as a service. Check overhead is how much latency RABIT adds
// per command; detection latency is how long an unsafe command lives
// between being issued and being alerted on. Both are tracked as
// threshold objectives — an observation is "good" when it lands under
// the threshold — with burn rates over rolling windows.
const (
	// SLOCheckOverhead: the per-command safety check stays under
	// DefaultCheckOverheadThreshold for DefaultCheckOverheadObjective of
	// commands.
	SLOCheckOverhead = "check_overhead"
	// SLODetectionLatency: an alert fires within
	// DefaultDetectionLatencyThreshold of the offending command being
	// issued for DefaultDetectionLatencyObjective of alerts.
	SLODetectionLatency = "detection_latency"
)

// Default objectives and thresholds.
const (
	DefaultCheckOverheadObjective    = 0.99
	DefaultCheckOverheadThreshold    = 5 * time.Millisecond
	DefaultDetectionLatencyObjective = 0.95
	DefaultDetectionLatencyThreshold = 250 * time.Millisecond
)

// DefaultSLOWindows are the rolling burn-rate windows: a short one for
// paging-grade signal and a long one for trend.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloSlot is one second of observations.
type sloSlot struct {
	sec  int64
	good int64
	bad  int64
}

// SLO is one threshold objective with rolling per-second buckets. Safe
// for concurrent use; the zero value is not usable — build with NewSLO.
type SLO struct {
	name      string
	objective float64
	threshold time.Duration
	windows   []time.Duration

	mu    sync.Mutex
	slots []sloSlot
	now   func() time.Time // injectable for tests
}

// NewSLO builds an SLO. objective must be in (0, 1); windows default to
// DefaultSLOWindows.
func NewSLO(name string, objective float64, threshold time.Duration, windows ...time.Duration) *SLO {
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	max := time.Duration(0)
	for _, w := range windows {
		if w > max {
			max = w
		}
	}
	return &SLO{
		name:      name,
		objective: objective,
		threshold: threshold,
		windows:   windows,
		slots:     make([]sloSlot, int(max/time.Second)+2),
		now:       time.Now,
	}
}

// Name returns the SLO's name.
func (s *SLO) Name() string { return s.name }

// Observe records one observation: good when it lands at or under the
// threshold. Nil-safe.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	good := d <= s.threshold
	s.mu.Lock()
	sec := s.now().Unix()
	slot := &s.slots[sec%int64(len(s.slots))]
	if slot.sec != sec {
		*slot = sloSlot{sec: sec}
	}
	if good {
		slot.good++
	} else {
		slot.bad++
	}
	s.mu.Unlock()
}

// Reset clears every slot, forgetting all observations. Pooled engines
// call this between scenarios so one scenario's burn rate cannot leak
// into the next tenant of the engine. Nil-safe.
func (s *SLO) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.slots {
		s.slots[i] = sloSlot{}
	}
	s.mu.Unlock()
}

// totals sums the slots inside [now-window, now]. Callers hold s.mu.
func (s *SLO) totals(nowSec int64, window time.Duration) (good, bad int64) {
	cutoff := nowSec - int64(window/time.Second)
	for i := range s.slots {
		if s.slots[i].sec > cutoff && s.slots[i].sec <= nowSec {
			good += s.slots[i].good
			bad += s.slots[i].bad
		}
	}
	return good, bad
}

// BurnRate reports how fast the window is consuming error budget:
// (bad/total) / (1 - objective). 1.0 means the window is burning budget
// exactly at the objective's tolerated rate; above it the SLO is in
// deficit. An empty window burns nothing.
func (s *SLO) BurnRate(window time.Duration) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	good, bad := s.totals(s.now().Unix(), window)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - s.objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// SLOWindowSnapshot is one window's rolling totals.
type SLOWindowSnapshot struct {
	Window   time.Duration `json:"window"`
	Good     int64         `json:"good"`
	Bad      int64         `json:"bad"`
	BurnRate float64       `json:"burn_rate"`
}

// SLOSnapshot is one SLO's full state. Tenant is the lab tenant the
// SLO is scoped to (empty for a process-global SLO); the Prometheus
// exposition renders it as a tenant label, so a multi-lab gateway's
// per-tenant burn rates stay distinct series.
type SLOSnapshot struct {
	Name        string              `json:"name"`
	Tenant      string              `json:"tenant,omitempty"`
	Objective   float64             `json:"objective"`
	ThresholdNS int64               `json:"threshold_ns"`
	Windows     []SLOWindowSnapshot `json:"windows"`
}

// Snapshot captures the SLO's windows. Nil-safe.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nowSec := s.now().Unix()
	snap := SLOSnapshot{Name: s.name, Objective: s.objective, ThresholdNS: s.threshold.Nanoseconds()}
	budget := 1 - s.objective
	if budget <= 0 {
		budget = 1e-9
	}
	for _, w := range s.windows {
		good, bad := s.totals(nowSec, w)
		ws := SLOWindowSnapshot{Window: w, Good: good, Bad: bad}
		if total := good + bad; total > 0 {
			ws.BurnRate = (float64(bad) / float64(total)) / budget
		}
		snap.Windows = append(snap.Windows, ws)
	}
	return snap
}

// SafetySLOs bundles the two safety objectives a System monitors. The
// engine feeds CheckOverhead once per checked command and
// DetectionLatency once per alert. Nil-safe throughout.
type SafetySLOs struct {
	CheckOverhead    *SLO
	DetectionLatency *SLO
	regs             []*SLOReg
}

// NewSafetySLOs builds the default safety objectives.
func NewSafetySLOs() *SafetySLOs {
	return &SafetySLOs{
		CheckOverhead:    NewSLO(SLOCheckOverhead, DefaultCheckOverheadObjective, DefaultCheckOverheadThreshold),
		DetectionLatency: NewSLO(SLODetectionLatency, DefaultDetectionLatencyObjective, DefaultDetectionLatencyThreshold),
	}
}

// ObserveCheck feeds one per-command check overhead. Nil-safe.
func (s *SafetySLOs) ObserveCheck(d time.Duration) {
	if s == nil {
		return
	}
	s.CheckOverhead.Observe(d)
}

// ObserveDetection feeds one alert's detection latency. Nil-safe.
func (s *SafetySLOs) ObserveDetection(d time.Duration) {
	if s == nil {
		return
	}
	s.DetectionLatency.Observe(d)
}

// Reset clears both objectives' slot rings. Nil-safe.
func (s *SafetySLOs) Reset() {
	if s == nil {
		return
	}
	s.CheckOverhead.Reset()
	s.DetectionLatency.Reset()
}

// Register adds both SLOs to the default group, exported on
// /metrics/prom. Nil-safe; idempotent per call pairing with Unregister.
func (s *SafetySLOs) Register() { s.RegisterIn(DefaultGroup) }

// RegisterIn adds both SLOs to a specific group's SLO set — one group
// per service keeps two systems' burn rates from aliasing. Nil-safe.
func (s *SafetySLOs) RegisterIn(g *Group) {
	if s == nil {
		return
	}
	s.regs = append(s.regs, g.RegisterSLO(s.CheckOverhead), g.RegisterSLO(s.DetectionLatency))
}

// RegisterTenantIn adds both SLOs to a group under a lab-tenant label:
// the gateway registers each tenant System's safety objectives this
// way, so `rabit_slo_burn_rate{slo="check_overhead",tenant="hein"}`
// tracks that lab's burn rate alongside the unlabeled global series.
// Nil-safe.
func (s *SafetySLOs) RegisterTenantIn(g *Group, tenant string) {
	if s == nil {
		return
	}
	s.regs = append(s.regs,
		g.RegisterSLOTenant(s.CheckOverhead, tenant),
		g.RegisterSLOTenant(s.DetectionLatency, tenant))
}

// Unregister removes both SLOs from the group. Nil-safe.
func (s *SafetySLOs) Unregister() {
	if s == nil {
		return
	}
	for _, r := range s.regs {
		r.Unregister()
	}
	s.regs = nil
}

// SLOReg is a registered SLO; Unregister removes it from the group that
// issued it. Repeated names within a group get a "#N" alias, exactly
// like the scrape group, so several systems' burn rates stay distinct
// series.
type SLOReg struct {
	g      *Group
	slo    *SLO
	alias  string
	tenant string
}

// RegisterSLO adds an SLO to the default group (nil-safe).
func RegisterSLO(s *SLO) *SLOReg { return DefaultGroup.RegisterSLO(s) }

// Unregister removes the SLO from its group. Nil-safe; idempotent.
func (r *SLOReg) Unregister() {
	if r == nil {
		return
	}
	r.g.sloMu.Lock()
	defer r.g.sloMu.Unlock()
	for i, g := range r.g.sloGroup {
		if g == r {
			r.g.sloGroup = append(r.g.sloGroup[:i], r.g.sloGroup[i+1:]...)
			return
		}
	}
}

// SLOSnapshots captures every SLO in the default group under its alias.
func SLOSnapshots() []SLOSnapshot { return DefaultGroup.SLOSnapshots() }
