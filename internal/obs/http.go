package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The package-level group: every registry a process wants scraped.
// rabit.System registers its registry here so the CLIs' -metrics endpoint
// sees it without extra plumbing.
var (
	groupMu sync.RWMutex
	group   []groupEntry
	regSeq  = map[string]int{}

	publishOnce sync.Once
)

// Auxiliary routes: subpackages (internal/obs/trace's /traces) add
// endpoints to the introspection mux without obs importing them.
var (
	auxMu     sync.RWMutex
	auxRoutes = map[string]http.Handler{}
)

// RegisterHTTPHandler mounts a handler on the introspection mux under
// pattern (e.g. "/traces"). Later registrations for the same pattern
// replace earlier ones; core routes (/metrics, /healthz, …) cannot be
// replaced. Intended for obs subpackages, which would otherwise need an
// import cycle to extend Handler.
func RegisterHTTPHandler(pattern string, h http.Handler) {
	auxMu.Lock()
	defer auxMu.Unlock()
	auxRoutes[pattern] = h
}

// groupEntry pairs a registry with its scrape alias. Two systems built
// on the same lab share a registry name; exporting both under one name
// would emit duplicate series that scrape tooling rejects, so the group
// disambiguates every registration after the first with a "#N" suffix.
type groupEntry struct {
	reg   *Registry
	alias string
}

// Register adds a registry to the process-wide scrape group. Nil-safe.
func Register(r *Registry) {
	if r == nil {
		return
	}
	groupMu.Lock()
	defer groupMu.Unlock()
	regSeq[r.name]++
	alias := r.name
	if n := regSeq[r.name]; n > 1 {
		alias = fmt.Sprintf("%s#%d", alias, n)
	}
	group = append(group, groupEntry{reg: r, alias: alias})
}

// Unregister removes a registry from the scrape group.
func Unregister(r *Registry) {
	groupMu.Lock()
	defer groupMu.Unlock()
	for i, g := range group {
		if g.reg == r {
			group = append(group[:i], group[i+1:]...)
			return
		}
	}
}

// Snapshots captures every registered registry under its scrape alias.
func Snapshots() []Snapshot {
	groupMu.RLock()
	entries := make([]groupEntry, len(group))
	copy(entries, group)
	groupMu.RUnlock()
	out := make([]Snapshot, 0, len(entries))
	for _, e := range entries {
		s := e.reg.Snapshot()
		s.Name = e.alias
		out = append(out, s)
	}
	return out
}

// publishExpvar exposes the scrape group as the expvar "rabit" variable,
// once per process (expvar panics on duplicate names).
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("rabit", expvar.Func(func() any { return Snapshots() }))
	})
}

// Handler returns the introspection mux: /debug/vars (expvar, including
// the "rabit" snapshot tree), /metrics (a flat text rendering),
// /metrics/prom (Prometheus exposition), /healthz and /readyz (service
// health), any auxiliary routes subpackages registered (e.g. /traces),
// and /debug/pprof (live profiling).
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	core := map[string]bool{
		"/debug/vars": true, "/metrics": true, "/metrics/prom": true,
		"/healthz": true, "/readyz": true, "/debug/pprof/": true,
		"/debug/pprof/cmdline": true, "/debug/pprof/profile": true,
		"/debug/pprof/symbol": true, "/debug/pprof/trace": true,
	}
	auxMu.RLock()
	for pattern, h := range auxRoutes {
		if !core[pattern] {
			mux.Handle(pattern, h)
		}
	}
	auxMu.RUnlock()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", metricsText)
	mux.HandleFunc("/metrics/prom", promMetricsText)
	mux.HandleFunc("/healthz", healthzHandler)
	mux.HandleFunc("/readyz", readyzHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metricsText renders every registered registry in a flat
// `name{reg="…"} value` text form, one line per counter/gauge and a
// summary block per histogram — enough for curl and for scrape tooling
// that speaks the common text exposition idiom.
func metricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, s := range Snapshots() {
		for _, c := range s.Counters {
			fmt.Fprintf(w, "rabit_%s{reg=%q} %d\n", sanitize(c.Name), s.Name, c.Value)
		}
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "rabit_%s{reg=%q} %d\n", sanitize(g.Name), s.Name, g.Value)
		}
		for _, h := range s.Histograms {
			n := sanitize(h.Name)
			fmt.Fprintf(w, "rabit_%s_count{reg=%q} %d\n", n, s.Name, h.Count)
			fmt.Fprintf(w, "rabit_%s_sum_ns{reg=%q} %d\n", n, s.Name, h.SumNS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.5\"} %d\n", n, s.Name, h.P50NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.95\"} %d\n", n, s.Name, h.P95NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.99\"} %d\n", n, s.Name, h.P99NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"max\"} %d\n", n, s.Name, h.MaxNS)
			for _, b := range h.Buckets {
				le := "+Inf"
				if b.UpperNS > 0 {
					le = fmt.Sprintf("%d", b.UpperNS)
				}
				fmt.Fprintf(w, "rabit_%s_bucket{reg=%q,le=%q} %d\n", n, s.Name, le, b.Cumulative)
			}
		}
	}
}

// sanitize maps instrument names onto the metric-name alphabet
// ([a-zA-Z0-9_]): dots and dashes become underscores.
func sanitize(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Server is a running introspection endpoint with a graceful shutdown
// path: Close/Shutdown stop the listener, drain in-flight requests, and
// wait for the serve goroutine to exit, so tests and the CLIs never
// leak the listener or race its teardown.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string

	srv  *http.Server
	done chan struct{}
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires, and the serve goroutine has exited
// by the time it returns. Nil-safe; idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close is Shutdown with a bounded drain (5s), for defer-friendly
// teardown. Nil-safe; idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound server. Callers shut
// it down with Close (bounded) or Shutdown (caller's context).
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler()}
	s := &Server{Addr: srv.Addr, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		// ErrServerClosed after Shutdown is the expected exit; anything
		// else has nowhere useful to go from a background goroutine.
		_ = srv.Serve(ln)
	}()
	return s, nil
}
