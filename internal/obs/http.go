package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Package-level shims over DefaultGroup: rabit.System registers its
// registry here by default so the CLIs' -metrics endpoint sees it
// without extra plumbing. Multi-system services build their own Group.

// Register adds a registry to the default scrape group. Nil-safe.
func Register(r *Registry) { DefaultGroup.Register(r) }

// Unregister removes a registry from the default scrape group.
func Unregister(r *Registry) { DefaultGroup.Unregister(r) }

// Snapshots captures every registry in the default group.
func Snapshots() []Snapshot { return DefaultGroup.Snapshots() }

var publishOnce sync.Once

// Auxiliary routes: subpackages (internal/obs/trace's /traces) add
// endpoints to the introspection mux without obs importing them. The
// route table is package-wide — the handlers themselves are stateless
// route definitions — and every Group's Handler mounts it.
var (
	auxMu     sync.RWMutex
	auxRoutes = map[string]http.Handler{}
)

// RegisterHTTPHandler mounts a handler on the introspection mux under
// pattern (e.g. "/traces"). Later registrations for the same pattern
// replace earlier ones; core routes (/metrics, /healthz, …) cannot be
// replaced. Intended for obs subpackages, which would otherwise need an
// import cycle to extend Handler.
func RegisterHTTPHandler(pattern string, h http.Handler) {
	auxMu.Lock()
	defer auxMu.Unlock()
	auxRoutes[pattern] = h
}

// publishExpvar exposes the default scrape group as the expvar "rabit"
// variable, once per process (expvar panics on duplicate names).
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("rabit", expvar.Func(func() any { return Snapshots() }))
	})
}

// Handler returns the default group's introspection mux.
func Handler() http.Handler { return DefaultGroup.Handler() }

// Handler returns the group's introspection mux: /debug/vars (expvar,
// including the default group's "rabit" snapshot tree), /metrics (a flat
// text rendering of this group), /metrics/prom (Prometheus exposition),
// /healthz and /readyz (this group's components), any auxiliary routes
// subpackages registered (e.g. /traces), and /debug/pprof (live
// profiling). Each call builds a fresh mux, so two groups' handlers
// never share route state.
func (g *Group) Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	core := map[string]bool{
		"/debug/vars": true, "/metrics": true, "/metrics/prom": true,
		"/healthz": true, "/readyz": true, "/buildz": true, "/debug/pprof/": true,
		"/debug/pprof/cmdline": true, "/debug/pprof/profile": true,
		"/debug/pprof/symbol": true, "/debug/pprof/trace": true,
	}
	auxMu.RLock()
	for pattern, h := range auxRoutes {
		if !core[pattern] {
			mux.Handle(pattern, h)
		}
	}
	auxMu.RUnlock()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", g.metricsText)
	mux.HandleFunc("/metrics/prom", g.promMetricsText)
	mux.HandleFunc("/healthz", g.healthzHandler)
	mux.HandleFunc("/readyz", g.readyzHandler)
	mux.HandleFunc("/buildz", buildzHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metricsText renders every registered registry in a flat
// `name{reg="…"} value` text form, one line per counter/gauge and a
// summary block per histogram — enough for curl and for scrape tooling
// that speaks the common text exposition idiom.
func (g *Group) metricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, s := range g.Snapshots() {
		for _, c := range s.Counters {
			fmt.Fprintf(w, "rabit_%s{reg=%q} %d\n", sanitize(c.Name), s.Name, c.Value)
		}
		for _, gg := range s.Gauges {
			fmt.Fprintf(w, "rabit_%s{reg=%q} %d\n", sanitize(gg.Name), s.Name, gg.Value)
		}
		for _, h := range s.Histograms {
			n := sanitize(h.Name)
			fmt.Fprintf(w, "rabit_%s_count{reg=%q} %d\n", n, s.Name, h.Count)
			fmt.Fprintf(w, "rabit_%s_sum_ns{reg=%q} %d\n", n, s.Name, h.SumNS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.5\"} %d\n", n, s.Name, h.P50NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.95\"} %d\n", n, s.Name, h.P95NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"0.99\"} %d\n", n, s.Name, h.P99NS)
			fmt.Fprintf(w, "rabit_%s_ns{reg=%q,q=\"max\"} %d\n", n, s.Name, h.MaxNS)
			for _, b := range h.Buckets {
				le := "+Inf"
				if b.UpperNS > 0 {
					le = fmt.Sprintf("%d", b.UpperNS)
				}
				fmt.Fprintf(w, "rabit_%s_bucket{reg=%q,le=%q} %d\n", n, s.Name, le, b.Cumulative)
			}
		}
		for _, f := range s.Families {
			n := sanitize(f.Name)
			key := sanitize(f.Key)
			for _, c := range f.Counters {
				fmt.Fprintf(w, "rabit_%s{reg=%q,%s=%q} %d\n", n, s.Name, key, c.Name, c.Value)
			}
			for _, gg := range f.Gauges {
				fmt.Fprintf(w, "rabit_%s{reg=%q,%s=%q} %d\n", n, s.Name, key, gg.Name, gg.Value)
			}
			for _, h := range f.Histograms {
				lbl := fmt.Sprintf("reg=%q,%s=%q", s.Name, key, h.Name)
				fmt.Fprintf(w, "rabit_%s_count{%s} %d\n", n, lbl, h.Count)
				fmt.Fprintf(w, "rabit_%s_sum_ns{%s} %d\n", n, lbl, h.SumNS)
				fmt.Fprintf(w, "rabit_%s_ns{%s,q=\"0.5\"} %d\n", n, lbl, h.P50NS)
				fmt.Fprintf(w, "rabit_%s_ns{%s,q=\"0.95\"} %d\n", n, lbl, h.P95NS)
				fmt.Fprintf(w, "rabit_%s_ns{%s,q=\"0.99\"} %d\n", n, lbl, h.P99NS)
				fmt.Fprintf(w, "rabit_%s_ns{%s,q=\"max\"} %d\n", n, lbl, h.MaxNS)
			}
		}
	}
}

// sanitize maps instrument names onto the metric-name alphabet
// ([a-zA-Z0-9_]): dots and dashes become underscores.
func sanitize(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Server is a running introspection endpoint with a graceful shutdown
// path: Close/Shutdown stop the listener, drain in-flight requests, and
// wait for the serve goroutine to exit, so tests and the CLIs never
// leak the listener or race its teardown. A Serve failure (listener
// torn down under the server, accept loop dying) is latched — Err
// returns it — and surfaces through the owning group's "obs_server"
// health component, so /readyz degrades instead of the endpoint
// silently going dark.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string

	srv  *http.Server
	ln   net.Listener
	done chan struct{}

	mu       sync.Mutex
	serveErr error
	health   *HealthReg
}

// Err returns the latched srv.Serve error, if the serve loop died for
// any reason other than a clean Shutdown/Close. Nil-safe.
func (s *Server) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires, and the serve goroutine has exited
// by the time it returns. The health component is withdrawn — an
// intentionally closed endpoint is not a degraded one. Nil-safe;
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.health.Unregister()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close is Shutdown with a bounded drain (5s), for defer-friendly
// teardown. Nil-safe; idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Serve starts the default group's introspection endpoint on addr.
func Serve(addr string) (*Server, error) {
	return DefaultGroup.Serve(addr)
}

// Serve starts the group's introspection endpoint on addr (e.g.
// "localhost:6060") in a background goroutine and returns the bound
// server. Callers shut it down with Close (bounded) or Shutdown
// (caller's context). Any serve-loop failure is latched on the Server
// and reported by the group's "obs_server" health component.
//
// The route table is resolved per request, not snapshotted at listen
// time: CLI modes register auxiliary routes (rabiteval's /campaign)
// after the flag-driven server is already listening, and a mux built
// once here would 404 them forever.
func (g *Group) Serve(addr string) (*Server, error) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.Handler().ServeHTTP(w, r)
	})
	return g.ServeHandler(addr, h)
}

// ServeHandler is Serve with a caller-supplied handler — services (the
// gateway) that mount their own API routes alongside the group's
// introspection routes get the same listener lifecycle, error latch,
// and health surfacing without re-implementing the serve plumbing.
func (g *Group) ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: h}
	s := &Server{Addr: srv.Addr, srv: srv, ln: ln, done: make(chan struct{})}
	s.health = g.RegisterHealth("obs_server", func() Health {
		if err := s.Err(); err != nil {
			return Health{Detail: "serve: " + err.Error()}
		}
		return Health{OK: true, Ready: true}
	})
	go func() {
		defer close(s.done)
		// ErrServerClosed after Shutdown is the expected exit; anything
		// else is a real failure — latch it for Err and the health
		// component instead of discarding it.
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}
