package obs

import (
	"testing"
	"time"
)

func TestFamilyBasics(t *testing.T) {
	r := NewRegistry("fam")
	evals := r.CounterFamily(FamilyRuleEvals, LabelRule)
	if evals.Name() != FamilyRuleEvals || evals.Key() != LabelRule {
		t.Fatalf("family identity: name=%q key=%q", evals.Name(), evals.Key())
	}
	evals.Counter("general-1").Inc()
	evals.Counter("general-1").Inc()
	evals.Counter("hein-2").Inc()

	// Kind mismatch: asking a counter family for a gauge or histogram
	// yields nil, and the nil instrument absorbs writes silently.
	if g := evals.Gauge("general-1"); g != nil {
		t.Fatal("counter family handed out a gauge")
	}
	evals.Gauge("general-1").Set(99) // must not panic
	if h := evals.Histogram("general-1"); h != nil {
		t.Fatal("counter family handed out a histogram")
	}
	evals.Histogram("general-1").Observe(time.Second) // must not panic

	// Same name, different requested shape: the first creation wins.
	if again := r.GaugeFamily(FamilyRuleEvals, "other"); again != evals {
		t.Fatal("re-lookup under a different shape built a second family")
	}

	snap := r.Snapshot()
	fs, ok := snap.Family(FamilyRuleEvals)
	if !ok {
		t.Fatal("family missing from snapshot")
	}
	if fs.Kind != KindCounter || fs.Key != LabelRule {
		t.Fatalf("snapshot shape: kind=%q key=%q", fs.Kind, fs.Key)
	}
	if got := fs.Counter("general-1"); got != 2 {
		t.Fatalf("general-1 = %d, want 2", got)
	}
	if got := fs.Counter("hein-2"); got != 1 {
		t.Fatalf("hein-2 = %d, want 1", got)
	}
	if got := fs.Counter("absent"); got != 0 {
		t.Fatalf("absent label = %d, want 0", got)
	}
	// Label values sort within the snapshot.
	if len(fs.Counters) != 2 || fs.Counters[0].Name != "general-1" || fs.Counters[1].Name != "hein-2" {
		t.Fatalf("snapshot counters unsorted: %+v", fs.Counters)
	}
}

func TestFamilyNilSafety(t *testing.T) {
	var f *Family
	if f.Name() != "" || f.Key() != "" {
		t.Fatal("nil family identity not empty")
	}
	f.Counter("x").Inc()
	f.Gauge("x").Set(1)
	f.Histogram("x").Observe(time.Millisecond)
	f.Reset()

	var r *Registry
	r.CounterFamily("a", "k").Counter("v").Inc()
	r.HistogramFamily("b", "k").Histogram("v").Observe(time.Second)
}

func TestFamilyReset(t *testing.T) {
	r := NewRegistry("fam")
	fires := r.CounterFamily(FamilyRuleFires, LabelRule)
	lat := r.HistogramFamily(FamilyRuleEval, LabelRule)
	c := fires.Counter("r1")
	h := lat.Histogram("r1")
	c.Inc()
	h.ObserveExemplar(3*time.Microsecond, "trace-1")

	fires.Reset()
	lat.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	if h.Count() != 0 {
		t.Fatalf("histogram survived reset: %d", h.Count())
	}
	if snap := h.snapshot("r1"); len(snap.Exemplars) != 0 {
		t.Fatalf("exemplars survived reset: %+v", snap.Exemplars)
	}
	// Cached pointers stay live after Reset.
	c.Inc()
	if fires.Counter("r1").Value() != 1 {
		t.Fatal("cached counter pointer detached by reset")
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram()
	// 3µs lands in the ≤5µs bucket (dense index 2); 2s lands at index 19.
	h.ObserveExemplar(3*time.Microsecond, "aaa111")
	h.ObserveExemplar(2*time.Second, "bbb222")
	// A later traced observation in the same bucket replaces the first.
	h.ObserveExemplar(4*time.Microsecond, "ccc333")
	// Empty trace ID observes without publishing an exemplar.
	h.ObserveExemplar(10*time.Hour, "")

	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	s := h.snapshot("x")
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", s.Exemplars)
	}
	byBucket := map[int]ExemplarSnapshot{}
	for _, ex := range s.Exemplars {
		byBucket[ex.Bucket] = ex
	}
	if ex := byBucket[2]; ex.TraceID != "ccc333" || ex.ValueNS != 4000 {
		t.Fatalf("µs bucket exemplar = %+v, want ccc333/4000ns", ex)
	}
	if ex := byBucket[19]; ex.TraceID != "bbb222" || ex.ValueNS != (2*time.Second).Nanoseconds() {
		t.Fatalf("2s bucket exemplar = %+v", ex)
	}
	// The overflow observation must not have minted an exemplar (its
	// trace ID was empty), and dense indices must align with the ladder.
	if _, ok := byBucket[len(BucketBoundsNS())]; ok {
		t.Fatal("untraced overflow observation published an exemplar")
	}

	var nilH *Histogram
	nilH.ObserveExemplar(time.Second, "zzz") // must not panic
}
