package obs

import (
	"sort"
	"sync"
)

// Labeled instrument families (ISSUE 10). A Family is one metric name
// fanned out over the values of a single label key — rule IDs, lab
// tenants, campaign workers — so the Prometheus exposition can serve
// `rabit_rule_evals_total{rule="general-11"}`-style series without the
// registry's flat namespace absorbing unbounded dynamic names. Label
// values are arbitrary strings (rule IDs are tenant-authored under
// ROADMAP item 2); escaping happens at exposition time, never here.
//
// Hot paths resolve a label value's instrument once and cache the
// pointer — Family lookups take an RWMutex, the instruments themselves
// stay lock-free atomics. All methods tolerate nil receivers, matching
// the rest of the package's "telemetry off" contract.

// Family kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Histogram family units. Duration histograms expose in seconds; the
// near-miss margin histograms reuse the same fixed bucket ladder as a
// dimensionless ratio (an observation of margin m is recorded as
// m×1e9 ns, so the exposition's ns→unit conversion yields the raw
// ratio: le="0.001" holds margins ≤ 0.1%).
const (
	UnitSeconds = "seconds"
	UnitRatio   = "ratio"
)

// Family is one labeled instrument family: a metric name, the label key
// that dimensions it, and one instrument per label value, created
// lazily.
type Family struct {
	name string
	key  string
	kind string
	unit string // histograms only: UnitSeconds (default) or UnitRatio

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Name returns the family's instrument name. Nil-safe ("").
func (f *Family) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Key returns the family's label key. Nil-safe ("").
func (f *Family) Key() string {
	if f == nil {
		return ""
	}
	return f.key
}

// Counter returns the counter for a label value, creating it on first
// use. Only valid on counter families; other kinds return nil (which
// itself no-ops). Nil-safe.
func (f *Family) Counter(value string) *Counter {
	if f == nil || f.kind != KindCounter {
		return nil
	}
	f.mu.RLock()
	c := f.counters[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.counters[value]; c == nil {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// Gauge returns the gauge for a label value, creating it on first use.
// Nil-safe.
func (f *Family) Gauge(value string) *Gauge {
	if f == nil || f.kind != KindGauge {
		return nil
	}
	f.mu.RLock()
	g := f.gauges[value]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g = f.gauges[value]; g == nil {
		g = &Gauge{}
		f.gauges[value] = g
	}
	return g
}

// Histogram returns the histogram for a label value, creating it on
// first use. Nil-safe.
func (f *Family) Histogram(value string) *Histogram {
	if f == nil || f.kind != KindHistogram {
		return nil
	}
	f.mu.RLock()
	h := f.hists[value]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.hists[value]; h == nil {
		h = NewHistogram()
		f.hists[value] = h
	}
	return h
}

// Reset zeroes every counter and histogram in the family, leaving
// gauges and the instrument set intact (cached pointers stay valid) —
// the same contract as Registry.Reset. Nil-safe.
func (f *Family) Reset() {
	if f == nil {
		return
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, c := range f.counters {
		c.Reset()
	}
	for _, h := range f.hists {
		h.Reset()
	}
}

// newFamily builds an empty family of the given kind.
func newFamily(name, key, kind, unit string) *Family {
	f := &Family{name: name, key: key, kind: kind, unit: unit}
	switch kind {
	case KindCounter:
		f.counters = make(map[string]*Counter)
	case KindGauge:
		f.gauges = make(map[string]*Gauge)
	case KindHistogram:
		f.hists = make(map[string]*Histogram)
	}
	return f
}

// family returns the named family, creating it on first use. The first
// creation fixes the family's label key, kind, and unit; later lookups
// under the same name return the existing family regardless of the
// requested shape (matching the registry's lazily-created-instrument
// contract — names are agreed in stages.go, not negotiated at runtime).
func (r *Registry) family(name, key, kind, unit string) *Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.fams[name]; f == nil {
		f = newFamily(name, key, kind, unit)
		r.fams[name] = f
	}
	return f
}

// CounterFamily returns the named counter family dimensioned by the
// label key, creating it on first use. Nil-safe (nil).
func (r *Registry) CounterFamily(name, key string) *Family {
	return r.family(name, key, KindCounter, "")
}

// GaugeFamily returns the named gauge family. Nil-safe.
func (r *Registry) GaugeFamily(name, key string) *Family {
	return r.family(name, key, KindGauge, "")
}

// HistogramFamily returns the named duration-histogram family (exposed
// in seconds). Nil-safe.
func (r *Registry) HistogramFamily(name, key string) *Family {
	return r.family(name, key, KindHistogram, UnitSeconds)
}

// RatioHistogramFamily returns the named dimensionless-histogram family
// (exposed as a raw ratio; see UnitRatio). Nil-safe.
func (r *Registry) RatioHistogramFamily(name, key string) *Family {
	return r.family(name, key, KindHistogram, UnitRatio)
}

// FamilySnapshot is one labeled family's state: the per-label-value
// instrument snapshots reuse the flat snapshot types with Name holding
// the label value.
type FamilySnapshot struct {
	Name       string              `json:"name"`
	Key        string              `json:"key"`
	Kind       string              `json:"kind"`
	Unit       string              `json:"unit,omitempty"`
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// snapshot captures the family, label values sorted.
func (f *Family) snapshot() FamilySnapshot {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := FamilySnapshot{Name: f.name, Key: f.key, Kind: f.kind, Unit: f.unit}
	for v, c := range f.counters {
		out.Counters = append(out.Counters, CounterSnapshot{Name: v, Value: c.Value()})
	}
	for v, g := range f.gauges {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: v, Value: g.Value()})
	}
	for v, h := range f.hists {
		out.Histograms = append(out.Histograms, h.snapshot(v))
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// Family finds a family snapshot by name.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Counter finds a labeled counter value in the family snapshot (0 when
// absent).
func (f FamilySnapshot) Counter(label string) int64 {
	for _, c := range f.Counters {
		if c.Name == label {
			return c.Value
		}
	}
	return 0
}

// Histogram finds a labeled histogram in the family snapshot.
func (f FamilySnapshot) Histogram(label string) (HistogramSnapshot, bool) {
	for _, h := range f.Histograms {
		if h.Name == label {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}
