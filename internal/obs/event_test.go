package obs

import (
	"errors"
	"strings"
	"testing"
)

// failingFile is a writer that short-writes after a byte budget and
// records whether Sync/Close ran — the JSONLSink error-path fixture.
type failingFile struct {
	budget   int
	synced   bool
	closed   bool
	failSync bool
}

func (f *failingFile) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("device out of space")
	}
	if len(p) > f.budget {
		n := f.budget
		f.budget = 0
		return n, errors.New("device out of space")
	}
	f.budget -= len(p)
	return len(p), nil
}

func (f *failingFile) Sync() error {
	f.synced = true
	if f.failSync {
		return errors.New("fsync failed")
	}
	return nil
}

func (f *failingFile) Close() error {
	f.closed = true
	return nil
}

// TestJSONLSinkShortWrite: a short write surfaces from Close, the
// underlying file is still closed (no descriptor leak), Sync is skipped
// on a failed flush, and a second Close returns the same latched error.
func TestJSONLSinkShortWrite(t *testing.T) {
	f := &failingFile{budget: 10}
	sink := NewJSONLSink(f)
	sink.Emit(Event{Kind: "command", Name: "set_action_value", Device: "hp00"})
	err := sink.Close()
	if err == nil {
		t.Fatal("short write never surfaced")
	}
	if !strings.Contains(err.Error(), "out of space") {
		t.Fatalf("Close error %v does not carry the write error", err)
	}
	if !f.closed {
		t.Fatal("underlying file not closed after flush failure")
	}
	if f.synced {
		t.Fatal("synced a file whose flush failed")
	}
	if again := sink.Close(); !errors.Is(again, err) {
		t.Fatalf("second Close = %v, want the latched %v", again, err)
	}
	if sink.Flush() == nil {
		t.Fatal("Flush lost the latched error")
	}
	// Emits after Close are dropped silently.
	sink.Emit(Event{Kind: "command"})
}

// TestJSONLSinkCloseSyncsAndCloses: the happy path runs flush → sync →
// close exactly once, and the second Close is a no-op returning nil.
func TestJSONLSinkCloseSyncsAndCloses(t *testing.T) {
	f := &failingFile{budget: 1 << 20}
	sink := NewJSONLSink(f)
	sink.Emit(Event{Kind: "alert", Name: "invalid_command"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.synced || !f.closed {
		t.Fatalf("Close ran sync=%v close=%v, want both", f.synced, f.closed)
	}
	f.synced, f.closed = false, false
	if err := sink.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if f.synced || f.closed {
		t.Fatal("second Close re-ran sync/close on the writer")
	}
}

// TestJSONLSinkSyncErrorPropagates: an fsync failure is the sink's
// error even though the flush succeeded, and the file still closes.
func TestJSONLSinkSyncErrorPropagates(t *testing.T) {
	f := &failingFile{budget: 1 << 20, failSync: true}
	sink := NewJSONLSink(f)
	sink.Emit(Event{Kind: "span", Name: "before.validate"})
	err := sink.Close()
	if err == nil || !strings.Contains(err.Error(), "fsync failed") {
		t.Fatalf("Close = %v, want the sync error", err)
	}
	if !f.closed {
		t.Fatal("underlying file not closed after sync failure")
	}
}
