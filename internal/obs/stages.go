package obs

// Names of the interception pipeline's stage histograms and shared
// instruments — agreed between core (the checker), trace (the
// interceptor), sim (the Extended Simulator), and eval (the Section II-C
// latency breakdown). One command's life: intercept wraps everything,
// before.validate and before.trajectory decompose the pre-check,
// execute is the device action, after.fetch and after.compare decompose
// the post-check.
const (
	// StageIntercept times the whole interception of one command.
	StageIntercept = "intercept"
	// StageValidate times precondition validation (Fig. 2 line 6).
	StageValidate = "before.validate"
	// StageTrajectory times the Extended-Simulator collision sweep
	// (Fig. 2 lines 8–10).
	StageTrajectory = "before.trajectory"
	// StageExecute times device execution between the checks.
	StageExecute = "execute"
	// StageFetch times the post-state acquisition (Fig. 2 line 13).
	StageFetch = "after.fetch"
	// StageCompare times the expected-vs-observed comparison (Fig. 2
	// line 14).
	StageCompare = "after.compare"
)

// Shared counter and gauge names.
const (
	// CounterCommands counts commands fully processed by the engine.
	CounterCommands = "commands"
	// CounterCheckNS accumulates nanoseconds spent inside Before/After —
	// the Section II-C aggregate, kept for Engine.CheckOverhead.
	CounterCheckNS = "check.ns"
	// CounterSimChecks counts Extended-Simulator collision sweeps.
	CounterSimChecks = "sim.collision_checks"
	// CounterSimBroadphasePruned counts solids and planes the simulator's
	// broadphase proved unreachable by a trajectory's swept volume and
	// excluded from the narrow phase.
	CounterSimBroadphasePruned = "sim.broadphase_pruned"
	// CounterSimBroadphaseKept counts solids and planes that survived the
	// broadphase and were tested per sample.
	CounterSimBroadphaseKept = "sim.broadphase_kept"
	// CounterSimIndexCandidates counts the deck solids the spatial index's
	// swept-AABB queries returned as narrow-phase candidates, before the
	// per-check exclusion mask — the index's selectivity numerator.
	CounterSimIndexCandidates = "sim.index_candidates"
	// CounterSimIndexRebuilds counts deck spatial-index rebuilds: one per
	// deck-epoch generation the cold path touched.
	CounterSimIndexRebuilds = "sim.index_rebuilds"
	// HistSimIndexRebuild times deck spatial-index rebuilds.
	HistSimIndexRebuild = "sim.index_rebuild"
	// GaugeSimChecksInFlight tracks how many trajectory validations are
	// executing right now — >1 demonstrates the per-arm sharded locking.
	GaugeSimChecksInFlight = "sim.checks_in_flight"
	// GaugeGUIFrames tracks frames the simulator GUI has rendered.
	GaugeGUIFrames = "sim.gui_frames"
	// GaugeRules reports how many rules the engine validates against.
	GaugeRules = "engine.rules"
)

// Motion-planning fast-path instruments (plan cache, verdict cache,
// deck epoch, speculative lookahead).
const (
	// CounterPlanCacheHits counts IK plans served from the plan cache.
	CounterPlanCacheHits = "kin.plan_cache_hits"
	// CounterPlanCacheMisses counts IK plans that had to solve.
	CounterPlanCacheMisses = "kin.plan_cache_misses"
	// CounterPlanCacheEvictions counts plan-cache LRU evictions.
	CounterPlanCacheEvictions = "kin.plan_cache_evictions"
	// CounterPlanCacheWarmStarts counts misses resolved by a single DLS
	// descent seeded from a cache-adjacent solution.
	CounterPlanCacheWarmStarts = "kin.plan_cache_warm_starts"
	// CounterVerdictCacheHits counts trajectory verdicts served from the
	// simulator's epoch-keyed verdict cache.
	CounterVerdictCacheHits = "sim.verdict_cache_hits"
	// CounterVerdictCacheMisses counts verdicts that ran the full sweep.
	CounterVerdictCacheMisses = "sim.verdict_cache_misses"
	// CounterVerdictCacheEvictions counts verdict-cache LRU evictions.
	CounterVerdictCacheEvictions = "sim.verdict_cache_evictions"
	// CounterDeckEpochBumps counts deck-epoch invalidations: every
	// deck-relevant model mutation bumps the epoch, orphaning all
	// verdicts cached under earlier epochs.
	CounterDeckEpochBumps = "sim.deck_epoch_bumps"
	// CounterSpeculations counts lookahead validations dispatched by the
	// engine while the preceding command executed.
	CounterSpeculations = "core.speculations"
	// CounterSpeculationsDropped counts lookahead hints dropped because
	// the single speculation worker was still busy.
	CounterSpeculationsDropped = "core.speculations_dropped"
	// GaugeSpeculationHits tracks how many on-path validations were
	// answered by a verdict a speculative lookahead had already computed
	// — the count of pre-checks whose latency left the critical path.
	GaugeSpeculationHits = "sim.speculation_hits"
)

// Causal-tracer instruments (internal/obs/trace).
const (
	// CounterTracesStarted counts traces opened by the tracer.
	CounterTracesStarted = "trace.started"
	// CounterTracesRetained counts traces the tail-sampling decision
	// kept (alerts always, the rest probabilistically).
	CounterTracesRetained = "trace.retained"
	// CounterTracesSampledOut counts non-alert traces dropped at the
	// tail-sampling decision.
	CounterTracesSampledOut = "trace.sampled_out"
	// CounterTraceSpansDropped counts spans lost to the per-trace ring
	// bound or published after their trace finished.
	CounterTraceSpansDropped = "trace.spans_dropped"
	// CounterTraceExportErrors counts retained traces the exporter
	// failed to write (the tracer never fails the pipeline on them).
	CounterTraceExportErrors = "trace.export_errors"
)

// Flight-recorder instruments (internal/obs/recorder).
const (
	// CounterRecorderRecords counts records committed to the black-box
	// ring.
	CounterRecorderRecords = "recorder.records"
	// CounterRecorderIncidents counts incident bundles written.
	CounterRecorderIncidents = "recorder.incidents"
	// CounterRecorderErrors counts incident-bundle write failures (the
	// pipeline never fails on them; see Recorder.Err).
	CounterRecorderErrors = "recorder.errors"
)

// Labeled instrument families and their label keys (ISSUE 10): the
// engine's per-rule series, the gateway's per-tenant RED set, and the
// campaign engine's live-progress gauges. Family names follow the flat
// instrument convention (dotted, sanitized at exposition); histogram
// families append their unit at exposition ("_seconds"/"_ratio").
const (
	// LabelRule keys the engine's per-rule families by rule ID.
	LabelRule = "rule"
	// LabelTenant keys the gateway's per-tenant families by lab tenant.
	LabelTenant = "tenant"
	// LabelWorker keys the campaign per-worker family by worker index.
	LabelWorker = "worker"

	// FamilyRuleEvals counts evaluations per rule
	// (rabit_rule_evals_total{rule="…"}).
	FamilyRuleEvals = "rule.evals"
	// FamilyRuleFires counts violations fired per rule
	// (rabit_rule_fires_total{rule="…"}).
	FamilyRuleFires = "rule.fires"
	// FamilyRuleEval times a single rule's evaluation
	// (rabit_rule_eval_seconds{rule="…"}).
	FamilyRuleEval = "rule.eval"
	// FamilyRuleMargin histograms the near-miss margin of non-firing
	// evaluations for rules that expose one — how close (as a fraction
	// of the limit, 0 = at the threshold) the state came to violating
	// (rabit_rule_margin_ratio{rule="…"}).
	FamilyRuleMargin = "rule.margin"

	// FamilyGatewayRequests counts admitted gateway requests per tenant.
	FamilyGatewayRequests = "gateway.requests"
	// FamilyGatewayErrors counts failed gateway requests per tenant.
	FamilyGatewayErrors = "gateway.errors"
	// FamilyGatewayRequest times gateway request handling per tenant.
	FamilyGatewayRequest = "gateway.request"
	// FamilyGatewayQueueDepth gauges admission-queue depth per tenant.
	FamilyGatewayQueueDepth = "gateway.queue_depth"
	// FamilyGatewayRejections counts admission rejections per tenant.
	FamilyGatewayRejections = "gateway.rejections"
	// FamilyGatewaySessions gauges active sessions per tenant.
	FamilyGatewaySessions = "gateway.sessions"
	// CounterGatewaySlowClientAborts counts verdict streams severed by
	// the slow-client write deadline.
	CounterGatewaySlowClientAborts = "gateway.slow_client_aborts"

	// GaugeCampaignTotal / GaugeCampaignDone are the campaign scenario
	// totals; the rest are the live campaign telemetry set.
	GaugeCampaignTotal = "campaign.total"
	// GaugeCampaignDone counts scenarios completed so far.
	GaugeCampaignDone = "campaign.done"
	// GaugeCampaignDetected counts injected faults detected so far.
	GaugeCampaignDetected = "campaign.detected"
	// GaugeCampaignMissed counts injected faults missed so far.
	GaugeCampaignMissed = "campaign.missed"
	// GaugeCampaignFalseAlarms counts alerts on clean scenarios so far.
	GaugeCampaignFalseAlarms = "campaign.false_alarms"
	// GaugeCampaignScenPerSecMilli is current throughput in scenarios
	// per second × 1000 (gauges are integers).
	GaugeCampaignScenPerSecMilli = "campaign.scen_per_sec_milli"
	// GaugeCampaignETASeconds is the estimated seconds to completion.
	GaugeCampaignETASeconds = "campaign.eta_seconds"
	// FamilyCampaignWorkerDone counts scenarios completed per worker
	// (rabit_campaign_worker_done{worker="…"}).
	FamilyCampaignWorkerDone = "campaign.worker_done"
)

// Prefixes for instrument families keyed by a dynamic component.
const (
	// PrefixAlerts + an AlertKind slug counts alerts by kind, e.g.
	// "alerts.invalid_command".
	PrefixAlerts = "alerts."
	// PrefixViolations + a rule ID counts violations by rule, e.g.
	// "violations.general-1".
	PrefixViolations = "violations."
	// PrefixOutcome + "ok"|"blocked"|"error" counts command outcomes.
	PrefixOutcome = "outcome."
	// PrefixDevice + device ID + "." + outcome counts outcomes by device.
	PrefixDevice = "device."
)
