package obs

// Names of the interception pipeline's stage histograms and shared
// instruments — agreed between core (the checker), trace (the
// interceptor), sim (the Extended Simulator), and eval (the Section II-C
// latency breakdown). One command's life: intercept wraps everything,
// before.validate and before.trajectory decompose the pre-check,
// execute is the device action, after.fetch and after.compare decompose
// the post-check.
const (
	// StageIntercept times the whole interception of one command.
	StageIntercept = "intercept"
	// StageValidate times precondition validation (Fig. 2 line 6).
	StageValidate = "before.validate"
	// StageTrajectory times the Extended-Simulator collision sweep
	// (Fig. 2 lines 8–10).
	StageTrajectory = "before.trajectory"
	// StageExecute times device execution between the checks.
	StageExecute = "execute"
	// StageFetch times the post-state acquisition (Fig. 2 line 13).
	StageFetch = "after.fetch"
	// StageCompare times the expected-vs-observed comparison (Fig. 2
	// line 14).
	StageCompare = "after.compare"
)

// Shared counter and gauge names.
const (
	// CounterCommands counts commands fully processed by the engine.
	CounterCommands = "commands"
	// CounterCheckNS accumulates nanoseconds spent inside Before/After —
	// the Section II-C aggregate, kept for Engine.CheckOverhead.
	CounterCheckNS = "check.ns"
	// CounterSimChecks counts Extended-Simulator collision sweeps.
	CounterSimChecks = "sim.collision_checks"
	// CounterSimBroadphasePruned counts solids and planes the simulator's
	// broadphase proved unreachable by a trajectory's swept volume and
	// excluded from the narrow phase.
	CounterSimBroadphasePruned = "sim.broadphase_pruned"
	// CounterSimBroadphaseKept counts solids and planes that survived the
	// broadphase and were tested per sample.
	CounterSimBroadphaseKept = "sim.broadphase_kept"
	// GaugeSimChecksInFlight tracks how many trajectory validations are
	// executing right now — >1 demonstrates the per-arm sharded locking.
	GaugeSimChecksInFlight = "sim.checks_in_flight"
	// GaugeGUIFrames tracks frames the simulator GUI has rendered.
	GaugeGUIFrames = "sim.gui_frames"
	// GaugeRules reports how many rules the engine validates against.
	GaugeRules = "engine.rules"
)

// Prefixes for instrument families keyed by a dynamic component.
const (
	// PrefixAlerts + an AlertKind slug counts alerts by kind, e.g.
	// "alerts.invalid_command".
	PrefixAlerts = "alerts."
	// PrefixViolations + a rule ID counts violations by rule, e.g.
	// "violations.general-1".
	PrefixViolations = "violations."
	// PrefixOutcome + "ok"|"blocked"|"error" counts command outcomes.
	PrefixOutcome = "outcome."
	// PrefixDevice + device ID + "." + outcome counts outcomes by device.
	PrefixDevice = "device."
)
