package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics exposition (ISSUE 10). The 0.0.4 text format cannot carry
// exemplars, so /metrics/prom content-negotiates: a scraper sending
// Accept: application/openmetrics-text gets this rendering — the same
// series as WritePromText/WritePromSLOs, plus per-bucket trace
// exemplars (`… # {trace_id="…"} value`) and the required # EOF
// terminator — while the default output stays byte-identical to the
// 0.0.4 exposition existing consumers pin.
//
// ValidateOpenMetrics is the matching Go-side grammar check: the
// exposition tests and the CI gateway smoke test run every scrape
// through it, so a malformed series (a label-escaping bug, an exemplar
// on a gauge, a sample outside its declared family) fails loudly
// instead of shipping.

// omFamily is one OpenMetrics metric family: unlike the 0.0.4 writer,
// the family (metadata) name can differ from the sample names —
// counters declare `# TYPE rabit_commands counter` but expose
// `rabit_commands_total`.
type omFamily struct {
	typ   string
	help  string
	lines []string
}

// WriteOpenMetrics renders snapshots and SLOs in the OpenMetrics 1.0
// text format, terminated by # EOF.
func WriteOpenMetrics(w io.Writer, snaps []Snapshot, slos []SLOSnapshot) {
	fams := map[string]*omFamily{}
	family := func(name, typ, help string) *omFamily {
		f, ok := fams[name]
		if !ok {
			f = &omFamily{typ: typ, help: help}
			fams[name] = f
		}
		return f
	}
	for _, s := range snaps {
		reg := escapeLabel(s.Name)
		for _, c := range s.Counters {
			fam := "rabit_" + sanitize(c.Name)
			f := family(fam, "counter", helpFor(fam+"_total"))
			f.lines = append(f.lines, fmt.Sprintf("%s_total{reg=\"%s\"} %d", fam, reg, c.Value))
		}
		for _, g := range s.Gauges {
			fam := "rabit_" + sanitize(g.Name)
			f := family(fam, "gauge", helpFor(fam))
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\"} %d", fam, reg, g.Value))
		}
		bounds := BucketBoundsNS()
		for _, h := range s.Histograms {
			fam := "rabit_" + sanitize(h.Name) + "_seconds"
			f := family(fam, "histogram", helpFor(fam))
			f.lines = append(f.lines, omHistLines(fam, "reg=\""+reg+"\"", h, bounds)...)
		}
		for _, fs := range s.Families {
			key := sanitize(fs.Key)
			switch fs.Kind {
			case KindCounter:
				fam := "rabit_" + sanitize(fs.Name)
				f := family(fam, "counter", helpFor(fam+"_total"))
				for _, c := range fs.Counters {
					f.lines = append(f.lines, fmt.Sprintf("%s_total{reg=\"%s\",%s=\"%s\"} %d",
						fam, reg, key, escapeLabel(c.Name), c.Value))
				}
			case KindGauge:
				fam := "rabit_" + sanitize(fs.Name)
				f := family(fam, "gauge", helpFor(fam))
				for _, g := range fs.Gauges {
					f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\",%s=\"%s\"} %d",
						fam, reg, key, escapeLabel(g.Name), g.Value))
				}
			case KindHistogram:
				unit := fs.Unit
				if unit == "" {
					unit = UnitSeconds
				}
				fam := "rabit_" + sanitize(fs.Name) + "_" + sanitize(unit)
				f := family(fam, "histogram", helpFor(fam))
				for _, h := range fs.Histograms {
					lbl := fmt.Sprintf("reg=\"%s\",%s=\"%s\"", reg, key, escapeLabel(h.Name))
					f.lines = append(f.lines, omHistLines(fam, lbl, h, bounds)...)
				}
			}
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	io.WriteString(w, sb.String())
	// The SLO gauges' family names equal their sample names, so the
	// 0.0.4 rendering is already valid OpenMetrics.
	WritePromSLOs(w, slos)
	io.WriteString(w, "# EOF\n")
}

// omHistLines renders one histogram's _bucket/_sum/_count samples,
// attaching each bucket's most recent trace exemplar when one exists.
func omHistLines(fam, lbl string, h HistogramSnapshot, bounds []int64) []string {
	cum := h.CumCounts
	if cum == nil {
		cum = make([]int64, len(bounds)+1)
	}
	exemplar := func(bucket int) string {
		for _, ex := range h.Exemplars {
			if ex.Bucket == bucket {
				return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(ex.TraceID), promSeconds(ex.ValueNS))
			}
		}
		return ""
	}
	lines := make([]string, 0, len(bounds)+3)
	for i, b := range bounds {
		lines = append(lines, fmt.Sprintf("%s_bucket{%s,le=\"%s\"} %d%s",
			fam, lbl, promSeconds(b), cum[i], exemplar(i)))
	}
	lines = append(lines, fmt.Sprintf("%s_bucket{%s,le=\"+Inf\"} %d%s",
		fam, lbl, cum[len(cum)-1], exemplar(len(bounds))))
	lines = append(lines, fmt.Sprintf("%s_sum{%s} %s", fam, lbl, promSeconds(h.SumNS)))
	lines = append(lines, fmt.Sprintf("%s_count{%s} %d", fam, lbl, h.Count))
	return lines
}

// omTypes are the metric types OpenMetrics 1.0 admits.
var omTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
	"gaugehistogram": true, "info": true, "stateset": true, "unknown": true,
}

// ValidateOpenMetrics parses an OpenMetrics text exposition and returns
// the first grammar violation found: malformed names or label syntax,
// samples outside a declared family or with the wrong suffix for the
// family's type, histogram buckets without le, exemplars on sample
// types that cannot carry them, a missing # EOF, or content after it.
func ValidateOpenMetrics(data []byte) error {
	types := map[string]string{}
	lines := strings.Split(string(data), "\n")
	sawEOF := false
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			// Only the split artifact after the final newline is legal.
			if i != len(lines)-1 {
				return fmt.Errorf("openmetrics: line %d: empty line", lineNo)
			}
			continue
		}
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			if err := omMeta(line, types); err != nil {
				return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
			}
			continue
		}
		if err := omSample(line, types); err != nil {
			return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
		}
	}
	if !sawEOF {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	return nil
}

// omMeta validates one metadata line (# TYPE / # HELP / # UNIT).
func omMeta(line string, types map[string]string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return fmt.Errorf("malformed comment %q (OpenMetrics comments are metadata only)", line)
	}
	kw, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("truncated metadata line %q", line)
	}
	name, val, _ := strings.Cut(rest, " ")
	if !omValidName(name) {
		return fmt.Errorf("invalid metric family name %q", name)
	}
	switch kw {
	case "TYPE":
		if !omTypes[val] {
			return fmt.Errorf("unknown metric type %q for family %q", val, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for family %q", name)
		}
		types[name] = val
	case "HELP", "UNIT":
		// Free text / unit string; nothing further to check.
	default:
		return fmt.Errorf("unknown metadata keyword %q", kw)
	}
	return nil
}

// omSample validates one sample line against the declared families.
func omSample(line string, types map[string]string) error {
	name, rest := omScanName(line)
	if name == "" {
		return fmt.Errorf("sample has no metric name: %q", line)
	}
	labels, rest, err := omScanLabels(rest)
	if err != nil {
		return fmt.Errorf("%w in %q", err, line)
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("missing space before value in %q", line)
	}
	rest = rest[1:]
	// Value, optional timestamp, optional exemplar.
	valStr, rest := omScanToken(rest)
	if _, err := strconv.ParseFloat(valStr, 64); err != nil {
		return fmt.Errorf("invalid sample value %q in %q", valStr, line)
	}
	hasExemplar := false
	if rest != "" {
		ts, after, found := omCutExemplar(rest)
		if ts != "" {
			if _, err := strconv.ParseFloat(ts, 64); err != nil {
				return fmt.Errorf("invalid timestamp %q in %q", ts, line)
			}
		}
		if found {
			hasExemplar = true
			exLabels, exRest, err := omScanLabels(after)
			if err != nil || len(exLabels) == 0 {
				return fmt.Errorf("malformed exemplar in %q", line)
			}
			if !strings.HasPrefix(exRest, " ") {
				return fmt.Errorf("exemplar missing value in %q", line)
			}
			exVal, exTS := omScanToken(exRest[1:])
			if _, err := strconv.ParseFloat(exVal, 64); err != nil {
				return fmt.Errorf("invalid exemplar value %q in %q", exVal, line)
			}
			if exTS = strings.TrimSpace(exTS); exTS != "" {
				if _, err := strconv.ParseFloat(exTS, 64); err != nil {
					return fmt.Errorf("invalid exemplar timestamp %q in %q", exTS, line)
				}
			}
		}
	}
	// Resolve the sample to its declared family and check the suffix is
	// legal for the family's type.
	fam, suffix := omFamilyOf(name, types)
	if fam == "" {
		return fmt.Errorf("sample %q belongs to no declared family", name)
	}
	typ := types[fam]
	switch typ {
	case "counter":
		if suffix != "_total" && suffix != "_created" {
			return fmt.Errorf("counter family %q cannot have sample %q", fam, name)
		}
	case "gauge", "unknown", "info", "stateset":
		if suffix != "" {
			return fmt.Errorf("%s family %q cannot have sample %q", typ, fam, name)
		}
	case "histogram", "gaugehistogram":
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("histogram bucket %q has no le label", line)
			}
			if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("invalid le value %q in %q", le, line)
			}
		case "_sum", "_count", "_created", "_gsum", "_gcount":
		default:
			return fmt.Errorf("histogram family %q cannot have sample %q", fam, name)
		}
	case "summary":
		if suffix != "" && suffix != "_sum" && suffix != "_count" && suffix != "_created" {
			return fmt.Errorf("summary family %q cannot have sample %q", fam, name)
		}
	}
	if hasExemplar && suffix != "_bucket" && suffix != "_total" {
		return fmt.Errorf("exemplar on a sample that cannot carry one: %q", line)
	}
	return nil
}

// omFamilyOf maps a sample name onto a declared family: the exact name,
// or the name minus a recognised suffix.
func omFamilyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_total", "_bucket", "_sum", "_count", "_created", "_gsum", "_gcount"} {
		if base, ok := strings.CutSuffix(name, s); ok {
			if _, declared := types[base]; declared {
				return base, s
			}
		}
	}
	return "", ""
}

// omValidName reports whether a string is a legal OpenMetrics metric
// name ([a-zA-Z_][a-zA-Z0-9_]*).
func omValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// omScanName splits a leading metric name off a sample line.
func omScanName(line string) (name, rest string) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	return line[:i], line[i:]
}

// omScanLabels parses an optional {label="value",…} block, honouring
// the \\, \", and \n escapes, and rejects duplicate label names.
func omScanLabels(s string) (map[string]string, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	s = s[1:]
	labels := map[string]string{}
	for {
		if strings.HasPrefix(s, "}") {
			if len(labels) == 0 {
				// `{}` is legal per the ABNF (empty labelset).
				return labels, s[1:], nil
			}
			return labels, s[1:], nil
		}
		name, rest := omScanName(s)
		if name == "" {
			return nil, s, fmt.Errorf("invalid label name")
		}
		if _, dup := labels[name]; dup {
			return nil, s, fmt.Errorf("duplicate label %q", name)
		}
		if !strings.HasPrefix(rest, "=\"") {
			return nil, s, fmt.Errorf("label %q missing quoted value", name)
		}
		rest = rest[2:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, s, fmt.Errorf("truncated escape in label %q", name)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, fmt.Errorf("invalid escape \\%c in label %q", rest[i], name)
				}
				continue
			}
			if c == '"' {
				labels[name] = val.String()
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, s, fmt.Errorf("unterminated value for label %q", name)
		}
		if strings.HasPrefix(rest, ",") {
			s = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, s, fmt.Errorf("malformed label separator after %q", name)
	}
}

// omScanToken splits the next space-delimited token.
func omScanToken(s string) (tok, rest string) {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// omCutExemplar splits an optional timestamp from the " # " exemplar
// marker: the input is everything after the sample value.
func omCutExemplar(s string) (ts, after string, found bool) {
	if cut, rest, ok := strings.Cut(s, "# "); ok {
		return strings.TrimSpace(cut), rest, true
	}
	return strings.TrimSpace(s), "", false
}
