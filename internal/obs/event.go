package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured telemetry event, written as a JSON line —
// the same on-disk idiom as the trace package's RAD records, so
// radmine-style tooling can mine event streams offline.
type Event struct {
	// Registry labels which registry emitted the event (filled by Emit).
	Registry string `json:"reg,omitempty"`
	// T is the lab-clock timestamp, when the emitter has one.
	T time.Duration `json:"t,omitempty"`
	// Kind classifies the event: "command", "alert", "span", …
	Kind string `json:"kind"`
	// Name is the event's subject: a stage name, an alert kind, a rule ID.
	Name string `json:"name,omitempty"`
	// Device is the device the event concerns, if any.
	Device string `json:"device,omitempty"`
	// Outcome is "ok" | "blocked" | "error" for command events.
	Outcome string `json:"outcome,omitempty"`
	// Detail carries free-form context (alert text, error message).
	Detail string `json:"detail,omitempty"`
	// Seq is the command sequence number, when the event maps to one.
	Seq int `json:"seq,omitempty"`
	// DurNS is the event's duration in nanoseconds (span and command
	// events).
	DurNS int64 `json:"dur_ns,omitempty"`
}

// EventSink receives structured events. Implementations must be safe for
// concurrent use.
type EventSink interface {
	Emit(Event)
}

// JSONLSink streams events as JSON lines to a writer, buffered like the
// trace package's WriteJSONL. Emit never fails; the first write error is
// latched and reported by Flush/Close.
type JSONLSink struct {
	mu     sync.Mutex
	w      io.Writer
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	closed bool
}

// NewJSONLSink wraps a writer (typically an *os.File) as an event sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a JSON line. Events after Close are dropped.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	if err := s.enc.Encode(ev); err != nil {
		s.err = fmt.Errorf("obs: encode event: %w", err)
	}
}

// Flush drains the buffer, returning the first error seen so far.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *JSONLSink) flushLocked() error {
	if s.err != nil {
		return s.err
	}
	if err := s.bw.Flush(); err != nil {
		s.err = fmt.Errorf("obs: flush events: %w", err)
	}
	return s.err
}

// Close flushes the buffer, then syncs and closes the underlying writer
// when it supports those operations — so "the events hit disk" is the
// sink's contract, not the caller's bookkeeping. Idempotent: a second
// Close returns the same result as the first without re-closing the
// writer. The first error anywhere (encode, flush, sync, close) wins.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	flushed := s.flushLocked() == nil
	if sy, ok := s.w.(interface{ Sync() error }); ok && flushed {
		if err := sy.Sync(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: sync events: %w", err)
		}
	}
	// Close the writer even after a flush failure — an error must not
	// leak the descriptor.
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: close events: %w", err)
		}
	}
	return s.err
}

// ReadEvents loads a JSONL event stream, mirroring trace.ReadJSONL —
// including its tolerance for large lines.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan: %w", err)
	}
	return out, nil
}

// FanoutSink broadcasts events to several sinks.
type FanoutSink []EventSink

// Emit sends the event to every sink.
func (f FanoutSink) Emit(ev Event) {
	for _, s := range f {
		if s != nil {
			s.Emit(ev)
		}
	}
}

// MemorySink buffers events in memory — the introspection/test sink.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (m *MemorySink) Emit(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, ev)
}

// Events returns a copy of everything emitted so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}
