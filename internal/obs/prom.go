package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// The Prometheus text-format exposition (/metrics/prom). The flat
// /metrics rendering predates it and keeps its ad-hoc shape for existing
// consumers; this endpoint speaks the standard text format 0.0.4 —
// # HELP/# TYPE lines, counters suffixed _total, histograms as real
// _bucket / _sum / _count series with le labels in seconds — so an
// off-the-shelf Prometheus scrape ingests RABIT's registries unmodified.

// promMetricsText renders the group's registries plus its SLO set in
// the Prometheus text exposition format.
func (g *Group) promMetricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePromText(w, g.Snapshots())
	WritePromSLOs(w, g.SLOSnapshots())
}

// escapeLabel escapes a label value per the exposition format: exactly
// backslash, double-quote, and line-feed — no more (Go's %q would also
// escape tabs and non-printables, which Prometheus parsers take
// literally, silently changing the label value).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// escapeHelp escapes a # HELP text: backslash and line-feed only, per
// the format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFamily accumulates one metric family's samples so each family
// renders under a single # HELP/# TYPE header pair even when several
// registries carry the instrument.
type promFamily struct {
	typ   string // "counter" | "gauge" | "histogram"
	help  string
	lines []string
}

// helpText maps sanitized family names to # HELP strings; families not
// listed fall back to a generic line. Kept deliberately small — the
// point of HELP is orientation, not documentation.
var helpText = map[string]string{
	"rabit_commands_total":            "Commands fully checked by the engine (Before and After).",
	"rabit_check_ns_total":            "Cumulative safety-check overhead in nanoseconds.",
	"rabit_before_validate_seconds":   "Rule validation stage latency.",
	"rabit_before_trajectory_seconds": "Trajectory validation stage latency.",
	"rabit_after_fetch_seconds":       "Post-state fetch stage latency.",
	"rabit_after_compare_seconds":     "Post-state comparison stage latency.",
	"rabit_intercept_seconds":         "End-to-end interception latency per command.",
	"rabit_execute_seconds":           "Device execution latency per command.",
	"rabit_slo_objective":             "SLO objective (fraction of observations that must be good).",
	"rabit_slo_threshold_seconds":     "SLO threshold under which an observation counts as good.",
	"rabit_slo_good":                  "Good observations inside the rolling window.",
	"rabit_slo_bad":                   "Bad observations inside the rolling window.",
	"rabit_slo_burn_rate":             "Error-budget burn rate over the rolling window (1.0 = at objective).",
	"rabit_traces_started_total":      "Traces opened by the causal tracer.",
	"rabit_traces_retained_total":     "Traces kept by the tail-sampling decision.",
	"rabit_traces_sampled_out_total":  "Non-alert traces dropped by the tail-sampling decision.",
	"rabit_trace_spans_dropped_total": "Spans lost to per-trace ring bounds or finished traces.",
	"rabit_trace_export_errors_total": "Retained traces the exporter failed to write.",
}

func helpFor(name string) string {
	if h, ok := helpText[name]; ok {
		return h
	}
	return "RABIT metric " + name + "."
}

// WritePromText renders snapshots in the Prometheus text format. Metric
// names are stable: "rabit_" + the sanitized instrument name, counters
// suffixed _total, histograms suffixed _seconds (durations convert from
// nanoseconds). Every series carries a reg label naming its registry's
// scrape alias; label values are escaped per the format.
func WritePromText(w io.Writer, snaps []Snapshot) {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ, help: helpFor(name)}
			fams[name] = f
		}
		return f
	}
	for _, s := range snaps {
		reg := escapeLabel(s.Name)
		for _, c := range s.Counters {
			name := "rabit_" + sanitize(c.Name) + "_total"
			f := family(name, "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\"} %d", name, reg, c.Value))
		}
		for _, g := range s.Gauges {
			name := "rabit_" + sanitize(g.Name)
			f := family(name, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\"} %d", name, reg, g.Value))
		}
		bounds := BucketBoundsNS()
		for _, h := range s.Histograms {
			name := "rabit_" + sanitize(h.Name) + "_seconds"
			f := family(name, "histogram")
			cum := h.CumCounts
			if cum == nil {
				// An empty histogram still exposes a complete series.
				cum = make([]int64, len(bounds)+1)
			}
			for i, b := range bounds {
				f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",le=\"%s\"} %d",
					name, reg, promSeconds(b), cum[i]))
			}
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",le=\"+Inf\"} %d",
				name, reg, cum[len(cum)-1]))
			f.lines = append(f.lines, fmt.Sprintf("%s_sum{reg=\"%s\"} %s",
				name, reg, promSeconds(h.SumNS)))
			f.lines = append(f.lines, fmt.Sprintf("%s_count{reg=\"%s\"} %d", name, reg, h.Count))
		}
	}
	writeFamilies(w, fams)
}

// WritePromSLOs renders the SLO group: objective and threshold as
// per-SLO gauges, plus good/bad totals and the burn rate per rolling
// window.
func WritePromSLOs(w io.Writer, slos []SLOSnapshot) {
	if len(slos) == 0 {
		return
	}
	fams := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: "gauge", help: helpFor(name)}
			fams[name] = f
		}
		return f
	}
	for _, s := range slos {
		slo := escapeLabel(s.Name)
		f := family("rabit_slo_objective")
		f.lines = append(f.lines, fmt.Sprintf("rabit_slo_objective{slo=\"%s\"} %s",
			slo, strconv.FormatFloat(s.Objective, 'g', -1, 64)))
		f = family("rabit_slo_threshold_seconds")
		f.lines = append(f.lines, fmt.Sprintf("rabit_slo_threshold_seconds{slo=\"%s\"} %s",
			slo, promSeconds(s.ThresholdNS)))
		for _, ws := range s.Windows {
			win := escapeLabel(ws.Window.String())
			f = family("rabit_slo_good")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_good{slo=\"%s\",window=\"%s\"} %d", slo, win, ws.Good))
			f = family("rabit_slo_bad")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_bad{slo=\"%s\",window=\"%s\"} %d", slo, win, ws.Bad))
			f = family("rabit_slo_burn_rate")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_burn_rate{slo=\"%s\",window=\"%s\"} %s",
				slo, win, strconv.FormatFloat(ws.BurnRate, 'g', -1, 64)))
		}
	}
	writeFamilies(w, fams)
}

// writeFamilies emits families sorted by name, each under exactly one
// # HELP and one # TYPE line.
func writeFamilies(w io.Writer, fams map[string]*promFamily) {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	io.WriteString(w, sb.String())
}

// promSeconds renders a nanosecond quantity as seconds, the unit
// Prometheus conventions require for durations.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
