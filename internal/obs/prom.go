package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// The Prometheus text-format exposition (/metrics/prom). The flat
// /metrics rendering predates it and keeps its ad-hoc shape for existing
// consumers; this endpoint speaks the standard text format 0.0.4 —
// # TYPE lines, counters suffixed _total, histograms as real _bucket /
// _sum / _count series with le labels in seconds — so an off-the-shelf
// Prometheus scrape ingests RABIT's registries unmodified.

// promMetricsText renders every registered registry in the Prometheus
// text exposition format.
func promMetricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePromText(w, Snapshots())
}

// promFamily accumulates one metric family's samples so each family
// renders under a single # TYPE header even when several registries
// carry the instrument.
type promFamily struct {
	typ   string // "counter" | "gauge" | "histogram"
	lines []string
}

// WritePromText renders snapshots in the Prometheus text format. Metric
// names are stable: "rabit_" + the sanitized instrument name, counters
// suffixed _total, histograms suffixed _seconds (durations convert from
// nanoseconds). Every series carries a reg label naming its registry's
// scrape alias.
func WritePromText(w io.Writer, snaps []Snapshot) {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		return f
	}
	for _, s := range snaps {
		reg := s.Name
		for _, c := range s.Counters {
			name := "rabit_" + sanitize(c.Name) + "_total"
			f := family(name, "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=%q} %d", name, reg, c.Value))
		}
		for _, g := range s.Gauges {
			name := "rabit_" + sanitize(g.Name)
			f := family(name, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=%q} %d", name, reg, g.Value))
		}
		bounds := BucketBoundsNS()
		for _, h := range s.Histograms {
			name := "rabit_" + sanitize(h.Name) + "_seconds"
			f := family(name, "histogram")
			cum := h.CumCounts
			if cum == nil {
				// An empty histogram still exposes a complete series.
				cum = make([]int64, len(bounds)+1)
			}
			for i, b := range bounds {
				f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=%q,le=%q} %d",
					name, reg, promSeconds(b), cum[i]))
			}
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=%q,le=\"+Inf\"} %d",
				name, reg, cum[len(cum)-1]))
			f.lines = append(f.lines, fmt.Sprintf("%s_sum{reg=%q} %s",
				name, reg, promSeconds(h.SumNS)))
			f.lines = append(f.lines, fmt.Sprintf("%s_count{reg=%q} %d", name, reg, h.Count))
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	io.WriteString(w, sb.String())
}

// promSeconds renders a nanosecond quantity as seconds, the unit
// Prometheus conventions require for durations.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
