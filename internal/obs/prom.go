package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// The Prometheus text-format exposition (/metrics/prom). The flat
// /metrics rendering predates it and keeps its ad-hoc shape for existing
// consumers; this endpoint speaks the standard text format 0.0.4 —
// # HELP/# TYPE lines, counters suffixed _total, histograms as real
// _bucket / _sum / _count series with le labels in seconds — so an
// off-the-shelf Prometheus scrape ingests RABIT's registries unmodified.

// promMetricsText renders the group's registries plus its SLO set in
// the Prometheus text exposition format. A scraper that negotiates
// OpenMetrics via the Accept header gets the OpenMetrics rendering —
// same series, plus per-bucket trace exemplars and the # EOF marker —
// while the default stays byte-compatible text format 0.0.4.
func (g *Group) promMetricsText(w http.ResponseWriter, r *http.Request) {
	if r != nil && strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		WriteOpenMetrics(w, g.Snapshots(), g.SLOSnapshots())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePromText(w, g.Snapshots())
	WritePromSLOs(w, g.SLOSnapshots())
}

// escapeLabel escapes a label value per the exposition format: exactly
// backslash, double-quote, and line-feed — no more (Go's %q would also
// escape tabs and non-printables, which Prometheus parsers take
// literally, silently changing the label value).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// escapeHelp escapes a # HELP text: backslash and line-feed only, per
// the format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFamily accumulates one metric family's samples so each family
// renders under a single # HELP/# TYPE header pair even when several
// registries carry the instrument.
type promFamily struct {
	typ   string // "counter" | "gauge" | "histogram"
	help  string
	lines []string
}

// helpText maps sanitized family names to # HELP strings; families not
// listed fall back to a generic line. Kept deliberately small — the
// point of HELP is orientation, not documentation.
var helpText = map[string]string{
	"rabit_commands_total":                   "Commands fully checked by the engine (Before and After).",
	"rabit_check_ns_total":                   "Cumulative safety-check overhead in nanoseconds.",
	"rabit_before_validate_seconds":          "Rule validation stage latency.",
	"rabit_before_trajectory_seconds":        "Trajectory validation stage latency.",
	"rabit_after_fetch_seconds":              "Post-state fetch stage latency.",
	"rabit_after_compare_seconds":            "Post-state comparison stage latency.",
	"rabit_intercept_seconds":                "End-to-end interception latency per command.",
	"rabit_execute_seconds":                  "Device execution latency per command.",
	"rabit_slo_objective":                    "SLO objective (fraction of observations that must be good).",
	"rabit_slo_threshold_seconds":            "SLO threshold under which an observation counts as good.",
	"rabit_slo_good":                         "Good observations inside the rolling window.",
	"rabit_slo_bad":                          "Bad observations inside the rolling window.",
	"rabit_slo_burn_rate":                    "Error-budget burn rate over the rolling window (1.0 = at objective).",
	"rabit_traces_started_total":             "Traces opened by the causal tracer.",
	"rabit_traces_retained_total":            "Traces kept by the tail-sampling decision.",
	"rabit_traces_sampled_out_total":         "Non-alert traces dropped by the tail-sampling decision.",
	"rabit_trace_spans_dropped_total":        "Spans lost to per-trace ring bounds or finished traces.",
	"rabit_trace_export_errors_total":        "Retained traces the exporter failed to write.",
	"rabit_rule_evals_total":                 "Rule evaluations by rule ID.",
	"rabit_rule_fires_total":                 "Rule violations raised by rule ID.",
	"rabit_rule_eval_seconds":                "Per-rule evaluation latency.",
	"rabit_rule_margin_ratio":                "Near-miss margin on non-firing evaluations (0 = at the violation threshold).",
	"rabit_gateway_requests_total":           "Gateway command-stream requests by lab tenant.",
	"rabit_gateway_errors_total":             "Gateway request errors by lab tenant.",
	"rabit_gateway_request_seconds":          "Gateway request duration by lab tenant.",
	"rabit_gateway_queue_depth":              "Admission-queue slots in use by lab tenant.",
	"rabit_gateway_rejections_total":         "Admission rejections (backpressure 429s) by lab tenant.",
	"rabit_gateway_sessions":                 "Active sessions by lab tenant.",
	"rabit_gateway_slow_client_aborts_total": "Verdict streams aborted by the slow-client write deadline.",
	"rabit_campaign_total":                   "Campaign scenarios planned.",
	"rabit_campaign_done":                    "Campaign scenarios completed so far.",
	"rabit_campaign_detected":                "Campaign unsafe injections detected so far.",
	"rabit_campaign_missed":                  "Campaign unsafe injections missed so far.",
	"rabit_campaign_false_alarms":            "Campaign false alarms so far.",
	"rabit_campaign_scen_per_sec_milli":      "Campaign throughput in milli-scenarios per second.",
	"rabit_campaign_eta_seconds":             "Estimated seconds until the campaign completes.",
	"rabit_campaign_worker_done":             "Campaign scenarios completed by worker.",
}

func helpFor(name string) string {
	if h, ok := helpText[name]; ok {
		return h
	}
	return "RABIT metric " + name + "."
}

// WritePromText renders snapshots in the Prometheus text format. Metric
// names are stable: "rabit_" + the sanitized instrument name, counters
// suffixed _total, histograms suffixed _seconds (durations convert from
// nanoseconds). Every series carries a reg label naming its registry's
// scrape alias; label values are escaped per the format.
func WritePromText(w io.Writer, snaps []Snapshot) {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ, help: helpFor(name)}
			fams[name] = f
		}
		return f
	}
	for _, s := range snaps {
		reg := escapeLabel(s.Name)
		for _, c := range s.Counters {
			name := "rabit_" + sanitize(c.Name) + "_total"
			f := family(name, "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\"} %d", name, reg, c.Value))
		}
		for _, g := range s.Gauges {
			name := "rabit_" + sanitize(g.Name)
			f := family(name, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\"} %d", name, reg, g.Value))
		}
		bounds := BucketBoundsNS()
		for _, h := range s.Histograms {
			name := "rabit_" + sanitize(h.Name) + "_seconds"
			f := family(name, "histogram")
			cum := h.CumCounts
			if cum == nil {
				// An empty histogram still exposes a complete series.
				cum = make([]int64, len(bounds)+1)
			}
			for i, b := range bounds {
				f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",le=\"%s\"} %d",
					name, reg, promSeconds(b), cum[i]))
			}
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",le=\"+Inf\"} %d",
				name, reg, cum[len(cum)-1]))
			f.lines = append(f.lines, fmt.Sprintf("%s_sum{reg=\"%s\"} %s",
				name, reg, promSeconds(h.SumNS)))
			f.lines = append(f.lines, fmt.Sprintf("%s_count{reg=\"%s\"} %d", name, reg, h.Count))
		}
		for _, fam := range s.Families {
			key := sanitize(fam.Key)
			switch fam.Kind {
			case KindCounter:
				name := "rabit_" + sanitize(fam.Name) + "_total"
				f := family(name, "counter")
				for _, c := range fam.Counters {
					f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\",%s=\"%s\"} %d",
						name, reg, key, escapeLabel(c.Name), c.Value))
				}
			case KindGauge:
				name := "rabit_" + sanitize(fam.Name)
				f := family(name, "gauge")
				for _, gv := range fam.Gauges {
					f.lines = append(f.lines, fmt.Sprintf("%s{reg=\"%s\",%s=\"%s\"} %d",
						name, reg, key, escapeLabel(gv.Name), gv.Value))
				}
			case KindHistogram:
				unit := fam.Unit
				if unit == "" {
					unit = UnitSeconds
				}
				name := "rabit_" + sanitize(fam.Name) + "_" + sanitize(unit)
				f := family(name, "histogram")
				for _, h := range fam.Histograms {
					lv := escapeLabel(h.Name)
					cum := h.CumCounts
					if cum == nil {
						cum = make([]int64, len(bounds)+1)
					}
					for i, b := range bounds {
						f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",%s=\"%s\",le=\"%s\"} %d",
							name, reg, key, lv, promSeconds(b), cum[i]))
					}
					f.lines = append(f.lines, fmt.Sprintf("%s_bucket{reg=\"%s\",%s=\"%s\",le=\"+Inf\"} %d",
						name, reg, key, lv, cum[len(cum)-1]))
					f.lines = append(f.lines, fmt.Sprintf("%s_sum{reg=\"%s\",%s=\"%s\"} %s",
						name, reg, key, lv, promSeconds(h.SumNS)))
					f.lines = append(f.lines, fmt.Sprintf("%s_count{reg=\"%s\",%s=\"%s\"} %d",
						name, reg, key, lv, h.Count))
				}
			}
		}
	}
	writeFamilies(w, fams)
}

// WritePromSLOs renders the SLO group: objective and threshold as
// per-SLO gauges, plus good/bad totals and the burn rate per rolling
// window.
func WritePromSLOs(w io.Writer, slos []SLOSnapshot) {
	if len(slos) == 0 {
		return
	}
	fams := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: "gauge", help: helpFor(name)}
			fams[name] = f
		}
		return f
	}
	for _, s := range slos {
		// Tenant-scoped SLOs carry the tenant label right after slo, so a
		// gateway's per-lab burn rates are distinct series; global SLOs
		// render exactly as before.
		lbl := fmt.Sprintf("slo=\"%s\"", escapeLabel(s.Name))
		if s.Tenant != "" {
			lbl += fmt.Sprintf(",tenant=\"%s\"", escapeLabel(s.Tenant))
		}
		f := family("rabit_slo_objective")
		f.lines = append(f.lines, fmt.Sprintf("rabit_slo_objective{%s} %s",
			lbl, strconv.FormatFloat(s.Objective, 'g', -1, 64)))
		f = family("rabit_slo_threshold_seconds")
		f.lines = append(f.lines, fmt.Sprintf("rabit_slo_threshold_seconds{%s} %s",
			lbl, promSeconds(s.ThresholdNS)))
		for _, ws := range s.Windows {
			win := escapeLabel(ws.Window.String())
			f = family("rabit_slo_good")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_good{%s,window=\"%s\"} %d", lbl, win, ws.Good))
			f = family("rabit_slo_bad")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_bad{%s,window=\"%s\"} %d", lbl, win, ws.Bad))
			f = family("rabit_slo_burn_rate")
			f.lines = append(f.lines, fmt.Sprintf("rabit_slo_burn_rate{%s,window=\"%s\"} %s",
				lbl, win, strconv.FormatFloat(ws.BurnRate, 'g', -1, 64)))
		}
	}
	writeFamilies(w, fams)
}

// writeFamilies emits families sorted by name, each under exactly one
// # HELP and one # TYPE line.
func writeFamilies(w io.Writer, fams map[string]*promFamily) {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	io.WriteString(w, sb.String())
}

// promSeconds renders a nanosecond quantity as seconds, the unit
// Prometheus conventions require for durations.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
