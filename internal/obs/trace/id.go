// Package trace is RABIT's causal tracing layer: every intercepted
// command becomes a root span of a per-run trace, and the engine's
// pipeline stages, the simulator's kinematics/sweep work, and the
// speculative lookahead all attach child spans to it — upgrading the
// flat per-stage latency histograms and the flight recorder's
// correlation IDs into one coherent trace tree.
//
// Identifiers follow the W3C Trace Context model (128-bit trace IDs,
// 64-bit span IDs) and round-trip through `traceparent` headers, so the
// future gateway can propagate context over HTTP/gRPC. Retention is
// tail-based: the keep/drop decision is made when a trace *finishes* —
// traces that ended in an alert or fail-safe are always retained,
// everything else is sampled probabilistically (see Tracer).
package trace

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID is a 128-bit trace identifier (nonzero when valid).
type TraceID [16]byte

// SpanID is a 64-bit span identifier (nonzero when valid).
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the span ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-char lowercase hex form ("" for the zero ID).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-char lowercase hex form ("" for the zero ID).
func (s SpanID) String() string {
	if s.IsZero() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// ParseTraceID parses a 32-char hex trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace: trace ID must be 32 hex chars, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(strings.ToLower(s))); err != nil {
		return TraceID{}, fmt.Errorf("trace: trace ID: %w", err)
	}
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("trace: trace ID is all zeros")
	}
	return t, nil
}

// ParseSpanID parses a 16-char hex span ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("trace: span ID must be 16 hex chars, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(strings.ToLower(s))); err != nil {
		return SpanID{}, fmt.Errorf("trace: span ID: %w", err)
	}
	if id.IsZero() {
		return SpanID{}, fmt.Errorf("trace: span ID is all zeros")
	}
	return id, nil
}

// SpanContext names a position in a trace: the trace and the span under
// which new child spans should parent. The zero value is invalid and
// every consumer treats it as "not traced".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are set.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// TraceParent renders the context as a W3C traceparent header value
// (version 00, sampled flag set — retention is decided at trace end by
// tail sampling, so in-band every span is recorded). Returns "" for an
// invalid context.
func (c SpanContext) TraceParent() string {
	if !c.Valid() {
		return ""
	}
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceParent parses a W3C traceparent header value. Unknown
// future versions are accepted as long as the version-00 prefix fields
// parse (per the spec's forward-compatibility rule); the invalid
// version "ff" and zero IDs are rejected.
func ParseTraceParent(s string) (SpanContext, error) {
	parts := strings.SplitN(s, "-", 4)
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: want 4 dash-separated fields", s)
	}
	ver := strings.ToLower(parts[0])
	if len(ver) != 2 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad version field", s)
	}
	if ver == "ff" {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: version ff is invalid", s)
	}
	tid, err := ParseTraceID(parts[1])
	if err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: %w", s, err)
	}
	sid, err := ParseSpanID(parts[2])
	if err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: %w", s, err)
	}
	if len(parts[3]) < 2 {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: bad flags field", s)
	}
	return SpanContext{Trace: tid, Span: sid}, nil
}
