package trace

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultSampleRate is the tail-sampling probability for traces that
	// did NOT end in an alert (alert traces are always retained).
	DefaultSampleRate = 0.10
	// DefaultMaxActive bounds concurrently open traces; the oldest is
	// dropped past the bound (a run trace leaks only if never finished).
	DefaultMaxActive = 256
	// DefaultMaxSpans bounds the spans buffered per trace. Past it the
	// buffer is a ring: the oldest spans are overwritten, mirroring the
	// flight recorder's black-box philosophy — a retained trace always
	// holds the *latest* window, which is the one that ends in the alert.
	DefaultMaxSpans = 2048
	// DefaultMaxRetained bounds the in-memory retained-trace ring served
	// by /traces; the exporter (if any) has already seen evicted traces.
	DefaultMaxRetained = 64
)

// Attr is one span attribute (string-valued, like the OTLP export).
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// SpanData is one finished span.
type SpanData struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID // zero for root spans
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
	// Err is the error status message ("" = OK).
	Err string
	// Alert marks the span where a safety alert was raised; it forces
	// the whole trace's tail-sampling decision to "retain".
	Alert bool
}

// Context returns the span's context, for parenting children.
func (d *SpanData) Context() SpanContext {
	return SpanContext{Trace: d.Trace, Span: d.Span}
}

// TraceData is one finished, retained trace.
type TraceData struct {
	ID TraceID
	// Alert reports whether any span carried an alert mark.
	Alert bool
	// Dropped counts spans lost to the per-trace ring bound.
	Dropped int
	// Spans in start-time order.
	Spans []SpanData
}

// Exporter receives each retained trace exactly once, at the moment the
// tail-sampling decision keeps it.
type Exporter interface {
	ExportTrace(td *TraceData) error
}

// Options configures a Tracer.
type Options struct {
	// SampleRate is the tail-sampling probability for non-alert traces
	// (default DefaultSampleRate; <0 retains alert traces only).
	SampleRate float64
	// MaxActive, MaxSpans, MaxRetained override the bounds above.
	MaxActive   int
	MaxSpans    int
	MaxRetained int
	// Exporter, when set, receives every retained trace.
	Exporter Exporter
	// Seed drives span/trace ID generation and the sampling decision —
	// like the rest of the reproduction, tracing is deterministic.
	Seed int64
	// Obs publishes tracer telemetry (nil-safe).
	Obs *obs.Registry
}

// activeTrace is one open trace: a bounded span ring plus the alert flag.
type activeTrace struct {
	spans   []SpanData
	next    int // ring cursor once len(spans) == max
	dropped int
	alert   bool
}

// bindKey identifies a command in flight: the interceptor binds the
// command's root span under (device, seq) and the engine looks the
// binding up from inside the pipeline — causal context threads through
// without changing the Checker interface.
type bindKey struct {
	device string
	seq    int
}

// Tracer assigns IDs, buffers spans per trace, makes the tail-sampling
// retention decision at FinishTrace, and carries the (device, seq) →
// SpanContext binding registry. All methods are safe for concurrent use
// and nil-safe: a nil *Tracer (tracing disabled) no-ops everywhere and
// hands out nil *Spans, whose methods also no-op.
type Tracer struct {
	sampleRate  float64
	maxActive   int
	maxSpans    int
	maxRetained int
	exporter    Exporter

	// idState/rngState are splitmix64 streams: idState feeds trace/span
	// IDs, rngState the sampling decisions — both seeded, so a run's
	// trace tree and retention are reproducible.
	idState  atomic.Uint64
	rngState atomic.Uint64

	mu       sync.Mutex
	active   map[TraceID]*activeTrace
	order    []TraceID // active traces, oldest first
	bindings map[bindKey]SpanContext
	retained []*TraceData

	exportErr atomic.Value // error

	cStarted      *obs.Counter
	cRetained     *obs.Counter
	cSampledOut   *obs.Counter
	cSpansDropped *obs.Counter
	cExportErrors *obs.Counter
}

// NewTracer builds a tracer.
func NewTracer(o Options) *Tracer {
	t := &Tracer{
		sampleRate:  o.SampleRate,
		maxActive:   o.MaxActive,
		maxSpans:    o.MaxSpans,
		maxRetained: o.MaxRetained,
		exporter:    o.Exporter,
		active:      make(map[TraceID]*activeTrace),
		bindings:    make(map[bindKey]SpanContext),
	}
	if t.sampleRate == 0 {
		t.sampleRate = DefaultSampleRate
	}
	if t.maxActive <= 0 {
		t.maxActive = DefaultMaxActive
	}
	if t.maxSpans <= 0 {
		t.maxSpans = DefaultMaxSpans
	}
	if t.maxRetained <= 0 {
		t.maxRetained = DefaultMaxRetained
	}
	seed := uint64(o.Seed)
	if seed == 0 {
		seed = 1
	}
	t.idState.Store(seed * 0x2545F4914F6CDD1D)
	t.rngState.Store(seed ^ 0x9E3779B97F4A7C15)
	reg := o.Obs
	t.cStarted = reg.Counter(obs.CounterTracesStarted)
	t.cRetained = reg.Counter(obs.CounterTracesRetained)
	t.cSampledOut = reg.Counter(obs.CounterTracesSampledOut)
	t.cSpansDropped = reg.Counter(obs.CounterTraceSpansDropped)
	t.cExportErrors = reg.Counter(obs.CounterTraceExportErrors)
	return t
}

// next64 draws the next splitmix64 output from a seeded atomic stream.
func next64(state *atomic.Uint64) uint64 {
	x := state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// newSpanID never returns the invalid zero ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for {
		v := next64(&t.idState)
		if v == 0 {
			continue
		}
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * (7 - i)))
		}
		return id
	}
}

// StartTrace opens a fresh trace and returns its ID (zero when t is nil).
func (t *Tracer) StartTrace() TraceID {
	if t == nil {
		return TraceID{}
	}
	var id TraceID
	hi, lo := next64(&t.idState), next64(&t.idState)
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * (7 - i)))
		id[8+i] = byte(lo >> (8 * (7 - i)))
	}
	if id.IsZero() {
		id[15] = 1
	}
	t.adopt(id)
	return id
}

// AdoptTrace opens a trace under a remote caller's ID (e.g. parsed from
// an inbound traceparent header), so local spans join the caller's
// trace. A zero ID or nil tracer no-ops.
func (t *Tracer) AdoptTrace(id TraceID) {
	if t == nil || id.IsZero() {
		return
	}
	t.adopt(id)
}

func (t *Tracer) adopt(id TraceID) {
	t.mu.Lock()
	if _, ok := t.active[id]; !ok {
		t.active[id] = &activeTrace{}
		t.order = append(t.order, id)
		for len(t.order) > t.maxActive {
			oldest := t.order[0]
			t.order = t.order[1:]
			if at, ok := t.active[oldest]; ok {
				t.cSpansDropped.Add(int64(len(at.spans) + at.dropped))
				delete(t.active, oldest)
			}
		}
	}
	t.mu.Unlock()
	t.cStarted.Inc()
}

// Span is an open span. Starting is lock-free (ID generation plus a
// clock read); the span is published to its trace's buffer at End. A
// nil *Span (tracing disabled, invalid parent) no-ops on every method.
type Span struct {
	t    *Tracer
	data SpanData
}

// StartRoot opens a root span (no parent) in the given trace.
func (t *Tracer) StartRoot(trace TraceID, name string) *Span {
	return t.startRootAt(trace, name, time.Time{})
}

// StartSpan opens a child span under parent; an invalid parent or nil
// tracer returns nil.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	return t.StartSpanAt(parent, name, time.Time{})
}

// StartSpanAt is StartSpan with an explicit start time, so pipeline
// stages can reuse clock reads they already make for their latency
// histograms instead of paying extra time.Now() calls.
func (t *Tracer) StartSpanAt(parent SpanContext, name string, at time.Time) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	return &Span{t: t, data: SpanData{
		Trace:  parent.Trace,
		Span:   t.newSpanID(),
		Parent: parent.Span,
		Name:   name,
		Start:  at,
	}}
}

func (t *Tracer) startRootAt(trace TraceID, name string, at time.Time) *Span {
	if t == nil || trace.IsZero() {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	return &Span{t: t, data: SpanData{
		Trace: trace,
		Span:  t.newSpanID(),
		Name:  name,
		Start: at,
	}}
}

// Context returns the span's context for parenting children (zero when
// s is nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.data.Trace, Span: s.data.Span}
}

// SetAttr sets a string attribute, replacing an earlier value for the
// same key.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	for i := range s.data.Attrs {
		if s.data.Attrs[i].Key == key {
			s.data.Attrs[i].Val = val
			return
		}
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Val: val})
}

// SetIntAttr sets an integer attribute.
func (s *Span) SetIntAttr(key string, val int) {
	s.SetAttr(key, strconv.Itoa(val))
}

// SetError marks the span's status as error with the given message.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.data.Err = msg
}

// MarkAlert records that a safety alert of the given kind was raised in
// this span: the span gets error status plus an "alert" attribute, and
// the enclosing trace is pinned for retention regardless of the
// sampling rate.
func (s *Span) MarkAlert(kind, msg string) {
	if s == nil {
		return
	}
	s.data.Alert = true
	s.data.Err = msg
	s.SetAttr("alert", kind)
}

// End closes the span now and publishes it to its trace.
func (s *Span) End() { s.EndAt(time.Time{}) }

// EndAt closes the span at an explicit time (see StartSpanAt).
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	if at.IsZero() {
		at = time.Now()
	}
	s.data.End = at
	s.t.append(&s.data)
}

// append publishes a finished span into its trace's bounded ring.
func (t *Tracer) append(sd *SpanData) {
	t.mu.Lock()
	at, ok := t.active[sd.Trace]
	if !ok {
		t.mu.Unlock()
		t.cSpansDropped.Inc() // trace already finished or evicted
		return
	}
	if sd.Alert {
		at.alert = true
	}
	if len(at.spans) < t.maxSpans {
		at.spans = append(at.spans, *sd)
	} else {
		at.spans[at.next] = *sd
		at.next = (at.next + 1) % t.maxSpans
		at.dropped++
	}
	t.mu.Unlock()
}

// MarkAlert pins a whole trace for retention without going through a
// span — for alert paths that have no span in hand.
func (t *Tracer) MarkAlert(id TraceID) {
	if t == nil || id.IsZero() {
		return
	}
	t.mu.Lock()
	if at, ok := t.active[id]; ok {
		at.alert = true
	}
	t.mu.Unlock()
}

// Bind registers the root span context for a command in flight, keyed
// by (device, seq). The engine's pipeline stages look it up with Bound.
func (t *Tracer) Bind(device string, seq int, ctx SpanContext) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	t.bindings[bindKey{device, seq}] = ctx
	t.mu.Unlock()
}

// Unbind removes a command's binding.
func (t *Tracer) Unbind(device string, seq int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.bindings, bindKey{device, seq})
	t.mu.Unlock()
}

// Bound returns the span context bound for a command (zero when none).
func (t *Tracer) Bound(device string, seq int) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	ctx := t.bindings[bindKey{device, seq}]
	t.mu.Unlock()
	return ctx
}

// FinishTrace closes a trace and makes the tail-sampling decision:
// alert traces are always retained; the rest pass a seeded coin flip at
// the sampling rate. Retained traces join the in-memory ring (served by
// /traces) and are handed to the exporter. Reports whether the trace
// was retained.
func (t *Tracer) FinishTrace(id TraceID) bool {
	if t == nil || id.IsZero() {
		return false
	}
	t.mu.Lock()
	at, ok := t.active[id]
	if !ok {
		t.mu.Unlock()
		return false
	}
	delete(t.active, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	retain := at.alert || t.sample()
	if !retain {
		t.mu.Unlock()
		t.cSampledOut.Inc()
		return false
	}
	spans := at.spans
	if at.dropped > 0 {
		// Unwrap the ring into chronological insertion order.
		spans = append(append([]SpanData(nil), at.spans[at.next:]...), at.spans[:at.next]...)
	}
	td := &TraceData{ID: id, Alert: at.alert, Dropped: at.dropped, Spans: spans}
	sort.SliceStable(td.Spans, func(i, j int) bool { return td.Spans[i].Start.Before(td.Spans[j].Start) })
	t.retained = append(t.retained, td)
	for len(t.retained) > t.maxRetained {
		t.retained = t.retained[1:]
	}
	t.mu.Unlock()
	t.cRetained.Inc()
	t.cSpansDropped.Add(int64(at.dropped))
	if t.exporter != nil {
		if err := t.exporter.ExportTrace(td); err != nil {
			t.exportErr.Store(err)
			t.cExportErrors.Inc()
		}
	}
	return true
}

// sample draws the tail-sampling coin flip (callers hold t.mu or accept
// the raciness of an independent RNG stream; the stream is atomic).
func (t *Tracer) sample() bool {
	if t.sampleRate <= 0 {
		return false
	}
	if t.sampleRate >= 1 {
		return true
	}
	return float64(next64(&t.rngState)>>11)/(1<<53) < t.sampleRate
}

// Retained returns the retained traces, oldest first. TraceData values
// are immutable once finished; the slice is a copy.
func (t *Tracer) Retained() []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*TraceData(nil), t.retained...)
}

// Find returns the retained trace with the given ID, or nil.
func (t *Tracer) Find(id TraceID) *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, td := range t.retained {
		if td.ID == id {
			return td
		}
	}
	return nil
}

// ActiveCount reports how many traces are currently open.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// ExportErr returns the most recent exporter error (nil when exports
// are healthy or absent) — the /healthz exporter component reads it.
func (t *Tracer) ExportErr() error {
	if t == nil {
		return nil
	}
	if err, ok := t.exportErr.Load().(error); ok {
		return err
	}
	return nil
}
