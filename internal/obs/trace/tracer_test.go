package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

type httpResp struct {
	status int
	header http.Header
	body   string
}

func httpGet(t *testing.T, url string) httpResp {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return httpResp{status: resp.StatusCode, header: resp.Header, body: string(b)}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTracer(Options{Seed: 7})
	id := tr.StartTrace()
	root := tr.StartRoot(id, "intercept")
	ctx := root.Context()

	hdr := ctx.TraceParent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q not version-00/sampled", hdr)
	}
	if len(hdr) != 2+1+32+1+16+1+2 {
		t.Fatalf("traceparent %q has wrong length %d", hdr, len(hdr))
	}
	back, err := ParseTraceParent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if back != ctx {
		t.Fatalf("round trip %+v != %+v", back, ctx)
	}
	// Forward compatibility: a future version with trailing fields parses.
	if _, err := ParseTraceParent("01-" + id.String() + "-" + ctx.Span.String() + "-01-extra"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"ff-" + id.String() + "-" + ctx.Span.String() + "-01", // invalid version
		"00-" + strings.Repeat("0", 32) + "-" + ctx.Span.String() + "-01", // zero trace
		"00-" + id.String() + "-" + strings.Repeat("0", 16) + "-01",       // zero span
		"00-" + id.String() + "-" + ctx.Span.String(),                     // missing flags
		"00-" + strings.Repeat("g", 32) + "-" + ctx.Span.String() + "-01", // non-hex
	} {
		if _, err := ParseTraceParent(bad); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
	if (SpanContext{}).TraceParent() != "" {
		t.Error("invalid context renders a traceparent")
	}
}

func TestTailSamplingAlertPinned(t *testing.T) {
	reg := obs.NewRegistry("tail-test")
	tr := NewTracer(Options{SampleRate: -1, Seed: 3, Obs: reg}) // alert-only retention
	quiet := tr.StartTrace()
	s := tr.StartRoot(quiet, "intercept")
	s.End()
	if tr.FinishTrace(quiet) {
		t.Fatal("non-alert trace retained at rate -1")
	}
	loud := tr.StartTrace()
	s = tr.StartRoot(loud, "intercept")
	child := tr.StartSpan(s.Context(), "before.validate")
	child.MarkAlert("invalid_command", "value out of range")
	child.End()
	s.End()
	if !tr.FinishTrace(loud) {
		t.Fatal("alert trace dropped")
	}
	td := tr.Find(loud)
	if td == nil || !td.Alert {
		t.Fatalf("retained alert trace not findable/flagged: %+v", td)
	}
	if tr.Find(quiet) != nil {
		t.Fatal("sampled-out trace still findable")
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.CounterTracesStarted); got != 2 {
		t.Errorf("traces started = %d, want 2", got)
	}
	if got := snap.Counter(obs.CounterTracesRetained); got != 1 {
		t.Errorf("traces retained = %d, want 1", got)
	}
	if got := snap.Counter(obs.CounterTracesSampledOut); got != 1 {
		t.Errorf("traces sampled out = %d, want 1", got)
	}
}

func TestTailSamplingDeterministic(t *testing.T) {
	count := func() int {
		tr := NewTracer(Options{SampleRate: 0.5, Seed: 11})
		kept := 0
		for i := 0; i < 200; i++ {
			id := tr.StartTrace()
			s := tr.StartRoot(id, "intercept")
			s.End()
			if tr.FinishTrace(id) {
				kept++
			}
		}
		return kept
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed, different retention: %d vs %d", a, b)
	}
	if a < 60 || a > 140 {
		t.Fatalf("rate-0.5 retention of 200 traces = %d, implausible", a)
	}
}

func TestSpanRingBound(t *testing.T) {
	reg := obs.NewRegistry("ring-test")
	tr := NewTracer(Options{SampleRate: 1, MaxSpans: 8, Seed: 5, Obs: reg})
	id := tr.StartTrace()
	root := tr.StartRoot(id, "intercept")
	for i := 0; i < 20; i++ {
		c := tr.StartSpan(root.Context(), fmt.Sprintf("span%02d", i))
		c.End()
	}
	root.End()
	if !tr.FinishTrace(id) {
		t.Fatal("trace dropped at rate 1")
	}
	td := tr.Find(id)
	if len(td.Spans) != 8 {
		t.Fatalf("%d spans survive a MaxSpans=8 ring, want 8", len(td.Spans))
	}
	if td.Dropped != 13 { // root + 20 children - 8 kept
		t.Fatalf("dropped = %d, want 13", td.Dropped)
	}
	// The ring keeps the latest window — the spans nearest the trace's
	// end, which is where the alert evidence lives.
	last := td.Spans[len(td.Spans)-1]
	if last.Name != "intercept" && last.Name != "span19" {
		t.Fatalf("latest span %q is not from the tail of the run", last.Name)
	}
	if got := reg.Snapshot().Counter(obs.CounterTraceSpansDropped); got != 13 {
		t.Errorf("spans dropped counter = %d, want 13", got)
	}
	// A span ending after its trace finished is dropped, not resurrected.
	orphan := tr.StartSpan(SpanContext{Trace: id, Span: root.data.Span}, "late")
	orphan.End()
	if got := reg.Snapshot().Counter(obs.CounterTraceSpansDropped); got != 14 {
		t.Errorf("late span not counted dropped: %d", got)
	}
}

func TestRetainedRingAndActiveBound(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1, MaxRetained: 3, MaxActive: 4, Seed: 9})
	var ids []TraceID
	for i := 0; i < 6; i++ {
		id := tr.StartTrace()
		s := tr.StartRoot(id, "intercept")
		s.End()
		tr.FinishTrace(id)
		ids = append(ids, id)
	}
	if got := len(tr.Retained()); got != 3 {
		t.Fatalf("retained ring holds %d, want 3", got)
	}
	if tr.Find(ids[0]) != nil || tr.Find(ids[5]) == nil {
		t.Fatal("retained ring did not evict oldest-first")
	}
	// Active bound: open traces past MaxActive evict the oldest.
	var open []TraceID
	for i := 0; i < 6; i++ {
		open = append(open, tr.StartTrace())
	}
	if got := tr.ActiveCount(); got != 4 {
		t.Fatalf("active count %d, want MaxActive=4", got)
	}
	if tr.FinishTrace(open[0]) {
		t.Fatal("evicted trace still finishable")
	}
}

func TestBindings(t *testing.T) {
	tr := NewTracer(Options{Seed: 2})
	id := tr.StartTrace()
	root := tr.StartRoot(id, "intercept")
	tr.Bind("hp01", 7, root.Context())
	if got := tr.Bound("hp01", 7); got != root.Context() {
		t.Fatalf("Bound = %+v, want the bound context", got)
	}
	if got := tr.Bound("hp01", 8); got.Valid() {
		t.Fatalf("unbound (device,seq) resolves: %+v", got)
	}
	tr.Unbind("hp01", 7)
	if tr.Bound("hp01", 7).Valid() {
		t.Fatal("binding survives Unbind")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if !tr.StartTrace().IsZero() {
		t.Fatal("nil tracer starts traces")
	}
	s := tr.StartSpanAt(SpanContext{}, "x", time.Time{})
	s.SetAttr("k", "v")
	s.SetIntAttr("n", 1)
	s.SetError("boom")
	s.MarkAlert("kind", "msg")
	s.End() // all no-ops
	tr.Bind("d", 1, SpanContext{})
	tr.Unbind("d", 1)
	tr.MarkAlert(TraceID{})
	if tr.FinishTrace(TraceID{}) || tr.Retained() != nil || tr.ExportErr() != nil {
		t.Fatal("nil tracer is not inert")
	}
	real := NewTracer(Options{Seed: 1})
	if real.StartSpan(SpanContext{}, "x") != nil {
		t.Fatal("invalid parent yields a live span")
	}
}

func TestOTLPRoundTrip(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1, Seed: 13})
	id := tr.StartTrace()
	root := tr.StartRoot(id, "intercept")
	root.SetAttr("device", "viperx")
	child := tr.StartSpan(root.Context(), "before.trajectory")
	child.MarkAlert("invalid_trajectory", "sweep hit centrifuge")
	child.End()
	ok := tr.StartSpan(root.Context(), "execute")
	ok.SetError("device timeout")
	ok.End()
	root.End()
	tr.FinishTrace(id)
	td := tr.Find(id)

	data, err := MarshalOTLP(td)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOTLP(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("%d traces decoded, want 1", len(back))
	}
	got := back[0]
	if got.ID != td.ID || got.Alert != td.Alert || len(got.Spans) != len(td.Spans) {
		t.Fatalf("header mismatch: %+v vs %+v", got, td)
	}
	for i := range td.Spans {
		w, g := td.Spans[i], got.Spans[i]
		if w.Span != g.Span || w.Parent != g.Parent || w.Name != g.Name ||
			w.Err != g.Err || w.Alert != g.Alert {
			t.Fatalf("span %d mismatch:\nwant %+v\ngot  %+v", i, w, g)
		}
		if w.Start.UnixNano() != g.Start.UnixNano() || w.End.UnixNano() != g.End.UnixNano() {
			t.Fatalf("span %d timestamps drifted", i)
		}
		if !reflect.DeepEqual(w.Attrs, g.Attrs) {
			t.Fatalf("span %d attrs %v != %v", i, g.Attrs, w.Attrs)
		}
	}
}

// failAfterWriter fails every write past a byte budget; Sync and Close
// record that they ran.
type failAfterWriter struct {
	budget   int
	synced   bool
	closed   bool
	failSync bool
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.budget {
		n := f.budget
		f.budget = 0
		return n, errors.New("disk full") // short write
	}
	f.budget -= len(p)
	return len(p), nil
}

func (f *failAfterWriter) Sync() error {
	f.synced = true
	if f.failSync {
		return errors.New("sync failed")
	}
	return nil
}

func (f *failAfterWriter) Close() error {
	f.closed = true
	return nil
}

func makeTrace(t *testing.T) *TraceData {
	t.Helper()
	tr := NewTracer(Options{SampleRate: 1, Seed: 21})
	id := tr.StartTrace()
	s := tr.StartRoot(id, "intercept")
	s.End()
	tr.FinishTrace(id)
	return tr.Find(id)
}

func TestFileExporterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ex := NewFileExporter(&buf)
	td := makeTrace(t)
	if err := ex.ExportTrace(td); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOTLP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != td.ID {
		t.Fatalf("read back %d traces", len(back))
	}
	if err := ex.ExportTrace(td); err == nil {
		t.Fatal("export after Close succeeded")
	}
}

func TestFileExporterShortWrite(t *testing.T) {
	w := &failAfterWriter{budget: 10}
	ex := NewFileExporter(w)
	if err := ex.ExportTrace(makeTrace(t)); err != nil {
		// The bufio layer may defer the failure to Flush/Close; either
		// surface is acceptable as long as it latches.
		t.Logf("export surfaced the short write immediately: %v", err)
	}
	err := ex.Close()
	if err == nil {
		t.Fatal("short write never surfaced")
	}
	if !w.closed {
		t.Fatal("underlying writer not closed after flush failure")
	}
	if w.synced {
		t.Fatal("synced a writer whose flush failed")
	}
	if got := ex.Close(); !errors.Is(got, err) {
		t.Fatalf("second Close = %v, want the latched %v", got, err)
	}
	if ex.Err() == nil {
		t.Fatal("Err() lost the latched error")
	}
}

func TestFileExporterSyncErrorPropagates(t *testing.T) {
	w := &failAfterWriter{budget: 1 << 20, failSync: true}
	ex := NewFileExporter(w)
	if err := ex.ExportTrace(makeTrace(t)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err == nil || !strings.Contains(err.Error(), "sync failed") {
		t.Fatalf("Close = %v, want the sync error", err)
	}
	if !w.closed {
		t.Fatal("underlying writer not closed after sync failure")
	}
}

func TestTracesEndpoint(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1, Seed: 17})
	Register(tr)
	defer Unregister(tr)
	id := tr.StartTrace()
	s := tr.StartRoot(id, "intercept")
	s.End()
	tr.FinishTrace(id)
	other := tr.StartTrace()
	s = tr.StartRoot(other, "intercept")
	s.End()
	tr.FinishTrace(other)

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	resp := httpGet(t, srv.URL+"/traces")
	if ct := resp.header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("/traces content-type %q", ct)
	}
	if !strings.Contains(resp.body, id.String()) || !strings.Contains(resp.body, other.String()) {
		t.Error("/traces missing retained traces")
	}
	// Each line round-trips through the OTLP reader.
	tds, err := ReadOTLP(strings.NewReader(resp.body))
	if err != nil {
		t.Fatalf("/traces output not OTLP-JSON lines: %v", err)
	}
	if len(tds) < 2 {
		t.Fatalf("/traces returned %d traces", len(tds))
	}

	filtered := httpGet(t, srv.URL+"/traces?id="+id.String())
	if !strings.Contains(filtered.body, id.String()) || strings.Contains(filtered.body, other.String()) {
		t.Error("?id filter not applied")
	}

	sum := httpGet(t, srv.URL+"/traces/summary")
	if ct := sum.header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/traces/summary content-type %q", ct)
	}
	if !strings.Contains(sum.body, id.String()) {
		t.Error("/traces/summary missing trace")
	}
}
