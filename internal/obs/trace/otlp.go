package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// OTLP-JSON wire shapes (the subset RABIT emits): one
// ExportTraceServiceRequest per retained trace, one JSON line per
// request. Timestamps are decimal strings of Unix nanos, per the OTLP
// JSON mapping of uint64 fields.

type otlpRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string      `json:"traceId"`
	SpanID       string      `json:"spanId"`
	ParentSpanID string      `json:"parentSpanId,omitempty"`
	Name         string      `json:"name"`
	Kind         int         `json:"kind"`
	Start        string      `json:"startTimeUnixNano"`
	End          string      `json:"endTimeUnixNano"`
	Attributes   []otlpAttr  `json:"attributes,omitempty"`
	Status       *otlpStatus `json:"status,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue"`
}

type otlpStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

const (
	otlpKindInternal  = 1
	otlpStatusError   = 2
	otlpScopeName     = "repro/internal/obs/trace"
	otlpServiceName   = "rabit"
	otlpAlertAttrName = "alert"
)

// MarshalOTLP renders one trace as an OTLP-JSON
// ExportTraceServiceRequest document.
func MarshalOTLP(td *TraceData) ([]byte, error) {
	spans := make([]otlpSpan, 0, len(td.Spans))
	for _, sd := range td.Spans {
		sp := otlpSpan{
			TraceID:      sd.Trace.String(),
			SpanID:       sd.Span.String(),
			ParentSpanID: sd.Parent.String(),
			Name:         sd.Name,
			Kind:         otlpKindInternal,
			Start:        strconv.FormatInt(sd.Start.UnixNano(), 10),
			End:          strconv.FormatInt(sd.End.UnixNano(), 10),
		}
		for _, a := range sd.Attrs {
			sp.Attributes = append(sp.Attributes, otlpAttr{Key: a.Key, Value: otlpValue{StringValue: a.Val}})
		}
		if sd.Err != "" {
			sp.Status = &otlpStatus{Code: otlpStatusError, Message: sd.Err}
		}
		spans = append(spans, sp)
	}
	req := otlpRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{
			{Key: "service.name", Value: otlpValue{StringValue: otlpServiceName}},
		}},
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: otlpScopeName}, Spans: spans}},
	}}}
	return json.Marshal(req)
}

// UnmarshalOTLP parses one OTLP-JSON document back into traces (a
// document may carry several trace IDs; RABIT's own exporter writes one
// per line). The Alert flag is recovered from the "alert" attribute.
func UnmarshalOTLP(data []byte) ([]*TraceData, error) {
	var req otlpRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("trace: otlp: %w", err)
	}
	byID := map[TraceID]*TraceData{}
	var order []TraceID
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, osp := range ss.Spans {
				tid, err := ParseTraceID(osp.TraceID)
				if err != nil {
					return nil, err
				}
				sid, err := ParseSpanID(osp.SpanID)
				if err != nil {
					return nil, err
				}
				sd := SpanData{Trace: tid, Span: sid, Name: osp.Name}
				if osp.ParentSpanID != "" {
					if sd.Parent, err = ParseSpanID(osp.ParentSpanID); err != nil {
						return nil, err
					}
				}
				if ns, err := strconv.ParseInt(osp.Start, 10, 64); err == nil {
					sd.Start = time.Unix(0, ns)
				}
				if ns, err := strconv.ParseInt(osp.End, 10, 64); err == nil {
					sd.End = time.Unix(0, ns)
				}
				for _, a := range osp.Attributes {
					sd.Attrs = append(sd.Attrs, Attr{Key: a.Key, Val: a.Value.StringValue})
					if a.Key == otlpAlertAttrName {
						sd.Alert = true
					}
				}
				if osp.Status != nil && osp.Status.Code == otlpStatusError {
					sd.Err = osp.Status.Message
					if sd.Err == "" {
						sd.Err = "error"
					}
				}
				td, ok := byID[tid]
				if !ok {
					td = &TraceData{ID: tid}
					byID[tid] = td
					order = append(order, tid)
				}
				if sd.Alert {
					td.Alert = true
				}
				td.Spans = append(td.Spans, sd)
			}
		}
	}
	out := make([]*TraceData, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out, nil
}

// FileExporter writes retained traces as OTLP-JSON lines. Close is
// idempotent and propagates the underlying writer's Sync/Close errors;
// the first error ever hit is latched and reported by Err (the /healthz
// exporter component surfaces it).
type FileExporter struct {
	mu     sync.Mutex
	w      io.Writer
	bw     *bufio.Writer
	err    error
	closed bool
}

// NewFileExporter wraps a writer (typically an *os.File).
func NewFileExporter(w io.Writer) *FileExporter {
	return &FileExporter{w: w, bw: bufio.NewWriter(w)}
}

// ExportTrace writes one trace as one OTLP-JSON line.
func (e *FileExporter) ExportTrace(td *TraceData) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.latch(fmt.Errorf("trace: exporter is closed"))
	}
	data, err := MarshalOTLP(td)
	if err != nil {
		return e.latch(err)
	}
	if _, err := e.bw.Write(data); err != nil {
		return e.latch(err)
	}
	if err := e.bw.WriteByte('\n'); err != nil {
		return e.latch(err)
	}
	return e.err
}

func (e *FileExporter) latch(err error) error {
	if e.err == nil {
		e.err = err
	}
	return err
}

// Flush drains the buffer to the underlying writer.
func (e *FileExporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.err
	}
	if err := e.bw.Flush(); err != nil {
		return e.latch(err)
	}
	return e.err
}

// Err returns the latched first error (nil when healthy).
func (e *FileExporter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close flushes, syncs, and closes the underlying writer when it
// supports those operations. Idempotent: later calls return the same
// result as the first.
func (e *FileExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.err
	}
	e.closed = true
	flushErr := e.bw.Flush()
	if flushErr != nil {
		e.latch(flushErr)
	}
	if s, ok := e.w.(interface{ Sync() error }); ok && flushErr == nil {
		if err := s.Sync(); err != nil {
			e.latch(err)
		}
	}
	// Close the writer even after a flush failure — an error must not
	// leak the descriptor.
	if c, ok := e.w.(io.Closer); ok {
		if err := c.Close(); err != nil {
			e.latch(err)
		}
	}
	return e.err
}

// ReadOTLP loads every trace from a stream of OTLP-JSON lines.
func ReadOTLP(r io.Reader) ([]*TraceData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*TraceData
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		tds, err := UnmarshalOTLP(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, tds...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// ReadFile loads every trace from an OTLP-JSON file.
func ReadFile(path string) ([]*TraceData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadOTLP(f)
}
