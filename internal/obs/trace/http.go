package trace

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// The process-wide tracer group, mirroring obs's scrape group:
// rabit.System registers its tracer here so the /traces endpoint sees
// every system's retained traces without extra plumbing.
var (
	tracerMu    sync.Mutex
	tracerGroup []*Tracer
)

// Register adds a tracer to the process-wide group. Nil-safe.
func Register(t *Tracer) {
	if t == nil {
		return
	}
	tracerMu.Lock()
	defer tracerMu.Unlock()
	tracerGroup = append(tracerGroup, t)
}

// Unregister removes a tracer from the group. Nil-safe.
func Unregister(t *Tracer) {
	if t == nil {
		return
	}
	tracerMu.Lock()
	defer tracerMu.Unlock()
	for i, g := range tracerGroup {
		if g == t {
			tracerGroup = append(tracerGroup[:i], tracerGroup[i+1:]...)
			return
		}
	}
}

// RetainedAll returns every registered tracer's retained traces.
func RetainedAll() []*TraceData {
	tracerMu.Lock()
	tracers := make([]*Tracer, len(tracerGroup))
	copy(tracers, tracerGroup)
	tracerMu.Unlock()
	var out []*TraceData
	for _, t := range tracers {
		out = append(out, t.Retained()...)
	}
	return out
}

// tracesHandler serves the retained traces as OTLP-JSON lines — the
// same format the file exporter writes, so `curl /traces` output feeds
// straight into `rabiteval -trace`.
func tracesHandler(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	for _, td := range RetainedAll() {
		if id != "" && td.ID.String() != id {
			continue
		}
		data, err := MarshalOTLP(td)
		if err != nil {
			continue // a single unmarshalable trace must not kill the page
		}
		w.Write(data)
		w.Write([]byte("\n"))
	}
}

// tracesSummaryHandler serves a JSON index of retained traces.
func tracesSummaryHandler(w http.ResponseWriter, _ *http.Request) {
	type summary struct {
		ID     string `json:"id"`
		Alert  bool   `json:"alert"`
		Spans  int    `json:"spans"`
		DurNS  int64  `json:"dur_ns"`
		RootNS int64  `json:"start_unix_ns"`
	}
	var out []summary
	for _, td := range RetainedAll() {
		s := summary{ID: td.ID.String(), Alert: td.Alert, Spans: len(td.Spans)}
		if len(td.Spans) > 0 {
			first, last := td.Spans[0].Start, td.Spans[0].End
			for _, sp := range td.Spans {
				if sp.End.After(last) {
					last = sp.End
				}
			}
			s.RootNS = first.UnixNano()
			s.DurNS = last.Sub(first).Nanoseconds()
		}
		out = append(out, s)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func init() {
	obs.RegisterHTTPHandler("/traces", http.HandlerFunc(tracesHandler))
	obs.RegisterHTTPHandler("/traces/summary", http.HandlerFunc(tracesSummaryHandler))
}
