// Package obs is RABIT's zero-dependency telemetry subsystem: spans,
// counters, gauges, and latency histograms for the interception pipeline,
// plus sinks that expose them — an in-process snapshot API, a JSONL
// structured-event stream for offline analysis, and an expvar-backed HTTP
// endpoint with a /metrics text view and pprof.
//
// The paper's Section II-C evaluation measures RABIT's checking overhead
// as a single aggregate; obs decomposes it. Every stage of a check —
// precondition validation, the Extended-Simulator collision sweep, the
// post-state fetch and comparison — runs inside a Span, and spans feed
// fixed-bucket histograms whose quantiles (p50/p95/p99/max) reconstruct
// the latency table per stage. Counters track commands, alerts by kind,
// violations by rule, and outcomes by device.
//
// Everything on the hot path is lock-free: counters and gauges are single
// atomics, histograms are arrays of atomics, and spans are plain values
// (two time.Now calls and one histogram observation). Instrumentation
// stays well under 1% of a check's cost — BenchmarkObsOverhead in
// internal/core proves it. All types tolerate nil receivers, so a
// component built without a registry pays only a predictable branch.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count, updated atomically.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (between evaluation runs). Nil-safe.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a point-in-time value, updated atomically.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Span is one timed region in flight. Spans are plain values — starting
// one costs a clock read, ending one costs a clock read plus a histogram
// observation — and nest freely (each stage simply starts its own).
type Span struct {
	h     *Histogram
	start time.Time
}

// End closes the span, records its duration into the backing histogram,
// and returns the duration. Safe on a zero Span (returns 0).
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d)
	return d
}

// EndAt closes the span at an externally measured end time — for stages
// whose boundary timestamp is shared with the next stage, saving a clock
// read.
func (s Span) EndAt(end time.Time) time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := end.Sub(s.start)
	s.h.Observe(d)
	return d
}

// Registry is one component's telemetry namespace: named counters,
// gauges, and histograms, plus an optional event sink. The zero value is
// not usable; call NewRegistry. A nil *Registry is a valid "telemetry
// off" registry: every method no-ops or returns nil instruments, which
// themselves no-op.
type Registry struct {
	name string

	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	fams   map[string]*Family

	sink atomic.Pointer[sinkBox]
}

// sinkBox wraps an EventSink so a nil sink can be stored atomically.
type sinkBox struct{ s EventSink }

// NewRegistry builds an empty registry. The name labels the registry in
// multi-registry sinks (each rabit.System owns one).
func NewRegistry(name string) *Registry {
	return &Registry{
		name:   name,
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		fams:   make(map[string]*Family),
	}
}

// Name returns the registry's label. Nil-safe ("").
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should resolve once and cache the pointer. Nil-safe (nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// StartSpan opens a span feeding the named histogram. Equivalent to
// r.Histogram(name).Start() but nil-safe end to end.
func (r *Registry) StartSpan(name string) Span {
	return r.Histogram(name).Start()
}

// Start opens a span on this histogram. Nil-safe: the span still times,
// but End discards the observation.
func (h *Histogram) Start() Span {
	return Span{h: h, start: time.Now()}
}

// SetSink installs (or, with nil, removes) the structured-event sink.
// Nil-safe.
func (r *Registry) SetSink(s EventSink) {
	if r == nil {
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// Emit sends a structured event to the sink, if one is installed. The
// no-sink fast path is one atomic load. Nil-safe.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	box := r.sink.Load()
	if box == nil || box.s == nil {
		return
	}
	if ev.Registry == "" {
		ev.Registry = r.name
	}
	box.s.Emit(ev)
}

// Reset zeroes every counter and histogram and leaves gauges and the
// instrument set intact (cached pointers stay valid) — the engine calls
// this on Start so each experiment run measures from zero. Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counts {
		c.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	for _, f := range r.fams {
		f.Reset()
	}
}

// ResetPrefix zeroes every counter whose name starts with prefix —
// instrument families keyed by a dynamic component (alerts.*,
// violations.*) that a fresh run must not inherit from the previous one.
// Nil-safe.
func (r *Registry) ResetPrefix(prefix string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		if strings.HasPrefix(name, prefix) {
			c.Reset()
		}
	}
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a consistent-enough point-in-time copy of a registry: the
// in-process introspection API behind /debug/vars and /metrics.
type Snapshot struct {
	Name       string              `json:"name"`
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Families   []FamilySnapshot    `json:"families,omitempty"`
}

// Counter finds a counter value in the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge finds a gauge value in the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram finds a histogram summary in the snapshot.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Snapshot captures all instruments, sorted by name. Nil-safe (zero
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{Name: r.name}
	for name, c := range r.counts {
		out.Counters = append(out.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		out.Histograms = append(out.Histograms, h.snapshot(name))
	}
	for _, f := range r.fams {
		out.Families = append(out.Families, f.snapshot())
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	return out
}
