package recorder

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
)

// ManifestSchema versions the bundle layout.
const ManifestSchema = 1

// Manifest is an incident bundle's index: what fired, when, and the
// causal chain through the bundled records.
type Manifest struct {
	Schema int    `json:"schema"`
	Bundle string `json:"bundle"`
	Tag    string `json:"tag,omitempty"`
	// Corr is the triggering record's correlation ID.
	Corr string `json:"corr"`
	// Chain is the resolved causal chain, trigger first: the trigger,
	// then the speculation whose cached verdict it consumed (if any),
	// then the command that issued that speculation (if any). Every entry
	// resolves to a record in records.jsonl.
	Chain     []string `json:"chain"`
	AlertKind string   `json:"alert_kind"`
	Alert     string   `json:"alert,omitempty"`
	// RuleIDs are the violated rule IDs, falling back to the rules the
	// trigger evaluated when the alert carries no violations (trajectory
	// and malfunction alerts).
	RuleIDs []string `json:"rule_ids,omitempty"`
	Device  string   `json:"device,omitempty"`
	Seq     int      `json:"seq,omitempty"`
	// TraceID is the trigger's causal trace (32 hex chars); `rabiteval
	// -trace` renders the matching retained trace tree. Empty when
	// tracing was off.
	TraceID string `json:"trace_id,omitempty"`
	// TNS is the lab clock at the alert — detection-latency aggregation
	// reads it.
	TNS int64 `json:"t_ns"`
	// Records is the number of records in records.jsonl.
	Records int `json:"records"`
	// Build identifies the binary that wrote the bundle (module version,
	// VCS revision, dirty bit) — forensics on an old bundle can pin the
	// exact code that raised the alert. Zero on bundles written before
	// provenance stamping.
	Build obs.BuildInfo `json:"build"`
}

// writeBundle freezes the window around a trigger record into a
// self-contained incident bundle directory: manifest.json + a
// records.jsonl holding the full window. Write errors are retained on
// the recorder (Err) and counted; the pipeline never fails on them.
func (r *Recorder) writeBundle(trigger Record) {
	if r.dir == "" {
		return
	}
	window := r.Window()
	man := Manifest{
		Schema:    ManifestSchema,
		Tag:       r.tag,
		Corr:      trigger.Corr,
		Chain:     resolveChain(trigger, window),
		AlertKind: trigger.AlertKind,
		Alert:     trigger.Alert,
		RuleIDs:   trigger.Violations,
		Device:    trigger.Device,
		Seq:       trigger.Seq,
		TraceID:   trigger.Trace,
		TNS:       trigger.AlertTNS,
		Records:   len(window),
		Build:     obs.ReadBuild(),
	}
	if man.TNS == 0 {
		man.TNS = trigger.TNS
	}
	if len(man.RuleIDs) == 0 {
		man.RuleIDs = trigger.Rules
	}
	r.bundleMu.Lock()
	defer r.bundleMu.Unlock()
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		r.fail(fmt.Errorf("recorder: incident dir: %w", err))
		return
	}
	var dir string
	for {
		r.bundleSeq++
		name := fmt.Sprintf("incident-%04d-%s", r.bundleSeq, trigger.AlertKind)
		if r.tag != "" {
			name = sanitizeTag(r.tag) + "-" + name
		}
		dir = filepath.Join(r.dir, name)
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			man.Bundle = name
			break
		}
		if !errors.Is(err, fs.ErrExist) {
			r.fail(fmt.Errorf("recorder: bundle dir: %w", err))
			return
		}
		// Name taken (another run shares the directory): bump and retry.
	}
	if err := writeBundleFiles(dir, man, window); err != nil {
		r.fail(err)
		return
	}
	r.cIncidents.Inc()
}

// FileSnapshot freezes the current window into an incident bundle
// without an alert trigger: a synthetic KindSnapshot record carrying the
// given kind and detail is pushed and bundled exactly like an alert
// record. The campaign harness files one for every unsafe injection the
// engine missed — the window is the forensic evidence of what the
// checker saw while the world broke. Nil-safe; a no-op without a bundle
// directory.
func (r *Recorder) FileSnapshot(alertKind, detail string, tNS int64) {
	if r == nil || r.dir == "" {
		return
	}
	trigger := Record{
		Corr:      corrID("c", r.corr.Add(1)),
		Kind:      KindSnapshot,
		AlertKind: alertKind,
		Alert:     detail,
		TNS:       tNS,
		AlertTNS:  tNS,
	}
	r.push(trigger)
	r.writeBundle(trigger)
}

// resolveChain walks the causal links the window can actually resolve:
// trigger → consumed speculation → the command that hinted it. Links
// whose records fell off the ring are omitted, keeping the invariant
// that every chain entry is present in the bundle.
func resolveChain(trigger Record, window []Record) []string {
	chain := []string{trigger.Corr}
	byCorr := make(map[string]Record, len(window))
	for _, rec := range window {
		byCorr[rec.Corr] = rec
	}
	if sc := trigger.Verdict.SpecCorr; sc != "" {
		spec, ok := byCorr[sc]
		if ok {
			chain = append(chain, sc)
			if p := spec.Parent; p != "" {
				if _, ok := byCorr[p]; ok {
					chain = append(chain, p)
				}
			}
		}
	}
	return chain
}

func writeBundleFiles(dir string, man Manifest, window []Record) error {
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("recorder: manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("recorder: manifest: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "records.jsonl"))
	if err != nil {
		return fmt.Errorf("recorder: records: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, rec := range window {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("recorder: records: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("recorder: records: %w", err)
	}
	return f.Close()
}

// sanitizeTag maps a tag onto the filename-safe alphabet.
func sanitizeTag(tag string) string {
	b := []byte(tag)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Incident is one loaded bundle.
type Incident struct {
	Dir      string
	Manifest Manifest
	Records  []Record
}

// Record finds a bundled record by correlation ID.
func (in *Incident) Record(corr string) (Record, bool) {
	for _, rec := range in.Records {
		if rec.Corr == corr {
			return rec, true
		}
	}
	return Record{}, false
}

// Trigger returns the bundle's triggering record.
func (in *Incident) Trigger() (Record, bool) {
	return in.Record(in.Manifest.Corr)
}

// LoadIncident reads one bundle directory.
func LoadIncident(dir string) (*Incident, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	in := &Incident{Dir: dir}
	if err := json.Unmarshal(mb, &in.Manifest); err != nil {
		return nil, fmt.Errorf("recorder: manifest %s: %w", dir, err)
	}
	f, err := os.Open(filepath.Join(dir, "records.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("recorder: %s records line %d: %w", dir, line, err)
		}
		in.Records = append(in.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("recorder: %s records: %w", dir, err)
	}
	return in, nil
}

// LoadIncidents reads every bundle under root, sorted by bundle name.
// Non-bundle entries are skipped.
func LoadIncidents(root string) ([]*Incident, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	var out []*Incident
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			continue
		}
		in, err := LoadIncident(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Manifest.Bundle < out[j].Manifest.Bundle })
	return out, nil
}
