package recorder

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/action"
)

func cmd(device string, seq int) action.Command {
	return action.Command{Device: device, Action: action.ReadStatus, Seq: seq}
}

func TestCorrIDsAreUniqueAndPrefixed(t *testing.T) {
	r := New(Options{})
	a := r.Begin(cmd("hp00", 1), PathGlobal)
	b := r.Begin(cmd("hp00", 2), PathSharded)
	s := r.BeginSpec(a.R.Corr, cmd("hp00", 3))
	if !strings.HasPrefix(a.R.Corr, "c-") || !strings.HasPrefix(b.R.Corr, "c-") {
		t.Fatalf("command corr IDs: %q, %q", a.R.Corr, b.R.Corr)
	}
	if !strings.HasPrefix(s.R.Corr, "s-") {
		t.Fatalf("speculation corr ID: %q", s.R.Corr)
	}
	if a.R.Corr == b.R.Corr || a.R.Corr == s.R.Corr {
		t.Fatalf("correlation IDs collide: %q %q %q", a.R.Corr, b.R.Corr, s.R.Corr)
	}
	if s.R.Parent != a.R.Corr {
		t.Fatalf("spec parent = %q, want %q", s.R.Parent, a.R.Corr)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	// Depth 8 over 8 shards = 1 slot per shard; one device maps to one
	// shard, so only its newest record survives.
	r := New(Options{Depth: 8})
	for seq := 1; seq <= 5; seq++ {
		a := r.Begin(cmd("hp00", seq), PathSharded)
		a.Commit()
	}
	w := r.Window()
	if len(w) != 1 {
		t.Fatalf("window = %d records, want 1 (ring wrapped)", len(w))
	}
	if w[0].Seq != 5 {
		t.Fatalf("surviving record seq = %d, want newest (5)", w[0].Seq)
	}
}

func TestWindowIsOrderedOldestFirst(t *testing.T) {
	r := New(Options{})
	// Distinct devices scatter across shards; Window must still come back
	// in global insertion order.
	devices := []string{"hp00", "hp01", "arm0", "arm1", "door", "hp02", "hp03", "hp04"}
	for i, d := range devices {
		r.Begin(cmd(d, i+1), PathSharded).Commit()
	}
	w := r.Window()
	if len(w) != len(devices) {
		t.Fatalf("window = %d records, want %d", len(w), len(devices))
	}
	for i := 1; i < len(w); i++ {
		if w[i].Ord <= w[i-1].Ord {
			t.Fatalf("window out of order at %d: %d then %d", i, w[i-1].Ord, w[i].Ord)
		}
	}
	for i, rec := range w {
		if rec.Seq != i+1 {
			t.Fatalf("window[%d].Seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
}

func TestAnnotateBackfillsNewestMatch(t *testing.T) {
	r := New(Options{})
	r.Begin(cmd("hp00", 1), PathSharded).Commit()
	r.Begin(cmd("hp00", 2), PathSharded).Commit()
	r.Annotate("hp00", 2, "ok", 1234)
	r.Annotate("hp00", 99, "error", 1) // no such record: best-effort no-op
	for _, rec := range r.Window() {
		switch rec.Seq {
		case 1:
			if rec.Outcome != "" {
				t.Fatalf("seq 1 annotated unexpectedly: %q", rec.Outcome)
			}
		case 2:
			if rec.Outcome != "ok" || rec.Spans.ExecNS != 1234 {
				t.Fatalf("seq 2 = %q/%d, want ok/1234", rec.Outcome, rec.Spans.ExecNS)
			}
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Fatal("nil recorder is On")
	}
	if r.Depth() != 0 || r.Dir() != "" || r.Err() != nil || r.Window() != nil {
		t.Fatal("nil recorder accessors not zero")
	}
	if a := r.Begin(cmd("hp00", 1), PathGlobal); a != nil {
		t.Fatal("nil recorder Begin returned a handle")
	}
	if a := r.BeginSpec("", cmd("hp00", 1)); a != nil {
		t.Fatal("nil recorder BeginSpec returned a handle")
	}
	r.Annotate("hp00", 1, "ok", 0)
	var a *Active
	a.Commit()
	a.CommitIncident()
}

// TestBundleRoundTrip writes an incident with a full three-hop causal
// chain and loads it back.
func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Dir: dir, Tag: "bug-x"})

	parent := r.Begin(cmd("arm0", 1), PathSharded)
	parent.Commit()
	spec := r.BeginSpec(parent.R.Corr, cmd("arm0", 0))
	spec.R.Verdict = Verdict{Source: SourceSpeculative, EpochAtValidation: 3}
	spec.Commit()

	trigger := r.Begin(cmd("arm0", 2), PathSharded)
	trigger.R.TNS = 1000
	trigger.R.Rules = []string{"GR1", "GR4"}
	trigger.R.Pre = map[string]string{"arm0.pose": "home"}
	trigger.R.Verdict = Verdict{Source: SourceSpeculative, EpochAtValidation: 3, SpecCorr: spec.R.Corr}
	trigger.R.AlertKind = "invalid_trajectory"
	trigger.R.Alert = "collision with hp00"
	trigger.R.AlertTNS = 5000
	trigger.CommitIncident()

	if err := r.Err(); err != nil {
		t.Fatalf("bundle write: %v", err)
	}
	incs, err := LoadIncidents(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(incs) != 1 {
		t.Fatalf("loaded %d incidents, want 1", len(incs))
	}
	in := incs[0]
	m := in.Manifest
	if m.Schema != ManifestSchema || m.Tag != "bug-x" {
		t.Fatalf("manifest schema/tag: %+v", m)
	}
	if !strings.HasPrefix(m.Bundle, "bug-x-incident-") || !strings.HasSuffix(m.Bundle, "-invalid_trajectory") {
		t.Fatalf("bundle name %q", m.Bundle)
	}
	if m.TNS != 5000 {
		t.Fatalf("manifest TNS = %d, want alert time 5000", m.TNS)
	}
	want := []string{trigger.R.Corr, spec.R.Corr, parent.R.Corr}
	if len(m.Chain) != 3 || m.Chain[0] != want[0] || m.Chain[1] != want[1] || m.Chain[2] != want[2] {
		t.Fatalf("chain = %v, want %v", m.Chain, want)
	}
	for _, corr := range m.Chain {
		if _, ok := in.Record(corr); !ok {
			t.Fatalf("chain entry %s not resolvable in records.jsonl", corr)
		}
	}
	trig, ok := in.Trigger()
	if !ok {
		t.Fatal("trigger not in bundle")
	}
	if trig.Pre["arm0.pose"] != "home" || trig.Verdict.SpecCorr != spec.R.Corr {
		t.Fatalf("trigger round-trip lost data: %+v", trig)
	}
	if len(m.RuleIDs) != 2 || m.RuleIDs[0] != "GR1" {
		t.Fatalf("manifest rule IDs = %v (fallback to evaluated rules)", m.RuleIDs)
	}
	if m.Records != len(in.Records) || m.Records < 3 {
		t.Fatalf("manifest records = %d, file has %d", m.Records, len(in.Records))
	}
}

// TestBundleNamesNeverCollide shares one incident directory between two
// recorders (as the bug study does across injections).
func TestBundleNamesNeverCollide(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		r := New(Options{Dir: dir})
		a := r.Begin(cmd("hp00", 1), PathGlobal)
		a.R.AlertKind = "invalid_command"
		a.CommitIncident()
		if err := r.Err(); err != nil {
			t.Fatalf("recorder %d: %v", i, err)
		}
	}
	incs, err := LoadIncidents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 3 {
		t.Fatalf("loaded %d incidents, want 3", len(incs))
	}
}

func TestChainOmitsEvictedLinks(t *testing.T) {
	// The spec record never enters the ring, so the chain must stop at
	// the trigger rather than reference an unresolvable record.
	r := New(Options{Dir: t.TempDir()})
	trigger := r.Begin(cmd("arm0", 1), PathSharded)
	trigger.R.Verdict.SpecCorr = "s-000042" // fell off the ring
	trigger.R.AlertKind = "malfunction"
	trigger.CommitIncident()
	incs, err := LoadIncidents(r.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if chain := incs[0].Manifest.Chain; len(chain) != 1 || chain[0] != trigger.R.Corr {
		t.Fatalf("chain = %v, want just the trigger", chain)
	}
}

func TestWriteErrorRetainedNotFatal(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Options{Dir: filepath.Join(blocked, "sub")})
	a := r.Begin(cmd("hp00", 1), PathGlobal)
	a.R.AlertKind = "invalid_command"
	a.CommitIncident() // must not panic
	if r.Err() == nil {
		t.Fatal("write error not retained")
	}
	// The ring still recorded the trigger.
	if len(r.Window()) != 1 {
		t.Fatal("trigger missing from ring after failed bundle write")
	}
}
