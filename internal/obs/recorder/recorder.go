// Package recorder is RABIT's flight recorder: a lock-sharded,
// allocation-bounded ring buffer that keeps a black-box window of
// structured per-command records — command and arguments, correlation
// ID, rule IDs evaluated with their read-scoped state views, sim verdict
// provenance, the pipeline path taken, and per-stage span timings. On
// any alert the surrounding window is frozen and written out as a
// self-contained incident bundle (JSONL records plus a manifest), so the
// evidence an operator needs to reconstruct why the safety system fired
// is already on disk when it does.
//
// The recorder is an observer, never an actor: every entry point is
// nil-safe, records are captured into preallocated ring slots guarded by
// per-shard mutexes keyed on device, and nothing in it can change a
// verdict — the eval harness's recorder-on/off property test holds it to
// that.
package recorder

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/action"
	"repro/internal/obs"
)

// DefaultDepth is the ring's total capacity when Options.Depth is unset:
// enough to hold the full recent history of a testbed workflow and a
// couple of seconds of sharded-fleet traffic, at a bounded few hundred
// KB of records.
const DefaultDepth = 1024

// numShards spreads ring inserts across independently locked segments so
// concurrent sharded-pipeline commands do not serialize on the recorder.
const numShards = 8

// Options configures a Recorder.
type Options struct {
	// Depth is the total ring capacity (records), divided across the
	// shards. Zero or negative selects DefaultDepth.
	Depth int
	// Dir is the incident-bundle directory; "" records to the ring only
	// (the window is still inspectable via Window) but writes nothing.
	Dir string
	// Tag is a human label folded into bundle directory names and
	// manifests — the eval harness tags each bug injection's bundles.
	Tag string
	// Obs receives the recorder's own counters (records, incidents,
	// write errors). Nil disables them.
	Obs *obs.Registry
}

// recShard is one independently locked ring segment.
type recShard struct {
	mu   sync.Mutex
	buf  []Record
	next int // slot the next push lands in
	n    int // filled slots, ≤ len(buf)
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and nil-safe, so callers wire it unconditionally and pass nil to
// disable recording.
type Recorder struct {
	shards [numShards]recShard
	ord    atomic.Uint64 // global insertion order, for window sorting
	corr   atomic.Uint64 // correlation-ID source

	dir string
	tag string

	// bundleMu serializes bundle directory allocation and writing.
	bundleMu  sync.Mutex
	bundleSeq int

	errMu   sync.Mutex
	lastErr error

	cRecords   *obs.Counter
	cIncidents *obs.Counter
	cErrors    *obs.Counter
}

// New builds a recorder with preallocated ring storage.
func New(o Options) *Recorder {
	depth := o.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	per := depth / numShards
	if per < 1 {
		per = 1
	}
	r := &Recorder{dir: o.Dir, tag: o.Tag}
	for i := range r.shards {
		r.shards[i].buf = make([]Record, per)
	}
	r.cRecords = o.Obs.Counter(obs.CounterRecorderRecords)
	r.cIncidents = o.Obs.Counter(obs.CounterRecorderIncidents)
	r.cErrors = o.Obs.Counter(obs.CounterRecorderErrors)
	return r
}

// On reports whether recording is enabled. Nil-safe (false).
func (r *Recorder) On() bool { return r != nil }

// Depth returns the total ring capacity. Nil-safe (0).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].buf)
	}
	return n
}

// Dir returns the incident-bundle directory ("" when bundles are
// disabled). Nil-safe.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Reset clears the ring and restarts correlation-ID, insertion-order,
// and bundle-sequence numbering under a new tag. It is the pooled-stack
// reset path: a campaign runner reuses one recorder across scenarios,
// re-tagging it per scenario so bundle names stay unique (and identical
// at any worker count) even when many recorders share one incident
// directory. The caller must guarantee quiescence — no commands in
// flight. Nil-safe.
func (r *Recorder) Reset(tag string) {
	if r == nil {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.next, sh.n = 0, 0
		sh.mu.Unlock()
	}
	r.ord.Store(0)
	r.corr.Store(0)
	r.bundleMu.Lock()
	r.bundleSeq = 0
	r.tag = tag
	r.bundleMu.Unlock()
	r.errMu.Lock()
	r.lastErr = nil
	r.errMu.Unlock()
}

// Err returns the last bundle-write error, if any. Nil-safe.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

func (r *Recorder) fail(err error) {
	r.errMu.Lock()
	r.lastErr = err
	r.errMu.Unlock()
	r.cErrors.Inc()
}

// Active is one record under construction. The owning pipeline goroutine
// fills R freely until Commit/CommitIncident copies it into the ring;
// after that the handle must not be touched again.
type Active struct {
	rec *Recorder
	R   Record
}

// Begin opens a command record with a fresh correlation ID. Nil-safe
// (returns nil, and a nil *Active tolerates Commit/CommitIncident).
func (r *Recorder) Begin(cmd action.Command, path string) *Active {
	if r == nil {
		return nil
	}
	return &Active{rec: r, R: Record{
		Corr:   corrID("c", r.corr.Add(1)),
		Kind:   KindCommand,
		Path:   path,
		Seq:    cmd.Seq,
		Device: cmd.Device,
		Action: string(cmd.Action),
		cmd:    cmd,
		hasCmd: true,
	}}
}

// BeginSpec opens a speculation record linked to the command whose
// execution window the lookahead overlaps (parent may be "" when the
// hinting command could not be resolved). Nil-safe.
func (r *Recorder) BeginSpec(parent string, next action.Command) *Active {
	if r == nil {
		return nil
	}
	return &Active{rec: r, R: Record{
		Corr:   corrID("s", r.corr.Add(1)),
		Parent: parent,
		Kind:   KindSpeculation,
		Path:   PathSpeculative,
		Device: next.Device,
		Action: string(next.Action),
		cmd:    next,
		hasCmd: true,
	}}
}

// Commit pushes the finished record into the ring. Nil-safe.
func (a *Active) Commit() {
	if a == nil {
		return
	}
	a.rec.push(a.R)
}

// CommitIncident pushes the finished record — an alert trigger — and
// freezes the window into an incident bundle (when a bundle directory is
// configured). Nil-safe.
func (a *Active) CommitIncident() {
	if a == nil {
		return
	}
	a.rec.push(a.R)
	a.rec.writeBundle(a.R)
}

// push copies a record into its device's shard, stamping the global
// insertion order.
func (r *Recorder) push(rec Record) {
	rec.Ord = r.ord.Add(1)
	sh := &r.shards[r.shardOf(rec.Device)]
	sh.mu.Lock()
	sh.buf[sh.next] = rec
	sh.next = (sh.next + 1) % len(sh.buf)
	if sh.n < len(sh.buf) {
		sh.n++
	}
	sh.mu.Unlock()
	r.cRecords.Inc()
}

func (r *Recorder) shardOf(device string) int {
	h := fnv.New32a()
	h.Write([]byte(device))
	return int(h.Sum32() % numShards)
}

// Annotate back-fills the most recent ring record for (device, seq) with
// the interceptor's view of the command: its final outcome and the
// execution span. A record that already fell off the ring is silently
// skipped — annotation is best-effort by design. Nil-safe.
func (r *Recorder) Annotate(device string, seq int, outcome string, execNS int64) {
	if r == nil {
		return
	}
	sh := &r.shards[r.shardOf(device)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.buf)
	for k := 0; k < sh.n; k++ {
		rec := &sh.buf[((sh.next-1-k)%n+n)%n]
		if rec.Kind == KindCommand && rec.Seq == seq && rec.Device == device {
			rec.Outcome = outcome
			rec.Spans.ExecNS = execNS
			return
		}
	}
}

// Window snapshots the full ring, oldest first (global insertion order),
// materializing the lazily rendered command strings on the copies. The
// returned records share their maps/slices with the ring, which is safe:
// committed records are only ever scalar-annotated. Nil-safe.
func (r *Recorder) Window() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := len(sh.buf)
		for k := 0; k < sh.n; k++ {
			out = append(out, sh.buf[((sh.next-sh.n+k)%n+n)%n])
		}
		sh.mu.Unlock()
	}
	for i := range out {
		out[i].render()
	}
	sortRecords(out)
	return out
}
