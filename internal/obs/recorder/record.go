package recorder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/action"
	"repro/internal/state"
)

// Record kinds.
const (
	// KindCommand is one intercepted command's pass through the Fig. 2
	// algorithm.
	KindCommand = "command"
	// KindSpeculation is one run of the single-flight lookahead worker.
	KindSpeculation = "speculation"
	// KindSnapshot is a manually filed window freeze — no alert fired;
	// an external judge (the campaign oracle) decided the window is
	// evidence. See Recorder.FileSnapshot.
	KindSnapshot = "snapshot"
)

// Pipeline paths (Record.Path).
const (
	// PathGlobal is the engine's global single-lock pipeline.
	PathGlobal = "global"
	// PathSharded is the per-device sharded pipeline.
	PathSharded = "sharded"
	// PathSpeculative marks lookahead records (never an on-path check).
	PathSpeculative = "speculative"
)

// Verdict sources: where a trajectory verdict came from.
const (
	// SourceColdSolve: the simulator planned and swept the motion on the
	// critical path.
	SourceColdSolve = "cold_solve"
	// SourceCacheHit: the verdict was served from the epoch-keyed verdict
	// cache, originally computed by an earlier on-path check.
	SourceCacheHit = "cache_hit"
	// SourceSpeculative: the verdict was served from the cache and had
	// been pre-computed by the speculative lookahead worker — the record's
	// SpecCorr names the speculation that produced it.
	SourceSpeculative = "speculative"
)

// Verdict is a trajectory verdict's provenance: where it came from and
// the deck epochs it was validated and committed under. A divergence
// between the two epochs on a passing command is exactly the window the
// epoch-keyed cache exists to close, so forensics wants both.
type Verdict struct {
	Source string `json:"source,omitempty"`
	// EpochAtValidation is the deck epoch the trajectory check paired
	// with the model it read.
	EpochAtValidation uint64 `json:"epoch_at_validation,omitempty"`
	// EpochAtCommit is the deck epoch after the command's After committed
	// (post any bump the commit itself caused).
	EpochAtCommit uint64 `json:"epoch_at_commit,omitempty"`
	// SpecCorr is the correlation ID of the speculation whose cached
	// verdict this check consumed (Source == SourceSpeculative).
	SpecCorr string `json:"spec_corr,omitempty"`
}

// Spans are the per-stage wall-clock timings of one record, mirroring
// the engine's stage histograms plus the interceptor's execute span.
type Spans struct {
	ValidateNS   int64 `json:"validate_ns,omitempty"`
	TrajectoryNS int64 `json:"trajectory_ns,omitempty"`
	FetchNS      int64 `json:"fetch_ns,omitempty"`
	CompareNS    int64 `json:"compare_ns,omitempty"`
	ExecNS       int64 `json:"exec_ns,omitempty"`
}

// Record is one flight-recorder entry — the black box's unit of capture.
// State views are rendered to bounded string maps at capture time so a
// record can never retain (or observe mutations of) live engine state.
type Record struct {
	// Ord is the recorder-global insertion order (1-based).
	Ord uint64 `json:"ord"`
	// Corr is the record's correlation ID: "c-…" for commands, "s-…" for
	// speculations.
	Corr string `json:"corr"`
	// Parent links a speculation to the command whose execution window
	// it overlapped (the Hint caller).
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Path   string `json:"path,omitempty"`

	Seq    int    `json:"seq,omitempty"`
	Device string `json:"device,omitempty"`
	Action string `json:"action,omitempty"`
	// Cmd is the rendered command. Rendering costs an fmt pass per
	// record, so live records carry the raw command (cmd below) instead
	// and Cmd is materialized only when a window is snapshotted.
	Cmd string `json:"cmd,omitempty"`
	// cmd backs lazy Cmd rendering; hasCmd guards the zero Command.
	cmd    action.Command
	hasCmd bool
	// TNS is the lab clock when the record opened (command issue time).
	TNS int64 `json:"t_ns,omitempty"`
	// Trace is the causal trace ID (32 hex chars) of the run that
	// produced this record — the key linking a bundle to its retained
	// trace tree (see internal/obs/trace). Empty when tracing is off.
	Trace string `json:"trace_id,omitempty"`

	// Rules are the rule IDs the validation stage evaluated for this
	// command (its label bucket filtered to matching devices).
	Rules []string `json:"rules,omitempty"`
	// Pre is the read-scoped model view the rules validated against.
	Pre map[string]string `json:"pre,omitempty"`
	// Expected is the S_expected overlay's edits (deletes render as ∅).
	Expected map[string]string `json:"expected,omitempty"`
	// Observed is the post-execution fetch, scoped like Pre.
	Observed map[string]string `json:"observed,omitempty"`

	Verdict Verdict `json:"verdict"`
	Spans   Spans   `json:"spans"`

	// Outcome/ExecNS are the interceptor's annotation ("ok", "blocked",
	// "error"); empty for records it never settled.
	Outcome string `json:"outcome,omitempty"`
	// SettledBy names the batch-mate whose After settled this command
	// (concurrent global batches share one post-state check).
	SettledBy string `json:"settled_by,omitempty"`

	AlertKind string `json:"alert_kind,omitempty"`
	Alert     string `json:"alert,omitempty"`
	// AlertTNS is the lab clock at the alert; AlertTNS−TNS is the
	// detection latency forensics aggregates.
	AlertTNS int64 `json:"alert_t_ns,omitempty"`
	// Violations are violated rule IDs (invalid-command alerts);
	// Mismatches are diverged state keys (malfunction alerts).
	Violations []string `json:"violations,omitempty"`
	Mismatches []string `json:"mismatches,omitempty"`
}

// render materializes Cmd from the stored raw command. Only called on
// snapshot copies — live ring slots keep the cheap unrendered form.
func (rec *Record) render() {
	if rec.Cmd == "" && rec.hasCmd {
		rec.Cmd = rec.cmd.String()
	}
}

// corrID renders a correlation ID.
func corrID(prefix string, n uint64) string {
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// sortRecords orders a window by global insertion order.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Ord < recs[j].Ord })
}

// ViewLimit bounds every captured state view: forensics wants the keys a
// check actually read, not a full deck dump per record.
const ViewLimit = 64

// argMatches reports whether any bracketed argument of k equals one of
// the ids, without the allocation Key.Args pays — this runs once per
// model key per captured view, the recorder's hottest loop.
func argMatches(k state.Key, ids []string) bool {
	s := string(k)
	for {
		i := strings.IndexByte(s, '[')
		if i < 0 {
			return false
		}
		s = s[i+1:]
		j := strings.IndexByte(s, ']')
		if j < 0 {
			return false
		}
		arg := s[:j]
		for _, id := range ids {
			if id != "" && id == arg {
				return true
			}
		}
		s = s[j+1:]
	}
}

// CaptureView renders the slice of a state view owned by the given IDs
// — plus exogenous sensor keys, which every path reads — as a bounded
// string map. The caller must hold whatever lock makes v stable.
func CaptureView(v state.View, ids []string) map[string]string {
	if v == nil {
		return nil
	}
	var out map[string]string
	v.Range(func(k state.Key, val state.Value) bool {
		if len(out) >= ViewLimit {
			return false
		}
		if !k.IsExogenous() && !argMatches(k, ids) {
			return true
		}
		if out == nil {
			out = make(map[string]string, 8)
		}
		out[string(k)] = val.String()
		return true
	})
	return out
}

// CaptureEdits renders an expectation overlay's accumulated edits.
// Deletes render as "∅". Nil-safe.
func CaptureEdits(o *state.Overlay) map[string]string {
	if o == nil {
		return nil
	}
	out := make(map[string]string)
	o.RangeEdits(func(k state.Key, v state.Value, present bool) bool {
		if len(out) >= ViewLimit {
			return false
		}
		if present {
			out[string(k)] = v.String()
		} else {
			out[string(k)] = "∅"
		}
		return true
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
