package obs

import (
	"sync/atomic"
	"time"
)

// bucketBounds are the histogram's fixed upper bounds. Checks are
// µs-scale without the simulator and ms-scale with it (seconds with the
// GUI), so the buckets run 1µs–5s on a 1/2/5 ladder; the last bucket is
// unbounded.
var bucketBounds = [...]time.Duration{
	1 * time.Microsecond,
	2 * time.Microsecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	20 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	200 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
}

// numBuckets includes the overflow bucket.
const numBuckets = len(bucketBounds) + 1

// Histogram is a fixed-bucket latency histogram. Observations are four
// atomic operations (bucket, count, sum, max) — no locks, safe for
// concurrent use, cheap enough for per-stage spans on every command.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	// exemplars holds the most recent trace-carrying observation per
	// bucket (nil until one lands) — the metric→trace links the
	// OpenMetrics exposition emits. Stored as pointers so an update is a
	// single atomic publish.
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar pairs one observation with the trace that produced it.
type Exemplar struct {
	TraceID string
	ValueNS int64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration to its bucket. The ladder is short enough
// that a linear scan beats binary search in practice (and branch-predicts
// well: most observations land in the first few µs buckets).
func bucketIndex(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return numBuckets - 1
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := d.Nanoseconds()
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveExemplar records one duration and, when a trace ID is known,
// publishes it as the observation's bucket exemplar — a latency spike
// on /metrics/prom then links to the causal trace that produced it.
// With an empty trace ID it is exactly Observe. Nil-safe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	h.Observe(d)
	if h == nil || traceID == "" {
		return
	}
	if d < 0 {
		d = 0
	}
	h.exemplars[bucketIndex(d)].Store(&Exemplar{TraceID: traceID, ValueNS: d.Nanoseconds()})
}

// Count returns how many observations were recorded. Nil-safe (0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations. Nil-safe (0).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation. Nil-safe (0).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation. Nil-safe (0).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear
// interpolation within the containing bucket; the overflow bucket reports
// the observed max. Nil-safe (0).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == numBuckets-1 {
				return h.Max()
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := bucketBounds[i]
			frac := float64(rank-cum) / float64(n)
			est := lo + time.Duration(frac*float64(hi-lo))
			if m := h.Max(); est > m {
				est = m
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// P50 is the median estimate.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 is the 95th-percentile estimate.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is the 99th-percentile estimate.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Reset zeroes the histogram. Concurrent observers may land on either
// side of the reset; that is acceptable between evaluation runs. Nil-safe.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// BucketBoundsNS returns the fixed bucket ladder's upper bounds in
// nanoseconds, excluding the overflow (+Inf) bucket. The slice is a
// fresh copy; exposition layers align it with CumulativeCounts.
func BucketBoundsNS() []int64 {
	out := make([]int64, len(bucketBounds))
	for i, b := range bucketBounds {
		out[i] = b.Nanoseconds()
	}
	return out
}

// CumulativeCounts returns the cumulative observation count at every
// fixed bucket bound, plus a final entry for the overflow (+Inf) bucket
// — len(BucketBoundsNS())+1 entries, the last equal to Count(). Unlike
// the snapshot's sparse Buckets, every bucket is present (zeros
// included), which is what a Prometheus _bucket series requires.
// Nil-safe (nil).
func (h *Histogram) CumulativeCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, numBuckets)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// HistogramBucket is one bucket of a snapshot: observations ≤ UpperNS
// (cumulative, Prometheus-style).
type HistogramBucket struct {
	UpperNS    int64 `json:"upper_ns"` // 0 marks the overflow (+Inf) bucket
	Cumulative int64 `json:"cumulative"`
}

// HistogramSnapshot summarises a histogram for sinks and introspection.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	MeanNS  int64             `json:"mean_ns"`
	P50NS   int64             `json:"p50_ns"`
	P95NS   int64             `json:"p95_ns"`
	P99NS   int64             `json:"p99_ns"`
	MaxNS   int64             `json:"max_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
	// CumCounts is the dense cumulative series over the full fixed
	// ladder (see Histogram.CumulativeCounts); index i pairs with
	// BucketBoundsNS()[i], and the final entry is the +Inf bucket.
	// Present only when the histogram has observations.
	CumCounts []int64 `json:"cum_counts,omitempty"`
	// Exemplars are the per-bucket metric→trace links: Bucket indexes
	// the dense ladder (CumCounts/BucketBoundsNS positions, the last
	// being +Inf). Only buckets that saw a traced observation appear.
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// ExemplarSnapshot is one bucket's most recent traced observation.
type ExemplarSnapshot struct {
	Bucket  int    `json:"bucket"`
	TraceID string `json:"trace_id"`
	ValueNS int64  `json:"value_ns"`
}

// snapshot captures the histogram under a name.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Count:  h.Count(),
		SumNS:  h.Sum().Nanoseconds(),
		MeanNS: h.Mean().Nanoseconds(),
		P50NS:  h.P50().Nanoseconds(),
		P95NS:  h.P95().Nanoseconds(),
		P99NS:  h.P99().Nanoseconds(),
		MaxNS:  h.Max().Nanoseconds(),
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 {
			continue // only emit buckets that gained observations
		}
		upper := int64(0)
		if i < len(bucketBounds) {
			upper = bucketBounds[i].Nanoseconds()
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperNS: upper, Cumulative: cum})
	}
	if s.Count > 0 {
		s.CumCounts = h.CumulativeCounts()
	}
	for i := 0; i < numBuckets; i++ {
		if ex := h.exemplars[i].Load(); ex != nil {
			s.Exemplars = append(s.Exemplars, ExemplarSnapshot{Bucket: i, TraceID: ex.TraceID, ValueNS: ex.ValueNS})
		}
	}
	return s
}
