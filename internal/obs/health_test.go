package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// getJSON fetches a health endpoint, asserting the content type and
// decoding the report.
func getJSON(t *testing.T, url string) (int, HealthReport) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET %s: content-type %q", url, ct)
	}
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("GET %s: body not JSON: %v", url, err)
	}
	return resp.StatusCode, rep
}

// TestHealthEndpoints drives /healthz and /readyz through the component
// states that matter: empty group, all-healthy, drained (alive but not
// ready), and broken (both fail).
func TestHealthEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// No components: an idle process is alive and ready.
	if code, rep := getJSON(t, srv.URL+"/healthz"); code != 200 || rep.Status != "ok" {
		t.Fatalf("empty /healthz = %d %q", code, rep.Status)
	}
	if code, rep := getJSON(t, srv.URL+"/readyz"); code != 200 || rep.Status != "ready" {
		t.Fatalf("empty /readyz = %d %q", code, rep.Status)
	}

	state := Health{OK: true, Ready: true}
	reg := RegisterHealth("engine", func() Health { return state })
	defer reg.Unregister()
	reg2 := RegisterHealth("engine", func() Health { return Health{OK: true, Ready: true} })
	defer reg2.Unregister()

	code, rep := getJSON(t, srv.URL+"/healthz")
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("healthy /healthz = %d %q", code, rep.Status)
	}
	// The duplicate name was disambiguated, not clobbered.
	if _, ok := rep.Components["engine"]; !ok {
		t.Error("component engine missing")
	}
	if _, ok := rep.Components["engine#2"]; !ok {
		t.Errorf("duplicate component not aliased: %v", rep.Components)
	}

	// Drained: alive, not ready.
	state = Health{OK: true, Ready: false, Detail: "drained"}
	if code, rep := getJSON(t, srv.URL+"/healthz"); code != 200 || rep.Status != "ok" {
		t.Fatalf("drained /healthz = %d %q, want 200 ok", code, rep.Status)
	}
	code, rep = getJSON(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || rep.Status != "unready" {
		t.Fatalf("drained /readyz = %d %q, want 503 unready", code, rep.Status)
	}
	if rep.Components["engine"].Detail != "drained" {
		t.Errorf("detail %q not surfaced", rep.Components["engine"].Detail)
	}

	// Broken: neither live nor ready.
	state = Health{OK: false, Ready: false, Detail: "bundle write: disk full"}
	if code, rep := getJSON(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable || rep.Status != "unhealthy" {
		t.Fatalf("broken /healthz = %d %q, want 503 unhealthy", code, rep.Status)
	}

	// Unregister restores the all-clear.
	reg.Unregister()
	reg.Unregister() // idempotent
	if code, _ := getJSON(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz still %d after Unregister", code)
	}
	var nilReg *HealthReg
	nilReg.Unregister() // nil-safe
}

// TestEndpointsAfterServerClose covers every introspection endpoint's
// status and content type on the live listener, then proves Close ends
// service.
func TestEndpointsAfterServerClose(t *testing.T) {
	reg := NewRegistry("endpoints-test")
	Register(reg)
	defer Unregister(reg)
	sloReg := RegisterSLO(NewSLO("endpoint_slo", 0.9, time.Millisecond))
	defer sloReg.Unregister()

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wantCT := map[string]string{
		"/metrics":        "text/plain; version=0.0.4",
		"/metrics/prom":   "text/plain; version=0.0.4",
		"/healthz":        "application/json",
		"/readyz":         "application/json",
		"/traces":         "", // mounted by the trace subpackage; absent here
		"/debug/vars":     "application/json",
		"/traces/summary": "",
	}
	for path, ct := range wantCT {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct == "" {
			// obs does not import its trace subpackage, so in this test
			// binary the aux route may or may not be mounted; only assert
			// it does not 500.
			if resp.StatusCode >= 500 {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, ct) {
			t.Errorf("GET %s: content-type %q, want prefix %q", path, got, ct)
		}
		if path == "/metrics/prom" && !strings.Contains(string(body), `rabit_slo_objective{slo="endpoint_slo`) {
			t.Errorf("/metrics/prom missing the registered SLO")
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/metrics/prom", "/healthz", "/readyz"} {
		if _, err := http.Get("http://" + srv.Addr + path); err == nil {
			t.Errorf("GET %s still served after Close", path)
		}
	}
}

// TestSLORollingWindows exercises the burn-rate math over a simulated
// clock: observations age out of the short window but stay in the long
// one.
func TestSLORollingWindows(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	slo := NewSLO("clocked", 0.9, time.Millisecond, 10*time.Second, time.Hour)
	slo.now = func() time.Time { return now }

	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	for i := 0; i < 8; i++ {
		slo.Observe(time.Microsecond) // good
	}
	slo.Observe(time.Second) // bad
	slo.Observe(time.Second) // bad
	// 2 bad / 10 total over a 0.1 budget: burning at 2x.
	if br := slo.BurnRate(10 * time.Second); !approx(br, 2.0) {
		t.Fatalf("short-window burn rate = %v, want 2.0", br)
	}

	// 30 seconds later the short window is empty, the long one is not.
	now = now.Add(30 * time.Second)
	if br := slo.BurnRate(10 * time.Second); br != 0 {
		t.Fatalf("aged short-window burn rate = %v, want 0", br)
	}
	if br := slo.BurnRate(time.Hour); !approx(br, 2.0) {
		t.Fatalf("long-window burn rate = %v, want 2.0", br)
	}

	// New good observations dilute the long window.
	for i := 0; i < 30; i++ {
		slo.Observe(0)
	}
	snap := slo.Snapshot()
	if len(snap.Windows) != 2 {
		t.Fatalf("%d windows", len(snap.Windows))
	}
	long := snap.Windows[1]
	if long.Good != 38 || long.Bad != 2 {
		t.Fatalf("long window %d good / %d bad, want 38/2", long.Good, long.Bad)
	}
	if want := (2.0 / 40.0) / 0.1; !approx(long.BurnRate, want) {
		t.Fatalf("long burn rate %v, want %v", long.BurnRate, want)
	}

	// Threshold boundary: exactly-at-threshold is good.
	slo2 := NewSLO("edge", 0.5, time.Millisecond)
	slo2.Observe(time.Millisecond)
	if br := slo2.BurnRate(time.Hour); br != 0 {
		t.Fatalf("at-threshold observation counted bad (burn %v)", br)
	}

	// Nil-safety.
	var nilSLO *SLO
	nilSLO.Observe(time.Second)
	if nilSLO.BurnRate(time.Minute) != 0 {
		t.Fatal("nil SLO burns")
	}
	var s *SafetySLOs
	s.ObserveCheck(time.Second)
	s.ObserveDetection(time.Second)
	s.Register()
	s.Unregister()
}
