package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePromText(t *testing.T) {
	reg := NewRegistry("prom-test")
	reg.Counter("outcome.ok").Add(7)
	reg.Gauge("pending").Set(3)
	h := reg.Histogram(StageValidate)
	h.Observe(5 * time.Microsecond)
	h.Observe(40 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	snap := reg.Snapshot()
	snap.Name = "prom-test"
	WritePromText(&b, []Snapshot{snap})
	text := b.String()

	for _, want := range []string{
		"# TYPE rabit_outcome_ok_total counter",
		`rabit_outcome_ok_total{reg="prom-test"} 7`,
		"# TYPE rabit_pending gauge",
		`rabit_pending{reg="prom-test"} 3`,
		"# TYPE rabit_before_validate_seconds histogram",
		`rabit_before_validate_seconds_bucket{reg="prom-test",le="+Inf"} 3`,
		`rabit_before_validate_seconds_count{reg="prom-test"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// The bucket series must be dense (every fixed bound plus +Inf) and
	// monotonically non-decreasing.
	bounds := BucketBoundsNS()
	prefix := `rabit_before_validate_seconds_bucket{reg="prom-test",le=`
	var counts []int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			counts = append(counts, v)
		}
	}
	if len(counts) != len(bounds)+1 {
		t.Fatalf("bucket series has %d entries, want %d (+Inf included)", len(counts), len(bounds)+1)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("cumulative bucket counts decrease at %d: %v", i, counts)
		}
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want total count 3", counts[len(counts)-1])
	}

	// One # TYPE header per family.
	if n := strings.Count(text, "# TYPE rabit_before_validate_seconds "); n != 1 {
		t.Fatalf("histogram family declared %d times", n)
	}
}

func TestWritePromTextEmptyHistogram(t *testing.T) {
	reg := NewRegistry("prom-empty")
	reg.Histogram(StageCompare) // instantiated, never observed
	var b strings.Builder
	snap := reg.Snapshot()
	snap.Name = "prom-empty"
	WritePromText(&b, []Snapshot{snap})
	if !strings.Contains(b.String(), `rabit_after_compare_seconds_bucket{reg="prom-empty",le="+Inf"} 0`) {
		t.Fatalf("empty histogram must still expose a complete series:\n%s", b.String())
	}
}

// TestServeGracefulShutdown drives the real listener: serve, scrape both
// exposition endpoints, shut down, and verify the address is released.
func TestServeGracefulShutdown(t *testing.T) {
	reg := NewRegistry("shutdown-test")
	Register(reg)
	defer Unregister(reg)
	reg.Counter("outcome.ok").Inc()

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/metrics/prom"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "outcome") {
			t.Fatalf("GET %s: registry missing from exposition", path)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
	// A second Serve on the same address proves the listener was freed.
	srv2, err := Serve(srv.Addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil server close: %v", err)
	}
}
