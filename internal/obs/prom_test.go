package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePromText(t *testing.T) {
	reg := NewRegistry("prom-test")
	reg.Counter("outcome.ok").Add(7)
	reg.Gauge("pending").Set(3)
	h := reg.Histogram(StageValidate)
	h.Observe(5 * time.Microsecond)
	h.Observe(40 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	snap := reg.Snapshot()
	snap.Name = "prom-test"
	WritePromText(&b, []Snapshot{snap})
	text := b.String()

	for _, want := range []string{
		"# TYPE rabit_outcome_ok_total counter",
		`rabit_outcome_ok_total{reg="prom-test"} 7`,
		"# TYPE rabit_pending gauge",
		`rabit_pending{reg="prom-test"} 3`,
		"# TYPE rabit_before_validate_seconds histogram",
		`rabit_before_validate_seconds_bucket{reg="prom-test",le="+Inf"} 3`,
		`rabit_before_validate_seconds_count{reg="prom-test"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// The bucket series must be dense (every fixed bound plus +Inf) and
	// monotonically non-decreasing.
	bounds := BucketBoundsNS()
	prefix := `rabit_before_validate_seconds_bucket{reg="prom-test",le=`
	var counts []int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			counts = append(counts, v)
		}
	}
	if len(counts) != len(bounds)+1 {
		t.Fatalf("bucket series has %d entries, want %d (+Inf included)", len(counts), len(bounds)+1)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("cumulative bucket counts decrease at %d: %v", i, counts)
		}
	}
	if counts[len(counts)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want total count 3", counts[len(counts)-1])
	}

	// One # TYPE header per family.
	if n := strings.Count(text, "# TYPE rabit_before_validate_seconds "); n != 1 {
		t.Fatalf("histogram family declared %d times", n)
	}
}

func TestWritePromTextEmptyHistogram(t *testing.T) {
	reg := NewRegistry("prom-empty")
	reg.Histogram(StageCompare) // instantiated, never observed
	var b strings.Builder
	snap := reg.Snapshot()
	snap.Name = "prom-empty"
	WritePromText(&b, []Snapshot{snap})
	if !strings.Contains(b.String(), `rabit_after_compare_seconds_bucket{reg="prom-empty",le="+Inf"} 0`) {
		t.Fatalf("empty histogram must still expose a complete series:\n%s", b.String())
	}
}

// TestPromHostileLabels is the escaping regression test: registry names
// carrying backslashes, quotes, and newlines must land in label values
// escaped per the exposition format — and exactly those three bytes, so
// parsers reconstruct the original value.
func TestPromHostileLabels(t *testing.T) {
	hostile := "lab \"A\"\\east\nwing"
	reg := NewRegistry(hostile)
	reg.Counter("outcome.ok").Inc()
	var b strings.Builder
	snap := reg.Snapshot()
	snap.Name = hostile
	WritePromText(&b, []Snapshot{snap})
	want := `rabit_outcome_ok_total{reg="lab \"A\"\\east\nwing"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
	// One physical line per sample: the raw newline must not survive.
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "wing") {
			t.Fatalf("unescaped newline split a sample line:\n%s", b.String())
		}
	}
	// Bytes the format takes literally pass through untouched.
	if got := escapeLabel("tab\there"); got != "tab\there" {
		t.Fatalf("escapeLabel mangled a literal tab: %q", got)
	}
}

// TestPromHelpTypeOncePerFamily: several registries carrying the same
// instruments must merge under a single # HELP/# TYPE header pair per
// family, with every registry's series beneath it.
func TestPromHelpTypeOncePerFamily(t *testing.T) {
	var snaps []Snapshot
	for _, name := range []string{"sysA", "sysB", "sysC"} {
		reg := NewRegistry(name)
		reg.Counter(CounterCommands).Add(3)
		reg.Histogram(StageValidate).Observe(time.Millisecond)
		snap := reg.Snapshot()
		snap.Name = name
		snaps = append(snaps, snap)
	}
	var b strings.Builder
	WritePromText(&b, snaps)
	text := b.String()
	for _, family := range []string{"rabit_commands_total", "rabit_before_validate_seconds"} {
		if n := strings.Count(text, "# HELP "+family+" "); n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", family, n)
		}
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", family, n)
		}
	}
	for _, name := range []string{"sysA", "sysB", "sysC"} {
		if !strings.Contains(text, fmt.Sprintf(`rabit_commands_total{reg="%s"} 3`, name)) {
			t.Errorf("registry %s's series missing", name)
		}
	}
	// HELP text itself escapes backslash and newline.
	if got := escapeHelp(`a\b` + "\nc"); got != `a\\b\nc` {
		t.Fatalf("escapeHelp = %q", got)
	}
}

// TestWritePromSLOs covers the SLO exposition: per-SLO objective and
// threshold gauges plus per-window good/bad/burn-rate series.
func TestWritePromSLOs(t *testing.T) {
	// Objective 0.5 keeps the error budget a power of two, so the
	// burn-rate sample values render without float dust.
	slo := NewSLO("check_overhead", 0.5, 5*time.Millisecond)
	for i := 0; i < 99; i++ {
		slo.Observe(time.Millisecond)
	}
	slo.Observe(50 * time.Millisecond) // one bad in 100: burn = 0.01/0.5
	var b strings.Builder
	WritePromSLOs(&b, []SLOSnapshot{slo.Snapshot()})
	text := b.String()
	for _, want := range []string{
		`rabit_slo_objective{slo="check_overhead"} 0.5`,
		`rabit_slo_threshold_seconds{slo="check_overhead"} 0.005`,
		`rabit_slo_good{slo="check_overhead",window="5m0s"} 99`,
		`rabit_slo_bad{slo="check_overhead",window="5m0s"} 1`,
		`rabit_slo_burn_rate{slo="check_overhead",window="5m0s"} 0.02`,
		`rabit_slo_burn_rate{slo="check_overhead",window="1h0m0s"} 0.02`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SLO exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE rabit_slo_burn_rate gauge"); n != 1 {
		t.Errorf("burn-rate family declared %d times", n)
	}
	// An empty group writes nothing at all — not even headers.
	var empty strings.Builder
	WritePromSLOs(&empty, nil)
	if empty.Len() != 0 {
		t.Errorf("empty SLO group wrote %q", empty.String())
	}
}

// TestServeGracefulShutdown drives the real listener: serve, scrape both
// exposition endpoints, shut down, and verify the address is released.
func TestServeGracefulShutdown(t *testing.T) {
	reg := NewRegistry("shutdown-test")
	Register(reg)
	defer Unregister(reg)
	reg.Counter("outcome.ok").Inc()

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/metrics/prom"} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "outcome") {
			t.Fatalf("GET %s: registry missing from exposition", path)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
	// A second Serve on the same address proves the listener was freed.
	srv2, err := Serve(srv.Addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil server close: %v", err)
	}
}
