package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Two groups must be fully isolated introspection domains: same-named
// registries, health components, and SLOs registered in different
// groups never alias each other, and each group's handler serves only
// its own state.
func TestGroupsAreIsolated(t *testing.T) {
	g1, g2 := NewGroup(), NewGroup()

	r1 := NewRegistry("rabit/shared-lab")
	r2 := NewRegistry("rabit/shared-lab")
	g1.Register(r1)
	g2.Register(r2)
	r1.Counter("only.in.one").Inc()

	// Same name in different groups: no "#2" alias — the whole point of
	// per-instance groups is that two services' systems never collide.
	for _, g := range []*Group{g1, g2} {
		snaps := g.Snapshots()
		if len(snaps) != 1 {
			t.Fatalf("group has %d snapshots, want 1", len(snaps))
		}
		if snaps[0].Name != "rabit/shared-lab" {
			t.Fatalf("alias %q, want plain name (no cross-group dedup)", snaps[0].Name)
		}
	}

	g1.RegisterHealth("engine", func() Health { return Health{OK: true, Ready: true} })
	g2.RegisterHealth("engine", func() Health { return Health{OK: true, Ready: false, Detail: "drained"} })
	if _, ready, comps := g1.CheckHealth(); !ready || len(comps) != 1 {
		t.Fatalf("g1 health: ready=%v comps=%v, want ready with 1 component", ready, comps)
	}
	if _, ready, _ := g2.CheckHealth(); ready {
		t.Fatal("g2 drained engine leaked readiness from g1")
	}

	// Handlers are built per group: g2's /metrics must not show g1's
	// counter.
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()
	body := mustGet(t, srv2.URL+"/metrics")
	if strings.Contains(body, "only_in_one") {
		t.Fatal("g2's /metrics serves g1's counter")
	}

	// Unregistering from one group leaves the other untouched.
	g1.Unregister(r1)
	if n := len(g1.Snapshots()); n != 0 {
		t.Fatalf("g1 still has %d snapshots after Unregister", n)
	}
	if n := len(g2.Snapshots()); n != 1 {
		t.Fatalf("g2 lost its registry to g1's Unregister (%d snapshots)", n)
	}
}

// Within one group the "#N" alias dedup still applies.
func TestGroupAliasesDuplicateNames(t *testing.T) {
	g := NewGroup()
	g.Register(NewRegistry("rabit/lab"))
	g.Register(NewRegistry("rabit/lab"))
	snaps := g.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "rabit/lab" || snaps[1].Name != "rabit/lab#2" {
		t.Fatalf("aliases = %v, want [rabit/lab rabit/lab#2]", []string{snaps[0].Name, snaps[1].Name})
	}
}

// A serve-loop failure must not vanish into a discarded goroutine
// return: it latches on the Server and degrades the owning group's
// /readyz through the obs_server health component.
func TestServeErrorLatchesAndDegradesReadiness(t *testing.T) {
	g := NewGroup()
	s, err := g.Serve("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Err(); err != nil {
		t.Fatalf("fresh server already latched error: %v", err)
	}
	if _, ready, _ := g.CheckHealth(); !ready {
		t.Fatal("healthy server reports unready")
	}

	// Tear the listener down under the server — the accept loop dies
	// with a non-ErrServerClosed error.
	s.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("serve error never latched after listener close")
		}
		time.Sleep(time.Millisecond)
	}

	ok, ready, comps := g.CheckHealth()
	if !ok || ready {
		// ok=false is the expected liveness degradation; ready must be
		// false either way.
		if ready {
			t.Fatalf("group still ready after serve failure: %+v", comps)
		}
	}
	h, found := comps["obs_server"]
	if !found {
		t.Fatalf("no obs_server component in %+v", comps)
	}
	if h.OK || h.Ready || !strings.Contains(h.Detail, "serve:") {
		t.Fatalf("obs_server component = %+v, want failed with serve detail", h)
	}
}

// A clean Shutdown is not a failure: no error latches and the health
// component is withdrawn rather than left failing.
func TestServeShutdownDoesNotLatch(t *testing.T) {
	g := NewGroup()
	s, err := g.Serve("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("clean shutdown latched %v", err)
	}
	if _, _, comps := g.CheckHealth(); len(comps) != 0 {
		t.Fatalf("obs_server component still registered after shutdown: %+v", comps)
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
