package obs

import (
	"strings"
	"testing"
	"time"
)

// buildOMSnapshot assembles a registry exercising every family kind,
// both histogram units, and a trace exemplar.
func buildOMSnapshot(t *testing.T) Snapshot {
	t.Helper()
	r := NewRegistry("engine")
	r.Counter(CounterCommands).Add(7)
	r.Gauge("pipeline.depth").Set(3)

	evals := r.CounterFamily(FamilyRuleEvals, LabelRule)
	evals.Counter("general-1").Add(41)
	evals.Counter("hein-2").Add(12)
	lat := r.HistogramFamily(FamilyRuleEval, LabelRule)
	lat.Histogram("general-1").ObserveExemplar(3*time.Microsecond, "0af7651916cd43dd8448eb211c80319c")
	lat.Histogram("general-1").Observe(8 * time.Microsecond)
	margin := r.RatioHistogramFamily(FamilyRuleMargin, LabelRule)
	// Margin ratio 0.25 stored via the ns convention (m×1e9).
	margin.Histogram("general-1").Observe(time.Duration(0.25 * 1e9))
	return r.Snapshot()
}

func TestWriteOpenMetricsExposition(t *testing.T) {
	snap := buildOMSnapshot(t)
	slo := SLOSnapshot{Name: "alert-latency", Tenant: "lab-a", Objective: 0.99,
		ThresholdNS: int64(time.Millisecond),
		Windows:     []SLOWindowSnapshot{{Window: time.Minute, Good: 9, Bad: 1, BurnRate: 10}}}

	var sb strings.Builder
	WriteOpenMetrics(&sb, []Snapshot{snap}, []SLOSnapshot{slo})
	text := sb.String()

	for _, want := range []string{
		// Family metadata names differ from counter sample names.
		"# TYPE rabit_commands counter\n",
		`rabit_commands_total{reg="engine"} 7`,
		"# TYPE rabit_rule_evals counter\n",
		`rabit_rule_evals_total{reg="engine",rule="general-1"} 41`,
		`rabit_rule_evals_total{reg="engine",rule="hein-2"} 12`,
		// Duration family exposes in seconds with the trace exemplar on
		// the 3µs observation's bucket (≤5e-06).
		"# TYPE rabit_rule_eval_seconds histogram\n",
		`rabit_rule_eval_seconds_bucket{reg="engine",rule="general-1",le="5e-06"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 3e-06`,
		`rabit_rule_eval_seconds_count{reg="engine",rule="general-1"} 2`,
		// Ratio family converts the ns encoding back to the raw margin:
		// a 0.25 margin lands in the ≤0.5 bucket.
		"# TYPE rabit_rule_margin_ratio histogram\n",
		`rabit_rule_margin_ratio_bucket{reg="engine",rule="general-1",le="0.5"} 1`,
		`rabit_rule_margin_ratio_sum{reg="engine",rule="general-1"} 0.25`,
		// Tenant-scoped SLO series.
		`rabit_slo_objective{slo="alert-latency",tenant="lab-a"} 0.99`,
		`rabit_slo_burn_rate{slo="alert-latency",tenant="lab-a",window="1m0s"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", text)
	}
	// The untraced 8µs observation's bucket must not carry an exemplar.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `le="1e-05"`) && strings.Contains(line, "rule_eval") && strings.Contains(line, "# {") {
			t.Errorf("exemplar on an untraced bucket: %q", line)
		}
	}
	if err := ValidateOpenMetrics([]byte(text)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, text)
	}
}

// Hostile, tenant-authored rule IDs must escape into legal label values
// and survive the validator's unescape round trip.
func TestWriteOpenMetricsHostileLabels(t *testing.T) {
	hostile := "rule \"A\"\\east\nwing"
	r := NewRegistry("lab \"A\"\\east\nwing")
	r.CounterFamily(FamilyRuleFires, LabelRule).Counter(hostile).Inc()
	r.HistogramFamily(FamilyRuleEval, LabelRule).Histogram(hostile).
		ObserveExemplar(time.Microsecond, "trace\"with\\hostile\nbytes")

	var sb strings.Builder
	WriteOpenMetrics(&sb, []Snapshot{r.Snapshot()}, nil)
	text := sb.String()
	if err := ValidateOpenMetrics([]byte(text)); err != nil {
		t.Fatalf("hostile labels break the grammar: %v\n%s", err, text)
	}
	want := `rule="rule \"A\"\\east\nwing"`
	if !strings.Contains(text, want) {
		t.Errorf("exposition missing escaped label %s\n%s", want, text)
	}
	if strings.Contains(text, "\nwing") {
		t.Errorf("raw newline leaked into the exposition:\n%s", text)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"missing EOF",
			"# TYPE a counter\na_total 1\n",
			"missing # EOF"},
		{"content after EOF",
			"# EOF\na 1\n",
			"content after # EOF"},
		{"undeclared family",
			"orphan_total 1\n# EOF\n",
			"no declared family"},
		{"counter sample without _total",
			"# TYPE a counter\na 1\n# EOF\n",
			"counter family"},
		{"gauge sample with suffix",
			"# TYPE g gauge\ng_total 1\n# EOF\n",
			"cannot have sample"},
		{"bucket without le",
			"# TYPE h histogram\nh_bucket{x=\"1\"} 1\n# EOF\n",
			"no le label"},
		{"bucket with unparsable le",
			"# TYPE h histogram\nh_bucket{le=\"wat\"} 1\n# EOF\n",
			"invalid le value"},
		{"exemplar on a gauge",
			"# TYPE g gauge\ng 1 # {trace_id=\"t\"} 1\n# EOF\n",
			"exemplar on a sample"},
		{"mid-document empty line",
			"# TYPE a counter\n\na_total 1\n# EOF\n",
			"empty line"},
		{"duplicate label",
			"# TYPE g gauge\ng{x=\"1\",x=\"2\"} 1\n# EOF\n",
			"duplicate label"},
		{"duplicate TYPE",
			"# TYPE g gauge\n# TYPE g counter\n# EOF\n",
			"duplicate TYPE"},
		{"unknown type",
			"# TYPE g blob\n# EOF\n",
			"unknown metric type"},
		{"unescaped value",
			"# TYPE g gauge\ng{x=\"a\"b\"} 1\n# EOF\n",
			"label"},
		{"bad escape",
			"# TYPE g gauge\ng{x=\"a\\t\"} 1\n# EOF\n",
			"invalid escape"},
		{"non-numeric value",
			"# TYPE g gauge\ng wat\n# EOF\n",
			"invalid sample value"},
		{"freeform comment",
			"# scraped at noon\n# EOF\n",
			"metadata"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateOpenMetrics([]byte(tc.doc))
			if err == nil {
				t.Fatalf("validator accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The +Inf bucket and exemplars on _bucket/_total are legal.
	ok := "# TYPE h histogram\n" +
		"h_bucket{le=\"+Inf\"} 1 # {trace_id=\"t\"} 0.5\n" +
		"h_sum 0.5\nh_count 1\n" +
		"# TYPE c counter\nc_total 1 # {trace_id=\"t\"} 1\n" +
		"# EOF\n"
	if err := ValidateOpenMetrics([]byte(ok)); err != nil {
		t.Fatalf("validator rejected a legal document: %v", err)
	}
}

func TestReadBuild(t *testing.T) {
	b := ReadBuild()
	if b.Go == "" {
		t.Fatal("build info missing the Go version")
	}
	if s := b.String(); s == "" {
		t.Fatal("BuildInfo.String() empty")
	}
	if again := ReadBuild(); again != b {
		t.Fatal("ReadBuild is not stable across calls")
	}
}
