package obs

import (
	"fmt"
	"net/http"
	"sync"
)

// Group is one introspection domain: a scrape group of registries, a
// health group of components, and an SLO group, plus the HTTP handler
// and server that expose them. The package-level Register/Serve/…
// functions are thin shims over DefaultGroup — the single-system CLIs
// keep their process-wide endpoint — while multi-system processes (the
// gateway's per-lab engine pool) build one Group per service so two
// Systems never collide on scrape aliases, health components, or mux
// state, and closing one service's group cannot disturb another's.
type Group struct {
	mu      sync.RWMutex
	entries []groupEntry
	regSeq  map[string]int

	healthMu  sync.Mutex
	healthSeq map[string]int
	healthy   []*HealthReg

	sloMu    sync.Mutex
	sloSeq   map[string]int
	sloGroup []*SLOReg
}

// NewGroup builds an empty introspection group.
func NewGroup() *Group {
	return &Group{
		regSeq:    map[string]int{},
		healthSeq: map[string]int{},
		sloSeq:    map[string]int{},
	}
}

// DefaultGroup is the process-wide group behind the package-level shims
// — the group the CLIs' -metrics endpoint serves.
var DefaultGroup = NewGroup()

// groupEntry pairs a registry with its scrape alias. Two systems built
// on the same lab share a registry name; exporting both under one name
// would emit duplicate series that scrape tooling rejects, so the group
// disambiguates every registration after the first with a "#N" suffix.
type groupEntry struct {
	reg   *Registry
	alias string
}

// Register adds a registry to the group's scrape set. Nil-safe.
func (g *Group) Register(r *Registry) {
	if r == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.regSeq[r.name]++
	alias := r.name
	if n := g.regSeq[r.name]; n > 1 {
		alias = fmt.Sprintf("%s#%d", alias, n)
	}
	g.entries = append(g.entries, groupEntry{reg: r, alias: alias})
}

// Unregister removes a registry from the scrape set.
func (g *Group) Unregister(r *Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, e := range g.entries {
		if e.reg == r {
			g.entries = append(g.entries[:i], g.entries[i+1:]...)
			return
		}
	}
}

// Snapshots captures every registered registry under its scrape alias.
func (g *Group) Snapshots() []Snapshot {
	g.mu.RLock()
	entries := make([]groupEntry, len(g.entries))
	copy(entries, g.entries)
	g.mu.RUnlock()
	out := make([]Snapshot, 0, len(entries))
	for _, e := range entries {
		s := e.reg.Snapshot()
		s.Name = e.alias
		out = append(out, s)
	}
	return out
}

// RegisterHealth adds a named component to the group's health set and
// returns its registration handle.
func (g *Group) RegisterHealth(name string, fn HealthFunc) *HealthReg {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	g.healthSeq[name]++
	alias := name
	if n := g.healthSeq[name]; n > 1 {
		alias = fmt.Sprintf("%s#%d", alias, n)
	}
	h := &HealthReg{g: g, alias: alias, fn: fn}
	g.healthy = append(g.healthy, h)
	return h
}

// CheckHealth polls every registered component and reports overall
// liveness and readiness plus the per-component map.
func (g *Group) CheckHealth() (ok, ready bool, components map[string]Health) {
	g.healthMu.Lock()
	regs := make([]*HealthReg, len(g.healthy))
	copy(regs, g.healthy)
	g.healthMu.Unlock()
	ok, ready = true, true
	components = make(map[string]Health, len(regs))
	for _, r := range regs {
		h := r.fn()
		components[r.alias] = h
		ok = ok && h.OK
		ready = ready && h.Ready
	}
	return ok, ready, components
}

// RegisterSLO adds an SLO to the group (nil-safe).
func (g *Group) RegisterSLO(s *SLO) *SLOReg { return g.RegisterSLOTenant(s, "") }

// RegisterSLOTenant adds an SLO to the group scoped to a lab tenant:
// the snapshot carries the tenant, which the Prometheus exposition
// renders as a tenant label. Name aliasing is per (name, tenant) — two
// tenants registering "check_overhead" stay distinct series through
// the label, not through a "#N" suffix. Nil-safe.
func (g *Group) RegisterSLOTenant(s *SLO, tenant string) *SLOReg {
	if s == nil {
		return nil
	}
	g.sloMu.Lock()
	defer g.sloMu.Unlock()
	seqKey := s.name + "\x00" + tenant
	g.sloSeq[seqKey]++
	alias := s.name
	if n := g.sloSeq[seqKey]; n > 1 {
		alias = fmt.Sprintf("%s#%d", alias, n)
	}
	r := &SLOReg{g: g, slo: s, alias: alias, tenant: tenant}
	g.sloGroup = append(g.sloGroup, r)
	return r
}

// SLOSnapshots captures every registered SLO under its alias.
func (g *Group) SLOSnapshots() []SLOSnapshot {
	g.sloMu.Lock()
	regs := make([]*SLOReg, len(g.sloGroup))
	copy(regs, g.sloGroup)
	g.sloMu.Unlock()
	out := make([]SLOSnapshot, 0, len(regs))
	for _, r := range regs {
		snap := r.slo.Snapshot()
		snap.Name = r.alias
		snap.Tenant = r.tenant
		out = append(out, snap)
	}
	return out
}

// healthzHandler is liveness: 200 while every component reports OK,
// 503 otherwise. With no components registered it reports 200 — an
// idle process is alive.
func (g *Group) healthzHandler(w http.ResponseWriter, _ *http.Request) {
	ok, _, components := g.CheckHealth()
	writeHealthJSON(w, ok, "ok", "unhealthy", components)
}

// readyzHandler is readiness: 200 while every component is ready to
// take work, 503 once any has drained, stopped, or failed.
func (g *Group) readyzHandler(w http.ResponseWriter, _ *http.Request) {
	_, ready, components := g.CheckHealth()
	writeHealthJSON(w, ready, "ready", "unready", components)
}
