package obs

import (
	"encoding/json"
	"net/http"
)

// Health is one component's report. OK is liveness (the component is
// not broken); Ready is readiness (it is willing to take work — a
// drained engine is alive but not ready). Detail is free-form context.
type Health struct {
	OK     bool   `json:"ok"`
	Ready  bool   `json:"ready"`
	Detail string `json:"detail,omitempty"`
}

// HealthFunc reports a component's current health. It is called on
// every /healthz–/readyz request and must be cheap and safe for
// concurrent use.
type HealthFunc func() Health

// HealthReg is a registered health component; Unregister removes it
// from the group that issued it. Like the scrape group, repeated names
// within a group are disambiguated with a "#N" suffix so several
// systems on the same lab stay distinguishable.
type HealthReg struct {
	g     *Group
	alias string
	fn    HealthFunc
}

// RegisterHealth adds a named component to the default group's health
// set and returns its registration handle.
func RegisterHealth(name string, fn HealthFunc) *HealthReg {
	return DefaultGroup.RegisterHealth(name, fn)
}

// Unregister removes the component from its health group. Nil-safe;
// idempotent.
func (h *HealthReg) Unregister() {
	if h == nil {
		return
	}
	h.g.healthMu.Lock()
	defer h.g.healthMu.Unlock()
	for i, g := range h.g.healthy {
		if g == h {
			h.g.healthy = append(h.g.healthy[:i], h.g.healthy[i+1:]...)
			return
		}
	}
}

// HealthReport aggregates every registered component.
type HealthReport struct {
	// Status is "ok" or "unhealthy" (for /readyz: "ready"/"unready").
	Status     string            `json:"status"`
	Components map[string]Health `json:"components,omitempty"`
}

// CheckHealth polls every component in the default group.
func CheckHealth() (ok, ready bool, components map[string]Health) {
	return DefaultGroup.CheckHealth()
}

// writeHealthJSON renders a health report with the right status code
// (encoding/json already orders map keys, so the body is stable).
func writeHealthJSON(w http.ResponseWriter, pass bool, passStatus, failStatus string, components map[string]Health) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	status := passStatus
	if !pass {
		status = failStatus
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(HealthReport{Status: status, Components: components})
}
