package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Health is one component's report. OK is liveness (the component is
// not broken); Ready is readiness (it is willing to take work — a
// drained engine is alive but not ready). Detail is free-form context.
type Health struct {
	OK     bool   `json:"ok"`
	Ready  bool   `json:"ready"`
	Detail string `json:"detail,omitempty"`
}

// HealthFunc reports a component's current health. It is called on
// every /healthz–/readyz request and must be cheap and safe for
// concurrent use.
type HealthFunc func() Health

// HealthReg is a registered health component; Unregister removes it.
type HealthReg struct {
	alias string
	fn    HealthFunc
}

// The process-wide health group, aggregated by /healthz and /readyz.
// Like the scrape group, repeated names are disambiguated with a "#N"
// suffix so several systems on the same lab stay distinguishable.
var (
	healthMu  sync.Mutex
	healthSeq = map[string]int{}
	healthy   []*HealthReg
)

// RegisterHealth adds a named component to the process-wide health
// group and returns its registration handle.
func RegisterHealth(name string, fn HealthFunc) *HealthReg {
	healthMu.Lock()
	defer healthMu.Unlock()
	healthSeq[name]++
	alias := name
	if n := healthSeq[name]; n > 1 {
		alias = fmt.Sprintf("%s#%d", alias, n)
	}
	h := &HealthReg{alias: alias, fn: fn}
	healthy = append(healthy, h)
	return h
}

// Unregister removes the component from the health group. Nil-safe;
// idempotent.
func (h *HealthReg) Unregister() {
	if h == nil {
		return
	}
	healthMu.Lock()
	defer healthMu.Unlock()
	for i, g := range healthy {
		if g == h {
			healthy = append(healthy[:i], healthy[i+1:]...)
			return
		}
	}
}

// HealthReport aggregates every registered component.
type HealthReport struct {
	// Status is "ok" or "unhealthy" (for /readyz: "ready"/"unready").
	Status     string            `json:"status"`
	Components map[string]Health `json:"components,omitempty"`
}

// CheckHealth polls every registered component and reports overall
// liveness and readiness plus the per-component map.
func CheckHealth() (ok, ready bool, components map[string]Health) {
	healthMu.Lock()
	regs := make([]*HealthReg, len(healthy))
	copy(regs, healthy)
	healthMu.Unlock()
	ok, ready = true, true
	components = make(map[string]Health, len(regs))
	for _, r := range regs {
		h := r.fn()
		components[r.alias] = h
		ok = ok && h.OK
		ready = ready && h.Ready
	}
	return ok, ready, components
}

// writeHealthJSON renders a health report with the right status code
// (encoding/json already orders map keys, so the body is stable).
func writeHealthJSON(w http.ResponseWriter, pass bool, passStatus, failStatus string, components map[string]Health) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	status := passStatus
	if !pass {
		status = failStatus
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(HealthReport{Status: status, Components: components})
}

// healthzHandler is liveness: 200 while every component reports OK,
// 503 otherwise. With no components registered it reports 200 — an
// idle process is alive.
func healthzHandler(w http.ResponseWriter, _ *http.Request) {
	ok, _, components := CheckHealth()
	writeHealthJSON(w, ok, "ok", "unhealthy", components)
}

// readyzHandler is readiness: 200 while every component is ready to
// take work, 503 once any has drained, stopped, or failed.
func readyzHandler(w http.ResponseWriter, _ *http.Request) {
	_, ready, components := CheckHealth()
	writeHealthJSON(w, ready, "ready", "unready", components)
}
