package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// Build provenance (ISSUE 10): every artifact a RABIT deployment emits
// — bench envelopes, incident bundles, the /buildz endpoint, -version
// output — carries the exact build that produced it, read once from the
// binary's embedded module info. A regression bisect or an incident
// post-mortem then starts from "which commit was this?" already
// answered.

// BuildInfo identifies the running binary.
type BuildInfo struct {
	// Main is the main module path (e.g. "rabit").
	Main string `json:"main,omitempty"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS revision the binary was built from.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339).
	Time string `json:"time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain version.
	Go string `json:"go"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuild returns the binary's build provenance, computed once.
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Go: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Main = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the provenance for -version flags:
// "rabit (devel) rev 5cae36b… (dirty) go1.24.1".
func (b BuildInfo) String() string {
	out := b.Main
	if out == "" {
		out = "rabit"
	}
	if b.Version != "" {
		out += " " + b.Version
	}
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
	}
	if b.Dirty {
		out += " (dirty)"
	}
	return out + " " + b.Go
}

// buildzHandler serves the provenance as JSON on /buildz.
func buildzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ReadBuild())
}
