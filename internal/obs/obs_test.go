package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("commands")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("commands") != c {
		t.Fatal("Counter must return the same instance per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(time.Millisecond)
	r.Emit(Event{Kind: "noop"})
	r.Reset()
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
	sp := r.StartSpan("z")
	if d := sp.End(); d < 0 {
		t.Fatalf("nil span duration %v", d)
	}
	var zero Span
	if zero.End() != 0 {
		t.Fatal("zero span must end at 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations at ~3µs, 10 at ~300µs, 1 at 30ms.
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Microsecond)
	}
	h.Observe(30 * time.Millisecond)
	if h.Count() != 111 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 30*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if p50 := h.P50(); p50 < 2*time.Microsecond || p50 > 5*time.Microsecond {
		t.Errorf("p50 = %v, want within the 2–5µs bucket", p50)
	}
	if p99 := h.P99(); p99 < 200*time.Microsecond || p99 > 500*time.Microsecond {
		t.Errorf("p99 = %v, want within the 200–500µs bucket", p99)
	}
	if mean := h.Mean(); mean <= 0 {
		t.Errorf("mean = %v", mean)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.P95() != 0 {
		t.Fatal("Reset left observations behind")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(20 * time.Second) // beyond the last bound
	if h.P50() != 20*time.Second {
		t.Fatalf("overflow quantile = %v, want the max", h.P50())
	}
	s := h.snapshot("x")
	if len(s.Buckets) != 1 || s.Buckets[0].UpperNS != 0 {
		t.Fatalf("overflow bucket snapshot wrong: %+v", s.Buckets)
	}
}

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := NewRegistry("test")
	sp := r.StartSpan("stage")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	h := r.Histogram("stage")
	if h.Count() != 1 || h.Max() < 2*time.Millisecond {
		t.Fatalf("histogram did not record the span: count=%d max=%v", h.Count(), h.Max())
	}
	// Nested span: the outer span keeps timing across the inner one.
	outer := r.StartSpan("outer")
	inner := r.StartSpan("inner")
	inner.End()
	outer.End()
	if r.Histogram("outer").Count() != 1 || r.Histogram("inner").Count() != 1 {
		t.Fatal("nested spans must both record")
	}
}

func TestSnapshotLookup(t *testing.T) {
	r := NewRegistry("snap")
	r.Counter("a").Add(2)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(time.Microsecond)
	s := r.Snapshot()
	if s.Name != "snap" {
		t.Fatalf("name = %q", s.Name)
	}
	if s.Counter("a") != 2 || s.Counter("missing") != 0 {
		t.Fatalf("counter lookup wrong: %+v", s.Counters)
	}
	hs, ok := s.Histogram("h")
	if !ok || hs.Count != 1 {
		t.Fatalf("histogram lookup wrong: %+v ok=%v", hs, ok)
	}
}

// TestRegistryConcurrency hammers every instrument type from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry("race")
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				r.Counter("own-" + string(rune('a'+w))).Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				sp := r.StartSpan("stage")
				r.Histogram("direct").Observe(time.Duration(i) * time.Microsecond)
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("stage").Count(); got != workers*iters {
		t.Fatalf("span histogram count = %d, want %d", got, workers*iters)
	}
	if r.Gauge("depth").Value() != 0 {
		t.Fatalf("gauge drifted: %d", r.Gauge("depth").Value())
	}
}

// TestConcurrentEmit races event emission against sink swaps.
func TestConcurrentEmit(t *testing.T) {
	r := NewRegistry("emit")
	mem := &MemorySink{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.Emit(Event{Kind: "command", Seq: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.SetSink(mem)
		}
	}()
	wg.Wait()
	for _, ev := range mem.Events() {
		if ev.Registry != "emit" {
			t.Fatalf("event missing registry label: %+v", ev)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRegistry("lab")
	r.SetSink(sink)
	r.Emit(Event{Kind: "command", Name: "move_robot", Device: "viperx", Outcome: "ok", Seq: 1, DurNS: 1500})
	r.Emit(Event{Kind: "alert", Name: "Invalid Command!", Detail: "rule general-1"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("round trip lost events: %d", len(evs))
	}
	if evs[0].Registry != "lab" || evs[0].Device != "viperx" || evs[0].DurNS != 1500 {
		t.Fatalf("event 0 wrong: %+v", evs[0])
	}
	if evs[1].Kind != "alert" || evs[1].Detail != "rule general-1" {
		t.Fatalf("event 1 wrong: %+v", evs[1])
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFanoutSink(t *testing.T) {
	a, b := &MemorySink{}, &MemorySink{}
	FanoutSink{a, nil, b}.Emit(Event{Kind: "x"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("fanout did not reach every sink")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry("httptest-reg")
	Register(r)
	defer Unregister(r)
	r.Counter("commands").Add(3)
	r.Histogram("intercept").Observe(5 * time.Microsecond)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["rabit"]; !ok {
		t.Fatal("/debug/vars missing the rabit snapshot tree")
	}
	var snaps []Snapshot
	if err := json.Unmarshal(decoded["rabit"], &snaps); err != nil {
		t.Fatalf("rabit expvar not a snapshot list: %v", err)
	}
	found := false
	for _, s := range snaps {
		if s.Name == "httptest-reg" && s.Counter("commands") == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered registry absent from /debug/vars: %+v", snaps)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `rabit_commands{reg="httptest-reg"} 3`) {
		t.Fatalf("/metrics missing counter line:\n%s", metrics)
	}
	if !strings.Contains(metrics, `rabit_intercept_count{reg="httptest-reg"} 1`) {
		t.Fatalf("/metrics missing histogram count:\n%s", metrics)
	}

	if pprofIdx := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}
}

func TestRegisterDisambiguatesDuplicateNames(t *testing.T) {
	a, b := NewRegistry("dup-reg"), NewRegistry("dup-reg")
	a.Counter("commands").Add(1)
	b.Counter("commands").Add(2)
	Register(a)
	Register(b)
	defer Unregister(a)
	defer Unregister(b)

	byName := map[string]int64{}
	for _, s := range Snapshots() {
		if strings.HasPrefix(s.Name, "dup-reg") {
			byName[s.Name] = s.Counter("commands")
		}
	}
	// Two same-named registries must scrape under two distinct aliases
	// (exact #N suffixes depend on how many this process has ever
	// registered), with neither's data lost or merged.
	if len(byName) != 2 {
		t.Fatalf("duplicate registrations collapsed: %v", byName)
	}
	seen := map[int64]bool{}
	for _, v := range byName {
		seen[v] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("aliased registrations lost data: %v", byName)
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics endpoint: %s", resp.Status)
	}
}

func TestServeSeesLateRegisteredRoutes(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// CLI modes mount auxiliary routes after the flag-driven server is
	// already listening (rabiteval registers /campaign inside the
	// campaign mode). The listener must resolve routes per request, not
	// from a mux snapshotted at Serve time.
	RegisterHTTPHandler("/late-route", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "late ok")
	}))
	resp, err := http.Get("http://" + srv.Addr + "/late-route")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "late ok" {
		t.Fatalf("late-registered route: %s %q", resp.Status, body)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry("bench")
	c := r.Counter("commands")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRegistry("bench")
	h := r.Histogram("stage")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}

func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry("bench")
	c := r.Counter("commands")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
