package workflow

import "time"

// ScreeningSteps is a crystallization-screening workflow for the Hein
// production deck: dose solid into a vial, add anti-solvent, shake on the
// thermoshaker, cap, align the centrifuge rotor, spin down, and return
// the vial. It exercises the full device roster — including the safe
// centrifugation discipline that Table IV's custom rules encode (solid +
// liquid present, red dot North, stopper on).
func ScreeningSteps() []Step {
	return []Step{
		{Name: "home", Run: func(s *Session) error {
			return s.SemanticArm("ur3e").GoHome()
		}},
		{Name: "open-dd", Run: func(s *Session) error {
			return s.Device("dosing_device").SetDoor(true)
		}},
		{Name: "load-dd", Run: func(s *Session) error {
			a := s.SemanticArm("ur3e")
			if err := a.PickUpVial("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
				return err
			}
			if err := a.MoveToLocation("dd_approach"); err != nil {
				return err
			}
			return a.DropVial("dd_safe_height", "dd_pickup", "vial_1")
		}},
		{Name: "clear-dd", Run: func(s *Session) error {
			a := s.SemanticArm("ur3e")
			if err := a.MoveToLocation("dd_approach"); err != nil {
				return err
			}
			return a.GoHome()
		}},
		{Name: "close-dd", Run: func(s *Session) error {
			return s.Device("dosing_device").SetDoor(false)
		}},
		{Name: "dose", Run: func(s *Session) error {
			dd := s.Device("dosing_device")
			if err := dd.RunAction(3*time.Second, 6); err != nil {
				return err
			}
			return dd.Stop()
		}},
		{Name: "retrieve", Run: func(s *Session) error {
			dd := s.Device("dosing_device")
			if err := dd.SetDoor(true); err != nil {
				return err
			}
			a := s.SemanticArm("ur3e")
			if err := a.MoveToLocation("dd_approach"); err != nil {
				return err
			}
			if err := a.PickUpVial("dd_safe_height", "dd_pickup", "vial_1"); err != nil {
				return err
			}
			if err := a.MoveToLocation("dd_approach"); err != nil {
				return err
			}
			return dd.SetDoor(false)
		}},
		{Name: "to-shaker", Run: func(s *Session) error {
			a := s.SemanticArm("ur3e")
			// Route via the home pose: swinging directly from the dosing
			// device's doorway to the shaker sweeps the elbow through
			// the device's front.
			if err := a.GoHome(); err != nil {
				return err
			}
			return a.DropVial("ts_safe", "ts_place", "vial_1")
		}},
		{Name: "clear-shaker", Run: func(s *Session) error {
			return s.SemanticArm("ur3e").GoHome()
		}},
		{Name: "antisolvent", Run: func(s *Session) error {
			// Order of addition: solid first (custom rule 1 holds).
			return s.Device("pump").DoseLiquid("vial_1", 3)
		}},
		{Name: "shake", Run: func(s *Session) error {
			ts := s.Device("thermoshaker")
			if err := ts.SetValue(800); err != nil {
				return err
			}
			if err := ts.Start(90 * time.Second); err != nil {
				return err
			}
			return ts.Stop()
		}},
		{Name: "cap", Run: func(s *Session) error {
			// The stopper goes on before any centrifugation (custom rule 4).
			return s.Vial("vial_1").Cap()
		}},
		{Name: "open-cf", Run: func(s *Session) error {
			return s.Device("centrifuge").SetDoor(true)
		}},
		{Name: "load-cf", Run: func(s *Session) error {
			a := s.SemanticArm("ur3e")
			if err := a.PickUpVial("ts_safe", "ts_place", "vial_1"); err != nil {
				return err
			}
			return a.DropVial("cf_safe", "cf_slot", "vial_1")
		}},
		{Name: "clear-cf", Run: func(s *Session) error {
			return s.SemanticArm("ur3e").GoHome()
		}},
		{Name: "close-cf", Run: func(s *Session) error {
			return s.Device("centrifuge").SetDoor(false)
		}},
		{Name: "spin", Run: func(s *Session) error {
			cf := s.Device("centrifuge")
			if err := cf.SetValue(3500); err != nil {
				return err
			}
			if err := cf.Start(120 * time.Second); err != nil {
				return err
			}
			return cf.Stop()
		}},
		{Name: "unload-cf", Run: func(s *Session) error {
			cf := s.Device("centrifuge")
			if err := cf.SetDoor(true); err != nil {
				return err
			}
			a := s.SemanticArm("ur3e")
			if err := a.PickUpVial("cf_safe", "cf_slot", "vial_1"); err != nil {
				return err
			}
			if err := a.DropVial("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
				return err
			}
			return cf.SetDoor(false)
		}},
		{Name: "park", Run: func(s *Session) error {
			return s.SemanticArm("ur3e").GoHome()
		}},
	}
}
