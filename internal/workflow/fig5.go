package workflow

import "fmt"

// Step is one "line" of an experiment script: a named unit the bug study
// can delete, reorder, or replace — the naive programmer of Section IV
// "could easily change the arguments of commands, delete commands, or
// change the order of commands".
type Step struct {
	Name string
	Run  func(s *Session) error
}

// RunSteps executes a script. Execution stops at the first error (a RABIT
// alert surfaces as an error from the interceptor, exactly like the
// Python exception RATracer raises).
func RunSteps(s *Session, steps []Step) error {
	for _, st := range steps {
		if err := st.Run(s); err != nil {
			return fmt.Errorf("workflow: step %q: %w", st.Name, err)
		}
	}
	return nil
}

// DeleteStep returns the script without the named step (the "delete
// commands" mutation class).
func DeleteStep(steps []Step, name string) []Step {
	out := make([]Step, 0, len(steps))
	for _, st := range steps {
		if st.Name == name {
			continue
		}
		out = append(out, st)
	}
	return out
}

// InsertAfter returns the script with extra steps spliced in after the
// named step (the "add commands" mutation class).
func InsertAfter(steps []Step, name string, extra ...Step) []Step {
	out := make([]Step, 0, len(steps)+len(extra))
	for _, st := range steps {
		out = append(out, st)
		if st.Name == name {
			out = append(out, extra...)
		}
	}
	return out
}

// ReplaceStep swaps the named step for another (the "change arguments /
// reorder" mutation classes).
func ReplaceStep(steps []Step, name string, repl Step) []Step {
	out := make([]Step, 0, len(steps))
	for _, st := range steps {
		if st.Name == name {
			out = append(out, repl)
			continue
		}
		out = append(out, st)
	}
	return out
}

// StepNames lists the step names, for assertions and docs.
func StepNames(steps []Step) []string {
	out := make([]string, len(steps))
	for i, st := range steps {
		out[i] = st.Name
	}
	return out
}

// Fig5Workflow is the safe testbed workflow of Fig. 5, expressed as named
// steps over the testbed deck: ViperX ferries vial_1 from the grid into
// the dosing device, solid is dosed, the vial returns to the grid, ViperX
// parks and sleeps, and Ned2 finally collects the vial.
//
// The step names mirror the figure's line numbers where they matter to
// the bug study (e.g. "reopen-door" is Fig. 5 line 23, omitted by Bug A;
// "viperx-pick-grid" is line 15, omitted by Bug C).
func Fig5Workflow() []Step {
	return []Step{
		{Name: "ned2-sleep", Run: func(s *Session) error {
			// Deck quiesce: only one arm out of its sleep pose at a time.
			return s.Arm("ned2").GoSleep()
		}},
		{Name: "open-door", Run: func(s *Session) error {
			return s.Device("dosing_device").SetDoor(true)
		}},
		{Name: "decap-vial", Run: func(s *Session) error {
			return s.Vial("vial_1").Decap()
		}},
		{Name: "viperx-home", Run: func(s *Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "viperx-pick-grid", Run: func(s *Session) error {
			return s.Arm("viperx").PickUpObject("grid_NW_safe", "grid_NW", "vial_1")
		}},
		{Name: "viperx-approach-dd", Run: func(s *Session) error {
			return s.Arm("viperx").GoToLocation("dd_approach")
		}},
		{Name: "viperx-place-dd", Run: func(s *Session) error {
			return s.Arm("viperx").PlaceObject("dd_safe_height", "dd_pickup", "vial_1")
		}},
		{Name: "viperx-exit-dd", Run: func(s *Session) error {
			return s.Arm("viperx").GoToLocation("dd_approach")
		}},
		{Name: "viperx-home-2", Run: func(s *Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "close-door", Run: func(s *Session) error {
			return s.Device("dosing_device").SetDoor(false)
		}},
		{Name: "run-dosing", Run: func(s *Session) error {
			return s.Device("dosing_device").RunAction(3e9, 5)
		}},
		{Name: "stop-dosing", Run: func(s *Session) error {
			return s.Device("dosing_device").Stop()
		}},
		{Name: "reopen-door", Run: func(s *Session) error {
			// Fig. 5 line 23 — Bug A omits this.
			return s.Device("dosing_device").SetDoor(true)
		}},
		{Name: "viperx-approach-dd-2", Run: func(s *Session) error {
			return s.Arm("viperx").GoToLocation("dd_approach")
		}},
		{Name: "viperx-pick-dd", Run: func(s *Session) error {
			return s.Arm("viperx").PickUpObject("dd_safe_height", "dd_pickup", "vial_1")
		}},
		{Name: "viperx-exit-dd-2", Run: func(s *Session) error {
			return s.Arm("viperx").GoToLocation("dd_approach")
		}},
		{Name: "viperx-place-grid", Run: func(s *Session) error {
			return s.Arm("viperx").PlaceObject("grid_NW_safe", "grid_NW", "vial_1")
		}},
		{Name: "close-door-2", Run: func(s *Session) error {
			return s.Device("dosing_device").SetDoor(false)
		}},
		{Name: "viperx-home-3", Run: func(s *Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "viperx-sleep", Run: func(s *Session) error {
			return s.Arm("viperx").GoSleep()
		}},
		{Name: "ned2-pick-grid", Run: func(s *Session) error {
			return s.Arm("ned2").PickUpObject("grid_NW_safe", "grid_NW", "vial_1")
		}},
	}
}
