// Package workflow reproduces the lab's programming environment: the
// lightweight wrappers lab engineers write over device APIs (Fig. 1b of
// the paper), at both abstraction levels the paper deploys —
// production-style semantic actions (pick_object / place_object) and
// testbed-style raw gripper commands (open_gripper / close_gripper) —
// plus the canonical experiment scripts: the automated solubility
// workflow (Fig. 1b), the testbed workflow the 16-bug study mutates
// (Fig. 5), and a Berlinguette-style spray-coating workflow.
//
// Every wrapper call flows through the RATracer-style interceptor, which
// is where RABIT checks it.
package workflow

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/trace"
)

// ScriptLocations is the experiment script's own hard-coded location
// table — the workflow_utils dictionary of Fig. 6, mapping arm → location
// name → coordinates in that arm's frame. It deliberately lives outside
// RABIT's JSON configuration: the paper's Bug D edits this table, not the
// config, and RABIT only sees the resulting raw coordinates.
type ScriptLocations map[string]map[string]geom.Vec3

// Coord looks up one entry.
func (sl ScriptLocations) Coord(armID, loc string) (geom.Vec3, bool) {
	m, ok := sl[armID]
	if !ok {
		return geom.Vec3{}, false
	}
	p, ok := m[loc]
	return p, ok
}

// Set overrides one entry (the bug-injection edit of Fig. 6).
func (sl ScriptLocations) Set(armID, loc string, p geom.Vec3) {
	if sl[armID] == nil {
		sl[armID] = map[string]geom.Vec3{}
	}
	sl[armID][loc] = p
}

// Clone deep-copies the table, so a bug mutation never leaks into other
// runs.
func (sl ScriptLocations) Clone() ScriptLocations {
	out := make(ScriptLocations, len(sl))
	for arm, m := range sl {
		cm := make(map[string]geom.Vec3, len(m))
		for k, v := range m {
			cm[k] = v
		}
		out[arm] = cm
	}
	return out
}

// DefaultScriptLocations derives the script table from the lab
// configuration — the state of the utilities file before anyone edits it.
func DefaultScriptLocations(lab *config.Lab) ScriptLocations {
	out := ScriptLocations{}
	for _, armID := range lab.ArmIDs() {
		for _, ls := range lab.Spec.Locations {
			if p, ok := lab.LocationPos(armID, ls.Name); ok {
				out.Set(armID, ls.Name, p)
			}
		}
	}
	return out
}

// Session binds the interceptor, the lab configuration, and the script's
// own location table.
type Session struct {
	I    *trace.Interceptor
	Lab  *config.Lab
	Locs ScriptLocations
	// Measure reads a container's solubility (vision pipeline); set by
	// the environment harness.
	Measure func(objectID string) (float64, error)
}

// NewSession builds a session with the pristine script location table.
func NewSession(i *trace.Interceptor, lab *config.Lab) *Session {
	return &Session{I: i, Lab: lab, Locs: DefaultScriptLocations(lab)}
}

// moveCommand builds the motion command for a named location, sending the
// *script table's* raw coordinates — RABIT re-derives the location name
// itself by matching against its configuration.
func (s *Session) moveCommand(armID, loc string, pickObject string) (action.Command, error) {
	p, ok := s.Locs.Coord(armID, loc)
	if !ok {
		return action.Command{}, fmt.Errorf("workflow: arm %s has no coordinates for location %q", armID, loc)
	}
	return action.Command{Device: armID, Action: action.MoveRobot, Target: p, Object: pickObject}, nil
}

// Arm returns the testbed-style wrapper for an arm.
func (s *Session) Arm(id string) *Arm { return &Arm{s: s, id: id} }

// Arm is the testbed-level arm API (raw gripper commands).
type Arm struct {
	s  *Session
	id string
}

// ID returns the arm's device ID.
func (a *Arm) ID() string { return a.id }

// GoToLocation moves the tool centre point to a named location.
func (a *Arm) GoToLocation(loc string) error {
	cmd, err := a.s.moveCommand(a.id, loc, "")
	if err != nil {
		return err
	}
	return a.s.I.Do(cmd)
}

// GoToLocationForPick moves to a named location that is expected to be
// occupied by the object about to be grasped.
func (a *Arm) GoToLocationForPick(loc, objectID string) error {
	cmd, err := a.s.moveCommand(a.id, loc, objectID)
	if err != nil {
		return err
	}
	return a.s.I.Do(cmd)
}

// MovePose moves to raw coordinates in the arm's own frame — the
// ned2.move_pose(random_location) call of Fig. 5.
func (a *Arm) MovePose(p geom.Vec3) error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveRobot, Target: p})
}

// MovePoseRolled moves to raw coordinates with an explicit wrist roll.
func (a *Arm) MovePoseRolled(p geom.Vec3, roll float64) error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveRobot, Target: p, Roll: roll})
}

// GoHome parks the arm above the deck.
func (a *Arm) GoHome() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveHome})
}

// GoSleep folds the arm into its sleep pose.
func (a *Arm) GoSleep() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveSleep})
}

// OpenGripper / CloseGripper are the raw gripper commands.
func (a *Arm) OpenGripper() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.OpenGripper})
}

// CloseGripper closes the gripper.
func (a *Arm) CloseGripper() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.CloseGripper})
}

// PickUpObject is the testbed pick helper of Fig. 5
// (viperx_pick_up_object): open the gripper, hover at the safe height,
// descend onto the object, grasp, and lift back to the safe height.
func (a *Arm) PickUpObject(safeLoc, loc, objectID string) error {
	if err := a.OpenGripper(); err != nil {
		return err
	}
	if err := a.GoToLocation(safeLoc); err != nil {
		return err
	}
	if err := a.GoToLocationForPick(loc, objectID); err != nil {
		return err
	}
	if err := a.CloseGripper(); err != nil {
		return err
	}
	return a.GoToLocation(safeLoc)
}

// PlaceObject is the testbed place helper of Fig. 5
// (viperx_place_object(viperx, location, vial)): hover at the safe
// height, descend to the slot, release, and lift straight back up past
// the vial just released.
func (a *Arm) PlaceObject(safeLoc, loc, objectID string) error {
	if err := a.GoToLocation(safeLoc); err != nil {
		return err
	}
	// The descend declares the object being placed: the wrapper believes
	// it is holding objectID, so finding it (or intending to leave it) at
	// the slot is not an occupancy conflict.
	if err := a.GoToLocationForPick(loc, objectID); err != nil {
		return err
	}
	if err := a.OpenGripper(); err != nil {
		return err
	}
	return a.GoToLocationForPick(safeLoc, objectID)
}

// SemanticArm is the production-level arm API (Fig. 1b / Table II): its
// pick/place are single semantic commands RABIT can reason about.
type SemanticArm struct {
	s  *Session
	id string
}

// SemanticArm returns the production-style wrapper for an arm.
func (s *Session) SemanticArm(id string) *SemanticArm { return &SemanticArm{s: s, id: id} }

// ID returns the arm's device ID.
func (a *SemanticArm) ID() string { return a.id }

// MoveToLocation moves to a named location.
func (a *SemanticArm) MoveToLocation(loc string) error {
	cmd, err := a.s.moveCommand(a.id, loc, "")
	if err != nil {
		return err
	}
	return a.s.I.Do(cmd)
}

// PickUpVial descends onto and grasps a vial with a single semantic
// pick_object command (Table II row 2).
func (a *SemanticArm) PickUpVial(safeLoc, loc, objectID string) error {
	if err := a.MoveToLocation(safeLoc); err != nil {
		return err
	}
	cmd, err := a.s.moveCommand(a.id, loc, objectID)
	if err != nil {
		return err
	}
	if err := a.s.I.Do(cmd); err != nil {
		return err
	}
	if err := a.s.I.Do(action.Command{Device: a.id, Action: action.PickObject, Object: objectID}); err != nil {
		return err
	}
	return a.MoveToLocation(safeLoc)
}

// DropVial places the held vial at a location with a single semantic
// place_object command (Table II row 3).
func (a *SemanticArm) DropVial(safeLoc, loc, objectID string) error {
	if err := a.MoveToLocation(safeLoc); err != nil {
		return err
	}
	cmdDown, err := a.s.moveCommand(a.id, loc, objectID)
	if err != nil {
		return err
	}
	if err := a.s.I.Do(cmdDown); err != nil {
		return err
	}
	if err := a.s.I.Do(action.Command{Device: a.id, Action: action.PlaceObject, Object: objectID}); err != nil {
		return err
	}
	cmd, err := a.s.moveCommand(a.id, safeLoc, objectID)
	if err != nil {
		return err
	}
	return a.s.I.Do(cmd)
}

// GoHome parks the arm.
func (a *SemanticArm) GoHome() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveHome})
}

// GoSleep folds the arm.
func (a *SemanticArm) GoSleep() error {
	return a.s.I.Do(action.Command{Device: a.id, Action: action.MoveSleep})
}

// MoveConcurrently issues simultaneous raw moves for several arms — the
// concurrency that space multiplexing makes safe and that time
// multiplexing forbids. Each entry maps an arm ID to a target in that
// arm's own frame.
func (s *Session) MoveConcurrently(targets map[string]geom.Vec3) error {
	cmds := make([]action.Command, 0, len(targets))
	// Deterministic order for stable traces.
	ids := make([]string, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cmds = append(cmds, action.Command{Device: id, Action: action.MoveRobot, Target: targets[id]})
	}
	return s.I.DoConcurrent(cmds)
}

// Device returns the wrapper for a stationary device.
func (s *Session) Device(id string) *Device { return &Device{s: s, id: id} }

// Device is the automation-device API (dosing device, hotplate,
// thermoshaker, centrifuge, pump, decapper, …).
type Device struct {
	s  *Session
	id string
}

// ID returns the device ID.
func (d *Device) ID() string { return d.id }

// SetDoor opens or closes the device's sole door.
func (d *Device) SetDoor(open bool) error { return d.SetNamedDoor("", open) }

// SetNamedDoor operates one panel of a multi-door device.
func (d *Device) SetNamedDoor(door string, open bool) error {
	a := action.CloseDoor
	if open {
		a = action.OpenDoor
	}
	return d.s.I.Do(action.Command{Device: d.id, Action: a, Door: door})
}

// SetValue sets the device's action value (temperature, speed, rpm).
func (d *Device) SetValue(v float64) error {
	return d.s.I.Do(action.Command{Device: d.id, Action: action.SetActionValue, Value: v})
}

// Start begins the device's action for an optional process duration.
func (d *Device) Start(processTime time.Duration) error {
	return d.s.I.Do(action.Command{Device: d.id, Action: action.StartAction, Duration: processTime})
}

// Stop ends the device's action.
func (d *Device) Stop() error {
	return d.s.I.Do(action.Command{Device: d.id, Action: action.StopAction})
}

// RunAction is the dosing device's run_action(delay, quantity) of Fig. 5:
// start the mechanism, dispense, stop is issued separately by the script.
func (d *Device) RunAction(delay time.Duration, quantityMg float64) error {
	if err := d.Start(delay); err != nil {
		return err
	}
	return d.s.I.Do(action.Command{Device: d.id, Action: action.DoseSolid, Value: quantityMg})
}

// DoseLiquid pumps a volume into a container (syringe pump).
func (d *Device) DoseLiquid(objectID string, volumeML float64) error {
	return d.s.I.Do(action.Command{Device: d.id, Action: action.DoseLiquid, Object: objectID, Value: volumeML})
}

// Transfer moves liquid between containers through the pump.
func (d *Device) Transfer(from, to string, volumeML float64) error {
	return d.s.I.Do(action.Command{
		Device: d.id, Action: action.TransferSubstance,
		FromContainer: from, ToContainer: to, Value: volumeML,
	})
}

// Vial returns the wrapper for a container.
func (s *Session) Vial(id string) *Vial { return &Vial{s: s, id: id} }

// Vial is the container API.
type Vial struct {
	s  *Session
	id string
}

// ID returns the container ID.
func (v *Vial) ID() string { return v.id }

// Decap removes the stopper.
func (v *Vial) Decap() error {
	return v.s.I.Do(action.Command{Device: v.id, Action: action.DecapContainer, Object: v.id})
}

// Cap puts the stopper on.
func (v *Vial) Cap() error {
	return v.s.I.Do(action.Command{Device: v.id, Action: action.CapContainer, Object: v.id})
}
