package workflow

import "time"

// SpraySteps is a Berlinguette-style thin-film workflow (Section V-B of
// the paper): the central UR5e ferries a film substrate onto the spin
// coater, the solvent pump wets it with precursor, the coater spins, and
// the film cures on the spray-station hotplate under the ultrasonic
// nozzles. Exercises the generalization targets: a decapper and spin
// coater as action devices, a second dosing system, and a
// declaratively-configured custom rule (film must be loaded before the
// coater spins).
func SpraySteps() []Step {
	return []Step{
		{Name: "n9-sleep", Run: func(s *Session) error {
			return s.Arm("n9").GoSleep()
		}},
		{Name: "ur5e-home", Run: func(s *Session) error {
			return s.Arm("ur5e").GoHome()
		}},
		{Name: "decap-precursor", Run: func(s *Session) error {
			// The decapper uncaps the precursor vial before any liquid
			// handling (its action-device action: capping/uncapping).
			return s.Vial("precursor_vial").Decap()
		}},
		{Name: "pick-film", Run: func(s *Session) error {
			return s.Arm("ur5e").PickUpObject("rack_B_safe", "rack_B", "film_substrate")
		}},
		{Name: "load-coater", Run: func(s *Session) error {
			return s.Arm("ur5e").PlaceObject("coater_safe", "coater_chuck", "film_substrate")
		}},
		{Name: "ur5e-clear", Run: func(s *Session) error {
			return s.Arm("ur5e").GoHome()
		}},
		{Name: "wet-film", Run: func(s *Session) error {
			// The syringe pump draws solvent and deposits precursor onto
			// the film.
			return s.Device("solvent_pump").DoseLiquid("film_substrate", 0.2)
		}},
		{Name: "spin-coat", Run: func(s *Session) error {
			coater := s.Device("spin_coater")
			if err := coater.SetValue(3000); err != nil {
				return err
			}
			if err := coater.Start(30 * time.Second); err != nil {
				return err
			}
			return coater.Stop()
		}},
		{Name: "unload-coater", Run: func(s *Session) error {
			return s.Arm("ur5e").PickUpObject("coater_safe", "coater_chuck", "film_substrate")
		}},
		{Name: "to-spray-station", Run: func(s *Session) error {
			return s.Arm("ur5e").PlaceObject("spray_safe", "spray_place", "film_substrate")
		}},
		{Name: "ur5e-clear-2", Run: func(s *Session) error {
			return s.Arm("ur5e").GoHome()
		}},
		{Name: "cure", Run: func(s *Session) error {
			hp := s.Device("spray_hotplate")
			if err := hp.SetValue(180); err != nil {
				return err
			}
			if err := hp.Start(120 * time.Second); err != nil {
				return err
			}
			return hp.Stop()
		}},
		{Name: "spray", Run: func(s *Session) error {
			for _, id := range []string{"nozzle_a", "nozzle_b"} {
				n := s.Device(id)
				if err := n.Start(10 * time.Second); err != nil {
					return err
				}
				if err := n.Stop(); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "ur5e-sleep", Run: func(s *Session) error {
			return s.Arm("ur5e").GoSleep()
		}},
	}
}
