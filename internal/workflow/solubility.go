package workflow

import (
	"fmt"
	"time"
)

// SolubilityParams parameterise the automated solubility measurement of
// Fig. 1(b).
type SolubilityParams struct {
	// Vial is the container under test.
	Vial string
	// AmountMg is the solid dose (the script's own guard rejects > the
	// vial capacity — the explicit check on Fig. 1b lines 10–11).
	AmountMg float64
	// InitialSolventML is the first solvent addition.
	InitialSolventML float64
	// StepSolventML is added per iteration until dissolved.
	StepSolventML float64
	// Temperature is the stirring temperature (°C).
	Temperature float64
	// StirTime is the per-iteration stirring time.
	StirTime time.Duration
	// MaxIterations bounds the dissolution loop.
	MaxIterations int
}

// DefaultSolubilityParams returns the canonical run.
func DefaultSolubilityParams() SolubilityParams {
	return SolubilityParams{
		Vial:             "vial_1",
		AmountMg:         8,
		InitialSolventML: 1,
		StepSolventML:    1,
		Temperature:      60,
		StirTime:         60 * time.Second,
		MaxIterations:    8,
	}
}

// SolubilityResult is the experiment's outcome.
type SolubilityResult struct {
	// Dissolved reports whether the solid fully dissolved.
	Dissolved bool
	// SolventML is the total solvent used.
	SolventML float64
	// Iterations is how many dissolution cycles ran.
	Iterations int
	// FinalFraction is the last measured dissolved fraction.
	FinalFraction float64
}

// RunSolubility is the automated solubility experiment of Fig. 1(b),
// written against the production deck (UR3e + dosing device + syringe
// pump + hotplate): dose solid into the vial, add solvent, stir, image,
// and repeat until the solid dissolves.
func RunSolubility(s *Session, p SolubilityParams) (*SolubilityResult, error) {
	if p.AmountMg > 10 {
		// The programmers' own ad-hoc guard (Fig. 1b line 11); RABIT
		// works in tandem with such checks, not instead of them.
		return nil, fmt.Errorf("workflow: amount %.1f mg exceeds vial capacity", p.AmountMg)
	}
	arm := s.SemanticArm("ur3e")
	dd := s.Device("dosing_device")
	pump := s.Device("pump")
	hotplate := s.Device("hotplate")

	// dosing_device.doseSolid(amount) — Fig. 1b right side.
	if err := dd.SetDoor(true); err != nil {
		return nil, err
	}
	if err := arm.GoHome(); err != nil {
		return nil, err
	}
	if err := arm.PickUpVial("grid_NW_safe", "grid_NW", p.Vial); err != nil {
		return nil, err
	}
	if err := arm.MoveToLocation("dd_approach"); err != nil {
		return nil, err
	}
	if err := arm.DropVial("dd_safe_height", "dd_pickup", p.Vial); err != nil {
		return nil, err
	}
	if err := arm.MoveToLocation("dd_approach"); err != nil {
		return nil, err
	}
	if err := arm.GoHome(); err != nil {
		return nil, err
	}
	if err := dd.SetDoor(false); err != nil {
		return nil, err
	}
	if err := dd.RunAction(3*time.Second, p.AmountMg); err != nil {
		return nil, err
	}
	if err := dd.Stop(); err != nil {
		return nil, err
	}
	if err := dd.SetDoor(true); err != nil {
		return nil, err
	}
	if err := arm.MoveToLocation("dd_approach"); err != nil {
		return nil, err
	}
	if err := arm.PickUpVial("dd_safe_height", "dd_pickup", p.Vial); err != nil {
		return nil, err
	}
	if err := arm.MoveToLocation("dd_approach"); err != nil {
		return nil, err
	}
	if err := dd.SetDoor(false); err != nil {
		return nil, err
	}
	// Park the vial on the hotplate for the dissolution loop.
	if err := arm.DropVial("hp_safe", "hp_place", p.Vial); err != nil {
		return nil, err
	}
	if err := arm.GoHome(); err != nil {
		return nil, err
	}

	res := &SolubilityResult{}
	// syringe_pump.doseInitialSolvent(volume)
	if err := pump.DoseLiquid(p.Vial, p.InitialSolventML); err != nil {
		return nil, err
	}
	res.SolventML = p.InitialSolventML

	stir := func() error {
		if err := hotplate.SetValue(p.Temperature); err != nil {
			return err
		}
		if err := hotplate.Start(p.StirTime); err != nil {
			return err
		}
		return hotplate.Stop()
	}
	measure := func() (float64, error) {
		if s.Measure == nil {
			return 0, fmt.Errorf("workflow: no measurement pipeline attached")
		}
		return s.Measure(p.Vial)
	}

	if err := stir(); err != nil {
		return nil, err
	}
	frac, err := measure()
	if err != nil {
		return nil, err
	}
	res.FinalFraction = frac

	// while (not SolutionDissolved) — Fig. 1b lines 11–16.
	for iter := 0; frac < 0.999 && iter < p.MaxIterations; iter++ {
		if err := pump.DoseLiquid(p.Vial, p.StepSolventML); err != nil {
			return res, err
		}
		res.SolventML += p.StepSolventML
		if err := stir(); err != nil {
			return res, err
		}
		frac, err = measure()
		if err != nil {
			return res, err
		}
		res.FinalFraction = frac
		res.Iterations = iter + 1
	}
	res.Dissolved = frac >= 0.999
	return res, nil
}
