package workflow

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/trace"
)

// session builds an unprotected testbed session (workflow-level tests do
// not need the engine; the eval package covers the protected paths).
func session(t *testing.T) *Session {
	t.Helper()
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	e, err := env.Build(lab, env.StageTestbed, 1)
	if err != nil {
		t.Fatal(err)
	}
	i := trace.NewInterceptor(nil, e)
	s := NewSession(i, lab)
	s.Measure = e.MeasureSolubility
	return s
}

func TestScriptLocationsDerivedFromConfig(t *testing.T) {
	s := session(t)
	p, ok := s.Locs.Coord("viperx", "grid_NW")
	if !ok || !p.ApproxEqual(geom.V(0.32, 0.22, 0.16), 1e-9) {
		t.Errorf("viperx grid_NW = %v, %v", p, ok)
	}
	// Ned2's table carries its own frame.
	p, ok = s.Locs.Coord("ned2", "grid_NW")
	if !ok || !p.ApproxEqual(geom.V(-0.48, 0.22, 0.16), 1e-9) {
		t.Errorf("ned2 grid_NW = %v, %v", p, ok)
	}
	if _, ok := s.Locs.Coord("viperx", "ghost"); ok {
		t.Error("ghost location resolved")
	}
}

func TestScriptLocationsCloneIsolatesEdits(t *testing.T) {
	s := session(t)
	clone := s.Locs.Clone()
	clone.Set("viperx", "grid_NW", geom.V(9, 9, 9))
	if p, _ := s.Locs.Coord("viperx", "grid_NW"); p.X == 9 {
		t.Error("Clone shares storage")
	}
}

func TestWrappersEmitRawCoordinates(t *testing.T) {
	s := session(t)
	if err := s.Arm("viperx").GoToLocation("grid_NW_safe"); err != nil {
		t.Fatal(err)
	}
	recs := s.I.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	cmd := recs[0].Cmd
	if cmd.TargetName != "" {
		t.Errorf("wrappers must send raw coordinates, got name %q", cmd.TargetName)
	}
	if !cmd.Target.ApproxEqual(geom.V(0.32, 0.22, 0.23), 1e-9) {
		t.Errorf("target = %v", cmd.Target)
	}
}

func TestUnknownLocationFailsFast(t *testing.T) {
	s := session(t)
	if err := s.Arm("viperx").GoToLocation("nowhere"); err == nil {
		t.Fatal("unknown location accepted")
	}
	if err := s.Arm("viperx").PickUpObject("nowhere", "grid_NW", "vial_1"); err == nil {
		t.Fatal("pick with unknown safe location accepted")
	}
}

func TestPickAndPlaceHelpers(t *testing.T) {
	s := session(t)
	a := s.Arm("viperx")
	if err := a.PickUpObject("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
		t.Fatal(err)
	}
	// The emitted sequence is open, hover, descend, close, ascend.
	var labels []action.Label
	for _, r := range s.I.Records() {
		labels = append(labels, r.Cmd.Action)
	}
	want := []action.Label{action.OpenGripper, action.MoveRobot, action.MoveRobot, action.CloseGripper, action.MoveRobot}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("step %d = %s, want %s", i, labels[i], want[i])
		}
	}
	if err := a.PlaceObject("grid_NW_safe", "grid_NW", "vial_1"); err != nil {
		t.Fatal(err)
	}
}

func TestStepMutators(t *testing.T) {
	steps := Fig5Workflow()
	n := len(steps)

	deleted := DeleteStep(steps, "reopen-door")
	if len(deleted) != n-1 {
		t.Errorf("DeleteStep: %d steps, want %d", len(deleted), n-1)
	}
	for _, st := range deleted {
		if st.Name == "reopen-door" {
			t.Error("step not deleted")
		}
	}

	inserted := InsertAfter(steps, "run-dosing", Step{Name: "extra", Run: func(*Session) error { return nil }})
	if len(inserted) != n+1 {
		t.Errorf("InsertAfter: %d steps", len(inserted))
	}
	names := StepNames(inserted)
	for i, name := range names {
		if name == "run-dosing" && names[i+1] != "extra" {
			t.Error("insertion misplaced")
		}
	}

	replaced := ReplaceStep(steps, "decap-vial", Step{Name: "decap-vial-swapped", Run: func(*Session) error { return nil }})
	if len(replaced) != n {
		t.Errorf("ReplaceStep changed the length")
	}
	found := false
	for _, st := range replaced {
		if st.Name == "decap-vial-swapped" {
			found = true
		}
	}
	if !found {
		t.Error("replacement missing")
	}
}

func TestRunStepsStopsAtFirstError(t *testing.T) {
	s := session(t)
	boom := errors.New("boom")
	ran := []string{}
	steps := []Step{
		{Name: "one", Run: func(*Session) error { ran = append(ran, "one"); return nil }},
		{Name: "two", Run: func(*Session) error { ran = append(ran, "two"); return boom }},
		{Name: "three", Run: func(*Session) error { ran = append(ran, "three"); return nil }},
	}
	err := RunSteps(s, steps)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if !strings.Contains(err.Error(), `step "two"`) {
		t.Errorf("error should name the failing step: %v", err)
	}
	if len(ran) != 2 {
		t.Errorf("ran %v", ran)
	}
}

func TestFig5StepNamesStable(t *testing.T) {
	// The bug suite addresses steps by name; these anchors must exist.
	names := map[string]bool{}
	for _, n := range StepNames(Fig5Workflow()) {
		names[n] = true
	}
	for _, anchor := range []string{
		"ned2-sleep", "open-door", "viperx-pick-grid", "viperx-place-dd",
		"close-door", "run-dosing", "stop-dosing", "reopen-door",
		"viperx-pick-dd", "viperx-place-grid", "viperx-home-3",
		"viperx-sleep", "ned2-pick-grid", "viperx-exit-dd-2",
	} {
		if !names[anchor] {
			t.Errorf("anchor step %q missing from Fig5Workflow", anchor)
		}
	}
}

func TestSolubilityGuardRejectsOverdose(t *testing.T) {
	s := session(t)
	p := DefaultSolubilityParams()
	p.AmountMg = 11
	if _, err := RunSolubility(s, p); err == nil {
		t.Fatal("over-capacity dose accepted by the script guard")
	}
}

func TestMeasureWithoutPipelineFails(t *testing.T) {
	s := session(t)
	s.Measure = nil
	// The production solubility workflow needs the vision pipeline; on
	// the testbed deck it will fail earlier (no ur3e), which is fine —
	// just check the measure guard directly on a tiny script.
	_, err := RunSolubility(s, DefaultSolubilityParams())
	if err == nil {
		t.Fatal("solubility without a measurement pipeline should fail")
	}
}

func TestDeviceAndVialWrappers(t *testing.T) {
	s := session(t)
	dd := s.Device("dosing_device")
	if dd.ID() != "dosing_device" {
		t.Error("device ID wrong")
	}
	if err := dd.SetDoor(true); err != nil {
		t.Fatal(err)
	}
	if err := dd.SetDoor(false); err != nil {
		t.Fatal(err)
	}
	if err := dd.RunAction(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := dd.Stop(); err != nil {
		t.Fatal(err)
	}
	v := s.Vial("vial_1")
	if err := v.Cap(); err != nil {
		t.Fatal(err)
	}
	if err := v.Decap(); err != nil {
		t.Fatal(err)
	}
	hp := s.Device("hotplate")
	if err := hp.SetValue(100); err != nil {
		t.Fatal(err)
	}
	pump := s.Device("pump")
	if err := pump.Transfer("beaker", "vial_1", 2); err != nil {
		t.Fatal(err)
	}
	o := s.I.Records()
	if len(o) == 0 {
		t.Fatal("no commands recorded")
	}
}
