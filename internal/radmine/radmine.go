// Package radmine reproduces the rule-gathering methodology of Section
// II-A: the paper's authors mined the Robot Arm Dataset (RAD) — three
// months of command traces from the Hein Lab — for rules implied by
// command sequences ("device doors must be opened before a robot arm can
// enter them", "solids must be added to containers before liquids"), then
// reconciled them with researcher-stated safety criteria.
//
// The package synthesises a RAD-style corpus by replaying safe workflow
// variants through the traced lab substrate, then mines the traces for
// invariant patterns, each mapped to the Table III/IV rule it implies.
package radmine

import (
	"fmt"
	"sort"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/rules"
	"repro/internal/trace"
)

// Run is one experiment's command trace.
type Run struct {
	// Name identifies the workflow variant.
	Name string
	// Records is the command stream.
	Records []trace.Record
}

// MinedRule is one invariant the miner extracted from the corpus.
type MinedRule struct {
	// Pattern is a short slug for the invariant class.
	Pattern string
	// Description states the mined rule in prose.
	Description string
	// MapsTo is the Table III/IV rule the invariant corresponds to
	// ("general-1", "hein-1", …), or "" for lab-specific thresholds.
	MapsTo string
	// Support counts how many times the pattern was observed to hold.
	Support int
	// Threshold carries a learned numeric limit (rule 11 mining).
	Threshold float64
	// Device scopes device-specific rules.
	Device string
}

// String renders the mined rule.
func (m MinedRule) String() string {
	s := fmt.Sprintf("[%s] %s (support %d", m.Pattern, m.Description, m.Support)
	if m.MapsTo != "" {
		s += ", maps to " + m.MapsTo
	}
	s += ")"
	return s
}

// Miner extracts invariants from a corpus. It needs the lab configuration
// to re-derive named locations from the raw coordinates scripts send —
// the same normalisation RABIT itself performs.
type Miner struct {
	lab *config.Lab
	// MinSupport is the minimum number of positive observations before
	// an invariant is reported.
	MinSupport int
}

// NewMiner builds a miner.
func NewMiner(lab *config.Lab) *Miner {
	return &Miner{lab: lab, MinSupport: 3}
}

// Mine runs every pattern miner over the corpus and returns the
// invariants that held without exception.
func (m *Miner) Mine(corpus []Run) []MinedRule {
	var out []MinedRule
	out = append(out, m.mineDoorBeforeEntry(corpus)...)
	out = append(out, m.mineNoCloseWhileInside(corpus)...)
	out = append(out, m.mineGripperAlternation(corpus)...)
	out = append(out, m.mineDoseBehindClosedDoor(corpus)...)
	out = append(out, m.mineDoorStaysClosedWhileRunning(corpus)...)
	out = append(out, m.mineContainerBeforeAction(corpus)...)
	out = append(out, m.mineActionThresholds(corpus)...)
	out = append(out, m.mineSolidBeforeLiquid(corpus)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// normalized returns the commands of a run with named locations
// re-derived (only successful commands participate in mining; RAD's
// traces are predominantly successful production runs).
func (m *Miner) normalized(r Run) []action.Command {
	out := make([]action.Command, 0, len(r.Records))
	for _, rec := range r.Records {
		if rec.Outcome != "ok" {
			continue
		}
		out = append(out, rules.NormalizeCommand(m.lab, rec.Cmd))
	}
	return out
}

// mineDoorBeforeEntry: in every run, whenever an arm moves into a device,
// that device's door had been opened and not re-closed — general rule 1.
func (m *Miner) mineDoorBeforeEntry(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		doorOpen := map[string]bool{}
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.OpenDoor:
				doorOpen[c.Device] = true
			case action.CloseDoor:
				doorOpen[c.Device] = false
			case action.MoveRobotInside:
				if !doorOpen[c.InsideDevice] {
					return nil // counter-example: the invariant does not hold
				}
				support++
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "door-before-entry",
		Description: "device doors are always opened before a robot arm enters the device",
		MapsTo:      "general-1",
		Support:     support,
	}}
}

// mineNoCloseWhileInside: no close_door ever occurs while an arm is still
// inside that device — general rule 2.
func (m *Miner) mineNoCloseWhileInside(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		inside := map[string]string{} // arm → device it is inside of
		for _, c := range m.normalized(r) {
			switch {
			case c.Action == action.MoveRobotInside:
				inside[c.Device] = c.InsideDevice
			case c.Action.IsRobotMotion():
				delete(inside, c.Device)
			case c.Action == action.CloseDoor:
				for _, dev := range inside {
					if dev == c.Device {
						return nil
					}
				}
				support++
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "no-close-on-arm",
		Description: "device doors are never closed while a robot arm is inside the device",
		MapsTo:      "general-2",
		Support:     support,
	}}
}

// mineGripperAlternation: per arm, gripper closes and opens strictly
// alternate — a pick never happens on a full gripper (general rule 4).
func (m *Miner) mineGripperAlternation(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		closed := map[string]bool{}
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.CloseGripper, action.PickObject:
				if closed[c.Device] {
					return nil
				}
				closed[c.Device] = true
				support++
			case action.OpenGripper, action.PlaceObject:
				closed[c.Device] = false
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "gripper-alternation",
		Description: "a robot arm only picks up an object when it is not already holding one",
		MapsTo:      "general-4",
		Support:     support,
	}}
}

// mineDoseBehindClosedDoor: dosing always happens with the device door
// closed — general rule 9.
func (m *Miner) mineDoseBehindClosedDoor(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		doorOpen := map[string]bool{}
		hasDoor := map[string]bool{}
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.OpenDoor:
				doorOpen[c.Device] = true
				hasDoor[c.Device] = true
			case action.CloseDoor:
				doorOpen[c.Device] = false
				hasDoor[c.Device] = true
			case action.StartAction, action.DoseSolid:
				if hasDoor[c.Device] {
					if doorOpen[c.Device] {
						return nil
					}
					support++
				}
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "dose-behind-closed-door",
		Description: "devices with doors only dose or act while their doors are closed",
		MapsTo:      "general-9",
		Support:     support,
	}}
}

// mineDoorStaysClosedWhileRunning: doors are never opened between
// start_action and stop_action — general rule 10.
func (m *Miner) mineDoorStaysClosedWhileRunning(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		running := map[string]bool{}
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.StartAction:
				running[c.Device] = true
			case action.StopAction:
				running[c.Device] = false
			case action.OpenDoor:
				if running[c.Device] {
					return nil
				}
				support++
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "door-closed-while-running",
		Description: "device doors are never opened while the device is running",
		MapsTo:      "general-10",
		Support:     support,
	}}
}

// mineContainerBeforeAction: every start_action on a container-hosting
// action device is preceded (since the last pick from it) by a placement
// into that device — general rule 5.
func (m *Miner) mineContainerBeforeAction(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		hasContainer := map[string]bool{}
		armLoc := map[string]string{}
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.MoveRobot, action.MoveRobotInside:
				armLoc[c.Device] = c.TargetName
			case action.OpenGripper, action.PlaceObject:
				if owner, ok := m.lab.LocationOwner(armLoc[c.Device]); ok {
					hasContainer[owner] = true
				}
			case action.CloseGripper, action.PickObject:
				if owner, ok := m.lab.LocationOwner(armLoc[c.Device]); ok {
					hasContainer[owner] = false
				}
			case action.StartAction:
				t, ok := m.lab.DeviceType(c.Device)
				if !ok || t != rules.TypeActionDevice || !m.lab.HostsContainers(c.Device) {
					continue
				}
				if !hasContainer[c.Device] {
					return nil
				}
				support++
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "container-before-action",
		Description: "action devices only run with a container placed inside them",
		MapsTo:      "general-5",
		Support:     support,
	}}
}

// mineActionThresholds learns each action device's maximum observed
// setpoint — the data-derived seed for rule 11's thresholds.
func (m *Miner) mineActionThresholds(corpus []Run) []MinedRule {
	maxSeen := map[string]float64{}
	count := map[string]int{}
	for _, r := range corpus {
		for _, c := range m.normalized(r) {
			if c.Action == action.SetActionValue {
				if c.Value > maxSeen[c.Device] {
					maxSeen[c.Device] = c.Value
				}
				count[c.Device]++
			}
		}
	}
	var out []MinedRule
	devices := make([]string, 0, len(maxSeen))
	for d := range maxSeen {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		if count[d] < m.MinSupport {
			continue
		}
		out = append(out, MinedRule{
			Pattern:     "action-threshold",
			Description: fmt.Sprintf("%s action values never exceed %.0f", d, maxSeen[d]),
			MapsTo:      "general-11",
			Support:     count[d],
			Threshold:   maxSeen[d],
			Device:      d,
		})
	}
	return out
}

// mineSolidBeforeLiquid: liquid is only ever added to containers that
// already received solid — the Hein-specific custom rule the paper
// highlights as RAD-mined ("solids must be added to containers before
// liquids").
func (m *Miner) mineSolidBeforeLiquid(corpus []Run) []MinedRule {
	support := 0
	for _, r := range corpus {
		hasSolid := map[string]bool{}
		insideDD := map[string]string{} // dosing device → container inside
		armHeld := map[string]string{}
		armLoc := map[string]string{}
		pendingObj := map[string]string{} // object declared on the last descend
		for _, c := range m.normalized(r) {
			switch c.Action {
			case action.MoveRobot, action.MoveRobotInside:
				armLoc[c.Device] = c.TargetName
				pendingObj[c.Device] = c.Object
			case action.CloseGripper, action.PickObject:
				obj := c.Object
				if obj == "" {
					obj = pendingObj[c.Device]
				}
				if obj != "" {
					armHeld[c.Device] = obj
				}
			case action.OpenGripper, action.PlaceObject:
				obj := armHeld[c.Device]
				if obj == "" {
					continue
				}
				loc := armLoc[c.Device]
				if owner, ok := m.lab.LocationOwner(loc); ok && m.lab.LocationIsInside(loc) {
					insideDD[owner] = obj
				}
				armHeld[c.Device] = ""
			case action.DoseSolid:
				if obj := insideDD[c.Device]; obj != "" {
					hasSolid[obj] = true
				}
				if c.Object != "" {
					hasSolid[c.Object] = true
				}
			case action.DoseLiquid:
				if c.Object != "" {
					if !hasSolid[c.Object] {
						return nil
					}
					support++
				}
			}
		}
	}
	if support < m.MinSupport {
		return nil
	}
	return []MinedRule{{
		Pattern:     "solid-before-liquid",
		Description: "solids are always added to containers before liquids",
		MapsTo:      "hein-1",
		Support:     support,
	}}
}
