package radmine

import (
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/trace"
)

func corpusForTest(t *testing.T) ([]Run, *Miner) {
	t.Helper()
	corpus, lab, err := GenerateCorpus([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, NewMiner(lab)
}

// TestMinedRulesCoverGeneralRules reproduces Section II-A: mining the
// RAD-style corpus yields the door, gripper, dosing, and threshold rules
// the paper reports extracting, plus the solids-before-liquids custom
// rule it calls out explicitly.
func TestMinedRulesCoverGeneralRules(t *testing.T) {
	corpus, miner := corpusForTest(t)
	mined := miner.Mine(corpus)

	wantMapped := []string{"general-1", "general-2", "general-4", "general-5", "general-9", "general-10", "general-11", "hein-1"}
	got := map[string]bool{}
	for _, m := range mined {
		got[m.MapsTo] = true
		if m.Support < miner.MinSupport {
			t.Errorf("%s reported below min support", m.Pattern)
		}
	}
	for _, want := range wantMapped {
		if !got[want] {
			t.Errorf("mining did not recover %s; mined: %v", want, mined)
		}
	}
}

// TestMinedThresholdsMatchUsage asserts rule-11 threshold learning: the
// learned limits equal the corpus's maximum observed setpoints.
func TestMinedThresholdsMatchUsage(t *testing.T) {
	corpus, miner := corpusForTest(t)
	mined := miner.Mine(corpus)
	want := map[string]float64{"hotplate": 120, "centrifuge": 3000}
	found := 0
	for _, m := range mined {
		if m.Pattern != "action-threshold" {
			continue
		}
		if w, ok := want[m.Device]; ok {
			found++
			if m.Threshold != w {
				t.Errorf("%s learned threshold %.0f, want %.0f", m.Device, m.Threshold, w)
			}
		}
	}
	if found != len(want) {
		t.Errorf("thresholds found for %d devices, want %d", found, len(want))
	}
}

// TestCounterExampleKillsInvariant: a trace violating an invariant must
// suppress the corresponding mined rule.
func TestCounterExampleKillsInvariant(t *testing.T) {
	corpus, miner := corpusForTest(t)
	// Append a run where an arm enters a device whose door never opened.
	corpus = append(corpus, Run{
		Name: "counter-example",
		Records: []trace.Record{
			{Outcome: "ok", Cmd: action.Command{
				Device: "viperx", Action: action.MoveRobotInside,
				InsideDevice: "dosing_device", TargetName: "dd_pickup",
			}},
		},
	})
	for _, m := range miner.Mine(corpus) {
		if m.MapsTo == "general-1" {
			t.Errorf("door-before-entry survived a counter-example")
		}
	}
}

// TestCorpusShape sanity-checks the generator.
func TestCorpusShape(t *testing.T) {
	corpus, _ := corpusForTest(t)
	if len(corpus) != 12 { // 4 variants × 3 seeds
		t.Fatalf("corpus has %d runs, want 12", len(corpus))
	}
	total := 0
	for _, r := range corpus {
		if len(r.Records) == 0 {
			t.Errorf("run %s is empty", r.Name)
		}
		for _, rec := range r.Records {
			if rec.Outcome != "ok" {
				t.Errorf("run %s contains a non-ok record: %+v", r.Name, rec)
			}
		}
		total += len(r.Records)
	}
	if total < 300 {
		t.Errorf("corpus has only %d records; expected a few hundred", total)
	}
	if !strings.Contains(corpus[0].Name, "-1") {
		t.Errorf("run names should carry the seed: %s", corpus[0].Name)
	}
}
