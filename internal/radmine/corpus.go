package radmine

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/labs"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// GenerateCorpus synthesises a RAD-style trace corpus: several safe
// workflow variants, each replayed across seeds on the traced testbed
// substrate (no RABIT attached — RAD predates RABIT). It returns the runs
// and the lab the traces came from.
func GenerateCorpus(seeds []int64) ([]Run, *config.Lab, error) {
	variants := []struct {
		name  string
		steps func() []workflow.Step
	}{
		{"solubility-ferry", workflow.Fig5Workflow},
		{"hotplate-routine", hotplateRoutine},
		{"centrifuge-routine", centrifugeRoutine},
		{"dose-then-solvent", doseThenSolvent},
	}
	var corpus []Run
	var lab *config.Lab
	for _, seed := range seeds {
		for _, v := range variants {
			l, err := labs.Testbed()
			if err != nil {
				return nil, nil, err
			}
			lab = l
			e, err := env.Build(l, env.StageTestbed, seed)
			if err != nil {
				return nil, nil, err
			}
			i := trace.NewInterceptor(nil, e)
			s := workflow.NewSession(i, l)
			s.Measure = e.MeasureSolubility
			if err := workflow.RunSteps(s, v.steps()); err != nil {
				return nil, nil, fmt.Errorf("radmine: corpus %s (seed %d): %w", v.name, seed, err)
			}
			corpus = append(corpus, Run{
				Name:    fmt.Sprintf("%s-%d", v.name, seed),
				Records: i.Records(),
			})
		}
	}
	return corpus, lab, nil
}

// hotplateRoutine ferries the pre-loaded vial_3 onto the hotplate, stirs
// at a safe setpoint, and returns it.
func hotplateRoutine() []workflow.Step {
	return []workflow.Step{
		{Name: "ned2-sleep", Run: func(s *workflow.Session) error {
			return s.Arm("ned2").GoSleep()
		}},
		{Name: "pick-vial3", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PickUpObject("grid_NE_safe", "grid_NE", "vial_3")
		}},
		{Name: "to-hotplate", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PlaceObject("hp_safe", "hp_place", "vial_3")
		}},
		{Name: "clear", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "stir", Run: func(s *workflow.Session) error {
			hp := s.Device("hotplate")
			if err := hp.SetValue(120); err != nil {
				return err
			}
			if err := hp.Start(60 * time.Second); err != nil {
				return err
			}
			return hp.Stop()
		}},
		{Name: "retrieve", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PickUpObject("hp_safe", "hp_place", "vial_3")
		}},
		{Name: "return", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").PlaceObject("grid_NE_safe", "grid_NE", "vial_3")
		}},
		{Name: "park", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
	}
}

// centrifugeRoutine spins the capped, pre-loaded vial_3.
func centrifugeRoutine() []workflow.Step {
	return []workflow.Step{
		{Name: "ned2-sleep", Run: func(s *workflow.Session) error {
			return s.Arm("ned2").GoSleep()
		}},
		{Name: "cf-open", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(true)
		}},
		{Name: "load", Run: func(s *workflow.Session) error {
			a := s.Arm("viperx")
			if err := a.PickUpObject("grid_NE_safe", "grid_NE", "vial_3"); err != nil {
				return err
			}
			return a.PlaceObject("cf_safe", "cf_slot", "vial_3")
		}},
		{Name: "clear", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
		{Name: "cf-close", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(false)
		}},
		{Name: "spin", Run: func(s *workflow.Session) error {
			c := s.Device("centrifuge")
			if err := c.SetValue(3000); err != nil {
				return err
			}
			if err := c.Start(30 * time.Second); err != nil {
				return err
			}
			return c.Stop()
		}},
		{Name: "cf-reopen", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(true)
		}},
		{Name: "unload", Run: func(s *workflow.Session) error {
			a := s.Arm("viperx")
			if err := a.PickUpObject("cf_safe", "cf_slot", "vial_3"); err != nil {
				return err
			}
			return a.PlaceObject("grid_NE_safe", "grid_NE", "vial_3")
		}},
		{Name: "cf-shut", Run: func(s *workflow.Session) error {
			return s.Device("centrifuge").SetDoor(false)
		}},
		{Name: "park", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
	}
}

// doseThenSolvent runs the Fig. 5 ferry and then adds solvent to the
// freshly dosed vial — the solids-before-liquids discipline RAD exhibits.
func doseThenSolvent() []workflow.Step {
	steps := workflow.Fig5Workflow()
	// The ferry ends with Ned2 holding the dosed vial; have it put the
	// vial back before the pump tops it up.
	steps = append(steps,
		workflow.Step{Name: "ned2-return-vial", Run: func(s *workflow.Session) error {
			return s.Arm("ned2").PlaceObject("grid_NW_safe", "grid_NW", "vial_1")
		}},
		workflow.Step{Name: "solvent", Run: func(s *workflow.Session) error {
			return s.Device("pump").DoseLiquid("vial_1", 3)
		}},
	)
	return steps
}
