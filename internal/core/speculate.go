package core

import (
	"time"

	"repro/internal/action"
	"repro/internal/obs/recorder"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/trace"
)

// The motion fast path's engine half. The simulator's verdict cache is
// only sound under the deck-epoch contract: every commit that changes a
// deck-relevant model variable (state.Key.DeckRelevant — doors, held
// objects, arm-inside flags) must bump the simulator's epoch atomically
// with publishing the changed model. The engine is the model owner, so
// the contract lives here: commitModel detects deck-relevant changes in
// the very section that holds stateMu for the commit, and Hint runs the
// speculative lookahead that pre-validates the next queued motion against
// a (model, epoch) pairing captured under the same lock.

// deckEpocher is the simulator's epoch surface (see sim.Simulator).
type deckEpocher interface {
	DeckEpoch() uint64
	BumpDeckEpoch()
}

// speculator pre-solves and pre-validates a queued motion command.
type speculator interface {
	SpeculateAfter(prior, next action.Command, model state.Snapshot, epoch uint64) bool
}

// speculatorTagged is the flight-recorder extension of speculator: the
// cached verdict carries the speculation's correlation ID so the check
// that later consumes it can name the speculative span.
type speculatorTagged interface {
	SpeculateAfterTagged(prior, next action.Command, model state.Snapshot, epoch uint64, corr string) bool
}

var _ trace.Hinter = (*Engine)(nil)

// WithSpeculation toggles the speculative lookahead (on by default when
// the attached simulator supports it). Epoch bumping is not affected:
// it is a correctness obligation, not an optimisation.
func WithSpeculation(on bool) Option {
	return func(e *Engine) { e.specOff = !on }
}

// commitModel is the single commit section both pipelines share:
// S_current ← pending edits, then observed facts, under one stateMu
// acquisition. When the attached simulator keeps a deck epoch, any
// deck-relevant change bumps it inside the same critical section, so no
// trajectory check can ever pair the new model with the old epoch. The
// returned value is the deck epoch as of the commit (post-bump; 0
// without an epoch-keeping simulator) — the flight recorder stamps it
// next to the epoch the command validated under.
func (e *Engine) commitModel(pending *state.Overlay, observed state.Snapshot, cmd action.Command) uint64 {
	e.stateMu.Lock()
	deckChanged := false
	detect := e.epocher != nil
	if pending != nil {
		if detect {
			deckChanged = overlayChangesDeck(pending, e.model)
		}
		pending.ApplyTo(e.model)
	}
	for k, v := range observed {
		if detect && !deckChanged && k.DeckRelevant() {
			if cur, ok := e.model[k]; !ok || !cur.Equal(v) {
				deckChanged = true
			}
		}
		e.model[k] = v
	}
	if deckChanged {
		e.epocher.BumpDeckEpoch()
	}
	var epoch uint64
	if detect {
		epoch = e.epocher.DeckEpoch()
	}
	if e.sim != nil && cmd.Action.IsRobotMotion() {
		e.sim.Observe(cmd, e.model)
	}
	e.stateMu.Unlock()
	return epoch
}

// overlayChangesDeck reports whether committing o into model would change
// any deck-relevant variable. An edit later overridden back to the model
// value can read as a change — over-bumping only invalidates verdicts
// early, never late, so the conservative answer is the safe one.
func overlayChangesDeck(o *state.Overlay, model state.Snapshot) bool {
	changed := false
	o.RangeEdits(func(k state.Key, v state.Value, present bool) bool {
		if !k.DeckRelevant() {
			return true
		}
		cur, ok := model[k]
		if present {
			if !ok || !cur.Equal(v) {
				changed = true
			}
		} else if ok {
			changed = true
		}
		return !changed
	})
	return changed
}

// Hint speculatively pre-validates next — the command queued behind cur —
// while cur executes, warming the simulator's plan and verdict caches off
// the critical path. It never blocks: at most one speculation runs at a
// time and further hints are dropped (counted), because a backed-up
// speculation queue would just re-derive work the on-path check is about
// to do anyway. The lookahead goroutine captures the model clone and the
// deck epoch under one stateMu read lock — the same pairing discipline
// the on-path trajectory check uses — so a mis-speculation can only
// strand a verdict under a dead epoch, never poison a future check.
func (e *Engine) Hint(cur, next action.Command) {
	if e.spec == nil || e.specOff || !next.Action.IsRobotMotion() {
		return
	}
	if started, stopped := e.adminState(); !started || stopped != nil {
		return
	}
	cur = rules.NormalizeCommand(e.rb.Lab(), cur)
	next = rules.NormalizeCommand(e.rb.Lab(), next)
	// Resolve the hinting command's correlation ID and trace binding
	// before the gate: the speculation's record and spans must link back
	// to the command whose execution window it overlaps, even though that
	// command will likely have settled (and unbound its trace) by the
	// time anything consumes the cached verdict.
	parent := e.corrOf(cur)
	tctx := e.tracer.Bound(cur.Device, cur.Seq)
	if !e.specBusy.CompareAndSwap(false, true) {
		e.cSpecDropped.Inc()
		return
	}
	e.specWG.Add(1)
	go func() {
		defer e.specWG.Done()
		defer e.specBusy.Store(false)
		e.stateMu.RLock()
		model := e.model.Clone()
		epoch := e.epocher.DeckEpoch()
		e.stateMu.RUnlock()
		spec := e.rec.BeginSpec(parent, next)
		specStart := time.Now()
		// The speculation span joins the hinting command's trace: the
		// lookahead is causally an effect of cur's execution window, and a
		// verdict it caches may explain a later command's fast pass.
		sspan := e.tracer.StartSpanAt(tctx, "speculate", specStart)
		sspan.SetAttr("device", next.Device)
		sspan.SetIntAttr("seq", next.Seq)
		corr := ""
		if spec != nil {
			corr = spec.R.Corr
			if tctx.Valid() {
				spec.R.Trace = tctx.Trace.String()
			}
		}
		useTraced := sspan != nil && e.tracedSpec != nil
		if spec != nil && (useTraced || e.specTagged != nil) {
			spec.R.TNS = e.env.Now().Nanoseconds()
			spec.R.Verdict = recorder.Verdict{Source: recorder.SourceSpeculative, EpochAtValidation: epoch}
		}
		var ran bool
		switch {
		case useTraced:
			ran = e.tracedSpec.SpeculateAfterTraced(cur, next, model, epoch, corr, sspan.Context())
		case spec != nil && e.specTagged != nil:
			ran = e.specTagged.SpeculateAfterTagged(cur, next, model, epoch, corr)
		default:
			ran = e.spec.SpeculateAfter(cur, next, model, epoch)
		}
		if ran {
			e.cSpeculations.Inc()
		}
		if !ran {
			sspan.SetAttr("skipped", "true")
		}
		sspan.End()
		if spec != nil {
			spec.R.Spans.TrajectoryNS = time.Since(specStart).Nanoseconds()
			if !ran {
				spec.R.Outcome = "skipped"
			}
			spec.Commit()
		}
	}()
}

// WaitSpeculation blocks until any in-flight speculative lookahead has
// settled — determinism for tests and benchmarks; production flows never
// need it.
func (e *Engine) WaitSpeculation() { e.specWG.Wait() }
