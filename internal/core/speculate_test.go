package core

import (
	"sync"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/state"
)

// epochSim is a fakeSim that also carries a deck epoch and records
// speculative lookaheads, standing in for sim.Simulator's fast path.
type epochSim struct {
	fakeSim
	mu    sync.Mutex
	epoch uint64
	specs []specCall
	block chan struct{} // when non-nil, SpeculateAfter waits on it
}

type specCall struct {
	prior, next action.Command
	model       state.Snapshot
	epoch       uint64
}

func (f *epochSim) DeckEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *epochSim) BumpDeckEpoch() {
	f.mu.Lock()
	f.epoch++
	f.mu.Unlock()
}

func (f *epochSim) SpeculateAfter(prior, next action.Command, model state.Snapshot, epoch uint64) bool {
	if f.block != nil {
		<-f.block
	}
	f.mu.Lock()
	f.specs = append(f.specs, specCall{prior: prior, next: next, model: model, epoch: epoch})
	f.mu.Unlock()
	return true
}

func (f *epochSim) speculations() []specCall {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]specCall(nil), f.specs...)
}

func TestCommitBumpsEpochOnDeckRelevantChange(t *testing.T) {
	sim := &epochSim{}
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env, WithSimulator(sim))
	if got := sim.DeckEpoch(); got != 1 {
		t.Fatalf("Start should bump the epoch once (model rebuilt), got %d", got)
	}

	// Opening the door changes deviceDoorStatus — deck-relevant — so the
	// commit must bump.
	open := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(open); err != nil {
		t.Fatal(err)
	}
	env.observed.Set(state.DoorStatus("dd"), state.Bool(true))
	if err := e.After(open); err != nil {
		t.Fatal(err)
	}
	if got := sim.DeckEpoch(); got != 2 {
		t.Fatalf("door open did not bump the epoch: %d", got)
	}

	// A robot move changes only non-deck variables (arm location tags):
	// no bump, or repeated motion would defeat the verdict cache.
	mv := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.2)}
	if err := e.Before(mv); err != nil {
		t.Fatal(err)
	}
	if err := e.After(mv); err != nil {
		t.Fatal(err)
	}
	if got := sim.DeckEpoch(); got != 2 {
		t.Fatalf("deck-neutral move bumped the epoch: %d", got)
	}

	// Closing the door bumps again.
	closeCmd := action.Command{Device: "dd", Action: action.CloseDoor}
	if err := e.Before(closeCmd); err != nil {
		t.Fatal(err)
	}
	env.observed.Set(state.DoorStatus("dd"), state.Bool(false))
	if err := e.After(closeCmd); err != nil {
		t.Fatal(err)
	}
	if got := sim.DeckEpoch(); got != 3 {
		t.Fatalf("door close did not bump the epoch: %d", got)
	}
}

func TestOverlayChangesDeck(t *testing.T) {
	model := state.Snapshot{
		state.DoorStatus("dd"): state.Bool(false),
		state.Running("dd"):    state.Bool(false),
	}
	flip := state.NewOverlay(model)
	flip.Set(state.DoorStatus("dd"), state.Bool(true))
	if !overlayChangesDeck(flip, model) {
		t.Error("door flip not detected as a deck change")
	}
	same := state.NewOverlay(model)
	same.Set(state.DoorStatus("dd"), state.Bool(false)) // no-op write
	same.Set(state.Running("dd"), state.Bool(true))     // non-deck change
	if overlayChangesDeck(same, model) {
		t.Error("no-op and non-deck edits misread as a deck change")
	}
	del := state.NewOverlay(model)
	del.Delete(state.DoorStatus("dd"))
	if !overlayChangesDeck(del, model) {
		t.Error("deck-relevant delete not detected")
	}
}

func TestHintRunsSpeculativeLookahead(t *testing.T) {
	sim := &epochSim{}
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env, WithSimulator(sim))

	cur := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.2)}
	next := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.3, 0.1, 0.2)}
	e.Hint(cur, next)
	e.WaitSpeculation()
	specs := sim.speculations()
	if len(specs) != 1 {
		t.Fatalf("speculations = %d, want 1", len(specs))
	}
	if specs[0].epoch != sim.DeckEpoch() {
		t.Errorf("speculation captured epoch %d, current %d", specs[0].epoch, sim.DeckEpoch())
	}
	if _, ok := specs[0].model[state.DoorStatus("dd")]; !ok {
		t.Error("speculation model clone is missing the engine's model facts")
	}
	// The clone must be isolated: mutating it does not touch the engine's
	// model.
	specs[0].model.Set(state.DoorStatus("dd"), state.Bool(true))
	if e.Model().GetBool(state.DoorStatus("dd")) {
		t.Error("speculation model clone aliases the engine model")
	}
	if got := e.Obs().Counter(obs.CounterSpeculations).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CounterSpeculations, got)
	}

	// A non-motion successor is not worth speculating.
	e.Hint(cur, action.Command{Device: "dd", Action: action.OpenDoor})
	e.WaitSpeculation()
	if got := len(sim.speculations()); got != 1 {
		t.Errorf("non-motion hint speculated (%d)", got)
	}
}

func TestHintSingleFlightDropsOverlappingHints(t *testing.T) {
	sim := &epochSim{block: make(chan struct{})}
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env, WithSimulator(sim))

	cur := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.2)}
	next := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.3, 0.1, 0.2)}
	e.Hint(cur, next) // parked inside SpeculateAfter on the block channel
	e.Hint(cur, next) // must be dropped, not queued
	close(sim.block)
	e.WaitSpeculation()
	if got := len(sim.speculations()); got != 1 {
		t.Errorf("speculations = %d, want 1 (second hint dropped)", got)
	}
	if got := e.Obs().Counter(obs.CounterSpeculationsDropped).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CounterSpeculationsDropped, got)
	}
	// After the worker drains, hints flow again.
	e.Hint(cur, next)
	e.WaitSpeculation()
	if got := len(sim.speculations()); got != 2 {
		t.Errorf("speculations = %d, want 2 after drain", got)
	}
}

func TestSpeculationDisabledPaths(t *testing.T) {
	cur := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0.1, 0.2)}
	next := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.3, 0.1, 0.2)}

	// WithSpeculation(false): epochs still bump, hints are ignored.
	sim := &epochSim{}
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env, WithSimulator(sim), WithSpeculation(false))
	e.Hint(cur, next)
	e.WaitSpeculation()
	if got := len(sim.speculations()); got != 0 {
		t.Errorf("disabled engine speculated (%d)", got)
	}
	if sim.DeckEpoch() == 0 {
		t.Error("WithSpeculation(false) must not disable epoch bumping")
	}

	// A simulator without the fast-path surfaces: Hint is a safe no-op.
	plain := &fakeSim{}
	e2 := newEngine(&fakeEnv{observed: state.Snapshot{}}, WithSimulator(plain))
	e2.Hint(cur, next) // must not panic
	e2.WaitSpeculation()
}
