package core

import (
	"time"

	"repro/internal/action"
	"repro/internal/obs/recorder"
	"repro/internal/state"
)

// Flight-recorder glue. The engine is where every forensic fact is in
// scope at once — the rules evaluated, the model view they read, the
// verdict's provenance, the pipeline path, the commit epoch — so the
// capture lives here, next to the sections that already hold the right
// locks. Everything is nil-safe: an engine without a recorder pays one
// nil check per capture point.

// WithRecorder attaches a flight recorder to the engine.
func WithRecorder(r *recorder.Recorder) Option {
	return func(e *Engine) { e.rec = r }
}

// provValidator is an optional TrajectoryValidator extension: the check
// additionally reports where its verdict came from (cold solve, cache
// hit, speculative pre-validation) for the flight recorder. Verdicts
// must be identical to ValidTrajectory's.
type provValidator interface {
	ValidTrajectoryProv(cmd action.Command, model state.Snapshot) (recorder.Verdict, error)
}

// beginRecord opens a command record: correlation ID, rendered command,
// the rule IDs validation is about to evaluate, and the lab clock.
func (e *Engine) beginRecord(cmd action.Command, path string) *recorder.Active {
	if e.rec == nil {
		return nil
	}
	a := e.rec.Begin(cmd, path)
	a.R.TNS = e.env.Now().Nanoseconds()
	a.R.Rules = e.rb.AppliedRuleIDs(cmd)
	return a
}

// recordScope lists the IDs whose state a command's record should
// capture: the IDs the command names plus extras the caller resolved
// (e.g. the container currently inside the device).
func recordScope(cmd action.Command, extra ...string) []string {
	ids := make([]string, 0, 6+len(extra))
	ids = append(ids, cmd.Device, cmd.InsideDevice, cmd.Object, cmd.FromContainer, cmd.ToContainer)
	return append(ids, extra...)
}

// recordAlert stamps an alert into its record and freezes the window
// into an incident bundle, feeding the detection-latency SLO from the
// same lab-clock pair forensics aggregates (alert time − issue time).
// Nil-safe on the record.
func (e *Engine) recordAlert(a *recorder.Active, al *Alert) {
	if a == nil {
		return
	}
	a.R.AlertKind = al.Kind.Slug()
	a.R.Alert = al.Error()
	a.R.AlertTNS = al.Time.Nanoseconds()
	if d := al.Time - time.Duration(a.R.TNS); d >= 0 {
		e.slos.ObserveDetection(d)
	}
	for _, v := range al.Violations {
		a.R.Violations = append(a.R.Violations, v.Rule.ID)
	}
	for _, m := range al.Mismatches {
		a.R.Mismatches = append(a.R.Mismatches, string(m.Key))
	}
	a.CommitIncident()
}

// settleBatch commits the records of global-batch mates that were
// settled by another command's After (concurrent global Befores share
// one cumulative expectation and one post-state check).
func (e *Engine) settleBatch(recs []*recorder.Active, settled *recorder.Active, by string) {
	for _, a := range recs {
		if a == nil || a == settled {
			continue
		}
		a.R.SettledBy = by
		a.Commit()
	}
}

// corrOf resolves the correlation ID of an in-flight command, for
// linking a speculation to the command whose execution it overlaps. The
// global pipeline's batch list is probed with TryLock — Hint must never
// block on a busy engine, and an unresolved parent only costs the link.
func (e *Engine) corrOf(cmd action.Command) string {
	if e.rec == nil {
		return ""
	}
	if t := e.lookupTicket(cmd.Device); t != nil && t.rec != nil && t.rec.R.Seq == cmd.Seq {
		return t.rec.R.Corr
	}
	if e.mu.TryLock() {
		defer e.mu.Unlock()
		for _, a := range e.pendingRecs {
			if a != nil && a.R.Seq == cmd.Seq && a.R.Device == cmd.Device {
				return a.R.Corr
			}
		}
	}
	return ""
}
