package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/state"
)

func mkViolation(id string, n int) rules.Violation {
	cmd := action.Command{Device: "dd", Action: action.OpenDoor}
	return rules.Violation{
		Rule:   &rules.Rule{ID: id, Scope: rules.ScopeGeneral, Number: n, Description: "desc"},
		Cmd:    cmd,
		Reason: "reason",
	}
}

func TestAlertErrorReportsTotals(t *testing.T) {
	cmd := action.Command{Device: "dd", Action: action.OpenDoor}

	one := &Alert{Kind: AlertInvalidCommand, Cmd: cmd,
		Violations: []rules.Violation{mkViolation("general-1", 1)}}
	if msg := one.Error(); strings.Contains(msg, "more") {
		t.Errorf("single violation must not claim more: %s", msg)
	}

	three := &Alert{Kind: AlertInvalidCommand, Cmd: cmd, Violations: []rules.Violation{
		mkViolation("general-1", 1), mkViolation("general-2", 2), mkViolation("general-3", 3),
	}}
	msg := three.Error()
	if !strings.Contains(msg, "general-1") {
		t.Errorf("first violation must be spelled out: %s", msg)
	}
	if strings.Contains(msg, "general-2") {
		t.Errorf("later violations should be counted, not spelled out: %s", msg)
	}
	if !strings.Contains(msg, "(and 2 more violations)") {
		t.Errorf("missing total violation count: %s", msg)
	}

	two := &Alert{Kind: AlertMalfunction, Cmd: cmd, Mismatches: []state.Mismatch{
		{Key: state.DoorStatus("dd"), Expected: state.Bool(true), Actual: state.Bool(false)},
		{Key: state.Running("dd"), Expected: state.Bool(false), Actual: state.Bool(true)},
	}}
	if msg := two.Error(); !strings.Contains(msg, "(and 1 more mismatch)") {
		t.Errorf("missing mismatch count: %s", msg)
	}
}

func TestEngineStageTelemetry(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	reg := obs.NewRegistry("t")
	e := newEngine(env, WithObserver(reg), WithSimulator(&fakeSim{}))

	move := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)}
	if err := e.Before(move); err != nil {
		t.Fatal(err)
	}
	if err := e.After(move); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, stage := range []string{obs.StageValidate, obs.StageTrajectory, obs.StageFetch, obs.StageCompare} {
		hs, ok := snap.Histogram(stage)
		if !ok || hs.Count != 1 {
			t.Errorf("stage %s histogram count = %+v (ok=%v), want 1", stage, hs, ok)
		}
	}
	d, n := e.CheckOverhead()
	if n != 1 || d <= 0 {
		t.Fatalf("CheckOverhead = (%v, %d)", d, n)
	}
	if got := snap.Counter(obs.CounterCommands); got != 1 {
		t.Errorf("commands counter = %d, want 1", got)
	}
	// The registry counter IS the CheckOverhead source of truth.
	if got := reg.Counter(obs.CounterCheckNS).Value(); got != d.Nanoseconds() {
		t.Errorf("check.ns counter = %d, CheckOverhead = %d", got, d.Nanoseconds())
	}
	if e.Obs() != reg {
		t.Error("Obs() must return the attached registry")
	}
}

func TestEngineAlertTelemetry(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	reg := obs.NewRegistry("t")
	mem := &obs.MemorySink{}
	reg.SetSink(mem)
	e := newEngine(env, WithObserver(reg))

	if err := e.Before(action.Command{Device: "dd", Action: action.OpenDoor}); err == nil {
		t.Fatal("invalid command accepted")
	}
	if got := reg.Counter(obs.PrefixAlerts + "invalid_command").Value(); got != 1 {
		t.Errorf("alert counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.PrefixViolations + "general-10").Value(); got != 1 {
		t.Errorf("violation counter = %d, want 1", got)
	}
	evs := mem.Events()
	if len(evs) != 1 || evs[0].Kind != "alert" || evs[0].Name != "invalid_command" || evs[0].Device != "dd" {
		t.Fatalf("alert event wrong: %+v", evs)
	}
}

func TestEngineWithoutObserver(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	e := newEngine(env, WithObserver(nil))
	cmd := action.Command{Device: "dd", Action: action.CloseDoor}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	if err := e.After(cmd); err != nil {
		t.Fatal(err)
	}
	// Instrumentation off: nothing accumulates, nothing panics.
	if d, n := e.CheckOverhead(); d != 0 || n != 0 {
		t.Errorf("disabled telemetry still accumulated: (%v, %d)", d, n)
	}
	if e.Obs() != nil {
		t.Error("Obs() should be nil when disabled")
	}
}

// benchSnapshot builds an observed state sized so a full Before+After
// check costs what the real testbed deck's does (~35µs/cmd, per
// `rabiteval -latency`): the check's cost is dominated by snapshot
// clone/merge/compare, which scales with the variable count.
func benchSnapshot() state.Snapshot {
	s := state.Snapshot{}
	for i := 0; i < 96; i++ {
		s.Set(state.DoorStatus(fmt.Sprintf("aux%02d", i)), state.Bool(i%2 == 0))
	}
	return s
}

func benchEngineChecks(b *testing.B, opts ...Option) {
	env := &fakeEnv{observed: benchSnapshot()}
	e := newEngine(env, opts...)
	cmd := action.Command{Device: "dd", Action: action.CloseDoor}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Before(cmd); err != nil {
			b.Fatal(err)
		}
		if err := e.After(cmd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead measures one full engine check (Before+After)
// with instrumentation on (the default) and off (WithObserver(nil)).
// The telemetry budget is <1% of a check (~350ns of the real testbed
// deck's ~35µs).
//
// The separate instrumented/bare legs are what `benchstat` wants, but
// a check allocates ~29KB (snapshot clone/merge), so GC pauses and
// scheduler drift swamp a sub-µs delta in both run-to-run means and a
// paired mean. The paired leg therefore interleaves the two engines in
// one loop and compares the *median* per-check time of each — robust
// to pause outliers — reporting the difference as delta-ns/op and
// overhead-%.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("instrumented", func(b *testing.B) { benchEngineChecks(b) })
	b.Run("bare", func(b *testing.B) { benchEngineChecks(b, WithObserver(nil)) })
	b.Run("paired", func(b *testing.B) {
		instrumented := newEngine(&fakeEnv{observed: benchSnapshot()})
		bare := newEngine(&fakeEnv{observed: benchSnapshot()}, WithObserver(nil))
		cmd := action.Command{Device: "dd", Action: action.CloseDoor}
		check := func(e *Engine) {
			if err := e.Before(cmd); err != nil {
				b.Fatal(err)
			}
			if err := e.After(cmd); err != nil {
				b.Fatal(err)
			}
		}
		deltaNS := make([]int64, b.N)
		bareNS := make([]int64, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate which engine goes first so cache-warming and
			// GC-assist effects don't systematically favor one leg.
			first, second := instrumented, bare
			if i%2 == 1 {
				first, second = bare, instrumented
			}
			t0 := time.Now()
			check(first)
			t1 := time.Now()
			check(second)
			t2 := time.Now()
			di, db := t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds()
			if i%2 == 1 {
				di, db = db, di
			}
			deltaNS[i] = di - db
			bareNS[i] = db
		}
		b.StopTimer()
		median := func(s []int64) float64 {
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return float64(s[len(s)/2])
		}
		md, mb := median(deltaNS), median(bareNS)
		b.ReportMetric(md, "delta-ns/op")
		b.ReportMetric(100*md/mb, "overhead-%")
	})
}

func TestEngineStartResetsAlertCounters(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	reg := obs.NewRegistry("t")
	e := newEngine(env, WithObserver(reg))
	if err := e.Before(action.Command{Device: "dd", Action: action.OpenDoor}); err == nil {
		t.Fatal("invalid command accepted")
	}
	alertC := reg.Counter(obs.PrefixAlerts + "invalid_command")
	violC := reg.Counter(obs.PrefixViolations + "general-10")
	if alertC.Value() != 1 || violC.Value() != 1 {
		t.Fatalf("alert/violation counters = %d/%d, want 1/1", alertC.Value(), violC.Value())
	}
	// A restarted run must not inherit the previous run's alert totals —
	// including the dynamically named families Registry.Reset can't see.
	env.observed.Set(state.Running("dd"), state.Bool(false))
	e.Start()
	if alertC.Value() != 0 || violC.Value() != 0 {
		t.Errorf("counters after restart = %d/%d, want 0/0",
			alertC.Value(), violC.Value())
	}
	if len(e.Alerts()) != 0 {
		t.Errorf("alerts after restart: %v", e.Alerts())
	}
}
