package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
	"repro/internal/state"
)

// The sharded pipeline.
//
// A command qualifies for sharding when nothing about checking it reaches
// beyond the devices it names: it is not robot motion (trajectory checks
// read arm + full deck geometry) or manipulation (pick/place transitions
// touch location-owner devices), and the rulebase index reports that every
// rule in its label's bucket declares ReadsCommand. Such a command locks
// only its own devices' shard mutexes, which it holds from Before through
// After — execution included — so per-device command cycles serialize
// while disjoint devices proceed concurrently. Holding the shard across
// the cycle is what keeps the Fig. 2 algebra intact per device: the model
// slice a shard validates against cannot change under it, because the
// only writers of a device's keys are that device's own commands (faults
// only suppress a device's own effects) and its commands are serialized
// by the shard lock.
//
// Exogenous sensor variables are the one cross-cutting input: they are
// fetched on every path (scoped fetches always include all sensors) and
// excluded from the malfunction comparison, so concurrent commits of
// fresh sensor readings are benign.

// shardTicket tracks one in-flight sharded command, keyed by its device
// (sound: the device's shard mutex admits one command cycle at a time,
// and global-path commands never touch the ticket table).
type shardTicket struct {
	scope    []string // sorted, deduplicated device/container IDs
	scopeSet map[string]bool
	locks    []*sync.Mutex // acquired in scope order
	expected *state.Overlay
	rec      *recorder.Active // flight-recorder record, nil when off
	// tctx is the command's root span context (zero when tracing is off),
	// resolved once in Before and reused by After's stage spans.
	tctx otrace.SpanContext
}

// routeSharded decides the pipeline for a command.
func (e *Engine) routeSharded(cmd action.Command) bool {
	if e.serial {
		return false
	}
	if cmd.Action.IsRobotMotion() || cmd.Action.IsManipulation() {
		return false
	}
	return !e.rb.LabelReadsGlobal(cmd.Action)
}

// shardScope lists the devices and containers a command can read or
// write: the IDs it names, plus the container the model currently places
// inside its device (dosing and start-action rules read its contents;
// dosing writes them).
func (e *Engine) shardScope(cmd action.Command) []string {
	ids := make([]string, 0, 6)
	add := func(id string) {
		if id != "" {
			ids = append(ids, id)
		}
	}
	add(cmd.Device)
	add(cmd.InsideDevice)
	add(cmd.Object)
	add(cmd.FromContainer)
	add(cmd.ToContainer)
	e.stateMu.RLock()
	inside := e.model.GetString(state.ContainerInside(cmd.Device))
	e.stateMu.RUnlock()
	add(inside)
	sort.Strings(ids)
	out := ids[:0]
	for _, id := range ids {
		if len(out) == 0 || out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// lockScope acquires the scope's shard mutexes. The table lookup runs
// under shardMu; the mutexes themselves are locked after shardMu is
// released, in sorted scope order, which makes cross-command acquisition
// deadlock-free.
func (e *Engine) lockScope(scope []string) []*sync.Mutex {
	e.shardMu.Lock()
	locks := make([]*sync.Mutex, len(scope))
	for i, id := range scope {
		m, ok := e.shards[id]
		if !ok {
			m = new(sync.Mutex)
			e.shards[id] = m
		}
		locks[i] = m
	}
	e.shardMu.Unlock()
	for _, m := range locks {
		m.Lock()
	}
	return locks
}

// registerTicket publishes the in-flight command so the global pipeline
// can exclude its devices' keys from compare/commit.
func (e *Engine) registerTicket(device string, t *shardTicket) {
	e.shardMu.Lock()
	for _, id := range t.scope {
		e.inFlight[id]++
	}
	e.tickets[device] = t
	e.shardMu.Unlock()
}

// releaseTicket retires the command: bookkeeping first, then the shard
// mutexes in reverse order.
func (e *Engine) releaseTicket(device string, t *shardTicket) {
	e.shardMu.Lock()
	for _, id := range t.scope {
		if e.inFlight[id]--; e.inFlight[id] <= 0 {
			delete(e.inFlight, id)
		}
	}
	delete(e.tickets, device)
	e.shardMu.Unlock()
	for i := len(t.locks) - 1; i >= 0; i-- {
		t.locks[i].Unlock()
	}
}

// lookupTicket finds the in-flight ticket for a device, if any.
func (e *Engine) lookupTicket(device string) *shardTicket {
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	return e.tickets[device]
}

// dropInFlight removes from a full observed snapshot every key owned by a
// device some sharded command currently holds. Those keys' transitions
// belong to the in-flight command's own After; comparing or committing
// them here would raise spurious malfunctions (the global path would see
// effects it has no expectation for) or clobber fresher expectations.
func (e *Engine) dropInFlight(observed state.Snapshot) {
	e.shardMu.Lock()
	if len(e.inFlight) == 0 {
		e.shardMu.Unlock()
		return
	}
	busy := make(map[string]bool, len(e.inFlight))
	for id := range e.inFlight {
		busy[id] = true
	}
	e.shardMu.Unlock()
	for k := range observed {
		if args := k.Args(); len(args) > 0 && busy[args[0]] {
			delete(observed, k)
		}
	}
}

// fetchScoped obtains the observed state of the scope's devices plus all
// sensors. Environments without scoped fetch are polled in full and
// filtered, which keeps the two fetch paths observationally identical.
func (e *Engine) fetchScoped(t *shardTicket) state.Snapshot {
	if e.scopedEnv != nil {
		observed := e.scopedEnv.FetchStateScoped(t.scope)
		e.filterScope(observed, t.scopeSet)
		return observed
	}
	observed := e.env.FetchState()
	e.filterScope(observed, t.scopeSet)
	return observed
}

// filterScope trims an observed snapshot to keys owned by the scope,
// keeping exogenous variables (sensor readings participate in every
// path's commit and are compare-exempt).
func (e *Engine) filterScope(observed state.Snapshot, scope map[string]bool) {
	for k := range observed {
		if k.IsExogenous() {
			continue
		}
		args := k.Args()
		if len(args) == 0 || !scope[args[0]] {
			delete(observed, k)
		}
	}
}

// beforeSharded validates a command under its devices' shard locks. On
// success the locks stay held until afterSharded releases them.
func (e *Engine) beforeSharded(cmd action.Command, start time.Time, fs **Alert) error {
	started, stopped := e.adminState()
	if !started {
		return fmt.Errorf("core: engine not started")
	}
	if stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, stopped.Error())
	}
	scope := e.shardScope(cmd)
	t := &shardTicket{scope: scope, scopeSet: make(map[string]bool, len(scope))}
	for _, id := range scope {
		t.scopeSet[id] = true
	}
	t.locks = e.lockScope(scope)
	e.registerTicket(cmd.Device, t)
	// An alert elsewhere may have landed while we waited for the shard;
	// honor it before validating (same check the global path runs).
	if _, stopped := e.adminState(); stopped != nil {
		e.releaseTicket(cmd.Device, t)
		return fmt.Errorf("%w: %s", ErrStopped, stopped.Error())
	}
	t.rec = e.beginRecord(cmd, recorder.PathSharded)
	t.tctx = e.traceOf(cmd, t.rec)
	traceID := ""
	if t.tctx.Valid() {
		traceID = t.tctx.Trace.String()
	}
	e.stateMu.RLock()
	vs := e.rb.ValidateObserved(e.model, cmd, e.ruleMetrics, traceID)
	if len(vs) == 0 {
		t.expected = e.rb.ExpectedOverlay(e.model, cmd)
	}
	if t.rec != nil {
		// The ticket's scope IS the read scope the rules validated over.
		t.rec.R.Pre = recorder.CaptureView(e.model, t.scope)
	}
	e.stateMu.RUnlock()
	validateEnd := time.Now()
	vd := validateEnd.Sub(start)
	e.hValidate.ObserveExemplar(vd, traceID)
	if t.rec != nil {
		t.rec.R.Spans.ValidateNS = vd.Nanoseconds()
	}
	if len(vs) > 0 {
		e.releaseTicket(cmd.Device, t)
		al := e.raise(Alert{Kind: AlertInvalidCommand, Cmd: cmd, Violations: vs}, fs)
		e.stageSpan(t.tctx, obs.StageValidate, start, validateEnd, al)
		e.recordAlert(t.rec, al)
		return al
	}
	e.stageSpan(t.tctx, obs.StageValidate, start, validateEnd, nil)
	if t.rec != nil {
		t.rec.R.Expected = recorder.CaptureEdits(t.expected)
	}
	return nil
}

// afterSharded settles a sharded command: scoped fetch, compare against
// the ticket's expectation, in-place commit, shard release.
func (e *Engine) afterSharded(cmd action.Command, start time.Time, fs **Alert) error {
	t := e.lookupTicket(cmd.Device)
	if t == nil {
		// Before never shard-registered this command (e.g. the engine
		// restarted mid-cycle); fall back to the global settle.
		return e.afterGlobal(cmd, start, fs)
	}
	defer e.releaseTicket(cmd.Device, t)
	if _, stopped := e.adminState(); stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, stopped.Error())
	}
	e.cCommands.Inc()
	traceID := ""
	if t.tctx.Valid() {
		traceID = t.tctx.Trace.String()
	}
	observed := e.fetchScoped(t)
	fetchEnd := time.Now()
	fd := fetchEnd.Sub(start)
	e.hFetch.ObserveExemplar(fd, traceID)
	e.stateMu.RLock()
	ms := state.CompareObservedView(t.expected, observed)
	e.stateMu.RUnlock()
	compareEnd := time.Now()
	cd := compareEnd.Sub(fetchEnd)
	e.hCompare.ObserveExemplar(cd, traceID)
	if t.rec != nil {
		t.rec.R.Spans.FetchNS = fd.Nanoseconds()
		t.rec.R.Spans.CompareNS = cd.Nanoseconds()
		t.rec.R.Observed = recorder.CaptureView(observed, t.scope)
	}
	e.stageSpan(t.tctx, obs.StageFetch, start, fetchEnd, nil)
	if len(ms) > 0 {
		al := e.raise(Alert{Kind: AlertMalfunction, Cmd: cmd, Mismatches: ms}, fs)
		e.stageSpan(t.tctx, obs.StageCompare, fetchEnd, compareEnd, al)
		e.recordAlert(t.rec, al)
		return al
	}
	e.stageSpan(t.tctx, obs.StageCompare, fetchEnd, compareEnd, nil)
	// Sharded commands are never robot motion, but they do flip doors and
	// held objects — exactly the deck-relevant changes the commit section
	// must pair with an epoch bump (see commitModel).
	epoch := e.commitModel(t.expected, observed, cmd)
	if t.rec != nil {
		t.rec.R.Verdict.EpochAtCommit = epoch
		t.rec.Commit()
	}
	return nil
}
