package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/state"
)

// fleetLab models a deck of n independent action devices (d0..dN-1, no
// doors, no hosted containers) plus one door device "dd" — the shape the
// sharded pipeline is built for.
type fleetLab struct{ n int }

var _ rules.LabModel = fleetLab{}

func (l fleetLab) DeviceType(id string) (rules.DeviceType, bool) {
	if id == "dd" {
		return rules.TypeDosingSystem, true
	}
	if strings.HasPrefix(id, "d") {
		return rules.TypeActionDevice, true
	}
	return 0, false
}
func (l fleetLab) DeviceHasDoor(id string) bool { return id == "dd" }
func (l fleetLab) DeviceDoors(id string) []string {
	if id == "dd" {
		return []string{""}
	}
	return nil
}
func (fleetLab) LocationDoor(loc string) string                     { return "" }
func (fleetLab) ArmIDs() []string                                   { return nil }
func (fleetLab) LocationOwner(loc string) (string, bool)            { return "", false }
func (fleetLab) LocationIsInside(loc string) bool                   { return false }
func (fleetLab) LocationPos(a, l string) (geom.Vec3, bool)          { return geom.Vec3{}, false }
func (fleetLab) MatchLocation(a string, p geom.Vec3) (string, bool) { return "", false }
func (fleetLab) DeviceBoxes(a string) []rules.NamedBox              { return nil }
func (fleetLab) SleepBox(a, o string) (geom.AABB, bool)             { return geom.AABB{}, false }
func (fleetLab) ArmGeometry(a string) rules.ArmGeom                 { return rules.ArmGeom{} }
func (fleetLab) HostsContainers(id string) bool                     { return false }
func (fleetLab) ObjectGeometry(id string) (rules.ObjectGeom, bool)  { return rules.ObjectGeom{}, false }
func (fleetLab) ActionThreshold(id string) (float64, bool)          { return 100, true }
func (fleetLab) FloorZ(a string) float64                            { return -10 }
func (fleetLab) Walls(a string) []geom.Plane                        { return nil }
func (fleetLab) Zone(a string) (geom.Plane, bool)                   { return geom.Plane{}, false }

// concEnv is a concurrency-safe fake environment: ground truth lives in
// one locked snapshot, and scoped fetches filter by key owner — the same
// contract the real env provides.
type concEnv struct {
	mu  sync.Mutex
	st  state.Snapshot
	now time.Duration
}

func newConcEnv() *concEnv { return &concEnv{st: state.Snapshot{}} }

func (f *concEnv) Execute(cmd action.Command) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch cmd.Action {
	case action.SetActionValue:
		f.st.Set(state.ActionValue(cmd.Device), state.Float(cmd.Value))
	case action.StartAction:
		f.st.Set(state.Running(cmd.Device), state.Bool(true))
	case action.StopAction:
		f.st.Set(state.Running(cmd.Device), state.Bool(false))
	case action.OpenDoor:
		f.st.Set(state.DoorStatus(cmd.Device), state.Bool(true))
	case action.CloseDoor:
		f.st.Set(state.DoorStatus(cmd.Device), state.Bool(false))
	}
	f.now += time.Millisecond
	return nil
}

func (f *concEnv) FetchState() state.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st.Clone()
}

func (f *concEnv) FetchStateScoped(ids []string) state.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := state.Snapshot{}
	for k, v := range f.st {
		if args := k.Args(); len(args) > 0 && want[args[0]] {
			out[k] = v
		}
	}
	return out
}

func (f *concEnv) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// TestShardedConcurrentScripts drives eight per-device scripts plus one
// door script through a single engine from separate goroutines — the
// deployment the sharded pipeline exists for. Run under -race this is
// the pipeline's data-race test; the assertions check that every
// command committed and the model converged to ground truth.
func TestShardedConcurrentScripts(t *testing.T) {
	const devices = 8
	const cycles = 25
	env := newConcEnv()
	env.st.Set(state.DoorStatus("dd"), state.Bool(false))
	for g := 0; g < devices; g++ {
		id := fmt.Sprintf("d%d", g)
		env.st.Set(state.Running(id), state.Bool(false))
		env.st.Set(state.ActionValue(id), state.Float(0))
	}
	rb := rules.MustNewRulebase(fleetLab{n: devices}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env)
	e.Start()

	run := func(cmds []action.Command) error {
		for _, cmd := range cmds {
			if err := e.Before(cmd); err != nil {
				return err
			}
			if err := env.Execute(cmd); err != nil {
				return err
			}
			if err := e.After(cmd); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, devices+1)
	var wg sync.WaitGroup
	for g := 0; g < devices; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("d%d", g)
			var cmds []action.Command
			for c := 0; c < cycles; c++ {
				cmds = append(cmds,
					action.Command{Device: id, Action: action.SetActionValue, Value: float64(10 + c%80)},
					action.Command{Device: id, Action: action.StartAction},
					action.Command{Device: id, Action: action.StopAction},
				)
			}
			errs[g] = run(cmds)
		}(g)
	}
	// One script works the door device: OpenDoor shards, CloseDoor takes
	// the global path (rule 2 reads every arm's state), so the run mixes
	// both pipelines against the same engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cmds []action.Command
		for c := 0; c < cycles; c++ {
			cmds = append(cmds,
				action.Command{Device: "dd", Action: action.OpenDoor},
				action.Command{Device: "dd", Action: action.CloseDoor},
			)
		}
		errs[devices] = run(cmds)
	}()
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("script %d failed: %v", g, err)
		}
	}
	if a := e.Stopped(); a != nil {
		t.Fatalf("unexpected alert: %v", a)
	}
	_, commands := e.CheckOverhead()
	want := devices*cycles*3 + cycles*2
	if commands != want {
		t.Errorf("commands processed = %d, want %d", commands, want)
	}
	// The model must have converged to ground truth on every observable.
	model := e.Model()
	for k, v := range env.FetchState() {
		got, ok := model.Get(k)
		if !ok || !got.Equal(v) {
			t.Errorf("model[%s] = %v, want %v", k, got, v)
		}
	}
}

// TestShardedRejectsUnsafeCommand checks the sharded path still raises
// Invalid Command! and halts the run.
func TestShardedRejectsUnsafeCommand(t *testing.T) {
	env := newConcEnv()
	env.st.Set(state.Running("d0"), state.Bool(false))
	rb := rules.MustNewRulebase(fleetLab{n: 1}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env)
	e.Start()
	// Threshold is 100 (fleetLab); rule 11 must fire on the sharded path.
	err := e.Before(action.Command{Device: "d0", Action: action.SetActionValue, Value: 500})
	if err == nil {
		t.Fatal("over-threshold setpoint was not blocked")
	}
	a, ok := AsAlert(err)
	if !ok || a.Kind != AlertInvalidCommand {
		t.Fatalf("want invalid-command alert, got %v", err)
	}
	if e.Stopped() == nil {
		t.Fatal("engine did not halt")
	}
	// The shard must have been released and the stop must gate new work.
	err = e.Before(action.Command{Device: "d0", Action: action.StartAction})
	if err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

// TestShardedMalfunctionAlert checks the sharded After's compare path.
func TestShardedMalfunctionAlert(t *testing.T) {
	env := newConcEnv()
	env.st.Set(state.Running("d0"), state.Bool(false))
	rb := rules.MustNewRulebase(fleetLab{n: 1}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env)
	e.Start()
	cmd := action.Command{Device: "d0", Action: action.StartAction}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	// The device silently ignores the command: Running stays false, so
	// the expectation (Running=true) must mismatch.
	err := e.After(cmd)
	a, ok := AsAlert(err)
	if !ok || a.Kind != AlertMalfunction {
		t.Fatalf("want malfunction alert, got %v", err)
	}
	if len(a.Mismatches) == 0 || a.Mismatches[0].Key != state.Running("d0") {
		t.Fatalf("mismatch list wrong: %v", a.Mismatches)
	}
}

// TestFailSafeOutsideCheckWindow is the check-overhead accounting
// regression test: the fail-safe handler's runtime must NOT be charged
// to the engine's check-time counter (the seed ran the handler inside
// the deferred span), and the handler must run outside engine locks so
// it can itself talk to the engine.
func TestFailSafeOutsideCheckWindow(t *testing.T) {
	const handlerDelay = 80 * time.Millisecond
	env := newConcEnv()
	env.st.Set(state.Running("d0"), state.Bool(false))
	rb := rules.MustNewRulebase(fleetLab{n: 1}, rules.Config{Generation: rules.GenInitial})
	var e *Engine
	invoked := make(chan Alert, 1)
	e = New(rb, env, WithFailSafe(func(a Alert) {
		// Re-entering the engine must not deadlock: the stop gate answers.
		if err := e.Before(action.Command{Device: "d0", Action: action.StopAction}); err == nil {
			t.Error("fail-safe re-entry was not gated by the stop")
		}
		time.Sleep(handlerDelay)
		invoked <- a
	}))
	e.Start()
	err := e.Before(action.Command{Device: "d0", Action: action.SetActionValue, Value: 500})
	if err == nil {
		t.Fatal("unsafe command not blocked")
	}
	select {
	case a := <-invoked:
		if a.Kind != AlertInvalidCommand {
			t.Errorf("handler got %v", a.Kind)
		}
	default:
		t.Fatal("fail-safe handler never ran")
	}
	check, _ := e.CheckOverhead()
	if check >= handlerDelay {
		t.Errorf("check overhead %v includes the fail-safe handler's %v", check, handlerDelay)
	}
}

// TestSerialPipelineOptionForcesGlobalPath ensures WithSerialPipeline
// really disables sharding (the parity baseline depends on it).
func TestSerialPipelineOptionForcesGlobalPath(t *testing.T) {
	env := newConcEnv()
	env.st.Set(state.Running("d0"), state.Bool(false))
	rb := rules.MustNewRulebase(fleetLab{n: 1}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env, WithSerialPipeline())
	e.Start()
	cmd := action.Command{Device: "d0", Action: action.StartAction}
	if e.routeSharded(cmd) {
		t.Fatal("serial engine still routes sharded")
	}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	if err := env.Execute(cmd); err != nil {
		t.Fatal(err)
	}
	if err := e.After(cmd); err != nil {
		t.Fatal(err)
	}
	if !e.Model().GetBool(state.Running("d0")) {
		t.Fatal("serial pipeline did not commit")
	}
}
