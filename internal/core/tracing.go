package core

import (
	"time"

	"repro/internal/action"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/obs/recorder"
	"repro/internal/state"
)

// Causal-tracing and safety-SLO glue. The interceptor owns the run
// trace and binds each command's root span under (device, seq) in the
// tracer's binding registry; the engine's pipeline stages look the
// binding up and hang their stage spans beneath it — context threads
// through without changing the Checker interface. Span emission is
// retroactive wherever possible: the stages already read the clock for
// their latency histograms, and a finished span is just those two
// timestamps plus an ID, so tracing rides on clock reads the pipeline
// pays anyway. Everything is nil-safe: an engine without a tracer or
// SLO monitor pays one nil check per site.

// WithTracer attaches a causal tracer to the engine. The interceptor
// that drives the engine must share the same tracer — the engine only
// ever parents spans under bindings the interceptor published.
func WithTracer(t *otrace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithSLOs attaches the safety-SLO monitor: every Before/After feeds
// the check-overhead objective, every alert the detection-latency one.
func WithSLOs(s *obs.SafetySLOs) Option {
	return func(e *Engine) { e.slos = s }
}

// tracedValidator is the causal-tracing extension of the trajectory
// check: the simulator parents its kin/sim child spans under the
// intercepted command's trace. Verdicts must be identical to
// ValidTrajectoryProv's.
type tracedValidator interface {
	ValidTrajectoryTraced(cmd action.Command, model state.Snapshot, parent otrace.SpanContext) (recorder.Verdict, error)
}

// tracedSpeculator is the causal-tracing extension of the speculative
// lookahead: child spans of the speculation join the hinting command's
// trace, so a verdict consumed later is causally attributable.
type tracedSpeculator interface {
	SpeculateAfterTraced(prior, next action.Command, model state.Snapshot, epoch uint64, corr string, parent otrace.SpanContext) bool
}

// stageSpan retroactively emits one completed stage span over
// [from, to] under parent, reusing the clock reads the stage histograms
// already made. A non-nil alert marks the span — and thereby pins the
// whole trace for tail-sampling retention — as the alert's cause.
func (e *Engine) stageSpan(parent otrace.SpanContext, name string, from, to time.Time, al *Alert) {
	if e.tracer == nil || !parent.Valid() {
		return
	}
	s := e.tracer.StartSpanAt(parent, name, from)
	if al != nil {
		s.MarkAlert(al.Kind.Slug(), al.Error())
	}
	s.EndAt(to)
}

// traceOf resolves the binding the interceptor published for a command,
// and stamps the trace ID into the command's flight record so an
// incident bundle names the retained trace tree that explains it.
func (e *Engine) traceOf(cmd action.Command, a *recorder.Active) otrace.SpanContext {
	if e.tracer == nil {
		return otrace.SpanContext{}
	}
	ctx := e.tracer.Bound(cmd.Device, cmd.Seq)
	if a != nil && ctx.Valid() {
		a.R.Trace = ctx.Trace.String()
	}
	return ctx
}
