// Package core implements RABIT's execution algorithm (Fig. 2 of the
// paper). The engine sits between the RATracer-style interceptor and the
// lab: for every command it (1) validates the preconditions against its
// tracked model state and raises "Invalid Command!" on violation, (2) for
// robot commands, consults the Extended Simulator when one is attached
// and raises "Invalid trajectory!", (3) computes the expected post-state
// from the transition table, and (4) after execution compares the
// observed device state against the expectation, raising "Device
// malfunction!" on mismatch.
//
// An alert preemptively stops the experiment (the Hein Lab's chosen
// policy); an optional fail-safe handler can be installed for labs where
// freezing mid-action is itself dangerous (Section II-B's caveat about an
// arm left holding a volatile substance).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/trace"
)

// AlertKind classifies the three alerts of Fig. 2.
type AlertKind int

// Alert kinds.
const (
	// AlertInvalidCommand is Fig. 2 line 7: a precondition violation.
	AlertInvalidCommand AlertKind = iota + 1
	// AlertInvalidTrajectory is Fig. 2 line 10: the Extended Simulator
	// rejected the motion.
	AlertInvalidTrajectory
	// AlertMalfunction is Fig. 2 line 15: observed state diverged from
	// the expected state.
	AlertMalfunction
)

// String renders the alert text of Fig. 2.
func (k AlertKind) String() string {
	switch k {
	case AlertInvalidCommand:
		return "Invalid Command!"
	case AlertInvalidTrajectory:
		return "Invalid trajectory!"
	case AlertMalfunction:
		return "Device malfunction!"
	default:
		return "Unknown alert"
	}
}

// Alert is one raised safety alert.
type Alert struct {
	Kind       AlertKind
	Cmd        action.Command
	Violations []rules.Violation
	Mismatches []state.Mismatch
	Reason     string
	Time       time.Duration
}

// Error renders the alert as the error the script receives (RATracer
// raises a Python exception in the paper's implementation).
func (a *Alert) Error() string {
	msg := fmt.Sprintf("RABIT alert: %s command %s", a.Kind, a.Cmd)
	if len(a.Violations) > 0 {
		msg += ": " + a.Violations[0].Error()
	}
	if len(a.Mismatches) > 0 {
		msg += ": " + a.Mismatches[0].String()
	}
	if a.Reason != "" {
		msg += ": " + a.Reason
	}
	return msg
}

// AsAlert extracts an Alert from an error chain.
func AsAlert(err error) (*Alert, bool) {
	var a *Alert
	if errors.As(err, &a) {
		return a, true
	}
	return nil, false
}

// ErrStopped is wrapped by errors returned once the experiment has been
// halted by an alert.
var ErrStopped = errors.New("core: experiment stopped by a previous RABIT alert")

// TrajectoryValidator is the Extended Simulator's interface (Fig. 2,
// lines 8–10). Observe lets the simulator mirror accepted commands.
type TrajectoryValidator interface {
	ValidTrajectory(cmd action.Command, model state.Snapshot) error
	Observe(cmd action.Command, model state.Snapshot)
}

// Environment is what the engine needs from a deployment stage.
type Environment interface {
	Execute(cmd action.Command) error
	FetchState() state.Snapshot
	Now() time.Duration
}

// Option configures the engine.
type Option func(*Engine)

// WithSimulator attaches an Extended Simulator.
func WithSimulator(v TrajectoryValidator) Option {
	return func(e *Engine) { e.sim = v }
}

// WithFailSafe installs a handler invoked on every alert, e.g. to command
// a safe parking pose instead of freezing.
func WithFailSafe(fn func(Alert)) Option {
	return func(e *Engine) { e.failSafe = fn }
}

// WithInitialModel seeds the engine's dead-reckoned model facts (container
// positions, stoppers) from the lab configuration.
func WithInitialModel(s state.Snapshot) Option {
	return func(e *Engine) { e.seed = s.Clone() }
}

// Engine is RABIT's core checker.
type Engine struct {
	mu  sync.Mutex
	rb  *rules.Rulebase
	env Environment
	sim TrajectoryValidator

	seed  state.Snapshot
	model state.Snapshot // S_current: observed facts + dead-reckoned model
	// pending is S_expected for the in-flight command(s). Concurrent
	// batches chain several Befores onto one cumulative expectation that
	// a single After settles.
	pending  state.Snapshot
	started  bool
	stopped  *Alert
	alerts   []Alert
	failSafe func(Alert)

	// checkNS accumulates wall time spent inside Before/After — the
	// latency overhead the paper measures in Section II-C.
	checkNS int64
	// commands counts commands fully processed.
	commands int
}

var _ trace.Checker = (*Engine)(nil)

// New builds an engine over a rulebase and an environment.
func New(rb *rules.Rulebase, env Environment, opts ...Option) *Engine {
	e := &Engine{rb: rb, env: env, seed: state.Snapshot{}}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Start acquires S_initial (Fig. 2 lines 1–3): the configured model facts
// overlaid with the first observed snapshot.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	observed := e.env.FetchState()
	e.model = e.seed.Merge(observed)
	e.started = true
	e.stopped = nil
	e.alerts = nil
	e.pending = nil
	e.checkNS = 0
	e.commands = 0
}

// Model returns a copy of the engine's current model state.
func (e *Engine) Model() state.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.model.Clone()
}

// Alerts returns all alerts raised so far.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Stopped returns the alert that halted the experiment, if any.
func (e *Engine) Stopped() *Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped
}

// CheckOverhead returns the cumulative wall time spent in RABIT checks
// and the number of commands processed.
func (e *Engine) CheckOverhead() (time.Duration, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.checkNS), e.commands
}

// raise records an alert, halts the experiment, and invokes the fail-safe
// handler.
func (e *Engine) raise(a Alert) *Alert {
	a.Time = e.env.Now()
	e.alerts = append(e.alerts, a)
	stored := &e.alerts[len(e.alerts)-1]
	e.stopped = stored
	if e.failSafe != nil {
		// Invoke outside the lock? The handler may command devices; the
		// engine is already stopped, so re-entry would fail anyway. Call
		// inline with the lock released.
		fn := e.failSafe
		e.mu.Unlock()
		fn(a)
		e.mu.Lock()
	}
	return stored
}

// Before implements Fig. 2 lines 5–11: validity, trajectory, and the
// expected-state computation.
func (e *Engine) Before(cmd action.Command) error {
	start := time.Now()
	e.mu.Lock()
	defer func() {
		e.checkNS += time.Since(start).Nanoseconds()
		e.mu.Unlock()
	}()
	if !e.started {
		return fmt.Errorf("core: engine not started")
	}
	if e.stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, e.stopped.Error())
	}
	cmd = rules.NormalizeCommand(e.rb.Lab(), cmd)
	if vs := e.rb.Validate(e.model, cmd); len(vs) > 0 {
		return e.raise(Alert{Kind: AlertInvalidCommand, Cmd: cmd, Violations: vs})
	}
	if cmd.Action.IsRobotMotion() && e.sim != nil {
		if err := e.sim.ValidTrajectory(cmd, e.model); err != nil {
			return e.raise(Alert{Kind: AlertInvalidTrajectory, Cmd: cmd, Reason: err.Error()})
		}
	}
	base := e.pending
	if base == nil {
		base = e.model
	}
	e.pending = e.rb.Expected(base, cmd)
	return nil
}

// After implements Fig. 2 lines 13–16: fetch the actual state, compare
// with the expectation, and commit S_current.
func (e *Engine) After(cmd action.Command) error {
	cmd = rules.NormalizeCommand(e.rb.Lab(), cmd)
	start := time.Now()
	e.mu.Lock()
	defer func() {
		e.checkNS += time.Since(start).Nanoseconds()
		e.commands++
		e.mu.Unlock()
	}()
	if e.stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, e.stopped.Error())
	}
	expected := e.pending
	if expected == nil {
		expected = e.model
	}
	e.pending = nil
	observed := e.env.FetchState()
	if ms := state.CompareObserved(expected, observed); len(ms) > 0 {
		return e.raise(Alert{Kind: AlertMalfunction, Cmd: cmd, Mismatches: ms})
	}
	// S_current ← SetState(S_actual): observed facts win, dead-reckoned
	// model facts persist.
	e.model = expected.Merge(observed)
	if e.sim != nil && cmd.Action.IsRobotMotion() {
		e.sim.Observe(cmd, e.model)
	}
	return nil
}
