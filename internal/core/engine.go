// Package core implements RABIT's execution algorithm (Fig. 2 of the
// paper). The engine sits between the RATracer-style interceptor and the
// lab: for every command it (1) validates the preconditions against its
// tracked model state and raises "Invalid Command!" on violation, (2) for
// robot commands, consults the Extended Simulator when one is attached
// and raises "Invalid trajectory!", (3) computes the expected post-state
// from the transition table, and (4) after execution compares the
// observed device state against the expectation, raising "Device
// malfunction!" on mismatch.
//
// An alert preemptively stops the experiment (the Hein Lab's chosen
// policy); an optional fail-safe handler can be installed for labs where
// freezing mid-action is itself dangerous (Section II-B's caveat about an
// arm left holding a volatile substance).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/action"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/trace"
)

// AlertKind classifies the three alerts of Fig. 2.
type AlertKind int

// Alert kinds.
const (
	// AlertInvalidCommand is Fig. 2 line 7: a precondition violation.
	AlertInvalidCommand AlertKind = iota + 1
	// AlertInvalidTrajectory is Fig. 2 line 10: the Extended Simulator
	// rejected the motion.
	AlertInvalidTrajectory
	// AlertMalfunction is Fig. 2 line 15: observed state diverged from
	// the expected state.
	AlertMalfunction
)

// String renders the alert text of Fig. 2.
func (k AlertKind) String() string {
	switch k {
	case AlertInvalidCommand:
		return "Invalid Command!"
	case AlertInvalidTrajectory:
		return "Invalid trajectory!"
	case AlertMalfunction:
		return "Device malfunction!"
	default:
		return "Unknown alert"
	}
}

// Slug is the alert kind's metric-friendly name.
func (k AlertKind) Slug() string {
	switch k {
	case AlertInvalidCommand:
		return "invalid_command"
	case AlertInvalidTrajectory:
		return "invalid_trajectory"
	case AlertMalfunction:
		return "malfunction"
	default:
		return "unknown"
	}
}

// Alert is one raised safety alert.
type Alert struct {
	Kind       AlertKind
	Cmd        action.Command
	Violations []rules.Violation
	Mismatches []state.Mismatch
	Reason     string
	Time       time.Duration
}

// Error renders the alert as the error the script receives (RATracer
// raises a Python exception in the paper's implementation). The first
// violation and mismatch are spelled out; any further ones are counted,
// so an alert never silently under-reports what it saw.
func (a *Alert) Error() string {
	msg := fmt.Sprintf("RABIT alert: %s command %s", a.Kind, a.Cmd)
	if len(a.Violations) > 0 {
		msg += ": " + a.Violations[0].Error() + andMore(len(a.Violations)-1, "violation", "violations")
	}
	if len(a.Mismatches) > 0 {
		msg += ": " + a.Mismatches[0].String() + andMore(len(a.Mismatches)-1, "mismatch", "mismatches")
	}
	if a.Reason != "" {
		msg += ": " + a.Reason
	}
	return msg
}

// andMore renders the "(and N more …)" suffix for truncated lists.
func andMore(n int, singular, plural string) string {
	switch {
	case n <= 0:
		return ""
	case n == 1:
		return " (and 1 more " + singular + ")"
	default:
		return fmt.Sprintf(" (and %d more %s)", n, plural)
	}
}

// AsAlert extracts an Alert from an error chain.
func AsAlert(err error) (*Alert, bool) {
	var a *Alert
	if errors.As(err, &a) {
		return a, true
	}
	return nil, false
}

// ErrStopped is wrapped by errors returned once the experiment has been
// halted by an alert.
var ErrStopped = errors.New("core: experiment stopped by a previous RABIT alert")

// ErrDraining is returned by Before once the engine has been drained:
// the command was rejected at admission, never checked and never
// executed. Draining is a real gate, not advisory quiescence — a
// gateway replica flips /readyz only after this gate is closed, so a
// submit racing a drain can never slip a command in afterwards.
var ErrDraining = errors.New("core: engine draining; command rejected")

// TrajectoryValidator is the Extended Simulator's interface (Fig. 2,
// lines 8–10). Observe lets the simulator mirror accepted commands.
type TrajectoryValidator interface {
	ValidTrajectory(cmd action.Command, model state.Snapshot) error
	Observe(cmd action.Command, model state.Snapshot)
}

// Environment is what the engine needs from a deployment stage.
type Environment interface {
	Execute(cmd action.Command) error
	FetchState() state.Snapshot
	Now() time.Duration
}

// ScopedEnvironment is an Environment that can additionally report the
// state of just a subset of devices. The sharded pipeline uses it to
// fetch only the commanded devices (plus every sensor — exogenous inputs
// are global by nature) instead of polling the whole deck per command.
// Environments without it fall back to FetchState, which the engine then
// filters down to the command's scope.
type ScopedEnvironment interface {
	Environment
	FetchStateScoped(ids []string) state.Snapshot
}

// Option configures the engine.
type Option func(*Engine)

// WithSimulator attaches an Extended Simulator.
func WithSimulator(v TrajectoryValidator) Option {
	return func(e *Engine) { e.sim = v }
}

// WithFailSafe installs a handler invoked on every alert, e.g. to command
// a safe parking pose instead of freezing.
func WithFailSafe(fn func(Alert)) Option {
	return func(e *Engine) { e.failSafe = fn }
}

// WithInitialModel seeds the engine's dead-reckoned model facts (container
// positions, stoppers) from the lab configuration.
func WithInitialModel(s state.Snapshot) Option {
	return func(e *Engine) { e.seed = s.Clone() }
}

// WithSerialPipeline forces every command through the global single-lock
// pipeline, disabling per-device sharding. Parity tests and the
// throughput baseline use it; the sharded pipeline is the default.
func WithSerialPipeline() Option {
	return func(e *Engine) { e.serial = true }
}

// WithoutRuleMetrics disables per-rule instrumentation (evaluation and
// fire counts, eval latency, near-miss margins): validation runs the
// uninstrumented path with zero per-rule cost. The overhead benchmark's
// baseline uses it; deployments keep the default (enabled).
func WithoutRuleMetrics() Option {
	return func(e *Engine) { e.noRuleMetrics = true }
}

// WithObserver attaches a telemetry registry — typically the system-wide
// one shared with the interceptor and simulator. Passing nil disables
// instrumentation entirely (CheckOverhead then reports zero); without
// this option the engine owns a private registry.
func WithObserver(reg *obs.Registry) Option {
	return func(e *Engine) {
		e.obs = reg
		e.obsSet = true
	}
}

// Engine is RABIT's core checker.
//
// Locking. The engine runs two pipelines:
//
//   - The global pipeline serializes under mu — the seed design. Robot
//     motion and manipulation (whose rules and transitions reach across
//     devices), commands whose rule bucket reads other devices' state
//     (rb.LabelReadsGlobal), and everything under WithSerialPipeline take
//     this path.
//   - The sharded pipeline never takes mu. A command whose rules read
//     only its own devices locks just those devices' shard mutexes for
//     the whole Before→execute→After cycle, so disjoint-device commands
//     validate, execute, fetch, and compare concurrently.
//
// Shared structures get their own short-section locks: stateMu guards the
// model (readers validate/compare under RLock, commits take Lock),
// adminMu guards started/stopped/alerts, shardMu guards the shard table.
// Lock order is mu → shard mutexes → stateMu → adminMu; shardMu is a
// leaf taken only for table lookups, never while acquiring shard mutexes.
// The fail-safe handler runs outside every lock, after the check span has
// been stamped into cCheckNS (the handler may command devices and take
// arbitrarily long; its time is the lab's, not the checker's).
type Engine struct {
	mu        sync.Mutex // global pipeline: motion, manipulation, global-read rules
	rb        *rules.Rulebase
	env       Environment
	scopedEnv ScopedEnvironment // env, when it supports scoped fetch
	sim       TrajectoryValidator
	serial    bool

	stateMu sync.RWMutex
	seed    state.Snapshot
	model   state.Snapshot // S_current: observed facts + dead-reckoned model

	// Motion fast path (see speculate.go): the simulator's deck-epoch and
	// speculation surfaces when it offers them, the single-flight gate and
	// drain group for the lookahead worker.
	epocher    deckEpocher
	spec       speculator
	specTagged speculatorTagged
	specOff    bool
	specBusy   atomic.Bool
	specWG     sync.WaitGroup

	// pending is S_expected for the in-flight global-path command(s),
	// layered over the model copy-on-write. Concurrent batches chain
	// several Befores onto one cumulative expectation that a single
	// After settles. Guarded by mu.
	pending *state.Overlay

	// Flight recorder (see record.go): rec is the black box, pendingRecs
	// the open records of the in-flight global batch (guarded by mu, like
	// pending), provSim the simulator's provenance surface when it offers
	// one.
	rec         *recorder.Recorder
	pendingRecs []*recorder.Active
	provSim     provValidator

	// Causal tracing & safety SLOs (see tracing.go): tracer resolves the
	// (device, seq) → span bindings the interceptor published; tracedSim
	// and tracedSpec are the simulator's traced surfaces when it offers
	// them; slos feeds the check-overhead and detection-latency
	// objectives. All nil-safe.
	tracer     *otrace.Tracer
	tracedSim  tracedValidator
	tracedSpec tracedSpeculator
	slos       *obs.SafetySLOs

	adminMu  sync.Mutex
	started  bool
	stopped  *Alert
	alerts   []Alert
	failSafe func(Alert)

	// draining gates admission (see Drain); inflight counts Before/After
	// calls currently inside the engine so Drain can wait them out.
	draining atomic.Bool
	inflight atomic.Int64

	// shardMu guards the per-device shard table (see shard.go).
	shardMu  sync.Mutex
	shards   map[string]*sync.Mutex
	inFlight map[string]int
	tickets  map[string]*shardTicket

	// obs is the telemetry registry; the instruments below are resolved
	// once at construction so the hot path never takes a map lookup.
	// All of them tolerate being nil (instrumentation disabled).
	obs    *obs.Registry
	obsSet bool
	// hValidate/hTrajectory/hFetch/hCompare are the per-stage latency
	// histograms decomposing the Section II-C overhead.
	hValidate   *obs.Histogram
	hTrajectory *obs.Histogram
	hFetch      *obs.Histogram
	hCompare    *obs.Histogram
	// cCheckNS accumulates wall time spent inside Before/After — the
	// aggregate the paper measures — and cCommands counts commands fully
	// processed. Both live in the registry so /metrics sees them.
	cCheckNS  *obs.Counter
	cCommands *obs.Counter
	// cSpeculations/cSpecDropped count lookahead hints taken and dropped
	// by the single-flight gate.
	cSpeculations *obs.Counter
	cSpecDropped  *obs.Counter
	// ruleMetrics caches per-rule instruments (ISSUE 10); nil when
	// disabled via WithoutRuleMetrics or when instrumentation is off.
	ruleMetrics   *rules.RuleMetrics
	noRuleMetrics bool
}

var _ trace.Checker = (*Engine)(nil)

// New builds an engine over a rulebase and an environment.
func New(rb *rules.Rulebase, env Environment, opts ...Option) *Engine {
	e := &Engine{rb: rb, env: env, seed: state.Snapshot{}}
	e.scopedEnv, _ = env.(ScopedEnvironment)
	for _, o := range opts {
		o(e)
	}
	if !e.obsSet {
		e.obs = obs.NewRegistry("engine")
	}
	e.hValidate = e.obs.Histogram(obs.StageValidate)
	e.hTrajectory = e.obs.Histogram(obs.StageTrajectory)
	e.hFetch = e.obs.Histogram(obs.StageFetch)
	e.hCompare = e.obs.Histogram(obs.StageCompare)
	e.cCheckNS = e.obs.Counter(obs.CounterCheckNS)
	e.cCommands = e.obs.Counter(obs.CounterCommands)
	e.cSpeculations = e.obs.Counter(obs.CounterSpeculations)
	e.cSpecDropped = e.obs.Counter(obs.CounterSpeculationsDropped)
	if !e.noRuleMetrics {
		e.ruleMetrics = rules.NewRuleMetrics(e.obs, rb)
	}
	// The motion fast path engages only when the simulator carries a deck
	// epoch — without it there is no sound pairing to speculate against.
	e.epocher, _ = e.sim.(deckEpocher)
	if e.epocher != nil {
		e.spec, _ = e.sim.(speculator)
		e.specTagged, _ = e.sim.(speculatorTagged)
	}
	e.provSim, _ = e.sim.(provValidator)
	e.tracedSim, _ = e.sim.(tracedValidator)
	if e.epocher != nil {
		e.tracedSpec, _ = e.sim.(tracedSpeculator)
	}
	return e
}

// Recorder returns the attached flight recorder (nil when recording is
// disabled).
func (e *Engine) Recorder() *recorder.Recorder { return e.rec }

// Obs returns the engine's telemetry registry (nil when instrumentation
// was disabled via WithObserver(nil)).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// Start acquires S_initial (Fig. 2 lines 1–3): the configured model facts
// overlaid with the first observed snapshot. No commands may be in flight.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	observed := e.env.FetchState()
	e.stateMu.Lock()
	e.model = e.seed.Merge(observed)
	if e.epocher != nil {
		// The whole model was rebuilt; every cached verdict is suspect.
		e.epocher.BumpDeckEpoch()
	}
	e.stateMu.Unlock()
	e.adminMu.Lock()
	e.started = true
	e.stopped = nil
	e.alerts = nil
	e.adminMu.Unlock()
	// A fresh run reopens the admission gate a previous Drain closed.
	e.draining.Store(false)
	e.pending = nil
	e.pendingRecs = nil
	e.shardMu.Lock()
	e.shards = map[string]*sync.Mutex{}
	e.inFlight = map[string]int{}
	e.tickets = map[string]*shardTicket{}
	e.shardMu.Unlock()
	// A fresh run measures from zero: reset the engine-owned instruments
	// (cached pointers stay valid; other components' instruments in a
	// shared registry are untouched), including the dynamically named
	// alert and violation families — otherwise /metrics keeps reporting
	// the previous run's alert totals across restarts.
	e.cCheckNS.Reset()
	e.cCommands.Reset()
	e.hValidate.Reset()
	e.hTrajectory.Reset()
	e.hFetch.Reset()
	e.hCompare.Reset()
	e.obs.ResetPrefix(obs.PrefixAlerts)
	e.obs.ResetPrefix(obs.PrefixViolations)
	e.ruleMetrics.Reset()
	e.obs.Gauge(obs.GaugeRules).Set(int64(len(e.rb.Rules())))
	e.slos.Reset()
}

// Rebind points the engine at a different environment and restarts it
// against that environment's observed state. It is the pooled-engine
// reset path: a campaign runner reuses one engine (rulebase, simulator,
// instruments, caches) across thousands of generated scenarios, swapping
// only the world underneath. The caller must guarantee quiescence — no
// commands in flight and no speculation running (Drain + WaitSpeculation)
// — exactly as for Start.
func (e *Engine) Rebind(env Environment) {
	e.mu.Lock()
	e.env = env
	e.scopedEnv, _ = env.(ScopedEnvironment)
	e.mu.Unlock()
	e.Start()
}

// Model returns a copy of the engine's current model state.
func (e *Engine) Model() state.Snapshot {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.model.Clone()
}

// Alerts returns all alerts raised so far.
func (e *Engine) Alerts() []Alert {
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Stopped returns the alert that halted the experiment, if any.
func (e *Engine) Stopped() *Alert {
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	return e.stopped
}

// CheckOverhead returns the cumulative wall time spent in RABIT checks
// and the number of commands processed. It reads the telemetry registry
// (atomics), so it is safe to call concurrently with checks.
func (e *Engine) CheckOverhead() (time.Duration, int) {
	return time.Duration(e.cCheckNS.Value()), int(e.cCommands.Value())
}

// adminState reads the started flag and stop alert.
func (e *Engine) adminState() (bool, *Alert) {
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	return e.started, e.stopped
}

// raise records an alert and halts the experiment. It takes only adminMu,
// so both pipelines may raise concurrently. The stored alert is handed
// back through fs for the caller's wrapper to pass to the fail-safe
// handler — outside all locks and outside the measured check window
// (the seed charged the handler's runtime to check overhead; see
// Engine.finish).
func (e *Engine) raise(a Alert, fs **Alert) *Alert {
	a.Time = e.env.Now()
	e.adminMu.Lock()
	e.alerts = append(e.alerts, a)
	stored := &e.alerts[len(e.alerts)-1]
	e.stopped = stored
	e.adminMu.Unlock()
	e.obs.Counter(obs.PrefixAlerts + a.Kind.Slug()).Inc()
	for _, v := range a.Violations {
		e.obs.Counter(obs.PrefixViolations + v.Rule.ID).Inc()
	}
	e.obs.Emit(obs.Event{
		T:      a.Time,
		Kind:   "alert",
		Name:   a.Kind.Slug(),
		Device: a.Cmd.Device,
		Seq:    a.Cmd.Seq,
		Detail: stored.Error(),
	})
	if fs != nil {
		*fs = stored
	}
	return stored
}

// finish closes a check: the span is stamped into cCheckNS first, then —
// and only then — the fail-safe handler runs, outside every engine lock.
// The handler may command devices or park an arm; that time belongs to
// the lab's response, not to RABIT's check overhead.
func (e *Engine) finish(start time.Time, fsAlert *Alert) {
	d := time.Since(start)
	e.cCheckNS.Add(d.Nanoseconds())
	e.slos.ObserveCheck(d)
	if fsAlert != nil && e.failSafe != nil {
		e.failSafe(*fsAlert)
	}
}

// Drain closes the admission gate and waits until every in-flight
// Before/After call has left the engine. Commands submitted afterwards
// are rejected with ErrDraining; a command whose Before was already
// admitted may still run its After (an in-flight cycle finishes its
// checks). The gate-then-wait order makes the race benign: an admission
// that read the gate open is visible to the drainer's wait, an
// admission that started after the gate closed is rejected. Start
// reopens the gate for a fresh run.
func (e *Engine) Drain() {
	e.draining.Store(true)
	for e.inflight.Load() > 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Draining reports whether the admission gate is closed.
func (e *Engine) Draining() bool { return e.draining.Load() }

// admit counts a checker call in-flight; gated calls are rejected once
// the engine drains. The increment happens before the gate read — see
// Drain for why that order closes the submit/drain race.
func (e *Engine) admit(gated bool) error {
	e.inflight.Add(1)
	if gated && e.draining.Load() {
		e.inflight.Add(-1)
		return ErrDraining
	}
	return nil
}

// Before implements Fig. 2 lines 5–11: validity, trajectory, and the
// expected-state computation. Commands whose rules read only their own
// devices run on the sharded pipeline; the rest serialize globally.
func (e *Engine) Before(cmd action.Command) error {
	if err := e.admit(true); err != nil {
		return err
	}
	defer e.inflight.Add(-1)
	start := time.Now()
	cmd = rules.NormalizeCommand(e.rb.Lab(), cmd)
	var fsAlert *Alert
	var err error
	if e.routeSharded(cmd) {
		err = e.beforeSharded(cmd, start, &fsAlert)
	} else {
		err = e.beforeGlobal(cmd, start, &fsAlert)
	}
	e.finish(start, fsAlert)
	return err
}

// After implements Fig. 2 lines 13–16: fetch the actual state, compare
// with the expectation, and commit S_current. After is never gated:
// a command admitted before a drain still settles its post-state check.
func (e *Engine) After(cmd action.Command) error {
	e.admit(false)
	defer e.inflight.Add(-1)
	start := time.Now()
	cmd = rules.NormalizeCommand(e.rb.Lab(), cmd)
	var fsAlert *Alert
	var err error
	if e.routeSharded(cmd) {
		err = e.afterSharded(cmd, start, &fsAlert)
	} else {
		err = e.afterGlobal(cmd, start, &fsAlert)
	}
	e.finish(start, fsAlert)
	return err
}

// beforeGlobal is the seed pipeline: one lock across the whole check.
func (e *Engine) beforeGlobal(cmd action.Command, start time.Time, fs **Alert) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	started, stopped := e.adminState()
	if !started {
		return fmt.Errorf("core: engine not started")
	}
	if stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, stopped.Error())
	}
	act := e.beginRecord(cmd, recorder.PathGlobal)
	tctx := e.traceOf(cmd, act)
	// Stage boundaries share clock reads to keep instrumentation under
	// 1% of a check: before.validate runs from Before's entry (it covers
	// normalization + rule evaluation) and its end stamp doubles as
	// before.trajectory's start. Trace spans reuse the same stamps.
	traceID := ""
	if tctx.Valid() {
		traceID = tctx.Trace.String()
	}
	e.stateMu.RLock()
	vs := e.rb.ValidateObserved(e.model, cmd, e.ruleMetrics, traceID)
	if act != nil {
		scope := recordScope(cmd, e.model.GetString(state.ContainerInside(cmd.Device)))
		act.R.Pre = recorder.CaptureView(e.model, scope)
	}
	e.stateMu.RUnlock()
	validateEnd := time.Now()
	vd := validateEnd.Sub(start)
	e.hValidate.ObserveExemplar(vd, traceID)
	if act != nil {
		act.R.Spans.ValidateNS = vd.Nanoseconds()
	}
	if len(vs) > 0 {
		al := e.raise(Alert{Kind: AlertInvalidCommand, Cmd: cmd, Violations: vs}, fs)
		e.stageSpan(tctx, obs.StageValidate, start, validateEnd, al)
		e.recordAlert(act, al)
		return al
	}
	e.stageSpan(tctx, obs.StageValidate, start, validateEnd, nil)
	if cmd.Action.IsRobotMotion() && e.sim != nil {
		var err error
		// The trajectory span is the one pre-created (not retroactive)
		// span: the simulator's kin/sim child spans need its context
		// before the call runs.
		tspan := e.tracer.StartSpanAt(tctx, obs.StageTrajectory, validateEnd)
		e.stateMu.RLock()
		switch {
		case tspan != nil && e.tracedSim != nil:
			var v recorder.Verdict
			v, err = e.tracedSim.ValidTrajectoryTraced(cmd, e.model, tspan.Context())
			if act != nil {
				act.R.Verdict = v
			}
		case act != nil && e.provSim != nil:
			act.R.Verdict, err = e.provSim.ValidTrajectoryProv(cmd, e.model)
		default:
			err = e.sim.ValidTrajectory(cmd, e.model)
		}
		e.stateMu.RUnlock()
		trajEnd := time.Now()
		td := trajEnd.Sub(validateEnd)
		e.hTrajectory.ObserveExemplar(td, traceID)
		if act != nil {
			act.R.Spans.TrajectoryNS = td.Nanoseconds()
		}
		if err != nil {
			al := e.raise(Alert{Kind: AlertInvalidTrajectory, Cmd: cmd, Reason: err.Error()}, fs)
			if tspan != nil {
				tspan.MarkAlert(al.Kind.Slug(), al.Error())
			}
			tspan.EndAt(trajEnd)
			e.recordAlert(act, al)
			return al
		}
		tspan.EndAt(trajEnd)
	}
	e.stateMu.RLock()
	if e.pending == nil {
		e.pending = e.rb.ExpectedOverlay(e.model, cmd)
	} else {
		e.pending = e.rb.ExpectedOverlay(e.pending, cmd)
	}
	e.stateMu.RUnlock()
	if act != nil {
		act.R.Expected = recorder.CaptureEdits(e.pending)
		e.pendingRecs = append(e.pendingRecs, act)
	}
	return nil
}

// afterGlobal settles a global-path command. While sharded commands are
// in flight, their devices' keys are excluded from both the comparison
// and the commit — their effects belong to those commands' own Afters.
func (e *Engine) afterGlobal(cmd action.Command, start time.Time, fs **Alert) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, stopped := e.adminState(); stopped != nil {
		return fmt.Errorf("%w: %s", ErrStopped, stopped.Error())
	}
	// Only commands that run the compare/commit path below count as fully
	// processed; the stopped early-return above must not inflate the
	// "commands" total after an alert has halted the run.
	e.cCommands.Inc()
	pending := e.pending
	e.pending = nil
	recs := e.pendingRecs
	e.pendingRecs = nil
	// The After belongs to one command of the batch; its batch-mates'
	// records settle alongside it (see settleBatch).
	var act *recorder.Active
	for _, a := range recs {
		if a != nil && a.R.Seq == cmd.Seq && a.R.Device == cmd.Device {
			act = a
		}
	}
	tctx := e.traceOf(cmd, act)
	traceID := ""
	if tctx.Valid() {
		traceID = tctx.Trace.String()
	}
	// after.fetch runs from After's entry through state acquisition; its
	// end stamp doubles as after.compare's start (see Before).
	observed := e.env.FetchState()
	e.dropInFlight(observed)
	fetchEnd := time.Now()
	fd := fetchEnd.Sub(start)
	e.hFetch.ObserveExemplar(fd, traceID)
	e.stateMu.RLock()
	var expected state.View = e.model
	if pending != nil {
		expected = pending
	}
	ms := state.CompareObservedView(expected, observed)
	if act != nil {
		scope := recordScope(cmd, e.model.GetString(state.ContainerInside(cmd.Device)))
		act.R.Observed = recorder.CaptureView(observed, scope)
	}
	e.stateMu.RUnlock()
	compareEnd := time.Now()
	cd := compareEnd.Sub(fetchEnd)
	e.hCompare.ObserveExemplar(cd, traceID)
	if act != nil {
		act.R.Spans.FetchNS = fd.Nanoseconds()
		act.R.Spans.CompareNS = cd.Nanoseconds()
	}
	e.stageSpan(tctx, obs.StageFetch, start, fetchEnd, nil)
	if len(ms) > 0 {
		al := e.raise(Alert{Kind: AlertMalfunction, Cmd: cmd, Mismatches: ms}, fs)
		e.stageSpan(tctx, obs.StageCompare, fetchEnd, compareEnd, al)
		e.recordAlert(act, al)
		by := ""
		if act != nil {
			by = act.R.Corr
		}
		e.settleBatch(recs, act, by)
		return al
	}
	e.stageSpan(tctx, obs.StageCompare, fetchEnd, compareEnd, nil)
	// S_current ← SetState(S_actual): observed facts win, dead-reckoned
	// model facts persist. The pending overlay commits its edits into the
	// live model in place — no full-map clone on the hot path — and any
	// deck-relevant change bumps the simulator's epoch in the same
	// critical section (see commitModel).
	epoch := e.commitModel(pending, observed, cmd)
	if act != nil {
		act.R.Verdict.EpochAtCommit = epoch
		act.Commit()
		e.settleBatch(recs, act, act.R.Corr)
	} else {
		e.settleBatch(recs, nil, "")
	}
	return nil
}
