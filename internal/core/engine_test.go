package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/state"
)

// fakeEnv scripts a minimal environment: commands either succeed or fail,
// and FetchState returns a programmable snapshot.
type fakeEnv struct {
	observed state.Snapshot
	execErr  error
	executed []action.Command
	now      time.Duration
}

func (f *fakeEnv) Execute(cmd action.Command) error {
	f.executed = append(f.executed, cmd)
	f.now += time.Second
	return f.execErr
}

func (f *fakeEnv) FetchState() state.Snapshot { return f.observed.Clone() }
func (f *fakeEnv) Now() time.Duration         { return f.now }

// fakeLab is a minimal LabModel: one arm, one door device, no geometry.
type fakeLab struct{}

var _ rules.LabModel = fakeLab{}

func (fakeLab) DeviceType(id string) (rules.DeviceType, bool) {
	switch id {
	case "arm":
		return rules.TypeRobotArm, true
	case "dd":
		return rules.TypeDosingSystem, true
	default:
		return 0, false
	}
}
func (fakeLab) DeviceHasDoor(id string) bool { return id == "dd" }
func (fakeLab) DeviceDoors(id string) []string {
	if id == "dd" {
		return []string{""}
	}
	return nil
}
func (fakeLab) LocationDoor(loc string) string                     { return "" }
func (fakeLab) ArmIDs() []string                                   { return []string{"arm"} }
func (fakeLab) LocationOwner(loc string) (string, bool)            { return "", false }
func (fakeLab) LocationIsInside(loc string) bool                   { return false }
func (fakeLab) LocationPos(a, l string) (geom.Vec3, bool)          { return geom.Vec3{}, false }
func (fakeLab) MatchLocation(a string, p geom.Vec3) (string, bool) { return "", false }
func (fakeLab) DeviceBoxes(a string) []rules.NamedBox              { return nil }
func (fakeLab) SleepBox(a, o string) (geom.AABB, bool)             { return geom.AABB{}, false }
func (fakeLab) ArmGeometry(a string) rules.ArmGeom                 { return rules.ArmGeom{} }
func (fakeLab) HostsContainers(id string) bool                     { return false }
func (fakeLab) ObjectGeometry(id string) (rules.ObjectGeom, bool)  { return rules.ObjectGeom{}, false }
func (fakeLab) ActionThreshold(id string) (float64, bool)          { return 0, false }
func (fakeLab) FloorZ(a string) float64                            { return -10 }
func (fakeLab) Walls(a string) []geom.Plane                        { return nil }
func (fakeLab) Zone(a string) (geom.Plane, bool)                   { return geom.Plane{}, false }

// fakeSim scripts trajectory validation.
type fakeSim struct {
	err      error
	checked  []action.Command
	observed []action.Command
}

func (f *fakeSim) ValidTrajectory(cmd action.Command, model state.Snapshot) error {
	f.checked = append(f.checked, cmd)
	return f.err
}

func (f *fakeSim) Observe(cmd action.Command, model state.Snapshot) {
	f.observed = append(f.observed, cmd)
}

func newEngine(env Environment, opts ...Option) *Engine {
	rb := rules.MustNewRulebase(fakeLab{}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env, opts...)
	e.Start()
	return e
}

func TestEngineHappyCommand(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env)
	cmd := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	env.observed.Set(state.DoorStatus("dd"), state.Bool(true)) // the door physically opened
	if err := e.After(cmd); err != nil {
		t.Fatal(err)
	}
	if got := e.Model().GetBool(state.DoorStatus("dd")); !got {
		t.Error("model did not commit the new door state")
	}
	if len(e.Alerts()) != 0 {
		t.Errorf("unexpected alerts: %v", e.Alerts())
	}
}

func TestEngineInvalidCommandAlert(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	e := newEngine(env)
	// Opening a door while the device runs violates rule 10.
	err := e.Before(action.Command{Device: "dd", Action: action.OpenDoor})
	if err == nil {
		t.Fatal("invalid command accepted")
	}
	alert, ok := AsAlert(err)
	if !ok || alert.Kind != AlertInvalidCommand {
		t.Fatalf("want invalid-command alert, got %v", err)
	}
	if len(alert.Violations) == 0 || alert.Violations[0].Rule.ID != "general-10" {
		t.Errorf("violations wrong: %v", alert.Violations)
	}
	if e.Stopped() == nil {
		t.Error("experiment should be stopped")
	}
}

func TestEngineStopLatches(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	e := newEngine(env)
	_ = e.Before(action.Command{Device: "dd", Action: action.OpenDoor})
	err := e.Before(action.Command{Device: "dd", Action: action.CloseDoor})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	// Start clears the latch.
	env.observed.Set(state.Running("dd"), state.Bool(false))
	e.Start()
	if err := e.Before(action.Command{Device: "dd", Action: action.OpenDoor}); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
}

func TestEngineMalfunctionAlert(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{state.DoorStatus("dd"): state.Bool(false)}}
	e := newEngine(env)
	cmd := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	// The door does NOT move (stuck motor): observed stays closed.
	err := e.After(cmd)
	if err == nil {
		t.Fatal("malfunction went unnoticed")
	}
	alert, ok := AsAlert(err)
	if !ok || alert.Kind != AlertMalfunction {
		t.Fatalf("want malfunction alert, got %v", err)
	}
	if len(alert.Mismatches) != 1 || alert.Mismatches[0].Key != state.DoorStatus("dd") {
		t.Errorf("mismatches wrong: %v", alert.Mismatches)
	}
}

func TestEngineUnobservedVariablesDoNotAlert(t *testing.T) {
	// Holding is dead-reckoned; FetchState never reports it, so the
	// model's belief can never raise a malfunction.
	env := &fakeEnv{observed: state.Snapshot{}}
	e := newEngine(env, WithInitialModel(state.Snapshot{
		state.Holding("arm"):  state.Bool(false),
		state.ObjectAt("loc"): state.Str("vial"),
		state.ArmAt("arm"):    state.Str("loc"),
	}))
	e.Start()
	cmd := action.Command{Device: "arm", Action: action.CloseGripper}
	if err := e.Before(cmd); err != nil {
		t.Fatal(err)
	}
	if err := e.After(cmd); err != nil {
		t.Fatal(err)
	}
	if !e.Model().GetBool(state.Holding("arm")) {
		t.Error("model should believe the arm now holds the vial")
	}
}

func TestEngineTrajectoryValidatorWiring(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	sim := &fakeSim{}
	e := newEngine(env, WithSimulator(sim))
	move := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)}
	if err := e.Before(move); err != nil {
		t.Fatal(err)
	}
	if err := e.After(move); err != nil {
		t.Fatal(err)
	}
	if len(sim.checked) != 1 || len(sim.observed) != 1 {
		t.Fatalf("simulator hooks: checked=%d observed=%d", len(sim.checked), len(sim.observed))
	}
	// Non-motion commands bypass the simulator.
	door := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(door); err != nil {
		t.Fatal(err)
	}
	if len(sim.checked) != 1 {
		t.Error("non-motion command reached the simulator")
	}
}

func TestEngineInvalidTrajectoryAlert(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	sim := &fakeSim{err: errors.New("collides with grid")}
	e := newEngine(env, WithSimulator(sim))
	err := e.Before(action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)})
	alert, ok := AsAlert(err)
	if !ok || alert.Kind != AlertInvalidTrajectory {
		t.Fatalf("want invalid-trajectory alert, got %v", err)
	}
	if !strings.Contains(alert.Error(), "Invalid trajectory!") {
		t.Errorf("alert text: %s", alert.Error())
	}
}

func TestEngineFailSafeHook(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	var got []Alert
	e := newEngine(env, WithFailSafe(func(a Alert) { got = append(got, a) }))
	_ = e.Before(action.Command{Device: "dd", Action: action.OpenDoor})
	if len(got) != 1 || got[0].Kind != AlertInvalidCommand {
		t.Fatalf("fail-safe hook got %v", got)
	}
}

func TestEngineConcurrentBatchExpectations(t *testing.T) {
	// Two Befores chain into one cumulative expectation settled by a
	// single After — the DoConcurrent contract.
	env := &fakeEnv{observed: state.Snapshot{}}
	e := newEngine(env)
	c1 := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)}
	c2 := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(c1); err != nil {
		t.Fatal(err)
	}
	if err := e.Before(c2); err != nil {
		t.Fatal(err)
	}
	env.observed.Set(state.DoorStatus("dd"), state.Bool(true))
	if err := e.After(c2); err != nil {
		t.Fatal(err)
	}
	m := e.Model()
	if !m.GetBool(state.DoorStatus("dd")) {
		t.Error("cumulative expectation lost the door effect")
	}
	if m.GetBool(state.ArmAsleep("arm")) {
		t.Error("cumulative expectation lost the move effect")
	}
}

func TestEngineRequiresStart(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	rb := rules.MustNewRulebase(fakeLab{}, rules.Config{Generation: rules.GenInitial})
	e := New(rb, env)
	if err := e.Before(action.Command{Device: "dd", Action: action.OpenDoor}); err == nil {
		t.Fatal("unstarted engine accepted a command")
	}
}

func TestEngineOverheadAccounting(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{}}
	e := newEngine(env)
	cmd := action.Command{Device: "dd", Action: action.CloseDoor}
	for i := 0; i < 10; i++ {
		if err := e.Before(cmd); err != nil {
			t.Fatal(err)
		}
		if err := e.After(cmd); err != nil {
			t.Fatal(err)
		}
	}
	d, n := e.CheckOverhead()
	if n != 10 {
		t.Errorf("commands = %d, want 10", n)
	}
	if d <= 0 {
		t.Error("check time not accounted")
	}
}

func TestAlertKindStrings(t *testing.T) {
	if AlertInvalidCommand.String() != "Invalid Command!" ||
		AlertInvalidTrajectory.String() != "Invalid trajectory!" ||
		AlertMalfunction.String() != "Device malfunction!" {
		t.Error("alert strings do not match Fig. 2")
	}
}

func TestEngineAfterStoppedNotCounted(t *testing.T) {
	env := &fakeEnv{observed: state.Snapshot{
		state.DoorStatus("dd"): state.Bool(true),
		state.Running("dd"):    state.Bool(true),
	}}
	e := newEngine(env)
	ok := action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)}
	if err := e.Before(ok); err != nil {
		t.Fatal(err)
	}
	if err := e.After(ok); err != nil {
		t.Fatal(err)
	}
	// Raise an alert: opening the door while the device runs.
	bad := action.Command{Device: "dd", Action: action.OpenDoor}
	if err := e.Before(bad); err == nil {
		t.Fatal("invalid command accepted")
	}
	// The executor's deferred After still fires after the alert; its
	// ErrStopped early-return must not count as a processed command.
	if err := e.After(bad); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if _, n := e.CheckOverhead(); n != 1 {
		t.Errorf("commands = %d after stopped After, want 1", n)
	}
}
