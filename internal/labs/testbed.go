// Package labs provides the canonical deck configurations of the paper:
// the Hein Lab production deck (Fig. 1a), the low-fidelity testbed
// (Fig. 4), and the Berlinguette Lab deck used for the generalization
// study (Section V-B). Each is expressed as the JSON-serialisable
// config.LabSpec a researcher would author; WriteJSON emits the canonical
// files.
package labs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
)

// TestbedSpec returns the testbed deck of Fig. 4: a ViperX 300 and a Ned2
// on a shared platform with a vial grid, a dosing-device mockup with a
// working door, a hotplate mockup, a centrifuge mockup, and a syringe
// pump mockup.
//
// Severity bookkeeping: the dosing device and centrifuge are marked
// expensive even though the physical testbed uses cardboard — Table V
// grades bugs by the damage they would cause on the production deck, and
// the testbed's cheap reality is captured by the stage's damage-cost
// scale instead.
//
// Deck frame: ViperX base at the origin, Ned2 base at (0.8, 0, 0), floor
// at z=0.
func TestbedSpec() *config.LabSpec {
	return &config.LabSpec{
		Lab:    "hein-testbed",
		FloorZ: 0,
		Walls: []config.WallPlaneSpec{
			// The lab wall behind the dosing device; the interior is on
			// the -y side of y = 0.62.
			{Name: "back_wall", Normal: config.Vec{X: 0, Y: -1, Z: 0}, Offset: -0.62},
		},
		Arms: []config.ArmSpec{
			{
				ID: "viperx", Type: "robot_arm", Model: "viperx300", ClassName: "ViperXDriver",
				Conn:     config.Connection{Transport: "tcp", Host: "192.168.1.20", Port: 50000},
				Base:     config.Vec{X: 0, Y: 0, Z: 0},
				Gripper:  config.GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &config.BoxSpec{Min: config.Vec{X: -0.15, Y: -0.15, Z: 0}, Max: config.Vec{X: 0.15, Y: 0.15, Z: 0.30}},
				// ViperX owns the deck half x < 0.45 (its own frame equals
				// the deck frame).
				ZoneWall: &config.WallSpec{Normal: config.Vec{X: -1, Y: 0, Z: 0}, Offset: -0.45},
			},
			{
				ID: "ned2", Type: "robot_arm", Model: "ned2", ClassName: "Ned2Driver",
				Conn:     config.Connection{Transport: "tcp", Host: "192.168.1.21", Port: 40001},
				Base:     config.Vec{X: 0.8, Y: 0, Z: 0},
				Gripper:  config.GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &config.BoxSpec{Min: config.Vec{X: -0.15, Y: -0.15, Z: 0}, Max: config.Vec{X: 0.15, Y: 0.15, Z: 0.30}},
				// Ned2 owns x > 0.45 deck, i.e. x > -0.35 in its frame.
				ZoneWall: &config.WallSpec{Normal: config.Vec{X: 1, Y: 0, Z: 0}, Offset: -0.35},
			},
		},
		Devices: []config.DeviceSpec{
			{
				ID: "grid", Type: "container_rack", Kind: "grid", ClassName: "CardboardMockup",
				Cuboid: box(0.29, 0.19, 0, 0.41, 0.31, 0.08),
			},
			{
				ID: "dosing_device", Type: "dosing_system", Kind: "dosing", ClassName: "MTQuantos",
				Conn:      config.Connection{Transport: "tcp", Host: "192.168.1.30", Port: 8100},
				Expensive: true,
				Door:      config.DoorSpec{Present: true, Side: "y-"},
				Cuboid:    box(0.05, 0.35, 0, 0.25, 0.55, 0.30),
				Interior:  boxPtr(0.08, 0.38, 0.03, 0.22, 0.52, 0.27),
			},
			{
				ID: "hotplate", Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
				Conn: config.Connection{Transport: "serial", SerialDev: "/dev/ttyUSB0"},
				// The mockup is a tall toy plate with a stirrer tower; its
				// height keeps the ViperX's drooping forearm clear of the
				// grid when working above it.
				Cuboid:          box(0.48, 0.38, 0, 0.62, 0.52, 0.20),
				ActionThreshold: 150,
				MaxSafeValue:    340,
			},
			{
				ID: "centrifuge", Type: "action_device", Kind: "centrifuge", ClassName: "FisherCentrifuge",
				Conn:      config.Connection{Transport: "tcp", Host: "192.168.1.31", Port: 8200},
				Expensive: true,
				Door:      config.DoorSpec{Present: true, Side: "z+"},
				Cuboid:    box(0.55, -0.26, 0, 0.71, -0.10, 0.16),
				Interior:  boxPtr(0.58, -0.23, 0.02, 0.68, -0.13, 0.13),
				// Spin rate limit (rpm).
				ActionThreshold: 4000,
				MaxSafeValue:    6000,
			},
			{
				ID: "pump", Type: "dosing_system", Kind: "pump", ClassName: "TecanPump",
				Conn:   config.Connection{Transport: "tcp", Host: "192.168.1.32", Port: 8300},
				Cuboid: box(0.70, -0.50, 0, 0.80, -0.40, 0.15),
			},
		},
		Containers: []config.ContainerSpec{
			{ID: "vial_1", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Location: "grid_NW"},
			{ID: "vial_2", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Location: "grid_SW"},
			{ID: "vial_3", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Stopper: true,
				InitialSolidMg: 5, InitialLiquidML: 1, Location: "grid_NE"},
			{ID: "beaker", Type: "container", Height: 0.10, Radius: 0.03,
				CapacityML: 100, InitialLiquidML: 50, Location: "pump_reservoir"},
		},
		Locations: []config.LocationSpec{
			{Name: "grid_NW", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.16},
				Meta: "original vial location"},
			{Name: "grid_NW_safe", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.23}},
			{Name: "grid_NE", Owner: "grid", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.16}},
			{Name: "grid_NE_safe", Owner: "grid", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.23}},
			{Name: "grid_SW", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.28, Z: 0.16}},
			{Name: "grid_SW_safe", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.28, Z: 0.23}},
			{Name: "dd_approach", Owner: "dosing_device", DeckPos: config.Vec{X: 0.15, Y: 0.30, Z: 0.19},
				Meta: "in front of the dosing device door"},
			{Name: "dd_safe_height", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.19}},
			{Name: "dd_pickup", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.10}},
			{Name: "hp_safe", Owner: "hotplate", DeckPos: config.Vec{X: 0.55, Y: 0.45, Z: 0.36}},
			{Name: "hp_place", Owner: "hotplate", DeckPos: config.Vec{X: 0.55, Y: 0.45, Z: 0.28}},
			{Name: "cf_safe", Owner: "centrifuge", DeckPos: config.Vec{X: 0.63, Y: -0.18, Z: 0.25}},
			{Name: "cf_slot", Owner: "centrifuge", Inside: true,
				DeckPos: config.Vec{X: 0.63, Y: -0.18, Z: 0.10}},
			{Name: "pump_reservoir", Owner: "pump", DeckPos: config.Vec{X: 0.75, Y: -0.45, Z: 0.26}},
		},
		Rules: []config.CustomRuleSpec{
			{ID: "hein", Builtin: "hein", Centrifuge: "centrifuge"},
		},
	}
}

// box is a compact BoxSpec constructor.
func box(x0, y0, z0, x1, y1, z1 float64) config.BoxSpec {
	return config.BoxSpec{
		Min: config.Vec{X: x0, Y: y0, Z: z0},
		Max: config.Vec{X: x1, Y: y1, Z: z1},
	}
}

func boxPtr(x0, y0, z0, x1, y1, z1 float64) *config.BoxSpec {
	b := box(x0, y0, z0, x1, y1, z1)
	return &b
}

// Testbed compiles the testbed spec.
func Testbed() (*config.Lab, error) { return config.Compile(TestbedSpec()) }

// WriteJSON writes a spec to dir/<lab>.json in the canonical format the
// paper's researchers edit.
func WriteJSON(spec *config.LabSpec, dir string) (string, error) {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("labs: marshal %s: %w", spec.Lab, err)
	}
	path := filepath.Join(dir, spec.Lab+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("labs: write %s: %w", path, err)
	}
	return path, nil
}
