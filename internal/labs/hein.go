package labs

import "repro/internal/config"

// HeinProductionSpec returns the Hein Lab production deck of Fig. 1(a): a
// lab computer driving a six-axis UR3e and five automation devices — a
// solid dosing device, an automated syringe pump, a centrifuge, a
// thermoshaker, and a hotplate — around a vial grid.
//
// Deck frame: UR3e base at the origin, floor at z=0. The layout keeps
// every manipulation point within the UR3e's comfortable top-down
// envelope.
func HeinProductionSpec() *config.LabSpec {
	return &config.LabSpec{
		Lab:    "hein-production",
		FloorZ: 0,
		Arms: []config.ArmSpec{
			{
				ID: "ur3e", Type: "robot_arm", Model: "ur3e", ClassName: "UR3eDriver",
				Conn:     config.Connection{Transport: "tcp", Host: "192.168.0.10", Port: 30002},
				Base:     config.Vec{X: 0, Y: 0, Z: 0},
				Gripper:  config.GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &config.BoxSpec{Min: config.Vec{X: -0.18, Y: -0.18, Z: 0}, Max: config.Vec{X: 0.18, Y: 0.18, Z: 0.35}},
			},
		},
		Devices: []config.DeviceSpec{
			{
				ID: "grid", Type: "container_rack", Kind: "grid", ClassName: "CardboardMockup",
				Cuboid: box(0.29, 0.19, 0, 0.41, 0.31, 0.08),
			},
			{
				ID: "dosing_device", Type: "dosing_system", Kind: "dosing", ClassName: "MTQuantos",
				Conn:      config.Connection{Transport: "tcp", Host: "192.168.0.30", Port: 8100},
				Expensive: true,
				Door:      config.DoorSpec{Present: true, Side: "y-"},
				Cuboid:    box(0.05, 0.35, 0, 0.25, 0.55, 0.30),
				Interior:  boxPtr(0.08, 0.38, 0.03, 0.22, 0.52, 0.27),
			},
			{
				ID: "pump", Type: "dosing_system", Kind: "pump", ClassName: "TecanPump",
				Conn:   config.Connection{Transport: "tcp", Host: "192.168.0.32", Port: 8300},
				Cuboid: box(-0.30, 0.35, 0, -0.18, 0.47, 0.18),
			},
			{
				ID: "hotplate", Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
				Conn:   config.Connection{Transport: "serial", SerialDev: "/dev/ttyUSB0"},
				Cuboid: box(0.46, -0.07, 0, 0.60, 0.07, 0.12),
				// The IKA plate's configured safe-temperature threshold
				// (rule 11); its physical rating sits higher.
				ActionThreshold: 150,
				MaxSafeValue:    340,
			},
			{
				ID: "thermoshaker", Type: "action_device", Kind: "thermoshaker", ClassName: "IKAThermoshaker",
				Conn:            config.Connection{Transport: "serial", SerialDev: "/dev/ttyUSB1"},
				Cuboid:          box(0.46, 0.14, 0, 0.60, 0.28, 0.12),
				ActionThreshold: 1500, // rpm
				MaxSafeValue:    3000,
			},
			{
				ID: "centrifuge", Type: "action_device", Kind: "centrifuge", ClassName: "FisherCentrifuge",
				Conn:            config.Connection{Transport: "tcp", Host: "192.168.0.31", Port: 8200},
				Expensive:       true,
				Door:            config.DoorSpec{Present: true, Side: "z+"},
				Cuboid:          box(0.13, -0.30, 0, 0.29, -0.14, 0.16),
				Interior:        boxPtr(0.16, -0.27, 0.02, 0.26, -0.17, 0.13),
				ActionThreshold: 4000,
				MaxSafeValue:    6000,
			},
		},
		Containers: []config.ContainerSpec{
			{ID: "vial_1", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Location: "grid_NW"},
			{ID: "vial_2", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Location: "grid_SW"},
			{ID: "vial_3", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 10, CapacityML: 12, Stopper: true,
				InitialSolidMg: 5, InitialLiquidML: 1, Location: "grid_NE"},
			{ID: "beaker", Type: "container", Height: 0.12, Radius: 0.04,
				CapacityML: 500, InitialLiquidML: 300, Location: "pump_reservoir"},
		},
		Locations: []config.LocationSpec{
			{Name: "grid_NW", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.16}},
			{Name: "grid_NW_safe", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.23}},
			{Name: "grid_NE", Owner: "grid", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.16}},
			{Name: "grid_NE_safe", Owner: "grid", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.23}},
			{Name: "grid_SW", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.28, Z: 0.16}},
			{Name: "grid_SW_safe", Owner: "grid", DeckPos: config.Vec{X: 0.32, Y: 0.28, Z: 0.23}},
			{Name: "dd_approach", Owner: "dosing_device", DeckPos: config.Vec{X: 0.15, Y: 0.30, Z: 0.19}},
			{Name: "dd_safe_height", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.19}},
			{Name: "dd_pickup", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.10}},
			{Name: "hp_safe", Owner: "hotplate", DeckPos: config.Vec{X: 0.53, Y: 0.00, Z: 0.33}},
			{Name: "hp_place", Owner: "hotplate", DeckPos: config.Vec{X: 0.53, Y: 0.00, Z: 0.20}},
			{Name: "ts_safe", Owner: "thermoshaker", DeckPos: config.Vec{X: 0.53, Y: 0.21, Z: 0.28}},
			{Name: "ts_place", Owner: "thermoshaker", DeckPos: config.Vec{X: 0.53, Y: 0.21, Z: 0.20}},
			{Name: "cf_safe", Owner: "centrifuge", DeckPos: config.Vec{X: 0.21, Y: -0.22, Z: 0.25}},
			{Name: "cf_slot", Owner: "centrifuge", Inside: true,
				DeckPos: config.Vec{X: 0.21, Y: -0.22, Z: 0.10}},
			{Name: "pump_reservoir", Owner: "pump", DeckPos: config.Vec{X: -0.24, Y: 0.41, Z: 0.25}},
		},
		Rules: []config.CustomRuleSpec{
			{ID: "hein", Builtin: "hein", Centrifuge: "centrifuge"},
		},
	}
}

// HeinProduction compiles the production spec.
func HeinProduction() (*config.Lab, error) { return config.Compile(HeinProductionSpec()) }
