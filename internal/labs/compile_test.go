package labs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
)

func TestSpecsCompile(t *testing.T) {
	for _, build := range []func() (*config.Lab, error){Testbed, HeinProduction, Berlinguette} {
		if _, err := build(); err != nil {
			t.Error(err)
		}
	}
}

func TestSpecsMatchPaperInventory(t *testing.T) {
	// The Hein production deck (Fig. 1a): a UR3e and five automation
	// devices — dosing device, syringe pump, centrifuge, thermoshaker,
	// hotplate — around a vial grid.
	hein := HeinProductionSpec()
	if len(hein.Arms) != 1 || hein.Arms[0].Model != "ur3e" {
		t.Errorf("hein arms: %+v", hein.Arms)
	}
	wantDevices := map[string]bool{
		"grid": true, "dosing_device": true, "pump": true,
		"hotplate": true, "thermoshaker": true, "centrifuge": true,
	}
	for _, d := range hein.Devices {
		delete(wantDevices, d.ID)
	}
	if len(wantDevices) != 0 {
		t.Errorf("hein deck missing devices: %v", wantDevices)
	}

	// The testbed (Fig. 4): a ViperX 300 and a Ned2.
	tb := TestbedSpec()
	if len(tb.Arms) != 2 || tb.Arms[0].Model != "viperx300" || tb.Arms[1].Model != "ned2" {
		t.Errorf("testbed arms: %+v", tb.Arms)
	}
	for _, a := range tb.Arms {
		if a.SleepBox == nil {
			t.Errorf("testbed arm %s needs a sleep box for time multiplexing", a.ID)
		}
		if a.ZoneWall == nil {
			t.Errorf("testbed arm %s needs a zone wall for space multiplexing", a.ID)
		}
	}

	// The Berlinguette deck (Section V-B): UR5e + N9, spin coater,
	// spray hotplate, nozzles, decapper, dosing device, pump.
	bl := BerlinguetteSpec()
	if len(bl.Arms) != 2 {
		t.Errorf("berlinguette arms: %+v", bl.Arms)
	}
	kinds := map[string]int{}
	for _, d := range bl.Devices {
		kinds[d.Kind]++
	}
	if kinds["nozzle"] != 2 || kinds["spin_coater"] != 1 || kinds["decapper"] != 1 {
		t.Errorf("berlinguette device kinds: %v", kinds)
	}
	if len(bl.Rules) == 0 {
		t.Error("berlinguette should carry a declarative custom rule")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, spec := range []*config.LabSpec{TestbedSpec(), HeinProductionSpec(), BerlinguetteSpec()} {
		path, err := WriteJSON(spec, dir)
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(path) != spec.Lab+".json" {
			t.Errorf("file name %s", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		parsed, diags := config.Parse(data)
		if len(diags) != 0 {
			t.Fatalf("%s: %v", spec.Lab, diags)
		}
		if _, err := config.Compile(parsed); err != nil {
			t.Fatalf("%s: %v", spec.Lab, err)
		}
		// The canonical files stay strictly valid JSON.
		var raw map[string]any
		if err := json.Unmarshal(data, &raw); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeinAndTestbedShareLocationVocabulary(t *testing.T) {
	// The controlled scenarios run on both decks; the location names
	// they use must exist on each.
	shared := []string{
		"grid_NW", "grid_NW_safe", "grid_NE", "grid_NE_safe",
		"dd_approach", "dd_safe_height", "dd_pickup",
		"hp_safe", "hp_place", "cf_safe", "cf_slot", "pump_reservoir",
	}
	for _, spec := range []*config.LabSpec{TestbedSpec(), HeinProductionSpec()} {
		names := map[string]bool{}
		for _, l := range spec.Locations {
			names[l.Name] = true
		}
		for _, want := range shared {
			if !names[want] {
				t.Errorf("%s: location %q missing", spec.Lab, want)
			}
		}
	}
}
