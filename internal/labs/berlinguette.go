package labs

import "repro/internal/config"

// BerlinguetteSpec returns the Berlinguette Lab deck the paper's
// generalization study visits (Section V-B): a central UR5e serving
// walled stations, an N9 arm at the precursor-mixing station, a spin
// coater, a spray-coating station with a hotplate, an automated syringe
// pump drawing solvent, ultrasonic nozzles, a decapper, and a dosing
// device with a door like the Hein Lab's.
//
// Categorisation per the paper: the dosing device and pump are dosing
// systems; the decapper, spin coater, hotplate, and nozzles are action
// devices (capping/uncapping, spinning, heating, and spraying being their
// actions).
func BerlinguetteSpec() *config.LabSpec {
	return &config.LabSpec{
		Lab:    "berlinguette",
		FloorZ: 0,
		Arms: []config.ArmSpec{
			{
				ID: "ur5e", Type: "robot_arm", Model: "ur5e", ClassName: "UR5eDriver",
				Conn:     config.Connection{Transport: "tcp", Host: "10.0.0.10", Port: 30002},
				Base:     config.Vec{X: 0, Y: 0, Z: 0},
				Gripper:  config.GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &config.BoxSpec{Min: config.Vec{X: -0.20, Y: -0.20, Z: 0}, Max: config.Vec{X: 0.20, Y: 0.20, Z: 0.40}},
				// The UR5e stays on its side of the station wall.
				ZoneWall: &config.WallSpec{Normal: config.Vec{X: -1, Y: 0, Z: 0}, Offset: -0.85},
			},
			{
				ID: "n9", Type: "robot_arm", Model: "n9", ClassName: "N9Driver",
				Conn:     config.Connection{Transport: "tcp", Host: "10.0.0.11", Port: 9000},
				Base:     config.Vec{X: 1.3, Y: 0.2, Z: 0},
				Gripper:  config.GripperSpec{FingerDrop: 0.05, FingerRadius: 0.012},
				SleepBox: &config.BoxSpec{Min: config.Vec{X: -0.15, Y: -0.15, Z: 0}, Max: config.Vec{X: 0.15, Y: 0.15, Z: 0.30}},
				ZoneWall: &config.WallSpec{Normal: config.Vec{X: 1, Y: 0, Z: 0}, Offset: -0.45},
			},
		},
		Devices: []config.DeviceSpec{
			{
				ID: "rack", Type: "container_rack", Kind: "grid", ClassName: "CardboardMockup",
				Cuboid: box(0.29, 0.19, 0, 0.41, 0.31, 0.08),
			},
			{
				ID: "dosing_device", Type: "dosing_system", Kind: "dosing", ClassName: "MTQuantos",
				Conn:      config.Connection{Transport: "tcp", Host: "10.0.0.30", Port: 8100},
				Expensive: true,
				Door:      config.DoorSpec{Present: true, Side: "y-"},
				Cuboid:    box(0.05, 0.35, 0, 0.25, 0.55, 0.30),
				Interior:  boxPtr(0.08, 0.38, 0.03, 0.22, 0.52, 0.27),
			},
			{
				ID: "decapper", Type: "action_device", Kind: "decapper", ClassName: "DecapperDriver",
				Conn:   config.Connection{Transport: "tcp", Host: "10.0.0.33", Port: 8400},
				Cuboid: box(0.46, 0.14, 0, 0.58, 0.26, 0.14),
			},
			{
				ID: "spin_coater", Type: "action_device", Kind: "spin_coater", ClassName: "SpinCoater",
				Conn:            config.Connection{Transport: "tcp", Host: "10.0.0.34", Port: 8500},
				Expensive:       true,
				Cuboid:          box(0.46, 0.36, 0, 0.60, 0.50, 0.10),
				ActionThreshold: 6000, // rpm
				MaxSafeValue:    9000,
			},
			{
				ID: "spray_hotplate", Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
				Conn:            config.Connection{Transport: "serial", SerialDev: "/dev/ttyUSB2"},
				Cuboid:          box(0.13, -0.30, 0, 0.27, -0.16, 0.12),
				ActionThreshold: 200,
				MaxSafeValue:    400,
			},
			{
				ID: "solvent_pump", Type: "dosing_system", Kind: "pump", ClassName: "TecanPump",
				Conn:   config.Connection{Transport: "tcp", Host: "10.0.0.32", Port: 8300},
				Cuboid: box(-0.30, 0.35, 0, -0.18, 0.47, 0.18),
			},
			{
				ID: "nozzle_a", Type: "action_device", Kind: "nozzle", ClassName: "SprayNozzle",
				Conn:   config.Connection{Transport: "tcp", Host: "10.0.0.35", Port: 8600},
				Cuboid: box(-0.30, -0.30, 0, -0.22, -0.22, 0.25),
			},
			{
				ID: "nozzle_b", Type: "action_device", Kind: "nozzle", ClassName: "SprayNozzle",
				Conn:   config.Connection{Transport: "tcp", Host: "10.0.0.36", Port: 8601},
				Cuboid: box(-0.18, -0.30, 0, -0.10, -0.22, 0.25),
			},
		},
		Containers: []config.ContainerSpec{
			{ID: "precursor_vial", Type: "container", Height: 0.07, Radius: 0.012,
				CapacityMg: 20, CapacityML: 15, Location: "rack_A"},
			// The substrate travels in a carrier tall enough for the
			// gripper fingers to clear the racks and chucks it rests on.
			{ID: "film_substrate", Type: "container", Height: 0.06, Radius: 0.025,
				CapacityML: 1, Location: "rack_B"},
		},
		Locations: []config.LocationSpec{
			{Name: "rack_A", Owner: "rack", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.16}},
			{Name: "rack_A_safe", Owner: "rack", DeckPos: config.Vec{X: 0.32, Y: 0.22, Z: 0.23}},
			{Name: "rack_B", Owner: "rack", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.15}},
			{Name: "rack_B_safe", Owner: "rack", DeckPos: config.Vec{X: 0.38, Y: 0.22, Z: 0.23}},
			{Name: "dd_approach", Owner: "dosing_device", DeckPos: config.Vec{X: 0.15, Y: 0.30, Z: 0.19}},
			{Name: "dd_safe_height", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.19}},
			{Name: "dd_slot", Owner: "dosing_device", Inside: true,
				DeckPos: config.Vec{X: 0.15, Y: 0.45, Z: 0.10}},
			{Name: "decap_safe", Owner: "decapper", DeckPos: config.Vec{X: 0.52, Y: 0.20, Z: 0.30}},
			{Name: "decap_slot", Owner: "decapper", DeckPos: config.Vec{X: 0.52, Y: 0.20, Z: 0.22}},
			{Name: "coater_safe", Owner: "spin_coater", DeckPos: config.Vec{X: 0.53, Y: 0.43, Z: 0.26}},
			{Name: "coater_chuck", Owner: "spin_coater", DeckPos: config.Vec{X: 0.53, Y: 0.43, Z: 0.17}},
			{Name: "spray_safe", Owner: "spray_hotplate", DeckPos: config.Vec{X: 0.20, Y: -0.23, Z: 0.28}},
			{Name: "spray_place", Owner: "spray_hotplate", DeckPos: config.Vec{X: 0.20, Y: -0.23, Z: 0.19}},
		},
		Rules: []config.CustomRuleSpec{
			// The Berlinguette Lab has no centrifuge; its one custom rule
			// guards the spin coater: never spin without a film loaded.
			{
				ID:          "film-loaded",
				Description: "Spin the coater only when a film substrate is loaded on the chuck",
				Number:      1,
				AppliesTo:   []string{"start_action"},
				Devices:     []string{"spin_coater"},
				Requires: []config.RequirementSpec{
					{Var: "containerInside", Arg: "$device", Equals: "film_substrate"},
				},
			},
		},
	}
}

// Berlinguette compiles the Berlinguette spec.
func Berlinguette() (*config.Lab, error) { return config.Compile(BerlinguetteSpec()) }
