package campaign

import (
	"sync"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/kin"
	"repro/internal/obs/recorder"
	"repro/internal/sim"
)

// stackRecorderDepth sizes each pooled flight-recorder ring. Campaign
// scripts are at most a few dozen commands, so a shallow ring holds a
// whole scenario — which is exactly the window a missed-injection bundle
// should freeze.
const stackRecorderDepth = 256

// stack is one reusable engine assembly: engine + extended simulator +
// flight recorder, all bound to one deck variant's rulebase and compiled
// lab. Between scenarios only the cheap state is reset (Simulator.Reset,
// Recorder.Reset, Engine.Rebind); the expensive immutables — compiled
// rules, kinematic profiles, the deck BVH, warm verdict caches — carry
// over. That carry-over is the campaign engine's whole performance story,
// and the pooled-vs-fresh equivalence test is its soundness story.
type stack struct {
	eng *core.Engine
	sm  *sim.Simulator
	rec *recorder.Recorder
}

// planCacheCapacity bounds the per-deck shared plan caches. A deck's
// scripts draw from a finite quantized grammar, so the distinct
// (start configuration, target) pairs number in the low thousands; a
// bound above that working set keeps the LRU from thrashing at 1M
// scenarios while still capping memory.
const planCacheCapacity = 8192

// exactPlanCache returns a plan cache safe to share across scenarios and
// workers: warm-start seeding is off, so a miss solves exactly what the
// cold path would and a hit replays that byte-identical answer — cache
// state can change *when* planning work happens, never its outcome.
func exactPlanCache() *kin.PlanCache {
	pc := kin.NewPlanCache(planCacheCapacity)
	pc.SetWarmStart(false)
	return pc
}

// deckRuntime owns the stack pool for one deck variant. sync.Pool gives
// work-stealing workers lock-free reuse and lets idle stacks be collected
// under memory pressure. The two shared plan caches are the pooled
// runner's cross-scenario levers: worldPlans memoizes the ground-truth
// worlds' motion plans (oracle and protected replays on the same deck
// re-solve the same quantized moves endlessly), simPlans the extended
// simulator's validation plans.
type deckRuntime struct {
	deck        *Deck
	incidentDir string
	pool        sync.Pool
	worldPlans  *kin.PlanCache
	simPlans    *kin.PlanCache
}

func newDeckRuntime(d *Deck, incidentDir string) *deckRuntime {
	return &deckRuntime{
		deck:        d,
		incidentDir: incidentDir,
		worldPlans:  exactPlanCache(),
		simPlans:    exactPlanCache(),
	}
}

func (dr *deckRuntime) get() (*stack, error) {
	if st, _ := dr.pool.Get().(*stack); st != nil {
		return st, nil
	}
	return dr.newStack()
}

func (dr *deckRuntime) put(st *stack) { dr.pool.Put(st) }

// newStack builds a fresh assembly. core.New needs an environment at
// construction time; a throwaway build seeds it and Rebind swaps in the
// real per-scenario world before first use. Speculation is off: campaign
// scripts are short and serial, so lookahead buys nothing and keeping the
// pipeline synchronous makes the quiescence contract of the reset path
// trivially true.
func (dr *deckRuntime) newStack() (*stack, error) {
	boot, err := env.Build(dr.deck.Compiled, env.StageTestbed, 0)
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(dr.deck.Compiled,
		sim.WithHeldObjectAware(true),
		sim.WithMotionCache(true),
		sim.WithSharedPlanCache(dr.simPlans),
		sim.WithArmProfiles(dr.deck.Profiles))
	if err != nil {
		return nil, err
	}
	rec := recorder.New(recorder.Options{Depth: stackRecorderDepth, Dir: dr.incidentDir})
	eng := core.New(dr.deck.Rulebase, boot,
		core.WithInitialModel(dr.deck.Compiled.InitialModelState()),
		core.WithSimulator(sm),
		core.WithRecorder(rec),
		core.WithSpeculation(false))
	return &stack{eng: eng, sm: sm, rec: rec}, nil
}
