package campaign

import (
	"runtime"
	"strings"
	"testing"
)

// BenchmarkCampaignThroughput is the CI perf gate: it times a pooled
// campaign per iteration and reports the pooled/naive throughput ratio
// as "pooled-speedup-x". The naive baseline is calibrated once before
// the timer starts — it is the denominator, not the thing under test.
// Both modes run the same seed, scenario count, and worker count, so
// the ratio isolates exactly what the pool amortizes: spec compiles,
// rulebase generation, simulator/BVH construction, profile IK, and
// cold motion plans.
func BenchmarkCampaignThroughput(b *testing.B) {
	const (
		n    = 128
		seed = 5
	)
	workers := runtime.GOMAXPROCS(0)

	naive, err := Run(Options{N: n, Seed: seed, Workers: workers, Naive: true})
	if err != nil {
		b.Fatal(err)
	}
	want := naive.Counts()

	b.ResetTimer()
	var pooledPerSec float64
	for i := 0; i < b.N; i++ {
		pooled, err := Run(Options{N: n, Seed: seed, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		pooledPerSec = pooled.ScenariosPerSec
		p := pooled.Counts()
		b.StopTimer()
		// The speedup only counts if the fast path computes the same answer.
		if got := replaceNaiveFlag(p); got != replaceNaiveFlag(want) {
			b.Fatalf("pooled summary diverged from naive:\npooled:\n%s\nnaive:\n%s", p, want)
		}
		b.StartTimer()
	}
	b.ReportMetric(pooledPerSec, "scen/s")
	if naive.ScenariosPerSec > 0 {
		b.ReportMetric(pooledPerSec/naive.ScenariosPerSec, "pooled-speedup-x")
	}
}

// replaceNaiveFlag normalizes the one mode-identifying token so the
// byte compare checks outcomes, not the flag itself.
func replaceNaiveFlag(counts string) string {
	counts = strings.Replace(counts, "naive=true", "naive=?", 1)
	return strings.Replace(counts, "naive=false", "naive=?", 1)
}
