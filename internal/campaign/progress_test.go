package campaign

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestProgressGaugesMirrorAtomics(t *testing.T) {
	reg := obs.NewRegistry("campaign")
	p := NewProgress(reg)
	p.begin(10, 2)
	p.scenarioDone(0, true, false, false)
	p.scenarioDone(1, false, true, false)
	p.scenarioDone(1, false, false, true)

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		obs.GaugeCampaignTotal:       10,
		obs.GaugeCampaignDone:        3,
		obs.GaugeCampaignDetected:    1,
		obs.GaugeCampaignMissed:      1,
		obs.GaugeCampaignFalseAlarms: 1,
	} {
		if got := snap.Gauge(name); got != want {
			t.Errorf("gauge %s = %d, want %d", name, got, want)
		}
	}
	fam, ok := snap.Family(obs.FamilyCampaignWorkerDone)
	if !ok {
		t.Fatal("per-worker family missing")
	}
	if len(fam.Gauges) != 2 || fam.Gauges[0].Value != 1 || fam.Gauges[1].Value != 2 {
		t.Fatalf("per-worker gauges = %+v, want worker 0→1, worker 1→2", fam.Gauges)
	}

	ps := p.Snapshot()
	if !ps.Running || ps.Total != 10 || ps.Done != 3 || ps.Detected != 1 || ps.Missed != 1 || ps.FalseAlarms != 1 {
		t.Fatalf("snapshot = %+v", ps)
	}
	if len(ps.Workers) != 2 || ps.Workers[0] != 1 || ps.Workers[1] != 2 {
		t.Fatalf("snapshot workers = %v", ps.Workers)
	}

	p.finish()
	if ps = p.Snapshot(); ps.Running {
		t.Fatal("snapshot still running after finish")
	}
	if got := snap.Gauge(obs.GaugeCampaignETASeconds); got != 0 {
		t.Fatalf("ETA gauge %d after finish, want 0", got)
	}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.begin(5, 1)
	p.scenarioDone(0, true, true, true)
	p.finish()
	if s := p.Snapshot(); s.Running || s.Total != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	// A Progress with no registry stays NDJSON-only without panicking.
	q := NewProgress(nil)
	q.begin(2, 1)
	q.scenarioDone(0, true, false, false)
	q.finish()
	if s := q.Snapshot(); s.Done != 1 {
		t.Fatalf("registry-less tracker lost a scenario: %+v", s)
	}
}

// The NDJSON stream emits snapshots until the campaign completes, then
// terminates with the final running=false line.
func TestProgressServeHTTPStream(t *testing.T) {
	p := NewProgress(nil)
	p.begin(4, 1)
	p.scenarioDone(0, true, false, false)

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		p.scenarioDone(0, false, true, false)
		p.finish()
	}()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/campaign?interval_ms=5", nil)
	p.ServeHTTP(rec, req)
	<-done

	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []ProgressSnapshot
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var s ProgressSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) < 2 {
		t.Fatalf("stream emitted %d lines, want at least first+final", len(lines))
	}
	first, last := lines[0], lines[len(lines)-1]
	if !first.Running || first.Done != 1 {
		t.Fatalf("first line = %+v, want running with 1 done", first)
	}
	if last.Running {
		t.Fatal("stream did not terminate on the final running=false snapshot")
	}
	if last.Done != 2 || last.Missed != 1 || last.ETASeconds != 0 {
		t.Fatalf("final line = %+v", last)
	}
	for _, s := range lines[:len(lines)-1] {
		if !s.Running {
			t.Fatal("running=false snapshot emitted before the end of the stream")
		}
	}
}

// A real (tiny) campaign run drives Progress to totals that match the
// returned summary.
func TestProgressTracksRun(t *testing.T) {
	reg := obs.NewRegistry("campaign")
	p := NewProgress(reg)
	sum, err := Run(Options{N: 12, Seed: 7, Workers: 2, Progress: p})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Running {
		t.Fatal("tracker still running after Run returned")
	}
	if s.Total != int64(sum.N) || s.Done != int64(sum.N) {
		t.Fatalf("progress done %d/%d, summary N %d", s.Done, s.Total, sum.N)
	}
	tot := sum.Totals()
	if s.Detected != tot.Detected || s.Missed != tot.Missed || s.FalseAlarms != sum.FalseAlarms {
		t.Fatalf("progress %+v disagrees with summary (detected %d missed %d false %d)",
			s, tot.Detected, tot.Missed, sum.FalseAlarms)
	}
	var perWorker int64
	for _, n := range s.Workers {
		perWorker += n
	}
	if perWorker != s.Done {
		t.Fatalf("per-worker counts sum to %d, done %d", perWorker, s.Done)
	}
	if got := reg.Snapshot().Gauge(obs.GaugeCampaignDone); got != int64(sum.N) {
		t.Fatalf("done gauge %d, want %d", got, sum.N)
	}
}
